//! # ndp-sim — discrete-event execution and fault injection
//!
//! End-to-end validation layer of the `noc-deploy` workspace: deployments
//! produced by `ndp-core` are *executed*, not just algebraically checked.
//!
//! * [`execute`] replays a deployment event-driven, honouring the static
//!   per-processor order while letting tasks start as early as their NoC
//!   transfers allow. Energy totals reproduce the optimizer's accounting
//!   exactly; dynamic end times never exceed the static ones.
//! * [`inject_faults`] runs Monte-Carlo campaigns under the Poisson
//!   transient-fault model, verifying that duplication delivers the
//!   analytic reliability `r′ = 1 − (1 − r₁)(1 − r₂)`.
//!
//! ```no_run
//! use ndp_core::{DeploymentSession, ProblemInstance};
//! use ndp_sim::{execute, inject_faults};
//! # fn problem() -> ProblemInstance { unimplemented!() }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let problem = problem();
//! let deployment = DeploymentSession::new(problem.clone()).heuristic()?;
//! let trace = execute(&problem, &deployment);
//! assert!(trace.makespan_ms <= problem.horizon_ms);
//! let faults = inject_faults(&problem, &deployment, 100_000, 42);
//! println!("system reliability ≈ {}", faults.system_reliability());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod executor;
mod faults;

pub use executor::{execute, ExecutionTrace, TaskTrace};
pub use faults::{analytic_task_reliability, inject_faults, FaultReport};
