//! Discrete-event execution of a deployment.
//!
//! Replays a [`Deployment`] dynamically. The deployment's per-processor
//! task *order* (the paper's `u_ij` sequencing decision, implied by the
//! static start times) is honoured, but actual times are event-driven: a
//! task begins as soon as its processor reaches it in its queue and every
//! input transfer has arrived over the NoC. Consequently, for a valid
//! deployment, every dynamic end time is ≤ its static counterpart — an
//! invariant the test suite checks.
//!
//! Energy is accounted per processor from the same platform/NoC models the
//! optimizer used, so the trace totals must reproduce
//! [`Deployment::energy_report`] exactly.

use ndp_core::{Deployment, ProblemInstance};
use ndp_noc::NodeId;
use ndp_taskset::TaskId;

/// Timing record for one executed task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskTrace {
    /// The task.
    pub task: TaskId,
    /// Dynamic start in ms.
    pub start_ms: f64,
    /// Dynamic end in ms.
    pub end_ms: f64,
}

/// Result of executing a deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionTrace {
    /// Per-task timings (active tasks only), in task-id order.
    pub tasks: Vec<TaskTrace>,
    /// Completion time of the last task, ms.
    pub makespan_ms: f64,
    /// Per-processor computation energy, mJ.
    pub comp_energy_mj: Vec<f64>,
    /// Per-processor communication energy, mJ.
    pub comm_energy_mj: Vec<f64>,
    /// Per-processor busy time, ms.
    pub busy_ms: Vec<f64>,
}

impl ExecutionTrace {
    /// Dynamic end time of `task`, if it was active.
    pub fn end_of(&self, task: TaskId) -> Option<f64> {
        self.tasks.iter().find(|t| t.task == task).map(|t| t.end_ms)
    }

    /// Total energy over all processors, mJ.
    pub fn total_energy_mj(&self) -> f64 {
        self.comp_energy_mj.iter().sum::<f64>() + self.comm_energy_mj.iter().sum::<f64>()
    }

    /// Per-processor utilization `busy / makespan` in `[0, 1]`; all zeros
    /// when nothing executed.
    pub fn utilization(&self) -> Vec<f64> {
        if self.makespan_ms <= 0.0 {
            return vec![0.0; self.busy_ms.len()];
        }
        self.busy_ms.iter().map(|b| b / self.makespan_ms).collect()
    }
}

/// Executes `deployment` on `problem`'s platform.
///
/// # Panics
///
/// Panics if the deployment's vectors have the wrong lengths for the
/// problem, or if the per-processor order deadlocks against the precedence
/// graph (impossible for deployments that pass
/// [`ndp_core::validate`]).
pub fn execute(problem: &ProblemInstance, deployment: &Deployment) -> ExecutionTrace {
    let graph = problem.tasks.graph();
    let n_tasks = graph.num_tasks();
    assert_eq!(deployment.active.len(), n_tasks, "deployment/problem mismatch");
    let n = problem.num_processors();
    let active = &deployment.active;

    // Per-processor queues in static start order (the u_ij decision).
    let mut queues: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n_tasks {
        if active[i] {
            queues[deployment.processor[i].index()].push(i);
        }
    }
    for q in &mut queues {
        q.sort_by(|&a, &b| {
            deployment.start_ms[a]
                .partial_cmp(&deployment.start_ms[b])
                .expect("finite start times")
                .then_with(|| a.cmp(&b))
        });
    }

    let mut done = vec![false; n_tasks];
    let mut end = vec![0.0_f64; n_tasks];
    let mut comm_delay = vec![0.0_f64; n_tasks];
    let mut heads = vec![0usize; n];
    let mut proc_free = vec![0.0_f64; n];
    let mut busy = vec![0.0_f64; n];
    let mut comp_energy = vec![0.0_f64; n];
    let mut comm_energy = vec![0.0_f64; n];
    let mut traces: Vec<TaskTrace> = Vec::new();
    let total: usize = queues.iter().map(Vec::len).sum();

    for _ in 0..total {
        // Find a processor whose queue head has all inputs computed.
        let mut chosen: Option<(usize, usize)> = None;
        for k in 0..n {
            if heads[k] >= queues[k].len() {
                continue;
            }
            let i = queues[k][heads[k]];
            let ready =
                graph.predecessors(TaskId(i)).all(|(p, _)| !active[p.index()] || done[p.index()]);
            if ready {
                chosen = Some((k, i));
                break;
            }
        }
        let (k, i) = chosen.expect("per-processor order consistent with precedence");
        heads[k] += 1;

        // Account transfers from predecessors and compute readiness.
        let mut inputs_done = 0.0_f64;
        for (p, data) in graph.predecessors(TaskId(i)) {
            if !active[p.index()] {
                continue;
            }
            inputs_done = inputs_done.max(end[p.index()]);
            let beta = deployment.processor[p.index()];
            let gamma = deployment.processor[i];
            if beta != gamma {
                let rho = deployment.paths.kind(beta, gamma);
                let (nb, ng) = (problem.node_of(beta), problem.node_of(gamma));
                // Receive serialization (§II-B.5): every incoming transfer
                // adds to the task's receive budget.
                comm_delay[i] += problem.time_weight(data) * problem.comm.time_ms(nb, ng, rho);
                for (k2, c) in comm_energy.iter_mut().enumerate() {
                    let e = problem.comm.energy_at_mj(nb, ng, NodeId(k2), rho);
                    if e != 0.0 {
                        *c += data * e;
                    }
                }
            }
        }
        let ready_at = inputs_done + comm_delay[i];
        let start = ready_at.max(proc_free[k]);
        let dur = problem.exec_time_ms(TaskId(i), deployment.frequency[i]);
        let finish = start + dur;
        proc_free[k] = finish;
        busy[k] += dur;
        comp_energy[k] += problem.exec_energy_mj(TaskId(i), deployment.frequency[i]);
        end[i] = finish;
        done[i] = true;
        traces.push(TaskTrace { task: TaskId(i), start_ms: start, end_ms: finish });
    }

    traces.sort_by_key(|t| t.task);
    let makespan = traces.iter().map(|t| t.end_ms).fold(0.0, f64::max);
    ExecutionTrace {
        tasks: traces,
        makespan_ms: makespan,
        comp_energy_mj: comp_energy,
        comm_energy_mj: comm_energy,
        busy_ms: busy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_core::{validate, DeploymentSession, ProblemInstance};
    use ndp_noc::{Mesh2D, NocParams, WeightedNoc};
    use ndp_platform::Platform;
    use ndp_taskset::{generate, GeneratorConfig};

    fn solved(m: usize, seed: u64) -> Option<(ProblemInstance, ndp_core::Deployment)> {
        let g = generate(&GeneratorConfig::typical(m), seed).unwrap();
        let p = ProblemInstance::from_original(
            &g,
            Platform::homogeneous(9).unwrap(),
            WeightedNoc::new(Mesh2D::square(3).unwrap(), NocParams::typical(), seed).unwrap(),
            0.97,
            4.0,
        )
        .unwrap();
        let d = DeploymentSession::new(p.clone()).heuristic().ok()?;
        assert!(validate(&p, &d).is_empty());
        Some((p, d))
    }

    #[test]
    fn energy_matches_static_report_exactly() {
        let mut checked = 0;
        for seed in 0..10 {
            let Some((p, d)) = solved(10, seed) else { continue };
            let trace = execute(&p, &d);
            let report = d.energy_report(&p);
            for k in 0..p.num_processors() {
                assert!((trace.comp_energy_mj[k] - report.comp_mj[k]).abs() < 1e-9);
                assert!((trace.comm_energy_mj[k] - report.comm_mj[k]).abs() < 1e-9);
            }
            checked += 1;
        }
        assert!(checked > 0, "at least one feasible instance expected");
    }

    #[test]
    fn dynamic_never_later_than_static() {
        let mut checked = 0;
        for seed in 0..10 {
            let Some((p, d)) = solved(8, seed) else { continue };
            let trace = execute(&p, &d);
            for t in &trace.tasks {
                let static_end = d.end_ms(&p, t.task);
                assert!(
                    t.end_ms <= static_end + 1e-6,
                    "seed {seed}: {} dynamic {} > static {}",
                    t.task,
                    t.end_ms,
                    static_end
                );
            }
            assert!(trace.makespan_ms <= p.horizon_ms + 1e-6);
            checked += 1;
        }
        assert!(checked > 0);
    }

    #[test]
    fn all_active_tasks_execute_exactly_once() {
        let Some((p, d)) = solved(12, 3) else { return };
        let trace = execute(&p, &d);
        let active_count = d.active.iter().filter(|&&a| a).count();
        assert_eq!(trace.tasks.len(), active_count);
    }

    #[test]
    fn utilization_bounded_and_consistent() {
        let Some((p, d)) = solved(10, 7) else { return };
        let trace = execute(&p, &d);
        for (k, u) in trace.utilization().iter().enumerate() {
            assert!((0.0..=1.0 + 1e-9).contains(u), "θ{k} utilization {u}");
            assert!((u * trace.makespan_ms - trace.busy_ms[k]).abs() < 1e-9);
        }
    }

    #[test]
    fn busy_time_sums_exec_times() {
        let Some((p, d)) = solved(9, 5) else { return };
        let trace = execute(&p, &d);
        let total_busy: f64 = trace.busy_ms.iter().sum();
        let expected: f64 = p
            .tasks
            .graph()
            .task_ids()
            .filter(|t| d.active[t.index()])
            .map(|t| p.exec_time_ms(t, d.frequency[t.index()]))
            .sum();
        assert!((total_busy - expected).abs() < 1e-9);
    }
}
