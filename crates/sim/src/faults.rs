//! Poisson transient-fault injection and Monte-Carlo reliability.
//!
//! Each executed task copy fails independently with probability
//! `1 − r(C_i, f)` where `r` is the platform's Poisson reliability model —
//! the same model the optimizer reasons with. An *original* task's
//! computation survives a trial when at least one of its active copies
//! survives; the deployment survives when every original does. Monte-Carlo
//! estimates of these probabilities converge to the analytic `r'_i`
//! (duplicated reliability), which the test suite verifies.

use ndp_core::{Deployment, ProblemInstance};
use ndp_taskset::TaskId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a fault-injection campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultReport {
    /// Number of trials.
    pub trials: u64,
    /// Trials in which every original task produced a correct result.
    pub system_successes: u64,
    /// Per-original-task success counts.
    pub task_successes: Vec<u64>,
    /// Total injected faults across all trials and copies.
    pub injected_faults: u64,
}

impl FaultReport {
    /// Estimated system reliability.
    pub fn system_reliability(&self) -> f64 {
        self.system_successes as f64 / self.trials as f64
    }

    /// Estimated reliability of original task `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not an original-task index.
    pub fn task_reliability(&self, i: TaskId) -> f64 {
        self.task_successes[i.index()] as f64 / self.trials as f64
    }
}

/// Runs `trials` independent fault-injection executions of `deployment`.
///
/// # Panics
///
/// Panics if `trials == 0`.
pub fn inject_faults(
    problem: &ProblemInstance,
    deployment: &Deployment,
    trials: u64,
    seed: u64,
) -> FaultReport {
    assert!(trials > 0, "at least one trial required");
    let m = problem.num_original();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6661_756c_7473_2121);
    // Per-copy survival probabilities under the chosen frequencies.
    let survive_p: Vec<f64> = (0..problem.num_tasks())
        .map(|i| {
            if deployment.active[i] {
                problem.reliability(TaskId(i), deployment.frequency[i])
            } else {
                0.0
            }
        })
        .collect();
    let mut task_successes = vec![0u64; m];
    let mut system_successes = 0u64;
    let mut injected = 0u64;
    for _ in 0..trials {
        let mut all_ok = true;
        for i in 0..m {
            let copy = i + m;
            let mut ok = rng.gen_bool(survive_p[i]);
            if !ok {
                injected += 1;
            }
            if deployment.active[copy] {
                let copy_ok = rng.gen_bool(survive_p[copy]);
                if !copy_ok {
                    injected += 1;
                }
                ok = ok || copy_ok;
            }
            if ok {
                task_successes[i] += 1;
            } else {
                all_ok = false;
            }
        }
        if all_ok {
            system_successes += 1;
        }
    }
    FaultReport { trials, system_successes, task_successes, injected_faults: injected }
}

/// The analytic reliability of original task `i` under `deployment`:
/// `r_i` or the duplicated `r'_i = 1 − (1 − r_i)(1 − r_{i+M})`.
pub fn analytic_task_reliability(
    problem: &ProblemInstance,
    deployment: &Deployment,
    i: TaskId,
) -> f64 {
    let r = problem.reliability(i, deployment.frequency[i.index()]);
    let copy = problem.tasks.copy_of(i);
    if deployment.active[copy.index()] {
        let rc = problem.reliability(copy, deployment.frequency[copy.index()]);
        1.0 - (1.0 - r) * (1.0 - rc)
    } else {
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_core::DeploymentSession;
    use ndp_noc::{Mesh2D, NocParams, WeightedNoc};
    use ndp_platform::{Platform, PowerModel, ReliabilityParams, VfTable};
    use ndp_taskset::{generate, GeneratorConfig};

    /// A harsh fault environment so duplication actually triggers and the
    /// Monte-Carlo estimate has signal.
    fn harsh_instance(seed: u64) -> Option<(ProblemInstance, Deployment)> {
        let g = generate(&GeneratorConfig::typical(6), seed).unwrap();
        let vf = VfTable::preset_70nm();
        let platform = Platform::new(
            4,
            vf,
            PowerModel::default(),
            ReliabilityParams { lambda_max_freq: 5e-3, sensitivity: 2.0 },
        )
        .unwrap();
        let p = ProblemInstance::from_original(
            &g,
            platform,
            WeightedNoc::new(Mesh2D::square(2).unwrap(), NocParams::typical(), seed).unwrap(),
            0.98,
            4.0,
        )
        .unwrap();
        let d = DeploymentSession::new(p.clone()).heuristic().ok()?;
        Some((p, d))
    }

    #[test]
    fn monte_carlo_matches_analytic_reliability() {
        let Some((p, d)) = harsh_instance(3) else { return };
        let report = inject_faults(&p, &d, 200_000, 9);
        for i in p.tasks.originals() {
            let analytic = analytic_task_reliability(&p, &d, i);
            let measured = report.task_reliability(i);
            assert!(
                (analytic - measured).abs() < 0.01,
                "{i}: analytic {analytic:.4} vs measured {measured:.4}"
            );
            assert!(analytic >= p.reliability_threshold - 1e-9);
        }
    }

    #[test]
    fn system_reliability_is_product_of_task_reliabilities() {
        let Some((p, d)) = harsh_instance(5) else { return };
        let report = inject_faults(&p, &d, 200_000, 11);
        let analytic: f64 =
            p.tasks.originals().map(|i| analytic_task_reliability(&p, &d, i)).product();
        assert!((report.system_reliability() - analytic).abs() < 0.01);
    }

    #[test]
    fn duplication_increases_measured_reliability() {
        let Some((p, d)) = harsh_instance(7) else { return };
        // Strip every duplicate and re-measure: reliability must drop for
        // tasks that had copies.
        let mut stripped = d.clone();
        for dup in p.tasks.duplicates() {
            stripped.active[dup.index()] = false;
        }
        if d.duplicated_count(&p) == 0 {
            return; // nothing to compare on this seed
        }
        let with = inject_faults(&p, &d, 100_000, 13);
        let without = inject_faults(&p, &stripped, 100_000, 13);
        assert!(with.system_reliability() > without.system_reliability());
    }

    #[test]
    fn deterministic_given_seed() {
        let Some((p, d)) = harsh_instance(2) else { return };
        let a = inject_faults(&p, &d, 10_000, 42);
        let b = inject_faults(&p, &d, 10_000, 42);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        let Some((p, d)) = harsh_instance(2) else { panic!("at least one trial") };
        let _ = inject_faults(&p, &d, 0, 1);
    }
}
