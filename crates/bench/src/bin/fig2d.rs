//! Fig. 2(d): total system energy under the BE (balance) vs ME (minimize
//! total) objectives.
//!
//! The paper reports ME's total energy is lower than BE's by ≈13.6 % on
//! average — the price BE pays for spreading load. Exact solver, N = 4,
//! M = 5, sweeping the task count adds Fig. 2(d)'s x-axis.
//!
//! Runs on the batch engine (`ndp_bench::figs::fig2d`); the whole-family
//! sweep lives in `batch_sweep`, where the BE/ME grid shared with
//! fig 2(e)–(g) is solved once and replayed.

use ndp_bench::figs::{fig2d, ExperimentContext};

fn main() {
    fig2d(&ExperimentContext::new());
}
