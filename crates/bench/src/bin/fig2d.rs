//! Fig. 2(d): total system energy under the BE (balance) vs ME (minimize
//! total) objectives.
//!
//! The paper reports ME's total energy is lower than BE's by ≈13.6 % on
//! average — the price BE pays for spreading load. Exact solver, N = 4,
//! M = 5, sweeping the task count adds Fig. 2(d)'s x-axis.

use ndp_bench::{exact_point, exact_solver_options, mean_finite, per_seed, InstanceSpec};
use ndp_core::{DeployObjective, OptimalConfig};

fn main() {
    let seeds: Vec<u64> = (0..5).collect();
    let task_counts = [3usize, 4, 5, 6];
    println!("# Fig 2(d): total energy, BE vs ME (exact solver, N=4, L=4)");
    println!("{:>4} {:>12} {:>12} {:>10}", "M", "BE_total_mJ", "ME_total_mJ", "ME_saving");
    for &m in &task_counts {
        let rows = per_seed(&seeds, |seed| {
            let problem = InstanceSpec::new(m, 2, 2.0, seed).build();
            let be_cfg =
                OptimalConfig { solver: exact_solver_options(), ..OptimalConfig::default() };
            let me_cfg = OptimalConfig {
                objective: DeployObjective::MinimizeTotalEnergy,
                solver: exact_solver_options(),
                ..OptimalConfig::default()
            };
            // BE optimizes max-energy; report its *total* via the deployment.
            let be_total = ndp_bench::session_for(&problem, &be_cfg)
                .solve()
                .ok()
                .and_then(|o| o.deployment)
                .map(|d| d.energy_report(&problem).total_mj())
                .unwrap_or(f64::NAN);
            let me = exact_point(&problem, &me_cfg);
            (be_total, me.objective_mj)
        });
        let be = mean_finite(&rows.iter().map(|(b, _)| *b).collect::<Vec<_>>());
        let me = mean_finite(&rows.iter().map(|(_, m)| *m).collect::<Vec<_>>());
        let saving = (1.0 - me / be) * 100.0;
        println!("{m:>4} {be:>12.4} {me:>12.4} {saving:>9.2}%");
    }
}
