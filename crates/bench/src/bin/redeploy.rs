//! Online re-deployment: incremental re-solve vs. from-scratch rebuild.
//!
//! Drives a [`DeploymentSession`] through the paper's runtime scenario
//! events — a core fault, a deadline tightening and an aperiodic task
//! arrival — and measures, per event, the *incremental* re-solve (apply
//! the event to the live session, re-enter branch-and-bound warm on the
//! carried cuts/basis/incumbent) against the *from-scratch* baseline (a
//! fresh session on the mutated problem, cold model build + cold search).
//! Both arms run the same solver configuration, so proven answers must
//! coincide; the speedup column is the from-scratch / incremental
//! wall-clock ratio.
//!
//! ```text
//! redeploy [--tasks M] [--mesh N] [--alpha A] [--seeds K]
//!          [--budget SECONDS] [--smoke] [--append-json PATH]
//! ```
//!
//! `--smoke` runs a fixed small grid and exits non-zero if the two arms
//! diverge on any proven answer, or if the incremental arm is slower in
//! aggregate over the events it absorbed in place (a `Rebuilt` event
//! reconstructs the model exactly like the scratch arm, so those rows
//! gate agreement only) — the CI gate for the re-solve engine. `--append-json`
//! appends one record per (seed, event) in the `BENCH_milp.json`
//! trajectory layout, with the `speedup` column filled in.

use ndp_bench::{append_bench_json, BenchRecord, InstanceSpec};
use ndp_core::{
    DeploymentSession, EventDisposition, OptimalConfig, OptimalOutcome, PathMode, ScenarioEvent,
};
use ndp_milp::{SolveStatus, SolverOptions};
use ndp_platform::ProcessorId;
use ndp_taskset::{Task, TaskId};
use std::time::Instant;

/// One arm's answer to one event.
struct Timed {
    outcome: OptimalOutcome,
    seconds: f64,
}

/// Incremental-vs-scratch comparison for one event on one seed.
struct Row {
    seed: u64,
    label: &'static str,
    disposition: EventDisposition,
    incremental: Timed,
    scratch: Timed,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.scratch.seconds / self.incremental.seconds.max(1e-9)
    }

    /// Both arms reached a proven answer (optimal or infeasible) — only
    /// then are they required to agree.
    fn both_proven(&self) -> bool {
        let proven = |s: SolveStatus| matches!(s, SolveStatus::Optimal | SolveStatus::Infeasible);
        proven(self.incremental.outcome.status) && proven(self.scratch.outcome.status)
    }

    fn diverged(&self) -> Option<String> {
        if !self.both_proven() {
            return None;
        }
        let (inc, scr) = (&self.incremental.outcome, &self.scratch.outcome);
        if inc.status != scr.status {
            return Some(format!(
                "seed {} {}: status {:?} (incremental) vs {:?} (scratch)",
                self.seed, self.label, inc.status, scr.status
            ));
        }
        if let (Some(a), Some(b)) = (inc.objective_mj, scr.objective_mj) {
            let tol = 1e-5 * a.abs().max(1.0);
            if (a - b).abs() > tol {
                return Some(format!(
                    "seed {} {}: objective {a:.6} (incremental) vs {b:.6} (scratch), tol {tol:.2e}",
                    self.seed, self.label
                ));
            }
        }
        None
    }
}

/// The paper's runtime scenario against a given instance: lose the
/// highest-numbered core, tighten the first task's deadline by 5 %, then
/// admit an aperiodic arrival that reads from task 0.
fn scenario(session: &DeploymentSession) -> Vec<(&'static str, ScenarioEvent)> {
    let problem = session.problem();
    let last_core = problem.num_processors() - 1;
    let t0 = problem.tasks.graph().task(TaskId(0));
    vec![
        ("fault", ScenarioEvent::CoreFault { processor: ProcessorId(last_core) }),
        (
            "deadline",
            ScenarioEvent::DeadlineChange { task: TaskId(0), deadline_ms: t0.deadline_ms * 0.95 },
        ),
        (
            "arrival",
            ScenarioEvent::TaskArrival {
                task: Task::new("aperiodic", t0.wcec * 0.5, t0.deadline_ms),
                predecessors: vec![(TaskId(0), 1.0)],
            },
        ),
    ]
}

fn config(budget: f64) -> OptimalConfig {
    let mut solver = SolverOptions::default().time_limit(budget);
    // Serial + tight gap: both arms must land on the same proven optimum,
    // so the comparison is answer-for-answer, not just wall-clock.
    solver.threads = 1;
    solver.relative_gap = 1e-6;
    OptimalConfig { solver, path_mode: PathMode::Multi, ..OptimalConfig::default() }
}

fn timed_solve(session: &mut DeploymentSession) -> Timed {
    let t0 = Instant::now();
    let outcome = session.solve().expect("solve must not error");
    Timed { outcome, seconds: t0.elapsed().as_secs_f64() }
}

/// Runs the full scenario on one seed, returning one row per event.
fn run_seed(tasks: usize, mesh: usize, alpha: f64, seed: u64, budget: f64) -> Vec<Row> {
    let problem = InstanceSpec::new(tasks, mesh, alpha, seed).build();
    let cfg = config(budget);
    let events = {
        let probe = ndp_bench::session_for(&problem, &cfg);
        scenario(&probe)
    };

    // The incremental arm: one live session carries solver state across
    // the whole scenario. Its base solve warms the carry.
    let mut live = ndp_bench::session_for(&problem, &cfg);
    let base = timed_solve(&mut live);
    assert!(
        base.outcome.deployment.is_some(),
        "seed {seed}: the base instance must be feasible (got {:?})",
        base.outcome.status
    );

    let mut rows = Vec::new();
    for (idx, (label, event)) in events.iter().enumerate() {
        let disposition = live.apply(event).expect("scenario event must be valid");
        let t0 = Instant::now();
        let outcome = live.solve().expect("incremental re-solve must not error");
        let incremental = Timed { outcome, seconds: t0.elapsed().as_secs_f64() };

        // The from-scratch baseline: rebuild from the original instance,
        // replay the event history cold, build a fresh model and search
        // with no carried state. The replay itself is part of the cost of
        // not having a live session.
        let t0 = Instant::now();
        let mut scratch = ndp_bench::session_for(&problem, &cfg);
        for (_, e) in &events[..=idx] {
            scratch.apply(e).expect("scenario event must be valid");
        }
        let outcome = scratch.solve().expect("from-scratch solve must not error");
        let scratch = Timed { outcome, seconds: t0.elapsed().as_secs_f64() };

        rows.push(Row { seed, label, disposition, incremental, scratch });
    }
    rows
}

fn record(tasks: usize, mesh: usize, row: &Row) -> BenchRecord {
    let out = &row.incremental.outcome;
    BenchRecord {
        instance: format!("redeploy-M{tasks}-N{}-seed{}-{}", mesh * mesh, row.seed, row.label),
        kernel: "sparse-lu".into(),
        pricing: "dse".into(),
        node_order: "best-bound".into(),
        warm_start: true,
        cuts: true,
        heuristics: true,
        propagation: true,
        conflict_cuts: true,
        threads: 1,
        status: format!("{:?}", out.status),
        nodes: out.nodes,
        pivots: out.stats.simplex_iterations,
        warm_starts: out.stats.warm_starts,
        cold_starts: out.stats.cold_starts,
        cuts_applied: out.stats.cuts_applied,
        heuristic_incumbents: out.stats.heuristic_incumbents,
        propagated_bounds: out.stats.propagated_bounds,
        conflict_cuts_applied: out.stats.conflict_cuts_applied,
        gap: match out.objective_mj {
            Some(obj) => (obj - out.best_bound_mj).abs() / obj.abs().max(1.0),
            None => f64::INFINITY,
        },
        dual_bound: out.best_bound_mj,
        seconds: row.incremental.seconds,
        speedup: Some(row.speedup()),
        batch: false,
        portfolio: false,
        sweep_wall_seconds: None,
        branch_rule: None,
        symmetry: None,
    }
}

fn main() {
    let mut tasks = 5usize;
    let mut mesh = 2usize;
    let mut alpha = 1.6f64;
    let mut seeds = 3u64;
    let mut budget = 30.0f64;
    let mut smoke = false;
    let mut json: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--smoke" {
            smoke = true;
            i += 1;
            continue;
        }
        let val = args.get(i + 1).unwrap_or_else(|| {
            eprintln!("missing value for {}", args[i]);
            std::process::exit(2);
        });
        match args[i].as_str() {
            "--tasks" => tasks = val.parse().expect("--tasks takes a count"),
            "--mesh" => mesh = val.parse().expect("--mesh takes a side"),
            "--alpha" => alpha = val.parse().expect("--alpha takes a float"),
            "--seeds" => seeds = val.parse().expect("--seeds takes a count"),
            "--budget" => budget = val.parse().expect("--budget takes seconds"),
            "--append-json" => json = Some(val.clone()),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    if smoke {
        // The CI grid: small enough to prove every answer quickly, large
        // enough to exercise all three event kinds on multiple seeds. The
        // budget is generous so every arm proves instead of saturating the
        // time limit — proven runs make the node counts deterministic,
        // which the per-class gate below relies on.
        tasks = 4;
        mesh = 2;
        alpha = 1.6;
        seeds = 2;
        budget = 60.0;
    }

    println!(
        "# Online re-deployment: incremental vs from-scratch (M={tasks}, N={}, alpha={alpha}, \
         {seeds} seed(s), {budget} s budget)",
        mesh * mesh
    );
    println!(
        "{:>5} {:>9} {:>12} {:>11} {:>9} {:>12} {:>11} {:>9} {:>12} {:>9}",
        "seed",
        "event",
        "disposition",
        "inc obj",
        "inc nd",
        "inc s",
        "scratch s",
        "scr nd",
        "scratch obj",
        "speedup"
    );

    let mut rows = Vec::new();
    for seed in 0..seeds {
        rows.extend(run_seed(tasks, mesh, alpha, seed, budget));
    }

    let fmt_obj = |o: Option<f64>| o.map_or_else(|| "infeas".into(), |v| format!("{v:.4}"));
    for row in &rows {
        println!(
            "{:>5} {:>9} {:>12} {:>11} {:>9} {:>12.4} {:>11.4} {:>9} {:>12} {:>8.2}x",
            row.seed,
            row.label,
            format!("{:?}", row.disposition),
            fmt_obj(row.incremental.outcome.objective_mj),
            row.incremental.outcome.nodes,
            row.incremental.seconds,
            row.scratch.seconds,
            row.scratch.outcome.nodes,
            fmt_obj(row.scratch.outcome.objective_mj),
            row.speedup(),
        );
    }

    let inc_total: f64 = rows.iter().map(|r| r.incremental.seconds).sum();
    let scr_total: f64 = rows.iter().map(|r| r.scratch.seconds).sum();
    let aggregate = scr_total / inc_total.max(1e-9);
    println!(
        "# aggregate over {} re-solves: incremental {inc_total:.3} s, from-scratch \
         {scr_total:.3} s, speedup {aggregate:.2}x",
        rows.len()
    );
    // Per-event-class aggregates, so a regression in one class (e.g. the
    // arrival rebuild) cannot hide behind the speedups of the others.
    // Wall-clock is noisy per class on a loaded CI box, but node counts
    // under `threads = 1` are deterministic, so the per-class envelope is
    // gated on nodes and only the whole-scenario aggregate on time.
    struct ClassAgg {
        label: &'static str,
        inc: f64,
        scr: f64,
        inc_nodes: u64,
        scr_nodes: u64,
        all_incremental: bool,
    }
    let mut classes: Vec<ClassAgg> = Vec::new();
    for row in &rows {
        match classes.iter_mut().find(|c| c.label == row.label) {
            Some(c) => {
                c.inc += row.incremental.seconds;
                c.scr += row.scratch.seconds;
                c.inc_nodes += row.incremental.outcome.nodes;
                c.scr_nodes += row.scratch.outcome.nodes;
                c.all_incremental &= row.disposition == EventDisposition::Incremental;
            }
            None => classes.push(ClassAgg {
                label: row.label,
                inc: row.incremental.seconds,
                scr: row.scratch.seconds,
                inc_nodes: row.incremental.outcome.nodes,
                scr_nodes: row.scratch.outcome.nodes,
                all_incremental: row.disposition == EventDisposition::Incremental,
            }),
        }
    }
    for c in &classes {
        println!(
            "# class {:>9}: incremental {:.3} s / {} node(s), from-scratch {:.3} s / {} node(s), \
             speedup {:.2}x ({})",
            c.label,
            c.inc,
            c.inc_nodes,
            c.scr,
            c.scr_nodes,
            c.scr / c.inc.max(1e-9),
            if c.all_incremental { "warm re-entry" } else { "rebuild" }
        );
    }

    let divergences: Vec<String> = rows.iter().filter_map(Row::diverged).collect();
    for d in &divergences {
        eprintln!("DIVERGENCE: {d}");
    }

    if let Some(path) = &json {
        let records: Vec<BenchRecord> = rows.iter().map(|r| record(tasks, mesh, r)).collect();
        append_bench_json(path, &records).expect("append --append-json output");
        println!("appended {} record(s) to {path}", records.len());
    }

    if smoke {
        if !divergences.is_empty() {
            eprintln!("smoke gate FAILED: incremental re-solve diverged from scratch");
            std::process::exit(1);
        }
        let mut failed = false;
        // Node envelope per class: warm re-entry may reshape the tree (the
        // carried state encodes the *old* problem's exploration order), so
        // parity is not guaranteed node-for-node — but a class blowing past
        // 30% extra nodes (plus a small absolute floor for near-zero trees)
        // means the carried state has become actively harmful.
        for c in &classes {
            let cap = (c.scr_nodes as f64 * 1.30) as u64 + 64;
            if c.inc_nodes > cap {
                eprintln!(
                    "smoke gate FAILED: {} class explored {} node(s) incrementally vs {} \
                     from scratch (envelope {} node(s))",
                    c.label, c.inc_nodes, c.scr_nodes, cap
                );
                failed = true;
            }
        }
        // The engine must stay a net win in wall-clock over the whole event
        // stream: warm fathoming on the easy events has to pay for any tree
        // reshaping on the hard ones.
        if inc_total >= scr_total {
            eprintln!(
                "smoke gate FAILED: incremental aggregate ({inc_total:.3} s) not faster than \
                 from-scratch ({scr_total:.3} s)"
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "smoke gate ok: proven answers agree, every class within its node envelope, \
             aggregate {aggregate:.2}x"
        );
    }
}
