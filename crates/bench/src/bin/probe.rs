//! Internal scaling probe (not part of the figure set).
use ndp_bench::InstanceSpec;
use ndp_core::{DeployObjective, MilpEncoding, PathMode};
use ndp_milp::SolverOptions;

fn main() {
    for (m, nodes) in [(3usize, 1usize), (3, 0), (4, 0), (5, 0)] {
        let p = InstanceSpec::new(m, 2, 3.0, 7).build();
        let enc = MilpEncoding::build(&p, PathMode::Multi, DeployObjective::BalanceEnergy).unwrap();
        let mut opts = SolverOptions::default().time_limit(60.0);
        opts.node_limit = nodes;
        let t = std::time::Instant::now();
        let sol = enc.model.solve_with(&opts).unwrap();
        eprintln!(
            "M={m} node_limit={nodes} status={:?} nodes={} simplex_iters={} time={:.2}s",
            sol.status(),
            sol.node_count(),
            sol.simplex_iterations(),
            t.elapsed().as_secs_f64()
        );
    }
}
