//! Fig. 2(f): solver wall time vs task count `M` — optimal vs heuristic.
//!
//! The paper's message: exact solve time explodes with `M` while the
//! heuristic stays negligible. With the in-workspace branch-and-bound the
//! explosion simply arrives at smaller `M` than with Gurobi; the heuristic
//! additionally runs at the paper's own sizes (M up to 100 on N = 16) to
//! show its scalability.
//!
//! Runs on the batch engine (`ndp_bench::figs::fig2f`); the whole-family
//! sweep lives in `batch_sweep`, where the exact arm replays fig 2(d)'s
//! BE grid from the shared solve cache.

use ndp_bench::figs::{fig2f, ExperimentContext};

fn main() {
    fig2f(&ExperimentContext::new());
}
