//! Fig. 2(f): solver wall time vs task count `M` — optimal vs heuristic.
//!
//! The paper's message: exact solve time explodes with `M` while the
//! heuristic stays negligible. With the in-workspace branch-and-bound the
//! explosion simply arrives at smaller `M` than with Gurobi; the heuristic
//! additionally runs at the paper's own sizes (M up to 100 on N = 16) to
//! show its scalability.

use ndp_bench::{
    exact_point, exact_solver_options, heuristic_point, mean_finite, per_seed, InstanceSpec,
};
use ndp_core::OptimalConfig;

fn main() {
    let seeds: Vec<u64> = (0..5).collect();
    println!("# Fig 2(f): wall time vs M");
    println!("## exact arm (N=4, L=4, 6 s budget per solve)");
    println!(
        "{:>4} {:>12} {:>10} {:>10} {:>12}",
        "M", "optimal_s", "nodes", "proven", "heuristic_s"
    );
    for m in [3usize, 4, 5, 6] {
        let rows = per_seed(&seeds, |seed| {
            let problem = InstanceSpec::new(m, 2, 2.0, seed).build();
            let cfg = OptimalConfig { solver: exact_solver_options(), ..OptimalConfig::default() };
            let exact = exact_point(&problem, &cfg);
            let h_secs = heuristic_point(&problem).seconds;
            (exact, h_secs)
        });
        let opt_s = mean_finite(&rows.iter().map(|(e, _)| e.seconds).collect::<Vec<_>>());
        let nodes = rows.iter().map(|(e, _)| e.nodes).sum::<u64>() / rows.len() as u64;
        let proven = rows.iter().filter(|(e, _)| e.proven).count();
        let heu_s = mean_finite(&rows.iter().map(|(_, h)| *h).collect::<Vec<_>>());
        println!("{m:>4} {opt_s:>12.3} {nodes:>10} {:>7}/{:<2} {heu_s:>12.6}", proven, rows.len());
    }
    println!("## heuristic arm at paper sizes (N=16, L=6)");
    println!("{:>4} {:>14} {:>10}", "M", "heuristic_s", "feasible");
    for m in [10usize, 20, 50, 100] {
        let rows = per_seed(&seeds, |seed| {
            let mut spec = InstanceSpec::new(m, 4, 3.0, seed);
            spec.levels = 6;
            let problem = spec.build();
            heuristic_point(&problem)
        });
        let heu_s = mean_finite(&rows.iter().map(|h| h.seconds).collect::<Vec<_>>());
        let feas = rows.iter().filter(|h| h.feasible()).count() as f64 / rows.len() as f64;
        println!("{m:>4} {heu_s:>14.6} {feas:>10.2}");
    }
}
