//! Fig. 2(c): number of duplicated tasks `M_d` vs the V/F energy-gap index
//! `ε = max_l(P_l/f_l) / min_l(P_l/f_l)`.
//!
//! The paper's claim: with a small `ε` (fast levels nearly as efficient per
//! cycle as slow ones) the optimizer runs tasks fast and avoids duplication;
//! as `ε` grows, running slow + duplicating becomes the cheaper way to meet
//! `R_th`, so `M_d` rises. We sweep `ε` by widening the voltage range of a
//! synthetic 4-level table (exact solver, N = 4, M = 6).

use ndp_bench::{exact_solver_options, per_seed, InstanceSpec};
use ndp_core::{duplicated_count, energy_gap_index, DeployObjective, OptimalConfig};
use ndp_platform::ReliabilityParams;

fn main() {
    let seeds: Vec<u64> = (0..5).collect();
    // Wider voltage spans => larger per-cycle energy gap ε.
    let v_spans = [0.05, 0.15, 0.25, 0.40, 0.55];
    println!("# Fig 2(c): M_d vs epsilon (exact solver, N=4, M=6, L=4)");
    println!(
        "{:>8} {:>10} {:>8} {:>8} {:>10}",
        "v_span", "epsilon", "M_d_BE", "M_d_ME", "feasible"
    );
    for &span in &v_spans {
        let rows = per_seed(&seeds, |seed| {
            let mut spec = InstanceSpec::new(6, 2, 2.5, seed);
            spec.v_range = (0.85, 0.85 + span);
            // Low leakage keeps the platform dynamic-power dominated, so the
            // ε index grows monotonically with the voltage span.
            spec.power.lg = 4.0e4;
            // A harsher fault model so duplication is genuinely on the
            // table at the threshold.
            spec.reliability = ReliabilityParams { lambda_max_freq: 2e-5, sensitivity: 3.0 };
            spec.reliability_threshold = 0.9995;
            let problem = spec.build();
            let eps = energy_gap_index(&problem);
            let count = |objective| {
                let cfg = OptimalConfig {
                    objective,
                    solver: exact_solver_options(),
                    ..OptimalConfig::default()
                };
                ndp_bench::session_for(&problem, &cfg)
                    .solve()
                    .ok()
                    .and_then(|o| o.deployment)
                    .map(|d| duplicated_count(&problem, &d))
            };
            (
                eps,
                count(DeployObjective::BalanceEnergy),
                count(DeployObjective::MinimizeTotalEnergy),
            )
        });
        let eps = rows.iter().map(|(e, _, _)| *e).sum::<f64>() / rows.len() as f64;
        let avg = |xs: Vec<usize>| {
            if xs.is_empty() {
                f64::NAN
            } else {
                xs.iter().sum::<usize>() as f64 / xs.len() as f64
            }
        };
        let m_d_be = avg(rows.iter().filter_map(|(_, b, _)| *b).collect());
        let m_d_me = avg(rows.iter().filter_map(|(_, _, m)| *m).collect());
        let feas = rows.iter().filter(|(_, b, _)| b.is_some()).count() as f64 / rows.len() as f64;
        println!("{span:>8.2} {eps:>10.3} {m_d_be:>8.2} {m_d_me:>8.2} {feas:>10.2}");
    }
}
