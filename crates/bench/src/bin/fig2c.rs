//! Fig. 2(c): number of duplicated tasks `M_d` vs the V/F energy-gap index
//! `ε = max_l(P_l/f_l) / min_l(P_l/f_l)`.
//!
//! The paper's claim: with a small `ε` (fast levels nearly as efficient per
//! cycle as slow ones) the optimizer runs tasks fast and avoids duplication;
//! as `ε` grows, running slow + duplicating becomes the cheaper way to meet
//! `R_th`, so `M_d` rises. We sweep `ε` by widening the voltage range of a
//! synthetic 4-level table (exact solver, N = 4, M = 6).
//!
//! Runs on the batch engine (`ndp_bench::figs::fig2c`); the whole-family
//! sweep lives in `batch_sweep`.

use ndp_bench::figs::{fig2c, ExperimentContext};

fn main() {
    fig2c(&ExperimentContext::new());
}
