//! Ablation (beyond the paper): the 3-phase heuristic vs naive mappers at
//! the paper's platform scale (N = 16, L = 6, M = 20), 20 seeds.
//!
//! Reported per mapper: feasibility under the horizon, mean max-energy
//! (the BE objective), mean total energy and mean balance index φ.

use ndp_bench::{mean_finite, per_seed, InstanceSpec};
use ndp_core::{
    first_fit_fastest, random_mapping, round_robin, Deployment, DeploymentSession, ProblemInstance,
};

fn stats(label: &str, outcomes: &[Option<(f64, f64, f64, bool)>]) {
    let feasible = outcomes.iter().flatten().filter(|(_, _, _, fits)| *fits).count();
    let max: Vec<f64> = outcomes.iter().flatten().map(|(m, _, _, _)| *m).collect();
    let total: Vec<f64> = outcomes.iter().flatten().map(|(_, t, _, _)| *t).collect();
    let phi: Vec<f64> = outcomes.iter().flatten().map(|(_, _, p, _)| *p).collect();
    println!(
        "{label:<18} {:>9.2} {:>12.4} {:>12.4} {:>8.3}",
        feasible as f64 / outcomes.len() as f64,
        mean_finite(&max),
        mean_finite(&total),
        mean_finite(&phi),
    );
}

fn measure(problem: &ProblemInstance, d: &Deployment) -> (f64, f64, f64, bool) {
    let r = d.energy_report(problem);
    let makespan =
        problem.tasks.graph().task_ids().map(|t| d.end_ms(problem, t)).fold(0.0, f64::max);
    (r.max_mj(), r.total_mj(), r.balance_index(), makespan <= problem.horizon_ms + 1e-9)
}

/// A seed-indexed mapper, shareable with the `'static` work-stealing
/// tasks `per_seed` now schedules on the global worker pool.
type Mapper = std::sync::Arc<dyn Fn(&ProblemInstance, u64) -> Option<Deployment> + Send + Sync>;

fn main() {
    let seeds: Vec<u64> = (0..20).collect();
    println!("# Ablation: heuristic vs baselines (N=16, M=20, L=6, alpha=3)");
    println!("{:<18} {:>9} {:>12} {:>12} {:>8}", "mapper", "fits_H", "max_mJ", "total_mJ", "phi");
    let run = |f: Mapper| {
        per_seed(&seeds, move |seed| {
            let mut spec = InstanceSpec::new(20, 4, 3.0, seed);
            spec.levels = 6;
            let problem = spec.build();
            f(&problem, seed).map(|d| measure(&problem, &d))
        })
    };
    stats(
        "paper-heuristic",
        &run(std::sync::Arc::new(|p: &ProblemInstance, _| {
            DeploymentSession::new(p.clone()).heuristic().ok()
        })),
    );
    stats("round-robin", &run(std::sync::Arc::new(|p: &ProblemInstance, _| round_robin(p).ok())));
    stats(
        "first-fit",
        &run(std::sync::Arc::new(|p: &ProblemInstance, _| first_fit_fastest(p).ok())),
    );
    stats("random", &run(std::sync::Arc::new(|p: &ProblemInstance, s| random_mapping(p, s).ok())));
}
