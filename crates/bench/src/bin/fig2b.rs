//! Fig. 2(b): `M_max` (most tasks on any one processor) vs the
//! communication/computation energy ratio `μ`.
//!
//! The paper's claim: as data movement gets relatively more expensive, the
//! optimizer packs dependent tasks together, so `M_max` grows with `μ`.
//! The heuristic's allocation phase is blind to `μ` (its communication
//! estimate is allocation-independent), so this effect only shows in the
//! exact arm — which is what we sweep (N = 4, M = 6).

use ndp_bench::{exact_solver_options, per_seed, InstanceSpec};
use ndp_core::{communication_computation_ratio, max_tasks_per_processor, OptimalConfig};
use ndp_noc::NocParams;

fn main() {
    let seeds: Vec<u64> = (0..5).collect();
    let factors = [0.2, 0.5, 1.0, 2.0, 5.0, 10.0];
    println!("# Fig 2(b): M_max vs mu (exact solver, N=4, M=6, L=4)");
    println!("{:>8} {:>10} {:>8} {:>10}", "factor", "mu", "M_max", "feasible");
    for &factor in &factors {
        let rows = per_seed(&seeds, |seed| {
            let mut spec = InstanceSpec::new(6, 2, 2.0, seed);
            spec.noc = NocParams::typical().scale_energy(factor);
            let problem = spec.build();
            let mu = communication_computation_ratio(&problem);
            let cfg = OptimalConfig { solver: exact_solver_options(), ..OptimalConfig::default() };
            let out = ndp_bench::session_for(&problem, &cfg).solve().ok();
            let m_max = out
                .as_ref()
                .and_then(|o| o.deployment.as_ref())
                .map(|d| max_tasks_per_processor(&problem, d));
            let feasible = m_max.is_some();
            (mu, m_max, feasible)
        });
        let mu = rows.iter().map(|(mu, _, _)| *mu).sum::<f64>() / rows.len() as f64;
        let solved: Vec<usize> = rows.iter().filter_map(|(_, m, _)| *m).collect();
        let m_max = if solved.is_empty() {
            f64::NAN
        } else {
            solved.iter().sum::<usize>() as f64 / solved.len() as f64
        };
        let feas = rows.iter().filter(|(_, m, _)| m.is_some()).count() as f64 / rows.len() as f64;
        println!("{factor:>8.1} {mu:>10.3} {m_max:>8.2} {feas:>10.2}");
    }
}
