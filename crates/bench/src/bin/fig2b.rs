//! Fig. 2(b): `M_max` (most tasks on any one processor) vs the
//! communication/computation energy ratio `μ`.
//!
//! The paper's claim: as data movement gets relatively more expensive, the
//! optimizer packs dependent tasks together, so `M_max` grows with `μ`.
//! The heuristic's allocation phase is blind to `μ` (its communication
//! estimate is allocation-independent), so this effect only shows in the
//! exact arm — which is what we sweep (N = 4, M = 6).
//!
//! Runs on the batch engine (`ndp_bench::figs::fig2b`); the whole-family
//! sweep lives in `batch_sweep`.

use ndp_bench::figs::{fig2b, ExperimentContext};

fn main() {
    fig2b(&ExperimentContext::new());
}
