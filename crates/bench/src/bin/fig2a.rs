//! Fig. 2(a): energy and feasibility under multi-path vs single-path
//! routing, as the horizon factor `α` grows.
//!
//! Paper setup: N = 16, M = 20, L = 6, Gurobi. Our exact arm substitutes the
//! in-workspace branch-and-bound, so the sweep runs at N = 4, M = 5 (see
//! EXPERIMENTS.md); the *shape* under test is (i) feasibility rises with
//! `α`, (ii) multi-path is at least as feasible as single-path, and
//! (iii) multi-path energy ≤ single-path energy.

use ndp_bench::{exact_point, exact_solver_options, mean_finite, per_seed, InstanceSpec};

use ndp_core::{OptimalConfig, PathMode};
use ndp_noc::PathKind;

fn main() {
    let seeds: Vec<u64> = (0..6).collect();
    let alphas = [0.25, 0.5, 1.0, 1.5, 2.0];
    println!("# Fig 2(a): multi-path vs single-path (exact solver, N=4, M=5, L=4)");
    println!(
        "{:>6} {:>12} {:>14} {:>13} {:>15}",
        "alpha", "multi_feas", "multi_mJ", "single_feas", "single_mJ"
    );
    for &alpha in &alphas {
        let rows = per_seed(&seeds, |seed| {
            let problem = InstanceSpec::new(5, 2, alpha, seed).build();
            // Solve the (smaller) single-path model first and seed the
            // multi-path search with its solution: every single-path
            // deployment is multi-path feasible, so the printed multi
            // incumbent can never be worse even under the time budget.
            let single_cfg = OptimalConfig {
                path_mode: PathMode::SingleFixed(PathKind::EnergyOriented),
                solver: exact_solver_options(),
                ..OptimalConfig::default()
            };
            let t0 = std::time::Instant::now();
            let single_out = ndp_bench::session_for(&problem, &single_cfg).solve();
            let single = ndp_bench::reduce_outcome(&single_out, t0.elapsed().as_secs_f64());
            let multi = exact_point(
                &problem,
                &OptimalConfig {
                    warm_start_deployment: single_out.ok().and_then(|o| o.deployment),
                    solver: exact_solver_options(),
                    ..OptimalConfig::default()
                },
            );
            (multi, single)
        });
        let multi_feas = rows.iter().filter(|(m, _)| m.feasible).count() as f64 / rows.len() as f64;
        let single_feas =
            rows.iter().filter(|(_, s)| s.feasible).count() as f64 / rows.len() as f64;
        // Energy averaged over instances where both arms are feasible, so
        // the comparison is apples-to-apples.
        let both: Vec<&(ndp_bench::ExactPoint, ndp_bench::ExactPoint)> =
            rows.iter().filter(|(m, s)| m.feasible && s.feasible).collect();
        let multi_mj = mean_finite(&both.iter().map(|(m, _)| m.objective_mj).collect::<Vec<_>>());
        let single_mj = mean_finite(&both.iter().map(|(_, s)| s.objective_mj).collect::<Vec<_>>());
        println!(
            "{alpha:>6.2} {multi_feas:>12.2} {multi_mj:>14.4} {single_feas:>13.2} {single_mj:>15.4}"
        );
    }
}
