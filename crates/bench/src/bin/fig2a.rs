//! Fig. 2(a): energy and feasibility under multi-path vs single-path
//! routing, as the horizon factor `α` grows.
//!
//! Paper setup: N = 16, M = 20, L = 6, Gurobi. Our exact arm substitutes the
//! in-workspace branch-and-bound, so the sweep runs at N = 4, M = 5 (see
//! EXPERIMENTS.md); the *shape* under test is (i) feasibility rises with
//! `α`, (ii) multi-path is at least as feasible as single-path, and
//! (iii) multi-path energy ≤ single-path energy.
//!
//! Runs on the batch engine in portfolio mode: per seed, the single-path
//! member is linked into the multi-path member so its solution seeds the
//! larger search the moment it lands (`ndp_bench::figs::fig2a`). The
//! whole-family sweep lives in `batch_sweep`.

use ndp_bench::figs::{fig2a, ExperimentContext};

fn main() {
    fig2a(&ExperimentContext::new());
}
