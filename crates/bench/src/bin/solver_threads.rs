//! Thread-scaling of the exact branch-and-bound (`SolverOptions::threads`).
//!
//! Runs the Fig. 2 medium exact instance (M = 5 on the N = 4 mesh) at
//! 1/2/4/8 workers under a fixed per-solve time budget and reports node
//! throughput. The heuristic warm start is disabled so every run explores a
//! non-trivial tree, and the per-thread node counts show how evenly the
//! work-stealing pool spreads the search.
//!
//! Speedup is relative to `threads = 1` and is bounded by the host's
//! available parallelism (printed in the header): on a single-core host the
//! workers interleave and throughput stays flat.
//!
//! ```text
//! solver_threads [--pricing dse|devex|dantzig] [--warm on|off]
//!                [--cuts on|off] [--json PATH] [--trace]
//! ```
//!
//! `--warm` toggles the *parent-basis* node warm start (not the heuristic
//! incumbent). `--cuts` toggles root cutting planes (on by default; turning
//! them off grows the tree, which is useful when probing pure node
//! throughput). `--json PATH` writes one record per (threads, seed) solve.
//! `--trace` streams solver events (presolve, root, incumbents, per-worker
//! stats, termination) to stderr while the table prints to stdout.

use ndp_bench::{
    parse_pricing, pricing_name, trace_observer, write_bench_json, BenchRecord, InstanceSpec,
};
use ndp_core::OptimalConfig;
use ndp_milp::{Pricing, SolverOptions};

fn main() {
    let mut trace = false;
    let mut pricing = Pricing::SteepestEdge;
    let mut warm = true;
    let mut cuts = true;
    let mut json: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--trace" {
            trace = true;
            i += 1;
            continue;
        }
        let val = args.get(i + 1).unwrap_or_else(|| {
            eprintln!("missing value for {}", args[i]);
            std::process::exit(2);
        });
        match args[i].as_str() {
            "--pricing" => {
                pricing = parse_pricing(val).unwrap_or_else(|| {
                    eprintln!("--pricing takes dse|devex|dantzig");
                    std::process::exit(2);
                })
            }
            "--warm" => {
                warm = match val.as_str() {
                    "on" => true,
                    "off" => false,
                    _ => {
                        eprintln!("--warm takes on|off");
                        std::process::exit(2);
                    }
                }
            }
            "--cuts" => {
                cuts = match val.as_str() {
                    "on" => true,
                    "off" => false,
                    _ => {
                        eprintln!("--cuts takes on|off");
                        std::process::exit(2);
                    }
                }
            }
            "--json" => json = Some(val.clone()),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 2;
    }

    let seeds: Vec<u64> = (0..3).collect();
    let time_limit = 2.0;
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    println!(
        "# Solver thread scaling (M=5, N=4, {time_limit} s budget per solve, \
         pricing={}, warm={warm}, cuts={cuts})",
        pricing_name(pricing)
    );
    println!("# host parallelism: {cores} core(s)");
    println!(
        "{:>8} {:>10} {:>12} {:>10} {:>10} {:>8}  nodes per worker (seed 0)",
        "threads", "nodes", "pivots", "s/solve", "nodes/s", "speedup"
    );
    let mut base_throughput = f64::NAN;
    let mut records: Vec<BenchRecord> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let mut nodes = 0u64;
        let mut pivots = 0u64;
        let mut total_seconds = 0.0;
        let mut spread = String::new();
        for &seed in &seeds {
            let problem = InstanceSpec::new(5, 2, 2.0, seed).build();
            let mut solver = SolverOptions::default()
                .time_limit(time_limit)
                .threads(threads)
                .pricing(pricing)
                .warm_start(warm)
                .cuts(cuts);
            if trace {
                eprintln!("[trace] --- threads={threads} seed={seed} ---");
                solver = solver.observer(trace_observer());
            }
            solver.relative_gap = 1e-6;
            let cfg = OptimalConfig {
                warm_start_with_heuristic: false,
                solver,
                ..OptimalConfig::default()
            };
            let out = ndp_bench::session_for(&problem, &cfg).solve().expect("solve must not error");
            nodes += out.nodes;
            pivots += out.stats.simplex_iterations;
            total_seconds += out.solve_seconds;
            if seed == 0 {
                spread = format!("{:?}", out.nodes_per_thread);
            }
            records.push(BenchRecord {
                instance: format!("M5-N4-seed{seed}"),
                kernel: "sparse-lu".into(),
                pricing: pricing_name(pricing).into(),
                node_order: "dfs".into(),
                warm_start: warm,
                cuts,
                // Accelerators stay at the solver defaults (all on) here;
                // `basis_kernel --heuristics-ablation` is the binary that
                // varies them.
                heuristics: true,
                propagation: true,
                conflict_cuts: true,
                threads,
                status: format!("{:?}", out.status),
                nodes: out.nodes,
                pivots: out.stats.simplex_iterations,
                warm_starts: out.stats.warm_starts,
                cold_starts: out.stats.cold_starts,
                cuts_applied: out.stats.cuts_applied,
                heuristic_incumbents: out.stats.heuristic_incumbents,
                propagated_bounds: out.stats.propagated_bounds,
                conflict_cuts_applied: out.stats.conflict_cuts_applied,
                // Same formula as `Solution::gap`: relative to the incumbent,
                // infinite (→ null in JSON) when none was found.
                gap: match out.objective_mj {
                    Some(obj) => (obj - out.best_bound_mj).abs() / obj.abs().max(1.0),
                    None => f64::INFINITY,
                },
                dual_bound: out.best_bound_mj,
                seconds: out.solve_seconds,
                speedup: None,
                batch: false,
                portfolio: false,
                sweep_wall_seconds: None,
                branch_rule: None,
                symmetry: None,
            });
        }
        let throughput = nodes as f64 / total_seconds;
        if threads == 1 {
            base_throughput = throughput;
        }
        let speedup = throughput / base_throughput;
        println!(
            "{threads:>8} {nodes:>10} {pivots:>12} {:>10.3} {throughput:>10.1} {speedup:>7.2}x  {spread}",
            total_seconds / seeds.len() as f64,
        );
    }
    if let Some(path) = json {
        write_bench_json(&path, &records).expect("write --json output");
        println!("wrote {} record(s) to {path}", records.len());
    }
}
