//! Thread-scaling of the exact branch-and-bound (`SolverOptions::threads`).
//!
//! Runs the Fig. 2 medium exact instance (M = 5 on the N = 4 mesh) at
//! 1/2/4/8 workers under a fixed per-solve time budget and reports node
//! throughput. The warm start is disabled so every run explores a
//! non-trivial tree, and the per-thread node counts show how evenly the
//! work-stealing pool spreads the search.
//!
//! Speedup is relative to `threads = 1` and is bounded by the host's
//! available parallelism (printed in the header): on a single-core host the
//! workers interleave and throughput stays flat.
//!
//! Pass `--trace` to stream solver events (presolve, root, incumbents,
//! per-worker stats, termination) to stderr while the table prints to
//! stdout.

use ndp_bench::{trace_observer, InstanceSpec};
use ndp_core::{solve_optimal, OptimalConfig};
use ndp_milp::SolverOptions;

fn main() {
    let trace = std::env::args().skip(1).any(|a| a == "--trace");
    let seeds: Vec<u64> = (0..3).collect();
    let time_limit = 2.0;
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    println!("# Solver thread scaling (M=5, N=4, {time_limit} s budget per solve)");
    println!("# host parallelism: {cores} core(s)");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>8}  nodes per worker (seed 0)",
        "threads", "nodes", "s/solve", "nodes/s", "speedup"
    );
    let mut base_throughput = f64::NAN;
    for threads in [1usize, 2, 4, 8] {
        let mut nodes = 0u64;
        let mut total_seconds = 0.0;
        let mut spread = String::new();
        for &seed in &seeds {
            let problem = InstanceSpec::new(5, 2, 2.0, seed).build();
            let mut solver = SolverOptions::default().time_limit(time_limit).threads(threads);
            if trace {
                eprintln!("[trace] --- threads={threads} seed={seed} ---");
                solver = solver.observer(trace_observer());
            }
            solver.relative_gap = 1e-6;
            let cfg = OptimalConfig {
                warm_start_with_heuristic: false,
                solver,
                ..OptimalConfig::default()
            };
            let out = solve_optimal(&problem, &cfg).expect("solve must not error");
            nodes += out.nodes;
            total_seconds += out.solve_seconds;
            if seed == 0 {
                spread = format!("{:?}", out.nodes_per_thread);
            }
        }
        let throughput = nodes as f64 / total_seconds;
        if threads == 1 {
            base_throughput = throughput;
        }
        let speedup = throughput / base_throughput;
        println!(
            "{threads:>8} {nodes:>10} {:>10.3} {throughput:>10.1} {speedup:>7.2}x  {spread}",
            total_seconds / seeds.len() as f64,
        );
    }
}
