//! Fig. 2(h): feasibility ratio `δ = n_f/n_a` vs the horizon factor `α`,
//! optimal vs heuristic, over 20 random task graphs per point (scaled from
//! the paper's `n_a = 30`).
//!
//! The paper's claims: `δ` rises with `α` for both methods, and the optimal
//! method is at least as feasible as the heuristic (it optimizes jointly;
//! the heuristic commits phase by phase). Exact arm at N = 4, M = 5.
//!
//! Runs on the batch engine (`ndp_bench::figs::fig2h`); the whole-family
//! sweep lives in `batch_sweep`, where the `α = 2.0` column shares
//! members with fig 2(d)'s `M = 5` grid.

use ndp_bench::figs::{fig2h, ExperimentContext};

fn main() {
    fig2h(&ExperimentContext::new());
}
