//! Fig. 2(h): feasibility ratio `δ = n_f/n_a` vs the horizon factor `α`,
//! optimal vs heuristic, over 20 random task graphs per point (scaled from the paper's
//! `n_a = 30`).
//!
//! The paper's claims: `δ` rises with `α` for both methods, and the optimal
//! method is at least as feasible as the heuristic (it optimizes jointly;
//! the heuristic commits phase by phase). Exact arm at N = 4, M = 5.

use ndp_bench::{exact_point, exact_solver_options, heuristic_point, per_seed, InstanceSpec};
use ndp_core::{feasibility_ratio, OptimalConfig};

fn main() {
    let seeds: Vec<u64> = (0..20).collect();
    let alphas = [0.25, 0.5, 1.0, 1.5, 2.0];
    println!("# Fig 2(h): feasibility ratio delta vs alpha (N=4, M=5, L=4, 20 graphs)");
    println!("{:>6} {:>14} {:>16}", "alpha", "optimal_delta", "heuristic_delta");
    for &alpha in &alphas {
        let rows = per_seed(&seeds, |seed| {
            let problem = InstanceSpec::new(5, 2, alpha, seed).build();
            let cfg = OptimalConfig { solver: exact_solver_options(), ..OptimalConfig::default() };
            let exact = exact_point(&problem, &cfg);
            let heuristic = heuristic_point(&problem);
            (exact.feasible, heuristic.feasible())
        });
        let opt = feasibility_ratio(&rows.iter().map(|(o, _)| *o).collect::<Vec<_>>());
        let heu = feasibility_ratio(&rows.iter().map(|(_, h)| *h).collect::<Vec<_>>());
        println!("{alpha:>6.2} {opt:>14.2} {heu:>16.2}");
    }
}
