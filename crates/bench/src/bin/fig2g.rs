//! Fig. 2(g): deployment energy vs task count `M` — heuristic vs optimal.
//!
//! The paper reports the heuristic costs ≈26 % more energy than the optimum
//! on average. We compare on instances where the exact arm proves
//! optimality (N = 4, L = 4).

use ndp_bench::{
    exact_point, exact_solver_options, heuristic_point, mean_finite, per_seed, InstanceSpec,
};
use ndp_core::OptimalConfig;

fn main() {
    let seeds: Vec<u64> = (0..5).collect();
    println!("# Fig 2(g): heuristic vs optimal energy (N=4, L=4)");
    println!(
        "{:>4} {:>12} {:>14} {:>10} {:>8}",
        "M", "optimal_mJ", "heuristic_mJ", "overhead", "pairs"
    );
    let mut overall: Vec<f64> = Vec::new();
    for m in [3usize, 4, 5, 6] {
        let rows = per_seed(&seeds, |seed| {
            let problem = InstanceSpec::new(m, 2, 2.0, seed).build();
            let cfg = OptimalConfig { solver: exact_solver_options(), ..OptimalConfig::default() };
            let exact = exact_point(&problem, &cfg);
            let heuristic = heuristic_point(&problem);
            let h_mj = heuristic.deployment.map(|d| d.energy_report(&problem).max_mj());
            (exact, h_mj)
        });
        // Compare against the exact arm's best incumbent. The search is
        // warm-started by the heuristic, so incumbent ≤ heuristic always and
        // the reported overhead is a *lower bound* on the heuristic's true
        // optimality gap (equal to it when `proven`).
        let pairs: Vec<(f64, f64, bool)> = rows
            .iter()
            .filter(|(e, h)| e.feasible && h.is_some())
            .map(|(e, h)| (e.objective_mj, h.expect("filtered"), e.proven || e.gap <= 0.02))
            .collect();
        let o = mean_finite(&pairs.iter().map(|(o, _, _)| *o).collect::<Vec<_>>());
        let h = mean_finite(&pairs.iter().map(|(_, h, _)| *h).collect::<Vec<_>>());
        let overhead = (h / o - 1.0) * 100.0;
        for (o, h, _) in &pairs {
            overall.push((h / o - 1.0) * 100.0);
        }
        let proven = pairs.iter().filter(|(_, _, p)| *p).count();
        println!("{m:>4} {o:>12.4} {h:>14.4} {overhead:>9.2}% {:>5}({proven} proven)", pairs.len());
    }
    println!(
        "\naverage heuristic overhead (lower bound) over {} instances: {:+.2}% (paper: +26.05%)",
        overall.len(),
        mean_finite(&overall)
    );
}
