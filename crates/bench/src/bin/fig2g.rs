//! Fig. 2(g): deployment energy vs task count `M` — heuristic vs optimal.
//!
//! The paper reports the heuristic costs ≈26 % more energy than the optimum
//! on average. We compare on instances where the exact arm proves
//! optimality (N = 4, L = 4).
//!
//! Runs on the batch engine (`ndp_bench::figs::fig2g`); the whole-family
//! sweep lives in `batch_sweep`, where the exact arm replays fig 2(d)'s
//! BE grid from the shared solve cache.

use ndp_bench::figs::{fig2g, ExperimentContext};

fn main() {
    fig2g(&ExperimentContext::new());
}
