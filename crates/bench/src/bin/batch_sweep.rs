//! The whole fig2 family in one process on one shared
//! [`ExperimentContext`]: every figure's exact solves are scheduled
//! through the batch engine, and members that figures have in common
//! (the BE/ME grids of fig 2(d)–(g), fig 2(b)'s unscaled column, the
//! fig 2(h) ∩ fig 2(d) seeds) are solved once and replayed from the
//! shared [`SolveCache`](ndp_core::SolveCache).
//!
//! ```text
//! batch_sweep [--batch-smoke] [--append-json [PATH]] [--baseline-file PATH]
//! ```
//!
//! * Default: run fig 2(a)–(h) back to back, print each figure's table
//!   (identical to the standalone binaries) followed by a sweep summary
//!   (per-figure wall seconds and cache hits/misses).
//! * `--batch-smoke`: CI gate. Solves a small always-provable family
//!   once serially (one `DeploymentSession` per member) and once through
//!   a `BatchSession` (plus once more in portfolio mode), then exits
//!   non-zero if any batch result diverges from its serial counterpart
//!   (status, or objective bits for the non-racing batch) or if the
//!   batch wall-clock regresses past the serial wall-clock.
//! * `--append-json [PATH]`: append sweep/smoke trajectory records
//!   (`batch: true`, `sweep_wall_seconds`) to `PATH` (default
//!   `BENCH_milp.json`) in the accumulating array layout of
//!   [`append_bench_json`].
//! * `--baseline-file PATH`: per-figure serial wall times from a prior
//!   run of the standalone binaries, one `fig2X MILLIS ms rc=0` line
//!   each (the format of `results/baseline/times.txt`). When given, the
//!   summary and the appended records carry `speedup` (serial seconds /
//!   batched seconds, per figure and for the whole sweep).

use std::sync::Arc;
use std::time::Instant;

use ndp_bench::figs::{self, ExperimentContext};
use ndp_bench::{
    append_bench_json, exact_solver_options, node_order_name, pricing_name, BenchRecord,
};
use ndp_core::{BatchSession, DeployObjective, OptimalConfig, ProblemInstance};
use ndp_milp::{BasisKernel, SolverOptions};
use ndp_noc::{Mesh2D, NocParams, WeightedNoc};
use ndp_platform::Platform;
use ndp_taskset::{generate, GeneratorConfig, GraphShape};

fn kernel_name(k: BasisKernel) -> &'static str {
    match k {
        BasisKernel::Dense => "dense",
        BasisKernel::SparseLu => "sparse-lu",
    }
}

/// Parses a `--baseline-file`: lines of `NAME MILLIS ms rc=CODE`
/// (the format written by a timed serial run of the figure binaries).
/// Unknown names are kept; lookups pick what they need.
fn parse_baseline(path: &str) -> Result<std::collections::HashMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut map = std::collections::HashMap::new();
    for line in text.lines() {
        let mut parts = line.split_whitespace();
        let (Some(name), Some(millis)) = (parts.next(), parts.next()) else { continue };
        if let Ok(ms) = millis.parse::<f64>() {
            map.insert(name.to_string(), ms / 1000.0);
        }
    }
    if map.is_empty() {
        return Err(format!("{path}: no `NAME MILLIS ...` lines found"));
    }
    Ok(map)
}

/// A sweep-level trajectory record: solver-configuration columns reflect
/// the figure defaults; work counters are not aggregated across members
/// (the per-solve records of the other binaries carry those).
fn sweep_record(
    instance: &str,
    portfolio: bool,
    seconds: f64,
    sweep_wall: f64,
    speedup: Option<f64>,
) -> BenchRecord {
    let o = exact_solver_options();
    BenchRecord {
        instance: instance.into(),
        kernel: kernel_name(o.basis_kernel).into(),
        pricing: pricing_name(o.pricing).into(),
        node_order: node_order_name(o.node_order).into(),
        warm_start: o.warm_start,
        cuts: o.cuts,
        heuristics: o.heuristics,
        propagation: o.propagation,
        conflict_cuts: o.conflict_cuts,
        threads: o.threads,
        status: "Sweep".into(),
        nodes: 0,
        pivots: 0,
        warm_starts: 0,
        cold_starts: 0,
        cuts_applied: 0,
        heuristic_incumbents: 0,
        propagated_bounds: 0,
        conflict_cuts_applied: 0,
        gap: f64::NAN,
        dual_bound: f64::NAN,
        seconds,
        speedup,
        batch: true,
        portfolio,
        sweep_wall_seconds: Some(sweep_wall),
        branch_rule: None,
        symmetry: None,
    }
}

fn full_sweep(
    append: Option<&str>,
    baseline: Option<&std::collections::HashMap<String, f64>>,
) -> i32 {
    type FigFn = fn(&ExperimentContext);
    let figures: [(&str, FigFn, bool); 8] = [
        ("fig2a", figs::fig2a, true),
        ("fig2b", figs::fig2b, false),
        ("fig2c", figs::fig2c, false),
        ("fig2d", figs::fig2d, false),
        ("fig2e", figs::fig2e, false),
        ("fig2f", figs::fig2f, false),
        ("fig2g", figs::fig2g, false),
        ("fig2h", figs::fig2h, false),
    ];
    let ctx = ExperimentContext::new();
    let t_all = Instant::now();
    let mut rows: Vec<(&str, bool, f64, u64, u64)> = Vec::new();
    for (name, fig, portfolio) in figures {
        let (h0, m0) = (ctx.cache().hits(), ctx.cache().misses());
        let t0 = Instant::now();
        fig(&ctx);
        rows.push((
            name,
            portfolio,
            t0.elapsed().as_secs_f64(),
            ctx.cache().hits() - h0,
            ctx.cache().misses() - m0,
        ));
        println!();
    }
    let total = t_all.elapsed().as_secs_f64();
    // Per-figure serial baselines, when the caller timed the standalone
    // binaries beforehand; the total compares only figures present there.
    let figure_speedup = |name: &str, secs: f64| -> Option<f64> {
        baseline.and_then(|b| b.get(name)).map(|serial| serial / secs)
    };
    let total_speedup = baseline.and_then(|b| {
        let covered: Vec<f64> =
            rows.iter().filter_map(|(name, ..)| b.get(*name).copied()).collect();
        (covered.len() == rows.len()).then(|| covered.iter().sum::<f64>() / total)
    });
    println!("# batch sweep summary (shared context, one process)");
    println!("{:>8} {:>10} {:>6} {:>8} {:>9}", "figure", "seconds", "hits", "misses", "speedup");
    for (name, _, secs, hits, misses) in &rows {
        match figure_speedup(name, *secs) {
            Some(s) => println!("{name:>8} {secs:>10.1} {hits:>6} {misses:>8} {s:>8.2}x"),
            None => println!("{name:>8} {secs:>10.1} {hits:>6} {misses:>8} {:>9}", "-"),
        }
    }
    print!(
        "total {total:.1} s; cache: {} memoized solves, {} replays",
        ctx.cache().len(),
        ctx.cache().hits()
    );
    match total_speedup {
        Some(s) => println!("; {s:.2}x vs serial baseline"),
        None => println!(),
    }
    if let Some(path) = append {
        let mut records: Vec<BenchRecord> = rows
            .iter()
            .map(|(name, portfolio, secs, _, _)| {
                sweep_record(
                    &format!("batch-{name}"),
                    *portfolio,
                    *secs,
                    total,
                    figure_speedup(name, *secs),
                )
            })
            .collect();
        records.push(sweep_record("batch-fig2-sweep", false, total, total, total_speedup));
        if let Err(e) = append_bench_json(path, &records) {
            eprintln!("batch_sweep: cannot append to {path}: {e}");
            return 1;
        }
        println!("appended {} records to {path}", rows.len() + 1);
    }
    0
}

/// A small always-provable member family for the smoke gate: chain
/// graphs stay easy for the branch and bound, so every solve proves
/// within the budget and the serial-vs-batch comparison is
/// deterministic. One member per (seed, objective), plus a duplicate BE
/// member per seed so the gate also exercises the memo cache.
fn smoke_family() -> Vec<(Arc<ProblemInstance>, OptimalConfig)> {
    let quick = || OptimalConfig {
        solver: SolverOptions::default().time_limit(20.0).threads(1),
        ..OptimalConfig::default()
    };
    let mut members = Vec::new();
    for seed in 0..3u64 {
        let mut cfg = GeneratorConfig::typical(3);
        cfg.shape = GraphShape::Chain;
        let g = generate(&cfg, seed).expect("valid generator config");
        let problem = Arc::new(
            ProblemInstance::from_original(
                &g,
                Platform::homogeneous(4).expect("valid platform"),
                WeightedNoc::new(
                    Mesh2D::square(2).expect("positive side"),
                    NocParams::typical(),
                    seed,
                )
                .expect("valid NoC"),
                0.95,
                3.0,
            )
            .expect("valid problem"),
        );
        members.push((Arc::clone(&problem), quick()));
        members.push((
            Arc::clone(&problem),
            OptimalConfig { objective: DeployObjective::MinimizeTotalEnergy, ..quick() },
        ));
        members.push((problem, quick())); // duplicate BE: must replay
    }
    members
}

fn batch_smoke(append: Option<&str>) -> i32 {
    let members = smoke_family();
    println!("# batch smoke: {} members (serial vs batch vs portfolio)", members.len());

    let t0 = Instant::now();
    let serial: Vec<_> = members
        .iter()
        .map(|(p, cfg)| ndp_bench::session_for(p, cfg).solve().expect("serial solve"))
        .collect();
    let serial_wall = t0.elapsed().as_secs_f64();

    let mut batch = BatchSession::new();
    for (p, cfg) in &members {
        batch.add(Arc::clone(p), cfg.clone());
    }
    let t0 = Instant::now();
    let batched = batch.solve_all();
    let batch_wall = t0.elapsed().as_secs_f64();

    let mut race = BatchSession::new();
    for (p, cfg) in &members {
        race.add(Arc::clone(p), cfg.clone());
    }
    race.set_portfolio(true);
    let raced = race.solve_all();

    let mut failures = 0u32;
    for (i, (want, got)) in serial.iter().zip(&batched).enumerate() {
        let got = got.as_ref().expect("batch solve");
        if want.status != got.outcome.status
            || want.objective_mj.map(f64::to_bits) != got.outcome.objective_mj.map(f64::to_bits)
        {
            eprintln!(
                "member {i}: batch diverged (serial {:?}/{:?} vs batch {:?}/{:?})",
                want.status, want.objective_mj, got.outcome.status, got.outcome.objective_mj
            );
            failures += 1;
        }
    }
    for (i, (want, got)) in serial.iter().zip(&raced).enumerate() {
        let got = got.as_ref().expect("portfolio solve");
        let (a, b) =
            (want.objective_mj.unwrap_or(f64::NAN), got.outcome.objective_mj.unwrap_or(f64::NAN));
        if want.status != got.outcome.status || (a - b).abs() > 1e-5 * a.abs().max(1.0) {
            eprintln!(
                "member {i}: portfolio diverged (serial {:?}/{a} vs raced {:?}/{b})",
                want.status, got.outcome.status
            );
            failures += 1;
        }
    }
    let replays = batched.iter().filter(|r| r.as_ref().is_ok_and(|o| o.from_cache)).count();
    println!(
        "serial {serial_wall:.2} s, batch {batch_wall:.2} s ({replays} cache replays), \
         portfolio consistent"
    );
    if replays == 0 {
        eprintln!("batch smoke: duplicate members did not replay from the cache");
        failures += 1;
    }
    if batch_wall > serial_wall {
        eprintln!(
            "batch smoke: batch wall-clock {batch_wall:.2} s regressed past serial \
             {serial_wall:.2} s"
        );
        failures += 1;
    }
    if let Some(path) = append {
        let records = [
            sweep_record("batch-smoke-serial", false, serial_wall, serial_wall, None),
            sweep_record(
                "batch-smoke-batch",
                false,
                batch_wall,
                batch_wall,
                Some(serial_wall / batch_wall),
            ),
        ];
        if let Err(e) = append_bench_json(path, &records) {
            eprintln!("batch_sweep: cannot append to {path}: {e}");
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("batch smoke FAILED ({failures} check(s))");
        1
    } else {
        println!("batch smoke passed");
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut append: Option<String> = None;
    let mut baseline: Option<std::collections::HashMap<String, f64>> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--batch-smoke" => smoke = true,
            "--append-json" => {
                let next = args.get(i + 1).filter(|a| !a.starts_with("--"));
                append = Some(next.cloned().unwrap_or_else(|| "BENCH_milp.json".into()));
                if next.is_some() {
                    i += 1;
                }
            }
            "--baseline-file" => {
                let Some(path) = args.get(i + 1) else {
                    eprintln!("batch_sweep: --baseline-file needs a PATH");
                    std::process::exit(2);
                };
                match parse_baseline(path) {
                    Ok(map) => baseline = Some(map),
                    Err(e) => {
                        eprintln!("batch_sweep: {e}");
                        std::process::exit(2);
                    }
                }
                i += 1;
            }
            other => {
                eprintln!("batch_sweep: unknown flag {other}");
                eprintln!(
                    "usage: batch_sweep [--batch-smoke] [--append-json [PATH]] \
                     [--baseline-file PATH]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let code = if smoke {
        batch_smoke(append.as_deref())
    } else {
        full_sweep(append.as_deref(), baseline.as_ref())
    };
    std::process::exit(code);
}
