//! Ablation (beyond the paper): the paper-faithful per-unit transfer-time
//! model vs the physically-motivated size-scaled extension
//! (`CommTimeModel`), on the heuristic at paper scale.
//!
//! Size-scaled transfers lengthen receive times in proportion to payloads,
//! so horizons bind earlier and feasibility drops; energies are unchanged
//! by construction (only the *time* model differs).

use ndp_bench::{heuristic_point, mean_finite, per_seed, InstanceSpec};
use ndp_core::CommTimeModel;

fn main() {
    let seeds: Vec<u64> = (0..20).collect();
    println!("# Ablation: CommTimeModel::PerUnit (paper) vs SizeScaled (extension)");
    println!("{:<12} {:>10} {:>12} {:>14}", "model", "feasible", "max_mJ", "makespan_ms");
    for (label, model) in
        [("per-unit", CommTimeModel::PerUnit), ("size-scaled", CommTimeModel::SizeScaled)]
    {
        let rows = per_seed(&seeds, move |seed| {
            let mut spec = InstanceSpec::new(20, 4, 2.0, seed);
            spec.levels = 6;
            let problem = spec.build().with_comm_time_model(model);
            let d = heuristic_point(&problem).deployment;
            d.map(|d| {
                let makespan = problem
                    .tasks
                    .graph()
                    .task_ids()
                    .map(|t| d.end_ms(&problem, t))
                    .fold(0.0, f64::max);
                (d.energy_report(&problem).max_mj(), makespan)
            })
        });
        let feasible = rows.iter().filter(|r| r.is_some()).count() as f64 / rows.len() as f64;
        let max: Vec<f64> = rows.iter().flatten().map(|(m, _)| *m).collect();
        let mk: Vec<f64> = rows.iter().flatten().map(|(_, m)| *m).collect();
        println!(
            "{label:<12} {:>10.2} {:>12.4} {:>14.3}",
            feasible,
            mean_finite(&max),
            mean_finite(&mk)
        );
    }
}
