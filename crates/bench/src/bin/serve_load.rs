//! Multi-tenant load exercise of the `ndp-serve` solve server.
//!
//! Two phases, both against an in-process [`SolveServer`]:
//!
//! 1. **Cache pair** — a single-runner server receives the same request
//!    twice. The first solve populates the solution cache; the second must
//!    be answered from it with *zero* branch-and-bound nodes (this is the
//!    acceptance check for the server's fingerprint cache, asserted here).
//! 2. **Mixed load** — a multi-runner server receives a burst of jobs of
//!    different sizes and seeds, one of which is cancelled mid-flight and
//!    one of which carries a tight deadline. Reports per-job outcomes and
//!    the aggregate throughput (jobs served per second over the shared
//!    worker pool).
//!
//! ```text
//! serve_load [--jobs N] [--runners K] [--json PATH]
//! ```
//!
//! `--json PATH` appends one record per phase to the bench-trajectory file
//! (the repo-root `BENCH_milp.json` layout), so server throughput is
//! tracked alongside the solver ablations.

use ndp_bench::{append_bench_json, BenchRecord};
use ndp_serve::{JobOutcome, JobStatus, RequestSpec, ServerConfig, SolveServer};
use std::time::Instant;

fn spec(tasks: usize, seed: u64, deadline_ms: Option<u64>) -> RequestSpec {
    RequestSpec {
        tasks,
        mesh_side: 2,
        levels: 3,
        seed,
        threads: 2,
        deadline_ms,
        ..RequestSpec::default()
    }
}

/// A server-phase record in the solver-trajectory layout: solver-ablation
/// columns hold the solver defaults, `nodes`/`seconds` hold the phase
/// aggregate.
fn record(instance: &str, status: &str, nodes: u64, seconds: f64, threads: usize) -> BenchRecord {
    BenchRecord {
        instance: instance.into(),
        kernel: "sparse-lu".into(),
        pricing: "dse".into(),
        node_order: "best-bound".into(),
        warm_start: true,
        cuts: true,
        heuristics: true,
        propagation: true,
        conflict_cuts: true,
        threads,
        status: status.into(),
        nodes,
        pivots: 0,
        warm_starts: 0,
        cold_starts: 0,
        cuts_applied: 0,
        heuristic_incumbents: 0,
        propagated_bounds: 0,
        conflict_cuts_applied: 0,
        gap: 0.0,
        dual_bound: f64::INFINITY,
        seconds,
        speedup: None,
        batch: false,
        portfolio: false,
        sweep_wall_seconds: None,
        branch_rule: None,
        symmetry: None,
    }
}

fn outcome_line(out: &JobOutcome) {
    println!(
        "  job {:>2}  {:<10} nodes {:>6}  wall {:>8.1} ms  cache {}",
        out.id,
        out.status.name(),
        out.nodes,
        out.wall_ms,
        if out.cache_hit { "hit" } else { "miss" }
    );
}

fn main() {
    let mut jobs = 8usize;
    let mut runners = 2usize;
    let mut json: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let val = args.get(i + 1).unwrap_or_else(|| {
            eprintln!("missing value for {}", args[i]);
            std::process::exit(2);
        });
        match args[i].as_str() {
            "--jobs" => jobs = val.parse().expect("--jobs takes a count"),
            "--runners" => runners = val.parse().expect("--runners takes a count"),
            "--json" => json = Some(val.clone()),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    let mut records: Vec<BenchRecord> = Vec::new();

    // Phase 1: identical pair — second request must be a cache hit with
    // zero solver nodes.
    println!("# phase 1: cache pair (1 runner)");
    let server = SolveServer::start(ServerConfig { runners: 1, queue_capacity: 16 }, None);
    let started = Instant::now();
    let a = server.submit(spec(4, 3, Some(120_000))).expect("submit");
    let b = server.submit(spec(4, 3, Some(120_000))).expect("submit");
    let a = server.wait(a).expect("outcome a");
    let b = server.wait(b).expect("outcome b");
    let pair_seconds = started.elapsed().as_secs_f64();
    outcome_line(&a);
    outcome_line(&b);
    assert_eq!(a.status, JobStatus::Optimal, "first solve must be optimal");
    assert!(!a.cache_hit && a.nodes > 0, "first solve must actually search");
    assert_eq!(b.status, JobStatus::Optimal, "cached answer must keep the status");
    assert!(b.cache_hit, "second identical request must hit the cache");
    assert_eq!(b.nodes, 0, "cache hit must spend zero solver nodes");
    assert_eq!(b.objective_mj, a.objective_mj, "cache must replay the objective");
    let stats = server.stats();
    server.shutdown();
    println!(
        "  cache pair ok: {} -> 0 nodes, hits={} misses={}",
        a.nodes, stats.cache_hits, stats.cache_misses
    );
    records.push(record("serve-cache-pair", "Optimal", a.nodes, pair_seconds, 1));

    // Phase 2: mixed burst over the shared pool — sizes, seeds, one
    // mid-flight cancel, one tight deadline.
    println!("# phase 2: mixed load ({jobs} jobs, {runners} runners)");
    let server = SolveServer::start(ServerConfig { runners, queue_capacity: 64 }, None);
    let started = Instant::now();
    let mut ids = Vec::new();
    for j in 0..jobs {
        let tasks = 3 + j % 3;
        let deadline = if j == 1 { Some(40) } else { Some(120_000) };
        ids.push(server.submit(spec(tasks, 100 + j as u64, deadline)).expect("submit"));
    }
    if let Some(&victim) = ids.get(2) {
        std::thread::sleep(std::time::Duration::from_millis(5));
        server.cancel(victim);
    }
    let outcomes: Vec<JobOutcome> =
        ids.iter().map(|&id| server.wait(id).expect("outcome")).collect();
    let burst_seconds = started.elapsed().as_secs_f64();
    for out in &outcomes {
        outcome_line(out);
    }
    let stats = server.stats();
    server.shutdown();
    let solved = outcomes.iter().filter(|o| o.status == JobStatus::Optimal).count();
    let total_nodes: u64 = outcomes.iter().map(|o| o.nodes).sum();
    let throughput = outcomes.len() as f64 / burst_seconds;
    println!(
        "  {} jobs in {:.2} s ({:.2} jobs/s): {} optimal, {} cancelled, {} deadline, \
         pool_workers={}",
        outcomes.len(),
        burst_seconds,
        throughput,
        solved,
        outcomes.iter().filter(|o| o.status == JobStatus::Cancelled).count(),
        outcomes.iter().filter(|o| o.status == JobStatus::Deadline).count(),
        stats.pool_workers
    );
    records.push(record(
        &format!("serve-load-J{jobs}-R{runners}"),
        "Optimal",
        total_nodes,
        burst_seconds,
        runners,
    ));

    if let Some(path) = json {
        append_bench_json(&path, &records).expect("append --json output");
        println!("appended {} record(s) to {path}", records.len());
    }
}
