//! Fig. 2(e): energy-balance index `φ = max_k E_k / min_k E_k` under the BE
//! vs ME objectives.
//!
//! The paper's claim: BE's `φ` is smaller (better balanced) than ME's,
//! because ME happily concentrates load to save communication energy.
//! Exact solver, N = 4, L = 4.

use ndp_bench::{exact_solver_options, mean_finite, per_seed, InstanceSpec};
use ndp_core::{DeployObjective, OptimalConfig};

fn main() {
    let seeds: Vec<u64> = (0..5).collect();
    let task_counts = [3usize, 4, 5, 6];
    println!("# Fig 2(e): balance index phi, BE vs ME (exact solver, N=4, L=4)");
    println!("{:>4} {:>10} {:>10}", "M", "BE_phi", "ME_phi");
    for &m in &task_counts {
        let rows = per_seed(&seeds, |seed| {
            let problem = InstanceSpec::new(m, 2, 2.0, seed).build();
            let phi = |objective| {
                let cfg = OptimalConfig {
                    objective,
                    solver: exact_solver_options(),
                    ..OptimalConfig::default()
                };
                ndp_bench::session_for(&problem, &cfg)
                    .solve()
                    .ok()
                    .and_then(|o| o.deployment)
                    .map(|d| d.energy_report(&problem).balance_index())
                    .unwrap_or(f64::NAN)
            };
            (phi(DeployObjective::BalanceEnergy), phi(DeployObjective::MinimizeTotalEnergy))
        });
        let be = mean_finite(&rows.iter().map(|(b, _)| *b).collect::<Vec<_>>());
        let me = mean_finite(&rows.iter().map(|(_, m)| *m).collect::<Vec<_>>());
        println!("{m:>4} {be:>10.3} {me:>10.3}");
    }
}
