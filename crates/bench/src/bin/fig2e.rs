//! Fig. 2(e): energy-balance index `φ = max_k E_k / min_k E_k` under the BE
//! vs ME objectives.
//!
//! The paper's claim: BE's `φ` is smaller (better balanced) than ME's,
//! because ME happily concentrates load to save communication energy.
//! Exact solver, N = 4, L = 4.
//!
//! Runs on the batch engine (`ndp_bench::figs::fig2e`); the whole-family
//! sweep lives in `batch_sweep`, where this figure replays fig 2(d)'s
//! BE/ME grid from the shared solve cache instead of re-solving it.

use ndp_bench::figs::{fig2e, ExperimentContext};

fn main() {
    fig2e(&ExperimentContext::new());
}
