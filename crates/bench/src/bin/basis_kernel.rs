//! Basis-kernel and node-LP microbench: dense inverse vs sparse LU, warm
//! vs cold node starts, and the three leaving-row pricing rules.
//!
//! Default mode solves the same fixed deployment instance(s) once per
//! kernel and reports wall time, branch-and-bound nodes, pivots and
//! throughput. The headline numbers are the node-throughput ratio
//! (sparse / dense) and the pivots/s column, which the warm-start and
//! pricing work targets directly.
//!
//! ```text
//! basis_kernel [--tasks M] [--seconds S] [--seed K] [--instances I]
//!              [--pricing dse|devex|dantzig] [--node-order dfs|best-bound]
//!              [--warm on|off] [--cuts on|off] [--heuristics on|off]
//!              [--propagation on|off] [--conflicts on|off]
//!              [--branch-rule most-frac|first-frac|pseudo|reliability]
//!              [--symmetry on|off] [--json PATH] [--append-json PATH]
//!              [--ablation] [--cuts-ablation] [--heuristics-ablation]
//!              [--symmetry-ablation] [--trace]
//! ```
//!
//! `--ablation` replaces the kernel A/B with the full
//! pricing × warm-start × kernel grid on one instance and **fails** (exit
//! code 1) if any warm-started configuration needs more pivots than its
//! cold-started twin — the regression guard CI runs on every push. All
//! configurations must agree on the optimum.
//!
//! `--cuts-ablation` runs the cutting-plane A/B on the sparse-lu/dse/warm
//! reference configuration and **fails** (exit code 1) if the cuts-on run
//! explores more nodes than cuts-off, or the two optima diverge — the
//! guard behind the cut engine's node-count claim.
//!
//! `--heuristics-ablation` runs the branch-and-bound accelerator grid
//! (all-on, each of heuristics / propagation / conflict cuts individually
//! off, all-off) on the same reference configuration and **fails** (exit
//! code 1) if any proven optima diverge, if the all-on run fails to prove
//! an optimum that some reduced configuration proves within the same
//! budget, or if the all-on tree is more than 5% larger than the all-off
//! tree (when both prove). When the budget stops both endpoint runs early
//! the gate compares incumbent gaps instead: all-on must not be worse.
//!
//! `--symmetry-ablation` runs the tree-shrink grid (baseline, reliability
//! branching only, symmetry only, both) on the same reference
//! configuration and **fails** (exit code 1) if proven optima diverge, a
//! feature arm loses an optimum the baseline proves, or a feature arm's
//! tree is more than 5% larger than the baseline's.
//!
//! `--json PATH` additionally writes the run's records as a JSON array
//! (see `results/BENCH_milp.json` for the checked-in baseline);
//! `--append-json PATH` appends them to an existing array instead, the
//! convention behind the repo-root `BENCH_milp.json` trajectory file.
//!
//! Defaults reproduce the largest fixed exact-arm instance (`M = 6` on a
//! 2×2 mesh, 60 s budget). CI runs a smoke configuration
//! (`--tasks 4 --seconds 5 --instances 1`) to keep the binary exercised.
//! `--trace` streams solver events (presolve, root, incumbents,
//! termination) to stderr while the table prints to stdout.

use ndp_bench::{
    append_bench_json, branch_rule_name, node_order_name, parse_branch_rule, parse_node_order,
    parse_pricing, pricing_name, trace_observer, write_bench_json, BenchRecord, InstanceSpec,
};
use ndp_core::{DeployObjective, MilpEncoding, PathMode};
use ndp_milp::{BasisKernel, BranchRule, NodeOrder, Pricing, SolverOptions};

/// The branch-and-bound accelerator toggles threaded through every run.
#[derive(Debug, Clone, Copy)]
struct Accel {
    heuristics: bool,
    propagation: bool,
    conflicts: bool,
}

impl Accel {
    const ALL_ON: Accel = Accel { heuristics: true, propagation: true, conflicts: true };
    const ALL_OFF: Accel = Accel { heuristics: false, propagation: false, conflicts: false };
}

/// The tree-shrink dimensions of PR 10: branching rule and mesh-symmetry
/// exploitation (lex-leader rows + orbital fixing).
#[derive(Debug, Clone, Copy)]
struct Search {
    branch: BranchRule,
    symmetry: bool,
}

impl Search {
    /// The PR-6-era reference: most-fractional branching, no symmetry.
    const BASELINE: Search = Search { branch: BranchRule::MostFractional, symmetry: false };
}

struct KernelRun {
    status: String,
    nodes: u64,
    iters: u64,
    seconds: f64,
    warm_starts: u64,
    cold_starts: u64,
    cuts_applied: u64,
    heuristic_incumbents: u64,
    propagated_bounds: u64,
    conflict_cuts_applied: u64,
    gap: f64,
    dual_bound: f64,
    objective: f64,
    symmetry_orbits: u64,
    orbital_fixings: u64,
    strong_branch_probes: u64,
}

#[allow(clippy::too_many_arguments)]
fn run(
    kernel: BasisKernel,
    pricing: Pricing,
    order: NodeOrder,
    warm: bool,
    cuts: bool,
    accel: Accel,
    search: Search,
    tasks: usize,
    seconds: f64,
    seed: u64,
    trace: bool,
) -> KernelRun {
    let p = InstanceSpec::new(tasks, 2, 3.0, seed).build();
    let enc = MilpEncoding::build(&p, PathMode::Multi, DeployObjective::BalanceEnergy).unwrap();
    let mut opts = SolverOptions::default()
        .time_limit(seconds)
        .threads(1)
        .basis_kernel(kernel)
        .pricing(pricing)
        .node_order(order)
        .warm_start(warm)
        .cuts(cuts)
        .heuristics(accel.heuristics)
        .propagation(accel.propagation)
        .conflict_cuts(accel.conflicts)
        .branch_rule(search.branch);
    if search.symmetry {
        // The solver verifies each mesh automorphism against the model
        // coefficients, so an asymmetric (jitter-broken) instance simply
        // yields no group.
        opts = opts.symmetry_candidates(enc.symmetry_candidates(&p));
    } else {
        opts = opts.symmetry_breaking(false).orbital_fixing(false);
    }
    if trace {
        eprintln!(
            "[trace] --- kernel={kernel:?} pricing={} order={} warm={warm} cuts={cuts} \
             accel={accel:?} search={search:?} seed={seed} ---",
            pricing_name(pricing),
            node_order_name(order)
        );
        opts = opts.observer(trace_observer());
    }
    let t0 = std::time::Instant::now();
    let sol = enc.model.solve_with(&opts).unwrap();
    KernelRun {
        status: format!("{:?}", sol.status()),
        nodes: sol.node_count(),
        iters: sol.simplex_iterations(),
        seconds: t0.elapsed().as_secs_f64(),
        warm_starts: sol.stats().warm_starts,
        cold_starts: sol.stats().cold_starts,
        cuts_applied: sol.stats().cuts_applied,
        heuristic_incumbents: sol.stats().heuristic_incumbents,
        propagated_bounds: sol.stats().propagated_bounds,
        conflict_cuts_applied: sol.stats().conflict_cuts_applied,
        gap: sol.gap(),
        dual_bound: sol.best_bound(),
        objective: if sol.has_incumbent() { sol.objective_value() } else { f64::NAN },
        symmetry_orbits: sol.stats().symmetry_orbits,
        orbital_fixings: sol.stats().orbital_fixings,
        strong_branch_probes: sol.stats().strong_branch_probes,
    }
}

fn kernel_name(k: BasisKernel) -> &'static str {
    match k {
        BasisKernel::Dense => "dense",
        BasisKernel::SparseLu => "sparse-lu",
    }
}

#[allow(clippy::too_many_arguments)]
fn record(
    r: &KernelRun,
    k: BasisKernel,
    p: Pricing,
    order: NodeOrder,
    warm: bool,
    cuts: bool,
    accel: Accel,
    search: Search,
    tasks: usize,
    s: u64,
) -> BenchRecord {
    BenchRecord {
        instance: format!("M{tasks}-N4-seed{s}"),
        kernel: kernel_name(k).into(),
        pricing: pricing_name(p).into(),
        node_order: node_order_name(order).into(),
        warm_start: warm,
        cuts,
        heuristics: accel.heuristics,
        propagation: accel.propagation,
        conflict_cuts: accel.conflicts,
        threads: 1,
        status: r.status.clone(),
        nodes: r.nodes,
        pivots: r.iters,
        warm_starts: r.warm_starts,
        cold_starts: r.cold_starts,
        cuts_applied: r.cuts_applied,
        heuristic_incumbents: r.heuristic_incumbents,
        propagated_bounds: r.propagated_bounds,
        conflict_cuts_applied: r.conflict_cuts_applied,
        gap: r.gap,
        dual_bound: r.dual_bound,
        seconds: r.seconds,
        speedup: None,
        batch: false,
        portfolio: false,
        sweep_wall_seconds: None,
        branch_rule: Some(branch_rule_name(search.branch).into()),
        symmetry: Some(search.symmetry),
    }
}

fn print_row(name: &str, tasks: usize, s: u64, r: &KernelRun) {
    println!(
        "{name:<18} {tasks:>2} {s:>5}  {:<10} {:>6}  {:>13}  {:>7.2}  {:>7.0}  {:>8.0}  {:>4}/{:<4}",
        r.status,
        r.nodes,
        r.iters,
        r.seconds,
        r.nodes as f64 / r.seconds.max(1e-9),
        r.iters as f64 / r.seconds.max(1e-9),
        r.warm_starts,
        r.cold_starts,
    );
}

/// The full pricing × warm × kernel grid on one instance. Returns `false`
/// when any warm configuration needed more pivots than its cold twin or
/// the configurations disagree on the optimum.
#[allow(clippy::too_many_arguments)]
fn ablation(
    tasks: usize,
    seconds: f64,
    seed: u64,
    order: NodeOrder,
    cuts: bool,
    accel: Accel,
    search: Search,
    trace: bool,
    records: &mut Vec<BenchRecord>,
) -> bool {
    println!(
        "config              M  seed  status      nodes  simplex_iters  seconds  nodes/s  pivots/s  warm/cold"
    );
    let mut ok = true;
    let mut objective: Option<f64> = None;
    for kernel in [BasisKernel::SparseLu, BasisKernel::Dense] {
        for pricing in [Pricing::SteepestEdge, Pricing::Devex, Pricing::Dantzig] {
            let mut pivots = [0u64; 2]; // [warm, cold]
            for (slot, warm) in [(0usize, true), (1usize, false)] {
                let r = run(
                    kernel, pricing, order, warm, cuts, accel, search, tasks, seconds, seed, trace,
                );
                let name = format!(
                    "{}/{}/{}",
                    kernel_name(kernel),
                    pricing_name(pricing),
                    if warm { "warm" } else { "cold" }
                );
                print_row(&name, tasks, seed, &r);
                pivots[slot] = r.iters;
                if r.status == "Optimal" {
                    match objective {
                        None => objective = Some(r.objective),
                        Some(o) => {
                            if (r.objective - o).abs() > 1e-4 * o.abs().max(1.0) {
                                eprintln!(
                                    "FAIL: {name} optimum {} disagrees with {}",
                                    r.objective, o
                                );
                                ok = false;
                            }
                        }
                    }
                }
                records.push(record(
                    &r, kernel, pricing, order, warm, cuts, accel, search, tasks, seed,
                ));
            }
            if pivots[0] > pivots[1] {
                eprintln!(
                    "FAIL: warm start took more pivots than cold ({} > {}) for {}/{}",
                    pivots[0],
                    pivots[1],
                    kernel_name(kernel),
                    pricing_name(pricing)
                );
                ok = false;
            } else {
                println!(
                    "  warm/cold pivot ratio ({}/{}): {:.3}",
                    kernel_name(kernel),
                    pricing_name(pricing),
                    pivots[0] as f64 / pivots[1].max(1) as f64
                );
            }
        }
    }
    ok
}

/// Cutting-plane A/B on the sparse-lu/dse/warm reference configuration.
/// Returns `false` when the cuts-on run explored more nodes than cuts-off,
/// either run failed to prove optimality within the budget, or the two
/// optima diverge — the regression guard behind the cut engine.
#[allow(clippy::too_many_arguments)]
fn cuts_ablation(
    tasks: usize,
    seconds: f64,
    seed: u64,
    order: NodeOrder,
    accel: Accel,
    search: Search,
    trace: bool,
    records: &mut Vec<BenchRecord>,
) -> bool {
    println!(
        "config              M  seed  status      nodes  simplex_iters  seconds  nodes/s  pivots/s  warm/cold"
    );
    let mut ok = true;
    let kernel = BasisKernel::SparseLu;
    let pricing = Pricing::SteepestEdge;
    let on = run(kernel, pricing, order, true, true, accel, search, tasks, seconds, seed, trace);
    let off = run(kernel, pricing, order, true, false, accel, search, tasks, seconds, seed, trace);
    print_row("sparse-lu/dse/cuts-on", tasks, seed, &on);
    print_row("sparse-lu/dse/cuts-off", tasks, seed, &off);
    records.push(record(&on, kernel, pricing, order, true, true, accel, search, tasks, seed));
    records.push(record(&off, kernel, pricing, order, true, false, accel, search, tasks, seed));
    println!("  cuts applied (on-run): {}", on.cuts_applied);
    if on.status != "Optimal" || off.status != "Optimal" {
        eprintln!(
            "FAIL: cuts ablation needs both runs Optimal within the budget (got {} / {})",
            on.status, off.status
        );
        return false;
    }
    if (on.objective - off.objective).abs() > 1e-4 * off.objective.abs().max(1.0) {
        eprintln!(
            "FAIL: cuts-on optimum {} disagrees with cuts-off {}",
            on.objective, off.objective
        );
        ok = false;
    }
    if on.nodes > off.nodes {
        eprintln!("FAIL: cuts-on explored more nodes than cuts-off ({} > {})", on.nodes, off.nodes);
        ok = false;
    } else {
        println!(
            "  node reduction (off/on): {:.2}x ({} -> {})",
            off.nodes as f64 / on.nodes.max(1) as f64,
            off.nodes,
            on.nodes
        );
    }
    ok
}

/// Branch-and-bound accelerator grid (primal heuristics, node propagation,
/// conflict cuts) on the sparse-lu/dse/warm/cuts-on reference
/// configuration: all-on, each accelerator individually off, all-off.
///
/// Returns `false` when proven optima diverge, when the all-on run fails
/// to prove an optimum some reduced configuration proves within the same
/// budget, or when the all-on tree is more than 5% larger than the
/// all-off tree (both proven; the slack absorbs exploration-order noise
/// from propagation-tightened bounds). If the budget stops both endpoint
/// runs early the gate falls back to incumbent gaps: all-on must not be
/// worse than all-off.
#[allow(clippy::too_many_arguments)]
fn heuristics_ablation(
    tasks: usize,
    seconds: f64,
    seed: u64,
    order: NodeOrder,
    search: Search,
    trace: bool,
    records: &mut Vec<BenchRecord>,
) -> bool {
    println!(
        "config              M  seed  status      nodes  simplex_iters  seconds  nodes/s  pivots/s  warm/cold"
    );
    let mut ok = true;
    let kernel = BasisKernel::SparseLu;
    let pricing = Pricing::SteepestEdge;
    let arms = [
        ("accel-all-on", Accel::ALL_ON),
        ("no-heuristics", Accel { heuristics: false, ..Accel::ALL_ON }),
        ("no-propagation", Accel { propagation: false, ..Accel::ALL_ON }),
        ("no-conflicts", Accel { conflicts: false, ..Accel::ALL_ON }),
        ("accel-all-off", Accel::ALL_OFF),
    ];
    let mut runs = Vec::with_capacity(arms.len());
    for (name, accel) in arms {
        let r = run(kernel, pricing, order, true, true, accel, search, tasks, seconds, seed, trace);
        print_row(name, tasks, seed, &r);
        records.push(record(&r, kernel, pricing, order, true, true, accel, search, tasks, seed));
        runs.push((name, r));
    }
    let all_on = &runs[0].1;
    let all_off = &runs[runs.len() - 1].1;
    println!(
        "  all-on accelerator work: {} heuristic incumbent(s), {} propagated bound(s), \
         {} conflict cut(s)",
        all_on.heuristic_incumbents, all_on.propagated_bounds, all_on.conflict_cuts_applied
    );

    // Every proven optimum must agree with the first proven one.
    let mut objective: Option<f64> = None;
    for (name, r) in &runs {
        if r.status != "Optimal" {
            continue;
        }
        match objective {
            None => objective = Some(r.objective),
            Some(o) => {
                if (r.objective - o).abs() > 1e-4 * o.abs().max(1.0) {
                    eprintln!("FAIL: {name} optimum {} disagrees with {}", r.objective, o);
                    ok = false;
                }
            }
        }
    }
    // Turning an accelerator ON must never lose optimality: if any reduced
    // configuration proves within the budget, the all-on run must too.
    if all_on.status != "Optimal" {
        for (name, r) in &runs[1..] {
            if r.status == "Optimal" {
                eprintln!(
                    "FAIL: {name} proved the optimum but accel-all-on stopped at {}",
                    all_on.status
                );
                ok = false;
            }
        }
    }
    if all_on.status == "Optimal" && all_off.status == "Optimal" {
        // Exact node parity is not guaranteed: propagation tightens node
        // bounds, which perturbs the exploration order (visibly so under
        // best-bound). Allow 5% slack so the gate flags real blowups, not
        // ordering noise.
        if all_on.nodes as f64 > all_off.nodes as f64 * 1.05 {
            eprintln!(
                "FAIL: accelerators grew the tree by more than 5% ({} > {} nodes)",
                all_on.nodes, all_off.nodes
            );
            ok = false;
        } else {
            println!(
                "  node ratio (all-off/all-on): {:.2}x ({} -> {})",
                all_off.nodes as f64 / all_on.nodes.max(1) as f64,
                all_off.nodes,
                all_on.nodes
            );
        }
    } else if all_on.status != "Optimal" && all_off.status != "Optimal" {
        // Budget-limited at both endpoints: the accelerators must at least
        // not worsen the incumbent gap.
        if all_on.gap > all_off.gap + 1e-9 {
            eprintln!(
                "FAIL: accelerators worsened the {seconds} s gap ({:.6} > {:.6})",
                all_on.gap, all_off.gap
            );
            ok = false;
        } else {
            println!(
                "  gap improvement at the {seconds} s budget: {:.6} (all-off) -> {:.6} (all-on)",
                all_off.gap, all_on.gap
            );
        }
    }
    ok
}

/// Tree-shrink ablation (PR 10): baseline (most-fractional, no symmetry),
/// reliability branching only, symmetry only, and both together — on the
/// sparse-lu/dse/warm/cuts-on reference configuration.
///
/// Returns `false` when proven optima diverge, when a feature arm fails to
/// prove an optimum the baseline proves within the same budget, or when a
/// feature arm's tree is more than 5% larger than the baseline tree (both
/// proven; the slack absorbs exploration-order noise).
fn symmetry_ablation(
    tasks: usize,
    seconds: f64,
    seed: u64,
    order: NodeOrder,
    accel: Accel,
    trace: bool,
    records: &mut Vec<BenchRecord>,
) -> bool {
    println!(
        "config              M  seed  status      nodes  simplex_iters  seconds  nodes/s  pivots/s  warm/cold"
    );
    let mut ok = true;
    let kernel = BasisKernel::SparseLu;
    let pricing = Pricing::SteepestEdge;
    let arms = [
        ("search-baseline", Search::BASELINE),
        ("reliability-only", Search { branch: BranchRule::Reliability, symmetry: false }),
        ("symmetry-only", Search { branch: BranchRule::MostFractional, symmetry: true }),
        ("reliability+sym", Search { branch: BranchRule::Reliability, symmetry: true }),
    ];
    let mut runs = Vec::with_capacity(arms.len());
    for (name, search) in arms {
        let r = run(kernel, pricing, order, true, true, accel, search, tasks, seconds, seed, trace);
        print_row(name, tasks, seed, &r);
        records.push(record(&r, kernel, pricing, order, true, true, accel, search, tasks, seed));
        runs.push((name, r));
    }
    let baseline = &runs[0].1;
    let both = &runs[runs.len() - 1].1;
    println!(
        "  tree-shrink work (both-on): {} symmetry orbit(s), {} orbital fixing(s), \
         {} strong-branch probe(s)",
        both.symmetry_orbits, both.orbital_fixings, both.strong_branch_probes
    );

    // Every proven optimum must agree with the first proven one.
    let mut objective: Option<f64> = None;
    for (name, r) in &runs {
        if r.status != "Optimal" {
            continue;
        }
        match objective {
            None => objective = Some(r.objective),
            Some(o) => {
                if (r.objective - o).abs() > 1e-4 * o.abs().max(1.0) {
                    eprintln!("FAIL: {name} optimum {} disagrees with {}", r.objective, o);
                    ok = false;
                }
            }
        }
    }
    // The passes must never lose optimality: whatever the baseline proves
    // within the budget, every feature arm must prove too.
    if baseline.status == "Optimal" {
        for (name, r) in &runs[1..] {
            if r.status != "Optimal" {
                eprintln!(
                    "FAIL: search-baseline proved the optimum but {name} stopped at {}",
                    r.status
                );
                ok = false;
                continue;
            }
            // Nor grow the tree: that is the whole point of the passes.
            if r.nodes as f64 > baseline.nodes as f64 * 1.05 {
                eprintln!(
                    "FAIL: {name} grew the tree by more than 5% ({} > {} nodes)",
                    r.nodes, baseline.nodes
                );
                ok = false;
            } else {
                println!(
                    "  node ratio (baseline/{name}): {:.2}x ({} -> {})",
                    baseline.nodes as f64 / r.nodes.max(1) as f64,
                    baseline.nodes,
                    r.nodes
                );
            }
        }
    }
    ok
}

fn main() {
    let mut tasks = 6usize;
    let mut seconds = 60.0f64;
    let mut seed = 7u64;
    let mut instances = 1usize;
    let mut trace = false;
    let mut pricing = Pricing::SteepestEdge;
    let mut order = NodeOrder::DepthFirst;
    let mut warm = true;
    let mut cuts = true;
    let mut accel = Accel::ALL_ON;
    let mut search = Search::BASELINE;
    let mut json: Option<String> = None;
    let mut append_json: Option<String> = None;
    let mut grid = false;
    let mut cuts_grid = false;
    let mut accel_grid = false;
    let mut search_grid = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let on_off = |flag: &str, val: &str| match val {
        "on" => true,
        "off" => false,
        _ => {
            eprintln!("{flag} takes on|off");
            std::process::exit(2);
        }
    };
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--trace" {
            trace = true;
            i += 1;
            continue;
        }
        if args[i] == "--ablation" {
            grid = true;
            i += 1;
            continue;
        }
        if args[i] == "--cuts-ablation" {
            cuts_grid = true;
            i += 1;
            continue;
        }
        if args[i] == "--heuristics-ablation" {
            accel_grid = true;
            i += 1;
            continue;
        }
        if args[i] == "--symmetry-ablation" {
            search_grid = true;
            i += 1;
            continue;
        }
        let val = args.get(i + 1).unwrap_or_else(|| {
            eprintln!("missing value for {}", args[i]);
            std::process::exit(2);
        });
        match args[i].as_str() {
            "--tasks" => tasks = val.parse().expect("--tasks takes an integer"),
            "--seconds" => seconds = val.parse().expect("--seconds takes a float"),
            "--seed" => seed = val.parse().expect("--seed takes an integer"),
            "--instances" => instances = val.parse().expect("--instances takes an integer"),
            "--pricing" => {
                pricing = parse_pricing(val).unwrap_or_else(|| {
                    eprintln!("--pricing takes dse|devex|dantzig");
                    std::process::exit(2);
                })
            }
            "--node-order" => {
                order = parse_node_order(val).unwrap_or_else(|| {
                    eprintln!("--node-order takes dfs|best-bound");
                    std::process::exit(2);
                })
            }
            "--warm" => warm = on_off("--warm", val),
            "--cuts" => cuts = on_off("--cuts", val),
            "--heuristics" => accel.heuristics = on_off("--heuristics", val),
            "--propagation" => accel.propagation = on_off("--propagation", val),
            "--conflicts" => accel.conflicts = on_off("--conflicts", val),
            "--branch-rule" => {
                search.branch = parse_branch_rule(val).unwrap_or_else(|| {
                    eprintln!("--branch-rule takes most-frac|first-frac|pseudo|reliability");
                    std::process::exit(2);
                })
            }
            "--symmetry" => search.symmetry = on_off("--symmetry", val),
            "--json" => json = Some(val.clone()),
            "--append-json" => append_json = Some(val.clone()),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 2;
    }

    let mut records: Vec<BenchRecord> = Vec::new();
    let mut failed = false;

    if search_grid {
        failed = !symmetry_ablation(tasks, seconds, seed, order, accel, trace, &mut records);
    } else if accel_grid {
        failed = !heuristics_ablation(tasks, seconds, seed, order, search, trace, &mut records);
    } else if cuts_grid {
        failed = !cuts_ablation(tasks, seconds, seed, order, accel, search, trace, &mut records);
    } else if grid {
        failed = !ablation(tasks, seconds, seed, order, cuts, accel, search, trace, &mut records);
    } else {
        println!(
            "kernel              M  seed  status      nodes  simplex_iters  seconds  nodes/s  pivots/s  warm/cold"
        );
        let mut ratio_sum = 0.0;
        for k in 0..instances {
            let s = seed + k as u64;
            let dense = run(
                BasisKernel::Dense,
                pricing,
                order,
                warm,
                cuts,
                accel,
                search,
                tasks,
                seconds,
                s,
                trace,
            );
            let sparse = run(
                BasisKernel::SparseLu,
                pricing,
                order,
                warm,
                cuts,
                accel,
                search,
                tasks,
                seconds,
                s,
                trace,
            );
            for (name, kernel, r) in [
                ("dense", BasisKernel::Dense, &dense),
                ("sparse-lu", BasisKernel::SparseLu, &sparse),
            ] {
                print_row(name, tasks, s, r);
                records
                    .push(record(r, kernel, pricing, order, warm, cuts, accel, search, tasks, s));
            }
            let dense_tp = dense.nodes as f64 / dense.seconds.max(1e-9);
            let sparse_tp = sparse.nodes as f64 / sparse.seconds.max(1e-9);
            let ratio = sparse_tp / dense_tp.max(1e-9);
            ratio_sum += ratio;
            println!("  node-throughput ratio (sparse/dense): {ratio:.2}x");
            // Under a shared time budget one kernel may prove Optimal while
            // the other stops at Feasible, so only the solution-found/none
            // split must agree (true divergence is caught by the
            // equivalence suite).
            let found = |s: &str| s == "Optimal" || s == "Feasible";
            assert_eq!(
                found(&dense.status),
                found(&sparse.status),
                "kernels disagree on solution existence: {} vs {}",
                dense.status,
                sparse.status
            );
        }
        if instances > 1 {
            println!("mean ratio over {instances} instances: {:.2}x", ratio_sum / instances as f64);
        }
    }

    if let Some(path) = json {
        write_bench_json(&path, &records).expect("write --json output");
        println!("wrote {} record(s) to {path}", records.len());
    }
    if let Some(path) = append_json {
        append_bench_json(&path, &records).expect("append --append-json output");
        println!("appended {} record(s) to {path}", records.len());
    }
    if failed {
        std::process::exit(1);
    }
}
