//! Basis-kernel microbench: dense inverse vs sparse LU on the exact arm.
//!
//! Solves the same fixed deployment instance(s) once per kernel and reports
//! wall time, branch-and-bound nodes, and node throughput. The headline
//! number is the throughput ratio (sparse / dense): the sparse LU kernel
//! must not be slower than the dense reference on the sizes the exact arm
//! actually runs at, and wins by a growing margin as `M` rises.
//!
//! ```text
//! basis_kernel [--tasks M] [--seconds S] [--seed K] [--instances I] [--trace]
//! ```
//!
//! Defaults reproduce the largest fixed exact-arm instance (`M = 6` on a
//! 2×2 mesh, 60 s budget). CI runs a smoke configuration
//! (`--tasks 4 --seconds 5 --instances 1`) to keep the binary exercised.
//! `--trace` streams solver events (presolve, root, incumbents,
//! termination) to stderr while the table prints to stdout.

use ndp_bench::{trace_observer, InstanceSpec};
use ndp_core::{build_milp, DeployObjective, PathMode};
use ndp_milp::{BasisKernel, SolverOptions};

struct KernelRun {
    status: String,
    nodes: u64,
    iters: u64,
    seconds: f64,
}

fn run(kernel: BasisKernel, tasks: usize, seconds: f64, seed: u64, trace: bool) -> KernelRun {
    let p = InstanceSpec::new(tasks, 2, 3.0, seed).build();
    let enc = build_milp(&p, PathMode::Multi, DeployObjective::BalanceEnergy).unwrap();
    let mut opts = SolverOptions::default().time_limit(seconds).threads(1).basis_kernel(kernel);
    if trace {
        eprintln!("[trace] --- kernel={kernel:?} seed={seed} ---");
        opts = opts.observer(trace_observer());
    }
    let t0 = std::time::Instant::now();
    let sol = enc.model.solve_with(&opts).unwrap();
    KernelRun {
        status: format!("{:?}", sol.status()),
        nodes: sol.node_count(),
        iters: sol.simplex_iterations(),
        seconds: t0.elapsed().as_secs_f64(),
    }
}

fn main() {
    let mut tasks = 6usize;
    let mut seconds = 60.0f64;
    let mut seed = 7u64;
    let mut instances = 1usize;
    let mut trace = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--trace" {
            trace = true;
            i += 1;
            continue;
        }
        let val = args.get(i + 1).unwrap_or_else(|| {
            eprintln!("missing value for {}", args[i]);
            std::process::exit(2);
        });
        match args[i].as_str() {
            "--tasks" => tasks = val.parse().expect("--tasks takes an integer"),
            "--seconds" => seconds = val.parse().expect("--seconds takes a float"),
            "--seed" => seed = val.parse().expect("--seed takes an integer"),
            "--instances" => instances = val.parse().expect("--instances takes an integer"),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 2;
    }

    println!("kernel      M  seed  status      nodes  simplex_iters  seconds  nodes/s");
    let mut ratio_sum = 0.0;
    for k in 0..instances {
        let s = seed + k as u64;
        let dense = run(BasisKernel::Dense, tasks, seconds, s, trace);
        let sparse = run(BasisKernel::SparseLu, tasks, seconds, s, trace);
        for (name, r) in [("dense", &dense), ("sparse-lu", &sparse)] {
            println!(
                "{name:<10} {tasks:>2} {s:>5}  {:<10} {:>6}  {:>13}  {:>7.2}  {:>7.0}",
                r.status,
                r.nodes,
                r.iters,
                r.seconds,
                r.nodes as f64 / r.seconds.max(1e-9),
            );
        }
        let dense_tp = dense.nodes as f64 / dense.seconds.max(1e-9);
        let sparse_tp = sparse.nodes as f64 / sparse.seconds.max(1e-9);
        let ratio = sparse_tp / dense_tp.max(1e-9);
        ratio_sum += ratio;
        println!("  node-throughput ratio (sparse/dense): {ratio:.2}x");
        // Under a shared time budget one kernel may prove Optimal while the
        // other stops at Feasible, so only the solution-found/none split
        // must agree (true divergence is caught by the equivalence suite).
        let found = |s: &str| s == "Optimal" || s == "Feasible";
        assert_eq!(
            found(&dense.status),
            found(&sparse.status),
            "kernels disagree on solution existence: {} vs {}",
            dense.status,
            sparse.status
        );
    }
    if instances > 1 {
        println!("mean ratio over {instances} instances: {:.2}x", ratio_sum / instances as f64);
    }
}
