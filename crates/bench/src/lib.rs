//! # ndp-bench — the experiment harness
//!
//! One binary per figure of the paper's evaluation (§IV):
//!
//! | binary  | reproduces | series |
//! |---------|-----------|--------|
//! | `fig2a` | Fig. 2(a) | energy & feasibility: multi-path vs single-path (exact solver) |
//! | `fig2b` | Fig. 2(b) | `M_max` vs `μ` (communication/computation energy ratio) |
//! | `fig2c` | Fig. 2(c) | `M_d` vs `ε` (V/F energy-gap index) |
//! | `fig2d` | Fig. 2(d) | total energy: BE vs ME objectives |
//! | `fig2e` | Fig. 2(e) | balance index `φ`: BE vs ME |
//! | `fig2f` | Fig. 2(f) | solver wall-time vs `M`: optimal vs heuristic |
//! | `fig2g` | Fig. 2(g) | energy vs `M`: heuristic overhead over optimal |
//! | `fig2h` | Fig. 2(h) | feasibility ratio `δ` vs `α`: optimal vs heuristic |
//!
//! The exact arm substitutes the in-workspace `ndp-milp` branch-and-bound
//! for the paper's Gurobi, so the optimal sweeps run at moderated sizes
//! (`N = 4`, `M ≤ 6`) while the heuristic also runs at the paper's sizes
//! (`N = 16`, `M = 20`); see DESIGN.md §2 and EXPERIMENTS.md for the
//! mapping. All instances are seeded and reproducible.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod figs;

use ndp_core::{
    BatchOutcome, CommTimeModel, Deployment, DeploymentSession, OptimalConfig, OptimalOutcome,
    ProblemInstance,
};
use ndp_milp::{NodeOrder, Observer, Pricing, SolveStats, SolveStatus, SolverEvent, SolverOptions};
use ndp_noc::{Mesh2D, NocParams, WeightedNoc};
use ndp_platform::{Platform, PowerModel, PowerParams, ReliabilityParams, VfTable};
use ndp_taskset::{generate, GeneratorConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Everything needed to instantiate one experiment point.
#[derive(Debug, Clone)]
pub struct InstanceSpec {
    /// Original task count `M`.
    pub tasks: usize,
    /// Mesh side (`N = side²`).
    pub mesh_side: usize,
    /// Number of V/F levels `L`.
    pub levels: usize,
    /// Horizon multiplier `α`.
    pub alpha: f64,
    /// Reliability threshold `R_th`.
    pub reliability_threshold: f64,
    /// NoC parameters (energy scaling drives the `μ` sweeps).
    pub noc: NocParams,
    /// Voltage corner pair for the synthetic V/F table (drives `ε`).
    pub v_range: (f64, f64),
    /// Frequency corner pair in MHz.
    pub f_range: (f64, f64),
    /// Fault-model parameters.
    pub reliability: ReliabilityParams,
    /// Power-model parameters (leakage scaling drives the `ε` sweeps).
    pub power: PowerParams,
    /// RNG seed for both the task graph and the NoC link weights.
    pub seed: u64,
}

impl InstanceSpec {
    /// The evaluation defaults at a given size/seed; `L = 4` synthetic V/F
    /// table spanning the 70 nm corner points.
    pub fn new(tasks: usize, mesh_side: usize, alpha: f64, seed: u64) -> Self {
        InstanceSpec {
            tasks,
            mesh_side,
            levels: 4,
            alpha,
            reliability_threshold: 0.95,
            noc: NocParams::typical(),
            v_range: (0.85, 1.10),
            f_range: (300.0, 1000.0),
            reliability: ReliabilityParams::typical(),
            power: PowerParams::bulk_70nm(),
            seed,
        }
    }

    /// Materializes the problem instance.
    ///
    /// # Panics
    ///
    /// Panics on invalid spec fields (experiment code treats these as
    /// programmer errors, not recoverable conditions).
    pub fn build(&self) -> ProblemInstance {
        let cfg = GeneratorConfig::typical(self.tasks);
        let graph = generate(&cfg, self.seed).expect("valid generator config");
        let vf =
            VfTable::synthetic(self.levels, self.v_range, self.f_range).expect("valid V/F corners");
        let platform = Platform::new(
            self.mesh_side * self.mesh_side,
            vf,
            PowerModel::new(self.power),
            self.reliability,
        )
        .expect("valid platform");
        let noc = WeightedNoc::new(
            Mesh2D::square(self.mesh_side).expect("positive side"),
            self.noc,
            self.seed,
        )
        .expect("valid NoC params");
        ProblemInstance::from_original(
            &graph,
            platform,
            noc,
            self.reliability_threshold,
            self.alpha,
        )
        .expect("valid problem")
        .with_comm_time_model(CommTimeModel::PerUnit)
    }
}

/// The observer behind the benches' `--trace` flag: prints presolve, root,
/// incumbent, per-worker and termination events to stderr (so stdout tables
/// stay machine-readable), subsamples node events to every 500th, and drops
/// per-pivot prune/refactorization noise.
pub fn trace_observer() -> Arc<dyn Observer> {
    let nodes_seen = AtomicU64::new(0);
    Arc::new(move |e: &SolverEvent| match e {
        SolverEvent::NodeExplored { .. } => {
            let n = nodes_seen.fetch_add(1, Ordering::Relaxed) + 1;
            if n.is_multiple_of(500) {
                eprintln!("[trace] {e}");
            }
        }
        SolverEvent::NodePruned { .. } | SolverEvent::Refactorized { .. } => {}
        _ => eprintln!("[trace] {e}"),
    })
}

/// Default per-solve budget for the exact arm.
pub fn exact_solver_options() -> SolverOptions {
    let mut o = SolverOptions::default().time_limit(6.0);
    o.relative_gap = 1e-4;
    // The figure harness already fans out across seeds (`per_seed`); keep
    // each individual solve serial so a sweep doesn't oversubscribe the
    // machine. `solver_threads` is the binary that varies this knob.
    o.threads = 1;
    o
}

/// Outcome of one exact solve, reduced to what the figures need.
#[derive(Debug, Clone, Copy)]
pub struct ExactPoint {
    /// Feasible solution found.
    pub feasible: bool,
    /// Proved optimal (vs. stopped at a limit).
    pub proven: bool,
    /// Objective in mJ when feasible.
    pub objective_mj: f64,
    /// Wall time in seconds.
    pub seconds: f64,
    /// Branch-and-bound nodes.
    pub nodes: u64,
    /// Relative optimality gap of the incumbent (0 when proven optimal,
    /// infinite when infeasible/unknown).
    pub gap: f64,
    /// Per-phase time attribution and work counters of the solve (all
    /// zero when the solver returned an error).
    pub stats: SolveStats,
}

/// Reduces an [`OptimalOutcome`] (or error) to an [`ExactPoint`].
pub fn reduce_outcome(
    outcome: &std::result::Result<OptimalOutcome, ndp_core::DeployError>,
    seconds: f64,
) -> ExactPoint {
    match outcome {
        Ok(out @ OptimalOutcome { deployment: Some(_), status, objective_mj, .. }) => {
            let obj = objective_mj.unwrap_or(f64::NAN);
            let gap = ((obj - out.best_bound_mj).abs() / obj.abs().max(1e-9)).max(0.0);
            ExactPoint {
                feasible: true,
                proven: *status == SolveStatus::Optimal,
                objective_mj: obj,
                seconds,
                nodes: out.nodes,
                gap: if *status == SolveStatus::Optimal { 0.0 } else { gap },
                stats: out.stats,
            }
        }
        Ok(out) => ExactPoint {
            feasible: false,
            proven: out.status == SolveStatus::Infeasible,
            objective_mj: f64::NAN,
            seconds,
            nodes: out.nodes,
            gap: f64::INFINITY,
            stats: out.stats,
        },
        Err(_) => ExactPoint {
            feasible: false,
            proven: false,
            objective_mj: f64::NAN,
            seconds,
            nodes: 0,
            gap: f64::INFINITY,
            stats: SolveStats::default(),
        },
    }
}

/// A [`DeploymentSession`] configured like an [`OptimalConfig`] — the
/// bridge the figure binaries use now that `solve_optimal` is deprecated.
pub fn session_for(problem: &ProblemInstance, config: &OptimalConfig) -> DeploymentSession {
    DeploymentSession::builder(problem.clone())
        .path_mode(config.path_mode)
        .objective(config.objective)
        .warm_start_with_heuristic(config.warm_start_with_heuristic)
        .warm_start_deployment(config.warm_start_deployment.clone())
        .solver(config.solver.clone())
        .build()
}

/// Runs the exact solver on `problem` with `config`, reducing the outcome.
pub fn exact_point(problem: &ProblemInstance, config: &OptimalConfig) -> ExactPoint {
    let mut session = session_for(problem, config);
    let t0 = std::time::Instant::now();
    let outcome = session.solve();
    reduce_outcome(&outcome, t0.elapsed().as_secs_f64())
}

/// Reduces one member result of a `BatchSession::solve_all` to an
/// [`ExactPoint`]. The `seconds` column carries the member's solver
/// seconds — for a cache replay that is the solve time of the original
/// run, not the (near-zero) replay cost.
pub fn reduce_batch(result: &ndp_core::Result<BatchOutcome>) -> ExactPoint {
    match result {
        Ok(b) => reduce_outcome(&Ok(b.outcome.clone()), b.outcome.solve_seconds),
        Err(_) => ExactPoint {
            feasible: false,
            proven: false,
            objective_mj: f64::NAN,
            seconds: 0.0,
            nodes: 0,
            gap: f64::INFINITY,
            stats: SolveStats::default(),
        },
    }
}

/// Outcome of one heuristic run, reduced to what the figures need.
#[derive(Debug, Clone)]
pub struct HeuristicPoint {
    /// The deployment, when all three phases succeeded within the horizon.
    pub deployment: Option<Deployment>,
    /// Wall time of the three phases in seconds.
    pub seconds: f64,
}

impl HeuristicPoint {
    /// Whether the heuristic produced a deployment.
    pub fn feasible(&self) -> bool {
        self.deployment.is_some()
    }
}

/// Runs the heuristic, returning the deployment and wall time.
pub fn heuristic_point(problem: &ProblemInstance) -> HeuristicPoint {
    let session = DeploymentSession::new(problem.clone());
    let t0 = std::time::Instant::now();
    let deployment = session.heuristic().ok();
    HeuristicPoint { deployment, seconds: t0.elapsed().as_secs_f64() }
}

/// Maps `f` over the seeds as work-stealing tasks on the process-global
/// solver worker pool and returns results in seed order.
///
/// Scheduling is non-barriered: seeds are claimed one at a time from a
/// shared cursor, so a slow seed never gates the start of later ones (the
/// old implementation ran fixed chunks under `crossbeam::scope`, where
/// each chunk waited for its slowest member). Output order stays
/// deterministic — result `i` is `f(seeds[i])` regardless of which worker
/// computed it or when it finished.
pub fn per_seed<T, F>(seeds: &[u64], f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(u64) -> T + Send + Sync + 'static,
{
    let seeds = seeds.to_vec();
    ndp_milp::run_batch(seeds.len(), move |i| f(seeds[i]))
}

/// Parses a `--pricing` flag value (`dse`/`steepest-edge`, `devex`,
/// `dantzig`).
pub fn parse_pricing(s: &str) -> Option<Pricing> {
    match s {
        "dse" | "steepest-edge" => Some(Pricing::SteepestEdge),
        "devex" => Some(Pricing::Devex),
        "dantzig" => Some(Pricing::Dantzig),
        _ => None,
    }
}

/// Short machine-readable name of a pricing rule for bench tables/JSON.
pub fn pricing_name(p: Pricing) -> &'static str {
    match p {
        Pricing::SteepestEdge => "dse",
        Pricing::Devex => "devex",
        Pricing::Dantzig => "dantzig",
    }
}

/// Parses a `--node-order` flag value (`dfs`/`depth-first`,
/// `best`/`best-bound`).
pub fn parse_node_order(s: &str) -> Option<NodeOrder> {
    match s {
        "dfs" | "depth-first" => Some(NodeOrder::DepthFirst),
        "best" | "best-bound" => Some(NodeOrder::BestBound),
        _ => None,
    }
}

/// Short machine-readable name of a node order for bench tables/JSON.
pub fn node_order_name(o: NodeOrder) -> &'static str {
    match o {
        NodeOrder::DepthFirst => "dfs",
        NodeOrder::BestBound => "best-bound",
    }
}

/// Parses a `--branch-rule` flag value (`most-frac`, `first-frac`,
/// `pseudo`/`pseudo-cost`, `reliability`).
pub fn parse_branch_rule(s: &str) -> Option<ndp_milp::BranchRule> {
    match s {
        "most-frac" | "most-fractional" => Some(ndp_milp::BranchRule::MostFractional),
        "first-frac" | "first-fractional" => Some(ndp_milp::BranchRule::FirstFractional),
        "pseudo" | "pseudo-cost" => Some(ndp_milp::BranchRule::PseudoCost),
        "reliability" => Some(ndp_milp::BranchRule::Reliability),
        _ => None,
    }
}

/// Short machine-readable name of a branch rule for bench tables/JSON.
pub fn branch_rule_name(r: ndp_milp::BranchRule) -> &'static str {
    match r {
        ndp_milp::BranchRule::MostFractional => "most-frac",
        ndp_milp::BranchRule::FirstFractional => "first-frac",
        ndp_milp::BranchRule::PseudoCost => "pseudo",
        ndp_milp::BranchRule::Reliability => "reliability",
    }
}

/// One machine-readable solve record for `BENCH_milp.json`: what the solver
/// configuration was and how much work the solve took.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Instance label, e.g. `M6-N4-seed7`.
    pub instance: String,
    /// Basis kernel (`dense` / `sparse-lu`).
    pub kernel: String,
    /// Pricing rule (`dse` / `devex` / `dantzig`).
    pub pricing: String,
    /// Branch-and-bound node order (`dfs` / `best-bound`).
    pub node_order: String,
    /// Parent-basis warm starts enabled.
    pub warm_start: bool,
    /// Cutting planes enabled.
    pub cuts: bool,
    /// Primal heuristics (root diving + RINS/RENS) enabled.
    pub heuristics: bool,
    /// Node-level bound propagation enabled.
    pub propagation: bool,
    /// Conflict analysis (no-good cuts from infeasible nodes) enabled.
    pub conflict_cuts: bool,
    /// Worker threads.
    pub threads: usize,
    /// Termination status (`Optimal`, `Feasible`, ...).
    pub status: String,
    /// Branch-and-bound nodes evaluated.
    pub nodes: u64,
    /// Total simplex pivots.
    pub pivots: u64,
    /// Node LPs started from a parent basis.
    pub warm_starts: u64,
    /// Node LPs started from the slack basis.
    pub cold_starts: u64,
    /// Cuts installed (root survivors plus in-tree rounds).
    pub cuts_applied: u64,
    /// Incumbents contributed by the root primal heuristics.
    pub heuristic_incumbents: u64,
    /// Individual bound tightenings applied by node propagation.
    pub propagated_bounds: u64,
    /// Conflict cuts installed in the worker LP.
    pub conflict_cuts_applied: u64,
    /// Relative optimality gap of the incumbent: 0 when proven optimal,
    /// the remaining gap for a time/node-limited `Feasible` run, non-finite
    /// (serialized as `null`) when no incumbent exists. Distinguishes a
    /// near-optimal limited run from a poor one — previously a limited run
    /// was reported as a bare `Feasible` with no gap at all.
    pub gap: f64,
    /// Best proven bound on the objective (user scale); non-finite
    /// serializes as `null`.
    pub dual_bound: f64,
    /// Wall-clock seconds of the solve.
    pub seconds: f64,
    /// For re-deployment records: wall-clock ratio of the from-scratch
    /// solve over the incremental re-solve of the same event (>1 means
    /// the warm path won). `None` for ordinary one-shot records.
    pub speedup: Option<f64>,
    /// The record came from the batch engine (`BatchSession` /
    /// `batch_sweep`) rather than a serial one-at-a-time run.
    pub batch: bool,
    /// Portfolio racing (heuristic vs exact arms) was enabled.
    pub portfolio: bool,
    /// For sweep-level records: end-to-end wall-clock of the full sweep
    /// this record belongs to. `None` for per-solve records.
    pub sweep_wall_seconds: Option<f64>,
    /// Branch rule of the solve (`most-frac` / `first-frac` / `pseudo` /
    /// `reliability`). `None` (serialized as `null`) for records written
    /// before the field existed or where the rule is not meaningful.
    pub branch_rule: Option<String>,
    /// Symmetry handling (lex rows + orbital fixing) was enabled *and*
    /// candidates were supplied. `None` (`null`) when not applicable.
    pub symmetry: Option<bool>,
}

/// A finite float as JSON, non-finite as `null` (JSON has no Inf/NaN).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

impl BenchRecord {
    /// Serializes the record as one JSON object (hand-formatted: the
    /// workspace carries no JSON dependency).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"instance\":\"{}\",\"kernel\":\"{}\",\"pricing\":\"{}\",",
                "\"node_order\":\"{}\",",
                "\"warm_start\":{},\"cuts\":{},\"heuristics\":{},\"propagation\":{},",
                "\"conflict_cuts\":{},\"threads\":{},\"status\":\"{}\",\"nodes\":{},",
                "\"pivots\":{},\"warm_starts\":{},\"cold_starts\":{},\"cuts_applied\":{},",
                "\"heuristic_incumbents\":{},\"propagated_bounds\":{},",
                "\"conflict_cuts_applied\":{},",
                "\"gap\":{},\"dual_bound\":{},\"seconds\":{:.4},\"speedup\":{},",
                "\"batch\":{},\"portfolio\":{},\"sweep_wall_seconds\":{},",
                "\"branch_rule\":{},\"symmetry\":{}}}"
            ),
            self.instance,
            self.kernel,
            self.pricing,
            self.node_order,
            self.warm_start,
            self.cuts,
            self.heuristics,
            self.propagation,
            self.conflict_cuts,
            self.threads,
            self.status,
            self.nodes,
            self.pivots,
            self.warm_starts,
            self.cold_starts,
            self.cuts_applied,
            self.heuristic_incumbents,
            self.propagated_bounds,
            self.conflict_cuts_applied,
            json_f64(self.gap),
            json_f64(self.dual_bound),
            self.seconds,
            self.speedup.map_or_else(|| "null".to_string(), json_f64),
            self.batch,
            self.portfolio,
            self.sweep_wall_seconds.map_or_else(|| "null".to_string(), json_f64),
            self.branch_rule.as_ref().map_or_else(|| "null".to_string(), |r| format!("\"{r}\"")),
            self.symmetry.map_or_else(|| "null".to_string(), |s| s.to_string()),
        )
    }
}

/// Writes `records` to `path` as a JSON array, one record per line.
///
/// # Errors
///
/// Propagates the underlying file-system error.
pub fn write_bench_json(path: &str, records: &[BenchRecord]) -> std::io::Result<()> {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&r.to_json());
        if i + 1 < records.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    std::fs::write(path, out)
}

/// Appends `records` to the bench-trajectory file at `path`, keeping the
/// one-record-per-line JSON array layout of [`write_bench_json`]. A missing
/// or empty file is created; an existing array keeps its records, so the
/// repo-root `BENCH_milp.json` accumulates a history of configurations
/// across runs instead of being clobbered by each one.
///
/// The update is atomic: the merged array is written to a temporary
/// sibling file and renamed into place, so a crash (or a concurrent
/// reader) never observes a truncated `BENCH_milp.json`. Torn records
/// left behind by pre-atomic writers — lines that are not a complete
/// `{...}` object — are dropped during the merge instead of being
/// re-serialized into the array.
///
/// # Errors
///
/// Propagates the underlying file-system error.
pub fn append_bench_json(path: &str, records: &[BenchRecord]) -> std::io::Result<()> {
    if records.is_empty() {
        return Ok(());
    }
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let mut lines: Vec<String> = existing
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && *l != "[" && *l != "]")
        .map(|l| l.trim_end_matches(',').to_string())
        .filter(|l| l.starts_with('{') && l.ends_with('}'))
        .collect();
    for r in records {
        lines.push(r.to_json());
    }
    let mut out = String::from("[\n");
    for (i, l) in lines.iter().enumerate() {
        out.push_str("  ");
        out.push_str(l);
        if i + 1 < lines.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");

    // Write-then-rename keeps the destination complete at every instant;
    // the temp name embeds the pid so concurrent processes appending to
    // the same file cannot collide on it.
    let target = std::path::Path::new(path);
    let dir = target.parent().filter(|d| !d.as_os_str().is_empty());
    let file_name = target
        .file_name()
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "path has no file name")
        })?
        .to_string_lossy()
        .into_owned();
    let tmp_name = format!(".{}.{}.tmp", file_name, std::process::id());
    let tmp = match dir {
        Some(d) => d.join(tmp_name),
        None => std::path::PathBuf::from(tmp_name),
    };
    std::fs::write(&tmp, out)?;
    std::fs::rename(&tmp, target).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// Mean of the finite entries of `values` (NaN when none).
pub fn mean_finite(values: &[f64]) -> f64 {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        f64::NAN
    } else {
        finite.iter().sum::<f64>() / finite.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builds_reproducibly() {
        let a = InstanceSpec::new(6, 2, 2.0, 3).build();
        let b = InstanceSpec::new(6, 2, 2.0, 3).build();
        assert_eq!(a.horizon_ms, b.horizon_ms);
        assert_eq!(a.num_tasks(), 12);
        assert_eq!(a.num_processors(), 4);
        assert_eq!(a.num_levels(), 4);
    }

    #[test]
    fn per_seed_preserves_order() {
        let seeds: Vec<u64> = (0..17).collect();
        let out = per_seed(&seeds, |s| s * 2);
        assert_eq!(out, seeds.iter().map(|s| s * 2).collect::<Vec<_>>());
    }

    #[test]
    fn branch_rule_names_roundtrip() {
        use ndp_milp::BranchRule::{FirstFractional, MostFractional, PseudoCost, Reliability};
        for r in [MostFractional, FirstFractional, PseudoCost, Reliability] {
            assert_eq!(parse_branch_rule(branch_rule_name(r)), Some(r));
        }
        assert_eq!(parse_branch_rule("most-fractional"), Some(MostFractional));
        assert_eq!(parse_branch_rule("pseudo-cost"), Some(PseudoCost));
        assert!(parse_branch_rule("bogus").is_none());
    }

    #[test]
    fn bench_record_json_roundtrips_fields() {
        let r = BenchRecord {
            instance: "M4-N4-seed7".into(),
            kernel: "sparse-lu".into(),
            pricing: "dse".into(),
            node_order: "dfs".into(),
            warm_start: true,
            cuts: true,
            heuristics: true,
            propagation: true,
            conflict_cuts: false,
            threads: 1,
            status: "Optimal".into(),
            nodes: 12,
            pivots: 345,
            warm_starts: 11,
            cold_starts: 1,
            cuts_applied: 7,
            heuristic_incumbents: 2,
            propagated_bounds: 610,
            conflict_cuts_applied: 3,
            gap: 0.0,
            dual_bound: 42.5,
            seconds: 0.25,
            speedup: None,
            batch: true,
            portfolio: false,
            sweep_wall_seconds: Some(123.5),
            branch_rule: Some("reliability".into()),
            symmetry: Some(true),
        };
        let j = r.to_json();
        for needle in [
            "\"instance\":\"M4-N4-seed7\"",
            "\"kernel\":\"sparse-lu\"",
            "\"pricing\":\"dse\"",
            "\"node_order\":\"dfs\"",
            "\"warm_start\":true",
            "\"cuts\":true",
            "\"heuristics\":true",
            "\"propagation\":true",
            "\"conflict_cuts\":false",
            "\"nodes\":12",
            "\"pivots\":345",
            "\"warm_starts\":11",
            "\"cold_starts\":1",
            "\"cuts_applied\":7",
            "\"heuristic_incumbents\":2",
            "\"propagated_bounds\":610",
            "\"conflict_cuts_applied\":3",
            "\"gap\":0.000000",
            "\"dual_bound\":42.500000",
            "\"seconds\":0.2500",
            "\"batch\":true",
            "\"portfolio\":false",
            "\"sweep_wall_seconds\":123.500000",
            "\"branch_rule\":\"reliability\"",
            "\"symmetry\":true",
        ] {
            assert!(j.contains(needle), "missing {needle} in {j}");
        }
    }

    /// A limited run without an incumbent carries non-finite gap/bound —
    /// JSON has no Inf/NaN, so both must serialize as `null`.
    #[test]
    fn bench_record_nonfinite_floats_serialize_as_null() {
        let r = BenchRecord {
            instance: "M9-N4-seed1".into(),
            kernel: "dense".into(),
            pricing: "devex".into(),
            node_order: "best-bound".into(),
            warm_start: false,
            cuts: false,
            heuristics: false,
            propagation: false,
            conflict_cuts: false,
            threads: 2,
            status: "Unknown".into(),
            nodes: 3,
            pivots: 9,
            warm_starts: 0,
            cold_starts: 3,
            cuts_applied: 0,
            heuristic_incumbents: 0,
            propagated_bounds: 0,
            conflict_cuts_applied: 0,
            gap: f64::INFINITY,
            dual_bound: f64::NAN,
            seconds: 6.0,
            speedup: None,
            batch: false,
            portfolio: false,
            sweep_wall_seconds: Some(f64::NAN),
            branch_rule: None,
            symmetry: None,
        };
        let j = r.to_json();
        assert!(j.contains("\"gap\":null"), "{j}");
        assert!(j.contains("\"dual_bound\":null"), "{j}");
        assert!(j.contains("\"sweep_wall_seconds\":null"), "{j}");
        assert!(j.contains("\"branch_rule\":null"), "{j}");
        assert!(j.contains("\"symmetry\":null"), "{j}");
        assert!(!j.contains("inf") && !j.contains("NaN"), "{j}");
    }

    fn record(instance: &str) -> BenchRecord {
        BenchRecord {
            instance: instance.into(),
            kernel: "sparse-lu".into(),
            pricing: "dse".into(),
            node_order: "dfs".into(),
            warm_start: true,
            cuts: true,
            heuristics: true,
            propagation: true,
            conflict_cuts: true,
            threads: 1,
            status: "Optimal".into(),
            nodes: 1,
            pivots: 2,
            warm_starts: 0,
            cold_starts: 1,
            cuts_applied: 0,
            heuristic_incumbents: 0,
            propagated_bounds: 0,
            conflict_cuts_applied: 0,
            gap: 0.0,
            dual_bound: 1.0,
            seconds: 0.1,
            speedup: None,
            batch: false,
            portfolio: false,
            sweep_wall_seconds: None,
            branch_rule: None,
            symmetry: None,
        }
    }

    #[test]
    fn append_bench_json_accumulates_across_runs() {
        let path = std::env::temp_dir().join(format!("bench_append_{}.json", std::process::id()));
        let path = path.to_str().unwrap().to_string();
        let _ = std::fs::remove_file(&path);
        append_bench_json(&path, &[record("a")]).unwrap();
        append_bench_json(&path, &[record("b"), record("c")]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        for inst in ["\"instance\":\"a\"", "\"instance\":\"b\"", "\"instance\":\"c\""] {
            assert!(text.contains(inst), "missing {inst} in {text}");
        }
        assert!(text.starts_with("[\n") && text.ends_with("]\n"), "{text}");
        // Three records, comma-separated: exactly two separators.
        assert_eq!(text.matches("},").count(), 2, "{text}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_bench_json_survives_a_torn_partial_write() {
        let path =
            std::env::temp_dir().join(format!("bench_append_torn_{}.json", std::process::id()));
        let path = path.to_str().unwrap().to_string();
        // A file left behind by a crashed pre-atomic writer: one complete
        // record followed by a record cut off mid-line.
        let torn = format!("[\n  {},\n  {{\"instance\":\"torn\",\"nod", record("keep").to_json());
        std::fs::write(&path, torn).unwrap();

        append_bench_json(&path, &[record("fresh")]).unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("[\n") && text.ends_with("]\n"), "{text}");
        assert!(text.contains("\"instance\":\"keep\""), "complete record lost: {text}");
        assert!(text.contains("\"instance\":\"fresh\""), "new record lost: {text}");
        assert!(!text.contains("torn"), "torn fragment re-serialized: {text}");
        // Every line between the brackets must be a complete object.
        for line in text.lines().filter(|l| *l != "[" && *l != "]") {
            let body = line.trim().trim_end_matches(',');
            assert!(body.starts_with('{') && body.ends_with('}'), "bad line {line:?}");
        }
        // The temp file must not linger after a successful rename.
        let dir = std::path::Path::new(&path).parent().unwrap();
        let stem = std::path::Path::new(&path).file_name().unwrap().to_string_lossy().into_owned();
        let leftover = std::fs::read_dir(dir).unwrap().any(|e| {
            let name = e.unwrap().file_name().to_string_lossy().into_owned();
            name.contains(&stem) && name.ends_with(".tmp")
        });
        assert!(!leftover, "temporary file left behind");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn pricing_parses_all_names() {
        assert_eq!(parse_pricing("dse"), Some(Pricing::SteepestEdge));
        assert_eq!(parse_pricing("steepest-edge"), Some(Pricing::SteepestEdge));
        assert_eq!(parse_pricing("devex"), Some(Pricing::Devex));
        assert_eq!(parse_pricing("dantzig"), Some(Pricing::Dantzig));
        assert_eq!(parse_pricing("bogus"), None);
        for p in [Pricing::SteepestEdge, Pricing::Devex, Pricing::Dantzig] {
            assert_eq!(parse_pricing(pricing_name(p)), Some(p));
        }
    }

    #[test]
    fn node_order_parses_all_names() {
        assert_eq!(parse_node_order("dfs"), Some(NodeOrder::DepthFirst));
        assert_eq!(parse_node_order("depth-first"), Some(NodeOrder::DepthFirst));
        assert_eq!(parse_node_order("best"), Some(NodeOrder::BestBound));
        assert_eq!(parse_node_order("best-bound"), Some(NodeOrder::BestBound));
        assert_eq!(parse_node_order("bogus"), None);
        for o in [NodeOrder::DepthFirst, NodeOrder::BestBound] {
            assert_eq!(parse_node_order(node_order_name(o)), Some(o));
        }
    }

    #[test]
    fn mean_finite_skips_nan() {
        assert_eq!(mean_finite(&[1.0, f64::NAN, 3.0]), 2.0);
        assert!(mean_finite(&[f64::NAN]).is_nan());
    }

    #[test]
    fn heuristic_point_runs() {
        let p = InstanceSpec::new(8, 3, 4.0, 1).build();
        let h = heuristic_point(&p);
        assert!(h.seconds >= 0.0);
        assert_eq!(h.feasible(), h.deployment.is_some());
        if let Some(d) = h.deployment {
            assert!(ndp_core::is_valid(&p, &d));
        }
    }
}
