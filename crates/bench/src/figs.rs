//! Batch-engine figure drivers.
//!
//! Each `fig2x` function reproduces the table of the binary of the same
//! name, but schedules its exact solves through an
//! [`ndp_core::BatchSession`] instead of one `DeploymentSession` per
//! call. All functions share one [`ExperimentContext`]: a process-wide
//! [`SolveCache`] plus an instance memo, so a `(problem, config)` member
//! that several figures have in common — e.g. the `M ∈ {3..6}` BE grid
//! of fig 2(d)/(e)/(f)/(g), or fig 2(b)'s `factor = 1.0` column — is
//! solved once and replayed verbatim everywhere else. `batch_sweep` runs
//! the whole family in one process on one context; the standalone
//! binaries each create a fresh context, which degrades gracefully to
//! per-figure sharing.
//!
//! Printed tables are identical to the pre-batch binaries: the members
//! run the same presolve-free session pipeline with the same budgets in
//! the same member order, and timing columns report solver seconds.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::{
    exact_solver_options, heuristic_point, mean_finite, reduce_batch, ExactPoint, InstanceSpec,
};
use ndp_core::{
    communication_computation_ratio, duplicated_count, energy_gap_index, feasibility_ratio,
    max_tasks_per_processor, BatchSession, DeployObjective, OptimalConfig, PathMode,
    ProblemInstance, SolveCache,
};
use ndp_noc::{NocParams, PathKind};
use ndp_platform::ReliabilityParams;

/// Shared artifacts for a family of figure runs: the exact-solve memo
/// cache and an instance memo keyed by the full [`InstanceSpec`].
///
/// One context per process is the intended shape (`batch_sweep`); the
/// per-figure binaries create their own, which still shares within the
/// figure.
#[derive(Default)]
pub struct ExperimentContext {
    cache: SolveCache,
    instances: Mutex<HashMap<String, Arc<ProblemInstance>>>,
}

impl ExperimentContext {
    /// A fresh context with an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The exact-solve memo shared by every batch created from this
    /// context.
    pub fn cache(&self) -> &SolveCache {
        &self.cache
    }

    /// The (memoized) problem instance for `spec`. Two calls with an
    /// identical spec return the same `Arc`, so batches also share the
    /// per-instance heuristic run.
    pub fn instance(&self, spec: &InstanceSpec) -> Arc<ProblemInstance> {
        let key = format!("{spec:?}");
        let mut map = self.instances.lock().expect("instance memo poisoned");
        Arc::clone(map.entry(key).or_insert_with(|| Arc::new(spec.build())))
    }

    /// An empty [`BatchSession`] memoizing into this context's cache.
    pub fn batch(&self) -> BatchSession {
        BatchSession::with_cache(self.cache.clone())
    }
}

/// The default exact-arm member config of the figure sweeps.
fn exact_cfg() -> OptimalConfig {
    OptimalConfig { solver: exact_solver_options(), ..OptimalConfig::default() }
}

/// Fig. 2(a): multi-path vs single-path energy/feasibility vs `α`, with
/// the two arms raced as a portfolio: the single-path member is linked
/// into the multi-path member, so the single-path deployment seeds the
/// multi-path search the moment it lands (as a warm start before the
/// multi solve enters the tree, through its incumbent feed afterwards).
pub fn fig2a(ctx: &ExperimentContext) {
    let seeds: Vec<u64> = (0..6).collect();
    let alphas = [0.25, 0.5, 1.0, 1.5, 2.0];
    println!("# Fig 2(a): multi-path vs single-path (exact solver, N=4, M=5, L=4)");
    println!(
        "{:>6} {:>12} {:>14} {:>13} {:>15}",
        "alpha", "multi_feas", "multi_mJ", "single_feas", "single_mJ"
    );
    for &alpha in &alphas {
        let mut batch = ctx.batch();
        batch.set_portfolio(true);
        // All single-path members first: on the work-stealing pool they
        // are claimed (and mostly finished) before their multi-path
        // targets start, mirroring the serial solve-single-then-multi
        // order while never blocking a free worker on a barrier.
        let singles: Vec<usize> = seeds
            .iter()
            .map(|&seed| {
                let problem = ctx.instance(&InstanceSpec::new(5, 2, alpha, seed));
                batch.add(
                    problem,
                    OptimalConfig {
                        path_mode: PathMode::SingleFixed(PathKind::EnergyOriented),
                        ..exact_cfg()
                    },
                )
            })
            .collect();
        let pairs: Vec<(usize, usize)> = seeds
            .iter()
            .zip(&singles)
            .map(|(&seed, &single)| {
                let problem = ctx.instance(&InstanceSpec::new(5, 2, alpha, seed));
                let multi = batch.add(problem, exact_cfg());
                batch.link_incumbents(single, multi);
                (multi, single)
            })
            .collect();
        let results = batch.solve_all();
        let rows: Vec<(ExactPoint, ExactPoint)> = pairs
            .iter()
            .map(|&(m, s)| (reduce_batch(&results[m]), reduce_batch(&results[s])))
            .collect();
        let multi_feas = rows.iter().filter(|(m, _)| m.feasible).count() as f64 / rows.len() as f64;
        let single_feas =
            rows.iter().filter(|(_, s)| s.feasible).count() as f64 / rows.len() as f64;
        let both: Vec<&(ExactPoint, ExactPoint)> =
            rows.iter().filter(|(m, s)| m.feasible && s.feasible).collect();
        let multi_mj = mean_finite(&both.iter().map(|(m, _)| m.objective_mj).collect::<Vec<_>>());
        let single_mj = mean_finite(&both.iter().map(|(_, s)| s.objective_mj).collect::<Vec<_>>());
        println!(
            "{alpha:>6.2} {multi_feas:>12.2} {multi_mj:>14.4} {single_feas:>13.2} {single_mj:>15.4}"
        );
    }
}

/// Fig. 2(b): `M_max` vs the communication/computation energy ratio `μ`.
pub fn fig2b(ctx: &ExperimentContext) {
    let seeds: Vec<u64> = (0..5).collect();
    let factors = [0.2, 0.5, 1.0, 2.0, 5.0, 10.0];
    println!("# Fig 2(b): M_max vs mu (exact solver, N=4, M=6, L=4)");
    println!("{:>8} {:>10} {:>8} {:>10}", "factor", "mu", "M_max", "feasible");
    for &factor in &factors {
        let mut batch = ctx.batch();
        let members: Vec<(Arc<ProblemInstance>, f64)> = seeds
            .iter()
            .map(|&seed| {
                let mut spec = InstanceSpec::new(6, 2, 2.0, seed);
                spec.noc = NocParams::typical().scale_energy(factor);
                let problem = ctx.instance(&spec);
                let mu = communication_computation_ratio(&problem);
                batch.add(Arc::clone(&problem), exact_cfg());
                (problem, mu)
            })
            .collect();
        let results = batch.solve_all();
        let rows: Vec<(f64, Option<usize>)> = members
            .iter()
            .zip(&results)
            .map(|((problem, mu), r)| {
                let m_max = r
                    .as_ref()
                    .ok()
                    .and_then(|o| o.outcome.deployment.as_ref())
                    .map(|d| max_tasks_per_processor(problem, d));
                (*mu, m_max)
            })
            .collect();
        let mu = rows.iter().map(|(mu, _)| *mu).sum::<f64>() / rows.len() as f64;
        let solved: Vec<usize> = rows.iter().filter_map(|(_, m)| *m).collect();
        let m_max = if solved.is_empty() {
            f64::NAN
        } else {
            solved.iter().sum::<usize>() as f64 / solved.len() as f64
        };
        let feas = rows.iter().filter(|(_, m)| m.is_some()).count() as f64 / rows.len() as f64;
        println!("{factor:>8.1} {mu:>10.3} {m_max:>8.2} {feas:>10.2}");
    }
}

/// Fig. 2(c): duplicated tasks `M_d` vs the V/F energy-gap index `ε`.
pub fn fig2c(ctx: &ExperimentContext) {
    let seeds: Vec<u64> = (0..5).collect();
    let v_spans = [0.05, 0.15, 0.25, 0.40, 0.55];
    println!("# Fig 2(c): M_d vs epsilon (exact solver, N=4, M=6, L=4)");
    println!(
        "{:>8} {:>10} {:>8} {:>8} {:>10}",
        "v_span", "epsilon", "M_d_BE", "M_d_ME", "feasible"
    );
    for &span in &v_spans {
        let mut batch = ctx.batch();
        let members: Vec<(Arc<ProblemInstance>, f64, usize, usize)> = seeds
            .iter()
            .map(|&seed| {
                let mut spec = InstanceSpec::new(6, 2, 2.5, seed);
                spec.v_range = (0.85, 0.85 + span);
                spec.power.lg = 4.0e4;
                spec.reliability = ReliabilityParams { lambda_max_freq: 2e-5, sensitivity: 3.0 };
                spec.reliability_threshold = 0.9995;
                let problem = ctx.instance(&spec);
                let eps = energy_gap_index(&problem);
                let be = batch.add(Arc::clone(&problem), exact_cfg());
                let me = batch.add(
                    Arc::clone(&problem),
                    OptimalConfig {
                        objective: DeployObjective::MinimizeTotalEnergy,
                        ..exact_cfg()
                    },
                );
                (problem, eps, be, me)
            })
            .collect();
        let results = batch.solve_all();
        let dup = |problem: &ProblemInstance, idx: usize| {
            results[idx]
                .as_ref()
                .ok()
                .and_then(|o| o.outcome.deployment.as_ref())
                .map(|d| duplicated_count(problem, d))
        };
        let rows: Vec<(f64, Option<usize>, Option<usize>)> = members
            .iter()
            .map(|(problem, eps, be, me)| (*eps, dup(problem, *be), dup(problem, *me)))
            .collect();
        let eps = rows.iter().map(|(e, _, _)| *e).sum::<f64>() / rows.len() as f64;
        let avg = |xs: Vec<usize>| {
            if xs.is_empty() {
                f64::NAN
            } else {
                xs.iter().sum::<usize>() as f64 / xs.len() as f64
            }
        };
        let m_d_be = avg(rows.iter().filter_map(|(_, b, _)| *b).collect());
        let m_d_me = avg(rows.iter().filter_map(|(_, _, m)| *m).collect());
        let feas = rows.iter().filter(|(_, b, _)| b.is_some()).count() as f64 / rows.len() as f64;
        println!("{span:>8.2} {eps:>10.3} {m_d_be:>8.2} {m_d_me:>8.2} {feas:>10.2}");
    }
}

/// Fig. 2(d): total system energy, BE vs ME objectives.
pub fn fig2d(ctx: &ExperimentContext) {
    let seeds: Vec<u64> = (0..5).collect();
    let task_counts = [3usize, 4, 5, 6];
    println!("# Fig 2(d): total energy, BE vs ME (exact solver, N=4, L=4)");
    println!("{:>4} {:>12} {:>12} {:>10}", "M", "BE_total_mJ", "ME_total_mJ", "ME_saving");
    for &m in &task_counts {
        let results = be_me_grid(ctx, m, &seeds);
        let rows: Vec<(f64, f64)> = results
            .iter()
            .map(|(problem, be, me)| {
                let be_total = be
                    .as_ref()
                    .and_then(|o| o.outcome.deployment.as_ref())
                    .map(|d| d.energy_report(problem).total_mj())
                    .unwrap_or(f64::NAN);
                let me_mj = me.as_ref().and_then(|o| o.outcome.objective_mj).unwrap_or(f64::NAN);
                (be_total, me_mj)
            })
            .collect();
        let be = mean_finite(&rows.iter().map(|(b, _)| *b).collect::<Vec<_>>());
        let me = mean_finite(&rows.iter().map(|(_, m)| *m).collect::<Vec<_>>());
        let saving = (1.0 - me / be) * 100.0;
        println!("{m:>4} {be:>12.4} {me:>12.4} {saving:>9.2}%");
    }
}

/// Fig. 2(e): energy-balance index `φ`, BE vs ME objectives.
pub fn fig2e(ctx: &ExperimentContext) {
    let seeds: Vec<u64> = (0..5).collect();
    let task_counts = [3usize, 4, 5, 6];
    println!("# Fig 2(e): balance index phi, BE vs ME (exact solver, N=4, L=4)");
    println!("{:>4} {:>10} {:>10}", "M", "BE_phi", "ME_phi");
    for &m in &task_counts {
        let results = be_me_grid(ctx, m, &seeds);
        let phi = |problem: &ProblemInstance, out: &Option<ndp_core::BatchOutcome>| {
            out.as_ref()
                .and_then(|o| o.outcome.deployment.as_ref())
                .map(|d| d.energy_report(problem).balance_index())
                .unwrap_or(f64::NAN)
        };
        let rows: Vec<(f64, f64)> =
            results.iter().map(|(p, be, me)| (phi(p, be), phi(p, me))).collect();
        let be = mean_finite(&rows.iter().map(|(b, _)| *b).collect::<Vec<_>>());
        let me = mean_finite(&rows.iter().map(|(_, m)| *m).collect::<Vec<_>>());
        println!("{m:>4} {be:>10.3} {me:>10.3}");
    }
}

/// The shared BE + ME member grid of figs 2(d)/(e): one batch of
/// `2 × seeds` members at task count `m`. Returns per-seed
/// `(problem, BE, ME)`; a failed member surfaces as `None`, matching
/// the serial `.ok()` handling.
#[allow(clippy::type_complexity)]
fn be_me_grid(
    ctx: &ExperimentContext,
    m: usize,
    seeds: &[u64],
) -> Vec<(Arc<ProblemInstance>, Option<ndp_core::BatchOutcome>, Option<ndp_core::BatchOutcome>)> {
    let mut batch = ctx.batch();
    let members: Vec<(Arc<ProblemInstance>, usize, usize)> = seeds
        .iter()
        .map(|&seed| {
            let problem = ctx.instance(&InstanceSpec::new(m, 2, 2.0, seed));
            let be = batch.add(Arc::clone(&problem), exact_cfg());
            let me = batch.add(
                Arc::clone(&problem),
                OptimalConfig { objective: DeployObjective::MinimizeTotalEnergy, ..exact_cfg() },
            );
            (problem, be, me)
        })
        .collect();
    let results = batch.solve_all();
    members
        .into_iter()
        .map(|(problem, be, me)| {
            let take = |i: usize| results[i].as_ref().ok().cloned();
            (problem, take(be), take(me))
        })
        .collect()
}

/// Fig. 2(f): solver wall time vs `M` — optimal vs heuristic.
pub fn fig2f(ctx: &ExperimentContext) {
    let seeds: Vec<u64> = (0..5).collect();
    println!("# Fig 2(f): wall time vs M");
    println!("## exact arm (N=4, L=4, 6 s budget per solve)");
    println!(
        "{:>4} {:>12} {:>10} {:>10} {:>12}",
        "M", "optimal_s", "nodes", "proven", "heuristic_s"
    );
    for m in [3usize, 4, 5, 6] {
        let (problems, exact) = be_grid(ctx, m, &seeds);
        let rows: Vec<(ExactPoint, f64)> = problems
            .iter()
            .zip(&exact)
            .map(|(problem, point)| (*point, heuristic_point(problem).seconds))
            .collect();
        let opt_s = mean_finite(&rows.iter().map(|(e, _)| e.seconds).collect::<Vec<_>>());
        let nodes = rows.iter().map(|(e, _)| e.nodes).sum::<u64>() / rows.len() as u64;
        let proven = rows.iter().filter(|(e, _)| e.proven).count();
        let heu_s = mean_finite(&rows.iter().map(|(_, h)| *h).collect::<Vec<_>>());
        println!("{m:>4} {opt_s:>12.3} {nodes:>10} {:>7}/{:<2} {heu_s:>12.6}", proven, rows.len());
    }
    println!("## heuristic arm at paper sizes (N=16, L=6)");
    println!("{:>4} {:>14} {:>10}", "M", "heuristic_s", "feasible");
    for m in [10usize, 20, 50, 100] {
        let rows = crate::per_seed(&seeds, move |seed| {
            let mut spec = InstanceSpec::new(m, 4, 3.0, seed);
            spec.levels = 6;
            let problem = spec.build();
            heuristic_point(&problem)
        });
        let heu_s = mean_finite(&rows.iter().map(|h| h.seconds).collect::<Vec<_>>());
        let feas = rows.iter().filter(|h| h.feasible()).count() as f64 / rows.len() as f64;
        println!("{m:>4} {heu_s:>14.6} {feas:>10.2}");
    }
}

/// Fig. 2(g): deployment energy vs `M` — heuristic vs optimal.
pub fn fig2g(ctx: &ExperimentContext) {
    let seeds: Vec<u64> = (0..5).collect();
    println!("# Fig 2(g): heuristic vs optimal energy (N=4, L=4)");
    println!(
        "{:>4} {:>12} {:>14} {:>10} {:>8}",
        "M", "optimal_mJ", "heuristic_mJ", "overhead", "pairs"
    );
    let mut overall: Vec<f64> = Vec::new();
    for m in [3usize, 4, 5, 6] {
        let (problems, exact) = be_grid(ctx, m, &seeds);
        let rows: Vec<(ExactPoint, Option<f64>)> = problems
            .iter()
            .zip(&exact)
            .map(|(problem, point)| {
                let h_mj =
                    heuristic_point(problem).deployment.map(|d| d.energy_report(problem).max_mj());
                (*point, h_mj)
            })
            .collect();
        let pairs: Vec<(f64, f64, bool)> = rows
            .iter()
            .filter(|(e, h)| e.feasible && h.is_some())
            .map(|(e, h)| (e.objective_mj, h.expect("filtered"), e.proven || e.gap <= 0.02))
            .collect();
        let o = mean_finite(&pairs.iter().map(|(o, _, _)| *o).collect::<Vec<_>>());
        let h = mean_finite(&pairs.iter().map(|(_, h, _)| *h).collect::<Vec<_>>());
        let overhead = (h / o - 1.0) * 100.0;
        for (o, h, _) in &pairs {
            overall.push((h / o - 1.0) * 100.0);
        }
        let proven = pairs.iter().filter(|(_, _, p)| *p).count();
        println!("{m:>4} {o:>12.4} {h:>14.4} {overhead:>9.2}% {:>5}({proven} proven)", pairs.len());
    }
    println!(
        "\naverage heuristic overhead (lower bound) over {} instances: {:+.2}% (paper: +26.05%)",
        overall.len(),
        mean_finite(&overall)
    );
}

/// The shared BE member grid of figs 2(f)/(g): one batch of one default
/// BE member per seed at task count `m`.
fn be_grid(
    ctx: &ExperimentContext,
    m: usize,
    seeds: &[u64],
) -> (Vec<Arc<ProblemInstance>>, Vec<ExactPoint>) {
    let mut batch = ctx.batch();
    let problems: Vec<Arc<ProblemInstance>> = seeds
        .iter()
        .map(|&seed| {
            let problem = ctx.instance(&InstanceSpec::new(m, 2, 2.0, seed));
            batch.add(Arc::clone(&problem), exact_cfg());
            problem
        })
        .collect();
    let points = batch.solve_all().iter().map(reduce_batch).collect();
    (problems, points)
}

/// Fig. 2(h): feasibility ratio `δ` vs `α`, optimal vs heuristic.
pub fn fig2h(ctx: &ExperimentContext) {
    let seeds: Vec<u64> = (0..20).collect();
    let alphas = [0.25, 0.5, 1.0, 1.5, 2.0];
    println!("# Fig 2(h): feasibility ratio delta vs alpha (N=4, M=5, L=4, 20 graphs)");
    println!("{:>6} {:>14} {:>16}", "alpha", "optimal_delta", "heuristic_delta");
    for &alpha in &alphas {
        let mut batch = ctx.batch();
        let problems: Vec<Arc<ProblemInstance>> = seeds
            .iter()
            .map(|&seed| {
                let problem = ctx.instance(&InstanceSpec::new(5, 2, alpha, seed));
                batch.add(Arc::clone(&problem), exact_cfg());
                problem
            })
            .collect();
        let results = batch.solve_all();
        let rows: Vec<(bool, bool)> = problems
            .iter()
            .zip(&results)
            .map(|(problem, r)| (reduce_batch(r).feasible, heuristic_point(problem).feasible()))
            .collect();
        let opt = feasibility_ratio(&rows.iter().map(|(o, _)| *o).collect::<Vec<_>>());
        let heu = feasibility_ratio(&rows.iter().map(|(_, h)| *h).collect::<Vec<_>>());
        println!("{alpha:>6.2} {opt:>14.2} {heu:>16.2}");
    }
}
