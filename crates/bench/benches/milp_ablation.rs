//! Ablation: how solver design choices (branch rule, node order, warm
//! start) affect the exact arm. Called out in DESIGN.md §4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ndp_bench::InstanceSpec;
use ndp_core::{DeployObjective, MilpEncoding, OptimalConfig, PathMode};
use ndp_milp::{BranchRule, NodeOrder, SolverOptions};

fn branch_rules(c: &mut Criterion) {
    let problem = InstanceSpec::new(3, 2, 2.0, 5).build();
    let mut group = c.benchmark_group("milp-branch-rule");
    group.sample_size(10);
    for (name, rule) in [
        ("most-fractional", BranchRule::MostFractional),
        ("first-fractional", BranchRule::FirstFractional),
        ("pseudo-cost", BranchRule::PseudoCost),
    ] {
        let cfg = OptimalConfig {
            solver: SolverOptions::default().time_limit(4.0).branch_rule(rule),
            ..OptimalConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("rule", name), &cfg, |b, cfg| {
            b.iter(|| ndp_bench::session_for(&problem, cfg).solve())
        });
    }
    group.finish();
}

fn node_orders(c: &mut Criterion) {
    let problem = InstanceSpec::new(3, 2, 2.0, 5).build();
    let mut group = c.benchmark_group("milp-node-order");
    group.sample_size(10);
    for (name, order) in [("dfs", NodeOrder::DepthFirst), ("best-bound", NodeOrder::BestBound)] {
        let cfg = OptimalConfig {
            solver: SolverOptions::default().time_limit(4.0).node_order(order),
            ..OptimalConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("order", name), &cfg, |b, cfg| {
            b.iter(|| ndp_bench::session_for(&problem, cfg).solve())
        });
    }
    group.finish();
}

fn warm_start_effect(c: &mut Criterion) {
    let problem = InstanceSpec::new(3, 2, 2.0, 5).build();
    let mut group = c.benchmark_group("milp-warm-start");
    group.sample_size(10);
    for (name, warm) in [("with-heuristic-seed", true), ("cold", false)] {
        let cfg = OptimalConfig {
            warm_start_with_heuristic: warm,
            solver: SolverOptions::default().time_limit(4.0),
            ..OptimalConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("seed", name), &cfg, |b, cfg| {
            b.iter(|| ndp_bench::session_for(&problem, cfg).solve())
        });
    }
    group.finish();
}

fn encoding_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("milp-encoding-build");
    for m in [4usize, 8, 12] {
        let problem = InstanceSpec::new(m, 2, 2.0, 5).build();
        group.bench_with_input(BenchmarkId::new("build", m), &problem, |b, p| {
            b.iter(|| MilpEncoding::build(p, PathMode::Multi, DeployObjective::BalanceEnergy))
        });
    }
    group.finish();
}

criterion_group!(benches, branch_rules, node_orders, warm_start_effect, encoding_build);
criterion_main!(benches);
