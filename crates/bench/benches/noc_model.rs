//! NoC substrate benchmarks: cost-matrix construction, Dijkstra routing and
//! the flit-level wormhole simulator (ablation: analytic model vs
//! microarchitectural replay).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ndp_noc::{
    shortest_path, CommMatrices, FlitSim, Mesh2D, NocParams, NodeId, PacketSpec, PathKind,
    WeightedNoc,
};

fn comm_matrices(c: &mut Criterion) {
    let mut group = c.benchmark_group("comm-matrices");
    for side in [4usize, 6, 8] {
        let noc = WeightedNoc::new(Mesh2D::square(side).unwrap(), NocParams::typical(), 3).unwrap();
        group.bench_with_input(BenchmarkId::new("build", side * side), &noc, |b, noc| {
            b.iter(|| CommMatrices::build(noc))
        });
    }
    group.finish();
}

fn dijkstra(c: &mut Criterion) {
    let noc = WeightedNoc::new(Mesh2D::square(8).unwrap(), NocParams::typical(), 3).unwrap();
    c.bench_function("dijkstra-corner-to-corner-8x8", |b| {
        b.iter(|| shortest_path(&noc, NodeId(0), NodeId(63), PathKind::EnergyOriented))
    });
}

fn flit_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("flit-sim");
    for packets in [16usize, 64] {
        group.bench_with_input(
            BenchmarkId::new("uniform-random", packets),
            &packets,
            |b, &packets| {
                b.iter(|| {
                    let mesh = Mesh2D::square(4).unwrap();
                    let mut sim = FlitSim::new(mesh, 4);
                    // Deterministic pseudo-random pattern (no RNG in the
                    // hot loop).
                    for i in 0..packets {
                        sim.inject(PacketSpec {
                            src: NodeId((i * 7) % 16),
                            dst: NodeId((i * 5 + 3) % 16),
                            flits: 1 + (i % 6),
                            inject_at: (i as u64) * 2,
                            route: None,
                        });
                    }
                    sim.run(1_000_000)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, comm_matrices, dijkstra, flit_sim);
criterion_main!(benches);
