//! Criterion counterpart of Fig. 2(f): solver runtimes.
//!
//! * heuristic at growing `M` on the paper's 4×4 platform,
//! * the exact branch-and-bound on a small instance,
//! * the three heuristic phases in isolation (ablation: where does the
//!   heuristic spend its time?).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ndp_bench::InstanceSpec;
use ndp_core::{phase1, phase2, phase3, DeploymentSession, OptimalConfig};
use ndp_milp::SolverOptions;

fn heuristic_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("heuristic");
    for m in [10usize, 20, 50] {
        let mut spec = InstanceSpec::new(m, 4, 3.0, 1);
        spec.levels = 6;
        let problem = spec.build();
        group.bench_with_input(BenchmarkId::new("solve", m), &problem, |b, p| {
            b.iter(|| DeploymentSession::new(p.clone()).heuristic())
        });
    }
    group.finish();
}

fn heuristic_phases(c: &mut Criterion) {
    let mut spec = InstanceSpec::new(20, 4, 3.0, 1);
    spec.levels = 6;
    let problem = spec.build();
    let p1 = phase1(&problem).expect("phase 1 feasible");
    let p2 = phase2(&problem, &p1);
    let mut group = c.benchmark_group("heuristic-phases");
    group.bench_function("phase1-frequency-duplication", |b| b.iter(|| phase1(&problem)));
    group.bench_function("phase2-allocation", |b| b.iter(|| phase2(&problem, &p1)));
    group.bench_function("phase3-path-selection", |b| b.iter(|| phase3(&problem, &p1, &p2)));
    group.finish();
}

fn exact_small(c: &mut Criterion) {
    let problem = InstanceSpec::new(3, 2, 2.0, 1).build();
    let cfg = OptimalConfig {
        solver: SolverOptions::default().time_limit(6.0),
        ..OptimalConfig::default()
    };
    let mut group = c.benchmark_group("exact");
    group.sample_size(10);
    group.bench_function("milp-M3-N4", |b| {
        b.iter(|| ndp_bench::session_for(&problem, &cfg).solve())
    });
    group.finish();
}

criterion_group!(benches, heuristic_scaling, heuristic_phases, exact_small);
criterion_main!(benches);
