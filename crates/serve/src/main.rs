//! `ndp-serve` binary: the multi-tenant deployment-solve server over
//! stdin/stdout.
//!
//! Default mode reads one protocol command per line from stdin and writes
//! response lines to stdout (see [`ndp_serve::handle_line`] for the
//! command set):
//!
//! ```text
//! $ cargo run --release -p ndp-serve
//! solve id=1 tasks=4 mesh=2 seed=3 deadline_ms=60000
//! ack id=1
//! done id=1 status=optimal nodes=17 wall_ms=41.0 cache=miss objective_mj=...
//! shutdown
//! bye
//! ```
//!
//! `--smoke` runs the self-contained CI exercise instead: two identical
//! requests (the second must be a cache hit with zero solver nodes) plus
//! one cancelled request, then a clean shutdown; exits non-zero on any
//! violated expectation.

use ndp_serve::{handle_line, JobStatus, OutputSink, RequestSpec, ServerConfig, SolveServer};
use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::sync::Arc;

fn serve_stdio() -> ExitCode {
    let stdout_sink: OutputSink = Arc::new(|line: &str| {
        let mut out = std::io::stdout().lock();
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    });
    let server = SolveServer::start(ServerConfig::default(), Some(stdout_sink));
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if !handle_line(&server, &line) {
            return ExitCode::SUCCESS;
        }
    }
    // EOF without an explicit shutdown command: stop cleanly anyway.
    server.shutdown();
    ExitCode::SUCCESS
}

fn smoke() -> ExitCode {
    // One runner makes the cache interaction deterministic: job 1 finishes
    // (and populates the cache) before job 2 is dequeued.
    let server = SolveServer::start(ServerConfig { runners: 1, queue_capacity: 8 }, None);
    let spec = RequestSpec {
        tasks: 4,
        mesh_side: 2,
        levels: 3,
        seed: 3,
        threads: 2,
        deadline_ms: Some(120_000),
        ..RequestSpec::default()
    };

    let first = server.submit(spec.clone()).expect("submit first");
    let second = server.submit(spec.clone()).expect("submit second");
    let third = server.submit(spec).expect("submit third");
    server.cancel(third);

    let first = server.wait(first).expect("first outcome");
    let second = server.wait(second).expect("second outcome");
    let third = server.wait(third).expect("third outcome");
    let stats = server.stats();
    server.shutdown();

    let mut failures = Vec::new();
    if first.status != JobStatus::Optimal {
        failures.push(format!("first job not optimal: {:?}", first.status));
    }
    if first.cache_hit {
        failures.push("first job must be a cache miss".into());
    }
    if second.status != JobStatus::Optimal {
        failures.push(format!("second job not optimal: {:?}", second.status));
    }
    if !second.cache_hit {
        failures.push("second (identical) job must be a cache hit".into());
    }
    if second.nodes != 0 {
        failures.push(format!("cache hit spent {} solver nodes", second.nodes));
    }
    if second.objective_mj != first.objective_mj {
        failures.push("cached objective differs from the solved one".into());
    }
    // The cancel can only lose the race if the single runner reached job 3
    // before this process issued the cancel — impossible here, since both
    // happen before wait(); still, a cache-served Optimal is tolerated to
    // keep the smoke test robust on slow machines.
    if !matches!(third.status, JobStatus::Cancelled | JobStatus::Optimal) {
        failures.push(format!("third job unexpected status: {:?}", third.status));
    }
    if stats.cache_hits < 1 {
        failures.push(format!("expected ≥1 cache hit, saw {}", stats.cache_hits));
    }
    if stats.completed != 3 {
        failures.push(format!("expected 3 completed jobs, saw {}", stats.completed));
    }

    if failures.is_empty() {
        println!(
            "smoke ok: miss->hit nodes {}->{} wall_ms {:.1}->{:.1} third={} \
             cache_hits={} pool_workers={}",
            first.nodes,
            second.nodes,
            first.wall_ms,
            second.wall_ms,
            third.status.name(),
            stats.cache_hits,
            stats.pool_workers
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("smoke FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--smoke") => smoke(),
        Some("--help" | "-h") => {
            println!(
                "ndp-serve — multi-tenant deployment-solve server\n\n\
                 USAGE:\n  ndp-serve            read protocol lines from stdin\n  \
                 ndp-serve --smoke    run the self-test (2 identical jobs + 1 cancel)\n\n\
                 PROTOCOL:\n  solve id=<n> [tasks=<m> mesh=<s> levels=<l> alpha=<a> seed=<s>\n               \
                 threads=<t> gap=<g> deadline_ms=<ms> events=on objective=be|me]\n  \
                 cancel id=<n>\n  stats\n  shutdown"
            );
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown argument: {other} (try --help)");
            ExitCode::FAILURE
        }
        None => serve_stdio(),
    }
}
