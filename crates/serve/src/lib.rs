//! `ndp-serve`: a long-running multi-tenant deployment-solve server.
//!
//! The evaluation binaries solve one instance and exit; the ROADMAP
//! north-star is a *service* that accepts deployment requests continuously
//! (task graph + platform + solver options), multiplexes concurrent solves
//! fairly over the bounded process-global MILP worker pool, honors per-job
//! deadlines, streams live [`SolverEvent`]s to clients and answers repeated
//! requests from a solution cache. This crate is that service:
//!
//! * **Admission + scheduling** — [`SolveServer`] holds a bounded FIFO job
//!   queue drained by a small set of runner threads. A full queue rejects
//!   new work at submission time (admission control) instead of queueing
//!   unboundedly; every accepted job gets its own [`CancelToken`].
//! * **Deadlines** — a job's `deadline_ms` is measured from *submission*,
//!   so time spent waiting in the queue counts against it. A watcher
//!   thread maps expired deadlines onto the job's `CancelToken` (queued or
//!   running, the token fires either way) and the remaining budget is also
//!   handed to the solver as its wall-clock limit.
//! * **Fault isolation** — runner threads wrap each job in
//!   `catch_unwind`, and the solver itself contains worker panics to the
//!   owning job ([`ndp_milp::MilpError::WorkerPanicked`]); one tenant's
//!   crash becomes that job's structured failure, never the server's.
//! * **Solution cache** — requests are keyed by the canonical model
//!   fingerprint ([`ndp_core::DeploymentSession::fingerprint`], the hash
//!   of the built MILP plus answer-relevant tolerances; identical to
//!   [`ndp_core::instance_fingerprint`] for a fresh request). Proven
//!   outcomes (optimal or infeasible) are cached; an identical later
//!   request is answered with zero solver nodes. Hit/miss counters surface
//!   in [`ServerStats`].
//! * **Online re-deployment** — a solve submitted with `session=on`
//!   retains its [`DeploymentSession`] (keyed by the job id) after the
//!   answer is delivered. A later `delta` request names that session plus
//!   a scenario event (core fault, deadline change, aperiodic arrival) and
//!   re-solves *incrementally* on the session's carried solver state
//!   instead of building a fresh model. The cache key is recomputed from
//!   the **mutated** model, so a delta can never be answered from the
//!   stale pre-delta cache entry.
//! * **Line protocol** — an offline-friendly, transport-agnostic text
//!   protocol (stdin/stdout in the shipped binary): `solve`/`delta`/
//!   `cancel`/`stats`/`shutdown` in, `ack`/`event`/`done`/`stats`/`bye`
//!   out, one `key=value` record per line. See [`handle_line`].

use ndp_core::{
    CommTimeModel, DeployObjective, DeploymentSession, OptimalConfig, ProblemInstance,
    ScenarioEvent,
};
use ndp_milp::{CancelToken, Observer, SolveStatus, SolverEvent};
use ndp_noc::{Mesh2D, NocParams, WeightedNoc};
use ndp_platform::{Platform, PowerModel, PowerParams, ProcessorId, ReliabilityParams, VfTable};
use ndp_taskset::{generate, GeneratorConfig, Task, TaskId};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One deployment request: the synthetic-instance knobs shared with the
/// bench harness plus per-job service parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestSpec {
    /// Original task count `M`.
    pub tasks: usize,
    /// Mesh side (`N = side²` processors).
    pub mesh_side: usize,
    /// Number of V/F levels `L`.
    pub levels: usize,
    /// Horizon multiplier `α`.
    pub alpha: f64,
    /// Instance seed (task graph + NoC link weights).
    pub seed: u64,
    /// BE (balance) or ME (total) energy objective.
    pub objective: DeployObjective,
    /// Solver threads for this job (0 = solver default).
    pub threads: usize,
    /// Relative MIP gap; `None` keeps the solver default.
    pub gap: Option<f64>,
    /// Wall-clock deadline in milliseconds, measured from submission.
    pub deadline_ms: Option<u64>,
    /// Stream solver events for this job.
    pub events: bool,
    /// Retain the deployment session after the solve so later `delta`
    /// requests can re-solve incrementally against it (keyed by this
    /// job's id).
    pub session: bool,
}

impl Default for RequestSpec {
    fn default() -> Self {
        RequestSpec {
            tasks: 4,
            mesh_side: 2,
            levels: 3,
            alpha: 1.4,
            seed: 1,
            objective: DeployObjective::BalanceEnergy,
            threads: 2,
            gap: None,
            deadline_ms: None,
            events: false,
            session: false,
        }
    }
}

impl RequestSpec {
    /// Admission-time validation: reject obviously hostile or absurd specs
    /// before they consume a runner.
    fn validate(&self) -> Result<(), String> {
        if self.tasks == 0 || self.tasks > 16 {
            return Err(format!("tasks={} out of range 1..=16", self.tasks));
        }
        if self.mesh_side == 0 || self.mesh_side > 4 {
            return Err(format!("mesh={} out of range 1..=4", self.mesh_side));
        }
        if self.levels == 0 || self.levels > 6 {
            return Err(format!("levels={} out of range 1..=6", self.levels));
        }
        if !self.alpha.is_finite() || self.alpha <= 0.0 {
            return Err(format!("alpha={} must be finite and positive", self.alpha));
        }
        if self.threads > 8 {
            return Err(format!("threads={} out of range 0..=8", self.threads));
        }
        Ok(())
    }

    /// Materializes the problem instance (the bench harness defaults at
    /// this size/seed).
    fn build_problem(&self) -> Result<ProblemInstance, String> {
        let cfg = GeneratorConfig::typical(self.tasks);
        let graph = generate(&cfg, self.seed).map_err(|e| format!("taskset: {e}"))?;
        let vf = VfTable::synthetic(self.levels, (0.85, 1.10), (300.0, 1000.0))
            .map_err(|e| format!("vf-table: {e}"))?;
        let platform = Platform::new(
            self.mesh_side * self.mesh_side,
            vf,
            PowerModel::new(PowerParams::bulk_70nm()),
            ReliabilityParams::typical(),
        )
        .map_err(|e| format!("platform: {e}"))?;
        let mesh = Mesh2D::square(self.mesh_side).map_err(|e| format!("mesh: {e}"))?;
        let noc = WeightedNoc::new(mesh, NocParams::typical(), self.seed)
            .map_err(|e| format!("noc: {e}"))?;
        ProblemInstance::from_original(&graph, platform, noc, 0.95, self.alpha)
            .map(|p| p.with_comm_time_model(CommTimeModel::PerUnit))
            .map_err(|e| format!("problem: {e}"))
    }

    /// The solve configuration before per-job control (token, deadline,
    /// observer) is attached; this is also what the cache key hashes.
    fn config(&self) -> OptimalConfig {
        let mut config = OptimalConfig { objective: self.objective, ..OptimalConfig::default() };
        config.solver.threads = self.threads;
        if let Some(gap) = self.gap {
            config.solver.relative_gap = gap;
        }
        config
    }
}

/// Terminal state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Proven optimal deployment.
    Optimal,
    /// Feasible deployment without a completed proof.
    Feasible,
    /// Proven infeasible.
    Infeasible,
    /// The per-job deadline expired (in queue or mid-solve).
    Deadline,
    /// Cancelled by the client (or at server shutdown).
    Cancelled,
    /// Rejected at admission (full queue or invalid spec).
    Rejected,
    /// The solve failed (structured solver error or a contained panic).
    Failed,
}

impl JobStatus {
    /// Protocol wire name.
    pub fn name(self) -> &'static str {
        match self {
            JobStatus::Optimal => "optimal",
            JobStatus::Feasible => "feasible",
            JobStatus::Infeasible => "infeasible",
            JobStatus::Deadline => "deadline",
            JobStatus::Cancelled => "cancelled",
            JobStatus::Rejected => "rejected",
            JobStatus::Failed => "failed",
        }
    }
}

/// Result of one job, as reported to clients.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Client-visible job id.
    pub id: u64,
    /// Terminal status.
    pub status: JobStatus,
    /// Objective (mJ) when a deployment was found.
    pub objective_mj: Option<f64>,
    /// Branch-and-bound nodes spent on this request (0 on a cache hit).
    pub nodes: u64,
    /// Wall milliseconds from submission to completion (queue included).
    pub wall_ms: f64,
    /// Whether the answer came from the solution cache.
    pub cache_hit: bool,
    /// Failure detail for [`JobStatus::Failed`]/[`JobStatus::Rejected`].
    pub error: Option<String>,
}

/// Server counters, all monotone except `queue_depth`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Jobs that reached a terminal state (any status).
    pub completed: u64,
    /// Jobs that ended `Cancelled`.
    pub cancelled: u64,
    /// Submissions rejected at admission.
    pub rejected: u64,
    /// Jobs answered from the solution cache.
    pub cache_hits: u64,
    /// Jobs that had to solve (fingerprint not cached).
    pub cache_misses: u64,
    /// Jobs currently waiting in the queue.
    pub queue_depth: usize,
    /// Threads in the process-global solver worker pool.
    pub pool_workers: usize,
    /// Deployment sessions currently retained for `delta` requests.
    pub sessions: usize,
}

/// Where protocol output lines go (stdout in the binary, a collector in
/// tests and benches). Lines arrive without trailing newline.
pub type OutputSink = Arc<dyn Fn(&str) + Send + Sync>;

/// Server tuning.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent solve runners (jobs in flight at once).
    pub runners: usize,
    /// Admission bound: queued jobs beyond this are rejected.
    pub queue_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { runners: 2, queue_capacity: 64 }
    }
}

enum JobState {
    Queued,
    Running,
    Done(JobOutcome),
}

/// What a queued job does when a runner picks it up.
#[derive(Debug, Clone)]
enum JobKind {
    /// Build and solve a fresh instance (optionally retaining a session).
    Solve(RequestSpec),
    /// Apply a scenario event to a retained session and re-solve
    /// incrementally under an optional wall-clock budget.
    Delta { session: u64, event: ScenarioEvent, budget_ms: Option<u64> },
}

struct Job {
    kind: JobKind,
    token: CancelToken,
    /// Set on an explicit client cancel (distinguishes `Cancelled` from
    /// `Deadline` when the token fires).
    cancel_requested: Arc<AtomicBool>,
    submitted: Instant,
    deadline: Option<Instant>,
    state: JobState,
}

struct Inner {
    cfg: ServerConfig,
    sink: Option<OutputSink>,
    queue: Mutex<VecDeque<u64>>,
    queue_cv: Condvar,
    jobs: Mutex<HashMap<u64, Job>>,
    done_cv: Condvar,
    cache: Mutex<HashMap<u64, CacheEntry>>,
    /// Retained deployment sessions keyed by the solve job's id. A `delta`
    /// job takes its session out while re-solving (one delta in flight per
    /// session) and puts the mutated session back when done.
    sessions: Mutex<HashMap<u64, DeploymentSession>>,
    next_id: AtomicU64,
    shutdown: AtomicBool,
    submitted: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    rejected: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
}

#[derive(Clone)]
struct CacheEntry {
    status: JobStatus,
    objective_mj: Option<f64>,
}

/// The multi-tenant solve server. Construct with [`SolveServer::start`],
/// drive either in-process ([`SolveServer::submit`]/[`SolveServer::wait`])
/// or through the line protocol ([`handle_line`]), stop with
/// [`SolveServer::shutdown`].
pub struct SolveServer {
    inner: Arc<Inner>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl SolveServer {
    /// Spawns the runner and deadline-watcher threads and returns the
    /// ready server. `sink` receives every protocol output line.
    pub fn start(cfg: ServerConfig, sink: Option<OutputSink>) -> Self {
        let runners = cfg.runners.max(1);
        let inner = Arc::new(Inner {
            cfg,
            sink,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            jobs: Mutex::new(HashMap::new()),
            done_cv: Condvar::new(),
            cache: Mutex::new(HashMap::new()),
            sessions: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
        });
        let mut threads = Vec::with_capacity(runners + 1);
        for i in 0..runners {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("ndp-serve-runner-{i}"))
                    .spawn(move || runner_main(&inner))
                    .expect("spawn runner"),
            );
        }
        {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name("ndp-serve-deadline".into())
                    .spawn(move || deadline_watcher(&inner))
                    .expect("spawn deadline watcher"),
            );
        }
        SolveServer { inner, threads: Mutex::new(threads) }
    }

    /// Submits a request under a server-assigned id.
    ///
    /// # Errors
    ///
    /// Returns the admission failure (invalid spec, full queue, or a
    /// shutting-down server); rejected submissions are counted in
    /// [`ServerStats::rejected`].
    pub fn submit(&self, spec: RequestSpec) -> Result<u64, String> {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        self.submit_with_id(id, spec).map(|()| id)
    }

    /// Submits a request under a client-chosen id (the line protocol path).
    ///
    /// # Errors
    ///
    /// As [`SolveServer::submit`], plus duplicate-id rejection.
    pub fn submit_with_id(&self, id: u64, spec: RequestSpec) -> Result<(), String> {
        if let Err(e) = spec.validate() {
            self.inner.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(e);
        }
        let deadline_ms = spec.deadline_ms;
        self.enqueue(id, JobKind::Solve(spec), deadline_ms)
    }

    /// Submits an incremental re-solve: apply `event` to the retained
    /// session of solve job `session` and re-solve on its carried solver
    /// state, under an optional `budget_ms` wall-clock budget. The mutated
    /// session stays retained for further deltas.
    ///
    /// # Errors
    ///
    /// Admission failures as [`SolveServer::submit`]; an unknown session
    /// id is reported on the job outcome, not here (the session may be in
    /// use by an in-flight delta at submission time).
    pub fn submit_delta(
        &self,
        session: u64,
        event: ScenarioEvent,
        budget_ms: Option<u64>,
    ) -> Result<u64, String> {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        self.submit_delta_with_id(id, session, event, budget_ms).map(|()| id)
    }

    /// [`submit_delta`](SolveServer::submit_delta) under a client-chosen
    /// id (the line protocol path).
    ///
    /// # Errors
    ///
    /// As [`SolveServer::submit_delta`], plus duplicate-id rejection.
    pub fn submit_delta_with_id(
        &self,
        id: u64,
        session: u64,
        event: ScenarioEvent,
        budget_ms: Option<u64>,
    ) -> Result<(), String> {
        self.enqueue(id, JobKind::Delta { session, event, budget_ms }, None)
    }

    fn enqueue(&self, id: u64, kind: JobKind, deadline_ms: Option<u64>) -> Result<(), String> {
        if self.inner.shutdown.load(Ordering::Acquire) {
            self.inner.rejected.fetch_add(1, Ordering::Relaxed);
            return Err("server is shutting down".into());
        }
        let submitted = Instant::now();
        let deadline = deadline_ms.map(|ms| submitted + Duration::from_millis(ms));
        {
            let mut jobs = self.inner.jobs.lock();
            if jobs.contains_key(&id) {
                self.inner.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(format!("duplicate job id {id}"));
            }
            let mut queue = self.inner.queue.lock();
            if queue.len() >= self.inner.cfg.queue_capacity {
                self.inner.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(format!("queue full ({} jobs waiting)", queue.len()));
            }
            jobs.insert(
                id,
                Job {
                    kind,
                    token: CancelToken::new(),
                    cancel_requested: Arc::new(AtomicBool::new(false)),
                    submitted,
                    deadline,
                    state: JobState::Queued,
                },
            );
            queue.push_back(id);
        }
        self.inner.submitted.fetch_add(1, Ordering::Relaxed);
        self.inner.queue_cv.notify_one();
        Ok(())
    }

    /// Cancels a queued or running job. Returns `false` for unknown or
    /// already-finished ids.
    pub fn cancel(&self, id: u64) -> bool {
        let jobs = self.inner.jobs.lock();
        match jobs.get(&id) {
            Some(job) if !matches!(job.state, JobState::Done(_)) => {
                job.cancel_requested.store(true, Ordering::Release);
                job.token.cancel();
                true
            }
            _ => false,
        }
    }

    /// Blocks until job `id` reaches a terminal state; `None` for unknown
    /// ids.
    pub fn wait(&self, id: u64) -> Option<JobOutcome> {
        let mut jobs = self.inner.jobs.lock();
        loop {
            match jobs.get(&id) {
                None => return None,
                Some(Job { state: JobState::Done(outcome), .. }) => return Some(outcome.clone()),
                Some(_) => self.inner.done_cv.wait(&mut jobs),
            }
        }
    }

    /// Snapshot of the server counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            submitted: self.inner.submitted.load(Ordering::Relaxed),
            completed: self.inner.completed.load(Ordering::Relaxed),
            cancelled: self.inner.cancelled.load(Ordering::Relaxed),
            rejected: self.inner.rejected.load(Ordering::Relaxed),
            cache_hits: self.inner.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.inner.cache_misses.load(Ordering::Relaxed),
            queue_depth: self.inner.queue.lock().len(),
            pool_workers: ndp_milp::worker_pool_size(),
            sessions: self.inner.sessions.lock().len(),
        }
    }

    /// Drains the queue (queued jobs finish `Cancelled`), waits for
    /// running jobs, and stops all server threads.
    pub fn shutdown(&self) {
        let drained: Vec<u64> = {
            let mut queue = self.inner.queue.lock();
            queue.drain(..).collect()
        };
        for id in drained {
            finish_job(
                &self.inner,
                id,
                JobStatus::Cancelled,
                None,
                0,
                false,
                Some("server shutdown".into()),
            );
        }
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.queue_cv.notify_all();
        let threads = { std::mem::take(&mut *self.threads.lock()) };
        for t in threads {
            let _ = t.join();
        }
        self.inner.sessions.lock().clear();
    }
}

fn emit(inner: &Inner, line: &str) {
    if let Some(sink) = &inner.sink {
        sink(line);
    }
}

/// Maps expired deadlines onto the owning job's [`CancelToken`]: queued
/// jobs get cancelled before they waste a runner, running jobs are
/// interrupted cooperatively.
fn deadline_watcher(inner: &Inner) {
    while !inner.shutdown.load(Ordering::Acquire) {
        let now = Instant::now();
        {
            let jobs = inner.jobs.lock();
            for job in jobs.values() {
                if matches!(job.state, JobState::Done(_)) {
                    continue;
                }
                if let Some(d) = job.deadline {
                    if now >= d {
                        job.token.cancel();
                    }
                }
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn runner_main(inner: &Arc<Inner>) {
    loop {
        let id = {
            let mut queue = inner.queue.lock();
            loop {
                if let Some(id) = queue.pop_front() {
                    break id;
                }
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                inner.queue_cv.wait(&mut queue);
            }
        };
        // One tenant's panic must never take a runner down with it; the
        // job is failed with the payload as a structured message.
        let result = catch_unwind(AssertUnwindSafe(|| run_job(inner, id)));
        if let Err(payload) = result {
            let msg = payload
                .downcast_ref::<&'static str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            finish_job(inner, id, JobStatus::Failed, None, 0, false, Some(msg));
        }
    }
}

/// Marks `id` done, bumps counters, wakes waiters and emits the `done`
/// protocol line.
fn finish_job(
    inner: &Inner,
    id: u64,
    status: JobStatus,
    objective_mj: Option<f64>,
    nodes: u64,
    cache_hit: bool,
    error: Option<String>,
) {
    let outcome = {
        let mut jobs = inner.jobs.lock();
        let Some(job) = jobs.get_mut(&id) else { return };
        if matches!(job.state, JobState::Done(_)) {
            return;
        }
        let outcome = JobOutcome {
            id,
            status,
            objective_mj,
            nodes,
            wall_ms: job.submitted.elapsed().as_secs_f64() * 1e3,
            cache_hit,
            error,
        };
        job.state = JobState::Done(outcome.clone());
        outcome
    };
    inner.completed.fetch_add(1, Ordering::Relaxed);
    if status == JobStatus::Cancelled {
        inner.cancelled.fetch_add(1, Ordering::Relaxed);
    }
    inner.done_cv.notify_all();
    let mut line = format!(
        "done id={} status={} nodes={} wall_ms={:.1} cache={}",
        id,
        status.name(),
        nodes,
        outcome.wall_ms,
        if cache_hit { "hit" } else { "miss" }
    );
    if let Some(obj) = objective_mj {
        line.push_str(&format!(" objective_mj={obj:.6}"));
    }
    if let Some(e) = &outcome.error {
        line.push_str(&format!(" error={}", e.replace([' ', '\n'], "_")));
    }
    emit(inner, &line);
}

/// Maps a solver termination status onto the job status, using the
/// control-plane flags to tell a client cancel from a deadline expiry.
fn interrupted_status(cancel_requested: &AtomicBool, deadline: Option<Instant>) -> JobStatus {
    if cancel_requested.load(Ordering::Acquire) {
        JobStatus::Cancelled
    } else if deadline.is_some() {
        JobStatus::Deadline
    } else {
        JobStatus::Cancelled
    }
}

fn solve_status_to_job(
    status: SolveStatus,
    cancel_requested: &AtomicBool,
    deadline: Option<Instant>,
) -> JobStatus {
    match status {
        SolveStatus::Optimal => JobStatus::Optimal,
        SolveStatus::Feasible => JobStatus::Feasible,
        SolveStatus::Infeasible => JobStatus::Infeasible,
        SolveStatus::Interrupted => interrupted_status(cancel_requested, deadline),
        SolveStatus::Unbounded | SolveStatus::Unknown => JobStatus::Failed,
    }
}

fn run_job(inner: &Arc<Inner>, id: u64) {
    let (kind, token, cancel_requested, deadline) = {
        let mut jobs = inner.jobs.lock();
        let Some(job) = jobs.get_mut(&id) else { return };
        if matches!(job.state, JobState::Done(_)) {
            return;
        }
        job.state = JobState::Running;
        (job.kind.clone(), job.token.clone(), Arc::clone(&job.cancel_requested), job.deadline)
    };

    // Admission covers queue wait: a job whose deadline or cancel fired
    // while waiting never touches the solver.
    let timed_out = |deadline: Option<Instant>| deadline.is_some_and(|d| Instant::now() >= d);
    if token.is_cancelled() || timed_out(deadline) {
        let status = if cancel_requested.load(Ordering::Acquire) {
            JobStatus::Cancelled
        } else if timed_out(deadline) {
            JobStatus::Deadline
        } else {
            JobStatus::Cancelled
        };
        finish_job(inner, id, status, None, 0, false, None);
        return;
    }

    match kind {
        JobKind::Solve(spec) => {
            run_solve_job(inner, id, &spec, &token, &cancel_requested, deadline)
        }
        JobKind::Delta { session, event, budget_ms } => {
            run_delta_job(inner, id, session, &event, budget_ms, &token, &cancel_requested);
        }
    }
}

fn run_solve_job(
    inner: &Arc<Inner>,
    id: u64,
    spec: &RequestSpec,
    token: &CancelToken,
    cancel_requested: &AtomicBool,
    deadline: Option<Instant>,
) {
    let problem = match spec.build_problem() {
        Ok(p) => p,
        Err(e) => {
            finish_job(inner, id, JobStatus::Failed, None, 0, false, Some(e));
            return;
        }
    };
    let config = spec.config();
    let mut session = DeploymentSession::builder(problem)
        .path_mode(config.path_mode)
        .objective(config.objective)
        .warm_start_with_heuristic(config.warm_start_with_heuristic)
        .solver(config.solver)
        .build();

    // Cache lookup under the canonical fingerprint of (program, answer
    // tolerances) — before the per-job control plane is attached. For an
    // untouched session this equals `ndp_core::instance_fingerprint`, so
    // one-shot and session-retaining requests share cache entries.
    let fingerprint = match session.fingerprint() {
        Ok(fp) => fp,
        Err(e) => {
            finish_job(inner, id, JobStatus::Failed, None, 0, false, Some(e.to_string()));
            return;
        }
    };
    if let Some(entry) = inner.cache.lock().get(&fingerprint).cloned() {
        inner.cache_hits.fetch_add(1, Ordering::Relaxed);
        // The session is still retained on a cache hit: later deltas need
        // live solver state, which the cache entry does not carry.
        if spec.session {
            inner.sessions.lock().insert(id, session);
        }
        finish_job(inner, id, entry.status, entry.objective_mj, 0, true, None);
        return;
    }
    inner.cache_misses.fetch_add(1, Ordering::Relaxed);

    // Attach the control plane: cancel token, remaining deadline budget,
    // and (when requested) the event stream.
    session.solver_mut().cancel = Some(token.clone());
    if let Some(d) = deadline {
        let remaining = d.saturating_duration_since(Instant::now()).as_secs_f64();
        let solver = session.solver_mut();
        if solver.time_limit.is_infinite() || remaining < solver.time_limit {
            solver.time_limit = remaining;
        }
    }
    if spec.events {
        if let Some(sink) = &inner.sink {
            let stream = Arc::clone(sink);
            let observer: Arc<dyn Observer> = Arc::new(move |e: &SolverEvent| match e {
                SolverEvent::Presolve { .. }
                | SolverEvent::RootRelaxation { .. }
                | SolverEvent::HeuristicIncumbent { .. }
                | SolverEvent::Incumbent { .. }
                | SolverEvent::Terminated { .. } => stream(&format!("event id={id} {e}")),
                _ => {}
            });
            session.solver_mut().observer = ndp_milp::ObserverHandle::new(observer);
        }
    }

    match session.solve() {
        Ok(outcome) => {
            let status = solve_status_to_job(outcome.status, cancel_requested, deadline);
            // Only proven answers are sound for every later requester.
            if matches!(status, JobStatus::Optimal | JobStatus::Infeasible) {
                inner
                    .cache
                    .lock()
                    .insert(fingerprint, CacheEntry { status, objective_mj: outcome.objective_mj });
            }
            if spec.session {
                inner.sessions.lock().insert(id, session);
            }
            let error = (status == JobStatus::Failed)
                .then(|| format!("solver status {:?}", outcome.status));
            finish_job(inner, id, status, outcome.objective_mj, outcome.nodes, false, error);
        }
        Err(e) => {
            finish_job(inner, id, JobStatus::Failed, None, 0, false, Some(e.to_string()));
        }
    }
}

fn run_delta_job(
    inner: &Arc<Inner>,
    id: u64,
    session_id: u64,
    event: &ScenarioEvent,
    budget_ms: Option<u64>,
    token: &CancelToken,
    cancel_requested: &AtomicBool,
) {
    // Take the session out of the map while re-solving: ownership transfer
    // keeps one delta in flight per session without holding the map lock
    // across a solve. A second delta racing on the same session sees it
    // missing and fails cleanly.
    let Some(mut session) = inner.sessions.lock().remove(&session_id) else {
        finish_job(
            inner,
            id,
            JobStatus::Failed,
            None,
            0,
            false,
            Some(format!("unknown session {session_id}")),
        );
        return;
    };

    if let Err(e) = session.apply(event) {
        // A rejected event (e.g. faulting the last working core) leaves the
        // session untouched and retained.
        inner.sessions.lock().insert(session_id, session);
        finish_job(inner, id, JobStatus::Failed, None, 0, false, Some(e.to_string()));
        return;
    }

    // Re-fingerprint the *mutated* model: the event changed bounds, rhs or
    // the row set, so the key must move off the pre-delta entry — serving
    // the cached pre-delta outcome here would be a stale hit.
    let fingerprint = match session.fingerprint() {
        Ok(fp) => fp,
        Err(e) => {
            inner.sessions.lock().insert(session_id, session);
            finish_job(inner, id, JobStatus::Failed, None, 0, false, Some(e.to_string()));
            return;
        }
    };
    if let Some(entry) = inner.cache.lock().get(&fingerprint).cloned() {
        inner.cache_hits.fetch_add(1, Ordering::Relaxed);
        inner.sessions.lock().insert(session_id, session);
        finish_job(inner, id, entry.status, entry.objective_mj, 0, true, None);
        return;
    }
    inner.cache_misses.fetch_add(1, Ordering::Relaxed);

    session.solver_mut().cancel = Some(token.clone());
    let result = match budget_ms {
        Some(ms) => session.resolve(ms as f64 / 1e3),
        None => session.solve(),
    };
    match result {
        Ok(outcome) => {
            let status = solve_status_to_job(outcome.status, cancel_requested, None);
            if matches!(status, JobStatus::Optimal | JobStatus::Infeasible) {
                inner
                    .cache
                    .lock()
                    .insert(fingerprint, CacheEntry { status, objective_mj: outcome.objective_mj });
            }
            inner.sessions.lock().insert(session_id, session);
            let error = (status == JobStatus::Failed)
                .then(|| format!("solver status {:?}", outcome.status));
            finish_job(inner, id, status, outcome.objective_mj, outcome.nodes, false, error);
        }
        Err(e) => {
            inner.sessions.lock().insert(session_id, session);
            finish_job(inner, id, JobStatus::Failed, None, 0, false, Some(e.to_string()));
        }
    }
}

// --------------------------------------------------------------------------
// Line protocol
// --------------------------------------------------------------------------

fn parse_kv(tokens: &[&str]) -> HashMap<String, String> {
    let mut kv = HashMap::new();
    for t in tokens {
        if let Some((k, v)) = t.split_once('=') {
            kv.insert(k.to_string(), v.to_string());
        }
    }
    kv
}

fn parse_spec(kv: &HashMap<String, String>) -> Result<RequestSpec, String> {
    let mut spec = RequestSpec::default();
    let get = |key: &str| kv.get(key).map(String::as_str);
    if let Some(v) = get("tasks") {
        spec.tasks = v.parse().map_err(|_| format!("bad tasks={v}"))?;
    }
    if let Some(v) = get("mesh") {
        spec.mesh_side = v.parse().map_err(|_| format!("bad mesh={v}"))?;
    }
    if let Some(v) = get("levels") {
        spec.levels = v.parse().map_err(|_| format!("bad levels={v}"))?;
    }
    if let Some(v) = get("alpha") {
        spec.alpha = v.parse().map_err(|_| format!("bad alpha={v}"))?;
    }
    if let Some(v) = get("seed") {
        spec.seed = v.parse().map_err(|_| format!("bad seed={v}"))?;
    }
    if let Some(v) = get("threads") {
        spec.threads = v.parse().map_err(|_| format!("bad threads={v}"))?;
    }
    if let Some(v) = get("gap") {
        spec.gap = Some(v.parse().map_err(|_| format!("bad gap={v}"))?);
    }
    if let Some(v) = get("deadline_ms") {
        spec.deadline_ms = Some(v.parse().map_err(|_| format!("bad deadline_ms={v}"))?);
    }
    if let Some(v) = get("events") {
        spec.events = matches!(v, "on" | "true" | "1");
    }
    if let Some(v) = get("session") {
        spec.session = matches!(v, "on" | "true" | "1");
    }
    if let Some(v) = get("objective") {
        spec.objective = match v {
            "be" => DeployObjective::BalanceEnergy,
            "me" => DeployObjective::MinimizeTotalEnergy,
            other => return Err(format!("bad objective={other} (want be|me)")),
        };
    }
    Ok(spec)
}

/// Parses the `delta` command's event grammar:
///
/// * `fault:<proc>` — processor `<proc>` failed;
/// * `deadline:<task>:<ms>` — original task `<task>` now has relative
///   deadline `<ms>` milliseconds;
/// * `arrival:<wcec>:<deadline_ms>[:<pred>x<data>]*` — an aperiodic task
///   with the given WCEC (megacycles) and deadline arrives, reading
///   `<data>` units from each existing original task `<pred>`.
fn parse_event(s: &str) -> Result<ScenarioEvent, String> {
    let mut parts = s.split(':');
    let kind = parts.next().unwrap_or_default();
    let mut next = |what: &str| {
        parts.next().filter(|p| !p.is_empty()).ok_or_else(|| format!("event missing {what}"))
    };
    match kind {
        "fault" => {
            let proc: usize =
                next("processor")?.parse().map_err(|_| "bad fault processor".to_string())?;
            Ok(ScenarioEvent::CoreFault { processor: ProcessorId(proc) })
        }
        "deadline" => {
            let task: usize = next("task")?.parse().map_err(|_| "bad deadline task".to_string())?;
            let ms: f64 = next("ms")?.parse().map_err(|_| "bad deadline ms".to_string())?;
            if !ms.is_finite() || ms <= 0.0 {
                return Err(format!("deadline ms={ms} must be finite and positive"));
            }
            Ok(ScenarioEvent::DeadlineChange { task: TaskId(task), deadline_ms: ms })
        }
        "arrival" => {
            let wcec: f64 = next("wcec")?.parse().map_err(|_| "bad arrival wcec".to_string())?;
            let ms: f64 =
                next("deadline_ms")?.parse().map_err(|_| "bad arrival deadline".to_string())?;
            if !wcec.is_finite() || wcec <= 0.0 || !ms.is_finite() || ms <= 0.0 {
                return Err("arrival wcec and deadline must be finite and positive".into());
            }
            let mut predecessors = Vec::new();
            for edge in parts {
                let (pred, data) =
                    edge.split_once('x').ok_or_else(|| format!("bad arrival edge {edge}"))?;
                let pred: usize =
                    pred.parse().map_err(|_| format!("bad arrival predecessor {pred}"))?;
                let data: f64 =
                    data.parse().map_err(|_| format!("bad arrival data size {data}"))?;
                if !data.is_finite() || data < 0.0 {
                    return Err(format!("arrival data size {data} must be non-negative"));
                }
                predecessors.push((TaskId(pred), data));
            }
            Ok(ScenarioEvent::TaskArrival { task: Task::new("arrival", wcec, ms), predecessors })
        }
        other => Err(format!("unknown event kind {other} (want fault|deadline|arrival)")),
    }
}

/// Handles one protocol input line, emitting response lines through the
/// server's sink. Returns `false` once the client asked for `shutdown`
/// (the server is already stopped at that point).
///
/// Commands: `solve id=<n> [tasks= mesh= levels= alpha= seed= threads=
/// gap= deadline_ms= events= session= objective=]`, `delta id=<n>
/// session=<solve-id> event=<evt> [budget_ms=<ms>]` (see [`parse_event`]
/// for the event grammar), `cancel id=<n>`, `stats`, `shutdown`. Unknown
/// commands get an `err` line; blank lines and `#` comments are ignored.
pub fn handle_line(server: &SolveServer, line: &str) -> bool {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return true;
    }
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let kv = parse_kv(&tokens[1..]);
    match tokens[0] {
        "solve" => {
            let id = match kv.get("id").map(|v| v.parse::<u64>()) {
                Some(Ok(id)) => id,
                _ => {
                    emit(&server.inner, "err reason=missing-or-bad-id");
                    return true;
                }
            };
            match parse_spec(&kv).and_then(|spec| server.submit_with_id(id, spec)) {
                Ok(()) => emit(&server.inner, &format!("ack id={id}")),
                Err(e) => emit(
                    &server.inner,
                    &format!("err id={id} reason={}", e.replace([' ', '\n'], "_")),
                ),
            }
        }
        "delta" => {
            let id = match kv.get("id").map(|v| v.parse::<u64>()) {
                Some(Ok(id)) => id,
                _ => {
                    emit(&server.inner, "err reason=missing-or-bad-id");
                    return true;
                }
            };
            let session = match kv.get("session").map(|v| v.parse::<u64>()) {
                Some(Ok(s)) => s,
                _ => {
                    emit(&server.inner, &format!("err id={id} reason=missing-or-bad-session"));
                    return true;
                }
            };
            let budget_ms = match kv.get("budget_ms").map(|v| v.parse::<u64>()) {
                None => None,
                Some(Ok(ms)) => Some(ms),
                Some(Err(_)) => {
                    emit(&server.inner, &format!("err id={id} reason=bad-budget_ms"));
                    return true;
                }
            };
            let event = match kv.get("event").map(String::as_str).ok_or("missing event") {
                Ok(e) => match parse_event(e) {
                    Ok(event) => event,
                    Err(reason) => {
                        emit(
                            &server.inner,
                            &format!("err id={id} reason={}", reason.replace([' ', '\n'], "_")),
                        );
                        return true;
                    }
                },
                Err(reason) => {
                    emit(&server.inner, &format!("err id={id} reason={reason}"));
                    return true;
                }
            };
            match server.submit_delta_with_id(id, session, event, budget_ms) {
                Ok(()) => emit(&server.inner, &format!("ack id={id}")),
                Err(e) => emit(
                    &server.inner,
                    &format!("err id={id} reason={}", e.replace([' ', '\n'], "_")),
                ),
            }
        }
        "cancel" => {
            let id = match kv.get("id").map(|v| v.parse::<u64>()) {
                Some(Ok(id)) => id,
                _ => {
                    emit(&server.inner, "err reason=missing-or-bad-id");
                    return true;
                }
            };
            let known = server.cancel(id);
            emit(&server.inner, &format!("ack cancel id={id} known={known}"));
        }
        "stats" => {
            let s = server.stats();
            emit(
                &server.inner,
                &format!(
                    "stats submitted={} completed={} cancelled={} rejected={} cache_hits={} \
                     cache_misses={} queue={} pool_workers={} sessions={}",
                    s.submitted,
                    s.completed,
                    s.cancelled,
                    s.rejected,
                    s.cache_hits,
                    s.cache_misses,
                    s.queue_depth,
                    s.pool_workers,
                    s.sessions
                ),
            );
        }
        "shutdown" => {
            server.shutdown();
            emit(&server.inner, "bye");
            return false;
        }
        other => emit(&server.inner, &format!("err reason=unknown-command-{other}")),
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collector() -> (Arc<Mutex<Vec<String>>>, OutputSink) {
        let lines = Arc::new(Mutex::new(Vec::new()));
        let sink_lines = Arc::clone(&lines);
        let sink: OutputSink = Arc::new(move |l: &str| sink_lines.lock().push(l.to_string()));
        (lines, sink)
    }

    fn small_spec(seed: u64) -> RequestSpec {
        RequestSpec {
            tasks: 3,
            mesh_side: 2,
            levels: 2,
            seed,
            threads: 2,
            deadline_ms: Some(60_000),
            ..RequestSpec::default()
        }
    }

    #[test]
    fn identical_requests_hit_the_cache_with_zero_nodes() {
        let server = SolveServer::start(ServerConfig { runners: 1, queue_capacity: 8 }, None);
        let first = server.submit(small_spec(3)).unwrap();
        let first = server.wait(first).expect("first outcome");
        assert_eq!(first.status, JobStatus::Optimal);
        assert!(!first.cache_hit);
        assert!(first.nodes > 0);

        let second = server.submit(small_spec(3)).unwrap();
        let second = server.wait(second).expect("second outcome");
        assert_eq!(second.status, JobStatus::Optimal);
        assert!(second.cache_hit, "identical request must be served from cache");
        assert_eq!(second.nodes, 0, "cache hits must not spend solver nodes");
        assert_eq!(second.objective_mj, first.objective_mj);

        let stats = server.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        server.shutdown();
    }

    #[test]
    fn cancelled_and_deadline_jobs_report_their_status() {
        let server = SolveServer::start(ServerConfig { runners: 1, queue_capacity: 8 }, None);
        // A pre-cancelled job: cancel can land while it is still queued.
        let id = server.submit(small_spec(11)).unwrap();
        assert!(server.cancel(id));
        let out = server.wait(id).expect("outcome");
        assert!(
            matches!(out.status, JobStatus::Cancelled | JobStatus::Optimal),
            "late cancel may lose the race, got {:?}",
            out.status
        );
        // An already-expired deadline never touches the solver.
        let expired = RequestSpec { deadline_ms: Some(0), ..small_spec(12) };
        let id = server.submit(expired).unwrap();
        let out = server.wait(id).expect("outcome");
        assert_eq!(out.status, JobStatus::Deadline);
        assert_eq!(out.nodes, 0);
        server.shutdown();
    }

    #[test]
    fn admission_rejects_invalid_specs_and_overflow() {
        let server = SolveServer::start(ServerConfig { runners: 1, queue_capacity: 1 }, None);
        let bad = RequestSpec { tasks: 0, ..RequestSpec::default() };
        assert!(server.submit(bad).is_err());
        assert_eq!(server.stats().rejected, 1);
        server.shutdown();
    }

    #[test]
    fn a_delta_never_replays_the_stale_pre_delta_cache_entry() {
        let server = SolveServer::start(ServerConfig { runners: 1, queue_capacity: 8 }, None);
        let base = RequestSpec { session: true, ..small_spec(3) };
        let solve_id = server.submit(base.clone()).unwrap();
        let before = server.wait(solve_id).expect("base outcome");
        assert_eq!(before.status, JobStatus::Optimal);
        assert!(!before.cache_hit);
        assert_eq!(server.stats().sessions, 1, "session=on must retain the session");

        // Fault a core: the feasible set shrinks, so the cached pre-delta
        // optimum is stale for the mutated model and must NOT be replayed.
        let delta_id = server
            .submit_delta(solve_id, ScenarioEvent::CoreFault { processor: ProcessorId(0) }, None)
            .unwrap();
        let after = server.wait(delta_id).expect("delta outcome");
        assert!(
            !after.cache_hit,
            "mutated model must re-fingerprint off the pre-delta cache entry"
        );
        assert!(
            matches!(after.status, JobStatus::Optimal | JobStatus::Infeasible),
            "delta re-solve must reach a proven answer, got {:?}",
            after.status
        );
        if let (Some(b), Some(a)) = (before.objective_mj, after.objective_mj) {
            assert!(a >= b - 1e-6, "restricting the model cannot improve the optimum");
        }
        // The session survives the delta and stays addressable; the
        // *unmutated* base request still answers from its own cache entry.
        assert_eq!(server.stats().sessions, 1);
        let replay = server.submit(RequestSpec { session: false, ..base }).unwrap();
        let replay = server.wait(replay).expect("replay outcome");
        assert!(replay.cache_hit, "the untouched base instance must still cache-hit");
        assert_eq!(replay.objective_mj, before.objective_mj);

        // Unknown session ids fail the job, not the server.
        let bogus = server
            .submit_delta(9999, ScenarioEvent::CoreFault { processor: ProcessorId(1) }, None)
            .unwrap();
        let bogus = server.wait(bogus).expect("bogus outcome");
        assert_eq!(bogus.status, JobStatus::Failed);
        assert!(bogus.error.as_deref().unwrap_or_default().contains("unknown session"));
        server.shutdown();
        assert_eq!(server.stats().sessions, 0, "shutdown drops retained sessions");
    }

    #[test]
    fn the_delta_line_protocol_round_trips() {
        let (lines, sink) = collector();
        let server = SolveServer::start(ServerConfig { runners: 1, queue_capacity: 8 }, Some(sink));
        assert!(handle_line(
            &server,
            "solve id=1 tasks=3 mesh=2 levels=2 session=on deadline_ms=60000"
        ));
        let _ = server.wait(1);
        assert!(handle_line(&server, "delta id=2 session=1 event=deadline:0:900 budget_ms=60000"));
        let _ = server.wait(2);
        assert!(handle_line(&server, "delta id=3 session=1 event=arrival:1.5:800:0x2"));
        let _ = server.wait(3);
        assert!(handle_line(&server, "delta id=4 session=1 event=bogus:0"));
        assert!(handle_line(&server, "stats"));
        assert!(!handle_line(&server, "shutdown"));
        let lines = lines.lock();
        for id in [1, 2, 3] {
            assert!(
                lines.iter().any(|l| l == &format!("ack id={id}")),
                "missing ack {id}: {lines:?}"
            );
            assert!(
                lines.iter().any(|l| l.starts_with(&format!("done id={id} status="))),
                "missing done {id}: {lines:?}"
            );
        }
        assert!(
            lines.iter().any(|l| l.starts_with("err id=4 reason=unknown_event_kind")),
            "bad event must be rejected at parse time: {lines:?}"
        );
        assert!(
            lines.iter().any(|l| l.starts_with("stats ") && l.contains("sessions=1")),
            "stats must count the retained session: {lines:?}"
        );
    }

    #[test]
    fn the_line_protocol_round_trips() {
        let (lines, sink) = collector();
        let server = SolveServer::start(ServerConfig { runners: 1, queue_capacity: 8 }, Some(sink));
        assert!(handle_line(&server, "solve id=1 tasks=3 mesh=2 levels=2 deadline_ms=60000"));
        assert!(handle_line(&server, "# a comment"));
        assert!(handle_line(&server, "stats"));
        let _ = server.wait(1);
        assert!(!handle_line(&server, "shutdown"));
        let lines = lines.lock();
        assert!(lines.iter().any(|l| l == "ack id=1"), "missing ack: {lines:?}");
        assert!(lines.iter().any(|l| l.starts_with("stats ")), "missing stats: {lines:?}");
        assert!(
            lines.iter().any(|l| l.starts_with("done id=1 status=optimal")),
            "missing done: {lines:?}"
        );
        assert!(lines.iter().any(|l| l == "bye"), "missing bye: {lines:?}");
    }
}
