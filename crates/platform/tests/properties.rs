//! Property tests for the platform models.

use ndp_platform::{
    Platform, PowerModel, PowerParams, ReliabilityModel, ReliabilityParams, VfTable,
};
use proptest::prelude::*;

fn table_strategy() -> impl Strategy<Value = VfTable> {
    (2usize..=8, 0.6f64..1.0, 0.05f64..0.6, 100.0f64..600.0, 200.0f64..1400.0).prop_map(
        |(l, v0, vspan, f0, fspan)| {
            VfTable::synthetic(l, (v0, v0 + vspan), (f0, f0 + fspan)).expect("valid corners")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Total power strictly increases along the table (higher V and f).
    #[test]
    fn power_monotone_in_level(table in table_strategy()) {
        let p = PowerModel::new(PowerParams::bulk_70nm());
        let mut prev = 0.0;
        for (_, l) in table.iter() {
            let w = p.total_power(l);
            prop_assert!(w > prev);
            prev = w;
        }
    }

    /// Reliability improves with frequency and degrades with workload, and
    /// always stays a probability.
    #[test]
    fn reliability_is_probability_and_monotone(
        table in table_strategy(),
        cycles in 1e4f64..1e8,
    ) {
        let r = ReliabilityModel::new(ReliabilityParams::typical(), &table);
        let mut prev = 0.0;
        for (_, l) in table.iter() {
            let v = r.task_reliability(cycles, l);
            prop_assert!((0.0..=1.0).contains(&v));
            prop_assert!(v >= prev);
            prev = v;
        }
        let fast = table.level(table.fastest());
        prop_assert!(r.task_reliability(cycles, fast) >= r.task_reliability(cycles * 2.0, fast));
    }

    /// Duplication never hurts: `1 − (1−a)(1−b) ≥ max(a, b)` on [0,1].
    #[test]
    fn duplication_dominates_both_copies(a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
        let c = ReliabilityModel::duplicated_reliability(a, b);
        prop_assert!(c >= a.max(b) - 1e-12);
        prop_assert!(c <= 1.0 + 1e-12);
    }

    /// Energy of a task splits linearly: e(c1 + c2) = e(c1) + e(c2).
    #[test]
    fn energy_additive_in_cycles(
        table in table_strategy(),
        c1 in 1e4f64..1e7,
        c2 in 1e4f64..1e7,
    ) {
        let p = Platform::new(2, table, PowerModel::default(), ReliabilityParams::typical())
            .expect("valid platform");
        let l = p.vf_table().fastest();
        let lhs = p.exec_energy_mj(c1 + c2, l);
        let rhs = p.exec_energy_mj(c1, l) + p.exec_energy_mj(c2, l);
        prop_assert!((lhs - rhs).abs() < 1e-9 * lhs.max(1.0));
    }
}
