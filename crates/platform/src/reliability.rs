//! Transient-fault reliability model (paper §II-A.3).
//!
//! Transient faults arrive as a Poisson process whose rate grows
//! exponentially as the frequency is scaled down (lower voltage ⇒ smaller
//! critical charge):
//!
//! `λ(f) = λ · 10^{d·(f_max − f)/(f_max − f_min)}`
//!
//! Executing `C` cycles at frequency `f` then succeeds with probability
//!
//! `r(C, f) = e^{−λ(f)·C/f}`
//!
//! When a task's reliability falls below the threshold `R_th` the deployment
//! duplicates it; with both copies present the combined reliability is
//! `r′ = 1 − (1 − r₁)(1 − r₂)` (faults in both copies are assumed
//! independent).

use crate::voltage::{VfLevel, VfTable};
use serde::{Deserialize, Serialize};

/// Parameters of the Poisson fault model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityParams {
    /// Fault rate `λ` at the maximum frequency, in faults per millisecond.
    pub lambda_max_freq: f64,
    /// Sensitivity exponent `d` of the rate to frequency down-scaling.
    pub sensitivity: f64,
}

impl ReliabilityParams {
    /// A literature-typical setting: `λ = 10⁻⁶` faults/ms at `f_max`,
    /// sensitivity `d = 4` (rate grows 10⁴× at `f_min`).
    pub fn typical() -> Self {
        ReliabilityParams { lambda_max_freq: 1e-6, sensitivity: 4.0 }
    }
}

impl Default for ReliabilityParams {
    fn default() -> Self {
        ReliabilityParams::typical()
    }
}

/// Evaluates task reliabilities `r_il` over a [`VfTable`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityModel {
    params: ReliabilityParams,
    f_min: f64,
    f_max: f64,
}

impl ReliabilityModel {
    /// Creates a model calibrated to the frequency range of `table`.
    pub fn new(params: ReliabilityParams, table: &VfTable) -> Self {
        ReliabilityModel { params, f_min: table.f_min(), f_max: table.f_max() }
    }

    /// The parameters.
    pub fn params(&self) -> &ReliabilityParams {
        &self.params
    }

    /// The effective fault rate `λ(f)` in faults/ms at `mhz`.
    pub fn fault_rate_per_ms(&self, mhz: f64) -> f64 {
        let span = (self.f_max - self.f_min).max(f64::MIN_POSITIVE);
        let exponent = self.params.sensitivity * (self.f_max - mhz) / span;
        self.params.lambda_max_freq * 10f64.powf(exponent)
    }

    /// Reliability `r = e^{−λ(f)·C/f}` of executing `cycles` at `level`.
    pub fn task_reliability(&self, cycles: f64, level: VfLevel) -> f64 {
        let t_ms = level.exec_time_ms(cycles);
        (-self.fault_rate_per_ms(level.mhz) * t_ms).exp()
    }

    /// Combined reliability of two independent copies:
    /// `r′ = 1 − (1 − r₁)(1 − r₂)`.
    pub fn duplicated_reliability(r1: f64, r2: f64) -> f64 {
        1.0 - (1.0 - r1) * (1.0 - r2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::voltage::VfTable;

    fn model() -> (ReliabilityModel, VfTable) {
        let t = VfTable::preset_70nm();
        (ReliabilityModel::new(ReliabilityParams::typical(), &t), t)
    }

    #[test]
    fn rate_is_lambda_at_fmax_and_scaled_at_fmin() {
        let (m, t) = model();
        let at_max = m.fault_rate_per_ms(t.f_max());
        let at_min = m.fault_rate_per_ms(t.f_min());
        assert!((at_max - 1e-6).abs() < 1e-18);
        assert!((at_min / at_max - 1e4).abs() / 1e4 < 1e-9);
    }

    #[test]
    fn reliability_decreases_at_lower_frequency() {
        let (m, t) = model();
        let cycles = 5e6;
        let mut prev = 0.0;
        for (_, l) in t.iter() {
            let r = m.task_reliability(cycles, l);
            assert!(r > prev, "reliability must improve with frequency");
            assert!(r > 0.0 && r <= 1.0);
            prev = r;
        }
    }

    #[test]
    fn reliability_decreases_with_more_cycles() {
        let (m, t) = model();
        let l = t.level(t.slowest());
        assert!(m.task_reliability(1e6, l) > m.task_reliability(1e7, l));
    }

    #[test]
    fn duplication_improves_reliability() {
        let r = 0.95;
        let dup = ReliabilityModel::duplicated_reliability(r, r);
        assert!(dup > r);
        assert!((dup - 0.9975).abs() < 1e-12);
    }

    #[test]
    fn duplication_with_perfect_copy_is_perfect() {
        assert_eq!(ReliabilityModel::duplicated_reliability(1.0, 0.3), 1.0);
        assert_eq!(ReliabilityModel::duplicated_reliability(0.0, 0.0), 0.0);
    }
}
