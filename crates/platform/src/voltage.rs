//! Voltage/frequency operating points.
//!
//! Every processor in the platform exposes `L` discrete V/F levels
//! `{(v₁,f₁), …, (v_L,f_L)}` (paper §II-A.2). [`VfTable`] owns the sorted
//! list and provides the derived quantities used throughout the paper:
//! `f_min`, `f_max` and the energy-gap index `ε` of Fig. 2(c).

use crate::error::{PlatformError, Result};
use crate::power::PowerModel;
use serde::{Deserialize, Serialize};

/// A single voltage/frequency operating point.
///
/// Units: volts and megahertz. With times in milliseconds and powers in
/// watts, task energies come out in millijoules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VfLevel {
    /// Supply voltage in volts.
    pub volts: f64,
    /// Clock frequency in MHz.
    pub mhz: f64,
}

impl VfLevel {
    /// Creates a level after validating positivity.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidLevel`] for non-positive or non-finite
    /// voltage/frequency.
    pub fn new(volts: f64, mhz: f64) -> Result<Self> {
        if !(volts.is_finite() && volts > 0.0 && mhz.is_finite() && mhz > 0.0) {
            return Err(PlatformError::InvalidLevel { volts, mhz });
        }
        Ok(VfLevel { volts, mhz })
    }

    /// Execution time in milliseconds for `cycles` worst-case execution
    /// cycles at this level: `t = C / f`.
    pub fn exec_time_ms(&self, cycles: f64) -> f64 {
        cycles / (self.mhz * 1e3)
    }
}

/// Index of a V/F level inside a [`VfTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LevelId(pub usize);

impl LevelId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// An ordered collection of V/F levels shared by all processors (the paper
/// assumes a homogeneous ISA and identical level sets).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VfTable {
    levels: Vec<VfLevel>,
}

impl VfTable {
    /// Builds a table from levels, sorting by frequency ascending.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::EmptyTable`] when `levels` is empty and
    /// [`PlatformError::InvalidLevel`] when any level is invalid or voltages
    /// do not increase with frequency.
    pub fn new(mut levels: Vec<VfLevel>) -> Result<Self> {
        if levels.is_empty() {
            return Err(PlatformError::EmptyTable);
        }
        for l in &levels {
            VfLevel::new(l.volts, l.mhz)?;
        }
        levels.sort_by(|a, b| a.mhz.partial_cmp(&b.mhz).expect("finite frequencies"));
        for w in levels.windows(2) {
            if w[1].volts < w[0].volts {
                return Err(PlatformError::InvalidLevel { volts: w[1].volts, mhz: w[1].mhz });
            }
        }
        Ok(VfTable { levels })
    }

    /// The classic 70 nm six-level table used by the evaluation
    /// (frequencies 300–1000 MHz, voltages 0.85–1.10 V).
    pub fn preset_70nm() -> Self {
        let pts = [
            (0.85, 300.0),
            (0.90, 400.0),
            (0.95, 533.0),
            (1.00, 667.0),
            (1.05, 800.0),
            (1.10, 1000.0),
        ];
        VfTable::new(pts.iter().map(|&(v, f)| VfLevel { volts: v, mhz: f }).collect())
            .expect("preset is valid")
    }

    /// A synthetic table of `l` levels linearly interpolating voltage and
    /// frequency between the given corner points. Used by parameter sweeps.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::EmptyTable`] when `l == 0`, or
    /// [`PlatformError::InvalidLevel`] for bad corners.
    pub fn synthetic(l: usize, v_range: (f64, f64), f_range: (f64, f64)) -> Result<Self> {
        if l == 0 {
            return Err(PlatformError::EmptyTable);
        }
        let mut levels = Vec::with_capacity(l);
        for i in 0..l {
            let t = if l == 1 { 1.0 } else { i as f64 / (l - 1) as f64 };
            levels.push(VfLevel::new(
                v_range.0 + t * (v_range.1 - v_range.0),
                f_range.0 + t * (f_range.1 - f_range.0),
            )?);
        }
        VfTable::new(levels)
    }

    /// Number of levels `L`.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// The level at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn level(&self, id: LevelId) -> VfLevel {
        self.levels[id.0]
    }

    /// Iterates `(LevelId, VfLevel)` in ascending frequency order.
    pub fn iter(&self) -> impl Iterator<Item = (LevelId, VfLevel)> + '_ {
        self.levels.iter().enumerate().map(|(i, &l)| (LevelId(i), l))
    }

    /// Minimum frequency `f_min` in MHz.
    pub fn f_min(&self) -> f64 {
        self.levels.first().expect("nonempty").mhz
    }

    /// Maximum frequency `f_max` in MHz.
    pub fn f_max(&self) -> f64 {
        self.levels.last().expect("nonempty").mhz
    }

    /// The fastest level.
    pub fn fastest(&self) -> LevelId {
        LevelId(self.levels.len() - 1)
    }

    /// The slowest level.
    pub fn slowest(&self) -> LevelId {
        LevelId(0)
    }

    /// The paper's Fig. 2(c) energy-gap index
    /// `ε = max_l(P_l/f_l) / min_l(P_l/f_l)` (energy per cycle spread).
    pub fn energy_gap_index(&self, power: &PowerModel) -> f64 {
        let per_cycle: Vec<f64> =
            self.levels.iter().map(|l| power.total_power(*l) / l.mhz).collect();
        let max = per_cycle.iter().cloned().fold(f64::MIN, f64::max);
        let min = per_cycle.iter().cloned().fold(f64::MAX, f64::min);
        max / min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::PowerParams;

    #[test]
    fn preset_is_sorted_and_bounded() {
        let t = VfTable::preset_70nm();
        assert_eq!(t.len(), 6);
        assert_eq!(t.f_min(), 300.0);
        assert_eq!(t.f_max(), 1000.0);
        assert_eq!(t.level(t.fastest()).mhz, 1000.0);
        assert_eq!(t.level(t.slowest()).mhz, 300.0);
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let t = VfTable::new(vec![
            VfLevel { volts: 1.1, mhz: 900.0 },
            VfLevel { volts: 0.9, mhz: 300.0 },
        ])
        .unwrap();
        assert_eq!(t.f_min(), 300.0);
    }

    #[test]
    fn voltage_must_grow_with_frequency() {
        let r = VfTable::new(vec![
            VfLevel { volts: 1.1, mhz: 300.0 },
            VfLevel { volts: 0.9, mhz: 900.0 },
        ]);
        assert!(r.is_err());
    }

    #[test]
    fn empty_table_rejected() {
        assert!(matches!(VfTable::new(vec![]), Err(PlatformError::EmptyTable)));
        assert!(VfTable::synthetic(0, (0.8, 1.1), (300.0, 1000.0)).is_err());
    }

    #[test]
    fn invalid_level_rejected() {
        assert!(VfLevel::new(-1.0, 500.0).is_err());
        assert!(VfLevel::new(1.0, 0.0).is_err());
        assert!(VfLevel::new(f64::NAN, 500.0).is_err());
    }

    #[test]
    fn exec_time_units() {
        // 5e6 cycles at 500 MHz = 10 ms.
        let l = VfLevel::new(1.0, 500.0).unwrap();
        assert!((l.exec_time_ms(5e6) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn synthetic_interpolates() {
        let t = VfTable::synthetic(3, (0.8, 1.2), (200.0, 1000.0)).unwrap();
        assert_eq!(t.len(), 3);
        let mid = t.level(LevelId(1));
        assert!((mid.volts - 1.0).abs() < 1e-12);
        assert!((mid.mhz - 600.0).abs() < 1e-12);
    }

    #[test]
    fn energy_gap_index_above_one() {
        let t = VfTable::preset_70nm();
        let p = PowerModel::new(PowerParams::bulk_70nm());
        assert!(t.energy_gap_index(&p) > 1.0);
    }
}
