//! # ndp-platform — DVFS multicore platform models
//!
//! Substrate crate of the `noc-deploy` workspace modelling the processors of
//! the reproduced paper (§II-A.2/3):
//!
//! * [`VfTable`] / [`VfLevel`] — discrete voltage/frequency operating points,
//! * [`PowerModel`] — static + dynamic CMOS power (`Pˢ + C_e·v²·f`),
//! * [`ReliabilityModel`] — Poisson transient-fault reliability with
//!   exponential rate growth under frequency down-scaling,
//! * [`Platform`] — the assembled homogeneous `N`-processor system.
//!
//! Units: volts, MHz, milliseconds, watts, millijoules.
//!
//! ```
//! use ndp_platform::Platform;
//!
//! let p = Platform::homogeneous(16)?;
//! let slow = p.vf_table().slowest();
//! // Running slower costs time and reliability but saves energy.
//! assert!(p.exec_energy_mj(1e6, slow) < p.exec_energy_mj(1e6, p.vf_table().fastest()));
//! # Ok::<(), ndp_platform::PlatformError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod platform;
mod power;
mod reliability;
mod voltage;

pub use error::{PlatformError, Result};
pub use platform::{Platform, ProcessorId};
pub use power::{PowerModel, PowerParams};
pub use reliability::{ReliabilityModel, ReliabilityParams};
pub use voltage::{LevelId, VfLevel, VfTable};
