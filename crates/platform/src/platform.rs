//! The assembled multicore platform.

use crate::error::{PlatformError, Result};
use crate::power::PowerModel;
use crate::reliability::{ReliabilityModel, ReliabilityParams};
use crate::voltage::{LevelId, VfTable};
use serde::{Deserialize, Serialize};

/// Index of a processor `θ_k` in the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessorId(pub usize);

impl ProcessorId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A homogeneous DVFS multicore: `N` processors sharing one ISA, one V/F
/// table, one power model and one fault model (paper §II-A.2).
///
/// ```
/// use ndp_platform::Platform;
///
/// let p = Platform::homogeneous(16)?;
/// assert_eq!(p.num_processors(), 16);
/// let l = p.vf_table().fastest();
/// assert!(p.exec_energy_mj(2.0e6, l) > 0.0);
/// # Ok::<(), ndp_platform::PlatformError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    n: usize,
    vf: VfTable,
    power: PowerModel,
    reliability: ReliabilityModel,
}

impl Platform {
    /// Creates a platform from explicit components.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NoProcessors`] when `n == 0`.
    pub fn new(
        n: usize,
        vf: VfTable,
        power: PowerModel,
        reliability_params: ReliabilityParams,
    ) -> Result<Self> {
        if n == 0 {
            return Err(PlatformError::NoProcessors);
        }
        let reliability = ReliabilityModel::new(reliability_params, &vf);
        Ok(Platform { n, vf, power, reliability })
    }

    /// The evaluation default: `n` processors with the 70 nm preset V/F
    /// table, power and fault parameters.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NoProcessors`] when `n == 0`.
    pub fn homogeneous(n: usize) -> Result<Self> {
        Platform::new(
            n,
            VfTable::preset_70nm(),
            PowerModel::default(),
            ReliabilityParams::typical(),
        )
    }

    /// Number of processors `N`.
    pub fn num_processors(&self) -> usize {
        self.n
    }

    /// Iterates over processor ids.
    pub fn processors(&self) -> impl Iterator<Item = ProcessorId> {
        (0..self.n).map(ProcessorId)
    }

    /// The shared V/F table.
    pub fn vf_table(&self) -> &VfTable {
        &self.vf
    }

    /// The shared power model.
    pub fn power_model(&self) -> &PowerModel {
        &self.power
    }

    /// The shared reliability model.
    pub fn reliability_model(&self) -> &ReliabilityModel {
        &self.reliability
    }

    /// Execution time in ms of `cycles` at level `l` (`t = C/f`).
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range for the V/F table.
    pub fn exec_time_ms(&self, cycles: f64, l: LevelId) -> f64 {
        self.vf.level(l).exec_time_ms(cycles)
    }

    /// Computation energy in mJ of `cycles` at level `l` (`e = P·C/f`).
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range for the V/F table.
    pub fn exec_energy_mj(&self, cycles: f64, l: LevelId) -> f64 {
        self.power.exec_energy_mj(cycles, self.vf.level(l))
    }

    /// Reliability `r_il` of `cycles` at level `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range for the V/F table.
    pub fn task_reliability(&self, cycles: f64, l: LevelId) -> f64 {
        self.reliability.task_reliability(cycles, self.vf.level(l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_builds() {
        let p = Platform::homogeneous(4).unwrap();
        assert_eq!(p.num_processors(), 4);
        assert_eq!(p.processors().count(), 4);
    }

    #[test]
    fn zero_processors_rejected() {
        assert!(matches!(Platform::homogeneous(0), Err(PlatformError::NoProcessors)));
    }

    #[test]
    fn faster_level_is_faster_but_costlier() {
        let p = Platform::homogeneous(1).unwrap();
        let slow = p.vf_table().slowest();
        let fast = p.vf_table().fastest();
        let cycles = 3e6;
        assert!(p.exec_time_ms(cycles, fast) < p.exec_time_ms(cycles, slow));
        assert!(p.exec_energy_mj(cycles, fast) > p.exec_energy_mj(cycles, slow));
        assert!(p.task_reliability(cycles, fast) > p.task_reliability(cycles, slow));
    }
}
