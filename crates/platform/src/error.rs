//! Error types for platform construction.

use std::fmt;

/// Errors raised while constructing platform models.
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformError {
    /// A V/F level had a non-positive or non-finite voltage/frequency, or
    /// the table's voltages do not increase with frequency.
    InvalidLevel {
        /// Offending voltage (volts).
        volts: f64,
        /// Offending frequency (MHz).
        mhz: f64,
    },
    /// A V/F table must contain at least one level.
    EmptyTable,
    /// The platform must contain at least one processor.
    NoProcessors,
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::InvalidLevel { volts, mhz } => {
                write!(f, "invalid V/F level ({volts} V, {mhz} MHz)")
            }
            PlatformError::EmptyTable => write!(f, "V/F table must not be empty"),
            PlatformError::NoProcessors => write!(f, "platform needs at least one processor"),
        }
    }
}

impl std::error::Error for PlatformError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, PlatformError>;
