//! Processor power model (paper §II-A.2).
//!
//! The paper adopts the classic DVFS power decomposition of Han et al. /
//! Martin et al.:
//!
//! * static:  `Pˢ = L_g · (v·K₁·e^{K₂·v}·e^{K₃·v_b} + |v_b|·I_b)`
//! * dynamic: `Pᵈ = C_e · v² · f`
//!
//! with `v` the supply voltage, `f` the frequency, `v_b` the body-bias
//! voltage, `I_b` the body junction leakage current, `C_e` the average
//! switched capacitance and `L_g` the number of logic gates.

use crate::voltage::VfLevel;
use serde::{Deserialize, Serialize};

/// Technology parameters of the power model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerParams {
    /// Average switched capacitance `C_e` in farads.
    pub ce: f64,
    /// Number of logic gates `L_g`.
    pub lg: f64,
    /// Static current fit parameter `K₁` (amperes).
    pub k1: f64,
    /// Static exponential fit parameter `K₂` (1/V).
    pub k2: f64,
    /// Body-bias exponential fit parameter `K₃` (1/V).
    pub k3: f64,
    /// Body-bias voltage `v_b` in volts (typically negative).
    pub vb: f64,
    /// Body junction leakage current `I_b` in amperes.
    pub ib: f64,
}

impl PowerParams {
    /// The 70 nm bulk-CMOS parameter set used by the papers the evaluation
    /// builds on (Martin et al., adopted by Han et al., the paper's ref.\ 3):
    /// `K₁ = 5.38·10⁻⁷`, `K₂ = 1.83`, `K₃ = 4.19`, `I_b = 4.8·10⁻¹⁰ A`,
    /// `C_e = 0.43·10⁻⁹ F`, `v_b = −0.7 V`.
    ///
    /// `L_g` is scaled to `4·10⁵` gates so the platform sits in the
    /// dynamic-power-dominated regime where lowering V/F reduces energy per
    /// cycle — the regime the paper's DVFS trade-off (and its `ε` index)
    /// assumes. With the original `4·10⁶` gates leakage dominates and the
    /// slowest level is *less* efficient per cycle, which contradicts
    /// Fig. 2(c)'s premise.
    pub fn bulk_70nm() -> Self {
        PowerParams {
            ce: 0.43e-9,
            lg: 4.0e5,
            k1: 5.38e-7,
            k2: 1.83,
            k3: 4.19,
            vb: -0.7,
            ib: 4.8e-10,
        }
    }
}

impl Default for PowerParams {
    fn default() -> Self {
        PowerParams::bulk_70nm()
    }
}

/// Evaluates static/dynamic/total power and per-task energies for a
/// [`PowerParams`] set.
///
/// ```
/// use ndp_platform::{PowerModel, PowerParams, VfLevel};
///
/// let p = PowerModel::new(PowerParams::bulk_70nm());
/// let level = VfLevel::new(1.0, 667.0)?;
/// assert!(p.total_power(level) > 0.0);
/// # Ok::<(), ndp_platform::PlatformError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    params: PowerParams,
}

impl PowerModel {
    /// Creates the model.
    pub fn new(params: PowerParams) -> Self {
        PowerModel { params }
    }

    /// The parameter set.
    pub fn params(&self) -> &PowerParams {
        &self.params
    }

    /// Static power `Pˢ` in watts at supply voltage `level.volts`.
    pub fn static_power(&self, level: VfLevel) -> f64 {
        let p = &self.params;
        let v = level.volts;
        p.lg * (v * p.k1 * (p.k2 * v).exp() * (p.k3 * p.vb).exp() + p.vb.abs() * p.ib)
    }

    /// Dynamic power `Pᵈ = C_e·v²·f` in watts (`f` converted from MHz).
    pub fn dynamic_power(&self, level: VfLevel) -> f64 {
        self.params.ce * level.volts * level.volts * level.mhz * 1e6
    }

    /// Total power `P = Pˢ + Pᵈ` in watts.
    pub fn total_power(&self, level: VfLevel) -> f64 {
        self.static_power(level) + self.dynamic_power(level)
    }

    /// Computation energy in millijoules of a task with `cycles` WCEC at
    /// `level`: `e = P·t` with `t = C/f` in milliseconds.
    pub fn exec_energy_mj(&self, cycles: f64, level: VfLevel) -> f64 {
        self.total_power(level) * level.exec_time_ms(cycles)
    }

    /// Energy per cycle in millijoules: `P_l / f_l` (paper's `ε` numerator /
    /// denominator terms).
    pub fn energy_per_cycle_mj(&self, level: VfLevel) -> f64 {
        self.total_power(level) / (level.mhz * 1e3)
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::new(PowerParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::voltage::VfTable;

    fn model() -> PowerModel {
        PowerModel::new(PowerParams::bulk_70nm())
    }

    #[test]
    fn powers_positive_and_monotone_in_frequency() {
        let m = model();
        let t = VfTable::preset_70nm();
        let mut prev = 0.0;
        for (_, l) in t.iter() {
            let p = m.total_power(l);
            assert!(p > 0.0, "power must be positive");
            assert!(p > prev, "total power must grow with the level");
            prev = p;
        }
    }

    #[test]
    fn dynamic_power_magnitude_sane() {
        // 0.43nF * 1V^2 * 1GHz = 0.43 W.
        let m = model();
        let l = VfLevel::new(1.0, 1000.0).unwrap();
        assert!((m.dynamic_power(l) - 0.43).abs() < 1e-12);
    }

    #[test]
    fn static_power_small_but_nonzero() {
        let m = model();
        let l = VfLevel::new(1.0, 1000.0).unwrap();
        let s = m.static_power(l);
        assert!(s > 0.0 && s < m.dynamic_power(l));
    }

    #[test]
    fn exec_energy_scales_linearly_with_cycles() {
        let m = model();
        let l = VfLevel::new(1.0, 500.0).unwrap();
        let e1 = m.exec_energy_mj(1e6, l);
        let e2 = m.exec_energy_mj(2e6, l);
        assert!((e2 - 2.0 * e1).abs() < 1e-9);
    }

    #[test]
    fn energy_per_cycle_higher_at_high_frequency() {
        // Voltage scaling makes high levels less efficient per cycle.
        let m = model();
        let t = VfTable::preset_70nm();
        let lo = m.energy_per_cycle_mj(t.level(t.slowest()));
        let hi = m.energy_per_cycle_mj(t.level(t.fastest()));
        assert!(hi > lo);
    }
}
