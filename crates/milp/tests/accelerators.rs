//! Safety of the branch-and-bound accelerators, cross-checked against
//! exhaustive enumeration.
//!
//! Primal heuristics, node propagation and conflict cuts may change *how*
//! the tree is searched — never the answer. Each proptest below isolates
//! one accelerator (the others off) and requires exact agreement with the
//! brute-force optimum on random binary MILPs, plus feasibility of every
//! returned incumbent; the all-on configuration is checked too, because
//! the features interact (heuristic incumbents prune, propagation feeds
//! conflict analysis).

mod common;

use common::{brute_force, build_binary, objective_of, random_milp, satisfies_rows, RandomMilp};
use ndp_milp::{SolveStatus, SolverOptions};
use proptest::prelude::*;

/// Solves under `opts` and checks exact agreement with enumeration.
fn check_against_enumeration(
    milp: &RandomMilp,
    opts: &SolverOptions,
    name: &str,
) -> std::result::Result<(), TestCaseError> {
    let truth = brute_force(milp);
    let (m, _) = build_binary(milp);
    let sol = m.solve_with(opts).expect("solver must not error");
    match truth {
        None => prop_assert_eq!(sol.status(), SolveStatus::Infeasible, "{} status", name),
        Some(best) => {
            prop_assert_eq!(sol.status(), SolveStatus::Optimal, "{} status", name);
            prop_assert!(
                (sol.objective_value() - best).abs() < 1e-6,
                "{} found {} vs brute force {}",
                name,
                sol.objective_value(),
                best
            );
            prop_assert!(m.is_feasible(sol.values(), 1e-6), "{} incumbent infeasible", name);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// Node propagation in isolation: tightening a bound that excludes any
    /// integer-feasible point, or fathoming a box that still holds one,
    /// would change the proven optimum of some instance here.
    #[test]
    fn propagation_preserves_the_enumerated_optimum(milp in random_milp()) {
        let opts = SolverOptions::default()
            .threads(1)
            .cuts(false)
            .heuristics(false)
            .conflict_cuts(false)
            .propagation(true);
        check_against_enumeration(&milp, &opts, "propagation-only")?;
    }

    /// Conflict cuts in isolation: a no-good that cut off an integer-
    /// feasible point would corrupt the search globally (the cuts live in
    /// the worker LP for the rest of the solve).
    #[test]
    fn conflict_cuts_preserve_the_enumerated_optimum(milp in random_milp()) {
        let opts = SolverOptions::default()
            .threads(1)
            .cuts(false)
            .heuristics(false)
            .propagation(false)
            .conflict_cuts(true);
        check_against_enumeration(&milp, &opts, "conflicts-only")?;
    }

    /// Heuristics in isolation: a heuristic incumbent that failed validation
    /// (infeasible, or mis-scaled objective) would either surface as a wrong
    /// final objective or prune the true optimum away.
    #[test]
    fn heuristics_preserve_the_enumerated_optimum(milp in random_milp()) {
        let opts = SolverOptions::default()
            .threads(1)
            .cuts(false)
            .propagation(false)
            .conflict_cuts(false)
            .heuristics(true);
        check_against_enumeration(&milp, &opts, "heuristics-only")?;
    }

    /// Everything on at once — the production default plus in-tree cuts —
    /// still matches enumeration exactly.
    #[test]
    fn all_accelerators_match_enumeration(milp in random_milp()) {
        let opts = SolverOptions::default().threads(1).cut_node_interval(1);
        check_against_enumeration(&milp, &opts, "all-on")?;
    }

    /// Under a node budget too small to search, any incumbent the solver
    /// reports came from the root heuristics: it must satisfy every row
    /// and never beat the enumerated optimum.
    #[test]
    fn heuristic_incumbents_pass_validation(milp in random_milp()) {
        let opts = SolverOptions::default().threads(1).node_limit(1);
        let (m, _) = build_binary(&milp);
        let sol = m.solve_with(&opts).expect("solver must not error");
        if !sol.has_incumbent() {
            return Ok(());
        }
        prop_assert!(m.is_feasible(sol.values(), 1e-6), "heuristic incumbent infeasible");
        prop_assert!(satisfies_rows(&milp, sol.values()), "incumbent violates a raw row");
        let reported = sol.objective_value();
        prop_assert!(
            (objective_of(&milp, sol.values()) - reported).abs() < 1e-6,
            "reported objective {} disagrees with the point", reported
        );
        if let Some(best) = brute_force(&milp) {
            let ok = if milp.maximize { reported <= best + 1e-6 } else { reported >= best - 1e-6 };
            prop_assert!(ok, "incumbent {} beats the enumerated optimum {}", reported, best);
        }
    }
}

/// Repeated seeded-heuristic solves agree bit-for-bit on the incumbent:
/// the dive's tie-breaking RNG is seeded per solve, not global.
#[test]
fn repeated_heuristic_solves_agree_bitwise() {
    let opts = SolverOptions::default().threads(1);
    let a = common::hard_knapsack(14).solve_with(&opts).unwrap();
    let b = common::hard_knapsack(14).solve_with(&opts).unwrap();
    assert_eq!(a.objective_value().to_bits(), b.objective_value().to_bits());
    assert_eq!(a.node_count(), b.node_count());
    assert_eq!(a.stats().heuristic_incumbents, b.stats().heuristic_incumbents);
    assert_eq!(a.stats().propagated_bounds, b.stats().propagated_bounds);
    assert_eq!(a.stats().conflict_cuts_applied, b.stats().conflict_cuts_applied);
    let av: Vec<u64> = a.values().iter().map(|v| v.to_bits()).collect();
    let bv: Vec<u64> = b.values().iter().map(|v| v.to_bits()).collect();
    assert_eq!(av, bv, "incumbent points diverged between identical runs");
}
