//! Cross-validation of the MILP solver against exhaustive enumeration.
//!
//! For random all-binary models we enumerate every 0/1 assignment, compute
//! the true optimum, and require the solver to (a) agree on feasibility and
//! (b) match the optimal objective exactly. A branch-and-bound that prunes
//! incorrectly, or a simplex that returns a wrong LP bound, fails here with
//! high probability.

mod common;

use common::{brute_force, build_binary as build, random_milp};
use ndp_milp::{BranchRule, LinExpr, Model, NodeOrder, Objective, SolveStatus, SolverOptions};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn solver_matches_enumeration(milp in random_milp()) {
        let truth = brute_force(&milp);
        let (m, _) = build(&milp);
        let sol = m.solve().expect("solver must not error");
        match truth {
            None => prop_assert_eq!(sol.status(), SolveStatus::Infeasible),
            Some(best) => {
                prop_assert_eq!(sol.status(), SolveStatus::Optimal);
                prop_assert!((sol.objective_value() - best).abs() < 1e-6,
                    "solver {} vs brute force {}", sol.objective_value(), best);
                // The reported incumbent itself must be feasible.
                prop_assert!(m.is_feasible(sol.values(), 1e-6));
            }
        }
    }

    #[test]
    fn best_bound_order_matches_enumeration(milp in random_milp()) {
        let truth = brute_force(&milp);
        let (m, _) = build(&milp);
        let opts = SolverOptions::default()
            .node_order(NodeOrder::BestBound)
            .branch_rule(BranchRule::PseudoCost);
        let sol = m.solve_with(&opts).expect("solver must not error");
        match truth {
            None => prop_assert_eq!(sol.status(), SolveStatus::Infeasible),
            Some(best) => {
                prop_assert_eq!(sol.status(), SolveStatus::Optimal);
                prop_assert!((sol.objective_value() - best).abs() < 1e-6,
                    "solver {} vs brute force {}", sol.objective_value(), best);
            }
        }
    }

    #[test]
    fn gap_is_closed_at_optimality(milp in random_milp()) {
        let (m, _) = build(&milp);
        let sol = m.solve().expect("solver must not error");
        if sol.status() == SolveStatus::Optimal {
            prop_assert!(sol.gap() <= 1e-5, "gap {} too large", sol.gap());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// The thread count may change the node exploration order but never the
    /// answer: serial (`threads = 1`) and work-stealing (`threads = 4`)
    /// solves must both match exhaustive enumeration exactly.
    #[test]
    fn thread_counts_match_enumeration(milp in random_milp()) {
        let truth = brute_force(&milp);
        let (serial_model, _) = build(&milp);
        let (parallel_model, _) = build(&milp);
        let serial = serial_model
            .solve_with(&SolverOptions::default().threads(1))
            .expect("serial solve must not error");
        let parallel = parallel_model
            .solve_with(&SolverOptions::default().threads(4))
            .expect("parallel solve must not error");
        match truth {
            None => {
                prop_assert_eq!(serial.status(), SolveStatus::Infeasible);
                prop_assert_eq!(parallel.status(), SolveStatus::Infeasible);
            }
            Some(best) => {
                prop_assert_eq!(serial.status(), SolveStatus::Optimal);
                prop_assert_eq!(parallel.status(), SolveStatus::Optimal);
                prop_assert!((serial.objective_value() - best).abs() < 1e-6,
                    "threads=1 {} vs brute force {}", serial.objective_value(), best);
                prop_assert!((parallel.objective_value() - best).abs() < 1e-6,
                    "threads=4 {} vs brute force {}", parallel.objective_value(), best);
                prop_assert!(parallel_model.is_feasible(parallel.values(), 1e-6));
            }
        }
        // Per-thread node statistics must be consistent with the totals.
        prop_assert!(serial.nodes_per_thread().len() <= 1);
        prop_assert!(parallel.nodes_per_thread().len() <= 4);
        prop_assert_eq!(serial.nodes_per_thread().iter().sum::<u64>(), serial.node_count());
        prop_assert_eq!(parallel.nodes_per_thread().iter().sum::<u64>(), parallel.node_count());
    }

    /// Best-bound node order under a worker team: the shared heap must still
    /// prove the enumerated optimum.
    #[test]
    fn parallel_best_bound_matches_enumeration(milp in random_milp()) {
        let truth = brute_force(&milp);
        let (m, _) = build(&milp);
        let opts = SolverOptions::default().node_order(NodeOrder::BestBound).threads(4);
        let sol = m.solve_with(&opts).expect("solver must not error");
        match truth {
            None => prop_assert_eq!(sol.status(), SolveStatus::Infeasible),
            Some(best) => {
                prop_assert_eq!(sol.status(), SolveStatus::Optimal);
                prop_assert!((sol.objective_value() - best).abs() < 1e-6,
                    "solver {} vs brute force {}", sol.objective_value(), best);
            }
        }
    }
}

/// `threads = 1` is the documented deterministic mode: repeated solves take
/// the identical search path, so node and pivot counts match exactly.
#[test]
fn serial_mode_is_deterministic() {
    let build = || {
        let mut m = Model::new("det");
        let mut obj = LinExpr::new();
        let mut cap = LinExpr::new();
        for i in 0..14 {
            let x = m.binary(format!("x{i}"));
            obj.add_term(x, 3.0 + (i as f64) * 0.7);
            cap.add_term(x, 2.0 + ((i * 5) % 7) as f64);
        }
        m.add_le("cap", cap, 23.0);
        m.set_objective(Objective::Maximize, obj);
        m
    };
    let opts = SolverOptions::default().threads(1);
    let a = build().solve_with(&opts).unwrap();
    let b = build().solve_with(&opts).unwrap();
    assert_eq!(a.status(), b.status());
    assert_eq!(a.objective_value().to_bits(), b.objective_value().to_bits());
    assert_eq!(a.node_count(), b.node_count());
    assert_eq!(a.simplex_iterations(), b.simplex_iterations());
    assert_eq!(a.nodes_per_thread(), b.nodes_per_thread());
    assert_eq!(a.nodes_per_thread(), &[a.node_count()]);
}

#[test]
fn mixed_integer_continuous_against_hand_solution() {
    // max 3x + 2y + w : x,y binary, w in [0, 10] continuous
    //   2x + y + 0.5w <= 4
    //   w <= 6x  (w only usable when x chosen)
    let mut m = Model::new("mixed");
    let x = m.binary("x");
    let y = m.binary("y");
    let w = m.continuous("w", 0.0, 10.0).unwrap();
    m.add_le("cap", LinExpr::term(x, 2.0) + LinExpr::from(y) + LinExpr::term(w, 0.5), 4.0);
    m.add_le("link", LinExpr::from(w) - LinExpr::term(x, 6.0), 0.0);
    m.set_objective(
        Objective::Maximize,
        LinExpr::term(x, 3.0) + LinExpr::term(y, 2.0) + LinExpr::from(w),
    );
    let s = m.solve().unwrap();
    // x=1,y=1: slack for w is 4-3=1 -> w=2 (0.5w<=1) => obj 3+2+2 = 7
    // x=1,y=0: 0.5w <= 2 -> w=4 but w<=6 -> obj 3+4 = 7 -- tie
    // x=0: w=0, y=1 -> 2.
    assert_eq!(s.status(), SolveStatus::Optimal);
    assert!((s.objective_value() - 7.0).abs() < 1e-6);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// Presolve must never change the answer: status and optimal objective
    /// agree with the raw branch-and-bound on random models.
    #[test]
    fn presolve_preserves_semantics(milp in random_milp()) {
        let (with_presolve, _) = build(&milp);
        let (without_presolve, _) = build(&milp);
        let opts_off = SolverOptions { presolve: false, ..SolverOptions::default() };
        let a = with_presolve.solve().expect("solve with presolve");
        let b = without_presolve.solve_with(&opts_off).expect("solve without presolve");
        prop_assert_eq!(a.status(), b.status());
        if a.status().has_solution() {
            prop_assert!((a.objective_value() - b.objective_value()).abs() < 1e-6,
                "presolve {} vs raw {}", a.objective_value(), b.objective_value());
            // Postsolved incumbents must be feasible in the original model.
            prop_assert!(with_presolve.is_feasible(a.values(), 1e-6));
        }
    }
}
