//! Cutting-plane end-to-end correctness and effectiveness.
//!
//! Cuts may only ever shrink the tree, never change the answer. The
//! proptest cross-checks cuts-off, root-only cuts and root+in-tree cuts
//! against exhaustive enumeration on random binary MILPs; the fixed tests
//! pin that cuts actually reduce node counts on a structured knapsack and
//! that the cut statistics stay internally consistent.

use ndp_milp::{ConstraintSense, LinExpr, Model, Objective, SolveStatus, SolverOptions};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomMilp {
    n: usize,
    obj: Vec<i32>,
    maximize: bool,
    rows: Vec<(Vec<i32>, u8, i32)>, // coeffs, sense code, rhs
}

fn build(milp: &RandomMilp) -> Model {
    let mut m = Model::new("random");
    let vars: Vec<_> = (0..milp.n).map(|i| m.binary(format!("x{i}"))).collect();
    for (r, (coeffs, sense, rhs)) in milp.rows.iter().enumerate() {
        let mut e = LinExpr::new();
        for (j, &c) in coeffs.iter().enumerate() {
            if c != 0 {
                e.add_term(vars[j], c as f64);
            }
        }
        let sense = match sense {
            0 => ConstraintSense::Le,
            1 => ConstraintSense::Ge,
            _ => ConstraintSense::Eq,
        };
        m.add_constraint(format!("r{r}"), e, sense, *rhs as f64);
    }
    let mut obj = LinExpr::new();
    for (j, &c) in milp.obj.iter().enumerate() {
        obj.add_term(vars[j], c as f64);
    }
    let dir = if milp.maximize { Objective::Maximize } else { Objective::Minimize };
    m.set_objective(dir, obj);
    m
}

/// Enumerates all 2^n assignments; returns the best objective if feasible.
fn brute_force(milp: &RandomMilp) -> Option<f64> {
    let mut best: Option<f64> = None;
    for mask in 0u32..(1 << milp.n) {
        let x: Vec<f64> = (0..milp.n).map(|j| ((mask >> j) & 1) as f64).collect();
        let feasible = milp.rows.iter().all(|(coeffs, sense, rhs)| {
            let lhs: f64 = coeffs.iter().zip(&x).map(|(&c, &v)| c as f64 * v).sum();
            match sense {
                0 => lhs <= *rhs as f64 + 1e-9,
                1 => lhs >= *rhs as f64 - 1e-9,
                _ => (lhs - *rhs as f64).abs() <= 1e-9,
            }
        });
        if !feasible {
            continue;
        }
        let obj: f64 = milp.obj.iter().zip(&x).map(|(&c, &v)| c as f64 * v).sum();
        best = Some(match best {
            None => obj,
            Some(b) => {
                if milp.maximize {
                    b.max(obj)
                } else {
                    b.min(obj)
                }
            }
        });
    }
    best
}

fn random_milp() -> impl Strategy<Value = RandomMilp> {
    (2usize..=9, any::<bool>()).prop_flat_map(|(n, maximize)| {
        let obj = proptest::collection::vec(-9i32..=9, n);
        let row = (proptest::collection::vec(-5i32..=5, n), 0u8..=2, -8i32..=12);
        let rows = proptest::collection::vec(row, 1..=5);
        (obj, rows).prop_map(move |(obj, rows)| RandomMilp { n, obj, maximize, rows })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// Cuts off, root cuts only, and root + in-tree cuts (separating at
    /// every depth) must all agree with exhaustive enumeration — a cut
    /// that removed an integer point would change the status or optimum
    /// of some instance here with high probability.
    #[test]
    fn cut_configurations_match_enumeration(milp in random_milp()) {
        let truth = brute_force(&milp);
        let configs = [
            ("cuts-off", SolverOptions::default().threads(1).cuts(false)),
            ("root-cuts", SolverOptions::default().threads(1)),
            (
                "tree-cuts",
                SolverOptions::default().threads(1).cut_node_interval(1),
            ),
        ];
        for (name, opts) in configs {
            let m = build(&milp);
            let sol = m.solve_with(&opts).expect("solver must not error");
            match truth {
                None => prop_assert_eq!(
                    sol.status(), SolveStatus::Infeasible, "{} status", name),
                Some(best) => {
                    prop_assert_eq!(
                        sol.status(), SolveStatus::Optimal, "{} status", name);
                    prop_assert!((sol.objective_value() - best).abs() < 1e-6,
                        "{} found {} vs brute force {}",
                        name, sol.objective_value(), best);
                    prop_assert!(m.is_feasible(sol.values(), 1e-6),
                        "{} incumbent infeasible", name);
                }
            }
        }
    }

    /// Parallel solves search with root cuts installed (in-tree separation
    /// is serial-only); the answer must still match enumeration.
    #[test]
    fn parallel_search_over_root_cuts_matches_enumeration(milp in random_milp()) {
        let truth = brute_force(&milp);
        let m = build(&milp);
        let opts = SolverOptions::default().threads(4).cut_node_interval(2);
        let sol = m.solve_with(&opts).expect("solver must not error");
        match truth {
            None => prop_assert_eq!(sol.status(), SolveStatus::Infeasible),
            Some(best) => {
                prop_assert_eq!(sol.status(), SolveStatus::Optimal);
                prop_assert!((sol.objective_value() - best).abs() < 1e-6,
                    "threads=4 found {} vs brute force {}",
                    sol.objective_value(), best);
            }
        }
    }
}

/// A strongly correlated knapsack: profits hug the weights, so the LP
/// bound is tight everywhere and the uncut tree is large.
fn hard_knapsack(items: usize) -> Model {
    let mut m = Model::new("hard-knapsack");
    let mut weight = LinExpr::new();
    let mut value = LinExpr::new();
    let mut total = 0.0;
    for i in 0..items {
        let w = 97.0 + ((i as f64) * 37.0) % 53.0;
        let x = m.binary(format!("x{i}"));
        weight.add_term(x, w);
        value.add_term(x, w + 10.0);
        total += w;
    }
    m.add_le("cap", weight, (total / 2.0).floor());
    m.set_objective(Objective::Maximize, value);
    m
}

/// Cuts must shrink (or at worst not grow) the tree on the structured
/// knapsack, at the same proven optimum, with the work visible in the
/// cut counters.
#[test]
fn cuts_shrink_the_tree_on_a_structured_knapsack() {
    let off = hard_knapsack(16)
        .solve_with(&SolverOptions::default().threads(1).cuts(false))
        .expect("cuts-off solve");
    let on =
        hard_knapsack(16).solve_with(&SolverOptions::default().threads(1)).expect("cuts-on solve");
    assert_eq!(off.status(), SolveStatus::Optimal);
    assert_eq!(on.status(), SolveStatus::Optimal);
    assert!(
        (on.objective_value() - off.objective_value()).abs() < 1e-6,
        "cuts changed the optimum: {} vs {}",
        on.objective_value(),
        off.objective_value()
    );
    assert!(
        on.node_count() <= off.node_count(),
        "cuts grew the tree: {} nodes with cuts vs {} without",
        on.node_count(),
        off.node_count()
    );
    let stats = on.stats();
    assert!(stats.cuts_applied > 0, "fixture must apply cuts");
    assert!(stats.cuts_generated >= stats.cuts_applied);
    assert_eq!(off.stats().cuts_applied, 0, "cuts-off run applied cuts");
}

/// Cut statistics are internally consistent and the separation time is a
/// disjoint bucket of the wall clock.
#[test]
fn cut_stats_are_consistent() {
    let sol = hard_knapsack(14).solve_with(&SolverOptions::default().threads(1)).expect("solve");
    let st = sol.stats();
    assert!(st.cuts_generated >= st.cuts_applied);
    assert!(st.separation_seconds >= 0.0);
    assert!(st.other_seconds() >= 0.0);
    let attributed =
        st.presolve_seconds + st.simplex_seconds + st.factor_seconds + st.separation_seconds;
    assert!(
        attributed <= st.total_seconds * 1.05 + 1e-3,
        "attributed {attributed} vs total {}",
        st.total_seconds
    );
}
