//! Cutting-plane end-to-end correctness and effectiveness.
//!
//! Cuts may only ever shrink the tree, never change the answer. The
//! proptest cross-checks cuts-off, root-only cuts and root+in-tree cuts
//! against exhaustive enumeration on random binary MILPs; the fixed tests
//! pin that cuts actually reduce node counts on a structured knapsack and
//! that the cut statistics stay internally consistent.

mod common;

use common::{brute_force, hard_knapsack, random_milp};
use ndp_milp::{SolveStatus, SolverOptions};
use proptest::prelude::*;

/// Adapts the shared builder to this suite's model-only signature.
fn build(milp: &common::RandomMilp) -> ndp_milp::Model {
    common::build_binary(milp).0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// Cuts off, root cuts only, and root + in-tree cuts (separating at
    /// every depth) must all agree with exhaustive enumeration — a cut
    /// that removed an integer point would change the status or optimum
    /// of some instance here with high probability.
    #[test]
    fn cut_configurations_match_enumeration(milp in random_milp()) {
        let truth = brute_force(&milp);
        let configs = [
            ("cuts-off", SolverOptions::default().threads(1).cuts(false)),
            ("root-cuts", SolverOptions::default().threads(1)),
            (
                "tree-cuts",
                SolverOptions::default().threads(1).cut_node_interval(1),
            ),
        ];
        for (name, opts) in configs {
            let m = build(&milp);
            let sol = m.solve_with(&opts).expect("solver must not error");
            match truth {
                None => prop_assert_eq!(
                    sol.status(), SolveStatus::Infeasible, "{} status", name),
                Some(best) => {
                    prop_assert_eq!(
                        sol.status(), SolveStatus::Optimal, "{} status", name);
                    prop_assert!((sol.objective_value() - best).abs() < 1e-6,
                        "{} found {} vs brute force {}",
                        name, sol.objective_value(), best);
                    prop_assert!(m.is_feasible(sol.values(), 1e-6),
                        "{} incumbent infeasible", name);
                }
            }
        }
    }

    /// Parallel solves search with root cuts installed (in-tree separation
    /// is serial-only); the answer must still match enumeration.
    #[test]
    fn parallel_search_over_root_cuts_matches_enumeration(milp in random_milp()) {
        let truth = brute_force(&milp);
        let m = build(&milp);
        let opts = SolverOptions::default().threads(4).cut_node_interval(2);
        let sol = m.solve_with(&opts).expect("solver must not error");
        match truth {
            None => prop_assert_eq!(sol.status(), SolveStatus::Infeasible),
            Some(best) => {
                prop_assert_eq!(sol.status(), SolveStatus::Optimal);
                prop_assert!((sol.objective_value() - best).abs() < 1e-6,
                    "threads=4 found {} vs brute force {}",
                    sol.objective_value(), best);
            }
        }
    }
}

/// Cuts must shrink (or at worst not grow) the tree on the structured
/// knapsack, at the same proven optimum, with the work visible in the
/// cut counters.
#[test]
fn cuts_shrink_the_tree_on_a_structured_knapsack() {
    let off = hard_knapsack(16)
        .solve_with(&SolverOptions::default().threads(1).cuts(false))
        .expect("cuts-off solve");
    let on =
        hard_knapsack(16).solve_with(&SolverOptions::default().threads(1)).expect("cuts-on solve");
    assert_eq!(off.status(), SolveStatus::Optimal);
    assert_eq!(on.status(), SolveStatus::Optimal);
    assert!(
        (on.objective_value() - off.objective_value()).abs() < 1e-6,
        "cuts changed the optimum: {} vs {}",
        on.objective_value(),
        off.objective_value()
    );
    assert!(
        on.node_count() <= off.node_count(),
        "cuts grew the tree: {} nodes with cuts vs {} without",
        on.node_count(),
        off.node_count()
    );
    let stats = on.stats();
    assert!(stats.cuts_applied > 0, "fixture must apply cuts");
    assert!(stats.cuts_generated >= stats.cuts_applied);
    assert_eq!(off.stats().cuts_applied, 0, "cuts-off run applied cuts");
}

/// Cut statistics are internally consistent and the separation time is a
/// disjoint bucket of the wall clock.
#[test]
fn cut_stats_are_consistent() {
    let sol = hard_knapsack(14).solve_with(&SolverOptions::default().threads(1)).expect("solve");
    let st = sol.stats();
    assert!(st.cuts_generated >= st.cuts_applied);
    assert!(st.separation_seconds >= 0.0);
    assert!(st.other_seconds() >= 0.0);
    let attributed = st.presolve_seconds
        + st.simplex_seconds
        + st.factor_seconds
        + st.separation_seconds
        + st.heuristic_seconds
        + st.propagation_seconds;
    assert!(
        attributed <= st.total_seconds * 1.05 + 1e-3,
        "attributed {attributed} vs total {}",
        st.total_seconds
    );
}
