//! Pricing-rule and warm-start equivalence.
//!
//! The leaving-row pricing rule (Dantzig / devex / dual steepest edge) and
//! the parent-basis warm start change *which* pivots the dual simplex makes
//! and *where* each node LP starts — never the answer. The proptest blocks
//! cross-check every pricing rule × warm-start combination against the
//! Dantzig/cold reference on random bounded MILPs, and the determinism
//! tests pin that a `threads = 1` solve emits a bit-for-bit identical event
//! sequence when repeated, under every combination.

mod common;

use common::{build_bounded as build, random_bounded as random_instance, RandomLp};
use ndp_milp::{Pricing, SolveStatus, SolverEvent, SolverOptions};
use proptest::prelude::*;

const ALL_PRICING: [Pricing; 3] = [Pricing::SteepestEdge, Pricing::Devex, Pricing::Dantzig];

/// Solves single-threaded under one pricing × warm-start configuration.
fn solve_config(lp: &RandomLp, pricing: Pricing, warm: bool) -> (SolveStatus, f64) {
    let m = build(lp);
    let opts = SolverOptions::default().threads(1).pricing(pricing).warm_start(warm);
    let sol = m.solve_with(&opts).expect("solve must not error");
    (sol.status(), if sol.status().has_solution() { sol.objective_value() } else { 0.0 })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// Random MILPs: every pricing rule, warm and cold, proves the same
    /// status and optimum as the Dantzig/cold reference.
    #[test]
    fn all_pricing_warm_combinations_agree_on_milps(lp in random_instance(true)) {
        let (st_ref, obj_ref) = solve_config(&lp, Pricing::Dantzig, false);
        for pricing in ALL_PRICING {
            for warm in [true, false] {
                if pricing == Pricing::Dantzig && !warm {
                    continue;
                }
                let (st, obj) = solve_config(&lp, pricing, warm);
                prop_assert_eq!(st, st_ref,
                    "status mismatch for {:?}/warm={}", pricing, warm);
                if st_ref.has_solution() {
                    prop_assert!((obj - obj_ref).abs() < 1e-6,
                        "{:?}/warm={} found {} vs reference {}", pricing, warm, obj, obj_ref);
                }
            }
        }
    }

    /// Random pure LPs: same agreement without the branch and bound on top.
    #[test]
    fn all_pricing_warm_combinations_agree_on_lps(lp in random_instance(false)) {
        let (st_ref, obj_ref) = solve_config(&lp, Pricing::Dantzig, false);
        for pricing in ALL_PRICING {
            let (st, obj) = solve_config(&lp, pricing, true);
            prop_assert_eq!(st, st_ref, "status mismatch for {:?}", pricing);
            if st_ref.has_solution() {
                prop_assert!((obj - obj_ref).abs() < 1e-6,
                    "{:?} found {} vs reference {}", pricing, obj, obj_ref);
            }
        }
    }
}

use common::{recording_observer, tree_model};

/// Runs the tree model serially and returns the full event transcript.
fn event_transcript(pricing: Pricing, warm: bool) -> Vec<SolverEvent> {
    let (events, obs) = recording_observer();
    let opts = SolverOptions::default().threads(1).pricing(pricing).warm_start(warm).observer(obs);
    let sol = tree_model().solve_with(&opts).expect("solve must not error");
    assert_eq!(sol.status(), SolveStatus::Optimal);
    let e = events.lock().unwrap();
    e.clone()
}

/// `threads = 1` must be reproducible event-for-event (including per-node
/// pivot counts and refactorization counters) under every pricing rule ×
/// warm-start combination.
#[test]
fn serial_event_stream_is_deterministic_for_every_combination() {
    for pricing in ALL_PRICING {
        for warm in [true, false] {
            let a = event_transcript(pricing, warm);
            let b = event_transcript(pricing, warm);
            assert!(!a.is_empty(), "no events for {pricing:?}/warm={warm}");
            assert_eq!(
                a, b,
                "event streams diverged between identical runs for {pricing:?}/warm={warm}"
            );
        }
    }
}

/// All six configurations must prove the same optimum on the tree model,
/// and the warm-started runs must not need more pivots than their cold
/// twins (the point of carrying the parent basis).
#[test]
fn tree_model_pivot_counts_and_optimum() {
    let mut reference: Option<f64> = None;
    for pricing in ALL_PRICING {
        let mut pivots = [0u64; 2];
        for (slot, warm) in [(0usize, true), (1usize, false)] {
            // Cuts off: this test probes the warm/cold node-start machinery,
            // which needs a tree the root cutting planes would collapse.
            let opts =
                SolverOptions::default().threads(1).pricing(pricing).warm_start(warm).cuts(false);
            let sol = tree_model().solve_with(&opts).expect("solve must not error");
            assert_eq!(sol.status(), SolveStatus::Optimal);
            match reference {
                None => reference = Some(sol.objective_value()),
                Some(o) => assert!(
                    (sol.objective_value() - o).abs() < 1e-6,
                    "{pricing:?}/warm={warm} optimum {} vs {}",
                    sol.objective_value(),
                    o
                ),
            }
            pivots[slot] = sol.simplex_iterations();
            let stats = sol.stats();
            if warm {
                assert!(stats.warm_starts > 0, "warm run recorded no warm starts");
            } else {
                assert_eq!(stats.warm_starts, 0, "cold run recorded warm starts");
                assert_eq!(stats.cold_starts, sol.node_count(), "every node must start cold");
            }
        }
        assert!(
            pivots[0] <= pivots[1],
            "{pricing:?}: warm start took more pivots than cold ({} > {})",
            pivots[0],
            pivots[1]
        );
    }
}

/// Warm/cold counters partition the node count on a serial solve.
#[test]
fn warm_cold_counters_partition_nodes() {
    let opts = SolverOptions::default().threads(1);
    let sol = tree_model().solve_with(&opts).expect("solve must not error");
    let stats = sol.stats();
    assert_eq!(
        stats.warm_starts + stats.cold_starts,
        sol.node_count(),
        "every evaluated node is exactly one of warm/cold"
    );
    // The root always starts cold.
    assert!(stats.cold_starts >= 1);
}
