//! Pricing-rule and warm-start equivalence.
//!
//! The leaving-row pricing rule (Dantzig / devex / dual steepest edge) and
//! the parent-basis warm start change *which* pivots the dual simplex makes
//! and *where* each node LP starts — never the answer. The proptest blocks
//! cross-check every pricing rule × warm-start combination against the
//! Dantzig/cold reference on random bounded MILPs, and the determinism
//! tests pin that a `threads = 1` solve emits a bit-for-bit identical event
//! sequence when repeated, under every combination.

use ndp_milp::{
    ConstraintSense, LinExpr, Model, Objective, Pricing, SolveStatus, SolverEvent, SolverOptions,
};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

#[derive(Debug, Clone)]
struct RandomLp {
    n: usize,
    obj: Vec<i32>,
    maximize: bool,
    bounds: Vec<(i32, i32)>,
    integral: bool,
    rows: Vec<(Vec<i32>, u8, i32)>, // coeffs, sense code, rhs
}

fn build(lp: &RandomLp) -> Model {
    let mut m = Model::new("rand");
    let vars: Vec<_> = (0..lp.n)
        .map(|i| {
            let (lo, hi) = lp.bounds[i];
            let (lo, hi) = (lo.min(hi) as f64, lo.max(hi) as f64);
            if lp.integral {
                m.integer(format!("x{i}"), lo, hi).unwrap()
            } else {
                m.continuous(format!("x{i}"), lo, hi).unwrap()
            }
        })
        .collect();
    for (r, (coeffs, sense, rhs)) in lp.rows.iter().enumerate() {
        let mut e = LinExpr::new();
        for (j, &c) in coeffs.iter().enumerate() {
            if c != 0 {
                e.add_term(vars[j], c as f64);
            }
        }
        let sense = match sense {
            0 => ConstraintSense::Le,
            1 => ConstraintSense::Ge,
            _ => ConstraintSense::Eq,
        };
        m.add_constraint(format!("r{r}"), e, sense, *rhs as f64);
    }
    let mut obj = LinExpr::new();
    for (j, &c) in lp.obj.iter().enumerate() {
        obj.add_term(vars[j], c as f64);
    }
    let dir = if lp.maximize { Objective::Maximize } else { Objective::Minimize };
    m.set_objective(dir, obj);
    m
}

fn random_instance(integral: bool) -> impl Strategy<Value = RandomLp> {
    (2usize..=8, any::<bool>()).prop_flat_map(move |(n, maximize)| {
        let obj = proptest::collection::vec(-9i32..=9, n);
        let bounds = proptest::collection::vec((-4i32..=4, -4i32..=6), n);
        let row = (proptest::collection::vec(-5i32..=5, n), 0u8..=2, -10i32..=14);
        let rows = proptest::collection::vec(row, 1..=5);
        (obj, bounds, rows).prop_map(move |(obj, bounds, rows)| RandomLp {
            n,
            obj,
            maximize,
            bounds,
            integral,
            rows,
        })
    })
}

const ALL_PRICING: [Pricing; 3] = [Pricing::SteepestEdge, Pricing::Devex, Pricing::Dantzig];

/// Solves single-threaded under one pricing × warm-start configuration.
fn solve_config(lp: &RandomLp, pricing: Pricing, warm: bool) -> (SolveStatus, f64) {
    let m = build(lp);
    let opts = SolverOptions::default().threads(1).pricing(pricing).warm_start(warm);
    let sol = m.solve_with(&opts).expect("solve must not error");
    (sol.status(), if sol.status().has_solution() { sol.objective_value() } else { 0.0 })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// Random MILPs: every pricing rule, warm and cold, proves the same
    /// status and optimum as the Dantzig/cold reference.
    #[test]
    fn all_pricing_warm_combinations_agree_on_milps(lp in random_instance(true)) {
        let (st_ref, obj_ref) = solve_config(&lp, Pricing::Dantzig, false);
        for pricing in ALL_PRICING {
            for warm in [true, false] {
                if pricing == Pricing::Dantzig && !warm {
                    continue;
                }
                let (st, obj) = solve_config(&lp, pricing, warm);
                prop_assert_eq!(st, st_ref,
                    "status mismatch for {:?}/warm={}", pricing, warm);
                if st_ref.has_solution() {
                    prop_assert!((obj - obj_ref).abs() < 1e-6,
                        "{:?}/warm={} found {} vs reference {}", pricing, warm, obj, obj_ref);
                }
            }
        }
    }

    /// Random pure LPs: same agreement without the branch and bound on top.
    #[test]
    fn all_pricing_warm_combinations_agree_on_lps(lp in random_instance(false)) {
        let (st_ref, obj_ref) = solve_config(&lp, Pricing::Dantzig, false);
        for pricing in ALL_PRICING {
            let (st, obj) = solve_config(&lp, pricing, true);
            prop_assert_eq!(st, st_ref, "status mismatch for {:?}", pricing);
            if st_ref.has_solution() {
                prop_assert!((obj - obj_ref).abs() < 1e-6,
                    "{:?} found {} vs reference {}", pricing, obj, obj_ref);
            }
        }
    }
}

fn recording_observer() -> (Arc<Mutex<Vec<SolverEvent>>>, Arc<dyn ndp_milp::Observer>) {
    let events = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&events);
    let obs: Arc<dyn ndp_milp::Observer> =
        Arc::new(move |e: &SolverEvent| sink.lock().unwrap().push(e.clone()));
    (events, obs)
}

/// A small knapsack-style MILP with a non-trivial tree.
fn tree_model() -> Model {
    let mut m = Model::new("tree");
    let mut weight = LinExpr::new();
    let mut value = LinExpr::new();
    for (i, (w, v)) in [(3.0, 7.0), (5.0, 9.0), (7.0, 12.0), (4.0, 6.0), (6.0, 11.0), (2.0, 3.0)]
        .into_iter()
        .enumerate()
    {
        let x = m.integer(format!("x{i}"), 0.0, 3.0).unwrap();
        weight.add_term(x, w);
        value.add_term(x, v);
    }
    m.add_le("cap", weight, 17.0);
    m.set_objective(Objective::Maximize, value);
    m
}

/// Runs the tree model serially and returns the full event transcript.
fn event_transcript(pricing: Pricing, warm: bool) -> Vec<SolverEvent> {
    let (events, obs) = recording_observer();
    let opts = SolverOptions::default().threads(1).pricing(pricing).warm_start(warm).observer(obs);
    let sol = tree_model().solve_with(&opts).expect("solve must not error");
    assert_eq!(sol.status(), SolveStatus::Optimal);
    let e = events.lock().unwrap();
    e.clone()
}

/// `threads = 1` must be reproducible event-for-event (including per-node
/// pivot counts and refactorization counters) under every pricing rule ×
/// warm-start combination.
#[test]
fn serial_event_stream_is_deterministic_for_every_combination() {
    for pricing in ALL_PRICING {
        for warm in [true, false] {
            let a = event_transcript(pricing, warm);
            let b = event_transcript(pricing, warm);
            assert!(!a.is_empty(), "no events for {pricing:?}/warm={warm}");
            assert_eq!(
                a, b,
                "event streams diverged between identical runs for {pricing:?}/warm={warm}"
            );
        }
    }
}

/// All six configurations must prove the same optimum on the tree model,
/// and the warm-started runs must not need more pivots than their cold
/// twins (the point of carrying the parent basis).
#[test]
fn tree_model_pivot_counts_and_optimum() {
    let mut reference: Option<f64> = None;
    for pricing in ALL_PRICING {
        let mut pivots = [0u64; 2];
        for (slot, warm) in [(0usize, true), (1usize, false)] {
            // Cuts off: this test probes the warm/cold node-start machinery,
            // which needs a tree the root cutting planes would collapse.
            let opts =
                SolverOptions::default().threads(1).pricing(pricing).warm_start(warm).cuts(false);
            let sol = tree_model().solve_with(&opts).expect("solve must not error");
            assert_eq!(sol.status(), SolveStatus::Optimal);
            match reference {
                None => reference = Some(sol.objective_value()),
                Some(o) => assert!(
                    (sol.objective_value() - o).abs() < 1e-6,
                    "{pricing:?}/warm={warm} optimum {} vs {}",
                    sol.objective_value(),
                    o
                ),
            }
            pivots[slot] = sol.simplex_iterations();
            let stats = sol.stats();
            if warm {
                assert!(stats.warm_starts > 0, "warm run recorded no warm starts");
            } else {
                assert_eq!(stats.warm_starts, 0, "cold run recorded warm starts");
                assert_eq!(stats.cold_starts, sol.node_count(), "every node must start cold");
            }
        }
        assert!(
            pivots[0] <= pivots[1],
            "{pricing:?}: warm start took more pivots than cold ({} > {})",
            pivots[0],
            pivots[1]
        );
    }
}

/// Warm/cold counters partition the node count on a serial solve.
#[test]
fn warm_cold_counters_partition_nodes() {
    let opts = SolverOptions::default().threads(1);
    let sol = tree_model().solve_with(&opts).expect("solve must not error");
    let stats = sol.stats();
    assert_eq!(
        stats.warm_starts + stats.cold_starts,
        sol.node_count(),
        "every evaluated node is exactly one of warm/cold"
    );
    // The root always starts cold.
    assert!(stats.cold_starts >= 1);
}
