//! Integration tests of the observer event stream, per-phase solve
//! statistics and cooperative cancellation.

mod common;

use common::{hard_knapsack, recording_observer, small_mip};
use ndp_milp::{CancelToken, SolveStatus, SolverEvent, SolverOptions, TerminationReason};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn event_stream_has_the_canonical_order() {
    let (events, obs) = recording_observer();
    let opts = SolverOptions::default().threads(1).observer(obs);
    let sol = small_mip().solve_with(&opts).unwrap();
    assert_eq!(sol.status(), SolveStatus::Optimal);

    let events = events.lock().unwrap();
    let pos = |pred: &dyn Fn(&SolverEvent) -> bool| events.iter().position(pred);
    let presolve = pos(&|e| matches!(e, SolverEvent::Presolve { .. })).expect("presolve event");
    let root = pos(&|e| matches!(e, SolverEvent::RootRelaxation { .. })).expect("root event");
    let incumbent = pos(&|e| matches!(e, SolverEvent::Incumbent { .. })).expect("incumbent event");
    let stats = pos(&|e| matches!(e, SolverEvent::ThreadStats { .. })).expect("thread stats");
    let term = pos(&|e| matches!(e, SolverEvent::Terminated { .. })).expect("terminated event");

    assert!(presolve < root, "presolve before root");
    assert!(root < incumbent, "root before the first incumbent");
    assert!(stats < term, "per-worker stats before termination");
    // Heuristics run on the root box before the search: every
    // HeuristicIncumbent event must land in the presolve..root window.
    for (i, e) in events.iter().enumerate() {
        if matches!(e, SolverEvent::HeuristicIncumbent { .. }) {
            assert!(presolve < i && i < root, "heuristic incumbent outside presolve..root");
        }
    }
    assert_eq!(term, events.len() - 1, "terminated is the final event");
    assert_eq!(
        events.iter().filter(|e| matches!(e, SolverEvent::Terminated { .. })).count(),
        1,
        "exactly one terminated event"
    );
    match &events[term] {
        SolverEvent::Terminated { status, reason } => {
            assert_eq!(*status, SolveStatus::Optimal);
            assert_eq!(*reason, TerminationReason::GapClosed);
        }
        other => panic!("unexpected final event {other:?}"),
    }
}

/// Cut rounds run on the root box before the search: every
/// [`SolverEvent::CutRound`] must land after presolve and before the root
/// relaxation event, with rounds numbered 1, 2, … and the applied count
/// never exceeding the generated count.
#[test]
fn cut_round_events_precede_the_root_and_are_well_formed() {
    let (events, obs) = recording_observer();
    let opts = SolverOptions::default().threads(1).observer(obs);
    let sol = hard_knapsack(14).solve_with(&opts).unwrap();
    assert_eq!(sol.status(), SolveStatus::Optimal);

    let events = events.lock().unwrap();
    let presolve = events
        .iter()
        .position(|e| matches!(e, SolverEvent::Presolve { .. }))
        .expect("presolve event");
    let root = events
        .iter()
        .position(|e| matches!(e, SolverEvent::RootRelaxation { .. }))
        .expect("root event");
    let rounds: Vec<(usize, u32, usize, usize)> = events
        .iter()
        .enumerate()
        .filter_map(|(i, e)| match e {
            SolverEvent::CutRound { round, generated, applied, .. } => {
                Some((i, *round, *generated, *applied))
            }
            _ => None,
        })
        .collect();
    assert!(!rounds.is_empty(), "fixture must emit cut rounds");
    assert!(sol.stats().cuts_applied > 0, "fixture must apply cuts");
    for (k, &(pos, round, generated, applied)) in rounds.iter().enumerate() {
        assert!(presolve < pos && pos < root, "cut round outside presolve..root window");
        assert_eq!(round as usize, k + 1, "rounds must be numbered from 1");
        assert!(applied <= generated, "applied {applied} > generated {generated}");
    }
}

#[test]
fn serial_event_stream_is_deterministic() {
    let run = || {
        let (events, obs) = recording_observer();
        let opts = SolverOptions::default().threads(1).observer(obs);
        small_mip().solve_with(&opts).unwrap();
        let e = events.lock().unwrap();
        e.iter().map(|ev| format!("{ev:?}")).collect::<Vec<_>>()
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty());
    assert_eq!(a, b, "threads = 1 must replay the identical event sequence");
}

/// Determinism must survive in-tree separation: `CutRound` is
/// timestamp-free and the cover separator is deterministic, so a serial
/// solve with cuts at every depth replays bit-for-bit.
#[test]
fn serial_event_stream_is_deterministic_with_tree_cuts() {
    let run = || {
        let (events, obs) = recording_observer();
        let opts = SolverOptions::default().threads(1).cut_node_interval(1).observer(obs);
        let sol = hard_knapsack(14).solve_with(&opts).unwrap();
        assert_eq!(sol.status(), SolveStatus::Optimal);
        let e = events.lock().unwrap();
        e.iter().map(|ev| format!("{ev:?}")).collect::<Vec<_>>()
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty());
    assert_eq!(a, b, "in-tree cuts broke serial determinism");
}

#[test]
fn incumbent_events_report_shrinking_gap_on_maximization() {
    let (events, obs) = recording_observer();
    let opts = SolverOptions::default().threads(1).observer(obs);
    let sol = small_mip().solve_with(&opts).unwrap();
    let events = events.lock().unwrap();
    let incumbents: Vec<(f64, f64)> = events
        .iter()
        .filter_map(|e| match e {
            SolverEvent::Incumbent { objective, gap, .. } => Some((*objective, *gap)),
            _ => None,
        })
        .collect();
    assert!(!incumbents.is_empty());
    // Maximization: each accepted incumbent strictly improves the objective,
    // and the reported global gap never widens (the dual bound only
    // tightens as subtrees close).
    for pair in incumbents.windows(2) {
        assert!(pair[1].0 > pair[0].0, "incumbents must improve: {incumbents:?}");
        assert!(pair[1].1 <= pair[0].1 + 1e-9, "gap must not widen: {incumbents:?}");
    }
    let last = incumbents.last().unwrap();
    assert!((last.0 - sol.objective_value()).abs() < 1e-9);
    // The root heuristics report on the same user scale: any heuristic
    // incumbent must not beat the final optimum of a maximization.
    for e in events.iter() {
        if let SolverEvent::HeuristicIncumbent { objective, .. } = e {
            assert!(*objective <= sol.objective_value() + 1e-9);
        }
    }
}

#[test]
fn stats_buckets_are_consistent() {
    let opts = SolverOptions::default().threads(1);
    let sol = hard_knapsack(14).solve_with(&opts).unwrap();
    let st = sol.stats();
    assert!(st.total_seconds > 0.0);
    assert!(st.presolve_seconds >= 0.0);
    assert!(st.simplex_seconds >= 0.0);
    assert!(st.factor_seconds >= 0.0);
    assert!(st.separation_seconds >= 0.0);
    assert!(st.heuristic_seconds >= 0.0);
    assert!(st.propagation_seconds >= 0.0);
    assert!(st.other_seconds() >= 0.0);
    assert!(st.cuts_generated >= st.cuts_applied);
    assert!(st.conflict_cuts_generated >= st.conflict_cuts_applied);
    assert!(st.heuristic_incumbents <= st.incumbents);
    // Serial: the measured phases are disjoint slices of the wall clock.
    let attributed = st.presolve_seconds
        + st.simplex_seconds
        + st.factor_seconds
        + st.separation_seconds
        + st.heuristic_seconds
        + st.propagation_seconds;
    assert!(
        attributed <= st.total_seconds * 1.05 + 1e-3,
        "attributed {attributed} vs total {}",
        st.total_seconds
    );
    assert_eq!(st.nodes, sol.node_count());
    assert_eq!(st.simplex_iterations, sol.simplex_iterations());
    assert!(st.incumbents >= 1);
    assert_eq!(st.steals, 0, "serial solves cannot steal");
    assert!((st.total_seconds - sol.solve_seconds()).abs() < 1e-9);
}

/// The accelerator events must reconcile exactly with the solve counters:
/// one `HeuristicIncumbent` per accepted heuristic point, one `ConflictCut`
/// per applied no-good, and `NodePropagated` tightenings summing to the
/// `propagated_bounds` counter.
#[test]
fn accelerator_events_match_the_solve_counters() {
    let (events, obs) = recording_observer();
    let opts = SolverOptions::default().threads(1).observer(obs);
    let sol = hard_knapsack(14).solve_with(&opts).unwrap();
    assert_eq!(sol.status(), SolveStatus::Optimal);
    let st = sol.stats();
    let events = events.lock().unwrap();

    let heuristic_events =
        events.iter().filter(|e| matches!(e, SolverEvent::HeuristicIncumbent { .. })).count();
    assert_eq!(heuristic_events as u64, st.heuristic_incumbents);
    assert!(st.heuristic_incumbents >= 1, "the dive must find a packable point");

    let conflict_events =
        events.iter().filter(|e| matches!(e, SolverEvent::ConflictCut { .. })).count();
    assert_eq!(conflict_events as u64, st.conflict_cuts_applied);

    let mut tightened_sum: u64 = 0;
    let mut fathom_events: u64 = 0;
    for e in events.iter() {
        if let SolverEvent::NodePropagated { tightened, fathomed, .. } = e {
            assert!(*tightened > 0 || *fathomed, "vacuous propagation event");
            tightened_sum += u64::from(*tightened);
            if *fathomed {
                fathom_events += 1;
            }
        }
    }
    assert_eq!(tightened_sum, st.propagated_bounds);
    assert_eq!(fathom_events, st.propagation_fathoms);
}

/// Turning every accelerator on must keep the serial stream bit-for-bit
/// reproducible — heuristics use a fixed seed, propagation is pure
/// arithmetic, and conflict cuts are derived deterministically.
#[test]
fn serial_event_stream_is_deterministic_with_all_accelerators() {
    let run = || {
        let (events, obs) = recording_observer();
        let opts = SolverOptions::default()
            .threads(1)
            .cut_node_interval(1)
            .heuristics(true)
            .propagation(true)
            .conflict_cuts(true)
            .observer(obs);
        let sol = hard_knapsack(14).solve_with(&opts).unwrap();
        assert_eq!(sol.status(), SolveStatus::Optimal);
        let e = events.lock().unwrap();
        e.iter().map(|ev| format!("{ev:?}")).collect::<Vec<_>>()
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty());
    assert_eq!(a, b, "accelerators broke serial determinism");
}

/// Cancels the solve from inside the observer after `after` node events,
/// which guarantees the token fires mid-search.
fn cancel_after_nodes(token: &CancelToken, after: u64) -> Arc<dyn ndp_milp::Observer> {
    let seen = AtomicU64::new(0);
    let token = token.clone();
    Arc::new(move |e: &SolverEvent| {
        if matches!(e, SolverEvent::NodeExplored { .. })
            && seen.fetch_add(1, Ordering::Relaxed) + 1 == after
        {
            token.cancel();
        }
    })
}

#[test]
fn cancellation_mid_solve_serial_returns_best_incumbent() {
    let token = CancelToken::new();
    let mut model = hard_knapsack(26);
    // Feasible warm start (nothing packed) so an incumbent always exists.
    model.set_warm_start(vec![0.0; 26]).unwrap();
    let opts = SolverOptions::default()
        .threads(1)
        .observer(cancel_after_nodes(&token, 20))
        .cancel_token(token.clone());
    let sol = model.solve_with(&opts).unwrap();
    assert_eq!(sol.status(), SolveStatus::Interrupted, "nodes: {}", sol.node_count());
    assert!(sol.has_incumbent());
    assert!(!sol.values().is_empty());
    assert!(sol.objective_value().is_finite());
    assert!(token.is_cancelled());
}

#[test]
fn cancellation_mid_solve_parallel_returns_best_incumbent() {
    let token = CancelToken::new();
    let mut model = hard_knapsack(26);
    model.set_warm_start(vec![0.0; 26]).unwrap();
    let opts = SolverOptions::default()
        .threads(4)
        .observer(cancel_after_nodes(&token, 20))
        .cancel_token(token.clone());
    let sol = model.solve_with(&opts).unwrap();
    assert_eq!(sol.status(), SolveStatus::Interrupted, "nodes: {}", sol.node_count());
    assert!(sol.has_incumbent());
    assert!(sol.objective_value().is_finite());
}

#[test]
fn pre_cancelled_token_stops_immediately() {
    let token = CancelToken::new();
    token.cancel();
    for threads in [1usize, 4] {
        let opts = SolverOptions::default().threads(threads).cancel_token(token.clone());
        let sol = hard_knapsack(26).solve_with(&opts).unwrap();
        assert_eq!(sol.status(), SolveStatus::Interrupted, "threads {threads}");
        assert!(!sol.has_incumbent(), "no warm start, no time to find anything");
    }
}

#[test]
fn completed_proof_is_not_masked_by_late_cancel() {
    // Cancel only after the solve already terminated: status stays Optimal.
    let token = CancelToken::new();
    let opts = SolverOptions::default().threads(1).cancel_token(token.clone());
    let sol = small_mip().solve_with(&opts).unwrap();
    token.cancel();
    assert_eq!(sol.status(), SolveStatus::Optimal);
}

#[test]
fn parallel_event_stream_reports_every_worker() {
    let (events, obs) = recording_observer();
    let opts = SolverOptions::default().threads(3).observer(obs);
    let sol = hard_knapsack(14).solve_with(&opts).unwrap();
    assert_eq!(sol.status(), SolveStatus::Optimal);
    let events = events.lock().unwrap();
    let mut workers: Vec<usize> = events
        .iter()
        .filter_map(|e| match e {
            SolverEvent::ThreadStats { worker, .. } => Some(*worker),
            _ => None,
        })
        .collect();
    workers.sort_unstable();
    assert_eq!(workers, vec![0, 1, 2], "one ThreadStats event per worker");
    let nodes_sum: u64 = events
        .iter()
        .filter_map(|e| match e {
            SolverEvent::ThreadStats { nodes, .. } => Some(*nodes),
            _ => None,
        })
        .sum();
    assert_eq!(nodes_sum, sol.node_count());
}
