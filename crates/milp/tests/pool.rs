//! Shared-worker-pool tests: panic containment and multi-job isolation.
//!
//! Parallel solves draw helper workers from the bounded process-global
//! pool, so these tests exercise the multi-tenant contract a solve server
//! relies on: a panic inside one job's search (here injected through a
//! panicking observer) fails only that job with a structured error; jobs
//! running concurrently on the same pool never leak incumbents or stats
//! into each other; and serial `threads = 1` solves stay bit-for-bit
//! deterministic no matter how loaded the pool is.

mod common;

use common::{hard_knapsack, recording_observer, small_mip, tree_model};
use ndp_milp::{CancelToken, MilpError, Model, SolveStatus, SolverEvent, SolverOptions};
use std::sync::Arc;

fn options(threads: usize) -> SolverOptions {
    SolverOptions::default().threads(threads)
}

/// Reference objective from the (extensively tested) serial arm.
fn serial_objective(model: &Model) -> f64 {
    let sol = model.solve_with(&options(1)).expect("serial reference solve");
    assert_eq!(sol.status(), SolveStatus::Optimal);
    sol.objective_value()
}

#[test]
fn a_panicking_worker_fails_only_its_own_job() {
    let victim = hard_knapsack(12);
    let bystander_a = hard_knapsack(11);
    let bystander_b = tree_model();
    let want_a = serial_objective(&bystander_a);
    let want_b = serial_objective(&bystander_b);

    // The observer panics on events that are only emitted from inside the
    // search workers (caller thread or pool thread), never during root
    // preprocessing: tree nodes and the per-worker stats trailer.
    let bomb: Arc<dyn ndp_milp::Observer> = Arc::new(|e: &SolverEvent| {
        if matches!(e, SolverEvent::NodeExplored { .. } | SolverEvent::ThreadStats { .. }) {
            panic!("injected observer panic");
        }
    });
    // Heuristics and cuts off so the knapsack needs a real tree and the
    // panic fires mid-search, not just at worker exit.
    let mut victim_opts = options(2).observer(bomb);
    victim_opts.heuristics = false;
    victim_opts.cuts = false;

    let err = std::thread::scope(|scope| {
        let a = scope.spawn(|| bystander_a.solve_with(&options(2)));
        let b = scope.spawn(|| bystander_b.solve_with(&options(3)));
        let err = victim.solve_with(&victim_opts).expect_err("injected panic must fail the job");
        // Concurrent jobs on the same pool must be untouched by the panic.
        let a = a.join().expect("bystander thread A").expect("bystander solve A");
        let b = b.join().expect("bystander thread B").expect("bystander solve B");
        assert_eq!(a.status(), SolveStatus::Optimal);
        assert_eq!(b.status(), SolveStatus::Optimal);
        assert!((a.objective_value() - want_a).abs() < 1e-9, "job A optimum leaked or drifted");
        assert!((b.objective_value() - want_b).abs() < 1e-9, "job B optimum leaked or drifted");
        err
    });
    match err {
        MilpError::WorkerPanicked { message, .. } => {
            assert!(message.contains("injected observer panic"), "payload preserved: {message}")
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }

    // The pool survived: the same model solves fine without the bomb.
    let retry = victim.solve_with(&options(2)).expect("pool must survive the panic");
    assert_eq!(retry.status(), SolveStatus::Optimal);
}

#[test]
fn concurrent_jobs_share_the_pool_without_leaking_state() {
    struct JobSpec {
        model: Model,
        threads: usize,
        cancel: bool,
        reference: f64,
    }
    let mut jobs = Vec::new();
    for (i, make) in [
        hard_knapsack(12),
        hard_knapsack(10),
        tree_model(),
        small_mip(),
        hard_knapsack(11),
        tree_model(),
    ]
    .into_iter()
    .enumerate()
    {
        let reference = serial_objective(&make);
        jobs.push(JobSpec {
            model: make,
            threads: 2 + (i % 3),
            // Every third job is cancelled before it starts: it must report
            // Interrupted without disturbing its neighbours.
            cancel: i % 3 == 2,
            reference,
        });
    }

    std::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .iter()
            .map(|job| {
                scope.spawn(move || {
                    let mut opts = options(job.threads);
                    if job.cancel {
                        let token = CancelToken::new();
                        token.cancel();
                        opts = opts.cancel_token(token);
                    }
                    job.model.solve_with(&opts).expect("pool solve")
                })
            })
            .collect();
        for (job, handle) in jobs.iter().zip(handles) {
            let sol = handle.join().expect("job thread");
            if job.cancel {
                assert_eq!(sol.status(), SolveStatus::Interrupted);
            } else {
                assert_eq!(sol.status(), SolveStatus::Optimal);
                assert!(
                    (sol.objective_value() - job.reference).abs() < 1e-9,
                    "cross-job incumbent leakage: got {} want {}",
                    sol.objective_value(),
                    job.reference
                );
                // Per-job stats must be self-consistent, not pooled.
                assert_eq!(sol.nodes_per_thread().len(), job.threads);
                assert_eq!(sol.nodes_per_thread().iter().sum::<u64>(), sol.node_count());
                assert!(sol.node_count() > 0);
            }
        }
    });
}

#[test]
fn jobs_with_deadlines_and_midflight_cancels_dont_disturb_neighbours() {
    let reference = serial_objective(&hard_knapsack(12));
    std::thread::scope(|scope| {
        // A job with an already-expired wall-clock budget.
        let expired = scope.spawn(|| {
            let mut opts = options(2);
            opts = opts.time_limit(1e-9);
            hard_knapsack(13).solve_with(&opts).expect("deadline solve")
        });
        // A job cancelled mid-flight from another thread.
        let token = CancelToken::new();
        let shared = token.clone();
        let cancelled = scope.spawn(move || {
            hard_knapsack(14).solve_with(&options(2).cancel_token(shared)).expect("cancel solve")
        });
        scope.spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(3));
            token.cancel();
        });
        // A plain job that must come back exact regardless of the above.
        let clean = scope.spawn(|| hard_knapsack(12).solve_with(&options(4)).expect("clean solve"));

        let expired = expired.join().expect("expired thread");
        assert_ne!(expired.status(), SolveStatus::Infeasible);
        let cancelled = cancelled.join().expect("cancelled thread");
        assert!(
            matches!(cancelled.status(), SolveStatus::Interrupted | SolveStatus::Optimal),
            "mid-flight cancel must interrupt or finish, got {:?}",
            cancelled.status()
        );
        let clean = clean.join().expect("clean thread");
        assert_eq!(clean.status(), SolveStatus::Optimal);
        assert!((clean.objective_value() - reference).abs() < 1e-9);
    });
}

#[test]
fn serial_event_streams_stay_deterministic_under_pool_load() {
    let model = small_mip();
    let run_serial = || {
        let (events, obs) = recording_observer();
        let opts = options(1).observer(obs);
        let sol = model.solve_with(&opts).expect("serial solve");
        assert_eq!(sol.status(), SolveStatus::Optimal);
        let events = events.lock().unwrap();
        events.iter().map(|e| format!("{e:?}")).collect::<Vec<_>>()
    };

    std::thread::scope(|scope| {
        // Keep the shared pool busy with parallel jobs while the serial
        // solves run.
        let noise: Vec<_> = (0..3)
            .map(|i| {
                scope.spawn(move || {
                    hard_knapsack(12 + i).solve_with(&options(3)).expect("noise solve")
                })
            })
            .collect();
        let first = run_serial();
        let second = run_serial();
        assert_eq!(first, second, "serial event streams must be bit-for-bit deterministic");
        assert!(!first.is_empty());
        for h in noise {
            let _ = h.join().expect("noise thread");
        }
    });
}
