//! Dense ↔ sparse basis-kernel equivalence, and ratio-test regressions.
//!
//! The sparse LU kernel must be *observationally identical* to the dense
//! reference inverse: same solve status and same optimal objective on every
//! instance, LP or MILP. The proptest blocks below cross-check the two
//! kernels on 600+ random instances (mirroring the seed's enumeration
//! cross-check scale), and the deterministic tests pin the bound-flip ratio
//! test: the entering variable must never overshoot its opposite bound, and
//! box-crossing steps must resolve as flips rather than pivot grinds.

mod common;

use common::{build_bounded as build, random_bounded as random_instance, RandomLp};
use ndp_milp::{BasisKernel, LinExpr, Model, Objective, SolveStatus, SolverOptions};
use proptest::prelude::*;

/// Solves with one kernel, single-threaded for reproducibility.
fn solve_with_kernel(lp: &RandomLp, kernel: BasisKernel) -> (SolveStatus, f64) {
    let m = build(lp);
    let opts = SolverOptions::default().threads(1).basis_kernel(kernel);
    let sol = m.solve_with(&opts).expect("solve must not error");
    (sol.status(), if sol.status().has_solution() { sol.objective_value() } else { 0.0 })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Pure LPs: the two kernels must agree on status and objective.
    #[test]
    fn kernels_agree_on_random_lps(lp in random_instance(false)) {
        let (st_dense, obj_dense) = solve_with_kernel(&lp, BasisKernel::Dense);
        let (st_lu, obj_lu) = solve_with_kernel(&lp, BasisKernel::SparseLu);
        prop_assert_eq!(st_dense, st_lu, "status mismatch");
        if st_dense.has_solution() {
            prop_assert!((obj_dense - obj_lu).abs() < 1e-6,
                "dense {} vs sparse {}", obj_dense, obj_lu);
        }
    }

    /// MILPs: branch-and-bound on top of either kernel proves the same
    /// optimum (node paths may differ, answers may not).
    #[test]
    fn kernels_agree_on_random_milps(lp in random_instance(true)) {
        let (st_dense, obj_dense) = solve_with_kernel(&lp, BasisKernel::Dense);
        let (st_lu, obj_lu) = solve_with_kernel(&lp, BasisKernel::SparseLu);
        prop_assert_eq!(st_dense, st_lu, "status mismatch");
        if st_dense.has_solution() {
            prop_assert!((obj_dense - obj_lu).abs() < 1e-6,
                "dense {} vs sparse {}", obj_dense, obj_lu);
        }
    }

    /// Whatever the kernel, a returned point must satisfy its own bounds
    /// entrywise — the bound-flip regression: before the ratio test was
    /// capped at the entering range, overshooting steps could report values
    /// outside the box.
    #[test]
    fn solutions_respect_bounds_entrywise(
        lp in random_instance(false),
        sparse in any::<bool>(),
    ) {
        let m = build(&lp);
        let kernel = if sparse { BasisKernel::SparseLu } else { BasisKernel::Dense };
        let opts = SolverOptions::default().threads(1).basis_kernel(kernel);
        let sol = m.solve_with(&opts).expect("solve must not error");
        if sol.status().has_solution() {
            for j in 0..lp.n {
                let (lo, hi) = (lp.bounds[j].0.min(lp.bounds[j].1) as f64,
                                lp.bounds[j].0.max(lp.bounds[j].1) as f64);
                let x = sol.values()[j];
                prop_assert!(x >= lo - 1e-6 && x <= hi + 1e-6,
                    "x{} = {} outside [{}, {}]", j, x, lo, hi);
            }
        }
    }
}

/// The canonical flip workload: minimize Σ cᵢxᵢ over the unit box subject to
/// Σ xᵢ ≥ n − ½. The dual simplex starts from the all-lower slack basis with
/// one massively violated row; the optimal point parks every variable at 1
/// except the most expensive one at ½. Without bound flips each variable
/// must be pivoted *through* the one-row basis (≈ n pivots, each
/// overshooting to the next), with flips the whole solve is n − 1 in-place
/// flips plus a single pivot.
#[test]
fn flip_workload_solves_in_few_pivots() {
    let n = 40;
    let mut m = Model::new("flips");
    let mut sum = LinExpr::new();
    let mut obj = LinExpr::new();
    let mut costs = Vec::new();
    for i in 0..n {
        let x = m.continuous(format!("x{i}"), 0.0, 1.0).unwrap();
        sum.add_term(x, 1.0);
        let c = 1.0 + (i as f64) * 0.25;
        costs.push(c);
        obj.add_term(x, c);
    }
    m.add_ge("cover", sum, n as f64 - 0.5);
    m.set_objective(Objective::Minimize, obj);

    let opts = SolverOptions { presolve: false, ..SolverOptions::default() }.threads(1);
    let sol = m.solve_with(&opts).unwrap();
    assert_eq!(sol.status(), SolveStatus::Optimal);
    let expect: f64 = costs.iter().sum::<f64>() - 0.5 * costs.last().unwrap();
    assert!(
        (sol.objective_value() - expect).abs() < 1e-6,
        "objective {} vs expected {}",
        sol.objective_value(),
        expect
    );
    // Every value inside the unit box.
    for (j, &x) in sol.values().iter().enumerate().take(n) {
        assert!((-1e-7..=1.0 + 1e-7).contains(&x), "x{j} = {x} escaped the box");
    }
    // The flip refinement keeps the pivot count tiny; the grind this
    // regresses needed roughly one pivot per variable.
    assert!(
        sol.simplex_iterations() <= 5,
        "expected flips, got {} pivots for {} variables",
        sol.simplex_iterations(),
        n
    );
}

/// Same workload, maximization direction: flips must work from the upper
/// bound side too.
#[test]
fn flip_workload_from_upper_bounds() {
    let n = 30;
    let mut m = Model::new("flips-up");
    let mut sum = LinExpr::new();
    let mut obj = LinExpr::new();
    for i in 0..n {
        let x = m.continuous(format!("x{i}"), 0.0, 1.0).unwrap();
        sum.add_term(x, 1.0);
        obj.add_term(x, 1.0 + (i as f64) * 0.5);
    }
    m.add_le("cap", sum, 0.5);
    m.set_objective(Objective::Maximize, obj);

    let opts = SolverOptions { presolve: false, ..SolverOptions::default() }.threads(1);
    let sol = m.solve_with(&opts).unwrap();
    assert_eq!(sol.status(), SolveStatus::Optimal);
    // Best: give the whole 0.5 budget to the most valuable variable.
    let expect = 0.5 * (1.0 + ((n - 1) as f64) * 0.5);
    assert!(
        (sol.objective_value() - expect).abs() < 1e-6,
        "objective {} vs expected {}",
        sol.objective_value(),
        expect
    );
    for (j, &x) in sol.values().iter().enumerate().take(n) {
        assert!((-1e-7..=1.0 + 1e-7).contains(&x), "x{j} = {x} escaped the box");
    }
}
