//! Shared fixtures for the integration suites: random-instance generators,
//! exhaustive enumeration oracles, structured models and a recording
//! observer.
//!
//! Each `tests/*.rs` file is its own crate, so before this module the
//! generators were duplicated per suite and drifted independently. The
//! suites pull what they need via `mod common;` — the allow below silences
//! the per-crate dead-code noise from unused helpers.
#![allow(dead_code)]

use ndp_milp::{ConstraintSense, LinExpr, Model, Objective, Observer, SolverEvent, VarId};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

/// A random all-binary MILP with small integer data: the workhorse of the
/// enumeration cross-checks (≤ 9 variables, so 2^n is tiny).
#[derive(Debug, Clone)]
pub struct RandomMilp {
    pub n: usize,
    pub obj: Vec<i32>,
    pub maximize: bool,
    /// Rows as (coeffs, sense code 0=Le/1=Ge/2=Eq, rhs).
    pub rows: Vec<(Vec<i32>, u8, i32)>,
}

/// Builds the [`Model`] for a [`RandomMilp`], returning the variable ids in
/// index order.
pub fn build_binary(milp: &RandomMilp) -> (Model, Vec<VarId>) {
    let mut m = Model::new("random");
    let vars: Vec<_> = (0..milp.n).map(|i| m.binary(format!("x{i}"))).collect();
    for (r, (coeffs, sense, rhs)) in milp.rows.iter().enumerate() {
        let mut e = LinExpr::new();
        for (j, &c) in coeffs.iter().enumerate() {
            if c != 0 {
                e.add_term(vars[j], c as f64);
            }
        }
        let sense = match sense {
            0 => ConstraintSense::Le,
            1 => ConstraintSense::Ge,
            _ => ConstraintSense::Eq,
        };
        m.add_constraint(format!("r{r}"), e, sense, *rhs as f64);
    }
    let mut obj = LinExpr::new();
    for (j, &c) in milp.obj.iter().enumerate() {
        obj.add_term(vars[j], c as f64);
    }
    let dir = if milp.maximize { Objective::Maximize } else { Objective::Minimize };
    m.set_objective(dir, obj);
    (m, vars)
}

/// Whether one 0/1 assignment satisfies every row of `milp`.
pub fn satisfies_rows(milp: &RandomMilp, x: &[f64]) -> bool {
    milp.rows.iter().all(|(coeffs, sense, rhs)| {
        let lhs: f64 = coeffs.iter().zip(x).map(|(&c, &v)| c as f64 * v).sum();
        match sense {
            0 => lhs <= *rhs as f64 + 1e-9,
            1 => lhs >= *rhs as f64 - 1e-9,
            _ => (lhs - *rhs as f64).abs() <= 1e-9,
        }
    })
}

/// The objective of one assignment on the user scale.
pub fn objective_of(milp: &RandomMilp, x: &[f64]) -> f64 {
    milp.obj.iter().zip(x).map(|(&c, &v)| c as f64 * v).sum()
}

/// Every feasible 0/1 assignment of `milp`, in mask order.
pub fn feasible_points(milp: &RandomMilp) -> Vec<Vec<f64>> {
    (0u32..(1 << milp.n))
        .map(|mask| (0..milp.n).map(|j| ((mask >> j) & 1) as f64).collect::<Vec<f64>>())
        .filter(|x| satisfies_rows(milp, x))
        .collect()
}

/// Enumerates all 2^n assignments; returns the best objective if feasible.
pub fn brute_force(milp: &RandomMilp) -> Option<f64> {
    feasible_points(milp).into_iter().map(|x| objective_of(milp, &x)).reduce(|a, b| {
        if milp.maximize {
            a.max(b)
        } else {
            a.min(b)
        }
    })
}

/// Proptest strategy over small random all-binary MILPs.
pub fn random_milp() -> impl Strategy<Value = RandomMilp> {
    (2usize..=9, any::<bool>()).prop_flat_map(|(n, maximize)| {
        let obj = proptest::collection::vec(-9i32..=9, n);
        let row = (proptest::collection::vec(-5i32..=5, n), 0u8..=2, -8i32..=12);
        let rows = proptest::collection::vec(row, 1..=5);
        (obj, rows).prop_map(move |(obj, rows)| RandomMilp { n, obj, maximize, rows })
    })
}

/// A random bounded instance, continuous or all-integer: the fixture of the
/// kernel- and pricing-equivalence suites.
#[derive(Debug, Clone)]
pub struct RandomLp {
    pub n: usize,
    pub obj: Vec<i32>,
    pub maximize: bool,
    pub bounds: Vec<(i32, i32)>,
    pub integral: bool,
    /// Rows as (coeffs, sense code 0=Le/1=Ge/2=Eq, rhs).
    pub rows: Vec<(Vec<i32>, u8, i32)>,
}

/// Builds the [`Model`] for a [`RandomLp`].
pub fn build_bounded(lp: &RandomLp) -> Model {
    let mut m = Model::new("rand");
    let vars: Vec<_> = (0..lp.n)
        .map(|i| {
            let (lo, hi) = lp.bounds[i];
            let (lo, hi) = (lo.min(hi) as f64, lo.max(hi) as f64);
            if lp.integral {
                m.integer(format!("x{i}"), lo, hi).unwrap()
            } else {
                m.continuous(format!("x{i}"), lo, hi).unwrap()
            }
        })
        .collect();
    for (r, (coeffs, sense, rhs)) in lp.rows.iter().enumerate() {
        let mut e = LinExpr::new();
        for (j, &c) in coeffs.iter().enumerate() {
            if c != 0 {
                e.add_term(vars[j], c as f64);
            }
        }
        let sense = match sense {
            0 => ConstraintSense::Le,
            1 => ConstraintSense::Ge,
            _ => ConstraintSense::Eq,
        };
        m.add_constraint(format!("r{r}"), e, sense, *rhs as f64);
    }
    let mut obj = LinExpr::new();
    for (j, &c) in lp.obj.iter().enumerate() {
        obj.add_term(vars[j], c as f64);
    }
    let dir = if lp.maximize { Objective::Maximize } else { Objective::Minimize };
    m.set_objective(dir, obj);
    m
}

/// Proptest strategy over small bounded instances.
pub fn random_bounded(integral: bool) -> impl Strategy<Value = RandomLp> {
    (2usize..=8, any::<bool>()).prop_flat_map(move |(n, maximize)| {
        let obj = proptest::collection::vec(-9i32..=9, n);
        let bounds = proptest::collection::vec((-4i32..=4, -4i32..=6), n);
        let row = (proptest::collection::vec(-5i32..=5, n), 0u8..=2, -10i32..=14);
        let rows = proptest::collection::vec(row, 1..=5);
        (obj, bounds, rows).prop_map(move |(obj, bounds, rows)| RandomLp {
            n,
            obj,
            maximize,
            bounds,
            integral,
            rows,
        })
    })
}

/// A strongly correlated knapsack: profits hug the weights, so the LP bound
/// is tight everywhere and branch and bound must grind through many nodes.
pub fn hard_knapsack(items: usize) -> Model {
    let mut m = Model::new("hard-knapsack");
    let mut weight = LinExpr::new();
    let mut value = LinExpr::new();
    let mut total = 0.0;
    for i in 0..items {
        let w = 97.0 + ((i as f64) * 37.0) % 53.0;
        let x = m.binary(format!("x{i}"));
        weight.add_term(x, w);
        value.add_term(x, w + 10.0);
        total += w;
    }
    m.add_le("cap", weight, (total / 2.0).floor());
    m.set_objective(Objective::Maximize, value);
    m
}

/// A small knapsack-style MILP over general integers with a non-trivial
/// tree.
pub fn tree_model() -> Model {
    let mut m = Model::new("tree");
    let mut weight = LinExpr::new();
    let mut value = LinExpr::new();
    for (i, (w, v)) in [(3.0, 7.0), (5.0, 9.0), (7.0, 12.0), (4.0, 6.0), (6.0, 11.0), (2.0, 3.0)]
        .into_iter()
        .enumerate()
    {
        let x = m.integer(format!("x{i}"), 0.0, 3.0).unwrap();
        weight.add_term(x, w);
        value.add_term(x, v);
    }
    m.add_le("cap", weight, 17.0);
    m.set_objective(Objective::Maximize, value);
    m
}

/// An easy model that still branches a little.
pub fn small_mip() -> Model {
    let mut m = Model::new("small");
    let mut obj = LinExpr::new();
    let mut row = LinExpr::new();
    for i in 0..8 {
        let x = m.binary(format!("x{i}"));
        obj.add_term(x, 1.0 + (i as f64) * 0.37);
        row.add_term(x, 2.0 + (i as f64) * 0.71);
    }
    m.add_le("cap", row, 11.0);
    m.set_objective(Objective::Maximize, obj);
    m
}

/// Collects every emitted event into a shared vector.
pub fn recording_observer() -> (Arc<Mutex<Vec<SolverEvent>>>, Arc<dyn Observer>) {
    let events = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&events);
    let obs: Arc<dyn Observer> =
        Arc::new(move |e: &SolverEvent| sink.lock().unwrap().push(e.clone()));
    (events, obs)
}
