//! Symmetry breaking and reliability branching against enumeration.
//!
//! The symmetry proptests build models with a *known* symmetry group (two
//! relabeled copies of a random binary MILP, swapped by the candidate
//! permutation) and check the lex-leader rows plus orbital fixing never cut
//! off the optimum the brute-force oracle finds. The reliability proptests
//! run the plain random generator: strong-branching probes only reshape the
//! tree, so the proven optimum must match enumeration exactly.

mod common;

use common::{brute_force, build_binary, random_milp, recording_observer, RandomMilp};
use ndp_milp::{BranchRule, LinExpr, Model, Objective, SolveStatus, SolverOptions};
use proptest::prelude::*;

/// Two relabeled copies of `milp` plus a symmetric coupling row; the swap
/// `a_i ↔ b_i` is a model symmetry by construction. Returns the model and
/// the candidate column permutation.
fn mirrored(milp: &RandomMilp) -> (Model, Vec<Vec<usize>>) {
    let n = milp.n;
    let mut m = Model::new("mirrored");
    let a: Vec<_> = (0..n).map(|i| m.binary(format!("a{i}"))).collect();
    let b: Vec<_> = (0..n).map(|i| m.binary(format!("b{i}"))).collect();
    for (r, (coeffs, sense, rhs)) in milp.rows.iter().enumerate() {
        for (tag, vars) in [("a", &a), ("b", &b)] {
            let mut e = LinExpr::new();
            for (j, &c) in coeffs.iter().enumerate() {
                if c != 0 {
                    e.add_term(vars[j], c as f64);
                }
            }
            match sense {
                0 => m.add_le(format!("{tag}{r}"), e, *rhs as f64),
                1 => m.add_ge(format!("{tag}{r}"), e, *rhs as f64),
                _ => m.add_eq(format!("{tag}{r}"), e, *rhs as f64),
            };
        }
    }
    // A coupling row invariant under the swap, so the copies are not just
    // two independent blocks.
    let mut all = LinExpr::new();
    for &v in a.iter().chain(&b) {
        all.add_term(v, 1.0);
    }
    m.add_le("couple", all, (n + n / 2) as f64);
    let mut obj = LinExpr::new();
    for (j, &c) in milp.obj.iter().enumerate() {
        obj.add_term(a[j], c as f64);
        obj.add_term(b[j], c as f64);
    }
    let dir = if milp.maximize { Objective::Maximize } else { Objective::Minimize };
    m.set_objective(dir, obj);
    let perm: Vec<usize> = (0..2 * n).map(|j| if j < n { j + n } else { j - n }).collect();
    (m, vec![perm])
}

/// Brute-force oracle for the mirrored model: best objective over all
/// feasible `(x_a, x_b)` pairs under the per-copy rows and the coupling row.
fn mirrored_brute_force(milp: &RandomMilp) -> Option<f64> {
    let n = milp.n;
    let cap = (n + n / 2) as f64;
    let points: Vec<Vec<f64>> = (0u32..(1 << n))
        .map(|mask| (0..n).map(|j| ((mask >> j) & 1) as f64).collect::<Vec<f64>>())
        .filter(|x| common::satisfies_rows(milp, x))
        .collect();
    let mut best: Option<f64> = None;
    for xa in &points {
        for xb in &points {
            let total: f64 = xa.iter().chain(xb).sum();
            if total > cap + 1e-9 {
                continue;
            }
            let v = common::objective_of(milp, xa) + common::objective_of(milp, xb);
            best = Some(match best {
                None => v,
                Some(b) if milp.maximize => b.max(v),
                Some(b) => b.min(v),
            });
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lex rows + orbital fixing must never cut off all optima: the proven
    /// optimum of the symmetric model equals enumeration.
    #[test]
    fn symmetry_preserves_the_optimum(milp in random_milp()) {
        let (model, cands) = mirrored(&milp);
        let opts = SolverOptions::default()
            .presolve(false)
            .threads(1)
            .symmetry_candidates(cands);
        let sol = model.solve_with(&opts).unwrap();
        match mirrored_brute_force(&milp) {
            Some(best) => {
                prop_assert_eq!(sol.status(), SolveStatus::Optimal);
                prop_assert!((sol.objective_value() - best).abs() <= 1e-6,
                    "solver {} vs enumeration {}", sol.objective_value(), best);
            }
            None => prop_assert_eq!(sol.status(), SolveStatus::Infeasible),
        }
    }

    /// Reliability branching is a tree-shaping change only: the proven
    /// optimum on plain random instances equals enumeration.
    #[test]
    fn reliability_matches_enumeration(milp in random_milp()) {
        let (model, _) = build_binary(&milp);
        let opts = SolverOptions::default()
            .branch_rule(BranchRule::Reliability)
            .threads(1);
        let sol = model.solve_with(&opts).unwrap();
        match brute_force(&milp) {
            Some(best) => {
                prop_assert_eq!(sol.status(), SolveStatus::Optimal);
                prop_assert!((sol.objective_value() - best).abs() <= 1e-6,
                    "solver {} vs enumeration {}", sol.objective_value(), best);
            }
            None => prop_assert_eq!(sol.status(), SolveStatus::Infeasible),
        }
    }
}

/// A fixed symmetric instance solved twice with both features on must emit
/// bit-for-bit identical event streams under `threads = 1`.
#[test]
fn serial_event_stream_is_deterministic_with_symmetry_and_reliability() {
    let milp = RandomMilp {
        n: 5,
        obj: vec![5, -3, 2, 7, -1],
        maximize: true,
        rows: vec![(vec![2, 3, 1, 4, 2], 0, 6), (vec![1, -1, 2, 1, 3], 1, -2)],
    };
    let run = || {
        let (model, cands) = mirrored(&milp);
        let (events, obs) = recording_observer();
        let opts = SolverOptions::default()
            .presolve(false)
            .threads(1)
            .branch_rule(BranchRule::Reliability)
            .symmetry_candidates(cands)
            .observer(obs);
        let sol = model.solve_with(&opts).unwrap();
        let evs = events.lock().unwrap().clone();
        (sol.objective_value(), sol.node_count(), evs)
    };
    let (obj1, nodes1, ev1) = run();
    let (obj2, nodes2, ev2) = run();
    assert_eq!(obj1, obj2);
    assert_eq!(nodes1, nodes2);
    assert_eq!(ev1.len(), ev2.len(), "event counts differ");
    for (a, b) in ev1.iter().zip(&ev2) {
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "event streams diverge");
    }
}

/// The symmetry machinery reports its work: orbits detected, lex rows
/// installed (via the event) and — on a model this symmetric — fixings or
/// at least a verified group.
#[test]
fn symmetry_stats_and_event_are_reported() {
    let milp = RandomMilp {
        n: 4,
        obj: vec![3, 5, 2, 4],
        maximize: true,
        rows: vec![(vec![2, 3, 2, 1], 0, 5)],
    };
    let (model, cands) = mirrored(&milp);
    let (events, obs) = recording_observer();
    let opts = SolverOptions::default()
        .presolve(false)
        .threads(1)
        .symmetry_candidates(cands)
        .observer(obs);
    let sol = model.solve_with(&opts).unwrap();
    assert_eq!(sol.status(), SolveStatus::Optimal);
    assert!(sol.stats().symmetry_orbits > 0, "swap symmetry should verify");
    let evs = events.lock().unwrap();
    let detected = evs.iter().any(|e| {
        matches!(e, ndp_milp::SolverEvent::SymmetryDetected { generators, rows, .. }
            if *generators == 1 && *rows == 1)
    });
    assert!(detected, "SymmetryDetected event missing: {evs:?}");
}

/// Ablation flags really disable the machinery.
#[test]
fn symmetry_flags_disable_cleanly() {
    let milp = RandomMilp {
        n: 4,
        obj: vec![3, 5, 2, 4],
        maximize: true,
        rows: vec![(vec![2, 3, 2, 1], 0, 5)],
    };
    let (model, cands) = mirrored(&milp);
    let (events, obs) = recording_observer();
    let opts = SolverOptions::default()
        .presolve(false)
        .threads(1)
        .symmetry_candidates(cands)
        .symmetry_breaking(false)
        .orbital_fixing(false)
        .observer(obs);
    let sol = model.solve_with(&opts).unwrap();
    assert_eq!(sol.status(), SolveStatus::Optimal);
    assert_eq!(sol.stats().symmetry_orbits, 0);
    assert_eq!(sol.stats().orbital_fixings, 0);
    let evs = events.lock().unwrap();
    assert!(
        !evs.iter().any(|e| matches!(e, ndp_milp::SolverEvent::SymmetryDetected { .. })),
        "no symmetry event expected with both flags off"
    );
}
