//! Model symmetry: exact verification of candidate column permutations,
//! group closure, lexicographic symmetry-breaking rows and node-level lex
//! (orbital) propagation.
//!
//! The deployment MILPs place tasks on *identical* DVFS cores, so mesh
//! automorphisms induce column permutations that map optima to optima. The
//! encoding layer lifts those automorphisms to *candidate* permutations
//! ([`crate::SolverOptions::symmetry_candidates`]); this module trusts none
//! of them. Every candidate is checked **exactly** against the model —
//! objective coefficients, variable bounds/kinds/branch priorities bitwise
//! equal under the permutation, and the constraint multiset invariant — so
//! a candidate broken by per-link jitter, faulted-core restrictions or a
//! stale lift is rejected instead of corrupting the search. Verified
//! survivors are closed into a group (capped), which is then used two ways:
//!
//! * **Lex-leader rows** ([`SymmetryPlan::lex_cuts`]): for each group
//!   element `σ`, a root row `Σ_t 2^(K−t) (x_{j_t} − x_{σ(j_t)}) ≥ 0` over
//!   the first `K ≤ 16` *binary* columns moved by `σ` (ascending). The row
//!   is implied by the lexicographic order `x ⪰ σ·x`, which the
//!   lex-greatest element of every solution orbit satisfies for all group
//!   elements — so at least one optimum always survives.
//! * **Lex propagation** ([`propagate_lex`]): the node-level fixpoint of
//!   the same constraints. While a prefix is forced equal position by
//!   position, a `x_{j_t}` fixed to 0 forces `x_{σ(j_t)} = 0` (and a
//!   `x_{σ(j_t)}` fixed to 1 forces `x_{j_t} = 1`); a forced `0 < 1`
//!   violation fathoms the node. Sound with or without the rows installed,
//!   because both are relaxations of the same lex-leader condition.
//!
//! Deliberately **not** implemented: stabilizer-orbit down-fixing ("fix the
//! whole orbit to 0 when one member is fixed to 0"), which is unsound in
//! combination with lex rows — the two can disagree on which orbit
//! representative survives and cut off *all* optima.

use crate::cuts::{Cut, CutFamily, CutSense, CutValidity};
use crate::model::{Model, VarKind};

/// Ceiling on the closed group size. The mesh groups this targets are tiny
/// (D4 has 8 elements); the cap only guards against adversarial candidate
/// sets whose closure explodes. Exceeding it falls back to the verified
/// generators themselves, which remain individually valid.
const MAX_GROUP: usize = 64;

/// Ceiling on the lex prefix length per group element, keeping the largest
/// row coefficient at `2^15`.
const MAX_PREFIX: usize = 16;

/// The verified symmetry structure of one model, ready for row generation
/// and node propagation.
#[derive(Debug, Clone)]
pub(crate) struct SymmetryPlan {
    /// Verified non-identity group elements (after closure).
    pub(crate) generators: usize,
    /// Nontrivial integer-column orbits under the group.
    pub(crate) orbits: u64,
    /// Per group element: the lex prefix as `(j_t, σ(j_t))` pairs over the
    /// binary columns moved by `σ`, ascending in `j_t`, capped at
    /// [`MAX_PREFIX`]. Elements that move no binary column contribute no
    /// entry.
    pub(crate) pairs: Vec<Vec<(usize, usize)>>,
}

impl SymmetryPlan {
    /// Builds the lex-leader symmetry-breaking rows, one per group element
    /// with a nonempty binary prefix. Rows are `≥ 0` with power-of-two
    /// coefficients; terms cancelled by prefix overlap are dropped.
    pub(crate) fn lex_cuts(&self) -> Vec<Cut> {
        let mut cuts = Vec::with_capacity(self.pairs.len());
        for prefix in &self.pairs {
            let k = prefix.len();
            let mut acc: std::collections::BTreeMap<usize, f64> = std::collections::BTreeMap::new();
            for (t, &(a, b)) in prefix.iter().enumerate() {
                let w = (1u64 << (k - 1 - t)) as f64;
                *acc.entry(a).or_insert(0.0) += w;
                *acc.entry(b).or_insert(0.0) -= w;
            }
            let coeffs: Vec<(usize, f64)> = acc.into_iter().filter(|&(_, c)| c != 0.0).collect();
            if coeffs.is_empty() {
                continue;
            }
            cuts.push(Cut {
                coeffs,
                rhs: 0.0,
                sense: CutSense::Ge,
                family: CutFamily::Symmetry,
                validity: CutValidity::Global,
            });
        }
        cuts
    }
}

/// Verifies the candidates against `model`, closes the survivors into a
/// group, and derives prefixes and orbit counts. `root_bounds` are the
/// solver's inward-rounded root bounds (binary columns are those integer
/// columns whose root box is exactly `[0, 1]`). Returns `None` when no
/// candidate survives or no element moves a binary column.
pub(crate) fn build_plan(
    model: &Model,
    candidates: &[Vec<usize>],
    root_bounds: &[(f64, f64)],
) -> Option<SymmetryPlan> {
    let n = model.num_vars();
    let verified: Vec<Vec<usize>> = candidates
        .iter()
        .filter(|p| is_permutation(p, n) && !is_identity(p) && model_invariant(model, p))
        .cloned()
        .collect();
    if verified.is_empty() {
        return None;
    }
    let group = close_group(verified);

    let binary: Vec<bool> = (0..n)
        .map(|j| model.vars[j].kind != VarKind::Continuous && root_bounds[j] == (0.0, 1.0))
        .collect();
    let mut pairs = Vec::new();
    for p in &group {
        let prefix: Vec<(usize, usize)> = (0..n)
            .filter(|&j| p[j] != j && binary[j])
            .take(MAX_PREFIX)
            .map(|j| (j, p[j]))
            .collect();
        if !prefix.is_empty() {
            pairs.push(prefix);
        }
    }
    if pairs.is_empty() {
        return None;
    }

    // Union-find over integer columns to count nontrivial orbits.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut j: usize) -> usize {
        while parent[j] != j {
            parent[j] = parent[parent[j]];
            j = parent[j];
        }
        j
    }
    for p in &group {
        for (j, &pj) in p.iter().enumerate().take(n) {
            if pj != j && model.vars[j].kind != VarKind::Continuous {
                let (a, b) = (find(&mut parent, j), find(&mut parent, pj));
                if a != b {
                    parent[a] = b;
                }
            }
        }
    }
    let mut orbit_size = std::collections::HashMap::new();
    for j in 0..n {
        if model.vars[j].kind != VarKind::Continuous {
            *orbit_size.entry(find(&mut parent, j)).or_insert(0u64) += 1;
        }
    }
    let orbits = orbit_size.values().filter(|&&s| s >= 2).count() as u64;

    Some(SymmetryPlan { generators: group.len(), orbits, pairs })
}

fn is_permutation(p: &[usize], n: usize) -> bool {
    if p.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &img in p {
        if img >= n || seen[img] {
            return false;
        }
        seen[img] = true;
    }
    true
}

fn is_identity(p: &[usize]) -> bool {
    p.iter().enumerate().all(|(j, &img)| img == j)
}

/// Exact model invariance under `σ`: objective coefficients, variable
/// bounds, kinds and branch priorities bit-equal at permuted positions, and
/// the multiset of constraint rows invariant under relabeling every term
/// index `j ↦ σ(j)`. Bit equality (not tolerance) keeps the check free of
/// false positives; a jittered instance simply yields no symmetry.
fn model_invariant(model: &Model, p: &[usize]) -> bool {
    let n = model.num_vars();
    let mut c = vec![0.0f64; n];
    for (v, coeff) in model.objective.iter() {
        c[v.index()] = coeff;
    }
    for j in 0..n {
        let (a, b) = (&model.vars[j], &model.vars[p[j]]);
        if c[j].to_bits() != c[p[j]].to_bits()
            || a.kind != b.kind
            || a.lb.to_bits() != b.lb.to_bits()
            || a.ub.to_bits() != b.ub.to_bits()
            || a.branch_priority != b.branch_priority
        {
            return false;
        }
    }
    // Hash each row as (sense, rhs bits, constant bits, sorted term list);
    // the permuted key relabels term indices. Row names are metadata and
    // excluded deliberately.
    type RowKey = (u8, u64, u64, Vec<(usize, u64)>);
    let key = |relabel: &dyn Fn(usize) -> usize| -> Vec<RowKey> {
        let mut keys: Vec<RowKey> = model
            .rows
            .iter()
            .map(|r| {
                let mut terms: Vec<(usize, u64)> =
                    r.expr.iter().map(|(v, coeff)| (relabel(v.index()), coeff.to_bits())).collect();
                terms.sort_unstable();
                (r.sense as u8, r.rhs.to_bits(), r.expr.constant().to_bits(), terms)
            })
            .collect();
        keys.sort_unstable();
        keys
    };
    key(&|j| j) == key(&|j| p[j])
}

/// Closes `perms` under composition, capped at [`MAX_GROUP`] elements. The
/// identity is excluded from the result. Falling short of the full group
/// (cap reached) is safe: lex rows and propagation are valid for any subset
/// of a group's elements.
fn close_group(perms: Vec<Vec<usize>>) -> Vec<Vec<usize>> {
    let mut group: Vec<Vec<usize>> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let mut queue: std::collections::VecDeque<Vec<usize>> = perms.into();
    while let Some(p) = queue.pop_front() {
        if is_identity(&p) || !seen.insert(p.clone()) {
            continue;
        }
        group.push(p.clone());
        if group.len() >= MAX_GROUP {
            break;
        }
        let snapshot: Vec<Vec<usize>> = group.clone();
        for q in &snapshot {
            // Both composition orders, so the closure walks the whole group.
            queue.push_back(p.iter().map(|&j| q[j]).collect());
            queue.push_back(q.iter().map(|&j| p[j]).collect());
        }
    }
    group
}

/// Node-level lex propagation over scratch bounds (structural columns).
/// Runs the fixpoint of every prefix; appends `(column, value)` fixings it
/// derives to `fixed` and mutates `lb`/`ub` in place. Returns `false` when
/// a prefix is provably violated (the node fathoms).
pub(crate) fn propagate_lex(
    pairs: &[Vec<(usize, usize)>],
    lb: &mut [f64],
    ub: &mut [f64],
    fixed: &mut Vec<(usize, f64)>,
) -> bool {
    loop {
        let mut changed = false;
        for prefix in pairs {
            for &(a, b) in prefix {
                let a0 = ub[a] < 0.5; // fixed to 0
                let a1 = lb[a] > 0.5; // fixed to 1
                let b0 = ub[b] < 0.5;
                let b1 = lb[b] > 0.5;
                if a1 && b0 {
                    // Strict `1 > 0` at the first open position: the whole
                    // constraint is satisfied, nothing further to infer.
                    break;
                }
                if a0 && b1 {
                    // Forced `0 < 1` with the prefix equal so far: violated.
                    return false;
                }
                if a0 && !b0 {
                    // Need `x_b ≤ x_a = 0` at the first difference.
                    ub[b] = 0.0;
                    fixed.push((b, 0.0));
                    changed = true;
                    continue; // both 0 now: position equal, keep scanning
                }
                if b1 && !a1 {
                    // Need `x_a ≥ x_b = 1` at the first difference.
                    lb[a] = 1.0;
                    fixed.push((a, 1.0));
                    changed = true;
                    continue;
                }
                if (a0 && b0) || (a1 && b1) {
                    continue; // position forced equal: scan further
                }
                break; // undetermined position: no inference past it
            }
        }
        if !changed {
            return true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinExpr, Objective};

    /// `m` binary variables with symmetric objective and one cover row —
    /// fully symmetric under any permutation.
    fn symmetric_model(m: usize) -> Model {
        let mut model = Model::new("sym");
        let vars: Vec<_> = (0..m).map(|i| model.binary(format!("x{i}"))).collect();
        let mut cover = LinExpr::new();
        let mut obj = LinExpr::new();
        for &v in &vars {
            cover.add_term(v, 1.0);
            obj.add_term(v, 2.5);
        }
        model.add_ge("cover", cover, (m as f64 / 2.0).floor());
        model.set_objective(Objective::Minimize, obj);
        model
    }

    fn unit_bounds(n: usize) -> Vec<(f64, f64)> {
        vec![(0.0, 1.0); n]
    }

    #[test]
    fn verifies_symmetric_swap_and_rejects_asymmetric() {
        let model = symmetric_model(3);
        let plan = build_plan(&model, &[vec![1, 0, 2]], &unit_bounds(3)).expect("swap must verify");
        assert_eq!(plan.generators, 1);
        assert_eq!(plan.orbits, 1);

        // Break the symmetry with an asymmetric objective coefficient.
        let mut asym = Model::new("asym");
        let a = asym.binary("a");
        let b = asym.binary("b");
        asym.add_ge("r", LinExpr::term(a, 1.0) + LinExpr::term(b, 1.0), 1.0);
        asym.set_objective(Objective::Minimize, LinExpr::term(a, 1.0) + LinExpr::term(b, 2.0));
        assert!(build_plan(&asym, &[vec![1, 0]], &unit_bounds(2)).is_none());
    }

    #[test]
    fn rejects_malformed_candidates() {
        let model = symmetric_model(3);
        let bounds = unit_bounds(3);
        assert!(build_plan(&model, &[vec![0, 1]], &bounds).is_none(), "wrong length");
        assert!(build_plan(&model, &[vec![0, 0, 1]], &bounds).is_none(), "not a bijection");
        assert!(build_plan(&model, &[vec![0, 1, 2]], &bounds).is_none(), "identity is trivial");
    }

    #[test]
    fn rejects_candidate_broken_by_bound_restriction() {
        let mut model = symmetric_model(3);
        // Fault core 1: its column is pinned to 0, so the swap 0↔1 no
        // longer preserves the model.
        model.vars[1].ub = 0.0;
        assert!(build_plan(&model, &[vec![1, 0, 2]], &unit_bounds(3)).is_none());
    }

    #[test]
    fn closure_generates_full_symmetric_group() {
        let model = symmetric_model(3);
        // Two transpositions generate S3 (6 elements, 5 without identity).
        let plan = build_plan(&model, &[vec![1, 0, 2], vec![0, 2, 1]], &unit_bounds(3)).unwrap();
        assert_eq!(plan.generators, 5);
        assert_eq!(plan.orbits, 1);
    }

    #[test]
    fn lex_cut_has_power_of_two_weights() {
        let model = symmetric_model(4);
        // One 4-cycle: 0→1→2→3→0 moves all four binaries.
        let plan = build_plan(&model, &[vec![1, 2, 3, 0]], &unit_bounds(4)).unwrap();
        let cut = &plan.lex_cuts()[0];
        assert_eq!(cut.sense, CutSense::Ge);
        assert_eq!(cut.rhs, 0.0);
        assert_eq!(cut.family, CutFamily::Symmetry);
        // Prefix (0,1),(1,2),(2,3),(3,0): weights 8,4,2,1 accumulate to
        // 8−1 on x0, 4−8 on x1, 2−4 on x2, 1−2 on x3.
        assert_eq!(cut.coeffs, vec![(0, 7.0), (1, -4.0), (2, -2.0), (3, -1.0)]);
    }

    #[test]
    fn lex_propagation_fixes_and_fathoms() {
        // Single swap prefix (0, 1): constraint x0 ≥ x1.
        let pairs = vec![vec![(0usize, 1usize)]];
        let mut lb = vec![0.0, 0.0];
        let mut ub = vec![0.0, 1.0]; // x0 fixed 0, x1 free
        let mut fixed = Vec::new();
        assert!(propagate_lex(&pairs, &mut lb, &mut ub, &mut fixed));
        assert_eq!(fixed, vec![(1, 0.0)], "x1 must be forced to 0");
        assert_eq!(ub[1], 0.0);

        // x1 fixed 1 forces x0 = 1.
        let (mut lb, mut ub) = (vec![0.0, 1.0], vec![1.0, 1.0]);
        let mut fixed = Vec::new();
        assert!(propagate_lex(&pairs, &mut lb, &mut ub, &mut fixed));
        assert_eq!(fixed, vec![(0, 1.0)]);

        // x0 fixed 0 and x1 fixed 1: infeasible.
        let (mut lb, mut ub) = (vec![0.0, 1.0], vec![0.0, 1.0]);
        let mut fixed = Vec::new();
        assert!(!propagate_lex(&pairs, &mut lb, &mut ub, &mut fixed));
    }

    #[test]
    fn lex_propagation_chains_across_prefixes() {
        // x0 ≥ x1 and x1 ≥ x2: fixing x2 = 1 forces x1 = 1 then x0 = 1.
        let pairs = vec![vec![(0usize, 1usize)], vec![(1usize, 2usize)]];
        let mut lb = vec![0.0, 0.0, 1.0];
        let mut ub = vec![1.0, 1.0, 1.0];
        let mut fixed = Vec::new();
        assert!(propagate_lex(&pairs, &mut lb, &mut ub, &mut fixed));
        assert_eq!(lb, vec![1.0, 1.0, 1.0], "the chain must reach x0");
    }

    /// The solver with lex rows + propagation on a symmetric model must
    /// still reach the brute-force optimum (symmetry never cuts off all
    /// optima).
    #[test]
    fn symmetric_solve_matches_enumeration() {
        let m = 5;
        let model = symmetric_model(m);
        let candidates: Vec<Vec<usize>> = vec![
            // A transposition and a cycle generate the full S5.
            {
                let mut p: Vec<usize> = (0..m).collect();
                p.swap(0, 1);
                p
            },
            (0..m).map(|j| (j + 1) % m).collect(),
        ];
        let opts = crate::SolverOptions::default()
            .threads(1)
            .presolve(false)
            .symmetry_candidates(candidates);
        let sol = model.solve_with(&opts).unwrap();
        assert_eq!(sol.status(), crate::SolveStatus::Optimal);
        // Optimum by hand: pick floor(5/2) = 2 vars at cost 2.5 each.
        assert!((sol.objective_value() - 5.0).abs() < 1e-6);
    }
}
