//! Sparse LU factorization of the simplex basis with product-form updates.
//!
//! The deployment MILPs this solver targets produce very sparse bases
//! (precedence rows, big-M non-overlap rows and Lemma-2.2 envelope rows each
//! touch a handful of columns), so the dense `m × m` inverse the simplex
//! historically carried wastes both memory (O(m²)) and time (O(m²) per
//! pivot, O(m³) per Gauss-Jordan refactorization). This module provides the
//! sparse replacement:
//!
//! * [`LuFactors::factorize`] — right-looking sparse Gaussian elimination
//!   with **Markowitz ordering** (pivot chosen to minimize
//!   `(r_i − 1)(c_j − 1)` fill-in over a small set of lowest-count candidate
//!   columns) under **threshold partial pivoting** (`|a_ij| ≥ τ·max|a_·j|`,
//!   bounding every L multiplier by `1/τ`).
//! * [`EtaFile`] — product-form updates: each basis exchange appends one eta
//!   vector instead of touching the factorization, so a pivot costs
//!   O(nnz(B⁻¹A_q)). The file length is capped by the caller
//!   (`SolverOptions::eta_limit`); exceeding it forces a refactorization.
//! * Sparse **FTRAN/BTRAN** solves that skip structural zeros, so the cost
//!   tracks the factor fill rather than `m²`.
//!
//! Factors are stored in *elimination-step* space: step `k` pivoted original
//! row `row_at[k]` and basis position `col_at[k]`. `L` is unit lower
//! triangular (diagonal implicit), `U` upper triangular, both column-major.

use crate::error::{MilpError, Result};
use crate::standard::{ColumnRef, StandardForm};

/// Threshold partial pivoting factor `τ`: an entry is an acceptable pivot
/// only if its magnitude is at least `τ` times the largest magnitude in its
/// column, which bounds every multiplier by `1/τ`.
const PIVOT_THRESHOLD: f64 = 0.1;
/// Absolute pivot magnitude floor; below this the basis is declared
/// singular (mirrors the dense kernel's `1e-11` Gauss-Jordan floor).
const PIVOT_FLOOR: f64 = 1e-11;
/// Eliminated fill-in smaller than this is dropped.
const DROP_TOL: f64 = 1e-14;
/// Number of lowest-count candidate columns scanned per Markowitz search.
const SEARCH_COLS: usize = 4;

/// A sparse LU factorization of one basis matrix.
#[derive(Debug, Clone, Default)]
pub(crate) struct LuFactors {
    m: usize,
    /// `row_at[k]` = original row eliminated at step `k`.
    row_at: Vec<usize>,
    /// `col_at[k]` = basis position eliminated at step `k`.
    col_at: Vec<usize>,
    /// `L` columns in step space: `l_cols[k]` holds `(step, multiplier)`
    /// with `step > k`; the unit diagonal is implicit.
    l_cols: Vec<Vec<(usize, f64)>>,
    /// `U` columns in step space: `u_cols[k]` holds `(step, value)` with
    /// `step < k`.
    u_cols: Vec<Vec<(usize, f64)>>,
    /// `U` diagonal by step.
    u_diag: Vec<f64>,
}

impl LuFactors {
    /// Factors of the identity basis (the all-slack start).
    pub fn identity(m: usize) -> Self {
        LuFactors {
            m,
            row_at: (0..m).collect(),
            col_at: (0..m).collect(),
            l_cols: vec![Vec::new(); m],
            u_cols: vec![Vec::new(); m],
            u_diag: vec![1.0; m],
        }
    }

    /// Total stored nonzeros in `L` and `U` (diagnostics).
    #[allow(dead_code)] // exercised in tests
    pub fn fill(&self) -> usize {
        self.l_cols.iter().map(Vec::len).sum::<usize>()
            + self.u_cols.iter().map(Vec::len).sum::<usize>()
            + self.m
    }

    /// Factorizes the basis `B = [A_{basis[0]} … A_{basis[m−1]}]`.
    ///
    /// # Errors
    ///
    /// Returns [`MilpError::SingularBasis`] when no acceptable pivot exists
    /// (a numerically empty column/row in the active submatrix).
    pub fn factorize(sf: &StandardForm, basis: &[usize]) -> Result<Self> {
        let m = basis.len();
        // Active submatrix, column-major over basis positions; entries keep
        // original row indices. `rows_touch[r]` lists the positions whose
        // column (may) hold an entry in row `r`.
        let mut acols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
        let mut rows_touch: Vec<Vec<usize>> = vec![Vec::new(); m];
        let mut rcount = vec![0usize; m];
        let mut ccount = vec![0usize; m];
        for (pos, &j) in basis.iter().enumerate() {
            let col: Vec<(usize, f64)> = match sf.column(j) {
                ColumnRef::Structural(nz) => nz.to_vec(),
                ColumnRef::Slack(r) => vec![(r, 1.0)],
            };
            for &(r, _) in &col {
                rcount[r] += 1;
                rows_touch[r].push(pos);
            }
            ccount[pos] = col.len();
            acols.push(col);
        }

        let mut row_alive = vec![true; m];
        let mut col_alive = vec![true; m];
        let mut row_step = vec![usize::MAX; m]; // original row -> step
        let mut row_at = Vec::with_capacity(m);
        let mut col_at = Vec::with_capacity(m);
        let mut l_raw: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m); // original-row space
        let mut u_by_pos: Vec<Vec<(usize, f64)>> = vec![Vec::new(); m]; // (step, value)
        let mut u_diag = Vec::with_capacity(m);
        // Dense scratch: marker[r] = position+1 of row r in the column being
        // updated (0 = absent).
        let mut marker = vec![0usize; m];

        for step in 0..m {
            // --- Markowitz pivot search over low-count candidate columns ---
            let mut cand = [usize::MAX; SEARCH_COLS];
            for (c, _) in col_alive.iter().enumerate().filter(|&(_, &alive)| alive) {
                // Insertion into the fixed-size best-count list.
                let mut hold = c;
                for slot in cand.iter_mut() {
                    if *slot == usize::MAX || ccount[hold] < ccount[*slot] {
                        std::mem::swap(&mut hold, slot);
                        if hold == usize::MAX {
                            break;
                        }
                    }
                }
            }
            let mut best: Option<(usize, usize, f64, u64)> = None; // (row, col, val, cost)
            for &c in cand.iter().take_while(|&&c| c != usize::MAX) {
                // Compact: drop dead rows and numerically vanished entries.
                acols[c].retain(|&(r, v)| {
                    if !row_alive[r] {
                        return false;
                    }
                    if v.abs() < DROP_TOL {
                        rcount[r] -= 1;
                        return false;
                    }
                    true
                });
                ccount[c] = acols[c].len();
                let colmax = acols[c].iter().map(|&(_, v)| v.abs()).fold(0.0, f64::max);
                if colmax < PIVOT_FLOOR {
                    // An alive column with no usable entry can never pivot.
                    return Err(MilpError::SingularBasis);
                }
                for &(r, v) in &acols[c] {
                    if v.abs() < PIVOT_THRESHOLD * colmax || v.abs() < PIVOT_FLOOR {
                        continue;
                    }
                    let cost = (rcount[r] as u64 - 1) * (ccount[c] as u64 - 1);
                    let better = match best {
                        None => true,
                        Some((_, _, bv, bc)) => cost < bc || (cost == bc && v.abs() > bv.abs()),
                    };
                    if better {
                        best = Some((r, c, v, cost));
                    }
                }
            }
            let Some((pr, pc, pv, _)) = best else {
                return Err(MilpError::SingularBasis);
            };

            // --- Eliminate pivot (pr, pc) ---
            row_at.push(pr);
            col_at.push(pc);
            row_step[pr] = step;
            u_diag.push(pv);
            col_alive[pc] = false;
            row_alive[pr] = false;
            // The pivot column leaves the active submatrix.
            let mut mult: Vec<(usize, f64)> = Vec::new();
            for &(r, v) in &acols[pc] {
                rcount[r] = rcount[r].saturating_sub(1);
                if r != pr {
                    mult.push((r, v / pv));
                }
            }
            acols[pc].clear();

            // Update every alive column holding the pivot row.
            let touched = std::mem::take(&mut rows_touch[pr]);
            for &c in &touched {
                if !col_alive[c] {
                    continue;
                }
                let Some(pos) = acols[c].iter().position(|&(r, _)| r == pr) else {
                    continue; // stale reference (entry dropped earlier)
                };
                let (_, vpc) = acols[c].swap_remove(pos);
                ccount[c] = ccount[c].saturating_sub(1);
                u_by_pos[c].push((step, vpc));
                if mult.is_empty() || vpc == 0.0 {
                    continue;
                }
                // Scatter `col_c ← col_c − vpc · mult` with a dense marker.
                for (p, &(r, _)) in acols[c].iter().enumerate() {
                    marker[r] = p + 1;
                }
                for &(r, l) in &mult {
                    let delta = -l * vpc;
                    match marker[r] {
                        0 => {
                            if delta.abs() >= DROP_TOL && row_alive[r] {
                                acols[c].push((r, delta));
                                ccount[c] += 1;
                                rcount[r] += 1;
                                rows_touch[r].push(c);
                            }
                        }
                        p => acols[c][p - 1].1 += delta,
                    }
                }
                for &(r, _) in &acols[c] {
                    marker[r] = 0;
                }
            }
            l_raw.push(mult);
        }

        // Re-index L into step space and U into elimination order.
        let l_cols: Vec<Vec<(usize, f64)>> = l_raw
            .into_iter()
            .map(|col| col.into_iter().map(|(r, v)| (row_step[r], v)).collect())
            .collect();
        let u_cols: Vec<Vec<(usize, f64)>> =
            col_at.iter().map(|&pos| std::mem::take(&mut u_by_pos[pos])).collect();

        Ok(LuFactors { m, row_at, col_at, l_cols, u_cols, u_diag })
    }

    /// Solves `B x = v` in place (`v` indexed by row on entry, by basis
    /// position on exit). `work` is caller-provided scratch of length `m`.
    pub fn ftran(&self, v: &mut [f64], work: &mut [f64]) {
        let m = self.m;
        for k in 0..m {
            work[k] = v[self.row_at[k]];
        }
        // L forward substitution; skipping zero positions makes the cost
        // proportional to the reachable nonzero set of the rhs.
        for k in 0..m {
            let x = work[k];
            if x != 0.0 {
                for &(i, l) in &self.l_cols[k] {
                    work[i] -= l * x;
                }
            }
        }
        // U backward substitution.
        for k in (0..m).rev() {
            let x = work[k] / self.u_diag[k];
            work[k] = x;
            if x != 0.0 {
                for &(i, u) in &self.u_cols[k] {
                    work[i] -= u * x;
                }
            }
        }
        for k in 0..m {
            v[self.col_at[k]] = work[k];
        }
    }

    /// Solves `Bᵀ y = c` in place (`c` indexed by basis position on entry,
    /// by row on exit). `work` is caller-provided scratch of length `m`.
    pub fn btran(&self, c: &mut [f64], work: &mut [f64]) {
        let m = self.m;
        // Uᵀ forward substitution (gather form).
        for k in 0..m {
            let mut s = c[self.col_at[k]];
            for &(i, u) in &self.u_cols[k] {
                s -= u * work[i];
            }
            work[k] = s / self.u_diag[k];
        }
        // Lᵀ backward substitution (gather form).
        for k in (0..m).rev() {
            let mut s = work[k];
            for &(i, l) in &self.l_cols[k] {
                s -= l * work[i];
            }
            work[k] = s;
        }
        for k in 0..m {
            c[self.row_at[k]] = work[k];
        }
    }
}

/// One product-form update: basis position `r` was replaced by a column
/// whose FTRAN image is `aq` (`pivot = aq[r]`, `col` the other nonzeros).
#[derive(Debug, Clone)]
struct Eta {
    r: usize,
    pivot: f64,
    col: Vec<(usize, f64)>,
}

/// The eta file: pending product-form updates on top of [`LuFactors`].
#[derive(Debug, Clone, Default)]
pub(crate) struct EtaFile {
    etas: Vec<Eta>,
}

impl EtaFile {
    /// Number of pending updates.
    pub fn len(&self) -> usize {
        self.etas.len()
    }

    /// Drops all pending updates (after a refactorization).
    pub fn clear(&mut self) {
        self.etas.clear();
    }

    /// Records the basis exchange at position `r`; `aq` is the FTRAN'd
    /// entering column (so `aq[r]` is the pivot element).
    pub fn push(&mut self, r: usize, aq: &[f64]) {
        let col: Vec<(usize, f64)> = aq
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i != r && v.abs() >= DROP_TOL)
            .map(|(i, &v)| (i, v))
            .collect();
        self.etas.push(Eta { r, pivot: aq[r], col });
    }

    /// Applies `E_1⁻¹ … E_k⁻¹` left-to-right to an FTRAN result (position
    /// space): completes `x = E_k⁻¹…E_1⁻¹ B₀⁻¹ v`.
    pub fn apply_ftran(&self, x: &mut [f64]) {
        for e in &self.etas {
            let xr = x[e.r] / e.pivot;
            if xr != 0.0 {
                for &(i, v) in &e.col {
                    x[i] -= v * xr;
                }
            }
            x[e.r] = xr;
        }
    }

    /// Applies `E_k⁻ᵀ … E_1⁻ᵀ` (newest first) to a BTRAN right-hand side
    /// *before* the factor solve: `Bᵀy = c` with `B = B₀E_1…E_k` becomes
    /// `B₀ᵀ y = E_1⁻ᵀ(…(E_k⁻ᵀ c))`.
    pub fn apply_btran_rhs(&self, c: &mut [f64]) {
        for e in self.etas.iter().rev() {
            let mut s = c[e.r];
            for &(i, v) in &e.col {
                s -= v * c[i];
            }
            c[e.r] = s / e.pivot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;
    use crate::options::SolverOptions;
    use crate::LinExpr;

    /// A standard form with a non-trivial sparse structural block.
    fn fixture() -> StandardForm {
        let mut m = Model::new("lu");
        let xs: Vec<_> =
            (0..6).map(|i| m.continuous(format!("x{i}"), -5.0, 5.0).unwrap()).collect();
        m.add_le("r0", LinExpr::term(xs[0], 2.0) + LinExpr::term(xs[1], -1.0), 3.0);
        m.add_ge("r1", LinExpr::term(xs[1], 4.0) + LinExpr::term(xs[2], 1.5), -2.0);
        m.add_eq("r2", LinExpr::term(xs[2], 1.0) + LinExpr::term(xs[3], -2.5), 0.5);
        m.add_le("r3", LinExpr::term(xs[0], 0.5) + LinExpr::term(xs[4], 3.0), 4.0);
        m.add_ge("r4", LinExpr::term(xs[3], 1.0) + LinExpr::term(xs[5], -1.0), -1.0);
        m.add_le("r5", LinExpr::term(xs[4], 2.0) + LinExpr::term(xs[5], 2.0), 6.0);
        StandardForm::from_model(&m, &SolverOptions::default())
    }

    /// Dense multiplication `B · x` for checking the solves.
    fn mat_vec(sf: &StandardForm, basis: &[usize], x: &[f64]) -> Vec<f64> {
        let m = basis.len();
        let mut out = vec![0.0; m];
        for (pos, &j) in basis.iter().enumerate() {
            sf.column(j).axpy(x[pos], &mut out);
        }
        out
    }

    fn assert_close(a: &[f64], b: &[f64]) {
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-8, "{a:?} != {b:?}");
        }
    }

    #[test]
    fn identity_factors_are_noops() {
        let lu = LuFactors::identity(4);
        let mut v = vec![1.0, -2.0, 3.5, 0.0];
        let mut work = vec![0.0; 4];
        let orig = v.clone();
        lu.ftran(&mut v, &mut work);
        assert_close(&v, &orig);
        lu.btran(&mut v, &mut work);
        assert_close(&v, &orig);
    }

    #[test]
    fn ftran_solves_structural_basis() {
        let sf = fixture();
        // A mixed basis: five structural columns plus the row-5 slack.
        let basis = vec![0, 1, 2, 3, 4, 11];
        let lu = LuFactors::factorize(&sf, &basis).unwrap();
        let rhs = vec![1.0, 2.0, -1.0, 0.5, 3.0, -2.0];
        let mut x = rhs.clone();
        let mut work = vec![0.0; 6];
        lu.ftran(&mut x, &mut work);
        assert_close(&mat_vec(&sf, &basis, &x), &rhs);
    }

    #[test]
    fn btran_solves_transpose() {
        let sf = fixture();
        let basis = vec![0, 1, 2, 3, 4, 11];
        let lu = LuFactors::factorize(&sf, &basis).unwrap();
        let c = vec![0.5, -1.0, 2.0, 0.0, 1.0, 3.0];
        let mut y = c.clone();
        let mut work = vec![0.0; 6];
        lu.btran(&mut y, &mut work);
        // Check Bᵀ y = c, i.e. for each position: column · y = c[pos].
        for (pos, &j) in basis.iter().enumerate() {
            let dot = sf.column(j).dot(&y);
            assert!((dot - c[pos]).abs() < 1e-8, "position {pos}: {dot} vs {}", c[pos]);
        }
    }

    #[test]
    fn singular_basis_rejected() {
        let sf = fixture();
        // Same column twice: rank deficient.
        let basis = vec![0, 0, 2, 3, 6, 8];
        assert!(matches!(LuFactors::factorize(&sf, &basis), Err(MilpError::SingularBasis)));
    }

    #[test]
    fn eta_updates_track_basis_exchange() {
        let sf = fixture();
        let mut basis = vec![6, 7, 8, 9, 10, 11]; // all slacks = identity
        let lu = LuFactors::factorize(&sf, &basis).unwrap();
        let mut etas = EtaFile::default();

        // Exchange position 1: bring in structural column 1 (pivot 4.0).
        let entering = 1usize;
        let mut aq = vec![0.0; 6];
        sf.column(entering).axpy(1.0, &mut aq);
        let mut work = vec![0.0; 6];
        lu.ftran(&mut aq, &mut work);
        etas.apply_ftran(&mut aq);
        assert!(aq[1].abs() > 1e-12, "pivot must be nonzero");
        etas.push(1, &aq);
        basis[1] = entering;
        assert_eq!(etas.len(), 1);

        // FTRAN through LU+eta must agree with a fresh factorization.
        let fresh = LuFactors::factorize(&sf, &basis).unwrap();
        let rhs = vec![1.0, -1.0, 2.0, 0.0, 0.5, 1.5];
        let mut a = rhs.clone();
        lu.ftran(&mut a, &mut work);
        etas.apply_ftran(&mut a);
        let mut b = rhs.clone();
        fresh.ftran(&mut b, &mut work);
        assert_close(&a, &b);

        // Same for BTRAN.
        let c = vec![2.0, 0.0, -1.0, 1.0, 0.0, 0.5];
        let mut a = c.clone();
        etas.apply_btran_rhs(&mut a);
        lu.btran(&mut a, &mut work);
        let mut b = c.clone();
        fresh.btran(&mut b, &mut work);
        assert_close(&a, &b);

        etas.clear();
        assert_eq!(etas.len(), 0);
    }

    #[test]
    fn markowitz_keeps_sparse_bases_sparse() {
        // A band-ish basis should factor with bounded fill.
        let sf = fixture();
        let basis = vec![0, 1, 2, 3, 4, 5];
        let lu = LuFactors::factorize(&sf, &basis).unwrap();
        // The structural block has 12 nonzeros; Markowitz must not blow it
        // up to anything near the dense 36.
        assert!(lu.fill() <= 18, "fill {} too large", lu.fill());
    }
}
