//! Incremental model mutation: [`ModelDelta`] and [`Model::apply_delta`].
//!
//! A [`ModelDelta`] records a batch of structural edits against a snapshot of
//! a [`Model`]'s shape (variable and row counts): adding variables and rows,
//! removing rows (tombstoned in place so existing [`ConstraintId`]s stay
//! valid), tightening or relaxing bounds, fixing variables and shifting
//! right-hand sides. Applying the delta mutates the model and reports a
//! [`DeltaOutcome`], whose `restriction` flag is the key contract for warm
//! re-solving (see `resolve.rs`): when every edit shrinks the feasible set,
//! previously separated cuts and the previous optimal basis remain valid and
//! branch and bound can re-enter warm; otherwise the caller must fall back to
//! a cold rebuild (previous *incumbents* survive relaxations, so the
//! incumbent path is handled independently of this flag).
//!
//! New variables may only appear in rows added by the same (or a later)
//! delta. This is not an expressiveness limit for the deployment use case —
//! an arriving task brings its own assignment rows — and it is what makes
//! `AddVar` restriction-compatible: any feasible point of the mutated model
//! projects onto a feasible point of the original, so every valid inequality
//! over the original columns stays valid.

use crate::error::{MilpError, Result};
use crate::expr::LinExpr;
use crate::model::{ConstraintId, ConstraintSense, Model, RowConstraint, VarId, VarKind};

/// One recorded edit inside a [`ModelDelta`].
#[derive(Debug, Clone)]
pub(crate) enum DeltaOp {
    /// Append a variable (optionally with an objective coefficient).
    AddVar { name: String, kind: VarKind, lb: f64, ub: f64, obj: f64 },
    /// Append a constraint row.
    AddRow { name: String, expr: LinExpr, sense: ConstraintSense, rhs: f64 },
    /// Tombstone a row: its expression is emptied and its relation becomes
    /// the trivially true `0 ≤ 0`, so every other row keeps its id.
    RemoveRow { row: ConstraintId },
    /// Remove a variable by fixing it to the in-bounds value closest to 0.
    RemoveVar { var: VarId },
    /// Overwrite a variable's bounds.
    SetBounds { var: VarId, lb: f64, ub: f64 },
    /// Overwrite a row's right-hand side.
    SetRhs { row: ConstraintId, rhs: f64 },
}

/// A batch of structural edits recorded against a [`Model`] snapshot.
///
/// Created by [`Model::delta`]; applied by [`Model::apply_delta`]. Variable
/// and constraint ids handed out by the builder methods become valid once
/// the delta is applied to the model it was created from.
///
/// ```
/// use ndp_milp::{LinExpr, Model, Objective};
///
/// let mut m = Model::new("t");
/// let x = m.binary("x");
/// m.set_objective(Objective::Maximize, LinExpr::from(x));
///
/// let mut d = m.delta();
/// let y = d.binary("y");
/// d.add_le("cap", LinExpr::from(x) + y, 1.0);
/// let out = m.apply_delta(&d)?;
/// assert_eq!(out.new_vars, vec![y]);
/// assert!(out.restriction);
/// # Ok::<(), ndp_milp::MilpError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ModelDelta {
    base_vars: usize,
    base_rows: usize,
    added_vars: usize,
    added_rows: usize,
    pub(crate) ops: Vec<DeltaOp>,
}

/// What applying a [`ModelDelta`] did to the model.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaOutcome {
    /// Ids of the variables the delta appended, in creation order.
    pub new_vars: Vec<VarId>,
    /// Ids of the rows the delta appended, in creation order.
    pub new_rows: Vec<ConstraintId>,
    /// `true` when every edit shrank (or preserved) the feasible set:
    /// only added rows, tightened bounds/right-hand sides, fixings and new
    /// variables. Restrictions keep previously derived cuts and bases
    /// valid; non-restrictions (removed rows, relaxed bounds or rhs)
    /// require a cold rebuild of solver state.
    pub restriction: bool,
}

impl ModelDelta {
    pub(crate) fn new(base_vars: usize, base_rows: usize) -> Self {
        ModelDelta { base_vars, base_rows, added_vars: 0, added_rows: 0, ops: Vec::new() }
    }

    /// Number of variables the delta appends.
    pub fn num_new_vars(&self) -> usize {
        self.added_vars
    }

    /// Number of rows the delta appends.
    pub fn num_new_rows(&self) -> usize {
        self.added_rows
    }

    /// `true` when the delta records no edits.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Appends a variable with explicit kind, bounds and objective
    /// coefficient. The returned id becomes valid once the delta is applied.
    /// Bounds are validated at apply time.
    pub fn add_var(
        &mut self,
        name: impl Into<String>,
        kind: VarKind,
        lb: f64,
        ub: f64,
        obj: f64,
    ) -> VarId {
        self.ops.push(DeltaOp::AddVar { name: name.into(), kind, lb, ub, obj });
        self.added_vars += 1;
        VarId(self.base_vars + self.added_vars - 1)
    }

    /// Appends a binary variable with objective coefficient `obj`.
    pub fn binary(&mut self, name: impl Into<String>) -> VarId {
        self.add_var(name, VarKind::Binary, 0.0, 1.0, 0.0)
    }

    /// Appends a continuous variable in `[lb, ub]`.
    pub fn continuous(&mut self, name: impl Into<String>, lb: f64, ub: f64) -> VarId {
        self.add_var(name, VarKind::Continuous, lb, ub, 0.0)
    }

    /// Appends a constraint row. The expression may reference existing
    /// variables and variables created earlier on this delta.
    pub fn add_row(
        &mut self,
        name: impl Into<String>,
        expr: LinExpr,
        sense: ConstraintSense,
        rhs: f64,
    ) -> ConstraintId {
        self.ops.push(DeltaOp::AddRow { name: name.into(), expr, sense, rhs });
        self.added_rows += 1;
        ConstraintId(self.base_rows + self.added_rows - 1)
    }

    /// Shorthand for `expr ≤ rhs`.
    pub fn add_le(&mut self, name: impl Into<String>, expr: LinExpr, rhs: f64) -> ConstraintId {
        self.add_row(name, expr, ConstraintSense::Le, rhs)
    }

    /// Shorthand for `expr ≥ rhs`.
    pub fn add_ge(&mut self, name: impl Into<String>, expr: LinExpr, rhs: f64) -> ConstraintId {
        self.add_row(name, expr, ConstraintSense::Ge, rhs)
    }

    /// Shorthand for `expr = rhs`.
    pub fn add_eq(&mut self, name: impl Into<String>, expr: LinExpr, rhs: f64) -> ConstraintId {
        self.add_row(name, expr, ConstraintSense::Eq, rhs)
    }

    /// Tombstones row `row`: its relation becomes trivially true while every
    /// constraint id stays valid. A non-restriction (relaxes the model).
    pub fn remove_row(&mut self, row: ConstraintId) {
        self.ops.push(DeltaOp::RemoveRow { row });
    }

    /// Removes variable `var` by fixing it to the in-bounds value closest
    /// to 0 (its column stays allocated so variable ids keep their meaning).
    pub fn remove_var(&mut self, var: VarId) {
        self.ops.push(DeltaOp::RemoveVar { var });
    }

    /// Overwrites the bounds of `var` (tighten or relax).
    pub fn set_bounds(&mut self, var: VarId, lb: f64, ub: f64) {
        self.ops.push(DeltaOp::SetBounds { var, lb, ub });
    }

    /// Fixes `var` to `value`.
    pub fn fix(&mut self, var: VarId, value: f64) {
        self.set_bounds(var, value, value);
    }

    /// Overwrites the right-hand side of row `row`.
    pub fn set_rhs(&mut self, row: ConstraintId, rhs: f64) {
        self.ops.push(DeltaOp::SetRhs { row, rhs });
    }
}

impl Model {
    /// Starts an edit batch against the model's current shape. Apply it with
    /// [`Model::apply_delta`].
    pub fn delta(&self) -> ModelDelta {
        ModelDelta::new(self.num_vars(), self.num_constraints())
    }

    /// Applies `delta` to the model, mutating it in place.
    ///
    /// Edits are applied in the order they were recorded; the returned
    /// [`DeltaOutcome`] reports the appended ids and whether the batch as a
    /// whole is a feasible-set restriction. An existing warm-start vector is
    /// padded for appended variables (each new entry is the in-bounds value
    /// closest to 0).
    ///
    /// # Errors
    ///
    /// Returns [`MilpError::DeltaMismatch`] when the delta was recorded
    /// against a different model shape, [`MilpError::InvalidBounds`] /
    /// [`MilpError::NotANumber`] for bad bounds or NaNs, and
    /// [`MilpError::UnknownVariable`] for out-of-range references. The model
    /// may be partially mutated when an error is returned mid-batch; callers
    /// that need atomicity should validate on a clone.
    pub fn apply_delta(&mut self, delta: &ModelDelta) -> Result<DeltaOutcome> {
        if delta.base_vars != self.num_vars() || delta.base_rows != self.num_constraints() {
            return Err(MilpError::DeltaMismatch {
                base_vars: delta.base_vars,
                base_rows: delta.base_rows,
                model_vars: self.num_vars(),
                model_rows: self.num_constraints(),
            });
        }
        let mut out =
            DeltaOutcome { new_vars: Vec::new(), new_rows: Vec::new(), restriction: true };
        for op in &delta.ops {
            match op {
                DeltaOp::AddVar { name, kind, lb, ub, obj } => {
                    if obj.is_nan() {
                        return Err(MilpError::NotANumber {
                            context: format!("objective coefficient of delta variable `{name}`"),
                        });
                    }
                    let id = self.add_var(name.clone(), *kind, *lb, *ub)?;
                    if *obj != 0.0 {
                        self.objective.add_term(id, *obj);
                    }
                    out.new_vars.push(id);
                }
                DeltaOp::AddRow { name, expr, sense, rhs } => {
                    if expr.has_nan() || rhs.is_nan() {
                        return Err(MilpError::NotANumber {
                            context: format!("delta row `{name}`"),
                        });
                    }
                    let nvars = self.num_vars();
                    for (var, _) in expr.iter() {
                        if var.index() >= nvars {
                            return Err(MilpError::UnknownVariable {
                                index: var.index(),
                                len: nvars,
                            });
                        }
                    }
                    let id = self.add_constraint(name.clone(), expr.clone(), *sense, *rhs);
                    out.new_rows.push(id);
                }
                DeltaOp::RemoveRow { row } => {
                    let i = self.checked_row(*row)?;
                    self.rows[i] = RowConstraint {
                        name: self.rows[i].name.clone(),
                        expr: LinExpr::new(),
                        sense: ConstraintSense::Le,
                        rhs: 0.0,
                    };
                    out.restriction = false;
                }
                DeltaOp::RemoveVar { var } => {
                    let i = self.checked_var(*var)?;
                    let v = &self.vars[i];
                    let value = 0f64.clamp(v.lb, v.ub);
                    self.set_bounds(*var, value, value)?;
                }
                DeltaOp::SetBounds { var, lb, ub } => {
                    let i = self.checked_var(*var)?;
                    let (old_lb, old_ub) = (self.vars[i].lb, self.vars[i].ub);
                    self.set_bounds(*var, *lb, *ub)?;
                    let (new_lb, new_ub) = (self.vars[i].lb, self.vars[i].ub);
                    if new_lb < old_lb || new_ub > old_ub {
                        out.restriction = false;
                    }
                }
                DeltaOp::SetRhs { row, rhs } => {
                    if rhs.is_nan() {
                        return Err(MilpError::NotANumber {
                            context: format!("delta rhs of row {}", row.index()),
                        });
                    }
                    let i = self.checked_row(*row)?;
                    let old = self.rows[i].rhs;
                    let tightens = match self.rows[i].sense {
                        ConstraintSense::Le => *rhs <= old,
                        ConstraintSense::Ge => *rhs >= old,
                        ConstraintSense::Eq => *rhs == old,
                    };
                    if !tightens {
                        out.restriction = false;
                    }
                    self.rows[i].rhs = *rhs;
                }
            }
        }
        if !out.new_vars.is_empty() {
            let pads: Vec<f64> = out
                .new_vars
                .iter()
                .map(|&v| 0f64.clamp(self.vars[v.index()].lb, self.vars[v.index()].ub))
                .collect();
            if let Some(ws) = self.warm_start_mut() {
                ws.extend(pads);
            }
        }
        Ok(out)
    }

    fn checked_var(&self, var: VarId) -> Result<usize> {
        if var.index() >= self.num_vars() {
            return Err(MilpError::UnknownVariable { index: var.index(), len: self.num_vars() });
        }
        Ok(var.index())
    }

    fn checked_row(&self, row: ConstraintId) -> Result<usize> {
        if row.index() >= self.num_constraints() {
            return Err(MilpError::UnknownVariable {
                index: row.index(),
                len: self.num_constraints(),
            });
        }
        Ok(row.index())
    }

    /// Convenience used by tests and the session layer: true when the
    /// variable is kept at a single value.
    pub fn is_fixed(&self, var: VarId) -> bool {
        let (lb, ub) = self.bounds(var);
        lb == ub
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Objective, SolveStatus};

    fn knapsack() -> (Model, Vec<VarId>) {
        // max 4a + 5b + 3c s.t. 3a + 4b + 2c <= 6 => optimum 8 (b, c).
        let mut m = Model::new("ks");
        let a = m.binary("a");
        let b = m.binary("b");
        let c = m.binary("c");
        let w = LinExpr::term(a, 3.0) + LinExpr::term(b, 4.0) + LinExpr::term(c, 2.0);
        let v = LinExpr::term(a, 4.0) + LinExpr::term(b, 5.0) + LinExpr::term(c, 3.0);
        m.add_le("cap", w, 6.0);
        m.set_objective(Objective::Maximize, v);
        (m, vec![a, b, c])
    }

    #[test]
    fn tightening_delta_is_a_restriction() {
        let (mut m, vars) = knapsack();
        let mut d = m.delta();
        d.fix(vars[1], 0.0);
        d.set_rhs(ConstraintId(0), 5.0);
        let out = m.apply_delta(&d).unwrap();
        assert!(out.restriction);
        let s = m.solve().unwrap();
        assert_eq!(s.status(), SolveStatus::Optimal);
        // Without b: a + c fits (weight 5) for 7.
        assert!((s.objective_value() - 7.0).abs() < 1e-6);
    }

    #[test]
    fn relaxing_rhs_or_bounds_is_not_a_restriction() {
        let (mut m, vars) = knapsack();
        let mut d = m.delta();
        d.set_rhs(ConstraintId(0), 9.0);
        assert!(!m.apply_delta(&d).unwrap().restriction);

        let (mut m, _) = knapsack();
        let mut d = m.delta();
        // `set_bounds` does not re-clamp binaries, so widening one past 1
        // genuinely relaxes the model.
        d.set_bounds(vars[0], 0.0, 2.0);
        assert!(!m.apply_delta(&d).unwrap().restriction);

        let (mut m, _) = knapsack();
        let x = {
            let mut d = m.delta();
            let x = d.continuous("x", 0.0, 1.0);
            m.apply_delta(&d).unwrap();
            x
        };
        let mut d = m.delta();
        d.set_bounds(x, -1.0, 1.0);
        assert!(!m.apply_delta(&d).unwrap().restriction);
    }

    #[test]
    fn removed_rows_are_tombstoned_in_place() {
        let (mut m, _) = knapsack();
        let extra = m.add_le("tight", LinExpr::term(VarId(2), 1.0), 0.0);
        let before_rows = m.num_constraints();
        let mut d = m.delta();
        d.remove_row(extra);
        let out = m.apply_delta(&d).unwrap();
        assert!(!out.restriction);
        assert_eq!(m.num_constraints(), before_rows, "ids stay valid");
        let s = m.solve().unwrap();
        assert!((s.objective_value() - 8.0).abs() < 1e-6, "tombstone no longer binds");
    }

    #[test]
    fn added_vars_and_rows_solve_correctly() {
        let (mut m, vars) = knapsack();
        let mut d = m.delta();
        let z = d.add_var("z", VarKind::Binary, 0.0, 1.0, 6.0);
        // New var only in a new row: z weighs 5 against a fresh budget shared
        // with a.
        d.add_le("cap2", LinExpr::term(z, 5.0) + LinExpr::term(vars[0], 1.0), 5.0);
        let out = m.apply_delta(&d).unwrap();
        assert_eq!(out.new_vars, vec![z]);
        assert!(out.restriction);
        let s = m.solve().unwrap();
        // b + c (8) plus z (6): a must stay out of cap2? a=0 keeps cap2 at 5.
        assert!((s.objective_value() - 14.0).abs() < 1e-6);
    }

    #[test]
    fn stale_delta_is_rejected() {
        let (mut m, _) = knapsack();
        let d = {
            let mut d = m.delta();
            d.binary("late");
            d
        };
        m.apply_delta(&d).unwrap();
        assert!(matches!(m.apply_delta(&d), Err(MilpError::DeltaMismatch { .. })));
    }

    #[test]
    fn warm_start_is_padded_for_new_vars() {
        let (mut m, _) = knapsack();
        m.set_warm_start(vec![0.0, 1.0, 1.0]).unwrap();
        let mut d = m.delta();
        d.continuous("x", 2.0, 5.0);
        m.apply_delta(&d).unwrap();
        // Padded entry is clamp(0, [2,5]) = 2, and the model accepts the
        // vector length.
        assert!(m.is_feasible(&[0.0, 1.0, 1.0, 2.0], 1e-9));
        let s = m.solve().unwrap();
        assert_eq!(s.status(), SolveStatus::Optimal);
    }

    #[test]
    fn remove_var_fixes_to_nearest_in_bounds_value() {
        let mut m = Model::new("rv");
        let x = m.continuous("x", 2.0, 5.0).unwrap();
        let mut d = m.delta();
        d.remove_var(x);
        let out = m.apply_delta(&d).unwrap();
        assert!(out.restriction);
        assert_eq!(m.bounds(x), (2.0, 2.0));
    }
}
