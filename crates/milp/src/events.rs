//! Solver observability and control: the structured event stream and the
//! cooperative cancellation token.
//!
//! # Event stream
//!
//! An [`Observer`] registered through
//! [`SolverOptions::observer`](crate::SolverOptions::observer) receives a
//! [`SolverEvent`] at every significant point of a solve: presolve
//! reductions, the root relaxation, node exploration/pruning, incumbent
//! improvements, basis refactorizations, per-worker statistics and the
//! final termination. Events carry **no wall-clock timestamps** so that a
//! serial (`threads = 1`) solve emits a bit-for-bit deterministic sequence;
//! time attribution lives in [`SolveStats`](crate::SolveStats) instead.
//!
//! Under `threads ≥ 2` every worker emits through the same observer
//! concurrently, so the observer must be `Send + Sync` and the interleaving
//! of node-level events is nondeterministic (the *set* of presolve/
//! termination events is not).
//!
//! Any `Fn(&SolverEvent) + Send + Sync` closure is an observer via the
//! blanket implementation:
//!
//! ```
//! use ndp_milp::{LinExpr, Model, Objective, SolverEvent, SolverOptions};
//! use std::sync::Arc;
//!
//! let mut m = Model::new("traced");
//! let x = m.binary("x");
//! m.set_objective(Objective::Maximize, LinExpr::from(x));
//! let opts = SolverOptions::default()
//!     .observer(Arc::new(|e: &SolverEvent| eprintln!("{e}")));
//! let sol = m.solve_with(&opts)?;
//! # Ok::<(), ndp_milp::MilpError>(())
//! ```
//!
//! # Cancellation
//!
//! A [`CancelToken`] registered through
//! [`SolverOptions::cancel_token`](crate::SolverOptions::cancel_token) is
//! checked cooperatively at every node boundary and every 128 simplex
//! iterations, in both the serial and the work-stealing parallel search.
//! Cancelled solves stop promptly and return the best incumbent found so
//! far with [`SolveStatus::Interrupted`](crate::SolveStatus::Interrupted).

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::solution::SolveStatus;

/// Why a solve stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TerminationReason {
    /// The optimality gap was closed (tree exhausted or gap tolerance met).
    GapClosed,
    /// The model was proven infeasible.
    ProvenInfeasible,
    /// The model was detected unbounded.
    ProvenUnbounded,
    /// The wall-clock limit (`SolverOptions::time_limit`) was hit.
    TimeLimit,
    /// The node limit (`SolverOptions::node_limit`) was hit.
    NodeLimit,
    /// A [`CancelToken`] was triggered.
    Cancelled,
    /// A node could not be solved (iteration limit or irreparable basis);
    /// the search stopped conservatively with the incumbent it had.
    Numerics,
}

impl fmt::Display for TerminationReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TerminationReason::GapClosed => "gap closed",
            TerminationReason::ProvenInfeasible => "proven infeasible",
            TerminationReason::ProvenUnbounded => "proven unbounded",
            TerminationReason::TimeLimit => "time limit",
            TerminationReason::NodeLimit => "node limit",
            TerminationReason::Cancelled => "cancelled",
            TerminationReason::Numerics => "numerical stop",
        };
        f.write_str(s)
    }
}

/// One entry of the solver's structured event stream.
///
/// Objective values and bounds are reported in the **user** scale (the
/// scale of [`Solution::objective_value`](crate::Solution::objective_value)),
/// already corrected for maximization and constant offsets. Events carry no
/// timestamps; see the module docs for the determinism contract.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverEvent {
    /// Presolve finished its reductions (emitted even when nothing shrank).
    Presolve {
        /// Variables eliminated by fixing/substitution.
        eliminated_vars: usize,
        /// Constraint rows removed as redundant.
        eliminated_rows: usize,
    },
    /// The root LP relaxation was solved.
    RootRelaxation {
        /// LP bound at the root (user scale).
        bound: f64,
    },
    /// One round of the root cutting-plane loop finished (emitted after the
    /// LP re-optimized over the freshly appended cuts). Timestamp-free like
    /// every event, so serial streams stay deterministic with cuts on.
    CutRound {
        /// 1-based round number within the root loop.
        round: u32,
        /// Candidate cuts the separators produced this round.
        generated: usize,
        /// Cuts the pool accepted and appended to the LP this round.
        applied: usize,
        /// Root LP bound after re-optimizing (user scale).
        bound: f64,
    },
    /// A branch-and-bound node was evaluated.
    NodeExplored {
        /// Node ordinal within the emitting worker (1-based; global node
        /// ids are not stable under work stealing).
        node: u64,
        /// The node's LP bound (user scale).
        bound: f64,
        /// Depth = number of branching bound changes from the root.
        depth: usize,
        /// Dual simplex pivots this node's LP re-optimization took. Warm
        /// starts from the parent basis keep this in the single digits;
        /// cold starts pay the full re-solve.
        pivots: u64,
    },
    /// An open node was discarded because its parent bound could no longer
    /// improve on the incumbent.
    NodePruned {
        /// The pruned node's inherited bound (user scale).
        bound: f64,
    },
    /// An improving integral point found by the root primal heuristics
    /// (diving or a RINS/RENS neighborhood sub-MILP) *before* the tree
    /// search started. Distinct from [`SolverEvent::Incumbent`] so the
    /// search stream keeps its canonical `root → incumbent` ordering;
    /// heuristic finds land in the pre-root window like
    /// [`SolverEvent::CutRound`].
    HeuristicIncumbent {
        /// Which heuristic produced the point: `"dive"`, `"rens"` or
        /// `"rins"`.
        heuristic: &'static str,
        /// Objective of the accepted point (user scale).
        objective: f64,
    },
    /// Node-level bound propagation changed a node: it tightened at least
    /// one variable bound or proved the node box empty. Quiet nodes emit
    /// nothing, keeping streams compact.
    NodePropagated {
        /// Node ordinal within the emitting worker (matches the `node`
        /// field of the following [`SolverEvent::NodeExplored`]).
        node: u64,
        /// Individual variable bounds tightened at this node.
        tightened: u32,
        /// Whether propagation proved the node infeasible, fathoming it
        /// without an LP solve.
        fathomed: bool,
    },
    /// The solver verified a nontrivial symmetry group of the model from
    /// the supplied candidate permutations (emitted once, before the tree
    /// search; timestamp-free like every event so serial streams replay
    /// bit-for-bit).
    SymmetryDetected {
        /// Verified non-identity group elements (after closure).
        generators: usize,
        /// Nontrivial integer-column orbits under the group.
        orbits: u64,
        /// Lexicographic symmetry-breaking rows installed at the root.
        rows: usize,
    },
    /// A globally valid conflict (no-good) cut was derived from an
    /// infeasible node's binary fixing set and appended to the worker LP.
    ConflictCut {
        /// Depth of the infeasible node the conflict came from.
        depth: usize,
        /// Fixed binaries in the no-good (the cut's support size).
        size: usize,
    },
    /// A new best integral solution was accepted.
    Incumbent {
        /// Objective of the new incumbent (user scale).
        objective: f64,
        /// Tightest bound known at emission time: the emitting node's LP
        /// bound (under best-bound order this is the global bound), or the
        /// warm-start marker `±inf` before the search starts.
        bound: f64,
        /// Relative gap `|objective − bound| / max(1, |objective|)`.
        gap: f64,
    },
    /// The simplex rebuilt its basis factorization from scratch.
    Refactorized {
        /// Lifetime refactorization count of the emitting simplex instance.
        count: u64,
    },
    /// A heuristic/pipeline phase boundary (used by higher layers such as
    /// the `ndp-core` 3-phase heuristic; never emitted by branch and bound).
    Phase {
        /// Phase name, e.g. `"phase1"`.
        name: &'static str,
    },
    /// A worker thread finished: its share of the search.
    ThreadStats {
        /// Worker index (0-based; a serial solve has exactly worker 0).
        worker: usize,
        /// Nodes this worker evaluated.
        nodes: u64,
        /// Nodes this worker obtained from another worker's deque.
        steals: u64,
    },
    /// The solve finished; always the final event of a successful solve.
    Terminated {
        /// The reported [`SolveStatus`].
        status: SolveStatus,
        /// Why the solve stopped.
        reason: TerminationReason,
    },
}

impl fmt::Display for SolverEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverEvent::Presolve { eliminated_vars, eliminated_rows } => {
                write!(f, "presolve: -{eliminated_vars} vars, -{eliminated_rows} rows")
            }
            SolverEvent::RootRelaxation { bound } => write!(f, "root relaxation: bound {bound:.6}"),
            SolverEvent::CutRound { round, generated, applied, bound } => {
                write!(
                    f,
                    "cut round {round}: {generated} generated, {applied} applied, bound {bound:.6}"
                )
            }
            SolverEvent::NodeExplored { node, bound, depth, pivots } => {
                write!(f, "node {node}: bound {bound:.6} depth {depth} pivots {pivots}")
            }
            SolverEvent::NodePruned { bound } => write!(f, "pruned: bound {bound:.6}"),
            SolverEvent::HeuristicIncumbent { heuristic, objective } => {
                write!(f, "heuristic incumbent ({heuristic}): obj {objective:.6}")
            }
            SolverEvent::NodePropagated { node, tightened, fathomed } => {
                write!(
                    f,
                    "node {node} propagated: {tightened} bounds tightened, fathomed {fathomed}"
                )
            }
            SolverEvent::SymmetryDetected { generators, orbits, rows } => {
                write!(f, "symmetry: {generators} generators, {orbits} orbits, {rows} lex rows")
            }
            SolverEvent::ConflictCut { depth, size } => {
                write!(f, "conflict cut: depth {depth}, {size} literals")
            }
            SolverEvent::Incumbent { objective, bound, gap } => {
                write!(f, "incumbent: obj {objective:.6} bound {bound:.6} gap {:.3}%", gap * 100.0)
            }
            SolverEvent::Refactorized { count } => write!(f, "refactorized (#{count})"),
            SolverEvent::Phase { name } => write!(f, "phase: {name}"),
            SolverEvent::ThreadStats { worker, nodes, steals } => {
                write!(f, "worker {worker}: {nodes} nodes, {steals} steals")
            }
            SolverEvent::Terminated { status, reason } => {
                write!(f, "terminated: {status:?} ({reason})")
            }
        }
    }
}

/// Receiver of the solver's event stream.
///
/// Implementations must be cheap and non-blocking: events are emitted from
/// the hot search loop. Every `Fn(&SolverEvent) + Send + Sync` closure
/// implements this trait.
pub trait Observer: Send + Sync {
    /// Called once per emitted event, in emission order per worker.
    fn event(&self, event: &SolverEvent);
}

impl<F: Fn(&SolverEvent) + Send + Sync> Observer for F {
    fn event(&self, event: &SolverEvent) {
        self(event)
    }
}

/// A shareable, cloneable handle to an optional [`Observer`].
///
/// This is what [`SolverOptions`](crate::SolverOptions) actually stores: it
/// keeps `SolverOptions` cheap to clone and lets an unset observer cost a
/// single branch per emission.
#[derive(Clone, Default)]
pub struct ObserverHandle(Option<Arc<dyn Observer>>);

impl ObserverHandle {
    /// A handle that drops every event (the default).
    pub fn none() -> Self {
        ObserverHandle(None)
    }

    /// Wraps an observer.
    pub fn new(observer: Arc<dyn Observer>) -> Self {
        ObserverHandle(Some(observer))
    }

    /// Whether an observer is registered.
    pub fn is_set(&self) -> bool {
        self.0.is_some()
    }

    /// Emits the event built by `f` if an observer is registered. The
    /// closure keeps event construction off the fast path when unobserved.
    #[inline]
    pub fn emit(&self, f: impl FnOnce() -> SolverEvent) {
        if let Some(obs) = &self.0 {
            obs.event(&f());
        }
    }
}

impl fmt::Debug for ObserverHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            Some(_) => f.write_str("ObserverHandle(set)"),
            None => f.write_str("ObserverHandle(none)"),
        }
    }
}

impl PartialEq for ObserverHandle {
    fn eq(&self, other: &Self) -> bool {
        match (&self.0, &other.0) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            (None, None) => true,
            _ => false,
        }
    }
}

/// Cooperative cancellation for a running solve.
///
/// Clone the token, hand one clone to
/// [`SolverOptions::cancel_token`](crate::SolverOptions::cancel_token) and
/// call [`CancelToken::cancel`] from any thread; the solver notices at the
/// next node boundary or within 128 simplex iterations and returns the best
/// incumbent with [`SolveStatus::Interrupted`](crate::SolveStatus).
/// Cancellation is level-triggered and permanent: a cancelled token stays
/// cancelled, and a solve started with an already-cancelled token stops at
/// its first check.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken(Arc::new(AtomicBool::new(false)))
    }

    /// Requests cancellation. Safe to call from any thread, any number of
    /// times.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// The versioned slot behind an [`IncumbentFeed`].
struct FeedSlot {
    /// Incremented after every publication; pollers compare against their
    /// last-seen version so an unchanged feed costs one atomic load.
    version: AtomicU64,
    /// The most recently published point (later publications overwrite
    /// earlier ones).
    point: Mutex<Option<Vec<f64>>>,
}

/// Mapping applied to published points before a solve consumes them (used
/// internally to translate a feed into a presolve-reduced column space).
type FeedMap = dyn Fn(&[f64]) -> Option<Vec<f64>> + Send + Sync;

/// A shared slot through which an external producer — a racing portfolio
/// arm, a heuristic, or another solve — injects feasible points into a
/// *running* solve.
///
/// Register a clone through
/// [`SolverOptions::incumbent_feed`](crate::SolverOptions::incumbent_feed)
/// and call [`IncumbentFeed::publish`] from any thread. The search polls the
/// feed at every node boundary (the same cadence as [`CancelToken`]);
/// points that are feasible for the model at the solver's tolerances and
/// improve on the current incumbent are installed exactly as if a node had
/// produced them, so pruning tightens mid-solve. Infeasible or worse points
/// are ignored, which makes feeding always safe: a feed can only shrink the
/// search, never change the optimum.
///
/// Publications overwrite each other (the slot keeps only the latest
/// point); publish improvements only. Like cancellation, a feed couples the
/// solve to external timing, so a fed serial solve keeps its *result*
/// determinism for proven statuses but not its node-for-node event stream.
#[derive(Clone)]
pub struct IncumbentFeed {
    slot: Arc<FeedSlot>,
    /// Optional column-space translation applied at poll time.
    map: Option<Arc<FeedMap>>,
}

impl IncumbentFeed {
    /// A fresh, empty feed.
    pub fn new() -> Self {
        IncumbentFeed {
            slot: Arc::new(FeedSlot { version: AtomicU64::new(0), point: Mutex::new(None) }),
            map: None,
        }
    }

    /// Publishes `point` (in the column space of the model the consuming
    /// solve was handed), replacing any earlier publication. Safe from any
    /// thread, any number of times.
    pub fn publish(&self, point: Vec<f64>) {
        *self.slot.point.lock() = Some(point);
        self.slot.version.fetch_add(1, Ordering::Release);
    }

    /// Whether anything has ever been published.
    pub fn has_point(&self) -> bool {
        self.slot.version.load(Ordering::Acquire) > 0
    }

    /// Returns the latest published point if its version is newer than
    /// `*cursor`, advancing the cursor. The unchanged-feed fast path is a
    /// single atomic load.
    pub(crate) fn poll(&self, cursor: &mut u64) -> Option<Vec<f64>> {
        let version = self.slot.version.load(Ordering::Acquire);
        if version == *cursor {
            return None;
        }
        *cursor = version;
        let point = self.slot.point.lock().clone()?;
        match &self.map {
            Some(map) => map(&point),
            None => Some(point),
        }
    }

    /// A view of the same slot whose polled points pass through `map`
    /// first (e.g. into a presolve-reduced column space). Publishing goes
    /// through either handle; mapping composes outside-in.
    pub(crate) fn mapped(&self, map: Arc<FeedMap>) -> Self {
        let inner = self.map.clone();
        let composed: Arc<FeedMap> = match inner {
            Some(first) => Arc::new(move |p: &[f64]| first(p).and_then(|q| map(&q))),
            None => map,
        };
        IncumbentFeed { slot: Arc::clone(&self.slot), map: Some(composed) }
    }
}

impl Default for IncumbentFeed {
    fn default() -> Self {
        IncumbentFeed::new()
    }
}

impl fmt::Debug for IncumbentFeed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "IncumbentFeed(version {}{})",
            self.slot.version.load(Ordering::Acquire),
            if self.map.is_some() { ", mapped" } else { "" }
        )
    }
}

impl PartialEq for IncumbentFeed {
    fn eq(&self, other: &Self) -> bool {
        let maps_match = match (&self.map, &other.map) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            (None, None) => true,
            _ => false,
        };
        Arc::ptr_eq(&self.slot, &other.slot) && maps_match
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn cancel_token_is_shared_by_clones() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!u.is_cancelled());
        t.cancel();
        assert!(u.is_cancelled());
        assert_eq!(t, u);
        assert_ne!(t, CancelToken::new());
    }

    #[test]
    fn observer_handle_emits_only_when_set() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let handle = ObserverHandle::new(Arc::new(move |e: &SolverEvent| {
            sink.lock().unwrap().push(e.clone());
        }));
        assert!(handle.is_set());
        handle.emit(|| SolverEvent::Phase { name: "p" });
        ObserverHandle::none().emit(|| panic!("must not build events when unset"));
        assert_eq!(*seen.lock().unwrap(), vec![SolverEvent::Phase { name: "p" }]);
    }

    #[test]
    fn incumbent_feed_polls_latest_once() {
        let feed = IncumbentFeed::new();
        let consumer = feed.clone();
        let mut cursor = 0u64;
        assert!(!feed.has_point());
        assert_eq!(consumer.poll(&mut cursor), None);
        feed.publish(vec![1.0]);
        feed.publish(vec![2.0]);
        assert!(feed.has_point());
        // Only the latest publication is visible, and only once per cursor.
        assert_eq!(consumer.poll(&mut cursor), Some(vec![2.0]));
        assert_eq!(consumer.poll(&mut cursor), None);
        feed.publish(vec![3.0]);
        assert_eq!(consumer.poll(&mut cursor), Some(vec![3.0]));
    }

    #[test]
    fn incumbent_feed_mapping_composes_and_shares_the_slot() {
        let feed = IncumbentFeed::new();
        let doubled = feed.mapped(Arc::new(|p: &[f64]| Some(p.iter().map(|x| 2.0 * x).collect())));
        let gated = doubled.mapped(Arc::new(|p: &[f64]| (p[0] < 10.0).then(|| p.to_vec())));
        feed.publish(vec![3.0]);
        let mut cursor = 0u64;
        assert_eq!(doubled.poll(&mut cursor), Some(vec![6.0]));
        // A map returning None still advances the cursor (the point is
        // consumed, just unusable in the mapped space).
        let mut gated_cursor = 0u64;
        feed.publish(vec![7.0]);
        assert_eq!(gated.poll(&mut gated_cursor), None);
        feed.publish(vec![2.0]);
        assert_eq!(gated.poll(&mut gated_cursor), Some(vec![4.0]));
        assert_eq!(feed, feed.clone());
        assert_ne!(feed, doubled);
        assert_ne!(feed, IncumbentFeed::new());
    }

    #[test]
    fn events_render_compactly() {
        let e = SolverEvent::Incumbent { objective: 2.0, bound: 1.0, gap: 0.5 };
        assert_eq!(e.to_string(), "incumbent: obj 2.000000 bound 1.000000 gap 50.000%");
        let t = SolverEvent::Terminated {
            status: SolveStatus::Interrupted,
            reason: TerminationReason::Cancelled,
        };
        assert_eq!(t.to_string(), "terminated: Interrupted (cancelled)");
        let h = SolverEvent::HeuristicIncumbent { heuristic: "dive", objective: 4.25 };
        assert_eq!(h.to_string(), "heuristic incumbent (dive): obj 4.250000");
        let p = SolverEvent::NodePropagated { node: 3, tightened: 2, fathomed: false };
        assert_eq!(p.to_string(), "node 3 propagated: 2 bounds tightened, fathomed false");
        let c = SolverEvent::ConflictCut { depth: 4, size: 4 };
        assert_eq!(c.to_string(), "conflict cut: depth 4, 4 literals");
        let s = SolverEvent::SymmetryDetected { generators: 7, orbits: 3, rows: 7 };
        assert_eq!(s.to_string(), "symmetry: 7 generators, 3 orbits, 7 lex rows");
    }
}
