//! Linear expressions over model variables.
//!
//! [`LinExpr`] is the currency of model building: objectives and constraint
//! left-hand sides are linear expressions. Expressions support `+`, `-`, `*`
//! (by a scalar) and can be built incrementally with [`LinExpr::add_term`].
//!
//! ```
//! use ndp_milp::{LinExpr, Model};
//!
//! let mut m = Model::new("doc");
//! let x = m.binary("x");
//! let y = m.binary("y");
//! let e = LinExpr::from(x) * 2.0 + y + 1.0;
//! assert_eq!(e.coefficient(x), 2.0);
//! assert_eq!(e.constant(), 1.0);
//! ```

use crate::model::VarId;
use std::collections::BTreeMap;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// A linear expression `Σ aᵢ·xᵢ + c`.
///
/// Duplicate variables are merged; coefficients that cancel to exactly zero
/// are kept until [`LinExpr::compact`] removes them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinExpr {
    terms: BTreeMap<VarId, f64>,
    constant: f64,
}

impl LinExpr {
    /// Creates the zero expression.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a constant expression with no variable terms.
    pub fn constant_term(c: f64) -> Self {
        LinExpr { terms: BTreeMap::new(), constant: c }
    }

    /// Creates the expression `coeff · var`.
    pub fn term(var: VarId, coeff: f64) -> Self {
        let mut e = LinExpr::new();
        e.add_term(var, coeff);
        e
    }

    /// Adds `coeff · var` to the expression, merging with any existing term.
    pub fn add_term(&mut self, var: VarId, coeff: f64) -> &mut Self {
        *self.terms.entry(var).or_insert(0.0) += coeff;
        self
    }

    /// Adds a constant offset.
    pub fn add_constant(&mut self, c: f64) -> &mut Self {
        self.constant += c;
        self
    }

    /// The coefficient of `var` (zero if absent).
    pub fn coefficient(&self, var: VarId) -> f64 {
        self.terms.get(&var).copied().unwrap_or(0.0)
    }

    /// The constant offset of the expression.
    pub fn constant(&self) -> f64 {
        self.constant
    }

    /// Iterates over `(variable, coefficient)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, f64)> + '_ {
        self.terms.iter().map(|(v, c)| (*v, *c))
    }

    /// Number of variable terms (including exact zeros not yet compacted).
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the expression has no variable terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Removes terms whose coefficient is exactly zero.
    pub fn compact(&mut self) -> &mut Self {
        self.terms.retain(|_, c| *c != 0.0);
        self
    }

    /// Evaluates the expression against a full assignment vector indexed by
    /// raw variable id.
    ///
    /// # Panics
    ///
    /// Panics if a term references an index outside `values`.
    pub fn eval(&self, values: &[f64]) -> f64 {
        let mut acc = self.constant;
        for (v, c) in self.iter() {
            acc += c * values[v.index()];
        }
        acc
    }

    /// Returns `true` if any coefficient or the constant is NaN.
    pub fn has_nan(&self) -> bool {
        self.constant.is_nan() || self.terms.values().any(|c| c.is_nan())
    }
}

impl From<VarId> for LinExpr {
    fn from(v: VarId) -> Self {
        LinExpr::term(v, 1.0)
    }
}

impl From<f64> for LinExpr {
    fn from(c: f64) -> Self {
        LinExpr::constant_term(c)
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        self += rhs;
        self
    }
}

impl AddAssign for LinExpr {
    fn add_assign(&mut self, rhs: LinExpr) {
        for (v, c) in rhs.terms {
            *self.terms.entry(v).or_insert(0.0) += c;
        }
        self.constant += rhs.constant;
    }
}

impl Add<VarId> for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: VarId) -> LinExpr {
        self.add_term(rhs, 1.0);
        self
    }
}

impl Add<f64> for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: f64) -> LinExpr {
        self.constant += rhs;
        self
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, rhs: LinExpr) -> LinExpr {
        self -= rhs;
        self
    }
}

impl SubAssign for LinExpr {
    fn sub_assign(&mut self, rhs: LinExpr) {
        for (v, c) in rhs.terms {
            *self.terms.entry(v).or_insert(0.0) -= c;
        }
        self.constant -= rhs.constant;
    }
}

impl Sub<VarId> for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, rhs: VarId) -> LinExpr {
        self.add_term(rhs, -1.0);
        self
    }
}

impl Sub<f64> for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, rhs: f64) -> LinExpr {
        self.constant -= rhs;
        self
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(mut self, rhs: f64) -> LinExpr {
        for c in self.terms.values_mut() {
            *c *= rhs;
        }
        self.constant *= rhs;
        self
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        self * -1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    fn vars() -> (Model, VarId, VarId) {
        let mut m = Model::new("t");
        let x = m.binary("x");
        let y = m.binary("y");
        (m, x, y)
    }

    #[test]
    fn merge_duplicate_terms() {
        let (_m, x, _y) = vars();
        let e = LinExpr::term(x, 1.5) + x;
        assert_eq!(e.coefficient(x), 2.5);
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn arithmetic_roundtrip() {
        let (_m, x, y) = vars();
        let e = (LinExpr::from(x) * 3.0 - y + 2.0) * 2.0;
        assert_eq!(e.coefficient(x), 6.0);
        assert_eq!(e.coefficient(y), -2.0);
        assert_eq!(e.constant(), 4.0);
    }

    #[test]
    fn eval_uses_values() {
        let (_m, x, y) = vars();
        let e = LinExpr::from(x) * 2.0 + LinExpr::term(y, -1.0) + 0.5;
        assert_eq!(e.eval(&[3.0, 1.0]), 5.5);
    }

    #[test]
    fn compact_removes_cancelled() {
        let (_m, x, _y) = vars();
        let mut e = LinExpr::from(x) - x;
        assert_eq!(e.len(), 1);
        e.compact();
        assert!(e.is_empty());
    }

    #[test]
    fn neg_flips_everything() {
        let (_m, x, _y) = vars();
        let e = -(LinExpr::from(x) + 1.0);
        assert_eq!(e.coefficient(x), -1.0);
        assert_eq!(e.constant(), -1.0);
    }
}
