//! Canonical model fingerprints.
//!
//! A fingerprint is a 64-bit FNV-1a hash over a canonical byte encoding of
//! the *mathematical program*: optimization direction, objective terms,
//! variable kinds and bounds, and constraint rows with their senses and
//! right-hand sides. Presentation details that cannot change the feasible
//! set or the optimum — variable and row names, warm-start hints, branch
//! priorities — are deliberately excluded, so two models that pose the same
//! program hash identically. Term coefficients are folded in sorted
//! variable order (zero coefficients skipped) and floats are hashed by
//! their bit patterns with `-0.0` normalized to `0.0`, making the
//! fingerprint deterministic across processes and platforms with IEEE-754
//! doubles.
//!
//! The intended consumer is solution caching in long-running services:
//! identical deployment requests map to identical fingerprints and can be
//! answered without re-solving.

use crate::expr::LinExpr;
use crate::model::Model;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a over byte chunks.
pub(crate) struct Fnv64(u64);

impl Fnv64 {
    pub(crate) fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    pub(crate) fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    pub(crate) fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    pub(crate) fn write_f64(&mut self, v: f64) {
        // Canonicalize the sign of zero so algebraically identical models
        // cannot hash apart.
        let v = if v == 0.0 { 0.0 } else { v };
        self.write_u64(v.to_bits());
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

fn write_expr(h: &mut Fnv64, expr: &LinExpr) {
    h.write_f64(expr.constant());
    for (var, coeff) in expr.iter() {
        if coeff == 0.0 {
            continue;
        }
        h.write_u64(var.index() as u64);
        h.write_f64(coeff);
    }
}

impl Model {
    /// Canonical 64-bit fingerprint of the mathematical program.
    ///
    /// Hashes the optimization direction, objective, variable kinds and
    /// bounds, and all constraint rows; ignores names, warm starts and
    /// branch priorities (none of which can change the optimum). Two models
    /// with equal fingerprints pose the same program modulo hash
    /// collisions, so the fingerprint is a sound cache key for solve
    /// results.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(self.direction as u64);
        write_expr(&mut h, &self.objective);
        h.write_u64(self.vars.len() as u64);
        for v in &self.vars {
            h.write_u64(v.kind as u64);
            h.write_f64(v.lb);
            h.write_f64(v.ub);
        }
        h.write_u64(self.rows.len() as u64);
        for r in &self.rows {
            h.write_u64(r.sense as u64);
            h.write_f64(r.rhs);
            write_expr(&mut h, &r.expr);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::{LinExpr, Model, Objective};

    fn knapsack(names: &str) -> (Model, Vec<crate::VarId>) {
        let mut m = Model::new(names);
        let mut weight = LinExpr::new();
        let mut value = LinExpr::new();
        let mut ids = Vec::new();
        for i in 0..5 {
            let x = m.binary(format!("{names}{i}"));
            weight.add_term(x, 2.0 + i as f64);
            value.add_term(x, 3.0 + i as f64);
            ids.push(x);
        }
        m.add_le("cap", weight, 7.0);
        m.set_objective(Objective::Maximize, value);
        (m, ids)
    }

    #[test]
    fn identical_programs_hash_identically_regardless_of_names() {
        let (a, _) = knapsack("a");
        let (b, _) = knapsack("completely_different_names");
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn warm_starts_and_priorities_do_not_change_the_fingerprint() {
        let (a, _) = knapsack("m");
        let (mut b, ids) = knapsack("m");
        b.set_warm_start(vec![0.0; 5]).unwrap();
        b.set_branch_priority(ids[0], 9);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn any_structural_change_changes_the_fingerprint() {
        let base = knapsack("m").0.fingerprint();
        // Different RHS.
        let (mut m, _) = knapsack("m");
        m.rows[0].rhs = 8.0;
        assert_ne!(m.fingerprint(), base);
        // Different sense.
        let (mut m, _) = knapsack("m");
        m.rows[0].sense = crate::ConstraintSense::Ge;
        assert_ne!(m.fingerprint(), base);
        // Different direction.
        let (mut m, _) = knapsack("m");
        m.direction = Objective::Minimize;
        assert_ne!(m.fingerprint(), base);
        // Different bound.
        let (mut m, _) = knapsack("m");
        m.vars[2].ub = 2.0;
        assert_ne!(m.fingerprint(), base);
    }
}
