//! Process-global bounded worker pool shared by all parallel solves.
//!
//! Every solve with `threads ≥ 2` used to spawn its own scoped thread crew;
//! under a multi-tenant server that multiplies threads by concurrent jobs
//! and lets one job's panic tear the process down. Instead, a single
//! process-wide pool of detached workers serves *helper tasks* for all
//! jobs:
//!
//! * the pool is **bounded**: at most [`worker_pool_size`] OS threads run
//!   search tasks, no matter how many jobs are in flight;
//! * the calling thread of each job always participates as its worker 0,
//!   so a job makes progress even when every pool worker is busy with
//!   other jobs — submitting to the pool can only *add* parallelism,
//!   never introduce a starvation dependency;
//! * tasks run under [`std::panic::catch_unwind`], so a panicking task
//!   (e.g. a user observer that panics) never kills the pool thread —
//!   the owning job converts the panic into a structured error while
//!   unrelated jobs keep solving;
//! * a queued task that has not been claimed yet can be **revoked** by the
//!   job that submitted it ([`TaskHandle::revoke`]): when a job's tree is
//!   exhausted before its helpers even started, the job takes the stale
//!   entries back instead of waiting behind other tenants' work.
//!
//! The pool is created lazily on first use and its threads live for the
//! rest of the process; an idle pool parks every worker on a condition
//! variable and costs nothing.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// A unit of work handed to the pool.
type Task = Box<dyn FnOnce() + Send + 'static>;

const QUEUED: u8 = 0;
const CLAIMED: u8 = 1;
const REVOKED: u8 = 2;

/// Queue entry: the task plus a claim/revoke state machine. The state makes
/// the claim race between a pool worker and a revoking job one atomic CAS:
/// exactly one side wins, so a task either runs to completion on a pool
/// thread or is taken back by its owner — never both, never neither.
struct TaskSlot {
    state: AtomicU8,
    task: Mutex<Option<Task>>,
}

/// Owner-side handle to a submitted task.
pub(crate) struct TaskHandle(Arc<TaskSlot>);

impl TaskHandle {
    /// Takes the task back if no pool worker has claimed it yet. Returns
    /// `true` when the revocation won (the task will never run); `false`
    /// means a worker already claimed it and will run it to completion.
    pub(crate) fn revoke(&self) -> bool {
        if self
            .0
            .state
            .compare_exchange(QUEUED, REVOKED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            // Drop the closure now so anything it captured (the job's
            // shared search state) is released immediately.
            *self.0.task.lock() = None;
            true
        } else {
            false
        }
    }
}

struct PoolInner {
    queue: Mutex<VecDeque<Arc<TaskSlot>>>,
    available: Condvar,
    workers: usize,
    busy: AtomicUsize,
}

/// The bounded pool: a FIFO task queue drained by detached worker threads.
pub(crate) struct WorkerPool {
    inner: Arc<PoolInner>,
}

impl WorkerPool {
    fn with_workers(workers: usize) -> Self {
        let inner = Arc::new(PoolInner {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            workers,
            busy: AtomicUsize::new(0),
        });
        for i in 0..workers {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name(format!("ndp-pool-{i}"))
                .spawn(move || worker_main(&inner))
                .expect("spawn pool worker thread");
        }
        WorkerPool { inner }
    }

    /// Enqueues `task` and returns a handle that can revoke it while it is
    /// still waiting for a worker.
    pub(crate) fn submit(&self, task: Task) -> TaskHandle {
        let slot =
            Arc::new(TaskSlot { state: AtomicU8::new(QUEUED), task: Mutex::new(Some(task)) });
        self.inner.queue.lock().push_back(Arc::clone(&slot));
        self.inner.available.notify_one();
        TaskHandle(slot)
    }

    /// Number of worker threads in the pool.
    pub(crate) fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Workers currently executing a task (vs. parked).
    pub(crate) fn busy(&self) -> usize {
        self.inner.busy.load(Ordering::Relaxed)
    }
}

fn worker_main(inner: &PoolInner) {
    loop {
        let slot = {
            let mut queue = inner.queue.lock();
            loop {
                if let Some(slot) = queue.pop_front() {
                    break slot;
                }
                inner.available.wait(&mut queue);
            }
        };
        if slot
            .state
            .compare_exchange(QUEUED, CLAIMED, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            // Revoked while queued: the owner took it back.
            continue;
        }
        let Some(task) = slot.task.lock().take() else { continue };
        inner.busy.fetch_add(1, Ordering::Relaxed);
        // Tasks do their own panic-to-error conversion; this outer catch is
        // the backstop that keeps the pool thread alive no matter what.
        let _ = catch_unwind(AssertUnwindSafe(task));
        inner.busy.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The process-global pool, created on first use.
pub(crate) fn global() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| {
        // One thread per core up to the same cap as
        // `SolverOptions::effective_threads`; at least 2 so `threads = 2`
        // gets real parallelism even on single-core CI runners.
        let n = std::thread::available_parallelism().map_or(4, |n| n.get()).clamp(2, 8);
        WorkerPool::with_workers(n)
    })
}

/// Number of threads in the process-global solver worker pool.
///
/// Every parallel solve (`SolverOptions::threads ≥ 2`) draws its helper
/// workers from this shared, bounded pool; the calling thread of each solve
/// always participates as one additional worker. Exposed so services built
/// on the solver can report pool capacity in their stats.
pub fn worker_pool_size() -> usize {
    global().workers()
}

/// Pool workers currently busy executing a search task (best-effort,
/// instantaneous snapshot; intended for service telemetry).
pub fn worker_pool_busy() -> usize {
    global().busy()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::time::Duration;

    #[test]
    fn tasks_run_and_revocation_wins_only_before_a_claim() {
        let pool = WorkerPool::with_workers(1);
        let ran = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&ran);
        let h = pool.submit(Box::new(move || flag.store(true, Ordering::SeqCst)));
        // Wait for the single worker to drain the task.
        for _ in 0..2000 {
            if ran.load(Ordering::SeqCst) {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(ran.load(Ordering::SeqCst), "submitted task must run");
        assert!(!h.revoke(), "a claimed task cannot be revoked");
    }

    #[test]
    fn a_panicking_task_does_not_kill_the_worker() {
        let pool = WorkerPool::with_workers(1);
        let _ = pool.submit(Box::new(|| panic!("injected")));
        let ran = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&ran);
        let _ = pool.submit(Box::new(move || flag.store(true, Ordering::SeqCst)));
        for _ in 0..2000 {
            if ran.load(Ordering::SeqCst) {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(ran.load(Ordering::SeqCst), "worker must survive a panicking task");
    }

    #[test]
    fn revoked_tasks_never_run() {
        let pool = WorkerPool::with_workers(1);
        // Park the worker on a slow task so the next submission stays queued.
        let _slow = pool.submit(Box::new(|| std::thread::sleep(Duration::from_millis(200))));
        let ran = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&ran);
        let h = pool.submit(Box::new(move || flag.store(true, Ordering::SeqCst)));
        if h.revoke() {
            std::thread::sleep(Duration::from_millis(300));
            assert!(!ran.load(Ordering::SeqCst), "revoked task must not run");
        }
    }
}
