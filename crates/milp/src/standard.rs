//! Conversion of a [`Model`] into the solver's standard computational form.
//!
//! Standard form: minimize `cᵀx` subject to `A x + s = b`, `lb ≤ (x, s) ≤ ub`,
//! where one slack `s_r` is appended per row and the row sense is encoded in
//! the slack's bounds:
//!
//! * `≤` rows: `s ∈ [0, +∞)`
//! * `≥` rows: `s ∈ (−∞, 0]`
//! * `=` rows: `s ∈ [0, 0]`
//!
//! Maximization is handled by negating the cost vector; infinite bounds are
//! clamped to `±options.infinite_bound` so the bounded-variable simplex can
//! always start from a dual-feasible slack basis.

use crate::model::{ConstraintSense, Model, Objective};
use crate::options::SolverOptions;

/// A sparse column: `(row, coefficient)` pairs sorted by row.
pub(crate) type SparseCol = Vec<(usize, f64)>;

/// Standard-form data shared by the simplex and branch-and-bound.
#[derive(Debug, Clone)]
pub(crate) struct StandardForm {
    /// Structural columns (length `n`).
    pub cols: Vec<SparseCol>,
    /// Row-major mirror of the structural matrix: `rows[r]` lists the
    /// `(column, coefficient)` nonzeros of row `r`. Pricing iterates the
    /// nonzeros of the (usually very sparse) BTRAN row `ρ = eᵣᵀB⁻¹` and
    /// scatters through these rows instead of dotting every column with a
    /// dense `ρ`.
    pub rows_nz: Vec<Vec<(usize, f64)>>,
    /// Right-hand sides (length `m`).
    pub b: Vec<f64>,
    /// Structural costs (length `n`), already negated for maximization.
    pub c: Vec<f64>,
    /// Bounds for all `n + m` columns (structural then slack).
    pub lb: Vec<f64>,
    /// Upper bounds for all `n + m` columns.
    pub ub: Vec<f64>,
    /// Which original bounds were infinite before clamping (for unbounded
    /// detection), length `n + m`.
    pub clamped: Vec<bool>,
    /// Number of structural variables.
    pub n: usize,
    /// Number of rows.
    pub m: usize,
    /// Constant objective offset from the model's objective expression.
    pub obj_offset: f64,
    /// `true` when the model maximizes (results must be negated back).
    pub maximize: bool,
    /// The working infinity (`options.infinite_bound`) the bounds were
    /// clamped to; cut rows appended later reuse it for their slack bounds.
    pub big: f64,
}

impl StandardForm {
    /// Builds the standard form of `model`.
    pub fn from_model(model: &Model, options: &SolverOptions) -> Self {
        let n = model.num_vars();
        let m = model.num_constraints();
        let big = options.infinite_bound;

        let mut cols: Vec<SparseCol> = vec![Vec::new(); n];
        let mut b = Vec::with_capacity(m);
        let mut lb = Vec::with_capacity(n + m);
        let mut ub = Vec::with_capacity(n + m);
        let mut clamped = vec![false; n + m];

        for (j, v) in model.vars.iter().enumerate() {
            let mut l = v.lb;
            let mut u = v.ub;
            if l.is_infinite() || l < -big {
                l = -big;
                clamped[j] = true;
            }
            if u.is_infinite() || u > big {
                u = big;
                clamped[j] = true;
            }
            lb.push(l);
            ub.push(u);
        }

        for (r, row) in model.rows.iter().enumerate() {
            // Move the expression constant to the right-hand side.
            let rhs = row.rhs - row.expr.constant();
            b.push(rhs);
            for (var, coeff) in row.expr.iter() {
                if coeff != 0.0 {
                    cols[var.index()].push((r, coeff));
                }
            }
            let (sl, su) = match row.sense {
                ConstraintSense::Le => (0.0, big),
                ConstraintSense::Ge => (-big, 0.0),
                ConstraintSense::Eq => (0.0, 0.0),
            };
            if row.sense != ConstraintSense::Eq {
                clamped[n + r] = true;
            }
            lb.push(sl);
            ub.push(su);
        }

        let maximize = model.direction() == Objective::Maximize;
        let sign = if maximize { -1.0 } else { 1.0 };
        let mut c = vec![0.0; n];
        for (var, coeff) in model.objective().iter() {
            c[var.index()] = sign * coeff;
        }
        let obj_offset = model.objective().constant();

        let mut rows_nz: Vec<Vec<(usize, f64)>> = vec![Vec::new(); m];
        for (j, col) in cols.iter().enumerate() {
            for &(r, v) in col {
                rows_nz[r].push((j, v));
            }
        }

        StandardForm { cols, rows_nz, b, c, lb, ub, clamped, n, m, obj_offset, maximize, big }
    }

    /// Appends a cut row `Σ coeffs·x (sense) rhs` over structural columns.
    ///
    /// The new row's slack takes column index `n + m` (the end of the index
    /// space), so every existing column/row index keeps its meaning; the
    /// slack bounds encode the sense exactly like [`StandardForm::from_model`]
    /// (`≥` rows: `s ∈ [−big, 0]`, `≤` rows: `s ∈ [0, big]`).
    pub fn add_cut_row(&mut self, coeffs: &[(usize, f64)], rhs: f64, slack_lb: f64, slack_ub: f64) {
        let r = self.m;
        for &(j, v) in coeffs {
            debug_assert!(j < self.n, "cut coefficients must be structural");
            debug_assert!(v != 0.0);
            // `r` is the largest row index so far, so pushing keeps the
            // column's row ordering sorted.
            self.cols[j].push((r, v));
        }
        self.rows_nz.push(coeffs.to_vec());
        self.b.push(rhs);
        // Bounds are laid out structural-then-slack, so the new slack's slot
        // is exactly the end of `lb`/`ub`.
        self.lb.push(slack_lb);
        self.ub.push(slack_ub);
        self.clamped.push(true);
        self.m += 1;
    }

    /// Overwrites the bounds of structural column `j` in place, re-applying
    /// the clamping rules of [`StandardForm::from_model`]. Used by the
    /// incremental re-solve engine to patch a cached form after a
    /// [`ModelDelta`](crate::ModelDelta) instead of rebuilding it.
    pub fn set_var_bounds(&mut self, j: usize, lb: f64, ub: f64) {
        debug_assert!(j < self.n, "only structural bounds can be patched");
        let mut l = lb;
        let mut u = ub;
        let mut cl = false;
        if l.is_infinite() || l < -self.big {
            l = -self.big;
            cl = true;
        }
        if u.is_infinite() || u > self.big {
            u = self.big;
            cl = true;
        }
        self.lb[j] = l;
        self.ub[j] = u;
        self.clamped[j] = cl;
    }

    /// Overwrites the right-hand side of row `r` in place. `rhs` must
    /// already have the row expression's constant moved across (callers
    /// patch with `model_rhs - expr.constant()`).
    pub fn set_rhs(&mut self, r: usize, rhs: f64) {
        debug_assert!(r < self.m);
        self.b[r] = rhs;
    }

    /// Tombstones row `r` in place: all structural coefficients are removed
    /// (from both the column and row mirrors) and the row becomes the
    /// trivially true `0 ≤ 0`, mirroring how
    /// [`Model::apply_delta`](crate::Model::apply_delta) tombstones removed
    /// rows. Every other row and column index keeps its meaning.
    ///
    /// Not yet reached from the session layer (a row removal relaxes the
    /// model, so `ResolveSession` drops its carry instead of patching), but
    /// kept alongside the other patch methods for a future carry that
    /// survives removals with cuts re-checked.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn tombstone_row(&mut self, r: usize) {
        debug_assert!(r < self.m);
        for &(j, _) in &self.rows_nz[r] {
            self.cols[j].retain(|&(row, _)| row != r);
        }
        self.rows_nz[r].clear();
        self.b[r] = 0.0;
        // ≤-sense slack bounds: s ∈ [0, big], satisfied by s = 0.
        self.lb[self.n + r] = 0.0;
        self.ub[self.n + r] = self.big;
        self.clamped[self.n + r] = true;
    }

    /// Appends a model constraint row `Σ coeffs·x (sense) rhs` at the end of
    /// the row space, deriving the slack bounds and clamp flag from `sense`
    /// exactly like [`StandardForm::from_model`]. Returns the new row index.
    pub fn append_model_row(
        &mut self,
        coeffs: &[(usize, f64)],
        rhs: f64,
        sense: ConstraintSense,
    ) -> usize {
        let r = self.m;
        let (sl, su) = match sense {
            ConstraintSense::Le => (0.0, self.big),
            ConstraintSense::Ge => (-self.big, 0.0),
            ConstraintSense::Eq => (0.0, 0.0),
        };
        for &(j, v) in coeffs {
            debug_assert!(j < self.n, "row coefficients must be structural");
            if v != 0.0 {
                self.cols[j].push((r, v));
            }
        }
        self.rows_nz.push(coeffs.iter().copied().filter(|&(_, v)| v != 0.0).collect());
        self.b.push(rhs);
        self.lb.push(sl);
        self.ub.push(su);
        self.clamped.push(sense != ConstraintSense::Eq);
        self.m += 1;
        r
    }

    /// Appends a structural column with bounds `[lb, ub]` and model-space
    /// objective coefficient `obj` (sign-adjusted internally for
    /// maximization). The column starts empty; nonzeros arrive through
    /// subsequently appended rows. Returns the new column index.
    ///
    /// Appending a structural column implicitly shifts every slack index up
    /// by one (slack `r` lives at `n + r`); callers holding a
    /// [`BasisSnapshot`](crate::simplex::BasisSnapshot) must remap it.
    pub fn append_var(&mut self, lb: f64, ub: f64, obj: f64) -> usize {
        let j = self.n;
        let mut l = lb;
        let mut u = ub;
        let mut cl = false;
        if l.is_infinite() || l < -self.big {
            l = -self.big;
            cl = true;
        }
        if u.is_infinite() || u > self.big {
            u = self.big;
            cl = true;
        }
        self.cols.push(Vec::new());
        let sign = if self.maximize { -1.0 } else { 1.0 };
        self.c.push(sign * obj);
        // Bounds are laid out structural-then-slack: the new structural slot
        // is position `n`, in front of every slack.
        self.lb.insert(j, l);
        self.ub.insert(j, u);
        self.clamped.insert(j, cl);
        self.n += 1;
        j
    }

    /// The structural nonzeros of row `r` as `(column, coefficient)` pairs
    /// (the slack of row `r` is implicit: column `n + r`, coefficient 1).
    #[inline]
    pub fn row(&self, r: usize) -> &[(usize, f64)] {
        &self.rows_nz[r]
    }

    /// Converts an internal (minimization) objective value back to the
    /// model's orientation, including the constant offset.
    pub fn user_objective(&self, internal: f64) -> f64 {
        let signed = if self.maximize { -internal } else { internal };
        signed + self.obj_offset
    }

    /// The column for index `j`: structural columns come from `cols`, slack
    /// column `n + r` is the unit vector `e_r`.
    pub fn column(&self, j: usize) -> ColumnRef<'_> {
        if j < self.n {
            ColumnRef::Structural(&self.cols[j])
        } else {
            ColumnRef::Slack(j - self.n)
        }
    }

    /// Cost of column `j` (slacks cost zero).
    pub fn cost(&self, j: usize) -> f64 {
        if j < self.n {
            self.c[j]
        } else {
            0.0
        }
    }
}

/// Borrowed view of a standard-form column.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ColumnRef<'a> {
    /// A structural column with explicit nonzeros.
    Structural(&'a [(usize, f64)]),
    /// The slack unit column `e_r`.
    Slack(usize),
}

impl ColumnRef<'_> {
    /// Sparse dot product with a dense vector.
    #[inline]
    pub fn dot(&self, dense: &[f64]) -> f64 {
        match self {
            ColumnRef::Structural(nz) => nz.iter().map(|&(r, v)| dense[r] * v).sum(),
            ColumnRef::Slack(r) => dense[*r],
        }
    }

    /// Adds `scale ·
    /// column` into `out`.
    #[inline]
    pub fn axpy(&self, scale: f64, out: &mut [f64]) {
        match self {
            ColumnRef::Structural(nz) => {
                for &(r, v) in *nz {
                    out[r] += scale * v;
                }
            }
            ColumnRef::Slack(r) => out[*r] += scale,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinExpr, Model};

    #[test]
    fn slack_bounds_encode_sense() {
        let mut m = Model::new("t");
        let x = m.continuous("x", 0.0, 10.0).unwrap();
        m.add_le("le", LinExpr::from(x), 5.0);
        m.add_ge("ge", LinExpr::from(x), 1.0);
        m.add_eq("eq", LinExpr::from(x), 2.0);
        let sf = StandardForm::from_model(&m, &SolverOptions::default());
        assert_eq!(sf.m, 3);
        assert_eq!(sf.lb[1], 0.0); // ≤ slack
        assert!(sf.ub[1] > 1e8);
        assert!(sf.lb[2] < -1e8); // ≥ slack
        assert_eq!(sf.ub[2], 0.0);
        assert_eq!((sf.lb[3], sf.ub[3]), (0.0, 0.0)); // = slack
    }

    #[test]
    fn maximize_negates_costs() {
        let mut m = Model::new("t");
        let x = m.continuous("x", 0.0, 1.0).unwrap();
        m.set_objective(crate::Objective::Maximize, LinExpr::term(x, 3.0) + 2.0);
        let sf = StandardForm::from_model(&m, &SolverOptions::default());
        assert_eq!(sf.c[0], -3.0);
        // internal optimum -3 maps back to user objective 3 + offset 2.
        assert_eq!(sf.user_objective(-3.0), 5.0);
    }

    #[test]
    fn row_major_mirror_matches_columns() {
        let mut m = Model::new("t");
        let x = m.continuous("x", 0.0, 1.0).unwrap();
        let y = m.continuous("y", 0.0, 1.0).unwrap();
        m.add_le("r0", LinExpr::term(x, 2.0) + LinExpr::term(y, -3.0), 1.0);
        m.add_ge("r1", LinExpr::from(y), 0.5);
        let sf = StandardForm::from_model(&m, &SolverOptions::default());
        assert_eq!(sf.row(0), &[(0, 2.0), (1, -3.0)]);
        assert_eq!(sf.row(1), &[(1, 1.0)]);
        // Every column nonzero appears exactly once in its row mirror.
        let total: usize = (0..sf.m).map(|r| sf.row(r).len()).sum();
        let by_cols: usize = sf.cols.iter().map(Vec::len).sum();
        assert_eq!(total, by_cols);
    }

    #[test]
    fn add_cut_row_extends_all_mirrors() {
        let mut m = Model::new("t");
        let x = m.continuous("x", 0.0, 1.0).unwrap();
        let y = m.continuous("y", 0.0, 1.0).unwrap();
        m.add_le("r0", LinExpr::term(x, 2.0) + LinExpr::term(y, -3.0), 1.0);
        let mut sf = StandardForm::from_model(&m, &SolverOptions::default());
        let (n0, m0) = (sf.n, sf.m);
        sf.add_cut_row(&[(0, 1.0), (1, 1.0)], 0.5, -sf.big, 0.0);
        assert_eq!((sf.n, sf.m), (n0, m0 + 1));
        assert_eq!(sf.row(m0), &[(0, 1.0), (1, 1.0)]);
        assert_eq!(sf.b[m0], 0.5);
        // The ≥-sense slack landed at column n + m0 with bounds [-big, 0].
        assert_eq!(sf.ub[n0 + m0], 0.0);
        assert!(sf.lb[n0 + m0] < -1e8);
        assert!(sf.clamped[n0 + m0]);
        // Column mirrors stay sorted by row.
        for col in &sf.cols {
            assert!(col.windows(2).all(|w| w[0].0 < w[1].0));
        }
    }

    #[test]
    fn patch_methods_match_a_rebuild() {
        // Mutating the form in place must agree with from_model on the
        // equivalently mutated model.
        let build = |extra: bool| {
            let mut m = Model::new("t");
            let x = m.continuous("x", 0.0, 10.0).unwrap();
            let y = m.continuous("y", 0.0, 10.0).unwrap();
            m.add_le("r0", LinExpr::term(x, 2.0) + LinExpr::from(y), if extra { 4.0 } else { 5.0 });
            m.add_ge("r1", LinExpr::from(y), 1.0);
            if extra {
                let z = m.continuous("z", 0.0, f64::INFINITY).unwrap();
                m.objective.add_term(z, 2.5);
                m.add_eq("r2", LinExpr::from(z) + LinExpr::from(x), 3.0);
                m.set_bounds(x, 1.0, 10.0).unwrap();
            }
            m
        };
        let opts = SolverOptions::default();
        let mut patched = StandardForm::from_model(&build(false), &opts);
        patched.set_rhs(0, 4.0);
        let z = patched.append_var(0.0, f64::INFINITY, 2.5);
        patched.append_model_row(&[(z, 1.0), (0, 1.0)], 3.0, ConstraintSense::Eq);
        patched.set_var_bounds(0, 1.0, 10.0);
        let rebuilt = StandardForm::from_model(&build(true), &opts);
        assert_eq!(patched.n, rebuilt.n);
        assert_eq!(patched.m, rebuilt.m);
        assert_eq!(patched.b, rebuilt.b);
        assert_eq!(patched.c, rebuilt.c);
        assert_eq!(patched.lb, rebuilt.lb);
        assert_eq!(patched.ub, rebuilt.ub);
        assert_eq!(patched.clamped, rebuilt.clamped);
        for r in 0..patched.m {
            let mut a = patched.row(r).to_vec();
            let mut b = rebuilt.row(r).to_vec();
            a.sort_by_key(|&(j, _)| j);
            b.sort_by_key(|&(j, _)| j);
            assert_eq!(a, b, "row {r}");
        }
    }

    #[test]
    fn tombstoned_row_clears_both_mirrors() {
        let mut m = Model::new("t");
        let x = m.continuous("x", 0.0, 1.0).unwrap();
        let y = m.continuous("y", 0.0, 1.0).unwrap();
        m.add_le("r0", LinExpr::term(x, 2.0) + LinExpr::from(y), 1.0);
        m.add_ge("r1", LinExpr::from(y), 0.5);
        let mut sf = StandardForm::from_model(&m, &SolverOptions::default());
        sf.tombstone_row(0);
        assert!(sf.row(0).is_empty());
        assert!(sf.cols[0].is_empty());
        assert_eq!(sf.cols[1], vec![(1, 1.0)]);
        assert_eq!(sf.b[0], 0.0);
        assert_eq!(sf.lb[sf.n], 0.0);
        assert_eq!(sf.m, 2, "row indices stay valid");
    }

    #[test]
    fn expression_constant_moves_to_rhs() {
        let mut m = Model::new("t");
        let x = m.continuous("x", 0.0, 10.0).unwrap();
        m.add_le("r", LinExpr::from(x) + 1.5, 5.0);
        let sf = StandardForm::from_model(&m, &SolverOptions::default());
        assert_eq!(sf.b[0], 3.5);
    }
}
