//! MPS-format export/import.
//!
//! [`write_mps`] serializes a [`Model`] in the fixed-field MPS dialect
//! every industrial solver reads, so deployment MILPs can be inspected or
//! cross-checked externally (e.g. against Gurobi/CBC on another machine).
//! [`parse_mps`] reads the same dialect back, which the tests use for
//! round-tripping.
//!
//! Conventions: maximization is recorded with an `OBJSENSE MAX` section;
//! binary/integer variables are wrapped in `MARKER`/`INTORG`/`INTEND`;
//! bounds use `LO`/`UP`/`FX`/`MI`/`PL`/`BV`.

use crate::error::{MilpError, Result};
use crate::expr::LinExpr;
use crate::model::{ConstraintSense, Model, Objective, VarKind};
use std::collections::HashMap;
use std::fmt::Write as _;

const OBJ_NAME: &str = "COST";

fn sanitize(name: &str, fallback: &str, idx: usize) -> String {
    let cleaned: String =
        name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect();
    if cleaned.is_empty() || cleaned.chars().all(|c| c == '_') {
        format!("{fallback}{idx}")
    } else {
        format!("{fallback}{idx}_{}", &cleaned[..cleaned.len().min(16)])
    }
}

/// Serializes `model` as an MPS document.
pub fn write_mps(model: &Model) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "NAME          {}", sanitize(model.name(), "M", 0));
    if model.direction() == Objective::Maximize {
        let _ = writeln!(out, "OBJSENSE\n    MAX");
    }
    let _ = writeln!(out, "ROWS");
    let _ = writeln!(out, " N  {OBJ_NAME}");
    let row_names: Vec<String> =
        (0..model.num_constraints()).map(|r| sanitize(&model.rows[r].name, "R", r)).collect();
    for (r, row) in model.rows.iter().enumerate() {
        let tag = match row.sense {
            ConstraintSense::Le => 'L',
            ConstraintSense::Ge => 'G',
            ConstraintSense::Eq => 'E',
        };
        let _ = writeln!(out, " {tag}  {}", row_names[r]);
    }

    let col_names: Vec<String> =
        (0..model.num_vars()).map(|j| sanitize(&model.vars[j].name, "C", j)).collect();

    // COLUMNS: per variable, objective + row coefficients, with integer
    // markers around integral columns.
    let _ = writeln!(out, "COLUMNS");
    let mut integer_open = false;
    let mut marker = 0usize;
    for (j, col_name) in col_names.iter().enumerate() {
        let is_int = model.vars[j].kind != VarKind::Continuous;
        if is_int && !integer_open {
            let _ = writeln!(out, "    MARKER{marker}  'MARKER'  'INTORG'");
            marker += 1;
            integer_open = true;
        } else if !is_int && integer_open {
            let _ = writeln!(out, "    MARKER{marker}  'MARKER'  'INTEND'");
            marker += 1;
            integer_open = false;
        }
        let obj_coeff = model.objective().coefficient(crate::VarId(j));
        if obj_coeff != 0.0 {
            let _ = writeln!(out, "    {col_name}  {OBJ_NAME}  {obj_coeff}");
        }
        for (r, row) in model.rows.iter().enumerate() {
            let c = row.expr.coefficient(crate::VarId(j));
            if c != 0.0 {
                let _ = writeln!(out, "    {}  {}  {}", col_name, row_names[r], c);
            }
        }
    }
    if integer_open {
        let _ = writeln!(out, "    MARKER{marker}  'MARKER'  'INTEND'");
    }

    // RHS (row constants are folded: rhs' = rhs − expr.constant()).
    let _ = writeln!(out, "RHS");
    for (r, row) in model.rows.iter().enumerate() {
        let rhs = row.rhs - row.expr.constant();
        if rhs != 0.0 {
            let _ = writeln!(out, "    RHS1  {}  {}", row_names[r], rhs);
        }
    }
    if model.objective().constant() != 0.0 {
        // MPS convention: the objective "RHS" is the negated constant.
        let _ = writeln!(out, "    RHS1  {OBJ_NAME}  {}", -model.objective().constant());
    }

    let _ = writeln!(out, "BOUNDS");
    for (j, name) in col_names.iter().enumerate() {
        let v = &model.vars[j];
        if v.kind == VarKind::Binary && v.lb == 0.0 && v.ub == 1.0 {
            let _ = writeln!(out, " BV BND1  {name}");
            continue;
        }
        if v.lb == v.ub {
            let _ = writeln!(out, " FX BND1  {name}  {}", v.lb);
            continue;
        }
        if v.lb.is_infinite() {
            let _ = writeln!(out, " MI BND1  {name}");
        } else if v.lb != 0.0 {
            let _ = writeln!(out, " LO BND1  {name}  {}", v.lb);
        }
        if v.ub.is_infinite() {
            let _ = writeln!(out, " PL BND1  {name}");
        } else {
            let _ = writeln!(out, " UP BND1  {name}  {}", v.ub);
        }
    }
    let _ = writeln!(out, "ENDATA");
    out
}

/// Parses an MPS document produced by [`write_mps`] (free-format fields,
/// the sections and bound codes emitted above).
///
/// # Errors
///
/// Returns [`MilpError::NotANumber`] with a description of the offending
/// line for malformed input.
pub fn parse_mps(text: &str) -> Result<Model> {
    #[derive(PartialEq, Clone, Copy)]
    enum Section {
        None,
        ObjSense,
        Rows,
        Columns,
        Rhs,
        Bounds,
    }
    let bad = |line: &str| MilpError::NotANumber { context: format!("MPS line `{line}`") };

    let mut model = Model::new("mps");
    let mut section = Section::None;
    let mut maximize = false;
    let mut row_sense: HashMap<String, ConstraintSense> = HashMap::new();
    let mut row_order: Vec<String> = Vec::new();
    let mut row_expr: HashMap<String, LinExpr> = HashMap::new();
    let mut row_rhs: HashMap<String, f64> = HashMap::new();
    let mut obj = LinExpr::new();
    let mut obj_offset = 0.0;
    let mut cols: HashMap<String, crate::VarId> = HashMap::new();
    let mut col_kind: HashMap<String, VarKind> = HashMap::new();
    let mut integer_mode = false;
    // Bounds applied at the end (the variable set must be complete first).
    let mut lo: HashMap<String, f64> = HashMap::new();
    let mut up: HashMap<String, f64> = HashMap::new();

    for raw in text.lines() {
        let line = raw.trim_end();
        if line.is_empty() || line.starts_with('*') {
            continue;
        }
        let head = !raw.starts_with(' ') && !raw.starts_with('\t');
        let fields: Vec<&str> = line.split_whitespace().collect();
        if head {
            section = match fields[0] {
                "NAME" => Section::None,
                "OBJSENSE" => Section::ObjSense,
                "ROWS" => Section::Rows,
                "COLUMNS" => Section::Columns,
                "RHS" => Section::Rhs,
                "BOUNDS" => Section::Bounds,
                "RANGES" => Section::None,
                "ENDATA" => break,
                _ => return Err(bad(line)),
            };
            continue;
        }
        match section {
            Section::ObjSense if fields[0].eq_ignore_ascii_case("MAX") => maximize = true,
            Section::ObjSense => {}
            Section::Rows => {
                let sense = match fields[0] {
                    "N" => None,
                    "L" => Some(ConstraintSense::Le),
                    "G" => Some(ConstraintSense::Ge),
                    "E" => Some(ConstraintSense::Eq),
                    _ => return Err(bad(line)),
                };
                let name = fields.get(1).ok_or_else(|| bad(line))?.to_string();
                if let Some(s) = sense {
                    row_sense.insert(name.clone(), s);
                    row_order.push(name.clone());
                    row_expr.insert(name, LinExpr::new());
                }
            }
            Section::Columns => {
                if fields.len() >= 3 && fields[1].contains("MARKER") || fields.contains(&"'MARKER'")
                {
                    if fields.contains(&"'INTORG'") {
                        integer_mode = true;
                    } else if fields.contains(&"'INTEND'") {
                        integer_mode = false;
                    }
                    continue;
                }
                let col = fields[0].to_string();
                let var = *cols.entry(col.clone()).or_insert_with(|| {
                    col_kind.insert(
                        col.clone(),
                        if integer_mode { VarKind::Integer } else { VarKind::Continuous },
                    );
                    model
                        .add_var(
                            col.clone(),
                            if integer_mode { VarKind::Integer } else { VarKind::Continuous },
                            0.0,
                            f64::INFINITY,
                        )
                        .expect("default bounds valid")
                });
                // Pairs of (row, value) follow.
                let mut i = 1;
                while i + 1 < fields.len() {
                    let row = fields[i];
                    let value: f64 = fields[i + 1].parse().map_err(|_| bad(line))?;
                    if row == OBJ_NAME {
                        obj.add_term(var, value);
                    } else if let Some(e) = row_expr.get_mut(row) {
                        e.add_term(var, value);
                    } else {
                        return Err(bad(line));
                    }
                    i += 2;
                }
            }
            Section::Rhs => {
                let mut i = 1;
                while i + 1 < fields.len() {
                    let row = fields[i];
                    let value: f64 = fields[i + 1].parse().map_err(|_| bad(line))?;
                    if row == OBJ_NAME {
                        obj_offset = -value;
                    } else {
                        row_rhs.insert(row.to_string(), value);
                    }
                    i += 2;
                }
            }
            Section::Bounds => {
                let code = fields[0];
                let name = *fields.get(2).ok_or_else(|| bad(line))?;
                let var = cols.get(name).copied();
                let Some(var) = var else { return Err(bad(line)) };
                match code {
                    "BV" => {
                        col_kind.insert(name.to_string(), VarKind::Binary);
                        lo.insert(name.to_string(), 0.0);
                        up.insert(name.to_string(), 1.0);
                        let _ = var;
                    }
                    "FX" => {
                        let v: f64 = fields
                            .get(3)
                            .ok_or_else(|| bad(line))?
                            .parse()
                            .map_err(|_| bad(line))?;
                        lo.insert(name.to_string(), v);
                        up.insert(name.to_string(), v);
                    }
                    "LO" => {
                        let v: f64 = fields
                            .get(3)
                            .ok_or_else(|| bad(line))?
                            .parse()
                            .map_err(|_| bad(line))?;
                        lo.insert(name.to_string(), v);
                    }
                    "UP" => {
                        let v: f64 = fields
                            .get(3)
                            .ok_or_else(|| bad(line))?
                            .parse()
                            .map_err(|_| bad(line))?;
                        up.insert(name.to_string(), v);
                    }
                    "MI" => {
                        lo.insert(name.to_string(), f64::NEG_INFINITY);
                    }
                    "PL" => {
                        up.insert(name.to_string(), f64::INFINITY);
                    }
                    _ => return Err(bad(line)),
                }
            }
            _ => {}
        }
    }

    // Materialize rows in declaration order.
    for name in &row_order {
        let expr = row_expr.remove(name).expect("declared row");
        let sense = row_sense[name];
        let rhs = row_rhs.get(name).copied().unwrap_or(0.0);
        model.add_constraint(name, expr, sense, rhs);
    }
    obj.add_constant(obj_offset);
    model.set_objective(if maximize { Objective::Maximize } else { Objective::Minimize }, obj);

    // Apply bounds & kinds collected along the way. Integer columns without
    // explicit bounds default to [0, 1] per classic MPS; we keep [0, ∞) and
    // let explicit bounds rule, matching what `write_mps` emits.
    let names: Vec<String> = cols.keys().cloned().collect();
    for name in names {
        let var = cols[&name];
        let kind = col_kind[&name];
        let l = lo.get(&name).copied().unwrap_or(0.0);
        let u = up.get(&name).copied().unwrap_or(f64::INFINITY);
        model.set_bounds(var, l, u)?;
        if kind == VarKind::Binary {
            // Re-declare: bounds already [0,1]; kind is informational here
            // since branch-and-bound treats Integer ∩ [0,1] identically.
        }
    }
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolveStatus;

    fn knapsack() -> Model {
        let mut m = Model::new("ks");
        let a = m.binary("a");
        let b = m.binary("b");
        let c = m.binary("c");
        let w = LinExpr::term(a, 3.0) + LinExpr::term(b, 4.0) + LinExpr::term(c, 2.0);
        let v = LinExpr::term(a, 4.0) + LinExpr::term(b, 5.0) + LinExpr::term(c, 3.0);
        m.add_le("cap", w, 6.0);
        m.set_objective(Objective::Maximize, v);
        m
    }

    #[test]
    fn mps_contains_sections() {
        let text = write_mps(&knapsack());
        for section in ["NAME", "ROWS", "COLUMNS", "RHS", "BOUNDS", "ENDATA", "OBJSENSE"] {
            assert!(text.contains(section), "missing {section} in:\n{text}");
        }
        assert!(text.contains("'INTORG'"));
        assert!(text.contains(" BV "));
    }

    #[test]
    fn round_trip_preserves_optimum() {
        let original = knapsack();
        let text = write_mps(&original);
        let parsed = parse_mps(&text).expect("parse back");
        let a = original.solve().unwrap();
        let b = parsed.solve().unwrap();
        assert_eq!(a.status(), SolveStatus::Optimal);
        assert_eq!(b.status(), SolveStatus::Optimal);
        assert!((a.objective_value() - b.objective_value()).abs() < 1e-9);
    }

    #[test]
    fn round_trip_with_continuous_and_offsets() {
        let mut m = Model::new("mix");
        let x = m.binary("x");
        let w = m.continuous("w", -2.0, 5.0).unwrap();
        m.add_ge("lower", LinExpr::from(w) + LinExpr::term(x, 2.0), 1.0);
        m.add_eq("tie", LinExpr::from(w) - LinExpr::term(x, 3.0), 0.0);
        m.set_objective(Objective::Minimize, LinExpr::from(w) + LinExpr::term(x, 0.5) + 7.0);
        let text = write_mps(&m);
        let parsed = parse_mps(&text).unwrap();
        let a = m.solve().unwrap();
        let b = parsed.solve().unwrap();
        assert_eq!(a.status(), b.status());
        assert!((a.objective_value() - b.objective_value()).abs() < 1e-9);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_mps("GARBAGE SECTION\n nonsense").is_err());
    }
}
