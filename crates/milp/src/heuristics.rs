//! Root primal heuristics: relaxation-guided diving plus RINS/RENS
//! neighborhood sub-MILPs, run once between the root cut loop and the tree
//! search.
//!
//! All three heuristics try to hand the search a strong starting incumbent
//! so bound pruning bites from the first node:
//!
//! * **Dive** — solve the root LP on a private simplex, then repeatedly fix
//!   the most fractional integer column to a nearby integer and
//!   re-optimize warm (each fix is one dual-simplex bound change). Near-half
//!   fractionalities break ties through a seeded xorshift64* generator, so
//!   repeated runs take the identical trajectory.
//! * **RENS** — restrict every integer column to `[⌊x*⌋, ⌈x*⌉]` around the
//!   root LP point `x*` and solve the restriction as a sub-MILP with a
//!   small node budget ([`SolverOptions::heuristic_node_limit`]).
//! * **RINS** — fix the integer columns where the incumbent and the root LP
//!   point agree and search the remaining neighborhood the same way.
//!
//! Sub-MILPs run serial, observer-less and with `heuristics` off (no
//! recursion); they inherit the parent's tolerances, cut configuration,
//! cancel token and remaining wall-clock budget. Every accepted point is
//! validated against the *original* model rows and emits a
//! [`SolverEvent::HeuristicIncumbent`]; time spent here lands in the
//! disjoint [`SolveStats::heuristic_seconds`](crate::SolveStats) bucket.
//! Nothing here reads the clock for decisions (deadlines only bound work),
//! so serial solves without a time limit stay bit-for-bit deterministic.

use crate::branch::internal_objective;
use crate::events::{ObserverHandle, SolverEvent};
use crate::model::{Model, VarId};
use crate::options::SolverOptions;
use crate::simplex::{LpStatus, Simplex};
use crate::standard::StandardForm;
use std::time::Instant;

/// Work accounting of the heuristic phase, folded into
/// [`SolveStats`](crate::SolveStats) by [`crate::branch::solve`].
#[derive(Debug, Default)]
pub(crate) struct HeuristicOutcome {
    /// Wall seconds of the whole phase (LP and sub-MILP solves included).
    pub(crate) seconds: f64,
    /// Improving incumbents accepted.
    pub(crate) accepted: u64,
}

/// The seeded tie-break generator (xorshift64*), matching the simplex's
/// perturbation seed so every run of the same model dives identically.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// Wall seconds left before the parent's deadline (`+inf` without one).
fn remaining(options: &SolverOptions, start: Instant) -> f64 {
    if options.time_limit.is_finite() {
        options.time_limit - start.elapsed().as_secs_f64()
    } else {
        f64::INFINITY
    }
}

/// Options of a neighborhood sub-MILP: serial, quiet, budgeted, and
/// heuristics off so the recursion stops at depth one.
fn sub_options(options: &SolverOptions, start: Instant) -> SolverOptions {
    let mut sub = options.clone();
    sub.threads = 1;
    sub.heuristics = false;
    sub.node_limit = options.heuristic_node_limit;
    sub.observer = ObserverHandle::none();
    if options.time_limit.is_finite() {
        sub.time_limit = remaining(options, start).max(0.0);
    }
    sub
}

/// Validates `cand` against the original model and installs it as the best
/// point when it strictly improves; emits the heuristic-incumbent event.
fn offer(
    model: &Model,
    sf: &StandardForm,
    options: &SolverOptions,
    best: &mut Option<(Vec<f64>, f64)>,
    out: &mut HeuristicOutcome,
    heuristic: &'static str,
    cand: &[f64],
) -> bool {
    let tol = options.feasibility_tol.max(options.integrality_tol);
    if !model.is_feasible(cand, tol * 10.0) {
        return false;
    }
    let obj = internal_objective(model, sf, cand);
    if best.as_ref().is_some_and(|&(_, b)| obj >= b) {
        return false;
    }
    let objective = sf.user_objective(obj);
    options.observer.emit(|| SolverEvent::HeuristicIncumbent { heuristic, objective });
    *best = Some((cand.to_vec(), obj));
    out.accepted += 1;
    true
}

/// Runs the root heuristic phase over the post-cut form and returns the
/// best starting incumbent (internal scale) — the warm hint when nothing
/// improved on it. `out` collects the time bucket and acceptance count.
#[allow(clippy::too_many_arguments)] // mirrors the search entry points
pub(crate) fn run_root(
    model: &Model,
    sf: &StandardForm,
    options: &SolverOptions,
    int_cols: &[usize],
    root_bounds: &[(f64, f64)],
    warm: Option<(Vec<f64>, f64)>,
    start: Instant,
    out: &mut HeuristicOutcome,
) -> Option<(Vec<f64>, f64)> {
    // The form's structural columns must mirror the model's variables —
    // a model delta that was not propagated into `sf` would make every
    // dive and neighborhood search index the wrong columns.
    debug_assert_eq!(sf.n, model.num_vars(), "form out of sync with the model");
    debug_assert_eq!(root_bounds.len(), model.num_vars());
    let t0 = Instant::now();
    let mut best = warm;
    let int_tol = options.integrality_tol;

    // Root LP on a private simplex: the dive mutates its bounds freely
    // without touching the search workers' state.
    let mut lp = Simplex::new(sf, options);
    if options.time_limit.is_finite() {
        lp.deadline = Some(start + std::time::Duration::from_secs_f64(options.time_limit));
    }
    for &j in int_cols {
        let (l, u) = root_bounds[j];
        lp.set_bounds(j, l, u);
    }
    lp.refresh();
    if !matches!(lp.optimize(), Ok(LpStatus::Optimal)) {
        out.seconds = t0.elapsed().as_secs_f64();
        return best;
    }
    let mut x = Vec::new();
    lp.values_into(&mut x);
    let x_root: Vec<f64> = x[..sf.n].to_vec();

    // Phase 1: dive. Fix the most fractional column toward its nearest
    // integer and re-optimize warm; an integral end point is a candidate.
    let mut rng = XorShift(0x9e37_79b9_7f4a_7c15);
    for _ in 0..=int_cols.len() {
        if options.cancelled() || remaining(options, start) <= 0.0 {
            break;
        }
        let mut pick: Option<(usize, f64, f64)> = None;
        for &j in int_cols {
            let v = x[j];
            let f = (v - v.round()).abs();
            if f > int_tol && pick.is_none_or(|(_, _, pf)| f > pf) {
                pick = Some((j, v, f));
            }
        }
        let Some((j, v, _)) = pick else {
            let mut cand: Vec<f64> = x[..sf.n].to_vec();
            for &j in int_cols {
                cand[j] = cand[j].round();
            }
            offer(model, sf, options, &mut best, out, "dive", &cand);
            break;
        };
        let f = v - v.floor();
        let target = if (0.45..=0.55).contains(&f) {
            // Near-half fractionality carries no rounding signal: break the
            // tie with the seeded generator so runs stay reproducible.
            if rng.next() & 1 == 0 {
                v.floor()
            } else {
                v.ceil()
            }
        } else {
            v.round()
        };
        let t = target.clamp(lp.lb[j], lp.ub[j]);
        lp.set_bounds(j, t, t);
        lp.refresh();
        match lp.optimize() {
            Ok(LpStatus::Optimal) => lp.values_into(&mut x),
            _ => break, // infeasible dive or numerics: keep what we have
        }
    }

    // Phase 2: RENS around the root LP point.
    if options.heuristic_node_limit > 0 && !options.cancelled() && remaining(options, start) > 0.05
    {
        let mut sub_model = model.clone();
        for &j in int_cols {
            let mut v = x_root[j];
            if (v - v.round()).abs() <= int_tol {
                v = v.round();
            }
            let (rl, ru) = root_bounds[j];
            let l = v.floor().max(rl);
            let u = v.ceil().min(ru).max(l);
            let _ = sub_model.set_bounds(VarId(j), l, u);
        }
        if let Some((v, _)) = &best {
            let _ = sub_model.set_warm_start(v.clone());
        }
        if let Ok(sol) = sub_model.solve_with(&sub_options(options, start)) {
            if sol.has_incumbent() {
                offer(model, sf, options, &mut best, out, "rens", sol.values());
            }
        }
    }

    // Phase 3: RINS — fix the columns where the incumbent and the root LP
    // point agree, search the disagreement neighborhood.
    if options.heuristic_node_limit > 0 && !options.cancelled() && remaining(options, start) > 0.05
    {
        if let Some((inc, _)) = best.clone() {
            let mut sub_model = model.clone();
            let mut fixed = 0usize;
            for &j in int_cols {
                let iv = inc[j].round();
                if (x_root[j] - iv).abs() <= int_tol.max(1e-6) {
                    let _ = sub_model.fix(VarId(j), iv);
                    fixed += 1;
                }
            }
            // All fixed re-proves the incumbent, none fixed is the full
            // problem again: only a strict neighborhood is worth a solve.
            if fixed > 0 && fixed < int_cols.len() {
                let _ = sub_model.set_warm_start(inc);
                if let Ok(sol) = sub_model.solve_with(&sub_options(options, start)) {
                    if sol.has_incumbent() {
                        offer(model, sf, options, &mut best, out, "rins", sol.values());
                    }
                }
            }
        }
    }

    out.seconds = t0.elapsed().as_secs_f64();
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinExpr, Objective};

    fn knapsack() -> Model {
        let mut m = Model::new("hk");
        let mut weight = LinExpr::new();
        let mut value = LinExpr::new();
        for i in 0..10 {
            let w = 7.0 + ((i as f64) * 3.0) % 5.0;
            let x = m.binary(format!("x{i}"));
            weight.add_term(x, w);
            value.add_term(x, w + 1.0 + (i as f64) * 0.1);
        }
        m.add_le("cap", weight, 41.0);
        m.set_objective(Objective::Maximize, value);
        m
    }

    fn setup(
        model: &Model,
        options: &SolverOptions,
    ) -> (StandardForm, Vec<usize>, Vec<(f64, f64)>) {
        let sf = StandardForm::from_model(model, options);
        let int_cols: Vec<usize> = (0..model.num_vars()).collect();
        let root_bounds: Vec<(f64, f64)> =
            (0..model.num_vars()).map(|j| (sf.lb[j].ceil(), sf.ub[j].floor())).collect();
        (sf, int_cols, root_bounds)
    }

    #[test]
    fn heuristics_find_a_feasible_incumbent() {
        let model = knapsack();
        let options = SolverOptions::default().threads(1);
        let (sf, int_cols, root_bounds) = setup(&model, &options);
        let mut out = HeuristicOutcome::default();
        let best = run_root(
            &model,
            &sf,
            &options,
            &int_cols,
            &root_bounds,
            None,
            Instant::now(),
            &mut out,
        );
        let (values, obj) = best.expect("the knapsack has trivial feasible points");
        assert!(model.is_feasible(&values, 1e-6), "incumbent must satisfy the model");
        assert!((internal_objective(&model, &sf, &values) - obj).abs() < 1e-9);
        assert!(out.accepted >= 1);
        assert!(out.seconds >= 0.0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "form out of sync with the model")]
    fn stale_form_is_caught_in_debug() {
        let mut model = knapsack();
        let options = SolverOptions::default().threads(1);
        // Form built before the model grew a column (an unpropagated delta).
        let sf = StandardForm::from_model(&model, &options);
        model.binary("late");
        let int_cols: Vec<usize> = (0..model.num_vars()).collect();
        let root_bounds = vec![(0.0, 1.0); model.num_vars()];
        let mut out = HeuristicOutcome::default();
        let _ = run_root(
            &model,
            &sf,
            &options,
            &int_cols,
            &root_bounds,
            None,
            Instant::now(),
            &mut out,
        );
    }

    #[test]
    fn repeated_runs_agree_bit_for_bit() {
        let model = knapsack();
        let options = SolverOptions::default().threads(1);
        let (sf, int_cols, root_bounds) = setup(&model, &options);
        let run = || {
            let mut out = HeuristicOutcome::default();
            let best = run_root(
                &model,
                &sf,
                &options,
                &int_cols,
                &root_bounds,
                None,
                Instant::now(),
                &mut out,
            );
            (best.map(|(v, o)| (v, o.to_bits())), out.accepted)
        };
        assert_eq!(run(), run(), "seeded heuristics must replay identically");
    }

    #[test]
    fn worse_points_never_replace_the_warm_hint() {
        let model = knapsack();
        let options = SolverOptions::default().threads(1);
        let (sf, int_cols, root_bounds) = setup(&model, &options);
        // A deliberately unbeatable warm objective: heuristics must keep it.
        let all_zero = vec![0.0; model.num_vars()];
        let warm = Some((all_zero.clone(), f64::NEG_INFINITY));
        let mut out = HeuristicOutcome::default();
        let best = run_root(
            &model,
            &sf,
            &options,
            &int_cols,
            &root_bounds,
            warm,
            Instant::now(),
            &mut out,
        );
        let (values, obj) = best.unwrap();
        assert_eq!(values, all_zero);
        assert_eq!(obj, f64::NEG_INFINITY);
        assert_eq!(out.accepted, 0);
    }

    #[test]
    fn sub_milps_inherit_the_remaining_budget_and_the_parent_token() {
        let token = crate::CancelToken::new();
        let options =
            SolverOptions::default().threads(8).time_limit(10.0).cancel_token(token.clone());
        // A solve that started 4 seconds ago has 6 seconds of budget left:
        // the sub-MILP must inherit the *remaining* budget, not the parent's
        // full limit (that is exactly the overshoot bug).
        let start = Instant::now() - std::time::Duration::from_secs(4);
        let sub = sub_options(&options, start);
        assert_eq!(sub.threads, 1, "sub-MILPs must stay serial");
        assert!(!sub.heuristics, "no recursive heuristic phases");
        assert_eq!(sub.node_limit, options.heuristic_node_limit);
        assert!(
            sub.time_limit <= 6.0 + 0.1,
            "sub-MILP budget {} must be capped at the parent's remaining 6 s",
            sub.time_limit
        );
        assert!(sub.time_limit > 5.0, "remaining budget unexpectedly small: {}", sub.time_limit);
        // The token is shared with the parent, not copied: cancelling the
        // parent must cancel an in-flight sub-MILP.
        assert!(!sub.cancelled());
        token.cancel();
        assert!(sub.cancelled(), "parent CancelToken must reach the sub-MILP");
    }

    #[test]
    fn an_exhausted_budget_pins_the_overshoot_to_the_root_lp() {
        // Near-deadline parent: 5 s limit of which ~4.96 s are already
        // spent. Even with an effectively unbounded sub-MILP node budget,
        // the phase may only run the root LP — the dive loop and both
        // sub-MILPs must observe the exhausted budget and back off, so the
        // overshoot is bounded by one LP solve, not a full sub-MILP.
        let model = knapsack();
        let mut options = SolverOptions::default().threads(1).time_limit(5.0);
        options.heuristic_node_limit = usize::MAX / 2;
        let (sf, int_cols, root_bounds) = setup(&model, &options);
        let start = Instant::now() - std::time::Duration::from_millis(4960);
        let t0 = Instant::now();
        let mut out = HeuristicOutcome::default();
        let _ = run_root(&model, &sf, &options, &int_cols, &root_bounds, None, start, &mut out);
        let elapsed = t0.elapsed().as_secs_f64();
        // Generous CI margin; without inheritance the sub-MILPs would be
        // free to burn their node budget for arbitrarily long.
        assert!(elapsed < 2.0, "heuristic phase overshot an exhausted deadline by {elapsed} s");
    }

    #[test]
    fn a_full_solve_with_heuristics_respects_a_tight_time_limit() {
        // End-to-end pin through the public API: heuristics on, huge
        // sub-MILP node budget, tiny wall budget.
        let model = knapsack();
        let options = SolverOptions::default()
            .threads(1)
            .time_limit(0.25)
            .heuristic_node_limit(usize::MAX / 2);
        let t0 = Instant::now();
        let _ = model.solve_with(&options).expect("budgeted solve");
        let elapsed = t0.elapsed().as_secs_f64();
        assert!(elapsed < 2.25, "solve overshot its 0.25 s budget by {} s", elapsed - 0.25);
    }

    #[test]
    fn cancelled_token_skips_the_sub_milps() {
        let model = knapsack();
        let token = crate::CancelToken::new();
        token.cancel();
        let options = SolverOptions::default().threads(1).cancel_token(token);
        let (sf, int_cols, root_bounds) = setup(&model, &options);
        let mut out = HeuristicOutcome::default();
        // The root LP may still solve (cancellation is cooperative), but no
        // dive iteration or sub-MILP may run once the token is cancelled.
        let _ = run_root(
            &model,
            &sf,
            &options,
            &int_cols,
            &root_bounds,
            None,
            Instant::now(),
            &mut out,
        );
        assert_eq!(out.accepted, 0, "cancelled phase must not accept points");
    }
}
