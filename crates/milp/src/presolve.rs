//! Presolve: model reductions applied before the simplex sees the problem.
//!
//! Implemented reductions, iterated to a fixpoint:
//!
//! 1. **Singleton rows** — a constraint with one variable becomes a bound.
//! 2. **Fixed-variable substitution** — variables with `lb = ub` are folded
//!    into the row activities and removed.
//! 3. **Activity-based row analysis** — rows whose minimum possible
//!    activity already satisfies them are dropped; rows whose maximum
//!    activity cannot reach them prove infeasibility.
//! 4. **Activity-based bound tightening** — classic interval propagation
//!    over `≤`/`≥`/`=` rows, with integral rounding for integer variables.
//!
//! The reduced model keeps a mapping back to the original variable space so
//! incumbents can be postsolved.

use crate::error::Result;
use crate::expr::LinExpr;
use crate::model::{ConstraintSense, Model, VarId, VarKind};

/// Outcome of presolving a model.
#[derive(Debug)]
pub enum Presolved {
    /// The model was proven infeasible during reduction.
    Infeasible,
    /// A reduced model plus the postsolve mapping.
    Reduced(Reduction),
}

/// A reduced model and the data needed to undo the reduction.
#[derive(Debug)]
pub struct Reduction {
    /// The smaller model.
    pub model: Model,
    /// For each *original* variable: either its fixed value or its column
    /// in the reduced model.
    mapping: Vec<MapEntry>,
    /// Original variable count.
    original_vars: usize,
}

#[derive(Debug, Clone, Copy)]
enum MapEntry {
    Fixed(f64),
    Kept(usize),
}

impl Reduction {
    /// Maps a reduced-space assignment back to the original space.
    ///
    /// # Panics
    ///
    /// Panics if `reduced.len()` does not match the reduced model.
    pub fn postsolve(&self, reduced: &[f64]) -> Vec<f64> {
        assert_eq!(reduced.len(), self.model.num_vars(), "reduced solution length");
        (0..self.original_vars)
            .map(|j| match self.mapping[j] {
                MapEntry::Fixed(v) => v,
                MapEntry::Kept(col) => reduced[col],
            })
            .collect()
    }

    /// Maps an original-space assignment into the reduced space (for warm
    /// starts). Returns `None` when the assignment conflicts with a fixing
    /// or falls outside the tightened bounds of a kept variable (such a
    /// point is infeasible in the reduced model and must not seed it).
    pub fn presolve_point(&self, original: &[f64], tol: f64) -> Option<Vec<f64>> {
        if original.len() != self.original_vars {
            return None;
        }
        let mut out = vec![0.0; self.model.num_vars()];
        for (j, &v) in original.iter().enumerate() {
            match self.mapping[j] {
                MapEntry::Fixed(f) => {
                    if (f - v).abs() > tol {
                        return None;
                    }
                }
                MapEntry::Kept(col) => {
                    let (lo, hi) = self.model.bounds(VarId(col));
                    if v < lo - tol || v > hi + tol {
                        return None;
                    }
                    out[col] = v;
                }
            }
        }
        Some(out)
    }

    /// Number of variables eliminated by presolve.
    pub fn eliminated_vars(&self) -> usize {
        self.original_vars - self.model.num_vars()
    }
}

/// Runs presolve on `model`.
///
/// # Errors
///
/// Currently infallible beyond propagating internal bound errors (which
/// cannot occur for bounds produced by tightening).
pub fn presolve(model: &Model, feasibility_tol: f64) -> Result<Presolved> {
    let n = model.num_vars();
    let mut lb: Vec<f64> = (0..n).map(|j| model.bounds(VarId(j)).0).collect();
    let mut ub: Vec<f64> = (0..n).map(|j| model.bounds(VarId(j)).1).collect();
    let kinds: Vec<VarKind> = (0..n).map(|j| model.var_kind(VarId(j))).collect();
    let mut row_alive: Vec<bool> = vec![true; model.num_constraints()];
    let tol = feasibility_tol;

    // Round integer bounds inward once up front.
    for j in 0..n {
        if kinds[j] != VarKind::Continuous {
            lb[j] = lb[j].ceil();
            ub[j] = ub[j].floor();
            if lb[j] > ub[j] {
                return Ok(Presolved::Infeasible);
            }
        }
    }

    // Fixpoint loop, bounded for safety.
    for _round in 0..16 {
        let mut changed = false;
        for (r, row) in model.rows.iter().enumerate() {
            if !row_alive[r] {
                continue;
            }
            let rhs = row.rhs - row.expr.constant();
            let terms: Vec<(usize, f64)> =
                row.expr.iter().filter(|&(_, c)| c != 0.0).map(|(v, c)| (v.index(), c)).collect();

            if terms.is_empty() {
                let ok = match row.sense {
                    ConstraintSense::Le => 0.0 <= rhs + tol,
                    ConstraintSense::Ge => 0.0 >= rhs - tol,
                    ConstraintSense::Eq => rhs.abs() <= tol,
                };
                if !ok {
                    return Ok(Presolved::Infeasible);
                }
                row_alive[r] = false;
                changed = true;
                continue;
            }

            // Interval activity.
            let mut act_min = 0.0;
            let mut act_max = 0.0;
            for &(j, c) in &terms {
                if c > 0.0 {
                    act_min += c * lb[j];
                    act_max += c * ub[j];
                } else {
                    act_min += c * ub[j];
                    act_max += c * lb[j];
                }
            }

            // Feasibility / redundancy.
            match row.sense {
                ConstraintSense::Le => {
                    if act_min > rhs + tol {
                        return Ok(Presolved::Infeasible);
                    }
                    if act_max <= rhs + tol {
                        row_alive[r] = false;
                        changed = true;
                        continue;
                    }
                }
                ConstraintSense::Ge => {
                    if act_max < rhs - tol {
                        return Ok(Presolved::Infeasible);
                    }
                    if act_min >= rhs - tol {
                        row_alive[r] = false;
                        changed = true;
                        continue;
                    }
                }
                ConstraintSense::Eq => {
                    if act_min > rhs + tol || act_max < rhs - tol {
                        return Ok(Presolved::Infeasible);
                    }
                }
            }

            // Bound tightening from row activities: for x_j with coeff c,
            // ≤-rows imply c·x_j ≤ rhs − act_min_without_j.
            let tighten_le = row.sense != ConstraintSense::Ge;
            let tighten_ge = row.sense != ConstraintSense::Le;
            for &(j, c) in &terms {
                let (self_min, self_max) =
                    if c > 0.0 { (c * lb[j], c * ub[j]) } else { (c * ub[j], c * lb[j]) };
                let rest_min = act_min - self_min;
                let rest_max = act_max - self_max;
                // Infinite activities make the implied bounds vacuous (and
                // ∞−∞ would poison the arithmetic with NaN).
                if tighten_le && rest_min.is_finite() {
                    // c·x ≤ rhs − rest_min
                    let cap = rhs - rest_min;
                    if c > 0.0 {
                        let mut new_ub = cap / c;
                        if kinds[j] != VarKind::Continuous {
                            new_ub = (new_ub + tol).floor();
                        }
                        if new_ub < ub[j] - tol {
                            ub[j] = new_ub;
                            changed = true;
                        }
                    } else {
                        let mut new_lb = cap / c;
                        if kinds[j] != VarKind::Continuous {
                            new_lb = (new_lb - tol).ceil();
                        }
                        if new_lb > lb[j] + tol {
                            lb[j] = new_lb;
                            changed = true;
                        }
                    }
                }
                if tighten_ge && rest_max.is_finite() {
                    // c·x ≥ rhs − rest_max
                    let floor_ = rhs - rest_max;
                    if c > 0.0 {
                        let mut new_lb = floor_ / c;
                        if kinds[j] != VarKind::Continuous {
                            new_lb = (new_lb - tol).ceil();
                        }
                        if new_lb > lb[j] + tol {
                            lb[j] = new_lb;
                            changed = true;
                        }
                    } else {
                        let mut new_ub = floor_ / c;
                        if kinds[j] != VarKind::Continuous {
                            new_ub = (new_ub + tol).floor();
                        }
                        if new_ub < ub[j] - tol {
                            ub[j] = new_ub;
                            changed = true;
                        }
                    }
                }
                if lb[j] > ub[j] + tol {
                    return Ok(Presolved::Infeasible);
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Build the reduced model: drop fixed variables and dead rows. Integer
    // variables are fixed whenever their interval holds a single integer;
    // continuous variables only when the interval has effectively zero
    // width. Fixing a merely tol-wide continuous interval to its midpoint
    // would inject an O(tol) error that a large row coefficient can amplify
    // past the feasibility tolerance after substitution.
    let fixed: Vec<bool> = (0..n)
        .map(|j| {
            let width = ub[j] - lb[j];
            if kinds[j] != VarKind::Continuous {
                width <= tol
            } else {
                // `is_finite` matters: an infinite interval must never be
                // "fixed" (∞ ≤ 1e-12·∞ is true in IEEE arithmetic).
                width.is_finite() && width <= 1e-12 * (1.0 + lb[j].abs().max(ub[j].abs()))
            }
        })
        .collect();
    let mut mapping = Vec::with_capacity(n);
    let mut reduced = Model::new(format!("{}-presolved", model.name()));
    for j in 0..n {
        if fixed[j] {
            // Snap integers exactly.
            let v =
                if kinds[j] != VarKind::Continuous { lb[j].round() } else { (lb[j] + ub[j]) / 2.0 };
            mapping.push(MapEntry::Fixed(v));
        } else {
            let col = reduced
                .add_var(model.var_name(VarId(j)), kinds[j], lb[j], ub[j])
                .expect("tightened bounds are ordered");
            reduced.set_branch_priority(col, model.vars[j].branch_priority);
            mapping.push(MapEntry::Kept(col.index()));
        }
    }
    for (r, row) in model.rows.iter().enumerate() {
        if !row_alive[r] {
            continue;
        }
        let mut expr = LinExpr::constant_term(row.expr.constant());
        let mut nontrivial = false;
        for (v, c) in row.expr.iter() {
            match mapping[v.index()] {
                MapEntry::Fixed(val) => {
                    expr.add_constant(c * val);
                }
                MapEntry::Kept(col) => {
                    expr.add_term(VarId(col), c);
                    nontrivial = true;
                }
            }
        }
        if nontrivial {
            reduced.add_constraint(&row.name, expr, row.sense, row.rhs);
        } else {
            // Fully substituted: check it holds.
            let lhs = expr.constant();
            let ok = match row.sense {
                ConstraintSense::Le => lhs <= row.rhs + tol,
                ConstraintSense::Ge => lhs >= row.rhs - tol,
                ConstraintSense::Eq => (lhs - row.rhs).abs() <= tol,
            };
            if !ok {
                return Ok(Presolved::Infeasible);
            }
        }
    }
    let mut objective = LinExpr::constant_term(model.objective().constant());
    for (v, c) in model.objective().iter() {
        match mapping[v.index()] {
            MapEntry::Fixed(val) => {
                objective.add_constant(c * val);
            }
            MapEntry::Kept(col) => {
                objective.add_term(VarId(col), c);
            }
        }
    }
    reduced.set_objective(model.direction(), objective);

    Ok(Presolved::Reduced(Reduction { model: reduced, mapping, original_vars: n }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Objective;

    #[test]
    fn singleton_row_becomes_bound() {
        // x in [0,10], row x <= 3 → ub tightened, row dropped.
        let mut m = Model::new("t");
        let x = m.continuous("x", 0.0, 10.0).unwrap();
        m.add_le("cap", LinExpr::from(x), 3.0);
        let Presolved::Reduced(r) = presolve(&m, 1e-9).unwrap() else { panic!("feasible") };
        assert_eq!(r.model.num_constraints(), 0);
        assert_eq!(r.model.bounds(crate::VarId(0)).1, 3.0);
    }

    #[test]
    fn fixed_variables_are_substituted() {
        // x fixed at 2; row x + y <= 5 → y <= 3 via activity, y kept.
        let mut m = Model::new("t");
        let x = m.continuous("x", 2.0, 2.0).unwrap();
        let y = m.continuous("y", 0.0, 10.0).unwrap();
        m.add_le("cap", LinExpr::from(x) + y, 5.0);
        let Presolved::Reduced(r) = presolve(&m, 1e-9).unwrap() else { panic!("feasible") };
        assert_eq!(r.eliminated_vars(), 1);
        // Postsolve round-trip.
        let full = r.postsolve(&vec![1.5; r.model.num_vars()]);
        assert_eq!(full[x.index()], 2.0);
        assert_eq!(full[y.index()], 1.5);
    }

    #[test]
    fn infeasible_row_detected() {
        let mut m = Model::new("t");
        let x = m.binary("x");
        m.add_ge("impossible", LinExpr::from(x), 2.0);
        assert!(matches!(presolve(&m, 1e-9).unwrap(), Presolved::Infeasible));
    }

    #[test]
    fn redundant_row_dropped() {
        let mut m = Model::new("t");
        let x = m.binary("x");
        let y = m.binary("y");
        m.add_le("loose", LinExpr::from(x) + y, 5.0);
        let Presolved::Reduced(r) = presolve(&m, 1e-9).unwrap() else { panic!("feasible") };
        assert_eq!(r.model.num_constraints(), 0);
    }

    #[test]
    fn integer_rounding_in_tightening() {
        // 2x <= 5 with x integer → x <= 2.
        let mut m = Model::new("t");
        let x = m.integer("x", 0.0, 10.0).unwrap();
        m.add_le("cap", LinExpr::term(x, 2.0), 5.0);
        let Presolved::Reduced(r) = presolve(&m, 1e-9).unwrap() else { panic!("feasible") };
        assert_eq!(r.model.bounds(crate::VarId(0)).1, 2.0);
    }

    #[test]
    fn equality_fixes_chain() {
        // x + y = 2 with x,y binary and x >= 1 → x=1, y=1, everything fixed.
        let mut m = Model::new("t");
        let x = m.binary("x");
        let y = m.binary("y");
        m.add_eq("sum", LinExpr::from(x) + y, 2.0);
        let Presolved::Reduced(r) = presolve(&m, 1e-9).unwrap() else { panic!("feasible") };
        assert_eq!(r.model.num_vars(), 0);
        let full = r.postsolve(&[]);
        assert_eq!(full, vec![1.0, 1.0]);
    }

    #[test]
    fn objective_constant_folded() {
        let mut m = Model::new("t");
        let x = m.continuous("x", 3.0, 3.0).unwrap();
        m.set_objective(Objective::Minimize, LinExpr::term(x, 2.0) + 1.0);
        let Presolved::Reduced(r) = presolve(&m, 1e-9).unwrap() else { panic!("feasible") };
        assert_eq!(r.model.objective().constant(), 7.0);
    }

    #[test]
    fn tol_width_continuous_interval_is_not_midpoint_snapped() {
        // x ∈ [0, 1e-8] (narrower than tol) with the binding equality
        // 1e4·x = 0. Fixing x to the midpoint 5e-9 would substitute
        // 1e4 · 5e-9 = 5e-5 into the row — a violation 500× the tolerance —
        // and wrongly prove the model infeasible. The variable must be kept.
        let mut m = Model::new("t");
        let x = m.continuous("x", 0.0, 1e-8).unwrap();
        m.add_eq("binding", LinExpr::term(x, 1e4), 0.0);
        let Presolved::Reduced(r) = presolve(&m, 1e-7).unwrap() else {
            panic!("model is feasible (x = 0)")
        };
        assert_eq!(r.eliminated_vars(), 0, "tol-wide x must not be fixed");
        // A genuinely zero-width interval is still substituted.
        let mut m2 = Model::new("t2");
        let y = m2.continuous("y", 1.5, 1.5).unwrap();
        m2.add_eq("fix", LinExpr::term(y, 1e4), 1.5e4);
        let Presolved::Reduced(r2) = presolve(&m2, 1e-7).unwrap() else {
            panic!("model is feasible (y = 1.5)")
        };
        assert_eq!(r2.eliminated_vars(), 1);
        assert_eq!(r2.postsolve(&[]), vec![1.5]);
    }

    #[test]
    fn presolve_point_rejects_points_outside_tightened_bounds() {
        // Row x ≤ 3 tightens ub(x) from 10 to 3 and is dropped. A warm
        // start at x = 9 is infeasible in the reduced model and must be
        // rejected, not silently accepted.
        let mut m = Model::new("t");
        let x = m.continuous("x", 0.0, 10.0).unwrap();
        m.add_le("cap", LinExpr::from(x), 3.0);
        let Presolved::Reduced(r) = presolve(&m, 1e-9).unwrap() else { panic!("feasible") };
        assert_eq!(r.model.bounds(crate::VarId(0)).1, 3.0);
        assert!(r.presolve_point(&[2.0], 1e-6).is_some());
        assert!(r.presolve_point(&[9.0], 1e-6).is_none());
        let _ = x;
    }

    #[test]
    fn presolve_point_detects_conflicts() {
        let mut m = Model::new("t");
        let _x = m.continuous("x", 2.0, 2.0).unwrap();
        let _y = m.binary("y");
        let Presolved::Reduced(r) = presolve(&m, 1e-9).unwrap() else { panic!("feasible") };
        assert!(r.presolve_point(&[2.0, 1.0], 1e-6).is_some());
        assert!(r.presolve_point(&[9.0, 1.0], 1e-6).is_none());
    }
}
