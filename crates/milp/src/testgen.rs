//! Shared in-crate test generators: random binary MILPs and exhaustive
//! integer-point enumeration, used by the unit-level property tests
//! (cut validity, propagation safety). Compiled only under `cfg(test)`;
//! the integration suites have their own copy in `tests/common/` because
//! integration crates cannot see `pub(crate)` items.

use crate::model::{Model, VarId};
use crate::{ConstraintSense, LinExpr, Objective};
use proptest::prelude::*;

/// A small random all-binary MILP (≤ 7 variables so enumeration is cheap).
#[derive(Debug, Clone)]
pub(crate) struct RandomBinaryMilp {
    pub(crate) n: usize,
    pub(crate) obj: Vec<i32>,
    pub(crate) maximize: bool,
    /// Rows as (coeffs, sense code 0=Le/1=Ge/2=Eq, rhs).
    pub(crate) rows: Vec<(Vec<i32>, u8, i32)>,
}

/// Builds the [`Model`] for a [`RandomBinaryMilp`].
pub(crate) fn build_random(milp: &RandomBinaryMilp) -> Model {
    let mut m = Model::new("rand-gen");
    let vars: Vec<_> = (0..milp.n).map(|i| m.binary(format!("x{i}"))).collect();
    for (r, (coeffs, sense, rhs)) in milp.rows.iter().enumerate() {
        let mut e = LinExpr::new();
        for (j, &c) in coeffs.iter().enumerate() {
            if c != 0 {
                e.add_term(vars[j], c as f64);
            }
        }
        let sense = match sense {
            0 => ConstraintSense::Le,
            1 => ConstraintSense::Ge,
            _ => ConstraintSense::Eq,
        };
        m.add_constraint(format!("r{r}"), e, sense, *rhs as f64);
    }
    let mut obj = LinExpr::new();
    for (j, &c) in milp.obj.iter().enumerate() {
        obj.add_term(vars[j], c as f64);
    }
    let dir = if milp.maximize { Objective::Maximize } else { Objective::Minimize };
    m.set_objective(dir, obj);
    m
}

/// Proptest strategy over [`RandomBinaryMilp`].
pub(crate) fn random_binary_milp() -> impl Strategy<Value = RandomBinaryMilp> {
    (2usize..=7, any::<bool>()).prop_flat_map(|(n, maximize)| {
        let obj = proptest::collection::vec(-9i32..=9, n);
        let row = (proptest::collection::vec(-5i32..=5, n), 0u8..=2, -8i32..=12);
        let rows = proptest::collection::vec(row, 1..=4);
        (obj, rows).prop_map(move |(obj, rows)| RandomBinaryMilp { n, obj, maximize, rows })
    })
}

/// Enumerates every integer point of an all-integer boxed model and
/// returns the feasible ones (structural values only).
pub(crate) fn feasible_integer_points(model: &Model) -> Vec<Vec<f64>> {
    let n = model.num_vars();
    let mut ranges = Vec::with_capacity(n);
    for j in 0..n {
        let (l, u) = model.bounds(VarId(j));
        ranges.push((l.ceil() as i64, u.floor() as i64));
    }
    let mut out = Vec::new();
    let mut point = vec![0.0; n];
    fn rec(
        model: &Model,
        ranges: &[(i64, i64)],
        j: usize,
        point: &mut Vec<f64>,
        out: &mut Vec<Vec<f64>>,
    ) {
        if j == ranges.len() {
            if model.is_feasible(point, 1e-6) {
                out.push(point.clone());
            }
            return;
        }
        for v in ranges[j].0..=ranges[j].1 {
            point[j] = v as f64;
            rec(model, ranges, j + 1, point, out);
        }
    }
    rec(model, &ranges, 0, &mut point, &mut out);
    out
}
