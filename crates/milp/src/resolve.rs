//! Incremental re-solve: [`ResolveSession`] keeps solver state alive
//! between solves of a mutating model.
//!
//! A session owns a [`Model`] and carries three artifacts across solves:
//!
//! 1. the **standard form** the last search ended on — the base rows plus
//!    every cutting plane separated at the root and in the tree,
//! 2. the serial worker's final **basis** (when the search ran on one
//!    thread), and
//! 3. the last solve's proven **dual bound**, which seeds the next root
//!    node: a re-solve whose refreshed incumbent still matches the old
//!    optimum closes the gap without exploring a single node. A delta
//!    that adds a variable invalidates the bound (a new column can
//!    improve the objective) and resets it; the form and basis still
//!    carry.
//!
//! When a [`ModelDelta`] is a *restriction* (only added rows/variables,
//! tightened bounds or right-hand sides, fixings — see
//! [`DeltaOutcome::restriction`]), the feasible set only shrinks, so every
//! carried cut remains a valid inequality and the carried basis remains
//! dual feasible after the bound edits. The session then patches the
//! carried form in place (appending columns and rows, overwriting bounds
//! and rhs entries), remaps the basis for any appended columns, and
//! re-enters branch and bound warm through the root node. Deltas that
//! relax the model drop the carry and rebuild cold — correctness never
//! depends on the carry, only speed does; a failed basis refactorization
//! likewise degrades to a cold root inside the search itself.
//!
//! Independently of the carry, the incumbent of each solve is installed as
//! the model's warm start, and [`Model::apply_delta`] pads/revalidates it,
//! so even a cold re-solve after a relaxation starts with the previous
//! deployment as a bound.
//!
//! ```
//! use ndp_milp::{LinExpr, Model, Objective, ResolveSession, SolverOptions};
//!
//! let mut m = Model::new("ks");
//! let a = m.binary("a");
//! let b = m.binary("b");
//! m.add_le("cap", LinExpr::term(a, 3.0) + LinExpr::term(b, 4.0), 6.0);
//! m.set_objective(Objective::Maximize, LinExpr::term(a, 4.0) + LinExpr::term(b, 5.0));
//!
//! let mut sess = ResolveSession::new(m, SolverOptions::default().threads(1));
//! let first = sess.solve()?;
//!
//! let mut d = sess.model().delta();
//! d.fix(b, 0.0); // a "core fault": b is no longer available
//! sess.apply(&d)?;
//! let second = sess.solve()?; // warm re-solve on the patched form
//! assert!(second.objective_value() <= first.objective_value());
//! # Ok::<(), ndp_milp::MilpError>(())
//! ```

use crate::branch::{solve_session, ResumeState};
use crate::delta::{DeltaOp, DeltaOutcome, ModelDelta};
use crate::error::Result;
use crate::model::Model;
use crate::options::SolverOptions;
use crate::solution::Solution;

/// Solver state carried between solves: the last standard form (base rows
/// plus all surviving cut rows) and where each model row lives in it.
struct Carry {
    state: ResumeState,
    /// `rowmap[i]` is the standard-form row index of model row `i`. Base
    /// rows keep their position across solves (cut rows only ever append),
    /// so the map stays valid until a non-restriction drops the carry.
    rowmap: Vec<usize>,
}

/// A stateful solve session over a mutating [`Model`].
///
/// See the [module docs](self) for the carry semantics. Typical lifecycle:
/// [`new`](ResolveSession::new) → [`solve`](ResolveSession::solve) →
/// ([`apply`](ResolveSession::apply) → [`solve`](ResolveSession::solve))*.
pub struct ResolveSession {
    model: Model,
    options: SolverOptions,
    carry: Option<Carry>,
    last: Option<Solution>,
}

impl ResolveSession {
    /// Wraps `model` in a fresh session (no carried state yet).
    pub fn new(model: Model, options: SolverOptions) -> Self {
        ResolveSession { model, options, carry: None, last: None }
    }

    /// The session's model. Record deltas against it with [`Model::delta`]
    /// and hand them to [`ResolveSession::apply`] — mutating a clone
    /// directly would bypass the carry bookkeeping.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// The options every [`solve`](ResolveSession::solve) runs with
    /// (presolve is forced off internally: carried state is indexed by the
    /// model's own columns and must not be re-shaped under it).
    pub fn options(&self) -> &SolverOptions {
        &self.options
    }

    /// Mutable access to the solve options, e.g. to adjust the time budget
    /// between re-solves. Presolve remains forced off regardless of what is
    /// set here; changing `threads` simply changes what the next solve can
    /// carry (a parallel search carries cuts but no basis).
    pub fn options_mut(&mut self) -> &mut SolverOptions {
        &mut self.options
    }

    /// The solution of the most recent [`solve`](ResolveSession::solve).
    pub fn last(&self) -> Option<&Solution> {
        self.last.as_ref()
    }

    /// `true` when the next solve will start from carried solver state
    /// (patched form + cuts, and a root basis if the last search was
    /// serial) rather than a cold rebuild.
    pub fn is_warm(&self) -> bool {
        self.carry.is_some()
    }

    /// Installs `values` as the model's warm start (next solve uses it as
    /// a starting incumbent if it is feasible).
    pub fn set_warm_start(&mut self, values: Vec<f64>) -> Result<()> {
        self.model.set_warm_start(values)
    }

    /// Consumes the session, returning the (mutated) model.
    pub fn into_model(self) -> Model {
        self.model
    }

    /// Applies `delta` to the model and patches the carried solver state.
    ///
    /// Restrictions keep the carry: new columns and rows are appended to
    /// the carried form, bounds and right-hand sides are overwritten in
    /// place, and the carried basis is remapped for appended columns.
    /// Non-restrictions (removed rows, relaxed bounds or rhs) drop the
    /// carry; the next solve rebuilds cold but still warm-starts from the
    /// previous incumbent when it remains feasible.
    ///
    /// # Errors
    ///
    /// Propagates [`Model::apply_delta`] errors. The model may be
    /// partially mutated on error; the carry is dropped so the next solve
    /// cannot run against inconsistent state.
    pub fn apply(&mut self, delta: &ModelDelta) -> Result<DeltaOutcome> {
        let outcome = match self.model.apply_delta(delta) {
            Ok(o) => o,
            Err(e) => {
                self.carry = None;
                return Err(e);
            }
        };
        if !outcome.restriction {
            self.carry = None;
            return Ok(outcome);
        }
        if let Some(carry) = &mut self.carry {
            let sf = &mut carry.state.sf;
            let old_n = sf.n;
            for op in &delta.ops {
                match op {
                    DeltaOp::AddVar { obj, .. } => {
                        // The model already holds the appended variable;
                        // its index is the form's next structural column.
                        let j = sf.n;
                        debug_assert!(j < self.model.num_vars());
                        let v = &self.model.vars[j];
                        sf.append_var(v.lb, v.ub, *obj);
                    }
                    DeltaOp::AddRow { expr, sense, rhs, .. } => {
                        let coeffs: Vec<(usize, f64)> =
                            expr.iter().map(|(v, c)| (v.index(), c)).collect();
                        let r = sf.append_model_row(&coeffs, rhs - expr.constant(), *sense);
                        carry.rowmap.push(r);
                    }
                    DeltaOp::SetRhs { row, rhs } => {
                        // The expression is untouched by a rhs edit, so its
                        // constant still folds into b the same way.
                        let expr = &self.model.rows[row.index()].expr;
                        sf.set_rhs(carry.rowmap[row.index()], rhs - expr.constant());
                    }
                    // Bound edits (and fixings / variable removals, which
                    // are bound edits) are handled by the full refresh
                    // below — the model is the source of truth and also
                    // captures binary clamping.
                    DeltaOp::SetBounds { .. } | DeltaOp::RemoveVar { .. } => {}
                    // A restriction batch never removes rows.
                    DeltaOp::RemoveRow { .. } => unreachable!("row removal is not a restriction"),
                }
            }
            for j in 0..self.model.num_vars() {
                let v = &self.model.vars[j];
                sf.set_var_bounds(j, v.lb, v.ub);
            }
            debug_assert_eq!(sf.n, self.model.num_vars());
            debug_assert_eq!(carry.rowmap.len(), self.model.num_constraints());
            if sf.n > old_n {
                let new_n = sf.n;
                carry.state.basis =
                    carry.state.basis.take().map(|b| b.remap_structural_append(old_n, new_n));
            }
            if delta.ops.iter().any(|op| matches!(op, DeltaOp::AddVar { .. })) {
                // A new column can improve the objective, so the previous
                // dual bound no longer bounds the new optimum.
                carry.state.bound = f64::NEG_INFINITY;
            }
        }
        Ok(outcome)
    }

    /// Solves the current model, warm when carried state exists, and
    /// captures the final solver state for the next re-solve.
    ///
    /// The previous incumbent (installed as the model's warm start after
    /// every solve) seeds the search whenever it is still feasible — also
    /// after a relaxation that dropped the carry.
    pub fn solve(&mut self) -> Result<Solution> {
        let mut options = self.options.clone();
        options.presolve = false;

        let (resume, rowmap) = match self.carry.take() {
            Some(c) => {
                debug_assert_eq!(c.state.sf.n, self.model.num_vars());
                (Some(c.state), Some(c.rowmap))
            }
            None => (None, None),
        };
        let mut capture = None;
        let sol = solve_session(&self.model, &options, resume, &mut capture)?;

        // Rebuild the carry from the captured end state. On a cold solve
        // the captured form was built by `from_model`, where model row `i`
        // IS form row `i`; on a warm solve the previous map still holds
        // (cut rows only append past it).
        if let Some(state) = capture {
            let rowmap = rowmap.unwrap_or_else(|| (0..self.model.num_constraints()).collect());
            self.carry = Some(Carry { state, rowmap });
        }
        if !sol.values.is_empty() {
            // Feasible incumbents survive future relaxations; apply_delta
            // keeps the vector padded for appended variables.
            self.model.set_warm_start(sol.values.clone())?;
        }
        self.last = Some(sol.clone());
        Ok(sol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConstraintId, LinExpr, Objective, SolveStatus, VarKind};

    fn options() -> SolverOptions {
        SolverOptions::default().threads(1)
    }

    /// max Σ vᵢ xᵢ s.t. Σ wᵢ xᵢ ≤ cap over binaries: big enough that the
    /// root LP is fractional and the tree does real work.
    fn knapsack(n: usize, cap: f64) -> Model {
        let mut m = Model::new("ks");
        let mut weight = LinExpr::new();
        let mut value = LinExpr::new();
        for i in 0..n {
            let x = m.binary(format!("x{i}"));
            weight += LinExpr::term(x, 2.0 + ((i * 7) % 5) as f64);
            value += LinExpr::term(x, 3.0 + ((i * 11) % 7) as f64);
        }
        m.add_le("cap", weight, cap);
        m.set_objective(Objective::Maximize, value);
        m
    }

    #[test]
    fn warm_resolve_matches_cold_rebuild_after_restriction() {
        let mut sess = ResolveSession::new(knapsack(10, 14.0), options());
        let first = sess.solve().unwrap();
        assert_eq!(first.status(), SolveStatus::Optimal);
        assert!(sess.is_warm());

        let mut d = sess.model().delta();
        d.fix(crate::VarId(0), 0.0);
        d.set_rhs(ConstraintId(0), 11.0);
        let out = sess.apply(&d).unwrap();
        assert!(out.restriction);
        assert!(sess.is_warm(), "restriction keeps the carry");

        let warm = sess.solve().unwrap();

        // Reference: identical mutation solved from scratch.
        let mut cold = knapsack(10, 14.0);
        let mut d2 = cold.delta();
        d2.fix(crate::VarId(0), 0.0);
        d2.set_rhs(ConstraintId(0), 11.0);
        cold.apply_delta(&d2).unwrap();
        let reference = cold.solve_with(&options()).unwrap();

        assert_eq!(warm.status(), reference.status());
        assert!((warm.objective_value() - reference.objective_value()).abs() < 1e-6);
    }

    #[test]
    fn warm_resolve_reenters_via_carried_basis() {
        let mut sess = ResolveSession::new(knapsack(12, 17.0), options());
        sess.solve().unwrap();
        let mut d = sess.model().delta();
        d.set_rhs(ConstraintId(0), 15.0);
        sess.apply(&d).unwrap();
        let warm = sess.solve().unwrap();
        assert_eq!(warm.status(), SolveStatus::Optimal);
        // The carried basis restores at the root (or a mid-tree node it
        // seeded), so at least one node avoided a cold start.
        assert!(
            warm.stats.warm_starts >= 1,
            "expected a warm node start, got stats {:?}",
            warm.stats
        );
    }

    #[test]
    fn added_task_variable_extends_the_carried_form() {
        let mut sess = ResolveSession::new(knapsack(8, 12.0), options());
        let first = sess.solve().unwrap();

        // An "arriving task": new binary with its own budget row.
        let mut d = sess.model().delta();
        let z = d.add_var("z", VarKind::Binary, 0.0, 1.0, 9.0);
        d.add_le("z-cap", LinExpr::term(z, 1.0), 1.0);
        let out = sess.apply(&d).unwrap();
        assert!(out.restriction);
        assert!(sess.is_warm());

        let warm = sess.solve().unwrap();
        assert_eq!(warm.status(), SolveStatus::Optimal);
        // z is free profit: the optimum gains exactly its value.
        assert!((warm.objective_value() - (first.objective_value() + 9.0)).abs() < 1e-6);

        // Against a scratch build of the same mutated model.
        let reference = sess.model().solve_with(&options()).unwrap();
        assert!((warm.objective_value() - reference.objective_value()).abs() < 1e-6);
    }

    #[test]
    fn relaxation_drops_carry_but_keeps_the_incumbent() {
        let mut sess = ResolveSession::new(knapsack(10, 14.0), options());
        let first = sess.solve().unwrap();
        let mut d = sess.model().delta();
        d.set_rhs(ConstraintId(0), 20.0); // relax the budget
        let out = sess.apply(&d).unwrap();
        assert!(!out.restriction);
        assert!(!sess.is_warm(), "relaxation must drop carried cuts/basis");

        let cold = sess.solve().unwrap();
        assert_eq!(cold.status(), SolveStatus::Optimal);
        assert!(cold.objective_value() >= first.objective_value() - 1e-9);
        assert!(sess.is_warm(), "the cold solve re-arms the carry");
    }

    #[test]
    fn repeated_deltas_stay_consistent() {
        let mut sess = ResolveSession::new(knapsack(9, 13.0), options());
        sess.solve().unwrap();
        for step in 0..4 {
            let mut d = sess.model().delta();
            match step {
                0 => d.fix(crate::VarId(1), 0.0),
                1 => {
                    let z = d.continuous("extra", 0.0, 2.0);
                    d.add_le("extra-row", LinExpr::term(z, 1.0), 1.5);
                }
                2 => d.set_rhs(ConstraintId(0), 12.0),
                _ => d.remove_var(crate::VarId(2)),
            }
            sess.apply(&d).unwrap();
            let warm = sess.solve().unwrap();
            let reference = sess.model().solve_with(&options()).unwrap();
            assert_eq!(warm.status(), reference.status(), "step {step}");
            assert!(
                (warm.objective_value() - reference.objective_value()).abs() < 1e-6,
                "step {step}: warm {} vs reference {}",
                warm.objective_value(),
                reference.objective_value()
            );
        }
    }
}
