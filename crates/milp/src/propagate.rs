//! Node-level bound propagation: activity-based domain tightening over the
//! standard-form rows, run before a node's LP solve.
//!
//! The arithmetic mirrors the presolve tightening pass
//! ([`crate::presolve`]) but works on the *node* box instead of the global
//! one: for every row `a·x + s = b` with slack bounds `s ∈ [sl, su]` the
//! row activity is confined to `a·x ∈ [b − su, b − sl]`, and each integer
//! column's bound is tightened against the residual activity of the other
//! columns. Because the constraint is kept two-sided through the slack
//! bounds, the same loop covers the original model rows *and* any cut rows
//! appended to the worker LP (root cuts, in-tree covers, conflict cuts).
//!
//! Soundness: interval tightening never removes a point that satisfies the
//! rows and lies inside the input box, so every integer-feasible point of
//! the node subproblem survives; an empty box proves the subproblem
//! infeasible and the node fathoms without a simplex solve. The pass is
//! pure arithmetic over a fixed iteration order — deterministic, no
//! timestamps — so serial event streams stay bit-for-bit reproducible.

use crate::standard::StandardForm;

/// Result of one node propagation pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Propagation {
    /// The node box is empty: no feasible point matches the node's bounds.
    Infeasible,
    /// Some integer bounds were tightened (the count of individual bound
    /// changes).
    Tightened(u64),
    /// Fixpoint on entry — nothing changed.
    Unchanged,
}

/// Bounded fixpoint rounds: each round is a full sweep over the rows, and
/// most of the payoff lands in the first couple of sweeps.
const MAX_ROUNDS: usize = 8;

/// Tightens the integer bounds `lb`/`ub` (structural, length `form.n`)
/// in place against every row of `form` under the slack bounds
/// `slack_lb`/`slack_ub` (length `form.m`, the worker LP's current slack
/// bounds — these encode each row's sense, including appended cut rows).
///
/// Only columns flagged in `is_int` are tightened (their implied bounds
/// round inward with `int_tol`); continuous bounds still participate in
/// the activity intervals. `feas_tol` guards the row-level infeasibility
/// test.
#[allow(clippy::too_many_arguments)]
pub(crate) fn propagate(
    form: &StandardForm,
    is_int: &[bool],
    lb: &mut [f64],
    ub: &mut [f64],
    slack_lb: &[f64],
    slack_ub: &[f64],
    feas_tol: f64,
    int_tol: f64,
) -> Propagation {
    debug_assert_eq!(lb.len(), form.n);
    debug_assert_eq!(ub.len(), form.n);
    debug_assert_eq!(slack_lb.len(), form.m);
    debug_assert_eq!(slack_ub.len(), form.m);
    let mut tightened: u64 = 0;
    for _ in 0..MAX_ROUNDS {
        let mut changed = false;
        for r in 0..form.m {
            let row = form.row(r);
            if row.is_empty() {
                continue;
            }
            // Row activity window: a·x = b − s ∈ [b − su, b − sl].
            let lo = form.b[r] - slack_ub[r];
            let hi = form.b[r] - slack_lb[r];
            let mut act_min = 0.0;
            let mut act_max = 0.0;
            for &(j, c) in row {
                if c > 0.0 {
                    act_min += c * lb[j];
                    act_max += c * ub[j];
                } else {
                    act_min += c * ub[j];
                    act_max += c * lb[j];
                }
            }
            // Scale-aware slack for the row-level infeasibility test.
            let row_tol = feas_tol * act_max.abs().max(act_min.abs()).max(1.0);
            if act_min > hi + row_tol || act_max < lo - row_tol {
                return Propagation::Infeasible;
            }
            for &(j, c) in row {
                if !is_int[j] || c == 0.0 {
                    continue;
                }
                // Residual activity of the other columns. Stale activity
                // bounds (from tightenings earlier in this sweep) are wider
                // than the true ones, so the implied bounds stay valid —
                // merely conservative until the next sweep.
                let (self_min, self_max) =
                    if c > 0.0 { (c * lb[j], c * ub[j]) } else { (c * ub[j], c * lb[j]) };
                let rest_min = act_min - self_min;
                let rest_max = act_max - self_max;
                if !rest_min.is_finite() || !rest_max.is_finite() {
                    continue;
                }
                // lo − rest_max ≤ c·x_j ≤ hi − rest_min.
                let (imp_lb, imp_ub) = if c > 0.0 {
                    ((lo - rest_max) / c, (hi - rest_min) / c)
                } else {
                    ((hi - rest_min) / c, (lo - rest_max) / c)
                };
                let new_lb = (imp_lb - int_tol).ceil();
                let new_ub = (imp_ub + int_tol).floor();
                if new_lb > lb[j] + 0.5 {
                    lb[j] = new_lb;
                    tightened += 1;
                    changed = true;
                }
                if new_ub < ub[j] - 0.5 {
                    ub[j] = new_ub;
                    tightened += 1;
                    changed = true;
                }
                if lb[j] > ub[j] + 0.5 {
                    return Propagation::Infeasible;
                }
            }
        }
        if !changed {
            break;
        }
    }
    if tightened > 0 {
        Propagation::Tightened(tightened)
    } else {
        Propagation::Unchanged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::SolverOptions;
    use crate::{LinExpr, Model, Objective};

    /// Builds a form plus working buffers from a model whose variables are
    /// all integer, with the node box equal to the root box.
    #[allow(clippy::type_complexity)]
    fn setup(model: &Model) -> (StandardForm, Vec<bool>, Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
        let options = SolverOptions::default();
        let sf = StandardForm::from_model(model, &options);
        let is_int = vec![true; sf.n];
        let lb: Vec<f64> = sf.lb[..sf.n].iter().map(|l| l.ceil()).collect();
        let ub: Vec<f64> = sf.ub[..sf.n].iter().map(|u| u.floor()).collect();
        let slack_lb = sf.lb[sf.n..].to_vec();
        let slack_ub = sf.ub[sf.n..].to_vec();
        (sf, is_int, lb, ub, slack_lb, slack_ub)
    }

    #[test]
    fn knapsack_capacity_tightens_upper_bounds() {
        let mut m = Model::new("p");
        let x = m.integer("x", 0.0, 10.0).unwrap();
        let y = m.integer("y", 0.0, 10.0).unwrap();
        m.add_le("cap", LinExpr::term(x, 3.0) + LinExpr::term(y, 1.0), 7.0);
        m.set_objective(Objective::Maximize, LinExpr::from(x) + LinExpr::from(y));
        let (sf, is_int, mut lb, mut ub, slb, sub) = setup(&m);
        let res = propagate(&sf, &is_int, &mut lb, &mut ub, &slb, &sub, 1e-7, 1e-6);
        // 3x ≤ 7 ⇒ x ≤ 2; y ≤ 7.
        assert!(matches!(res, Propagation::Tightened(_)));
        assert_eq!(ub[x.index()], 2.0);
        assert_eq!(ub[y.index()], 7.0);
        assert_eq!(lb, vec![0.0, 0.0]);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic]
    fn mismatched_bound_buffers_are_caught_in_debug() {
        let mut m = Model::new("p");
        let x = m.integer("x", 0.0, 10.0).unwrap();
        m.integer("y", 0.0, 10.0).unwrap();
        m.add_le("cap", LinExpr::term(x, 3.0), 7.0);
        let (sf, is_int, mut lb, mut ub, slb, sub) = setup(&m);
        // Buffers sized before the form grew a column (unpropagated delta).
        lb.pop();
        ub.pop();
        let _ = propagate(&sf, &is_int, &mut lb, &mut ub, &slb, &sub, 1e-7, 1e-6);
    }

    #[test]
    fn ge_row_raises_lower_bounds() {
        let mut m = Model::new("p");
        let x = m.integer("x", 0.0, 3.0).unwrap();
        let y = m.integer("y", 0.0, 3.0).unwrap();
        m.add_ge("cover", LinExpr::term(x, 1.0) + LinExpr::term(y, 1.0), 5.0);
        m.set_objective(Objective::Minimize, LinExpr::from(x));
        let (sf, is_int, mut lb, mut ub, slb, sub) = setup(&m);
        let res = propagate(&sf, &is_int, &mut lb, &mut ub, &slb, &sub, 1e-7, 1e-6);
        // x + y ≥ 5 with both ≤ 3 ⇒ both ≥ 2.
        assert!(matches!(res, Propagation::Tightened(_)));
        assert_eq!(lb, vec![2.0, 2.0]);
        assert_eq!(ub, vec![3.0, 3.0]);
    }

    #[test]
    fn empty_box_is_reported_infeasible() {
        let mut m = Model::new("p");
        let x = m.integer("x", 0.0, 2.0).unwrap();
        let y = m.integer("y", 0.0, 2.0).unwrap();
        m.add_ge("too-much", LinExpr::term(x, 1.0) + LinExpr::term(y, 1.0), 9.0);
        m.set_objective(Objective::Minimize, LinExpr::from(x));
        let (sf, is_int, mut lb, mut ub, slb, sub) = setup(&m);
        let res = propagate(&sf, &is_int, &mut lb, &mut ub, &slb, &sub, 1e-7, 1e-6);
        assert_eq!(res, Propagation::Infeasible);
    }

    #[test]
    fn fixpoint_chains_across_rows() {
        // r1 fixes x high, r2 then forces y low: needs a second sweep.
        let mut m = Model::new("p");
        let x = m.integer("x", 0.0, 4.0).unwrap();
        let y = m.integer("y", 0.0, 4.0).unwrap();
        m.add_ge("r1", LinExpr::term(x, 1.0), 4.0);
        m.add_le("r2", LinExpr::term(x, 1.0) + LinExpr::term(y, 2.0), 6.0);
        m.set_objective(Objective::Maximize, LinExpr::from(y));
        let (sf, is_int, mut lb, mut ub, slb, sub) = setup(&m);
        let res = propagate(&sf, &is_int, &mut lb, &mut ub, &slb, &sub, 1e-7, 1e-6);
        assert!(matches!(res, Propagation::Tightened(_)));
        assert_eq!(lb[x.index()], 4.0);
        assert_eq!(ub[y.index()], 1.0);
    }

    use crate::testgen::{build_random, feasible_integer_points, random_binary_milp};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(150))]

        /// The safety contract, fuzzed: on random binary MILPs, propagation
        /// may shrink the root box but must keep every enumerated
        /// integer-feasible point inside it — a pass that tightened one away
        /// would let branch and bound fathom the optimum. When it reports
        /// `Infeasible` the enumeration must be empty.
        #[test]
        fn propagation_keeps_every_integer_feasible_point(
            milp in random_binary_milp()
        ) {
            let model = build_random(&milp);
            let (sf, is_int, mut lb, mut ub, slb, sub) = setup(&model);
            let res = propagate(&sf, &is_int, &mut lb, &mut ub, &slb, &sub, 1e-7, 1e-6);
            let points = feasible_integer_points(&model);
            if res == Propagation::Infeasible {
                prop_assert!(
                    points.is_empty(),
                    "propagation fathomed a box holding {} feasible points",
                    points.len()
                );
            } else {
                for p in &points {
                    for j in 0..sf.n {
                        prop_assert!(
                            lb[j] - 1e-9 <= p[j] && p[j] <= ub[j] + 1e-9,
                            "point {p:?} tightened away at x{j}: [{}, {}]",
                            lb[j], ub[j]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn satisfied_box_is_a_fixpoint() {
        let mut m = Model::new("p");
        let x = m.integer("x", 0.0, 1.0).unwrap();
        let y = m.integer("y", 0.0, 1.0).unwrap();
        m.add_le("cap", LinExpr::term(x, 1.0) + LinExpr::term(y, 1.0), 2.0);
        m.set_objective(Objective::Maximize, LinExpr::from(x));
        let (sf, is_int, mut lb, mut ub, slb, sub) = setup(&m);
        let res = propagate(&sf, &is_int, &mut lb, &mut ub, &slb, &sub, 1e-7, 1e-6);
        assert_eq!(res, Propagation::Unchanged);
        assert_eq!(lb, vec![0.0, 0.0]);
        assert_eq!(ub, vec![1.0, 1.0]);
    }
}
