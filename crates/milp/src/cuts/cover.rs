//! Knapsack cover cut separation with extended-cover lifting.
//!
//! Every model row is normalized to a `≤`-knapsack over binary columns
//! (`≥`-rows negated, `=`-rows processed in both directions): negative
//! binary weights are complemented (`z = 1 − x`) and non-binary terms are
//! moved to the right-hand side conservatively through their global bounds.
//! A greedy minimal cover `C` (smallest `(1 − z̄)/w` first) is lifted to
//! the extended cover `E(C) = C ∪ {j : w_j ≥ max_{i∈C} w_i}`, giving
//! `Σ_{j∈E(C)} z_j ≤ |C| − 1`, which is then un-complemented back to the
//! original binaries. Cover cuts depend only on the model rows and global
//! bounds, so they are globally valid — usable in-tree at any node.

use crate::cuts::{Cut, CutFamily, CutSense, CutValidity};
use crate::model::{ConstraintSense, Model};

/// Tuning knobs of the cover separator.
#[derive(Debug, Clone)]
pub(crate) struct CoverParams {
    /// Minimum violation at the separation point for a cut to be emitted.
    pub min_violation: f64,
    /// The working infinity; bounds at or beyond it count as unbounded.
    pub big: f64,
}

/// One binary item of the normalized knapsack.
#[derive(Debug, Clone, Copy)]
struct Item {
    /// Structural column index.
    col: usize,
    /// Positive weight after complementation.
    weight: f64,
    /// LP value of the (possibly complemented) literal `z̄`.
    zbar: f64,
    /// Whether the literal is `1 − x` rather than `x`.
    complemented: bool,
}

/// Separates cover cuts violated at `x` (structural values), appending
/// them to `out`.
pub(crate) fn separate(
    model: &Model,
    global_bounds: &[(f64, f64)],
    binary: &[bool],
    x: &[f64],
    params: &CoverParams,
    out: &mut Vec<Cut>,
) {
    let mut items: Vec<Item> = Vec::new();
    for row in model.rows.iter() {
        let base_rhs = row.rhs - row.expr.constant();
        match row.sense {
            ConstraintSense::Le => {
                try_row(row, 1.0, base_rhs, global_bounds, binary, x, params, &mut items, out);
            }
            ConstraintSense::Ge => {
                try_row(row, -1.0, -base_rhs, global_bounds, binary, x, params, &mut items, out);
            }
            ConstraintSense::Eq => {
                try_row(row, 1.0, base_rhs, global_bounds, binary, x, params, &mut items, out);
                try_row(row, -1.0, -base_rhs, global_bounds, binary, x, params, &mut items, out);
            }
        }
    }
}

/// Attempts one cover cut from `sign · row ≤ sign · rhs`.
#[allow(clippy::too_many_arguments)]
fn try_row(
    row: &crate::model::RowConstraint,
    sign: f64,
    rhs: f64,
    global_bounds: &[(f64, f64)],
    binary: &[bool],
    x: &[f64],
    params: &CoverParams,
    items: &mut Vec<Item>,
    out: &mut Vec<Cut>,
) {
    items.clear();
    let mut cap = rhs;
    for (var, c0) in row.expr.iter() {
        let j = var.index();
        let a = sign * c0;
        if a == 0.0 {
            continue;
        }
        if binary[j] {
            if a > 0.0 {
                items.push(Item { col: j, weight: a, zbar: x[j], complemented: false });
            } else {
                // a·x = a − a·(1 − x): complement to weight −a ≥ 0.
                cap -= a;
                items.push(Item { col: j, weight: -a, zbar: 1.0 - x[j], complemented: true });
            }
        } else {
            // Remove the non-binary term conservatively: the knapsack must
            // stay valid for every feasible value of x_j.
            let (l, u) = global_bounds[j];
            if l <= -params.big * 0.99 || u >= params.big * 0.99 {
                return; // effectively unbounded — no finite relaxation
            }
            cap -= (a * l).min(a * u);
        }
    }
    if items.len() < 2 || !cap.is_finite() {
        return;
    }
    let total: f64 = items.iter().map(|i| i.weight).sum();
    if total <= cap + 1e-9 {
        return; // no cover exists
    }
    if cap < -1e-9 {
        return; // binaries alone infeasible; leave to the solver
    }

    // Greedy cover: cheapest (1 − z̄)/w first — prefers items the LP point
    // already uses. Deterministic tiebreaks: larger weight, then index.
    items.sort_by(|a, b| {
        let ka = (1.0 - a.zbar) / a.weight;
        let kb = (1.0 - b.zbar) / b.weight;
        ka.partial_cmp(&kb)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(b.weight.partial_cmp(&a.weight).unwrap_or(std::cmp::Ordering::Equal))
            .then(a.col.cmp(&b.col))
    });
    let mut cover: Vec<Item> = Vec::new();
    let mut wsum = 0.0;
    for it in items.iter() {
        cover.push(*it);
        wsum += it.weight;
        if wsum > cap + 1e-9 {
            break;
        }
    }
    if wsum <= cap + 1e-9 {
        return;
    }

    // Minimalize: drop the heaviest members that are not needed to stay a
    // cover (heaviest-first keeps |C| small and the cut strong).
    cover.sort_by(|a, b| {
        b.weight.partial_cmp(&a.weight).unwrap_or(std::cmp::Ordering::Equal).then(a.col.cmp(&b.col))
    });
    let mut keep: Vec<Item> = Vec::new();
    let mut remaining: f64 = cover.iter().map(|i| i.weight).sum();
    for it in cover.iter() {
        if remaining - it.weight > cap + 1e-9 {
            remaining -= it.weight; // still a cover without it
        } else {
            keep.push(*it);
        }
    }
    let cover = keep;
    if cover.len() < 2 {
        return;
    }

    // Extended-cover lifting: every item at least as heavy as the heaviest
    // cover member joins the left-hand side at coefficient 1.
    let wmax = cover.iter().map(|i| i.weight).fold(0.0_f64, f64::max);
    let in_cover = |col: usize| cover.iter().any(|i| i.col == col);
    let mut extended: Vec<Item> = cover.clone();
    for it in items.iter() {
        if !in_cover(it.col) && it.weight >= wmax - 1e-12 {
            extended.push(*it);
        }
    }
    let cap_terms = cover.len() as f64 - 1.0;
    let violation: f64 = extended.iter().map(|i| i.zbar).sum::<f64>() - cap_terms;
    if violation < params.min_violation {
        return;
    }

    // Un-complement back to the original binaries: z = 1 − x contributes
    // −x to the left-hand side and −1 to the right-hand side.
    let mut coeffs: Vec<(usize, f64)> = Vec::with_capacity(extended.len());
    let mut rhs_out = cap_terms;
    for it in &extended {
        if it.complemented {
            coeffs.push((it.col, -1.0));
            rhs_out -= 1.0;
        } else {
            coeffs.push((it.col, 1.0));
        }
    }
    coeffs.sort_unstable_by_key(|&(j, _)| j);
    out.push(Cut {
        coeffs,
        rhs: rhs_out,
        sense: CutSense::Le,
        family: CutFamily::Cover,
        validity: CutValidity::Global,
    });
}
