//! Gomory mixed-integer (GMI) cut separation.
//!
//! For a basic integer column `x_p` with fractional value `β̃` in row `r`,
//! the tableau row `x_p + Σ_j α_j x_j = β̃` (over nonbasic `j`) is shifted
//! into nonnegative variables `t_j ≥ 0` (distance from the active bound),
//! the GMI disjunction is applied, and the cut is translated back to the
//! original space with every slack eliminated through its defining row
//! `s_i = b_i − A_i·x`. The result is a `≥`-cut over structural columns
//! only, so it survives installation into the shared base form.
//!
//! Textbook safety guards keep the cuts numerically trustworthy:
//! fractionality window on `β̃`, max support, coefficient dynamism limit,
//! magnitude ceiling, and a minimum normalized violation. Tiny
//! coefficients are dropped only with a conservative right-hand-side
//! relaxation over the root box (never an unsound strengthening).

use crate::cuts::{Cut, CutFamily, CutSense, CutValidity};
use crate::simplex::{Simplex, Stat};

/// Tuning knobs of the GMI separator.
#[derive(Debug, Clone)]
pub(crate) struct GomoryParams {
    /// `β̃` fractional part must lie in `[f0_min, 1 − f0_min]`.
    pub f0_min: f64,
    /// Maximum nonzeros a cut may carry.
    pub max_support: usize,
    /// Maximum `max|aᵢ| / min|aᵢ|` coefficient ratio.
    pub max_dynamism: f64,
    /// Fractional basic rows examined per round (closest to ½ first).
    pub max_rows: usize,
    /// Minimum violation / ‖a‖₂ for a cut to be emitted.
    pub min_violation: f64,
}

impl GomoryParams {
    /// Defaults scaled to a form with `n` structural columns.
    pub fn for_form(n: usize) -> Self {
        GomoryParams {
            f0_min: 0.01,
            max_support: (n / 2).max(16),
            max_dynamism: 1e7,
            max_rows: 20,
            min_violation: 1e-6,
        }
    }
}

/// Largest absolute coefficient tolerated in a finished cut.
const MAX_COEFF: f64 = 1e8;
/// A dropped-coefficient relaxation larger than this rejects the drop.
const MAX_DROP_RELAX: f64 = 1e-7;

/// Separates GMI cuts at the current LP optimum `x` (full primal vector of
/// length `n + m`), appending them to `out`.
pub(crate) fn separate(
    lp: &mut Simplex,
    is_int: &[bool],
    x: &[f64],
    params: &GomoryParams,
    out: &mut Vec<Cut>,
) {
    let n = lp.form().n;
    let m = lp.nrows();
    // Candidate rows: basic integer columns with usefully fractional
    // values, most fractional (closest to ½) first, index tiebreak.
    let mut rows: Vec<(f64, usize)> = Vec::new();
    for r in 0..m {
        let j = lp.basis_col(r);
        if j >= n || !is_int[j] {
            continue;
        }
        let beta = lp.basic_value(r);
        let f0 = beta - beta.floor();
        if f0 < params.f0_min || f0 > 1.0 - params.f0_min {
            continue;
        }
        rows.push(((f0 - 0.5).abs(), r));
    }
    rows.sort_by(|a, b| {
        a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal).then(a.1.cmp(&b.1))
    });
    rows.truncate(params.max_rows);

    let mut alpha: Vec<f64> = Vec::new();
    let mut dense = vec![0.0; n];
    let mut mark = vec![false; n];
    let mut touched: Vec<usize> = Vec::new();
    for &(_, r) in &rows {
        if let Some(cut) =
            derive(lp, r, is_int, x, params, &mut alpha, &mut dense, &mut mark, &mut touched)
        {
            out.push(cut);
        }
    }
}

/// Derives one GMI cut from basic row `r`, or `None` when a guard trips.
#[allow(clippy::too_many_arguments)]
fn derive(
    lp: &mut Simplex,
    r: usize,
    is_int: &[bool],
    x: &[f64],
    params: &GomoryParams,
    alpha: &mut Vec<f64>,
    dense: &mut [f64],
    mark: &mut [bool],
    touched: &mut Vec<usize>,
) -> Option<Cut> {
    let beta = lp.basic_value(r);
    let f0 = beta - beta.floor();
    let ratio = f0 / (1.0 - f0);
    lp.tableau_row_into(r, alpha);
    let n = lp.form().n;
    let ncols = lp.num_cols();

    for &j in touched.iter() {
        dense[j] = 0.0;
        mark[j] = false;
    }
    touched.clear();
    // The cut starts as Σ_j γ_j t_j ≥ f0 in the shifted space.
    let mut rhs = f0;

    for j in 0..ncols {
        let stat = lp.col_stat(j);
        if stat == Stat::Basic {
            continue;
        }
        let lbj = lp.lb[j];
        let ubj = lp.ub[j];
        let range = ubj - lbj;
        if range <= 1e-12 {
            // Fixed column: t_j ≡ 0 contributes nothing.
            continue;
        }
        // Shift to t_j ≥ 0: a_j is the tableau coefficient of t_j.
        let at_lower = stat == Stat::Lower;
        let a = if at_lower { alpha[j] } else { -alpha[j] };
        if a == 0.0 {
            continue;
        }
        // GMI coefficient. Integer nonbasics use the rounding form (their
        // t_j is integral because the active bound is integral at the
        // root); slacks and continuous columns use the continuous form.
        let gamma = if j < n && is_int[j] {
            let fj = a - a.floor();
            fj.min(ratio * (1.0 - fj))
        } else if a >= 0.0 {
            a
        } else {
            ratio * -a
        };
        if gamma <= 0.0 {
            continue;
        }
        if gamma * range <= 1e-10 {
            // Dropping γ·t_j (0 ≤ t_j ≤ range) relaxes the ≥-cut by at
            // most γ·range — subtract it so validity is preserved.
            rhs -= gamma * range;
            continue;
        }
        // Un-shift to the original variable.
        let (coef, shift) = if at_lower { (gamma, gamma * lbj) } else { (-gamma, -gamma * ubj) };
        rhs += shift;
        if j < n {
            if !mark[j] {
                mark[j] = true;
                touched.push(j);
            }
            dense[j] += coef;
        } else {
            // Slack elimination: s_i = b_i − A_i·x, uniformly valid for
            // base rows and earlier cut rows alike.
            let i = j - n;
            rhs -= coef * lp.form().b[i];
            for &(k, v) in lp.form().row(i) {
                if !mark[k] {
                    mark[k] = true;
                    touched.push(k);
                }
                dense[k] -= coef * v;
            }
        }
    }

    // Assemble with guards. Sorted columns keep everything deterministic.
    touched.sort_unstable();
    let max_abs = touched.iter().map(|&j| dense[j].abs()).fold(0.0_f64, f64::max);
    if max_abs <= 1e-10 || max_abs > MAX_COEFF || !rhs.is_finite() || rhs.abs() > 1e9 {
        return None;
    }
    let mut coeffs: Vec<(usize, f64)> = Vec::with_capacity(touched.len());
    let mut min_abs = f64::INFINITY;
    for &j in touched.iter() {
        let d = dense[j];
        if d.abs() < max_abs * 1e-10 {
            if d != 0.0 {
                // For a ≥-cut, removing d·x_j requires rhs − max(d·x_j)
                // over the root box; reject when the drop is too costly.
                let relax = (d * lp.lb[j]).max(d * lp.ub[j]);
                if relax.abs() > MAX_DROP_RELAX {
                    return None;
                }
                rhs -= relax;
            }
            continue;
        }
        min_abs = min_abs.min(d.abs());
        coeffs.push((j, d));
    }
    if coeffs.is_empty() || coeffs.len() > params.max_support {
        return None;
    }
    if max_abs / min_abs > params.max_dynamism {
        return None;
    }
    let cut = Cut {
        coeffs,
        rhs,
        sense: CutSense::Ge,
        family: CutFamily::Gomory,
        validity: CutValidity::Global,
    };
    let norm = cut.norm();
    if cut.violation(x) < params.min_violation * norm.max(1.0) {
        return None;
    }
    Some(cut)
}
