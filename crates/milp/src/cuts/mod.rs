//! Cutting-plane engine: Gomory mixed-integer and knapsack cover cuts with
//! a managed pool, tightening the LP relaxation so branch and bound proves
//! optimality with far fewer nodes.
//!
//! Two separators feed one [`CutPool`]:
//!
//! * [`gomory`] — Gomory mixed-integer (GMI) cuts read off fractional basic
//!   rows via the kernel's BTRAN path ([`Simplex::tableau_row_into`]), with
//!   the textbook safety guards (fractionality window, max support,
//!   dynamism limit).
//! * [`cover`] — knapsack cover cuts (greedy minimal cover + extended-cover
//!   lifting) separated on the model's ≤-rows over binary columns.
//!
//! The pool deduplicates by hashed support, scores by normalized violation,
//! filters near-parallel cuts, and ages out cuts whose slack stayed loose
//! for consecutive rounds. Accepted cuts enter the live LP as appended rows
//! whose slacks join the basis ([`Simplex::append_cut_rows`]), so the dual
//! simplex re-optimizes warm — no cold start per round.
//!
//! [`root_separation`] drives the root loop: separate → select → append →
//! re-optimize, with tailing-off detection on bound improvement. Cuts that
//! survive age-out are installed into the *shared* base form, so every
//! search worker (serial or parallel) prices them. In-tree separation
//! (cover cuts only — they are globally valid independent of node bounds)
//! is handled by the node worker in [`crate::branch`].
//!
//! Determinism: all orderings are stable with index tiebreaks and no
//! timestamps enter any decision, so serial `threads = 1` runs stay
//! bit-for-bit reproducible with cuts enabled.

pub(crate) mod cover;
pub(crate) mod gomory;
pub(crate) mod pool;

pub(crate) use pool::CutPool;

use crate::events::SolverEvent;
use crate::model::Model;
use crate::options::SolverOptions;
use crate::simplex::{LpStatus, Simplex};
use crate::standard::StandardForm;
use std::time::Instant;

/// Direction of a cut's inequality over structural columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CutSense {
    /// `Σ aᵢxᵢ ≤ rhs`.
    Le,
    /// `Σ aᵢxᵢ ≥ rhs`.
    Ge,
}

/// Which separator produced a cut (stats/diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CutFamily {
    /// Gomory mixed-integer cut.
    Gomory,
    /// Knapsack cover cut.
    Cover,
    /// No-good cut derived by conflict analysis from an infeasible node's
    /// binary fixing set (see [`crate::branch`]).
    Conflict,
    /// Lexicographic symmetry-breaking row for a verified model symmetry
    /// (see [`crate::symmetry`]). Installed unconditionally at the root —
    /// symmetry rows are usually *unviolated* at the LP point, so they
    /// bypass the pool's violation filter.
    Symmetry,
}

/// Where a cut is valid. Cover cuts derive from the model rows and global
/// bounds, so they hold everywhere; Gomory cuts derive from the bounds
/// active at separation time, so only root-derived ones are global. The
/// pool refuses to install node-local cuts into a shared form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CutValidity {
    /// Valid for every integer-feasible point of the model.
    Global,
    /// Valid only under the bounds of the node that produced it. No current
    /// separator emits these (Gomory cuts are derived at the root box), but
    /// the installer's validity assert guards the invariant for future
    /// separators.
    #[allow(dead_code)]
    NodeLocal,
}

/// One cutting plane over structural columns.
#[derive(Debug, Clone)]
pub(crate) struct Cut {
    /// `(column, coefficient)` nonzeros, sorted by column.
    pub coeffs: Vec<(usize, f64)>,
    /// Right-hand side.
    pub rhs: f64,
    /// Inequality direction.
    pub sense: CutSense,
    /// Producing separator (diagnostics; read by tests and assertions).
    #[allow(dead_code)]
    pub family: CutFamily,
    /// Validity scope.
    pub validity: CutValidity,
}

impl Cut {
    /// Amount by which `x` violates the cut (positive ⇒ violated).
    pub fn violation(&self, x: &[f64]) -> f64 {
        let lhs: f64 = self.coeffs.iter().map(|&(j, a)| a * x[j]).sum();
        match self.sense {
            CutSense::Le => lhs - self.rhs,
            CutSense::Ge => self.rhs - lhs,
        }
    }

    /// Euclidean norm of the coefficient vector.
    pub fn norm(&self) -> f64 {
        self.coeffs.iter().map(|&(_, a)| a * a).sum::<f64>().sqrt()
    }

    /// Whether `x` satisfies the cut within `tol` (validity checks).
    #[cfg(test)]
    pub fn is_satisfied(&self, x: &[f64], tol: f64) -> bool {
        self.violation(x) <= tol
    }
}

/// Work accounting of one separation run, folded into
/// [`crate::SolveStats`] by the caller.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct RootCutStats {
    /// Candidate cuts produced by the separators (pre-pool).
    pub generated: u64,
    /// Cuts installed into the shared form after age-out.
    pub applied: u64,
    /// Cuts dropped by slack-based age-out.
    pub aged_out: u64,
    /// Wall seconds spent generating/scoring cuts (LP time excluded).
    pub separation_seconds: f64,
    /// Pivots of the root-loop LP re-solves.
    pub simplex_iterations: u64,
    /// Seconds inside the root-loop simplex (refactorizations excluded).
    pub simplex_seconds: f64,
    /// Seconds refactorizing the root-loop basis.
    pub factor_seconds: f64,
    /// Root-loop refactorization count.
    pub refactorizations: u64,
}

/// Relative bound improvement under which a round counts as tailing off;
/// two consecutive tailing-off rounds stop the loop.
const TAILING_OFF_REL: f64 = 1e-7;
/// Consecutive tailing-off rounds tolerated.
const TAILING_OFF_ROUNDS: u32 = 2;

/// Runs the root separation loop and installs surviving cuts into `sf`.
///
/// The loop owns a private [`Simplex`] over the root box: optimize, read
/// cuts off the fractional optimum, pool-select, append the chosen rows
/// (slacks basic ⇒ warm dual re-optimization), and repeat until the bound
/// tails off, the LP goes integral, the round budget runs out, or the
/// deadline/cancel fires. On any numerical failure or post-cut
/// infeasibility the base form is left untouched (conservative discard).
pub(crate) fn root_separation(
    model: &Model,
    sf: &mut StandardForm,
    options: &SolverOptions,
    int_cols: &[usize],
    root_bounds: &[(f64, f64)],
    start: Instant,
) -> RootCutStats {
    let mut stats = RootCutStats::default();
    let n = sf.n;
    let m0 = sf.m;
    let mut is_int = vec![false; n];
    for &j in int_cols {
        is_int[j] = true;
    }
    let binary: Vec<bool> = (0..n).map(|j| is_int[j] && root_bounds[j] == (0.0, 1.0)).collect();

    let mut lp = Simplex::new(sf, options);
    if options.time_limit.is_finite() {
        lp.deadline = Some(start + std::time::Duration::from_secs_f64(options.time_limit));
    }
    for &j in int_cols {
        let (l, u) = root_bounds[j];
        lp.set_bounds(j, l, u);
    }
    lp.refresh();
    let mut ok = matches!(lp.optimize(), Ok(LpStatus::Optimal));

    let gp = gomory::GomoryParams::for_form(n);
    let cp = cover::CoverParams { min_violation: 1e-4, big: sf.big };
    let mut pool = CutPool::new();
    let mut x: Vec<f64> = Vec::new();
    let mut cands: Vec<Cut> = Vec::new();
    let mut prev = lp.objective();
    let mut stale: u32 = 0;

    if ok {
        for round in 1..=options.max_cut_rounds {
            if options.cancelled() || lp.deadline.is_some_and(|d| Instant::now() >= d) {
                break;
            }
            lp.values_into(&mut x);
            let fractional = int_cols.iter().any(|&j| {
                let f = x[j] - x[j].floor();
                f > options.integrality_tol && f < 1.0 - options.integrality_tol
            });
            if !fractional {
                break;
            }
            let t0 = Instant::now();
            cands.clear();
            if options.gomory_cuts {
                gomory::separate(&mut lp, &is_int, &x, &gp, &mut cands);
            }
            if options.cover_cuts {
                cover::separate(model, root_bounds, &binary, &x, &cp, &mut cands);
            }
            let generated = cands.len();
            stats.generated += generated as u64;
            let chosen = pool.select(std::mem::take(&mut cands), &x);
            stats.separation_seconds += t0.elapsed().as_secs_f64();
            if chosen.is_empty() {
                break;
            }
            if lp.append_cut_rows(&chosen).is_err() {
                ok = false;
                break;
            }
            match lp.optimize() {
                Ok(LpStatus::Optimal) => {}
                // Valid cuts cannot empty the integer-feasible set, so an
                // infeasible LP here means numerics — discard everything.
                Ok(LpStatus::Infeasible) | Err(_) => {
                    ok = false;
                    break;
                }
            }
            lp.values_into(&mut x);
            pool.age_pass(&x, n + m0, 1e-6);
            let bound = lp.objective();
            let applied = chosen.len();
            let user_bound = sf.user_objective(bound - lp.bound_margin());
            options.observer.emit(|| SolverEvent::CutRound {
                round: round as u32,
                generated,
                applied,
                bound: user_bound,
            });
            let improvement = bound - prev;
            prev = bound;
            if improvement <= TAILING_OFF_REL * prev.abs().max(1.0) {
                stale += 1;
                if stale >= TAILING_OFF_ROUNDS {
                    break;
                }
            } else {
                stale = 0;
            }
        }
    }

    stats.simplex_iterations = lp.iterations;
    stats.simplex_seconds = lp.simplex_seconds;
    stats.factor_seconds = lp.factor_seconds;
    stats.refactorizations = lp.refactorizations;
    if ok {
        let (kept, aged_out) = pool.drain_fresh();
        stats.aged_out = aged_out;
        stats.applied = kept.len() as u64;
        for cut in &kept {
            debug_assert_eq!(cut.validity, CutValidity::Global);
            let (sl, su) = match cut.sense {
                CutSense::Le => (0.0, sf.big),
                CutSense::Ge => (-sf.big, 0.0),
            };
            sf.add_cut_row(&cut.coeffs, cut.rhs, sl, su);
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::VarId;
    use crate::{LinExpr, Objective};

    use crate::testgen::feasible_integer_points;

    /// A knapsack-flavoured model with a fractional LP optimum.
    fn knapsack_model() -> Model {
        let mut m = Model::new("k");
        let vars: Vec<_> = (0..5).map(|i| m.binary(format!("z{i}"))).collect();
        let w = [4.0, 3.0, 5.0, 6.0, 2.0];
        let p = [7.0, 5.0, 9.0, 11.0, 3.0];
        let mut cap = LinExpr::new();
        let mut obj = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            cap.add_term(v, w[i]);
            obj.add_term(v, p[i]);
        }
        m.add_le("cap", cap, 10.0);
        m.set_objective(Objective::Maximize, obj);
        m
    }

    /// Every cut generated by either separator at the root LP optimum must
    /// keep every integer-feasible point — the core validity contract —
    /// while cutting off the fractional LP point it was separated from.
    #[test]
    fn generated_cuts_keep_all_integer_points() {
        let model = knapsack_model();
        let options = SolverOptions::default();
        let sf = StandardForm::from_model(&model, &options);
        let n = sf.n;
        let int_cols: Vec<usize> = (0..n).collect();
        let root_bounds: Vec<(f64, f64)> = (0..n).map(|j| model.bounds(VarId(j))).collect();
        let is_int = vec![true; n];
        let binary = vec![true; n];

        let mut lp = Simplex::new(&sf, &options);
        assert_eq!(lp.optimize().unwrap(), LpStatus::Optimal);
        let x = lp.values();
        assert!(
            int_cols.iter().any(|&j| {
                let f = x[j] - x[j].floor();
                f > 1e-6 && f < 1.0 - 1e-6
            }),
            "fixture LP optimum must be fractional"
        );

        let mut cands = Vec::new();
        gomory::separate(&mut lp, &is_int, &x, &gomory::GomoryParams::for_form(n), &mut cands);
        let gomory_count = cands.len();
        cover::separate(
            &model,
            &root_bounds,
            &binary,
            &x,
            &cover::CoverParams { min_violation: 1e-4, big: sf.big },
            &mut cands,
        );
        assert!(!cands.is_empty(), "separators must fire on the fixture");
        assert!(gomory_count > 0, "gomory must fire on the fixture");
        assert!(cands.len() > gomory_count, "cover must fire on the fixture");

        let points = feasible_integer_points(&model);
        assert!(!points.is_empty());
        for (c, cut) in cands.iter().enumerate() {
            assert!(cut.violation(&x) > 0.0, "cut {c} does not cut the LP point");
            for p in &points {
                assert!(
                    cut.is_satisfied(p, 1e-6),
                    "cut {c} ({:?}) removes integer point {p:?}: coeffs {:?} {:?} {}",
                    cut.family,
                    cut.coeffs,
                    cut.sense,
                    cut.rhs
                );
            }
        }
    }

    /// The root loop tightens the relaxation bound without touching the
    /// optimum, and leaves the base form valid (same integer optimum).
    #[test]
    fn root_loop_tightens_bound_and_preserves_optimum() {
        let model = knapsack_model();
        let options = SolverOptions::default();
        let mut sf = StandardForm::from_model(&model, &options);
        let n = sf.n;
        let int_cols: Vec<usize> = (0..n).collect();
        let root_bounds: Vec<(f64, f64)> = (0..n).map(|j| model.bounds(VarId(j))).collect();

        let mut lp0 = Simplex::new(&sf, &options);
        assert_eq!(lp0.optimize().unwrap(), LpStatus::Optimal);
        let bound_before = lp0.objective();

        let m0 = sf.m;
        let stats =
            root_separation(&model, &mut sf, &options, &int_cols, &root_bounds, Instant::now());
        assert!(stats.applied > 0, "fixture must yield applied cuts");
        assert_eq!(sf.m, m0 + stats.applied as usize);

        let mut lp1 = Simplex::new(&sf, &options);
        assert_eq!(lp1.optimize().unwrap(), LpStatus::Optimal);
        assert!(lp1.objective() >= bound_before - 1e-9, "cuts must not weaken the relaxation");
        // All integer points survive the strengthened form: best integer
        // objective is unchanged (checked against enumeration).
        let points = feasible_integer_points(&model);
        let best =
            points.iter().map(|p| model.objective().eval(p)).fold(f64::NEG_INFINITY, f64::max);
        let sol = model.solve_with(&SolverOptions::default()).unwrap();
        assert!((sol.objective_value() - best).abs() < 1e-6);
    }

    use crate::testgen::{build_random, random_binary_milp};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(120))]

        /// The validity contract, fuzzed: on random binary MILPs, every cut
        /// either separator produces at the root LP optimum must be violated
        /// by that fractional point yet satisfied by EVERY integer-feasible
        /// point. A cut that removes an integer point would silently corrupt
        /// branch and bound, so this is the load-bearing property.
        #[test]
        fn no_generated_cut_removes_an_integer_feasible_point(
            milp in random_binary_milp()
        ) {
            let model = build_random(&milp);
            let options = SolverOptions::default();
            let sf = StandardForm::from_model(&model, &options);
            let n = sf.n;
            let root_bounds: Vec<(f64, f64)> =
                (0..n).map(|j| model.bounds(VarId(j))).collect();
            let is_int = vec![true; n];
            let binary = vec![true; n];

            let mut lp = Simplex::new(&sf, &options);
            // LP-infeasible instances generate nothing to check.
            match lp.optimize() {
                Ok(LpStatus::Optimal) => {}
                _ => return Ok(()),
            }
            let x = lp.values();

            let mut cands = Vec::new();
            gomory::separate(
                &mut lp,
                &is_int,
                &x,
                &gomory::GomoryParams::for_form(n),
                &mut cands,
            );
            cover::separate(
                &model,
                &root_bounds,
                &binary,
                &x,
                &cover::CoverParams { min_violation: 1e-4, big: sf.big },
                &mut cands,
            );

            let points = feasible_integer_points(&model);
            for (c, cut) in cands.iter().enumerate() {
                prop_assert!(
                    cut.violation(&x) > 0.0,
                    "cut {c} does not cut off the LP point"
                );
                for p in &points {
                    prop_assert!(
                        cut.is_satisfied(p, 1e-6),
                        "cut {c} ({:?}) removes integer point {p:?}: \
                         coeffs {:?} {:?} {}",
                        cut.family, cut.coeffs, cut.sense, cut.rhs
                    );
                }
            }
        }
    }
}
