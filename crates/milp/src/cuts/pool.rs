//! The managed cut pool: duplicate detection by hashed support, violation
//! scoring with a near-parallel filter, and slack-based age-out.
//!
//! The pool is the single gatekeeper between the separators and the LP:
//! candidates enter [`CutPool::select`] each round, survivors are appended
//! to the live LP in the returned order, and [`CutPool::age_pass`] tracks
//! which installed cuts kept their slack loose (non-binding) so
//! [`CutPool::drain_fresh`] can drop the stale ones before the surviving
//! cuts are installed into the shared base form.
//!
//! Everything is deterministic: candidates are scored with stable sorts and
//! index tiebreaks, and the duplicate hash is a fixed FNV-1a over the
//! sense-normalized, scale-normalized quantized support — no `HashMap`
//! iteration order ever leaks into cut selection.

use crate::cuts::{Cut, CutSense};
use std::collections::HashSet;

/// Cuts accepted per separation round.
const MAX_PER_ROUND: usize = 20;
/// Consecutive loose-slack rounds before a cut ages out.
const MAX_AGE: u32 = 3;
/// Cosine-similarity ceiling between two accepted cuts of one round.
const MAX_PARALLEL: f64 = 0.95;
/// Minimum normalized violation (violation / ‖a‖₂) to accept a candidate.
const MIN_NORM_VIOLATION: f64 = 1e-7;

/// One installed cut plus its age-out bookkeeping.
#[derive(Debug, Clone)]
struct PoolEntry {
    cut: Cut,
    /// Consecutive rounds the cut row's slack stayed loose.
    age: u32,
}

/// The managed pool (see module docs).
#[derive(Debug, Default)]
pub(crate) struct CutPool {
    /// Support hashes of every cut ever accepted (duplicate rejection).
    seen: HashSet<u64>,
    /// Installed cuts in LP row order.
    entries: Vec<PoolEntry>,
}

impl CutPool {
    /// An empty pool.
    pub fn new() -> Self {
        CutPool::default()
    }

    /// Number of cuts installed so far.
    pub fn installed(&self) -> usize {
        self.entries.len()
    }

    /// Scores, deduplicates and filters `cands` against the pool and each
    /// other, installs the survivors, and returns them in installation
    /// order (the caller appends them to the LP in exactly this order).
    pub fn select(&mut self, cands: Vec<Cut>, x: &[f64]) -> Vec<Cut> {
        // A cut referencing a column past the LP point means the form was
        // mutated (e.g. by a model delta) without refreshing the pool.
        debug_assert!(
            cands.iter().all(|c| c.coeffs.iter().all(|&(j, _)| j < x.len())),
            "cut column index out of range for the LP point ({} values)",
            x.len()
        );
        struct Scored {
            cut: Cut,
            score: f64,
            norm: f64,
            key: u64,
            ord: usize,
        }
        let mut scored: Vec<Scored> = Vec::new();
        for (ord, cut) in cands.into_iter().enumerate() {
            let norm = cut.norm();
            if !norm.is_finite() || norm <= 1e-12 {
                continue;
            }
            let nv = cut.violation(x) / norm;
            if nv < MIN_NORM_VIOLATION {
                continue;
            }
            let key = support_hash(&cut);
            if self.seen.contains(&key) {
                continue;
            }
            scored.push(Scored { cut, score: nv, norm, key, ord });
        }
        // Best normalized violation first; generation order breaks ties —
        // both deterministic.
        scored.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.ord.cmp(&b.ord))
        });
        let mut chosen: Vec<Scored> = Vec::new();
        for s in scored {
            if chosen.len() >= MAX_PER_ROUND {
                break;
            }
            if chosen.iter().any(|c| cosine(&c.cut, c.norm, &s.cut, s.norm) > MAX_PARALLEL) {
                continue;
            }
            // Duplicate keys can also collide within one round (e.g. the
            // same cover reached through two rows).
            if chosen.iter().any(|c| c.key == s.key) {
                continue;
            }
            chosen.push(s);
        }
        let mut out = Vec::with_capacity(chosen.len());
        for s in chosen {
            self.seen.insert(s.key);
            self.entries.push(PoolEntry { cut: s.cut.clone(), age: 0 });
            out.push(s.cut);
        }
        out
    }

    /// Updates ages from the re-solved LP point: entry `k` owns the slack
    /// column `slack_base + k`. A loose (non-binding) slack bumps the age;
    /// a binding one resets it.
    pub fn age_pass(&mut self, values: &[f64], slack_base: usize, tol: f64) {
        for (k, e) in self.entries.iter_mut().enumerate() {
            let col = slack_base + k;
            if col >= values.len() {
                break;
            }
            let s = values[col];
            // ≤-cut slack lives in [0, big] (binding at 0), ≥-cut slack in
            // [−big, 0] (binding at 0): binding ⇔ |s| ≤ tol either way.
            if s.abs() > tol {
                e.age += 1;
            } else {
                e.age = 0;
            }
        }
    }

    /// Returns `(fresh cuts, aged-out count)`: the cuts whose slack was
    /// binding recently enough to keep, in installation order.
    pub fn drain_fresh(&mut self) -> (Vec<Cut>, u64) {
        let mut fresh = Vec::new();
        let mut aged = 0u64;
        for e in self.entries.drain(..) {
            if e.age >= MAX_AGE {
                aged += 1;
            } else {
                fresh.push(e.cut);
            }
        }
        (fresh, aged)
    }
}

/// Absolute cosine similarity between two cuts' sense-normalized
/// coefficient vectors (both sorted by column).
fn cosine(a: &Cut, norm_a: f64, b: &Cut, norm_b: f64) -> f64 {
    let sign_a = sense_sign(a.sense);
    let sign_b = sense_sign(b.sense);
    let mut dot = 0.0;
    let (mut i, mut k) = (0usize, 0usize);
    while i < a.coeffs.len() && k < b.coeffs.len() {
        let (ja, va) = a.coeffs[i];
        let (jb, vb) = b.coeffs[k];
        match ja.cmp(&jb) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => k += 1,
            std::cmp::Ordering::Equal => {
                dot += (sign_a * va) * (sign_b * vb);
                i += 1;
                k += 1;
            }
        }
    }
    (dot / (norm_a * norm_b).max(1e-30)).abs()
}

/// `≥`-normalization sign: a `≤`-cut `a·x ≤ r` is compared as `−a·x ≥ −r`.
fn sense_sign(s: CutSense) -> f64 {
    match s {
        CutSense::Le => -1.0,
        CutSense::Ge => 1.0,
    }
}

/// FNV-1a over the quantized, scale- and sense-normalized support.
fn support_hash(cut: &Cut) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let sign = sense_sign(cut.sense);
    let max_abs = cut.coeffs.iter().map(|&(_, v)| v.abs()).fold(0.0_f64, f64::max).max(1e-30);
    let mut h = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    for &(j, v) in &cut.coeffs {
        eat(&(j as u64).to_le_bytes());
        let q = (sign * v / max_abs * 1e6).round() as i64;
        eat(&q.to_le_bytes());
    }
    let qr = (sign * cut.rhs / max_abs * 1e6).round() as i64;
    eat(&qr.to_le_bytes());
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cuts::{CutFamily, CutValidity};

    fn cut(coeffs: Vec<(usize, f64)>, rhs: f64, sense: CutSense) -> Cut {
        Cut { coeffs, rhs, sense, family: CutFamily::Cover, validity: CutValidity::Global }
    }

    #[test]
    fn duplicate_and_scaled_duplicate_cuts_are_rejected() {
        let mut pool = CutPool::new();
        let x = [0.5, 0.5];
        let a = cut(vec![(0, 1.0), (1, 1.0)], 0.5, CutSense::Le);
        let scaled = cut(vec![(0, 2.0), (1, 2.0)], 1.0, CutSense::Le);
        let negated = cut(vec![(0, -1.0), (1, -1.0)], -0.5, CutSense::Ge);
        let got = pool.select(vec![a.clone()], &x);
        assert_eq!(got.len(), 1);
        assert!(pool.select(vec![a], &x).is_empty(), "exact duplicate accepted");
        assert!(pool.select(vec![scaled], &x).is_empty(), "scaled duplicate accepted");
        assert!(pool.select(vec![negated], &x).is_empty(), "sense-flipped duplicate accepted");
        assert_eq!(pool.installed(), 1);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "cut column index out of range")]
    fn out_of_range_cut_column_is_caught_in_debug() {
        let mut pool = CutPool::new();
        let x = [0.5]; // one-column LP point, cut references column 3
        let stale = cut(vec![(3, 1.0)], 0.1, CutSense::Le);
        let _ = pool.select(vec![stale], &x);
    }

    #[test]
    fn non_violated_cuts_are_filtered() {
        let mut pool = CutPool::new();
        let x = [0.0, 0.0];
        let satisfied = cut(vec![(0, 1.0), (1, 1.0)], 1.0, CutSense::Le);
        assert!(pool.select(vec![satisfied], &x).is_empty());
    }

    #[test]
    fn near_parallel_round_mates_are_filtered() {
        let mut pool = CutPool::new();
        let x = [1.0, 1.0];
        let a = cut(vec![(0, 1.0), (1, 1.0)], 0.5, CutSense::Le);
        let b = cut(vec![(0, 1.0), (1, 1.001)], 0.6, CutSense::Le);
        let orthogonal = cut(vec![(0, 1.0), (1, -1.0)], -0.5, CutSense::Le);
        let got = pool.select(vec![a, b, orthogonal], &x);
        assert_eq!(got.len(), 2, "parallel mate must be dropped, orthogonal kept");
    }

    #[test]
    fn age_out_drops_consistently_loose_cuts() {
        let mut pool = CutPool::new();
        let x = [1.0, 1.0];
        let a = cut(vec![(0, 1.0)], 0.5, CutSense::Le);
        let b = cut(vec![(1, 1.0)], 0.5, CutSense::Le);
        assert_eq!(pool.select(vec![a, b], &x).len(), 2);
        // Entry 0's slack binding (0.0), entry 1's loose, for MAX_AGE rounds.
        for _ in 0..MAX_AGE {
            pool.age_pass(&[1.0, 1.0, 0.0, 5.0], 2, 1e-6);
        }
        let (fresh, aged) = pool.drain_fresh();
        assert_eq!(aged, 1);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].coeffs, vec![(0, 1.0)]);
    }
}
