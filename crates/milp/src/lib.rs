//! # ndp-milp — a self-contained mixed-integer linear programming solver
//!
//! This crate is the optimization substrate of the `noc-deploy` workspace: a
//! pure-Rust MILP solver used in place of the commercial solver (Gurobi) the
//! reproduced paper relies on. It provides:
//!
//! * a [`Model`] building layer with typed variables ([`VarKind`]), linear
//!   expressions ([`LinExpr`]) and constraints,
//! * a bounded-variable **dual simplex** for LP relaxations,
//! * **branch and bound** with warm-started node re-optimization, branch
//!   priorities, pseudo-cost branching and an LP-rounding incumbent
//!   heuristic,
//! * a **cutting-plane engine** (Gomory mixed-integer and knapsack cover
//!   cuts through a managed pool; see [`SolverOptions::cuts`]),
//! * MIP warm starts ([`Model::set_warm_start`]), node/time/gap limits.
//!
//! The solver targets fully bounded models (every variable with finite
//! bounds); infinite bounds are clamped to a large working bound and a
//! solution resting on a clamped bound is reported as
//! [`SolveStatus::Unbounded`].
//!
//! ## Example
//!
//! A tiny knapsack:
//!
//! ```
//! use ndp_milp::{LinExpr, Model, Objective};
//!
//! let mut m = Model::new("knapsack");
//! let items = [(3.0, 4.0), (4.0, 5.0), (2.0, 3.0)]; // (weight, value)
//! let mut weight = LinExpr::new();
//! let mut value = LinExpr::new();
//! for (i, (w, v)) in items.iter().enumerate() {
//!     let x = m.binary(format!("x{i}"));
//!     weight.add_term(x, *w);
//!     value.add_term(x, *v);
//! }
//! m.add_le("capacity", weight, 6.0);
//! m.set_objective(Objective::Maximize, value);
//! let sol = m.solve()?;
//! assert_eq!(sol.objective_value(), 8.0); // items 1 and 2
//! # Ok::<(), ndp_milp::MilpError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod batch;
mod branch;
mod cuts;
mod delta;
mod error;
mod events;
mod expr;
mod fingerprint;
mod heuristics;
mod lu;
mod model;
mod mps;
mod options;
mod parallel;
mod pool;
mod presolve;
mod propagate;
mod resolve;
mod simplex;
mod solution;
mod standard;
mod symmetry;
#[cfg(test)]
mod testgen;

pub use batch::{run_batch, PreparedModel};
pub use delta::{DeltaOutcome, ModelDelta};
pub use error::{MilpError, Result};
pub use events::{
    CancelToken, IncumbentFeed, Observer, ObserverHandle, SolverEvent, TerminationReason,
};
pub use expr::LinExpr;
pub use model::{ConstraintId, ConstraintSense, Model, Objective, VarId, VarKind};
pub use mps::{parse_mps, write_mps};
pub use options::{BasisKernel, BranchRule, NodeOrder, Pricing, SolverOptions};
pub use pool::{worker_pool_busy, worker_pool_size};
pub use resolve::ResolveSession;
pub use solution::{Solution, SolveStats, SolveStatus};

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn pure_lp_two_vars() {
        // min -x - 2y s.t. x + y <= 4, x <= 3, y <= 2  => x=2,y=2, obj=-6
        let mut m = Model::new("lp");
        let x = m.continuous("x", 0.0, 3.0).unwrap();
        let y = m.continuous("y", 0.0, 2.0).unwrap();
        m.add_le("cap", LinExpr::from(x) + y, 4.0);
        m.set_objective(Objective::Minimize, LinExpr::term(x, -1.0) + LinExpr::term(y, -2.0));
        let s = m.solve().unwrap();
        assert_eq!(s.status(), SolveStatus::Optimal);
        assert_close(s.objective_value(), -6.0);
        assert_close(s.value(x), 2.0);
        assert_close(s.value(y), 2.0);
    }

    #[test]
    fn lp_with_equalities() {
        // min x + y s.t. x + y = 2, x - y = 0 => x=y=1
        let mut m = Model::new("eq");
        let x = m.continuous("x", 0.0, 10.0).unwrap();
        let y = m.continuous("y", 0.0, 10.0).unwrap();
        m.add_eq("sum", LinExpr::from(x) + y, 2.0);
        m.add_eq("diff", LinExpr::from(x) - y, 0.0);
        m.set_objective(Objective::Minimize, LinExpr::from(x) + LinExpr::from(y));
        let s = m.solve().unwrap();
        assert_eq!(s.status(), SolveStatus::Optimal);
        assert_close(s.value(x), 1.0);
        assert_close(s.value(y), 1.0);
    }

    #[test]
    fn infeasible_lp() {
        let mut m = Model::new("inf");
        let x = m.continuous("x", 0.0, 1.0).unwrap();
        m.add_ge("lo", LinExpr::from(x), 2.0);
        let s = m.solve().unwrap();
        assert_eq!(s.status(), SolveStatus::Infeasible);
    }

    #[test]
    fn infeasible_integer_bounds() {
        let mut m = Model::new("inf-int");
        let x = m.integer("x", 0.4, 0.6).unwrap();
        m.set_objective(Objective::Minimize, LinExpr::from(x));
        let s = m.solve().unwrap();
        assert_eq!(s.status(), SolveStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new("unb");
        let x = m.continuous("x", 0.0, f64::INFINITY).unwrap();
        m.set_objective(Objective::Maximize, LinExpr::from(x));
        let s = m.solve().unwrap();
        assert_eq!(s.status(), SolveStatus::Unbounded);
    }

    #[test]
    fn binary_knapsack() {
        // max 4a + 5b + 3c s.t. 3a + 4b + 2c <= 6 => b + c = 8
        let mut m = Model::new("ks");
        let a = m.binary("a");
        let b = m.binary("b");
        let c = m.binary("c");
        let w = LinExpr::term(a, 3.0) + LinExpr::term(b, 4.0) + LinExpr::term(c, 2.0);
        let v = LinExpr::term(a, 4.0) + LinExpr::term(b, 5.0) + LinExpr::term(c, 3.0);
        m.add_le("cap", w, 6.0);
        m.set_objective(Objective::Maximize, v);
        let s = m.solve().unwrap();
        assert_eq!(s.status(), SolveStatus::Optimal);
        assert_close(s.objective_value(), 8.0);
        assert_eq!(s.int_value(a), 0);
        assert_eq!(s.int_value(b), 1);
        assert_eq!(s.int_value(c), 1);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // x[i][j] and x[j][i] are both walked
    fn assignment_problem_3x3() {
        // Classic assignment: cost matrix, x_ij binary, rows/cols sum to 1.
        let cost = [[4.0, 2.0, 8.0], [4.0, 3.0, 7.0], [3.0, 1.0, 6.0]];
        let mut m = Model::new("assign");
        let mut x = vec![];
        let mut obj = LinExpr::new();
        for i in 0..3 {
            let mut row = vec![];
            for j in 0..3 {
                let v = m.binary(format!("x{i}{j}"));
                obj.add_term(v, cost[i][j]);
                row.push(v);
            }
            x.push(row);
        }
        for i in 0..3 {
            let mut r = LinExpr::new();
            let mut c = LinExpr::new();
            for j in 0..3 {
                r.add_term(x[i][j], 1.0);
                c.add_term(x[j][i], 1.0);
            }
            m.add_eq(format!("row{i}"), r, 1.0);
            m.add_eq(format!("col{i}"), c, 1.0);
        }
        m.set_objective(Objective::Minimize, obj);
        let s = m.solve().unwrap();
        assert_eq!(s.status(), SolveStatus::Optimal);
        // Enumerating the 6 permutations gives an optimum of 12.
        assert_close(s.objective_value(), 12.0);
    }

    #[test]
    fn integer_general_bounds() {
        // max x + y, x,y ∈ Z, 2x + 3y <= 12, x <= 4, y <= 3 -> x=4,y=1 => 5
        let mut m = Model::new("int");
        let x = m.integer("x", 0.0, 4.0).unwrap();
        let y = m.integer("y", 0.0, 3.0).unwrap();
        m.add_le("c", LinExpr::term(x, 2.0) + LinExpr::term(y, 3.0), 12.0);
        m.set_objective(Objective::Maximize, LinExpr::from(x) + LinExpr::from(y));
        let s = m.solve().unwrap();
        assert_close(s.objective_value(), 5.0);
    }

    #[test]
    fn warm_start_used_as_incumbent() {
        let mut m = Model::new("ws");
        let a = m.binary("a");
        let b = m.binary("b");
        m.add_le("c", LinExpr::from(a) + b, 1.0);
        m.set_objective(Objective::Maximize, LinExpr::from(a) + LinExpr::term(b, 2.0));
        m.set_warm_start(vec![1.0, 0.0]).unwrap();
        let s = m.solve().unwrap();
        // Warm start obj 1 must be beaten by true optimum 2.
        assert_close(s.objective_value(), 2.0);
        assert_eq!(s.int_value(b), 1);
    }

    #[test]
    fn node_limit_reports_feasible_or_unknown() {
        let mut m = Model::new("lim");
        let mut obj = LinExpr::new();
        let mut row = LinExpr::new();
        for i in 0..12 {
            let x = m.binary(format!("x{i}"));
            obj.add_term(x, 1.0 + (i as f64) * 0.1);
            row.add_term(x, 2.0 + (i as f64) * 0.3);
        }
        m.add_le("cap", row, 9.5);
        m.set_objective(Objective::Maximize, obj);
        let opts = SolverOptions::default().node_limit(1);
        let s = m.solve_with(&opts).unwrap();
        assert!(matches!(
            s.status(),
            SolveStatus::Feasible | SolveStatus::Unknown | SolveStatus::Optimal
        ));
    }

    #[test]
    fn min_max_epigraph() {
        // Two machines, three jobs of sizes 3,3,2: best makespan is 5
        // ({3,2} vs {3}); the LP bound 4 must be closed by branching.
        let sizes = [3.0, 3.0, 2.0];
        let mut m = Model::new("makespan");
        let z = m.continuous("z", 0.0, 100.0).unwrap();
        let mut load = vec![LinExpr::new(), LinExpr::new()];
        for (i, s) in sizes.iter().enumerate() {
            let a = m.binary(format!("a{i}")); // on machine 0
            load[0].add_term(a, *s);
            // machine 1 gets (1 - a): s - s*a
            load[1].add_term(a, -*s);
            load[1].add_constant(*s);
        }
        for (k, l) in load.into_iter().enumerate() {
            m.add_ge(format!("z{k}"), LinExpr::from(z) - l, 0.0);
        }
        m.set_objective(Objective::Minimize, LinExpr::from(z));
        let s = m.solve().unwrap();
        assert_close(s.objective_value(), 5.0);
    }

    #[test]
    fn maximize_with_constant_offset() {
        let mut m = Model::new("off");
        let x = m.binary("x");
        m.set_objective(Objective::Maximize, LinExpr::term(x, 3.0) + 10.0);
        let s = m.solve().unwrap();
        assert_close(s.objective_value(), 13.0);
    }

    #[test]
    fn branch_rules_agree() {
        // Same small MIP solved under all branch rules must agree.
        let build = || {
            let mut m = Model::new("rules");
            let mut obj = LinExpr::new();
            let mut r1 = LinExpr::new();
            let mut r2 = LinExpr::new();
            let coeffs = [(5.0, 3.0, 2.0), (4.0, 2.0, 3.0), (3.0, 2.0, 2.0), (7.0, 4.0, 5.0)];
            for (i, (v, w1, w2)) in coeffs.iter().enumerate() {
                let x = m.binary(format!("x{i}"));
                obj.add_term(x, *v);
                r1.add_term(x, *w1);
                r2.add_term(x, *w2);
            }
            m.add_le("r1", r1, 6.0);
            m.add_le("r2", r2, 7.0);
            m.set_objective(Objective::Maximize, obj);
            m
        };
        let mut objs = vec![];
        for rule in [
            BranchRule::MostFractional,
            BranchRule::FirstFractional,
            BranchRule::PseudoCost,
            BranchRule::Reliability,
        ] {
            for order in [NodeOrder::DepthFirst, NodeOrder::BestBound] {
                let opts = SolverOptions::default().branch_rule(rule).node_order(order);
                let s = build().solve_with(&opts).unwrap();
                assert_eq!(s.status(), SolveStatus::Optimal);
                objs.push(s.objective_value());
            }
        }
        for o in &objs {
            assert_close(*o, objs[0]);
        }
    }

    #[test]
    fn branch_priority_still_optimal() {
        let mut m = Model::new("prio");
        let a = m.binary("a");
        let b = m.binary("b");
        let c = m.binary("c");
        m.set_branch_priority(c, 100);
        m.set_branch_priority(a, -5);
        m.add_le("r", LinExpr::term(a, 2.0) + LinExpr::term(b, 3.0) + LinExpr::term(c, 4.0), 5.0);
        m.set_objective(
            Objective::Maximize,
            LinExpr::term(a, 2.0) + LinExpr::term(b, 3.0) + LinExpr::term(c, 3.5),
        );
        let s = m.solve().unwrap();
        // Feasible sets: {a,b} weight 5 → 5.0; {c} → 3.5; {b} → 3.0.
        assert_close(s.objective_value(), 5.0);
    }

    #[test]
    fn empty_model_is_optimal() {
        let m = Model::new("empty");
        let s = m.solve().unwrap();
        assert_eq!(s.status(), SolveStatus::Optimal);
        assert_eq!(s.objective_value(), 0.0);
    }

    #[test]
    fn constant_infeasible_row() {
        let mut m = Model::new("constrow");
        m.add_ge("impossible", LinExpr::constant_term(0.0), 1.0);
        let s = m.solve().unwrap();
        assert_eq!(s.status(), SolveStatus::Infeasible);
    }

    #[test]
    fn nan_rejected() {
        let mut m = Model::new("nan");
        let x = m.binary("x");
        m.add_le("bad", LinExpr::term(x, f64::NAN), 1.0);
        assert!(matches!(m.solve(), Err(MilpError::NotANumber { .. })));
    }

    #[test]
    fn negative_lower_bounds() {
        // min x s.t. x >= -5 with x in [-10, 10]
        let mut m = Model::new("neg");
        let x = m.continuous("x", -10.0, 10.0).unwrap();
        m.add_ge("lo", LinExpr::from(x), -5.0);
        m.set_objective(Objective::Minimize, LinExpr::from(x));
        let s = m.solve().unwrap();
        assert_close(s.objective_value(), -5.0);
    }

    #[test]
    fn degenerate_equalities_chain() {
        // A chain of equalities forcing all vars equal; stresses pivoting.
        let mut m = Model::new("chain");
        let n = 15;
        let xs: Vec<_> =
            (0..n).map(|i| m.continuous(format!("x{i}"), 0.0, 10.0).unwrap()).collect();
        for w in xs.windows(2) {
            m.add_eq("link", LinExpr::from(w[0]) - w[1], 0.0);
        }
        m.add_ge("anchor", LinExpr::from(xs[0]), 2.5);
        let mut obj = LinExpr::new();
        for &x in &xs {
            obj.add_term(x, 1.0);
        }
        m.set_objective(Objective::Minimize, obj);
        let s = m.solve().unwrap();
        assert_close(s.objective_value(), 2.5 * n as f64);
    }
}
