//! Parallel branch and bound: a work-stealing pool of open nodes shared by
//! worker threads drawn from the process-global worker pool.
//!
//! Each worker owns a full [`NodeWorker`] (its own warm-started simplex and
//! pseudo-cost table) and drains nodes from the shared pool. A stolen node
//! carries its parent's basis snapshot (an `Arc` shared with its sibling),
//! so the thief warm-starts exactly like the owner would have; if the
//! snapshot fails to factorize on the thief's kernel, the node falls back
//! to a slack-basis cold start. Two pieces of state are global:
//!
//! * the **incumbent** ([`SharedIncumbent`]): the point lives behind a
//!   `parking_lot` mutex, while its objective is mirrored into an atomic so
//!   pruning tests never take the lock. A stale read only *under*-prunes —
//!   the node is evaluated and discarded one level later — so correctness
//!   does not depend on the mirror being fresh;
//! * the **open-node pool**: per-worker LIFO deques with work stealing under
//!   [`NodeOrder::DepthFirst`] (owners dive depth-first, idle workers steal
//!   the oldest — closest to the root — entries, which splits the tree near
//!   its top), or a single mutex-guarded best-bound heap under
//!   [`NodeOrder::BestBound`].
//!
//! Termination uses an `in_flight` counter of nodes that are queued or being
//! expanded: children are registered *before* their parent retires, so the
//! counter only reaches zero once the whole tree is exhausted.
//!
//! **Threading.** Workers are not spawned per solve: worker 0 runs on the
//! calling thread while workers `1..threads` are submitted as tasks to the
//! bounded process-global [`crate::pool`]. The caller always makes progress
//! even when the pool is saturated by other jobs, and helper tasks that
//! never got claimed are revoked once the caller finishes — a job never
//! waits behind another tenant's queue. Each worker (caller included) runs
//! under `catch_unwind`: a panic anywhere in the search (e.g. inside a
//! user-supplied observer) stops only the owning job, which reports
//! [`MilpError::WorkerPanicked`]; concurrent solves and the pool threads
//! are untouched.

use crate::branch::{
    gap_closed, poll_feed, HeapNode, Incumbent, NodeWorker, OpenNode, SearchOutcome,
};
use crate::error::{MilpError, Result};
use crate::events::SolverEvent;
use crate::model::Model;
use crate::options::{NodeOrder, SolverOptions};
use crate::pool as global_pool;
use crate::standard::StandardForm;
use crossbeam::deque::{Injector, Stealer, Worker as Deque};
use parking_lot::{Condvar, Mutex};
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Best integral point found by any worker. The objective is mirrored into
/// `best_bits` (as `f64` bits) for lock-free reads on the pruning fast path.
struct SharedIncumbent {
    best_bits: AtomicU64,
    point: Mutex<Option<(Vec<f64>, f64)>>,
    /// Offers accepted across all workers (warm starts not counted).
    accepted: AtomicU64,
}

impl SharedIncumbent {
    fn new(warm: Option<(Vec<f64>, f64)>) -> Self {
        let obj = warm.as_ref().map_or(f64::INFINITY, |&(_, o)| o);
        SharedIncumbent {
            best_bits: AtomicU64::new(obj.to_bits()),
            point: Mutex::new(warm),
            accepted: AtomicU64::new(0),
        }
    }

    fn best_obj(&self) -> f64 {
        f64::from_bits(self.best_bits.load(Ordering::Acquire))
    }

    fn offer(&self, values: &[f64], obj: f64) -> bool {
        // Cheap reject without the lock; re-checked under it.
        if obj >= self.best_obj() {
            return false;
        }
        let mut point = self.point.lock();
        let current = point.as_ref().map_or(f64::INFINITY, |&(_, o)| o);
        if obj < current {
            *point = Some((values.to_vec(), obj));
            self.best_bits.store(obj.to_bits(), Ordering::Release);
            self.accepted.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Takes the incumbent out (the search is over; `&self` because the
    /// state lives in an `Arc` shared with possibly-revoked pool tasks).
    fn take_parts(&self) -> (Option<Vec<f64>>, f64, u64) {
        let accepted = self.accepted.load(Ordering::Relaxed);
        match self.point.lock().take() {
            Some((v, o)) => (Some(v), o, accepted),
            None => (None, f64::INFINITY, accepted),
        }
    }
}

/// Adapter giving a [`NodeWorker`] the shared incumbent through the
/// [`Incumbent`] trait it expects.
struct SharedHandle<'s>(&'s SharedIncumbent);

impl Incumbent for SharedHandle<'_> {
    fn best_obj(&self) -> f64 {
        self.0.best_obj()
    }
    fn offer(&mut self, values: &[f64], obj: f64) -> bool {
        self.0.offer(values, obj)
    }
}

/// Where workers get their next node from.
enum Pool {
    /// Per-worker deques + global injector (depth-first with stealing).
    Deques { injector: Injector<OpenNode>, stealers: Vec<Stealer<OpenNode>> },
    /// One global best-bound heap.
    Heap(Mutex<BinaryHeap<HeapNode>>),
}

impl Pool {
    /// Pops a node for worker `id` (owning `local` in deque mode). The flag
    /// is `true` when the node was stolen from *another worker's* deque —
    /// injector pops, own-deque pops and heap pops don't count as steals.
    fn pop(&self, id: usize, local: Option<&Deque<OpenNode>>) -> Option<(OpenNode, bool)> {
        match self {
            Pool::Deques { injector, stealers } => {
                if let Some(n) = local.and_then(|d| d.pop()) {
                    return Some((n, false));
                }
                if let Some(n) = injector.steal().success() {
                    return Some((n, false));
                }
                // Round-robin steal starting after our own slot so workers
                // don't all hammer the same victim.
                let k = stealers.len();
                for step in 1..=k {
                    let victim = (id + step) % k;
                    if victim == id {
                        continue;
                    }
                    if let Some(n) = stealers[victim].steal().success() {
                        return Some((n, true));
                    }
                }
                None
            }
            Pool::Heap(heap) => heap.lock().pop().map(|HeapNode(n)| (n, false)),
        }
    }

    /// Pushes `node` for worker `id`.
    fn push(&self, node: OpenNode, local: Option<&Deque<OpenNode>>) {
        match self {
            Pool::Deques { injector, .. } => match local {
                Some(d) => d.push(node),
                None => injector.push(node),
            },
            Pool::Heap(heap) => heap.lock().push(HeapNode(node)),
        }
    }
}

/// Cross-worker control state.
struct Control {
    /// Nodes queued or currently being expanded; zero means the tree is done.
    in_flight: AtomicUsize,
    /// Raised on any limit or error: workers drain and exit.
    stop: AtomicBool,
    /// Whether the stop was a limit (vs. natural exhaustion).
    hit_limit: AtomicBool,
    /// Whether any worker observed the cancel token.
    interrupted: AtomicBool,
    /// Total nodes expanded, for the node limit.
    nodes: AtomicU64,
    /// Minimum LP bound among abandoned open nodes (valid on early stop).
    open_bound_min: Mutex<f64>,
    /// Root LP bound (`f64` bits; `INFINITY` until the root is evaluated).
    /// A conservative global dual bound for incumbent-event gaps — exact
    /// open-node tracking would serialize the pool for a telemetry nicety.
    root_bound: AtomicU64,
    /// First worker error, propagated after join.
    error: Mutex<Option<MilpError>>,
}

impl Control {
    fn fold_open_bound(&self, bound: f64) {
        let mut min = self.open_bound_min.lock();
        if bound < *min {
            *min = bound;
        }
    }

    fn node_limit_hit(&self, options: &SolverOptions) -> bool {
        options.node_limit != 0 && self.nodes.load(Ordering::Relaxed) >= options.node_limit as u64
    }
}

/// Everything one job's workers share. Owned (not borrowed) because helper
/// workers run as `'static` tasks on the process-global pool; the clones of
/// model and standard form are one-time O(nnz) costs, negligible next to
/// the tree search they enable.
struct SearchShared {
    model: Model,
    sf: StandardForm,
    options: SolverOptions,
    int_cols: Vec<usize>,
    root_bounds: Vec<(f64, f64)>,
    start: Instant,
    pool: Pool,
    control: Control,
    incumbent: SharedIncumbent,
    /// Verified symmetry plan armed on every worker (lex propagation);
    /// `None` when the root detected no usable symmetry.
    symmetry: Option<Arc<crate::symmetry::SymmetryPlan>>,
    /// Per-worker stats, filled in by whichever thread ran the worker.
    stats: Mutex<Vec<Option<WorkerStats>>>,
    /// Helpers that have not finished (or been revoked) yet.
    helpers_left: Mutex<usize>,
    helpers_done: Condvar,
}

impl SearchShared {
    fn helper_finished(&self) {
        let mut left = self.helpers_left.lock();
        *left -= 1;
        if *left == 0 {
            self.helpers_done.notify_all();
        }
    }

    fn wait_helpers(&self) {
        let mut left = self.helpers_left.lock();
        while *left > 0 {
            self.helpers_done.wait(&mut left);
        }
    }
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("non-string panic payload")
    }
}

/// Runs worker `id` with panic containment: a panic anywhere inside the
/// worker loop stops this job with a structured error instead of unwinding
/// into the caller (worker 0) or the pool thread (helpers).
fn run_worker(shared: &SearchShared, id: usize, local: Option<Deque<OpenNode>>) {
    match catch_unwind(AssertUnwindSafe(|| worker_loop(shared, id, local))) {
        Ok(stats) => shared.stats.lock()[id] = Some(stats),
        Err(payload) => {
            let message = panic_message(payload.as_ref());
            {
                let mut slot = shared.control.error.lock();
                if slot.is_none() {
                    *slot = Some(MilpError::WorkerPanicked { worker: id, message });
                }
            }
            // The panicking worker may have died holding an in-flight node,
            // so `in_flight` can never drain to zero: `stop` is the signal
            // the surviving workers of *this* job exit on.
            shared.control.stop.store(true, Ordering::Release);
        }
    }
}

/// Runs the work-stealing search with `threads ≥ 2` workers. Same contract
/// as the serial search: returns the incumbent and the proven global bound
/// (internal minimization scale).
#[allow(clippy::too_many_arguments)]
pub(crate) fn search(
    model: &Model,
    sf: &StandardForm,
    options: &SolverOptions,
    int_cols: &[usize],
    root_bounds: &[(f64, f64)],
    warm: Option<(Vec<f64>, f64)>,
    start: Instant,
    threads: usize,
    symmetry: Option<Arc<crate::symmetry::SymmetryPlan>>,
) -> Result<SearchOutcome> {
    // Build the open-node pool and seed it with the root node.
    let mut locals: Vec<Option<Deque<OpenNode>>> = Vec::with_capacity(threads);
    let pool = match options.node_order {
        NodeOrder::DepthFirst => {
            let deques: Vec<Deque<OpenNode>> = (0..threads).map(|_| Deque::new_lifo()).collect();
            let stealers = deques.iter().map(|d| d.stealer()).collect();
            locals.extend(deques.into_iter().map(Some));
            let injector = Injector::new();
            injector.push(OpenNode::root());
            Pool::Deques { injector, stealers }
        }
        NodeOrder::BestBound => {
            locals.extend((0..threads).map(|_| None));
            let mut heap = BinaryHeap::new();
            heap.push(HeapNode(OpenNode::root()));
            Pool::Heap(Mutex::new(heap))
        }
    };

    let shared = Arc::new(SearchShared {
        model: model.clone(),
        sf: sf.clone(),
        options: options.clone(),
        int_cols: int_cols.to_vec(),
        root_bounds: root_bounds.to_vec(),
        start,
        pool,
        control: Control {
            in_flight: AtomicUsize::new(1), // the root
            stop: AtomicBool::new(false),
            hit_limit: AtomicBool::new(false),
            interrupted: AtomicBool::new(false),
            nodes: AtomicU64::new(0),
            open_bound_min: Mutex::new(f64::INFINITY),
            root_bound: AtomicU64::new(f64::INFINITY.to_bits()),
            error: Mutex::new(None),
        },
        incumbent: SharedIncumbent::new(warm),
        symmetry,
        stats: Mutex::new(vec![None; threads]),
        helpers_left: Mutex::new(threads - 1),
        helpers_done: Condvar::new(),
    });

    // Helpers 1..threads go to the process-global pool; worker 0 is us.
    let mut locals = locals.into_iter();
    let local0 = locals.next().expect("threads >= 2 in the parallel arm");
    let mut handles = Vec::with_capacity(threads - 1);
    for (i, local) in locals.enumerate() {
        let id = i + 1;
        let task_shared = Arc::clone(&shared);
        handles.push(global_pool::global().submit(Box::new(move || {
            run_worker(&task_shared, id, local);
            task_shared.helper_finished();
        })));
    }
    run_worker(&shared, 0, local0);

    // The caller is done, so the tree is either exhausted or stopped:
    // helpers that never got claimed by a pool worker have nothing to do.
    // Revoke them instead of waiting behind other jobs' queued tasks.
    for h in &handles {
        if h.revoke() {
            shared.helper_finished();
        }
    }
    shared.wait_helpers();

    if let Some(e) = shared.control.error.lock().take() {
        return Err(e);
    }

    let mut per_worker: Vec<WorkerStats> = vec![WorkerStats::default(); threads];
    for (id, stats) in shared.stats.lock().iter().enumerate() {
        if let Some(s) = stats {
            per_worker[id] = *s;
        }
    }

    // Fold nodes still parked in the shared pool (unreachable on a natural
    // exhaustion, where the pool is empty).
    match &shared.pool {
        Pool::Deques { injector, .. } => {
            while let Some(n) = injector.steal().success() {
                shared.control.fold_open_bound(n.bound);
            }
        }
        Pool::Heap(heap) => {
            if let Some(HeapNode(n)) = heap.lock().peek() {
                shared.control.fold_open_bound(n.bound);
            }
        }
    }

    let hit_limit = shared.control.hit_limit.load(Ordering::Acquire);
    let interrupted = shared.control.interrupted.load(Ordering::Acquire);
    let (incumbent, incumbent_obj, incumbents) = shared.incumbent.take_parts();
    let open_min = *shared.control.open_bound_min.lock();
    let best_bound_internal = if hit_limit { open_min.min(incumbent_obj) } else { incumbent_obj };

    let nodes_per_thread: Vec<u64> = per_worker.iter().map(|w| w.nodes).collect();
    Ok(SearchOutcome {
        incumbent,
        incumbent_obj,
        best_bound_internal,
        nodes: nodes_per_thread.iter().sum(),
        nodes_per_thread,
        simplex_iterations: per_worker.iter().map(|w| w.iterations).sum(),
        hit_limit,
        interrupted,
        pruned: per_worker.iter().map(|w| w.pruned).sum(),
        incumbents,
        steals: per_worker.iter().map(|w| w.steals).sum(),
        simplex_seconds: per_worker.iter().map(|w| w.simplex_seconds).sum(),
        factor_seconds: per_worker.iter().map(|w| w.factor_seconds).sum(),
        refactorizations: per_worker.iter().map(|w| w.refactorizations).sum(),
        warm_starts: per_worker.iter().map(|w| w.warm_starts).sum(),
        cold_starts: per_worker.iter().map(|w| w.cold_starts).sum(),
        // In-tree separation (and with it conflict analysis) is serial-only
        // (worker-local rows would skew snapshot sharing); parallel workers
        // search with root cuts only.
        cuts_generated: 0,
        cuts_applied: 0,
        separation_seconds: 0.0,
        propagated_bounds: per_worker.iter().map(|w| w.propagated_bounds).sum(),
        propagation_fathoms: per_worker.iter().map(|w| w.propagation_fathoms).sum(),
        propagation_seconds: per_worker.iter().map(|w| w.propagation_seconds).sum(),
        conflict_cuts_generated: 0,
        conflict_cuts_applied: 0,
        orbital_fixings: per_worker.iter().map(|w| w.orbital_fixings).sum(),
        strong_branch_probes: per_worker.iter().map(|w| w.strong_branch_probes).sum(),
    })
}

/// Counters one worker brings home from its [`worker_loop`].
#[derive(Debug, Clone, Copy, Default)]
struct WorkerStats {
    nodes: u64,
    iterations: u64,
    pruned: u64,
    steals: u64,
    simplex_seconds: f64,
    factor_seconds: f64,
    refactorizations: u64,
    warm_starts: u64,
    cold_starts: u64,
    propagated_bounds: u64,
    propagation_fathoms: u64,
    propagation_seconds: f64,
    orbital_fixings: u64,
    strong_branch_probes: u64,
}

/// One worker: pops nodes until the tree is exhausted or a stop is raised.
fn worker_loop(shared: &SearchShared, id: usize, local: Option<Deque<OpenNode>>) -> WorkerStats {
    let SearchShared { model, sf, options, int_cols, root_bounds, start, pool, control, .. } =
        shared;
    let incumbent = &shared.incumbent;
    let mut worker = NodeWorker::new(model, sf, options, int_cols, root_bounds, *start, false);
    if let Some(plan) = &shared.symmetry {
        worker.arm_symmetry(Arc::clone(plan));
    }
    let mut handle = SharedHandle(incumbent);
    let local = local.as_ref();
    let mut steals: u64 = 0;
    let mut feed_cursor = 0u64;

    loop {
        if control.stop.load(Ordering::Acquire) {
            // Abandon local work, folding bounds so the final global bound
            // stays valid.
            if let Some(d) = local {
                while let Some(n) = d.pop() {
                    control.fold_open_bound(n.bound);
                }
            }
            break;
        }
        let (node, stolen) = match pool.pop(id, local) {
            Some(n) => n,
            None => {
                if control.in_flight.load(Ordering::Acquire) == 0 {
                    break;
                }
                std::thread::yield_now();
                continue;
            }
        };
        if stolen {
            steals += 1;
        }

        if options.cancelled() {
            worker.interrupted = true;
            control.interrupted.store(true, Ordering::Release);
        }
        // Every worker polls the external feed with its own cursor; the
        // shared incumbent dedups concurrent offers of the same point.
        poll_feed(&worker, &mut feed_cursor, &mut handle, node.bound);
        if worker.interrupted || worker.time_up() || control.node_limit_hit(options) {
            control.hit_limit.store(true, Ordering::Release);
            control.stop.store(true, Ordering::Release);
            control.fold_open_bound(node.bound);
            control.in_flight.fetch_sub(1, Ordering::AcqRel);
            continue;
        }
        if gap_closed(options, incumbent.best_obj(), node.bound) {
            worker.note_pruned(node.bound);
            control.in_flight.fetch_sub(1, Ordering::AcqRel);
            continue;
        }

        worker.enter_node(&node, root_bounds);
        worker.dual_bound = f64::from_bits(control.root_bound.load(Ordering::Relaxed));
        control.nodes.fetch_add(1, Ordering::Relaxed);
        match worker.eval_node(&node, &mut handle) {
            Ok((children, bound)) => {
                if node.deltas.is_empty() {
                    control.root_bound.store(bound.to_bits(), Ordering::Relaxed);
                }
                if worker.hit_limit {
                    // Deadline, cancel or numerics inside the node.
                    if worker.interrupted {
                        control.interrupted.store(true, Ordering::Release);
                    }
                    control.hit_limit.store(true, Ordering::Release);
                    control.stop.store(true, Ordering::Release);
                    control.fold_open_bound(bound);
                } else {
                    // Register children before retiring the parent so
                    // `in_flight` cannot dip to zero early. Push in reverse
                    // so the LIFO owner pops the near child first, matching
                    // the serial dive order.
                    for c in children.into_iter().rev() {
                        control.in_flight.fetch_add(1, Ordering::AcqRel);
                        pool.push(c, local);
                    }
                }
                control.in_flight.fetch_sub(1, Ordering::AcqRel);
            }
            Err(e) => {
                let mut slot = control.error.lock();
                if slot.is_none() {
                    *slot = Some(e);
                }
                control.stop.store(true, Ordering::Release);
                control.in_flight.fetch_sub(1, Ordering::AcqRel);
            }
        }
    }

    let nodes = worker.nodes;
    options.observer.emit(|| SolverEvent::ThreadStats { worker: id, nodes, steals });
    WorkerStats {
        nodes,
        iterations: worker.lp.iterations,
        pruned: worker.pruned,
        steals,
        simplex_seconds: worker.lp.simplex_seconds,
        factor_seconds: worker.lp.factor_seconds,
        refactorizations: worker.lp.refactorizations,
        warm_starts: worker.warm_starts,
        cold_starts: worker.cold_starts,
        propagated_bounds: worker.propagated_bounds,
        propagation_fathoms: worker.propagation_fathoms,
        propagation_seconds: worker.propagation_seconds,
        orbital_fixings: worker.orbital_fixings,
        strong_branch_probes: worker.strong_branch_probes,
    }
}
