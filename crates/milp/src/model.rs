//! Model-building layer: variables, constraints, objective.
//!
//! A [`Model`] is an in-memory MILP
//! `min/max cᵀx  s.t.  lᵢ ≤ rowᵢ·x ≤ uᵢ, lb ≤ x ≤ ub, xⱼ ∈ ℤ for j ∈ I`.
//! Constraints are expressed with a [`LinExpr`] left-hand side, a
//! [`ConstraintSense`] and a right-hand side.
//!
//! ```
//! use ndp_milp::{Model, LinExpr, ConstraintSense, Objective};
//!
//! // max x + 2y s.t. x + y <= 1, binaries
//! let mut m = Model::new("tiny");
//! let x = m.binary("x");
//! let y = m.binary("y");
//! m.add_constraint("cap", LinExpr::from(x) + y, ConstraintSense::Le, 1.0);
//! m.set_objective(Objective::Maximize, LinExpr::from(x) + LinExpr::from(y) * 2.0);
//! let sol = m.solve()?;
//! assert_eq!(sol.objective_value(), 2.0);
//! # Ok::<(), ndp_milp::MilpError>(())
//! ```

use crate::error::{MilpError, Result};
use crate::expr::LinExpr;
use crate::options::SolverOptions;
use crate::solution::Solution;

/// Handle to a variable in a [`Model`].
///
/// `VarId`s are only meaningful for the model that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// The raw column index of the variable.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Integrality class of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VarKind {
    /// Real-valued within its bounds.
    #[default]
    Continuous,
    /// Integer-valued within its bounds.
    Integer,
    /// Integer with implied bounds `[0, 1]`.
    Binary,
}

/// Direction of a constraint relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintSense {
    /// `lhs ≤ rhs`
    Le,
    /// `lhs ≥ rhs`
    Ge,
    /// `lhs = rhs`
    Eq,
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Objective {
    /// Minimize the objective expression (the default).
    #[default]
    Minimize,
    /// Maximize the objective expression.
    Maximize,
}

#[derive(Debug, Clone)]
pub(crate) struct Variable {
    pub name: String,
    pub kind: VarKind,
    pub lb: f64,
    pub ub: f64,
    /// Larger values are branched on earlier. Defaults to 0.
    pub branch_priority: i32,
}

#[derive(Debug, Clone)]
pub(crate) struct RowConstraint {
    pub name: String,
    pub expr: LinExpr,
    pub sense: ConstraintSense,
    pub rhs: f64,
}

/// Handle to a constraint row in a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConstraintId(pub(crate) usize);

impl ConstraintId {
    /// The raw row index of the constraint.
    pub fn index(self) -> usize {
        self.0
    }
}

/// An in-memory mixed-integer linear program.
///
/// See the module-level documentation for an end-to-end example.
#[derive(Debug, Clone, Default)]
pub struct Model {
    name: String,
    pub(crate) vars: Vec<Variable>,
    pub(crate) rows: Vec<RowConstraint>,
    pub(crate) objective: LinExpr,
    pub(crate) direction: Objective,
    warm_start: Option<Vec<f64>>,
}

impl Model {
    /// Creates an empty model with a diagnostic name.
    pub fn new(name: impl Into<String>) -> Self {
        Model { name: name.into(), ..Model::default() }
    }

    /// The model's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraint rows.
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Number of integer/binary variables.
    pub fn num_integers(&self) -> usize {
        self.vars.iter().filter(|v| v.kind != VarKind::Continuous).count()
    }

    /// Adds a variable with explicit kind and bounds.
    ///
    /// Non-finite bounds are accepted here; they are clamped to the solver's
    /// working bound at solve time (see [`SolverOptions::infinite_bound`]).
    ///
    /// # Errors
    ///
    /// Returns [`MilpError::InvalidBounds`] if `lb > ub` or a bound is NaN.
    pub fn add_var(
        &mut self,
        name: impl Into<String>,
        kind: VarKind,
        lb: f64,
        ub: f64,
    ) -> Result<VarId> {
        let name = name.into();
        if lb.is_nan() || ub.is_nan() || lb > ub {
            return Err(MilpError::InvalidBounds { name, lb, ub });
        }
        let (lb, ub) = match kind {
            VarKind::Binary => (lb.max(0.0), ub.min(1.0)),
            _ => (lb, ub),
        };
        if lb > ub {
            return Err(MilpError::InvalidBounds { name, lb, ub });
        }
        self.vars.push(Variable { name, kind, lb, ub, branch_priority: 0 });
        Ok(VarId(self.vars.len() - 1))
    }

    /// Adds a binary (0/1) variable.
    ///
    /// # Panics
    ///
    /// Never panics: binary bounds are always valid.
    pub fn binary(&mut self, name: impl Into<String>) -> VarId {
        self.add_var(name, VarKind::Binary, 0.0, 1.0).expect("binary bounds are valid")
    }

    /// Adds a continuous variable in `[lb, ub]`.
    ///
    /// # Errors
    ///
    /// Returns [`MilpError::InvalidBounds`] if `lb > ub` or a bound is NaN.
    pub fn continuous(&mut self, name: impl Into<String>, lb: f64, ub: f64) -> Result<VarId> {
        self.add_var(name, VarKind::Continuous, lb, ub)
    }

    /// Adds an integer variable in `[lb, ub]`.
    ///
    /// # Errors
    ///
    /// Returns [`MilpError::InvalidBounds`] if `lb > ub` or a bound is NaN.
    pub fn integer(&mut self, name: impl Into<String>, lb: f64, ub: f64) -> Result<VarId> {
        self.add_var(name, VarKind::Integer, lb, ub)
    }

    /// The `(lb, ub)` bounds of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this model.
    pub fn bounds(&self, var: VarId) -> (f64, f64) {
        let v = &self.vars[var.0];
        (v.lb, v.ub)
    }

    /// Overwrites the bounds of `var`.
    ///
    /// # Errors
    ///
    /// Returns [`MilpError::InvalidBounds`] if `lb > ub` or a bound is NaN.
    pub fn set_bounds(&mut self, var: VarId, lb: f64, ub: f64) -> Result<()> {
        if lb.is_nan() || ub.is_nan() || lb > ub {
            return Err(MilpError::InvalidBounds { name: self.vars[var.0].name.clone(), lb, ub });
        }
        self.vars[var.0].lb = lb;
        self.vars[var.0].ub = ub;
        Ok(())
    }

    /// Fixes `var` to a single value.
    ///
    /// # Errors
    ///
    /// Returns [`MilpError::InvalidBounds`] if `value` is NaN.
    pub fn fix(&mut self, var: VarId, value: f64) -> Result<()> {
        self.set_bounds(var, value, value)
    }

    /// The diagnostic name of `var`.
    pub fn var_name(&self, var: VarId) -> &str {
        &self.vars[var.0].name
    }

    /// The integrality kind of `var`.
    pub fn var_kind(&self, var: VarId) -> VarKind {
        self.vars[var.0].kind
    }

    /// Sets the branching priority of `var`; higher priorities are branched
    /// on first. The default priority is 0.
    pub fn set_branch_priority(&mut self, var: VarId, priority: i32) {
        self.vars[var.0].branch_priority = priority;
    }

    /// Adds the constraint `expr (sense) rhs` and returns its id.
    pub fn add_constraint(
        &mut self,
        name: impl Into<String>,
        expr: LinExpr,
        sense: ConstraintSense,
        rhs: f64,
    ) -> ConstraintId {
        self.rows.push(RowConstraint { name: name.into(), expr, sense, rhs });
        ConstraintId(self.rows.len() - 1)
    }

    /// Shorthand for `expr ≤ rhs`.
    pub fn add_le(&mut self, name: impl Into<String>, expr: LinExpr, rhs: f64) -> ConstraintId {
        self.add_constraint(name, expr, ConstraintSense::Le, rhs)
    }

    /// Shorthand for `expr ≥ rhs`.
    pub fn add_ge(&mut self, name: impl Into<String>, expr: LinExpr, rhs: f64) -> ConstraintId {
        self.add_constraint(name, expr, ConstraintSense::Ge, rhs)
    }

    /// Shorthand for `expr = rhs`.
    pub fn add_eq(&mut self, name: impl Into<String>, expr: LinExpr, rhs: f64) -> ConstraintId {
        self.add_constraint(name, expr, ConstraintSense::Eq, rhs)
    }

    /// Sets the objective `direction expr`.
    pub fn set_objective(&mut self, direction: Objective, expr: LinExpr) {
        self.direction = direction;
        self.objective = expr;
    }

    /// The objective expression.
    pub fn objective(&self) -> &LinExpr {
        &self.objective
    }

    /// The optimization direction.
    pub fn direction(&self) -> Objective {
        self.direction
    }

    /// Supplies a candidate assignment used as the initial incumbent if it is
    /// feasible. Infeasible warm starts are silently ignored at solve time.
    ///
    /// # Errors
    ///
    /// Returns [`MilpError::WarmStartLength`] if `values.len()` differs from
    /// [`Model::num_vars`].
    pub fn set_warm_start(&mut self, values: Vec<f64>) -> Result<()> {
        if values.len() != self.vars.len() {
            return Err(MilpError::WarmStartLength {
                got: values.len(),
                expected: self.vars.len(),
            });
        }
        self.warm_start = Some(values);
        Ok(())
    }

    pub(crate) fn warm_start(&self) -> Option<&[f64]> {
        self.warm_start.as_deref()
    }

    pub(crate) fn warm_start_mut(&mut self) -> Option<&mut Vec<f64>> {
        self.warm_start.as_mut()
    }

    /// Checks whether `values` satisfies all bounds, integrality requirements
    /// and constraints within `tol`.
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        if values.len() != self.vars.len() {
            return false;
        }
        for (v, &x) in self.vars.iter().zip(values) {
            if x < v.lb - tol || x > v.ub + tol {
                return false;
            }
            if v.kind != VarKind::Continuous && (x - x.round()).abs() > tol {
                return false;
            }
        }
        for row in &self.rows {
            let lhs = row.expr.eval(values);
            let ok = match row.sense {
                ConstraintSense::Le => lhs <= row.rhs + tol,
                ConstraintSense::Ge => lhs >= row.rhs - tol,
                ConstraintSense::Eq => (lhs - row.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Solves the model with default [`SolverOptions`].
    ///
    /// # Errors
    ///
    /// Propagates numerical failures from the simplex; infeasibility and
    /// unboundedness are reported through [`Solution::status`], not as errors.
    pub fn solve(&self) -> Result<Solution> {
        self.solve_with(&SolverOptions::default())
    }

    /// Solves the model with explicit options.
    ///
    /// # Errors
    ///
    /// Propagates numerical failures from the simplex; infeasibility and
    /// unboundedness are reported through [`Solution::status`], not as errors.
    pub fn solve_with(&self, options: &SolverOptions) -> Result<Solution> {
        crate::branch::solve(self, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_bounds_are_clamped() {
        let mut m = Model::new("t");
        let b = m.add_var("b", VarKind::Binary, -5.0, 9.0).unwrap();
        assert_eq!(m.bounds(b), (0.0, 1.0));
    }

    #[test]
    fn invalid_bounds_rejected() {
        let mut m = Model::new("t");
        assert!(matches!(m.continuous("x", 2.0, 1.0), Err(MilpError::InvalidBounds { .. })));
        assert!(m.continuous("y", f64::NAN, 1.0).is_err());
    }

    #[test]
    fn feasibility_checker_respects_integrality() {
        let mut m = Model::new("t");
        let b = m.binary("b");
        m.add_le("r", LinExpr::from(b), 1.0);
        assert!(m.is_feasible(&[1.0], 1e-9));
        assert!(!m.is_feasible(&[0.5], 1e-9));
        assert!(!m.is_feasible(&[2.0], 1e-9));
    }

    #[test]
    fn warm_start_length_checked() {
        let mut m = Model::new("t");
        m.binary("b");
        assert!(m.set_warm_start(vec![1.0, 2.0]).is_err());
        assert!(m.set_warm_start(vec![1.0]).is_ok());
    }

    #[test]
    fn fix_narrows_bounds() {
        let mut m = Model::new("t");
        let x = m.continuous("x", 0.0, 10.0).unwrap();
        m.fix(x, 3.5).unwrap();
        assert_eq!(m.bounds(x), (3.5, 3.5));
    }
}
