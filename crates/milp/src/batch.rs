//! Batch solve engine: pool-scheduled fan-out over families of related
//! solves, with shared presolve/standardization artifacts.
//!
//! Two pieces live here:
//!
//! * [`run_batch`] — a work-stealing scatter over `n` independent jobs.
//!   One shared atomic cursor hands out job indices; the calling thread
//!   drains jobs itself while helper drainers run as **revocable tasks** on
//!   the process-global [`crate::pool`]. There are no chunk barriers: a
//!   slow job delays only itself, every other core keeps pulling work.
//!   Results come back in job-index order, so output determinism is free.
//! * [`PreparedModel`] — the *shared-artifact* half. Preparing a model runs
//!   NaN validation, presolve and standardization **once**; every member
//!   solve of a batch then clones the prepared standard form (an `O(nnz)`
//!   memcpy instead of a rebuild) and enters branch and bound directly.
//!   Per-member warm starts and [`IncumbentFeed`](crate::IncumbentFeed)s
//!   are translated through the stored presolve reduction, so racing a
//!   prepared solve behaves exactly like racing `Model::solve_with`.
//!
//! Batch scheduling composes with the parallel search: a member solve with
//! `threads ≥ 2` submits its own helper tasks to the same pool, and because
//! every submitting thread also drains its own work (here and in
//! [`crate::parallel`]), saturation degrades to serial progress, never to
//! deadlock.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

use crate::branch::{solve_constant, solve_on_form, validate_nan};
use crate::error::Result;
use crate::events::{SolverEvent, TerminationReason};
use crate::model::Model;
use crate::options::SolverOptions;
use crate::pool as global_pool;
use crate::presolve::{presolve, Presolved, Reduction};
use crate::solution::{Solution, SolveStats, SolveStatus};
use crate::standard::StandardForm;

/// Shared state of one [`run_batch`] scatter.
struct BatchState<T, F> {
    f: F,
    jobs: usize,
    /// Next unclaimed job index; claiming is one `fetch_add`.
    next: AtomicUsize,
    /// Results parked by index until the caller collects them.
    results: Mutex<Vec<Option<T>>>,
    /// Jobs not yet completed (claimed-and-running jobs count).
    remaining: Mutex<usize>,
    done: Condvar,
    /// First panic payload message, re-raised on the calling thread.
    panic: Mutex<Option<String>>,
}

impl<T: Send, F: Fn(usize) -> T + Send + Sync> BatchState<T, F> {
    /// Claims and runs jobs until the cursor runs out. Panics in `f` are
    /// contained per job so one bad member cannot strand the batch.
    fn drain(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.jobs {
                return;
            }
            match catch_unwind(AssertUnwindSafe(|| (self.f)(i))) {
                Ok(value) => self.results.lock()[i] = Some(value),
                Err(payload) => {
                    let mut slot = self.panic.lock();
                    if slot.is_none() {
                        *slot = Some(crate::parallel::panic_message(payload.as_ref()));
                    }
                }
            }
            let mut rem = self.remaining.lock();
            *rem -= 1;
            if *rem == 0 {
                self.done.notify_all();
            }
        }
    }

    fn wait_all(&self) {
        let mut rem = self.remaining.lock();
        while *rem > 0 {
            self.done.wait(&mut rem);
        }
    }
}

/// Runs `jobs` independent jobs (`f(0) .. f(jobs - 1)`) across the calling
/// thread and the process-global worker pool, returning results in job
/// order.
///
/// Scheduling is work-stealing over a single shared cursor: the moment any
/// participant finishes a job it claims the next one, so a slow member
/// never gates the rest of the batch (unlike chunked scatter/gather, where
/// the slowest member of each chunk holds the barrier). Helper drainers are
/// submitted as revocable pool tasks; any helper still queued when the work
/// runs out is revoked instead of occupying a pool slot. The calling thread
/// always participates, so progress is guaranteed even with the pool
/// saturated by other tenants — and a job is free to start its own nested
/// parallel solve on the same pool without deadlock.
///
/// # Panics
///
/// If a job panics, the remaining jobs still run to completion and the
/// first panic message is re-raised on the calling thread afterwards.
pub fn run_batch<T, F>(jobs: usize, f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(usize) -> T + Send + Sync + 'static,
{
    if jobs == 0 {
        return Vec::new();
    }
    if jobs == 1 {
        // Nothing to scatter; skip the shared-state machinery.
        return vec![f(0)];
    }
    let state = Arc::new(BatchState {
        f,
        jobs,
        next: AtomicUsize::new(0),
        results: Mutex::new((0..jobs).map(|_| None).collect()),
        remaining: Mutex::new(jobs),
        done: Condvar::new(),
        panic: Mutex::new(None),
    });
    // One drainer per pool worker is enough: each drainer loops over jobs.
    let helpers = global_pool::global().workers().min(jobs - 1);
    let handles: Vec<_> = (0..helpers)
        .map(|_| {
            let s = Arc::clone(&state);
            global_pool::global().submit(Box::new(move || s.drain()))
        })
        .collect();
    state.drain();
    // The cursor is exhausted: claimed helpers are finishing their last
    // job, unclaimed ones have nothing left to contribute.
    for h in &handles {
        h.revoke();
    }
    state.wait_all();
    if let Some(message) = state.panic.lock().take() {
        panic!("batch job panicked: {message}");
    }
    let mut results = state.results.lock();
    results.drain(..).map(|r| r.expect("every completed job parked a result")).collect()
}

/// A model standardized once and solved many times.
///
/// [`PreparedModel::new`] runs the per-model pipeline that
/// [`Model::solve_with`] repeats on every call — NaN validation, presolve,
/// standard-form construction — and keeps the artifacts. Each
/// [`PreparedModel::solve`] then costs one standard-form clone plus the
/// branch-and-bound search itself, which is what makes solving one model
/// under many option sets (portfolio arms, ablation grids, config sweeps)
/// cheap. `solve` takes `&self` and is safe to call concurrently from
/// [`run_batch`] jobs.
///
/// Per-solve knobs (limits, tokens, observers, feeds, node order…) may
/// vary freely between members. Knobs consumed at preparation time —
/// `presolve`, the tolerances and `infinite_bound` baked into the standard
/// form — are fixed by the options given to `new`.
pub struct PreparedModel {
    /// The model member solves actually search (presolve-reduced when the
    /// reductions shrank it).
    model: Model,
    /// Mapping between the original and reduced spaces, when presolve
    /// shrank the model.
    reduction: Option<Arc<Reduction>>,
    /// Standard form of `model`; `None` when presolve already answered
    /// (infeasible) or the model has no variables.
    sf: Option<StandardForm>,
    /// The model was proven infeasible at preparation time.
    infeasible: bool,
    /// Presolve counters replayed into each member's event stream.
    eliminated_vars: usize,
    eliminated_rows: usize,
    /// Integrality/feasibility tolerance used for warm-start mapping.
    map_tol: f64,
    /// Seconds spent preparing (reported once here, not per member).
    prepare_seconds: f64,
}

impl PreparedModel {
    /// Prepares `model` under `options`: validates, presolves (when
    /// `options.presolve`) and standardizes once.
    ///
    /// # Errors
    ///
    /// [`MilpError::NotANumber`](crate::MilpError::NotANumber) if any
    /// objective or constraint coefficient is NaN.
    pub fn new(model: &Model, options: &SolverOptions) -> Result<Self> {
        let start = Instant::now();
        validate_nan(model)?;
        let map_tol = options.integrality_tol.max(options.feasibility_tol);
        let mut prepared = PreparedModel {
            model: model.clone(),
            reduction: None,
            sf: None,
            infeasible: false,
            eliminated_vars: 0,
            eliminated_rows: 0,
            map_tol,
            prepare_seconds: 0.0,
        };
        if model.num_vars() == 0 {
            prepared.prepare_seconds = start.elapsed().as_secs_f64();
            return Ok(prepared);
        }
        if options.presolve {
            match presolve(model, options.feasibility_tol)? {
                Presolved::Infeasible => {
                    prepared.infeasible = true;
                    prepared.eliminated_vars = model.num_vars();
                    prepared.eliminated_rows = model.num_constraints();
                    prepared.prepare_seconds = start.elapsed().as_secs_f64();
                    return Ok(prepared);
                }
                Presolved::Reduced(red) => {
                    let eliminated_vars = red.eliminated_vars();
                    let eliminated_rows =
                        model.num_constraints().saturating_sub(red.model.num_constraints());
                    if eliminated_vars > 0 || eliminated_rows > 0 {
                        prepared.eliminated_vars = eliminated_vars;
                        prepared.eliminated_rows = eliminated_rows;
                        prepared.model = red.model.clone();
                        prepared.reduction = Some(Arc::new(red));
                    }
                }
            }
        }
        if prepared.model.num_vars() > 0 {
            prepared.sf = Some(StandardForm::from_model(&prepared.model, options));
        }
        prepared.prepare_seconds = start.elapsed().as_secs_f64();
        Ok(prepared)
    }

    /// Seconds [`PreparedModel::new`] spent validating, presolving and
    /// standardizing — the cost every member solve now skips.
    pub fn prepare_seconds(&self) -> f64 {
        self.prepare_seconds
    }

    /// Whether preparation already proved the model infeasible (member
    /// solves return instantly).
    pub fn proven_infeasible(&self) -> bool {
        self.infeasible
    }

    /// Solves the prepared model under `options`, optionally seeded with a
    /// warm-start point `warm` in the **original** model's column space
    /// (it is mapped through the presolve reduction like
    /// [`Model::set_warm_start`] would be).
    ///
    /// Equivalent to `Model::solve_with` on the original model with the
    /// same options and warm start — same status, objective and values —
    /// minus the repeated presolve/standardization work. `options.presolve`
    /// is ignored here (that decision was consumed by `new`).
    ///
    /// # Errors
    ///
    /// Propagates numerical failures from the search, exactly like
    /// [`Model::solve_with`].
    pub fn solve(&self, options: &SolverOptions, warm: Option<&[f64]>) -> Result<Solution> {
        let start = Instant::now();
        // Replay the presolve event so member streams keep the canonical
        // `presolve → root → …` shape.
        if options.presolve {
            let (ev, er) = (self.eliminated_vars, self.eliminated_rows);
            options
                .observer
                .emit(|| SolverEvent::Presolve { eliminated_vars: ev, eliminated_rows: er });
        }
        if self.infeasible {
            options.observer.emit(|| SolverEvent::Terminated {
                status: SolveStatus::Infeasible,
                reason: TerminationReason::ProvenInfeasible,
            });
            let total = start.elapsed().as_secs_f64();
            return Ok(Solution {
                status: SolveStatus::Infeasible,
                values: vec![],
                objective: f64::NAN,
                best_bound: f64::NAN,
                nodes: 0,
                nodes_per_thread: vec![],
                simplex_iterations: 0,
                solve_seconds: total,
                stats: SolveStats { total_seconds: total, ..SolveStats::default() },
            });
        }
        let Some(sf) = &self.sf else {
            return Ok(solve_constant(&self.model, options, start));
        };

        let mut opts = options.clone();
        // Feeds publish in the original column space; translate them into
        // the reduced space the prepared search runs in.
        if let Some(red) = &self.reduction {
            if let Some(feed) = opts.incumbent_feed.take() {
                let map_red = Arc::clone(red);
                let tol = self.map_tol;
                opts.incumbent_feed =
                    Some(feed.mapped(Arc::new(move |p: &[f64]| map_red.presolve_point(p, tol))));
            }
        }

        // Per-member warm start, mapped into the prepared space.
        let mut member = self.model.clone();
        if let Some(point) = warm {
            let mapped = match &self.reduction {
                Some(red) => red.presolve_point(point, self.map_tol),
                None => Some(point.to_vec()),
            };
            if let Some(ws) = mapped {
                let _ = member.set_warm_start(ws);
            }
        }

        let sol = solve_on_form(&member, &opts, sf.clone(), None, None, None, start, 0.0)?;
        let Some(red) = &self.reduction else {
            return Ok(sol);
        };
        // Postsolve back into the original column space (mirrors the
        // reduced branch of the one-shot solve pipeline).
        let values = if sol.has_incumbent() { red.postsolve(sol.values()) } else { vec![] };
        Ok(Solution { values, ..sol })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IncumbentFeed, LinExpr, Objective};
    use std::sync::atomic::AtomicU64;

    #[test]
    fn run_batch_returns_results_in_job_order() {
        let out = run_batch(64, |i| i * i);
        assert_eq!(out.len(), 64);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
        assert_eq!(run_batch(0, |i| i), Vec::<usize>::new());
        assert_eq!(run_batch(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn run_batch_runs_every_job_exactly_once() {
        let hits = Arc::new(Mutex::new(vec![0u32; 97]));
        let h = Arc::clone(&hits);
        run_batch(97, move |i| {
            h.lock()[i] += 1;
        });
        assert!(hits.lock().iter().all(|&c| c == 1));
    }

    #[test]
    fn run_batch_propagates_a_job_panic_after_finishing() {
        let completed = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&completed);
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_batch(8, move |i| {
                if i == 3 {
                    panic!("member 3 exploded");
                }
                c.fetch_add(1, Ordering::Relaxed);
            })
        }));
        let message = crate::parallel::panic_message(result.unwrap_err().as_ref());
        assert!(message.contains("member 3 exploded"), "got: {message}");
        // The other seven members still ran (no strand on panic).
        assert_eq!(completed.load(Ordering::Relaxed), 7);
    }

    /// A small knapsack whose optimum is known (items 1 and 2, value 8).
    fn knapsack() -> Model {
        let mut m = Model::new("ks");
        let items = [(3.0, 4.0), (4.0, 5.0), (2.0, 3.0)];
        let mut weight = LinExpr::new();
        let mut value = LinExpr::new();
        for (i, (w, v)) in items.iter().enumerate() {
            let x = m.binary(format!("x{i}"));
            weight.add_term(x, *w);
            value.add_term(x, *v);
        }
        m.add_le("capacity", weight, 6.0);
        m.set_objective(Objective::Maximize, value);
        m
    }

    /// A model presolve genuinely shrinks: a fixed variable and a forcing
    /// row alongside the free part.
    fn reducible() -> Model {
        let mut m = Model::new("red");
        let fixed = m.continuous("fixed", 2.0, 2.0).unwrap();
        let x = m.binary("x");
        let y = m.binary("y");
        m.add_le("cap", LinExpr::term(x, 2.0) + LinExpr::term(y, 3.0) + LinExpr::from(fixed), 6.0);
        m.set_objective(
            Objective::Maximize,
            LinExpr::term(x, 1.0) + LinExpr::term(y, 2.0) + LinExpr::from(fixed),
        );
        m
    }

    #[test]
    fn prepared_solve_matches_direct_solve() {
        for (name, model) in [("knapsack", knapsack()), ("reducible", reducible())] {
            let opts = SolverOptions::default();
            let direct = model.solve_with(&opts).unwrap();
            let prepared = PreparedModel::new(&model, &opts).unwrap();
            for _ in 0..2 {
                let sol = prepared.solve(&opts, None).unwrap();
                assert_eq!(sol.status(), direct.status(), "{name}");
                assert!(
                    (sol.objective_value() - direct.objective_value()).abs() < 1e-9,
                    "{name}: {} vs {}",
                    sol.objective_value(),
                    direct.objective_value()
                );
                assert_eq!(sol.values(), direct.values(), "{name}");
            }
        }
    }

    #[test]
    fn prepared_infeasible_short_circuits_members() {
        let mut m = Model::new("inf");
        let x = m.continuous("x", 0.0, 1.0).unwrap();
        m.add_ge("lo", LinExpr::from(x), 2.0);
        let opts = SolverOptions::default();
        let prepared = PreparedModel::new(&m, &opts).unwrap();
        assert!(prepared.proven_infeasible());
        let sol = prepared.solve(&opts, None).unwrap();
        assert_eq!(sol.status(), SolveStatus::Infeasible);
        assert_eq!(sol.node_count(), 0);
    }

    #[test]
    fn prepared_warm_start_maps_through_the_reduction() {
        let model = reducible();
        let opts = SolverOptions::default();
        let prepared = PreparedModel::new(&model, &opts).unwrap();
        // Warm point in the ORIGINAL space (fixed = 2, x = 0, y = 1): the
        // optimum, feasible under `2x + 3y + fixed ≤ 6`. It must survive
        // the mapping into the reduced space and be proven optimal.
        let sol = prepared.solve(&opts, Some(&[2.0, 0.0, 1.0])).unwrap();
        assert_eq!(sol.status(), SolveStatus::Optimal);
        assert!((sol.objective_value() - 4.0).abs() < 1e-9);
        // Postsolved values are reported in the original space.
        assert_eq!(sol.values().len(), model.num_vars());
        assert!((sol.values()[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn prepared_solves_race_safely_under_run_batch() {
        let opts = SolverOptions::default();
        let prepared = Arc::new(PreparedModel::new(&knapsack(), &opts).unwrap());
        let objs = run_batch(12, move |_| {
            prepared.solve(&SolverOptions::default(), None).unwrap().objective_value()
        });
        assert!(objs.iter().all(|o| (o - 8.0).abs() < 1e-9), "{objs:?}");
    }

    #[test]
    fn feed_published_point_does_not_change_the_optimum() {
        // Publish the known optimum before the solve starts: the search
        // must install it (or find it itself) and still prove the same
        // objective — a feed can only accelerate, never divert.
        let model = knapsack();
        let feed = IncumbentFeed::new();
        feed.publish(vec![0.0, 1.0, 1.0]);
        let opts = SolverOptions::default().incumbent_feed(feed.clone());
        let sol = model.solve_with(&opts).unwrap();
        assert_eq!(sol.status(), SolveStatus::Optimal);
        assert!((sol.objective_value() - 8.0).abs() < 1e-9);
        // Same through the prepared path (feed mapped through presolve).
        let prepared = PreparedModel::new(&model, &opts).unwrap();
        let sol = prepared.solve(&opts, None).unwrap();
        assert_eq!(sol.status(), SolveStatus::Optimal);
        assert!((sol.objective_value() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_feed_points_are_ignored() {
        let model = knapsack();
        let feed = IncumbentFeed::new();
        feed.publish(vec![1.0, 1.0, 1.0]); // violates the capacity row
        feed.publish(vec![1.0]); // wrong arity
        let opts = SolverOptions::default().incumbent_feed(feed);
        let sol = model.solve_with(&opts).unwrap();
        assert_eq!(sol.status(), SolveStatus::Optimal);
        assert!((sol.objective_value() - 8.0).abs() < 1e-9);
    }
}
