//! Solve results.

use crate::model::VarId;

/// Termination status of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveStatus {
    /// Proved optimal within the configured gap.
    Optimal,
    /// Proved infeasible.
    Infeasible,
    /// Proved unbounded (an improving ray exists).
    Unbounded,
    /// Stopped at a limit with at least one feasible incumbent.
    Feasible,
    /// Stopped at a limit without any incumbent.
    Unknown,
    /// Cancelled through a [`CancelToken`](crate::CancelToken). The best
    /// incumbent found before the cancel, if any, is available; check
    /// [`Solution::has_incumbent`].
    Interrupted,
}

impl SolveStatus {
    /// Whether a usable assignment is guaranteed by the status alone.
    ///
    /// [`SolveStatus::Interrupted`] returns `false` here because a cancelled
    /// solve may or may not have found an incumbent yet; use
    /// [`Solution::has_incumbent`] for the per-solve answer.
    pub fn has_solution(self) -> bool {
        matches!(self, SolveStatus::Optimal | SolveStatus::Feasible)
    }
}

/// Per-phase time attribution and work counters of one solve, returned with
/// every [`Solution`] (see [`Solution::stats`]).
///
/// The three measured phases are disjoint per worker thread, so for a
/// serial solve `presolve_seconds + simplex_seconds + factor_seconds ≤
/// total_seconds` and the remainder ([`SolveStats::other_seconds`]) is
/// model building, node bookkeeping and FTRAN/BTRAN refreshes outside the
/// simplex loop. Under `threads ≥ 2` the per-phase times are CPU-seconds
/// summed across workers and may exceed the wall clock.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolveStats {
    /// Wall-clock seconds of the whole solve.
    pub total_seconds: f64,
    /// Seconds spent in presolve reductions.
    pub presolve_seconds: f64,
    /// Seconds spent inside the dual simplex loop, excluding
    /// refactorizations.
    pub simplex_seconds: f64,
    /// Seconds spent (re)factorizing the basis (sparse LU or dense
    /// inversion).
    pub factor_seconds: f64,
    /// Branch-and-bound nodes evaluated.
    pub nodes: u64,
    /// Open nodes discarded by the incumbent bound without an LP solve.
    pub nodes_pruned: u64,
    /// Total simplex pivots across all LP solves.
    pub simplex_iterations: u64,
    /// Basis refactorizations across all workers.
    pub refactorizations: u64,
    /// Incumbent improvements accepted, including pre-search heuristic
    /// finds (warm-start hints not counted).
    pub incumbents: u64,
    /// Nodes obtained by work stealing (0 for serial solves).
    pub steals: u64,
    /// Node LPs warm-started from a parent basis snapshot (restored or
    /// inherited in place). Zero when `SolverOptions::warm_start` is off.
    pub warm_starts: u64,
    /// Node LPs started from the all-slack basis: the root, every node when
    /// warm starts are disabled, and warm-start restores that failed to
    /// factorize and fell back cold.
    pub cold_starts: u64,
    /// Candidate cuts the separators produced (before pool filtering).
    pub cuts_generated: u64,
    /// Cuts accepted by the pool and appended to an LP (root rounds plus
    /// in-tree rounds).
    pub cuts_applied: u64,
    /// Root cuts dropped by the pool's slack-based age-out before the
    /// search started (never installed into the shared base form).
    pub cuts_aged_out: u64,
    /// Seconds spent separating cuts (deriving Gomory rows, building
    /// covers, pool scoring) — disjoint from the simplex and factorization
    /// buckets, which also cover the cut-loop LP re-optimizations.
    pub separation_seconds: f64,
    /// Seconds spent in the root primal heuristics (diving and RINS/RENS
    /// sub-MILPs), including their LP and sub-MILP solves — disjoint from
    /// every other bucket.
    pub heuristic_seconds: f64,
    /// Seconds spent in node-level bound propagation (interval-activity
    /// analysis and bound edits; the node LP re-solve is not included) —
    /// disjoint from every other bucket.
    pub propagation_seconds: f64,
    /// Improving incumbents contributed by the root primal heuristics
    /// before the tree search started.
    pub heuristic_incumbents: u64,
    /// Individual variable bounds tightened by node propagation.
    pub propagated_bounds: u64,
    /// Nodes fathomed by propagation (empty box) without an LP solve.
    pub propagation_fathoms: u64,
    /// Conflict (no-good) cuts derived from infeasible nodes.
    pub conflict_cuts_generated: u64,
    /// Conflict cuts accepted by the pool and appended to a worker LP.
    pub conflict_cuts_applied: u64,
    /// Nontrivial integer-column orbits of the verified symmetry group
    /// (0 when no candidates were supplied or none verified).
    pub symmetry_orbits: u64,
    /// Column fixings applied by node-level lex (orbital) propagation.
    pub orbital_fixings: u64,
    /// Strong-branching probe LPs solved by reliability branching.
    pub strong_branch_probes: u64,
}

impl SolveStats {
    /// Wall-clock time not attributed to presolve/simplex/factorization/
    /// separation/heuristics/propagation: `max(0, total − the six measured
    /// buckets)`. Only meaningful for serial solves (see the struct docs).
    pub fn other_seconds(&self) -> f64 {
        (self.total_seconds
            - self.presolve_seconds
            - self.simplex_seconds
            - self.factor_seconds
            - self.separation_seconds
            - self.heuristic_seconds
            - self.propagation_seconds)
            .max(0.0)
    }
}

/// Result of solving a [`Model`](crate::Model).
#[derive(Debug, Clone)]
pub struct Solution {
    pub(crate) status: SolveStatus,
    pub(crate) values: Vec<f64>,
    pub(crate) objective: f64,
    pub(crate) best_bound: f64,
    pub(crate) nodes: u64,
    pub(crate) nodes_per_thread: Vec<u64>,
    pub(crate) simplex_iterations: u64,
    pub(crate) solve_seconds: f64,
    pub(crate) stats: SolveStats,
}

impl Solution {
    /// The termination status.
    pub fn status(&self) -> SolveStatus {
        self.status
    }

    /// Whether an incumbent assignment is available. Unlike
    /// [`SolveStatus::has_solution`] this also covers an
    /// [`Interrupted`](SolveStatus::Interrupted) solve that found an
    /// incumbent before it was cancelled.
    pub fn has_incumbent(&self) -> bool {
        self.status.has_solution()
            || (self.status == SolveStatus::Interrupted && !self.values.is_empty())
    }

    /// The objective value of the incumbent.
    ///
    /// # Panics
    ///
    /// Panics if no incumbent is available; check
    /// [`Solution::has_incumbent`] first.
    pub fn objective_value(&self) -> f64 {
        assert!(self.has_incumbent(), "no incumbent: status {:?}", self.status);
        self.objective
    }

    /// The incumbent value of `var`.
    ///
    /// # Panics
    ///
    /// Panics if no incumbent is available or `var` is out of range.
    pub fn value(&self, var: VarId) -> f64 {
        assert!(self.has_incumbent(), "no incumbent: status {:?}", self.status);
        self.values[var.index()]
    }

    /// The full assignment indexed by raw variable id.
    ///
    /// Empty when no incumbent exists.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The best proven bound on the optimum (lower bound when minimizing,
    /// upper bound when maximizing). Equal to the objective when optimal.
    pub fn best_bound(&self) -> f64 {
        self.best_bound
    }

    /// Relative gap `|obj − bound| / max(1, |obj|)`; zero when optimal,
    /// infinite when no incumbent exists.
    pub fn gap(&self) -> f64 {
        if !self.has_incumbent() {
            return f64::INFINITY;
        }
        (self.objective - self.best_bound).abs() / self.objective.abs().max(1.0)
    }

    /// Number of branch-and-bound nodes processed.
    pub fn node_count(&self) -> u64 {
        self.nodes
    }

    /// Nodes processed by each worker thread of the branch and bound, in
    /// worker order. A serial solve (`threads = 1`) reports one entry; a
    /// solve answered by presolve alone reports an empty slice.
    pub fn nodes_per_thread(&self) -> &[u64] {
        &self.nodes_per_thread
    }

    /// Total simplex pivots across all LP solves.
    pub fn simplex_iterations(&self) -> u64 {
        self.simplex_iterations
    }

    /// Wall-clock time of the solve in seconds.
    pub fn solve_seconds(&self) -> f64 {
        self.solve_seconds
    }

    /// Per-phase time attribution and work counters of this solve.
    pub fn stats(&self) -> &SolveStats {
        &self.stats
    }

    /// Rounds `value(var)` to the nearest integer as `i64`; convenient for
    /// binary/integer variables.
    ///
    /// # Panics
    ///
    /// Panics if no solution is available.
    pub fn int_value(&self, var: VarId) -> i64 {
        self.value(var).round() as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_has_solution() {
        assert!(SolveStatus::Optimal.has_solution());
        assert!(SolveStatus::Feasible.has_solution());
        assert!(!SolveStatus::Infeasible.has_solution());
        assert!(!SolveStatus::Unbounded.has_solution());
        assert!(!SolveStatus::Unknown.has_solution());
        assert!(!SolveStatus::Interrupted.has_solution());
    }

    #[test]
    fn interrupted_incumbent_is_accessible() {
        let s = Solution {
            status: SolveStatus::Interrupted,
            values: vec![1.0],
            objective: 3.0,
            best_bound: 2.0,
            nodes: 5,
            nodes_per_thread: vec![5],
            simplex_iterations: 10,
            solve_seconds: 0.1,
            stats: SolveStats::default(),
        };
        assert!(s.has_incumbent());
        assert_eq!(s.objective_value(), 3.0);
        assert!(s.gap().is_finite());
        let none = Solution { values: vec![], ..s.clone() };
        assert!(!none.has_incumbent());
        assert!(none.gap().is_infinite());
    }

    #[test]
    fn stats_other_seconds_is_the_remainder() {
        let st = SolveStats {
            total_seconds: 1.0,
            presolve_seconds: 0.1,
            simplex_seconds: 0.5,
            factor_seconds: 0.2,
            separation_seconds: 0.05,
            heuristic_seconds: 0.04,
            propagation_seconds: 0.01,
            ..SolveStats::default()
        };
        assert!((st.other_seconds() - 0.10).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no incumbent")]
    fn objective_panics_without_solution() {
        let s = Solution {
            status: SolveStatus::Infeasible,
            values: vec![],
            objective: 0.0,
            best_bound: 0.0,
            nodes: 0,
            nodes_per_thread: vec![],
            simplex_iterations: 0,
            solve_seconds: 0.0,
            stats: SolveStats::default(),
        };
        let _ = s.objective_value();
    }
}
