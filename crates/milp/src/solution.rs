//! Solve results.

use crate::model::VarId;

/// Termination status of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveStatus {
    /// Proved optimal within the configured gap.
    Optimal,
    /// Proved infeasible.
    Infeasible,
    /// Proved unbounded (an improving ray exists).
    Unbounded,
    /// Stopped at a limit with at least one feasible incumbent.
    Feasible,
    /// Stopped at a limit without any incumbent.
    Unknown,
}

impl SolveStatus {
    /// Whether a usable assignment is available.
    pub fn has_solution(self) -> bool {
        matches!(self, SolveStatus::Optimal | SolveStatus::Feasible)
    }
}

/// Result of solving a [`Model`](crate::Model).
#[derive(Debug, Clone)]
pub struct Solution {
    pub(crate) status: SolveStatus,
    pub(crate) values: Vec<f64>,
    pub(crate) objective: f64,
    pub(crate) best_bound: f64,
    pub(crate) nodes: u64,
    pub(crate) nodes_per_thread: Vec<u64>,
    pub(crate) simplex_iterations: u64,
    pub(crate) solve_seconds: f64,
}

impl Solution {
    /// The termination status.
    pub fn status(&self) -> SolveStatus {
        self.status
    }

    /// The objective value of the incumbent.
    ///
    /// # Panics
    ///
    /// Panics if no solution is available; check
    /// [`SolveStatus::has_solution`] first.
    pub fn objective_value(&self) -> f64 {
        assert!(self.status.has_solution(), "no incumbent: status {:?}", self.status);
        self.objective
    }

    /// The incumbent value of `var`.
    ///
    /// # Panics
    ///
    /// Panics if no solution is available or `var` is out of range.
    pub fn value(&self, var: VarId) -> f64 {
        assert!(self.status.has_solution(), "no incumbent: status {:?}", self.status);
        self.values[var.index()]
    }

    /// The full assignment indexed by raw variable id.
    ///
    /// Empty when no incumbent exists.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The best proven bound on the optimum (lower bound when minimizing,
    /// upper bound when maximizing). Equal to the objective when optimal.
    pub fn best_bound(&self) -> f64 {
        self.best_bound
    }

    /// Relative gap `|obj − bound| / max(1, |obj|)`; zero when optimal,
    /// infinite when no incumbent exists.
    pub fn gap(&self) -> f64 {
        if !self.status.has_solution() {
            return f64::INFINITY;
        }
        (self.objective - self.best_bound).abs() / self.objective.abs().max(1.0)
    }

    /// Number of branch-and-bound nodes processed.
    pub fn node_count(&self) -> u64 {
        self.nodes
    }

    /// Nodes processed by each worker thread of the branch and bound, in
    /// worker order. A serial solve (`threads = 1`) reports one entry; a
    /// solve answered by presolve alone reports an empty slice.
    pub fn nodes_per_thread(&self) -> &[u64] {
        &self.nodes_per_thread
    }

    /// Total simplex pivots across all LP solves.
    pub fn simplex_iterations(&self) -> u64 {
        self.simplex_iterations
    }

    /// Wall-clock time of the solve in seconds.
    pub fn solve_seconds(&self) -> f64 {
        self.solve_seconds
    }

    /// Rounds `value(var)` to the nearest integer as `i64`; convenient for
    /// binary/integer variables.
    ///
    /// # Panics
    ///
    /// Panics if no solution is available.
    pub fn int_value(&self, var: VarId) -> i64 {
        self.value(var).round() as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_has_solution() {
        assert!(SolveStatus::Optimal.has_solution());
        assert!(SolveStatus::Feasible.has_solution());
        assert!(!SolveStatus::Infeasible.has_solution());
        assert!(!SolveStatus::Unbounded.has_solution());
        assert!(!SolveStatus::Unknown.has_solution());
    }

    #[test]
    #[should_panic(expected = "no incumbent")]
    fn objective_panics_without_solution() {
        let s = Solution {
            status: SolveStatus::Infeasible,
            values: vec![],
            objective: 0.0,
            best_bound: 0.0,
            nodes: 0,
            nodes_per_thread: vec![],
            simplex_iterations: 0,
            solve_seconds: 0.0,
        };
        let _ = s.objective_value();
    }
}
