//! Error types for the MILP solver.

use std::fmt;

/// Errors produced while building or solving a model.
///
/// Every public fallible operation in this crate returns
/// [`Result<T, MilpError>`](crate::Result).
#[derive(Debug, Clone, PartialEq)]
pub enum MilpError {
    /// A variable id referenced a variable that does not belong to the model.
    UnknownVariable {
        /// The offending variable index.
        index: usize,
        /// Number of variables in the model.
        len: usize,
    },
    /// A variable was created with `lb > ub` or a non-finite bound where a
    /// finite one is required.
    InvalidBounds {
        /// Variable name (empty if unnamed).
        name: String,
        /// Lower bound supplied.
        lb: f64,
        /// Upper bound supplied.
        ub: f64,
    },
    /// A coefficient, bound or right-hand side was NaN.
    NotANumber {
        /// Human-readable location of the NaN.
        context: String,
    },
    /// The model has no objective-improving direction and no constraints,
    /// or the simplex detected an unbounded ray.
    Unbounded,
    /// The simplex exceeded its iteration limit; usually indicates numerical
    /// trouble rather than a genuinely hard LP.
    IterationLimit {
        /// The limit that was hit.
        limit: usize,
    },
    /// A [`ModelDelta`](crate::ModelDelta) was applied to a model whose
    /// shape differs from the snapshot the delta was recorded against.
    DeltaMismatch {
        /// Variable count the delta was recorded against.
        base_vars: usize,
        /// Row count the delta was recorded against.
        base_rows: usize,
        /// Variable count of the model it was applied to.
        model_vars: usize,
        /// Row count of the model it was applied to.
        model_rows: usize,
    },
    /// A warm-start vector had the wrong length.
    WarmStartLength {
        /// Supplied length.
        got: usize,
        /// Expected length (number of variables).
        expected: usize,
    },
    /// Internal numerical failure (singular basis that could not be repaired).
    SingularBasis,
    /// A search worker panicked during a parallel solve (for example a
    /// user-supplied observer that panics, or an internal invariant
    /// violation on a worker thread). The panic is contained to the owning
    /// solve: the process and the shared worker pool survive, concurrent
    /// solves are unaffected, and the failed solve reports this error.
    WorkerPanicked {
        /// Index of the worker (0 is the calling thread) that panicked.
        worker: usize,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A [`CancelToken`](crate::CancelToken) fired inside a simplex loop.
    /// Used as an internal control-flow signal: branch and bound catches it
    /// and reports [`SolveStatus::Interrupted`](crate::SolveStatus) instead,
    /// so callers of [`Model::solve_with`](crate::Model::solve_with) never
    /// observe this variant.
    Interrupted,
}

impl fmt::Display for MilpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MilpError::UnknownVariable { index, len } => {
                write!(f, "variable index {index} out of range for model with {len} variables")
            }
            MilpError::InvalidBounds { name, lb, ub } => {
                write!(f, "invalid bounds [{lb}, {ub}] for variable `{name}`")
            }
            MilpError::NotANumber { context } => write!(f, "NaN encountered in {context}"),
            MilpError::Unbounded => write!(f, "problem is unbounded"),
            MilpError::IterationLimit { limit } => {
                write!(f, "simplex iteration limit of {limit} exceeded")
            }
            MilpError::DeltaMismatch { base_vars, base_rows, model_vars, model_rows } => {
                write!(
                    f,
                    "delta recorded against {base_vars} vars / {base_rows} rows cannot apply to \
                     a model with {model_vars} vars / {model_rows} rows"
                )
            }
            MilpError::WarmStartLength { got, expected } => {
                write!(f, "warm start has {got} values but the model has {expected} variables")
            }
            MilpError::SingularBasis => write!(f, "singular basis could not be repaired"),
            MilpError::WorkerPanicked { worker, message } => {
                write!(f, "search worker {worker} panicked: {message}")
            }
            MilpError::Interrupted => write!(f, "solve cancelled via CancelToken"),
        }
    }
}

impl std::error::Error for MilpError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, MilpError>;
