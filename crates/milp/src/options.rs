//! Solver configuration.

use crate::events::{CancelToken, IncumbentFeed, Observer, ObserverHandle};
use std::sync::Arc;

/// Rule used to pick the fractional integer variable to branch on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BranchRule {
    /// Branch on the variable whose LP value is closest to 0.5 (after
    /// priority ordering). A solid general-purpose default.
    #[default]
    MostFractional,
    /// Branch on the first fractional variable in index order (Bland-like,
    /// deterministic, useful for debugging).
    FirstFractional,
    /// Pseudo-cost branching: estimates objective degradation per variable
    /// from past branchings and picks the variable with the largest expected
    /// product of down/up degradations.
    PseudoCost,
    /// Reliability branching: pseudo-cost scoring whose estimates are
    /// initialized by strong-branching lookahead. Until a column's down/up
    /// observation counts both reach
    /// [`SolverOptions::reliability_threshold`], its children LPs are probed
    /// with a bounded dual-simplex pivot budget
    /// ([`SolverOptions::strong_branch_pivot_limit`]) warm from the node
    /// basis, and the observed degradations seed the pseudo-cost table —
    /// replacing the flat fallback score that otherwise makes the earliest
    /// (tree-shaping) branchings near-uniform. A probe that proves a child
    /// infeasible fixes the column the other way on the spot.
    Reliability,
}

/// Which linear-algebra kernel backs the dual simplex basis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BasisKernel {
    /// Sparse LU factorization (Markowitz ordering, threshold partial
    /// pivoting) with product-form eta updates per pivot and sparse
    /// FTRAN/BTRAN. The default: node cost scales with basis sparsity
    /// instead of `m²`/`m³`.
    #[default]
    SparseLu,
    /// Dense explicit basis inverse, O(m²) per pivot and O(m³) per
    /// refactorization. Kept as a reference implementation and numerical
    /// fallback; the equivalence test suite pins both kernels to the same
    /// optima.
    Dense,
}

/// Rule used by the dual simplex to pick the leaving row (dual pricing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Pricing {
    /// Dual steepest edge (Forrest–Goldfarb): rows are scored by
    /// `violation² / ‖eᵣᵀB⁻¹‖²` with exact reference-weight updates (one
    /// extra FTRAN per pivot). The default: dramatically fewer pivots on
    /// the degenerate deployment MILPs, at a modest per-pivot surcharge.
    #[default]
    SteepestEdge,
    /// Dual devex: the same `violation² / wᵣ` score with cheap approximate
    /// reference weights (no extra FTRAN; weights reset when they drift too
    /// far). A middle ground when FTRANs are expensive.
    Devex,
    /// Classic Dantzig rule: pick the most violated basic variable. The
    /// historical behavior, kept for A/B comparison and as the cheapest
    /// per-iteration choice.
    Dantzig,
}

/// Order in which open branch-and-bound nodes are explored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NodeOrder {
    /// Depth-first: dives to find incumbents quickly, minimal memory.
    #[default]
    DepthFirst,
    /// Best-bound-first: explores the node with the best LP bound, proving
    /// optimality with fewer nodes at the cost of memory.
    BestBound,
}

/// Tunable limits and tolerances for [`Model::solve_with`].
///
/// Configure with the consuming builder methods, all of which follow the
/// same `options.field(value)` pattern:
///
/// ```
/// use ndp_milp::{BranchRule, SolverOptions};
///
/// let opts = SolverOptions::default()
///     .time_limit(5.0)
///     .node_limit(10_000)
///     .branch_rule(BranchRule::PseudoCost)
///     .threads(4);
/// ```
///
/// [`Model::solve_with`]: crate::Model::solve_with
#[derive(Debug, Clone, PartialEq)]
pub struct SolverOptions {
    /// Values within this distance of an integer are considered integral.
    pub integrality_tol: f64,
    /// Feasibility tolerance for simplex bound/row checks.
    pub feasibility_tol: f64,
    /// Relative optimality gap at which branch and bound stops.
    pub relative_gap: f64,
    /// Absolute optimality gap at which branch and bound stops.
    pub absolute_gap: f64,
    /// Maximum number of branch-and-bound nodes (0 = unlimited).
    pub node_limit: usize,
    /// Wall-clock limit in seconds (`f64::INFINITY` = unlimited).
    pub time_limit: f64,
    /// Simplex iteration limit per LP solve.
    pub simplex_iteration_limit: usize,
    /// Replacement magnitude for infinite variable bounds.
    pub infinite_bound: f64,
    /// Branching variable selection rule.
    pub branch_rule: BranchRule,
    /// Node exploration order.
    pub node_order: NodeOrder,
    /// Whether to run the LP-rounding incumbent heuristic at each node.
    pub rounding_heuristic: bool,
    /// Refactorize the basis inverse every this many simplex pivots.
    pub refactor_interval: usize,
    /// Linear-algebra kernel backing the simplex basis.
    pub basis_kernel: BasisKernel,
    /// Dual-simplex leaving-row rule (pricing). See [`Pricing`].
    pub pricing: Pricing,
    /// Warm-start node LPs from the parent's basis: each branch-and-bound
    /// node snapshots its optimal basis on expansion and both children
    /// restore it (re-factorizing through the LU path) before
    /// re-optimizing, so a child typically finishes in a handful of dual
    /// pivots. `false` re-solves every node from the all-slack basis (the
    /// cold-start reference the ablation benches compare against).
    pub warm_start: bool,
    /// Sparse-LU only: maximum length of the product-form eta file before a
    /// refactorization is forced, independently of `refactor_interval`.
    /// Longer files make FTRAN/BTRAN slower and drift-prone; shorter files
    /// refactorize more often.
    pub eta_limit: usize,
    /// Run presolve reductions before branch and bound.
    pub presolve: bool,
    /// Number of branch-and-bound worker threads. `0` (the default) uses the
    /// machine's available parallelism. `1` runs the original serial search
    /// and reproduces its node ordering bit-for-bit; `≥ 2` explores the tree
    /// with a work-stealing node pool (same optima, different node order).
    pub threads: usize,
    /// Master switch of the cutting-plane engine (root separation loop and,
    /// when [`SolverOptions::cut_node_interval`] is set, in-tree rounds).
    /// Cuts tighten the LP relaxation so the tree is proven with fewer
    /// nodes; `false` reproduces the pure branch-and-bound search.
    pub cuts: bool,
    /// Enable Gomory mixed-integer cuts (requires `cuts`). Root-only: they
    /// are derived from the root basis via the kernel's BTRAN path.
    pub gomory_cuts: bool,
    /// Enable knapsack cover cuts (requires `cuts`). Globally valid, so
    /// they also drive the optional in-tree separation.
    pub cover_cuts: bool,
    /// Maximum root separation rounds; the loop also stops on tailing-off
    /// bound improvement or when the relaxation goes integral.
    pub max_cut_rounds: usize,
    /// In-tree separation interval: every `k`-th depth of the serial search
    /// separates cover cuts at the node relaxation. `0` (default) disables
    /// in-tree rounds (root cuts only). Ignored under `threads ≥ 2` —
    /// appended rows are worker-local and would break snapshot sharing
    /// economics, so parallel workers search with root cuts only.
    pub cut_node_interval: usize,
    /// Master switch of the root primal heuristics (relaxation-guided
    /// diving plus RINS/RENS neighborhood sub-MILPs). Heuristics run after
    /// root separation and before the tree search, seeding the incumbent so
    /// pruning bites from the first node. Deterministic: the only random
    /// choices use a fixed-seed xorshift generator.
    pub heuristics: bool,
    /// Node budget of each heuristic neighborhood sub-MILP (RINS/RENS).
    /// Larger budgets find better incumbents at a higher fixed cost.
    pub heuristic_node_limit: usize,
    /// Node-level bound propagation: before each node's LP solve, tighten
    /// the node box by interval-activity analysis over the rows (the
    /// presolve arithmetic applied at node bounds). Nodes whose box empties
    /// fathom without a simplex solve.
    pub propagation: bool,
    /// Conflict (no-good) cuts: when a node whose branching path consists
    /// entirely of binary fixings proves LP-infeasible, a globally valid
    /// no-good clause over that fixing set is appended to the worker's LP,
    /// fathoming every other node that repeats the assignment. Serial-only
    /// (appended rows are worker-local), like in-tree cover cuts.
    pub conflict_cuts: bool,
    /// Candidate column permutations of the model (each a full-length map
    /// `j ↦ σ(j)` over structural columns), typically lifted from mesh
    /// automorphisms by the encoding layer. Every candidate is verified
    /// *exactly* against the model at solve time — objective, bounds, kinds,
    /// priorities and the constraint multiset must all be invariant — so an
    /// unsound candidate is silently rejected rather than trusted. Empty by
    /// default (no symmetry handling).
    pub symmetry_candidates: Arc<Vec<Vec<usize>>>,
    /// Install lexicographic symmetry-breaking rows at the root for the
    /// verified symmetry group (requires `symmetry_candidates`). Each row
    /// keeps the lex-greatest representative of every solution orbit, so at
    /// least one optimum always survives.
    pub symmetry_breaking: bool,
    /// Propagate the lex-leader constraints at every node (orbital fixing):
    /// once a prefix column is fixed, its images under the group are fixed
    /// or the node fathoms. Sound with or without the root rows installed.
    pub orbital_fixing: bool,
    /// Reliability threshold `η` of [`BranchRule::Reliability`]: a column is
    /// strong-branched until both its down and up pseudo-cost observation
    /// counts reach this value.
    pub reliability_threshold: u32,
    /// Dual-simplex pivot budget of one strong-branching probe LP.
    pub strong_branch_pivot_limit: usize,
    /// Receiver of the structured event stream ([`crate::SolverEvent`]);
    /// unset by default. See [`SolverOptions::observer`].
    pub observer: ObserverHandle,
    /// Cooperative cancellation token checked at node boundaries and inside
    /// long simplex loops; unset by default. See
    /// [`SolverOptions::cancel_token`].
    pub cancel: Option<CancelToken>,
    /// External incumbent feed polled at node boundaries: feasible points
    /// published by a racing portfolio arm are installed as incumbents
    /// mid-solve; unset by default. See [`SolverOptions::incumbent_feed`].
    pub incumbent_feed: Option<IncumbentFeed>,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            integrality_tol: 1e-6,
            feasibility_tol: 1e-7,
            relative_gap: 1e-6,
            absolute_gap: 1e-9,
            node_limit: 0,
            time_limit: f64::INFINITY,
            simplex_iteration_limit: 50_000,
            infinite_bound: 1e9,
            branch_rule: BranchRule::default(),
            node_order: NodeOrder::default(),
            rounding_heuristic: true,
            refactor_interval: 128,
            basis_kernel: BasisKernel::default(),
            pricing: Pricing::default(),
            warm_start: true,
            eta_limit: 64,
            presolve: true,
            threads: 0,
            cuts: true,
            gomory_cuts: true,
            cover_cuts: true,
            max_cut_rounds: 10,
            cut_node_interval: 0,
            heuristics: true,
            heuristic_node_limit: 200,
            propagation: true,
            conflict_cuts: true,
            symmetry_candidates: Arc::new(Vec::new()),
            symmetry_breaking: true,
            orbital_fixing: true,
            reliability_threshold: 8,
            strong_branch_pivot_limit: 100,
            observer: ObserverHandle::none(),
            cancel: None,
            incumbent_feed: None,
        }
    }
}

impl SolverOptions {
    /// Sets the wall-clock limit in seconds, builder-style
    /// (`f64::INFINITY` = unlimited).
    pub fn time_limit(mut self, seconds: f64) -> Self {
        self.time_limit = seconds;
        self
    }

    /// Sets the node limit, builder-style.
    pub fn node_limit(mut self, nodes: usize) -> Self {
        self.node_limit = nodes;
        self
    }

    /// Sets the branch rule, builder-style.
    pub fn branch_rule(mut self, rule: BranchRule) -> Self {
        self.branch_rule = rule;
        self
    }

    /// Sets the node order, builder-style.
    pub fn node_order(mut self, order: NodeOrder) -> Self {
        self.node_order = order;
        self
    }

    /// Sets the relative MIP gap, builder-style.
    pub fn relative_gap(mut self, gap: f64) -> Self {
        self.relative_gap = gap;
        self
    }

    /// Sets the absolute MIP gap, builder-style.
    pub fn absolute_gap(mut self, gap: f64) -> Self {
        self.absolute_gap = gap;
        self
    }

    /// Enables or disables presolve, builder-style.
    pub fn presolve(mut self, on: bool) -> Self {
        self.presolve = on;
        self
    }

    /// Enables or disables the LP-rounding incumbent heuristic,
    /// builder-style.
    pub fn rounding_heuristic(mut self, on: bool) -> Self {
        self.rounding_heuristic = on;
        self
    }

    /// Sets the per-LP simplex iteration limit, builder-style.
    pub fn simplex_iteration_limit(mut self, limit: usize) -> Self {
        self.simplex_iteration_limit = limit;
        self
    }

    /// Registers an [`Observer`] to receive the structured event stream
    /// ([`crate::SolverEvent`]), builder-style. Any
    /// `Fn(&SolverEvent) + Send + Sync` closure qualifies.
    pub fn observer(mut self, observer: Arc<dyn Observer>) -> Self {
        self.observer = ObserverHandle::new(observer);
        self
    }

    /// Registers a [`CancelToken`], builder-style. Keep a clone and call
    /// [`CancelToken::cancel`] from any thread to interrupt the solve; the
    /// solver returns its best incumbent with
    /// [`SolveStatus::Interrupted`](crate::SolveStatus::Interrupted).
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Whether cancellation has been requested through the registered token.
    #[inline]
    pub(crate) fn cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(|t| t.is_cancelled())
    }

    /// Registers an [`IncumbentFeed`], builder-style. Keep a clone and
    /// [`publish`](IncumbentFeed::publish) feasible points from any thread
    /// — a racing heuristic arm, another solve of a portfolio — and the
    /// search installs improving ones as incumbents at its next node
    /// boundary. Infeasible or non-improving points are silently dropped,
    /// so feeding never changes the optimum, only how fast it is proven.
    pub fn incumbent_feed(mut self, feed: IncumbentFeed) -> Self {
        self.incumbent_feed = Some(feed);
        self
    }

    /// Sets the worker-thread count, builder-style (`0` = auto, `1` =
    /// serial/deterministic; see [`SolverOptions::threads`]).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Selects the simplex basis kernel, builder-style.
    pub fn basis_kernel(mut self, kernel: BasisKernel) -> Self {
        self.basis_kernel = kernel;
        self
    }

    /// Sets the eta-file length limit of the sparse kernel, builder-style.
    pub fn eta_limit(mut self, limit: usize) -> Self {
        self.eta_limit = limit;
        self
    }

    /// Selects the dual-simplex pricing rule, builder-style.
    pub fn pricing(mut self, pricing: Pricing) -> Self {
        self.pricing = pricing;
        self
    }

    /// Enables or disables parent-basis node warm starts, builder-style.
    pub fn warm_start(mut self, on: bool) -> Self {
        self.warm_start = on;
        self
    }

    /// Enables or disables the cutting-plane engine, builder-style.
    pub fn cuts(mut self, on: bool) -> Self {
        self.cuts = on;
        self
    }

    /// Enables or disables Gomory mixed-integer cuts, builder-style.
    pub fn gomory_cuts(mut self, on: bool) -> Self {
        self.gomory_cuts = on;
        self
    }

    /// Enables or disables knapsack cover cuts, builder-style.
    pub fn cover_cuts(mut self, on: bool) -> Self {
        self.cover_cuts = on;
        self
    }

    /// Sets the root separation round budget, builder-style.
    pub fn max_cut_rounds(mut self, rounds: usize) -> Self {
        self.max_cut_rounds = rounds;
        self
    }

    /// Sets the in-tree separation interval (`0` = root only),
    /// builder-style.
    pub fn cut_node_interval(mut self, every_k_depths: usize) -> Self {
        self.cut_node_interval = every_k_depths;
        self
    }

    /// Enables or disables the root primal heuristics, builder-style.
    pub fn heuristics(mut self, on: bool) -> Self {
        self.heuristics = on;
        self
    }

    /// Sets the node budget of each heuristic sub-MILP, builder-style.
    pub fn heuristic_node_limit(mut self, nodes: usize) -> Self {
        self.heuristic_node_limit = nodes;
        self
    }

    /// Enables or disables node-level bound propagation, builder-style.
    pub fn propagation(mut self, on: bool) -> Self {
        self.propagation = on;
        self
    }

    /// Enables or disables conflict (no-good) cuts, builder-style.
    pub fn conflict_cuts(mut self, on: bool) -> Self {
        self.conflict_cuts = on;
        self
    }

    /// Supplies candidate column permutations for symmetry handling,
    /// builder-style. See [`SolverOptions::symmetry_candidates`].
    pub fn symmetry_candidates(mut self, candidates: Vec<Vec<usize>>) -> Self {
        self.symmetry_candidates = Arc::new(candidates);
        self
    }

    /// Enables or disables root lex symmetry-breaking rows, builder-style.
    pub fn symmetry_breaking(mut self, on: bool) -> Self {
        self.symmetry_breaking = on;
        self
    }

    /// Enables or disables node-level orbital fixing, builder-style.
    pub fn orbital_fixing(mut self, on: bool) -> Self {
        self.orbital_fixing = on;
        self
    }

    /// Sets the reliability threshold `η`, builder-style.
    pub fn reliability_threshold(mut self, eta: u32) -> Self {
        self.reliability_threshold = eta;
        self
    }

    /// Sets the strong-branching probe pivot budget, builder-style.
    pub fn strong_branch_pivot_limit(mut self, pivots: usize) -> Self {
        self.strong_branch_pivot_limit = pivots;
        self
    }

    /// The concrete worker count after resolving `threads = 0` to the
    /// machine's available parallelism (capped at 8: branch-and-bound trees
    /// on this workspace's models rarely feed more workers than that).
    pub fn effective_threads(&self) -> usize {
        if self.threads != 0 {
            return self.threads;
        }
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_methods_chain() {
        let o = SolverOptions::default()
            .time_limit(5.0)
            .node_limit(100)
            .branch_rule(BranchRule::PseudoCost)
            .node_order(NodeOrder::BestBound)
            .relative_gap(1e-3)
            .threads(3)
            .basis_kernel(BasisKernel::Dense)
            .eta_limit(32);
        assert_eq!(o.time_limit, 5.0);
        assert_eq!(o.node_limit, 100);
        assert_eq!(o.branch_rule, BranchRule::PseudoCost);
        assert_eq!(o.node_order, NodeOrder::BestBound);
        assert_eq!(o.relative_gap, 1e-3);
        assert_eq!(o.threads, 3);
        assert_eq!(o.basis_kernel, BasisKernel::Dense);
        assert_eq!(o.eta_limit, 32);
    }

    #[test]
    fn cuts_default_on_with_root_only_separation() {
        let o = SolverOptions::default();
        assert!(o.cuts && o.gomory_cuts && o.cover_cuts);
        assert_eq!(o.max_cut_rounds, 10);
        assert_eq!(o.cut_node_interval, 0, "in-tree rounds are opt-in");
        let o = o
            .cuts(false)
            .gomory_cuts(false)
            .cover_cuts(false)
            .max_cut_rounds(3)
            .cut_node_interval(4);
        assert!(!o.cuts && !o.gomory_cuts && !o.cover_cuts);
        assert_eq!(o.max_cut_rounds, 3);
        assert_eq!(o.cut_node_interval, 4);
    }

    #[test]
    fn accelerators_default_on() {
        let o = SolverOptions::default();
        assert!(o.heuristics && o.propagation && o.conflict_cuts);
        assert!(o.heuristic_node_limit > 0);
        let o = o.heuristics(false).propagation(false).conflict_cuts(false).heuristic_node_limit(7);
        assert!(!o.heuristics && !o.propagation && !o.conflict_cuts);
        assert_eq!(o.heuristic_node_limit, 7);
    }

    #[test]
    fn symmetry_and_reliability_defaults() {
        let o = SolverOptions::default();
        assert!(o.symmetry_candidates.is_empty(), "no candidates unless supplied");
        assert!(o.symmetry_breaking && o.orbital_fixing, "passes armed once candidates exist");
        assert_eq!(o.reliability_threshold, 8);
        assert_eq!(o.strong_branch_pivot_limit, 100);
        assert_eq!(o.branch_rule, BranchRule::MostFractional, "Reliability is opt-in");
        let o = o
            .symmetry_candidates(vec![vec![1, 0]])
            .symmetry_breaking(false)
            .orbital_fixing(false)
            .reliability_threshold(4)
            .strong_branch_pivot_limit(50)
            .branch_rule(BranchRule::Reliability);
        assert_eq!(o.symmetry_candidates.as_ref(), &vec![vec![1, 0]]);
        assert!(!o.symmetry_breaking && !o.orbital_fixing);
        assert_eq!(o.reliability_threshold, 4);
        assert_eq!(o.strong_branch_pivot_limit, 50);
        assert_eq!(o.branch_rule, BranchRule::Reliability);
    }

    #[test]
    fn incumbent_feed_registers_builder_style() {
        let o = SolverOptions::default();
        assert!(o.incumbent_feed.is_none());
        let feed = crate::IncumbentFeed::new();
        let o = o.incumbent_feed(feed.clone());
        assert_eq!(o.incumbent_feed, Some(feed));
    }

    #[test]
    fn observer_and_cancel_default_unset() {
        let o = SolverOptions::default();
        assert!(!o.observer.is_set());
        assert!(o.cancel.is_none());
        assert!(o.incumbent_feed.is_none());
        assert!(!o.cancelled());
        let tok = crate::CancelToken::new();
        let o = o.cancel_token(tok.clone());
        assert!(!o.cancelled());
        tok.cancel();
        assert!(o.cancelled());
    }

    #[test]
    fn sparse_kernel_is_the_default() {
        assert_eq!(SolverOptions::default().basis_kernel, BasisKernel::SparseLu);
        assert!(SolverOptions::default().eta_limit > 0);
    }

    #[test]
    fn warm_dse_is_the_default() {
        let o = SolverOptions::default();
        assert_eq!(o.pricing, Pricing::SteepestEdge);
        assert!(o.warm_start);
        let o = o.pricing(Pricing::Devex).warm_start(false);
        assert_eq!(o.pricing, Pricing::Devex);
        assert!(!o.warm_start);
    }

    #[test]
    fn effective_threads_resolves_auto() {
        assert_eq!(SolverOptions::default().threads(1).effective_threads(), 1);
        assert_eq!(SolverOptions::default().threads(4).effective_threads(), 4);
        let auto = SolverOptions::default().effective_threads();
        assert!((1..=8).contains(&auto), "auto resolved to {auto}");
    }
}
