//! Bounded-variable dual simplex over a pluggable basis kernel.
//!
//! The solver works exclusively with the *dual* simplex method:
//!
//! * The all-slack starting basis is made dual feasible by parking every
//!   structural variable at the bound matching its cost sign (possible
//!   because [`StandardForm`] clamps all bounds to finite values).
//! * Branch-and-bound only changes variable *bounds*, which never disturbs
//!   dual feasibility of the current basis, so every node after the root is
//!   warm-started from its parent's basis ([`BasisSnapshot`], captured at
//!   branch time and restored with [`Simplex::restore_snapshot`]) and
//!   usually re-optimizes in a handful of pivots.
//!
//! Leaving-row pricing is selected by [`SolverOptions::pricing`]: dual
//! steepest edge (exact Forrest–Goldfarb reference weights, default), devex
//! (approximate weights, no extra FTRAN) or classic Dantzig most-violated.
//!
//! The basis linear algebra is abstracted behind [`Kernel`], selected by
//! [`SolverOptions::basis_kernel`]:
//!
//! * [`BasisKernel::SparseLu`] (default) — Markowitz-ordered sparse LU with
//!   product-form eta updates and sparse FTRAN/BTRAN (see [`crate::lu`]).
//!   Pivot cost tracks basis sparsity; the eta file is capped at
//!   `SolverOptions::eta_limit` before a refactorization is forced.
//! * [`BasisKernel::Dense`] — explicit dense `m × m` inverse, O(m²) per
//!   pivot. Kept as the reference implementation and numerical fallback.
//!
//! Pricing scatters the (sparse) BTRAN row through [`StandardForm::row`]
//! instead of dotting every column against a dense ρ.
//!
//! Ratio test: when the dual min-ratio step would push the entering variable
//! past its *opposite* bound, the variable is **bound-flipped** in place (no
//! basis change) and the leaving row is re-examined — the classic
//! bounded-variable refinement that spares a pivot per flip and keeps the
//! iterate inside its box.
//!
//! Anti-cycling: after a run of degenerate pivots the pricing switches to a
//! Bland-like smallest-index rule (flips disabled), which guarantees
//! termination.

use crate::error::{MilpError, Result};
use crate::events::{CancelToken, ObserverHandle, SolverEvent};
use crate::lu::{EtaFile, LuFactors};
use crate::options::{BasisKernel, Pricing, SolverOptions};
use crate::standard::{ColumnRef, StandardForm};
use std::time::Instant;

/// Primal feasibility tolerance (absolute, plus relative to bound size).
const PTOL: f64 = 1e-7;
/// Dual feasibility / reduced cost tolerance.
const DTOL: f64 = 1e-7;
/// Pivot element magnitude floor.
const ZTOL: f64 = 1e-9;
/// Degenerate pivots tolerated before switching to Bland's rule.
const DEGEN_LIMIT: u32 = 200;
/// Floor for DSE/devex reference weights (guards the score division).
const WEIGHT_FLOOR: f64 = 1e-4;
/// Devex weight ceiling: when any weight exceeds this the reference
/// framework has drifted too far and is reset to the unit weights.
const DEVEX_RESET: f64 = 1e7;

/// Status of a single LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LpStatus {
    /// Primal and dual feasible: LP optimum reached.
    Optimal,
    /// Dual unbounded ⇒ primal infeasible under current bounds.
    Infeasible,
}

/// Bound status of a column: basic, or nonbasic parked at one of its bounds.
/// `pub(crate)` so the cut separators can classify nonbasic columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Stat {
    /// In the basis.
    Basic,
    /// Nonbasic at its lower bound.
    Lower,
    /// Nonbasic at its upper bound.
    Upper,
}

/// A restorable image of the simplex basis: the basic column set plus every
/// column's bound status. Captured with [`Simplex::snapshot`] when a
/// branch-and-bound node is expanded and installed in its children with
/// [`Simplex::restore_snapshot`], so each child LP starts one bound change
/// away from its parent's optimal basis instead of wherever the worker's
/// basis drifted (or the all-slack basis).
///
/// Deliberately excludes basic *values* and reduced costs: both depend on
/// the node's bounds and are recomputed on restore, which also keeps the
/// snapshot small enough to share across threads by `Arc`.
#[derive(Debug, Clone)]
pub(crate) struct BasisSnapshot {
    pub(crate) basis: Vec<usize>,
    stat: Vec<Stat>,
}

impl BasisSnapshot {
    /// Remaps a snapshot taken over a form with `old_n` structural columns
    /// onto a form with `new_n ≥ old_n` where the new columns were appended
    /// at the end of the structural range (shifting every slack index up by
    /// `new_n − old_n`). New structural columns enter nonbasic at their
    /// lower bound; [`Simplex::restore_snapshot`] flips them to the dual
    /// feasible side and pads any rows appended after the snapshot, so the
    /// remapped snapshot restores onto any monotone extension of the form.
    pub(crate) fn remap_structural_append(&self, old_n: usize, new_n: usize) -> BasisSnapshot {
        debug_assert!(new_n >= old_n);
        debug_assert!(self.stat.len() >= old_n);
        let k = new_n - old_n;
        let basis =
            self.basis.iter().map(|&j| if j >= old_n { j + k } else { j }).collect::<Vec<_>>();
        let mut stat = Vec::with_capacity(self.stat.len() + k);
        stat.extend_from_slice(&self.stat[..old_n]);
        stat.extend(std::iter::repeat_n(Stat::Lower, k));
        stat.extend_from_slice(&self.stat[old_n..]);
        BasisSnapshot { basis, stat }
    }
}

/// The linear-algebra backend representing `B⁻¹`.
#[derive(Debug, Clone)]
enum Kernel {
    /// Explicit dense row-major `m × m` inverse.
    Dense { binv: Vec<f64> },
    /// Sparse LU factors plus the product-form eta file accumulated since
    /// the last refactorization.
    Lu { lu: LuFactors, etas: EtaFile, eta_limit: usize },
}

impl Kernel {
    fn new(kind: BasisKernel, m: usize, eta_limit: usize) -> Self {
        match kind {
            BasisKernel::Dense => {
                let mut binv = vec![0.0; m * m];
                for r in 0..m {
                    binv[r * m + r] = 1.0;
                }
                Kernel::Dense { binv }
            }
            BasisKernel::SparseLu => Kernel::Lu {
                lu: LuFactors::identity(m),
                etas: EtaFile::default(),
                eta_limit: eta_limit.max(1),
            },
        }
    }

    /// Resets to the identity basis representation (all-slack basis).
    fn reset_identity(&mut self, m: usize) {
        match self {
            Kernel::Dense { binv } => {
                binv.iter_mut().for_each(|v| *v = 0.0);
                for r in 0..m {
                    binv[r * m + r] = 1.0;
                }
            }
            Kernel::Lu { lu, etas, .. } => {
                *lu = LuFactors::identity(m);
                etas.clear();
            }
        }
    }

    /// Rebuilds the representation of the current basis from scratch.
    fn refactorize(&mut self, sf: &StandardForm, basis: &[usize]) -> Result<()> {
        match self {
            Kernel::Dense { binv } => {
                *binv = dense_invert(sf, basis)?;
                Ok(())
            }
            Kernel::Lu { lu, etas, .. } => {
                *lu = LuFactors::factorize(sf, basis)?;
                etas.clear();
                Ok(())
            }
        }
    }

    /// Solves `B x = v` in place: `v` enters indexed by row, leaves indexed
    /// by basis position. `work` is scratch of length `m`.
    fn ftran(&self, v: &mut [f64], work: &mut [f64]) {
        match self {
            Kernel::Dense { binv } => {
                let m = v.len();
                for (i, w) in work.iter_mut().enumerate() {
                    *w = binv[i * m..(i + 1) * m].iter().zip(v.iter()).map(|(a, b)| a * b).sum();
                }
                v.copy_from_slice(work);
            }
            Kernel::Lu { lu, etas, .. } => {
                lu.ftran(v, work);
                etas.apply_ftran(v);
            }
        }
    }

    /// Computes `out = B⁻¹ A_q` exploiting the sparsity of column `q`.
    fn ftran_col(&self, sf: &StandardForm, q: usize, out: &mut [f64], work: &mut [f64]) {
        match self {
            Kernel::Dense { binv } => {
                let m = out.len();
                out.iter_mut().for_each(|v| *v = 0.0);
                match sf.column(q) {
                    ColumnRef::Structural(nz) => {
                        for &(row, v) in nz {
                            for (i, o) in out.iter_mut().enumerate() {
                                *o += binv[i * m + row] * v;
                            }
                        }
                    }
                    ColumnRef::Slack(row) => {
                        for (i, o) in out.iter_mut().enumerate() {
                            *o = binv[i * m + row];
                        }
                    }
                }
            }
            Kernel::Lu { lu, etas, .. } => {
                out.iter_mut().for_each(|v| *v = 0.0);
                sf.column(q).axpy(1.0, out);
                lu.ftran(out, work);
                etas.apply_ftran(out);
            }
        }
    }

    /// Solves `Bᵀ y = c` in place: `c` enters indexed by basis position,
    /// leaves indexed by row. `work` is scratch of length `m`.
    fn btran(&self, c: &mut [f64], work: &mut [f64]) {
        match self {
            Kernel::Dense { binv } => {
                let m = c.len();
                work.iter_mut().for_each(|v| *v = 0.0);
                for (r, &cr) in c.iter().enumerate() {
                    if cr != 0.0 {
                        for (w, &b) in work.iter_mut().zip(&binv[r * m..(r + 1) * m]) {
                            *w += cr * b;
                        }
                    }
                }
                c.copy_from_slice(work);
            }
            Kernel::Lu { lu, etas, .. } => {
                etas.apply_btran_rhs(c);
                lu.btran(c, work);
            }
        }
    }

    /// Extracts `ρ = eᵣᵀ B⁻¹` (row `r` of the inverse) into `out`.
    fn unit_row(&self, r: usize, out: &mut [f64], work: &mut [f64]) {
        match self {
            Kernel::Dense { binv } => {
                let m = out.len();
                out.copy_from_slice(&binv[r * m..(r + 1) * m]);
            }
            Kernel::Lu { lu, etas, .. } => {
                out.iter_mut().for_each(|v| *v = 0.0);
                out[r] = 1.0;
                etas.apply_btran_rhs(out);
                lu.btran(out, work);
            }
        }
    }

    /// Records the basis exchange at position `r` with FTRAN'd entering
    /// column `aq`. Returns `true` when the caller should refactorize now
    /// (sparse kernel: eta file reached its cap).
    fn update(&mut self, r: usize, aq: &[f64]) -> bool {
        match self {
            Kernel::Dense { binv } => {
                let m = aq.len();
                let inv_piv = 1.0 / aq[r];
                for k in 0..m {
                    binv[r * m + k] *= inv_piv;
                }
                for i in 0..m {
                    if i != r {
                        let f = aq[i];
                        if f != 0.0 {
                            for k in 0..m {
                                binv[i * m + k] -= f * binv[r * m + k];
                            }
                        }
                    }
                }
                false
            }
            Kernel::Lu { etas, eta_limit, .. } => {
                etas.push(r, aq);
                etas.len() >= *eta_limit
            }
        }
    }
}

/// Dense Gauss-Jordan inversion of the basis matrix (reference kernel).
fn dense_invert(sf: &StandardForm, basis: &[usize]) -> Result<Vec<f64>> {
    let m = basis.len();
    // Build dense B column by column.
    let mut bmat = vec![0.0; m * m];
    for (r, &j) in basis.iter().enumerate() {
        match sf.column(j) {
            ColumnRef::Structural(nz) => {
                for &(row, v) in nz {
                    bmat[row * m + r] = v;
                }
            }
            ColumnRef::Slack(row) => bmat[row * m + r] = 1.0,
        }
    }
    // Gauss-Jordan with partial pivoting on the augmented [B | I].
    let mut inv = vec![0.0; m * m];
    for r in 0..m {
        inv[r * m + r] = 1.0;
    }
    for col in 0..m {
        let mut piv_row = col;
        let mut piv_val = bmat[col * m + col].abs();
        for r in (col + 1)..m {
            let v = bmat[r * m + col].abs();
            if v > piv_val {
                piv_val = v;
                piv_row = r;
            }
        }
        if piv_val < 1e-11 {
            return Err(MilpError::SingularBasis);
        }
        if piv_row != col {
            for k in 0..m {
                bmat.swap(piv_row * m + k, col * m + k);
                inv.swap(piv_row * m + k, col * m + k);
            }
        }
        let piv = bmat[col * m + col];
        let inv_piv = 1.0 / piv;
        for k in 0..m {
            bmat[col * m + k] *= inv_piv;
            inv[col * m + k] *= inv_piv;
        }
        for r in 0..m {
            if r != col {
                let f = bmat[r * m + col];
                if f != 0.0 {
                    for k in 0..m {
                        bmat[r * m + k] -= f * bmat[col * m + k];
                        inv[r * m + k] -= f * inv[col * m + k];
                    }
                }
            }
        }
    }
    Ok(inv)
}

/// Re-optimizable bounded-variable dual simplex over a constraint matrix
/// with mutable bounds.
///
/// Owns a private copy of the [`StandardForm`] (cloned from the shared base
/// at construction) so cut rows can be appended to a *live* LP with
/// [`Simplex::append_cut_rows`] without disturbing other workers.
#[derive(Debug, Clone)]
pub(crate) struct Simplex {
    sf: StandardForm,
    /// Working bounds, mutated by branch and bound. Length `n + m`.
    pub lb: Vec<f64>,
    pub ub: Vec<f64>,
    basis: Vec<usize>,
    stat: Vec<Stat>,
    /// Basis linear-algebra backend.
    kernel: Kernel,
    /// Values of basic variables by row.
    xb: Vec<f64>,
    /// Reduced costs for all columns (basic entries are ~0).
    d: Vec<f64>,
    m: usize,
    ncols: usize,
    pivots_since_refactor: usize,
    refactor_interval: usize,
    iteration_limit: usize,
    /// Total pivots performed over the lifetime of this state.
    pub iterations: u64,
    /// Wall-clock deadline checked periodically inside [`Simplex::optimize`].
    pub deadline: Option<Instant>,
    /// Cancellation token checked alongside the deadline.
    cancel: Option<CancelToken>,
    /// Event sink for [`SolverEvent::Refactorized`].
    observer: ObserverHandle,
    /// Seconds spent inside [`Simplex::optimize`], refactorizations
    /// excluded.
    pub simplex_seconds: f64,
    /// Seconds spent in [`Simplex::refactorize`] (LU factorization or dense
    /// inversion).
    pub factor_seconds: f64,
    /// Lifetime basis refactorizations.
    pub refactorizations: u64,
    /// Perturbed structural costs used internally to break dual degeneracy
    /// (length `n`); slacks stay at zero cost.
    c_pert: Vec<f64>,
    /// Safe bound correction: `true_optimum ≥ objective() − bound_margin`.
    bound_margin: f64,
    /// Leaving-row selection rule.
    pricing: Pricing,
    /// Reference weights for steepest-edge/devex row pricing, one per basis
    /// row. `weights[r]` tracks (DSE: exactly, devex: approximately)
    /// `‖eᵣᵀ B⁻¹‖²`. All-ones under Dantzig. Weights survive
    /// refactorizations (the basis is unchanged) but reset to the unit
    /// framework whenever the basis is *replaced* (slack reset, snapshot
    /// restore).
    weights: Vec<f64>,
    /// Scratch buffers reused across pivots.
    scratch_rho: Vec<f64>,
    scratch_aq: Vec<f64>,
    scratch_alpha: Vec<f64>,
    scratch_work: Vec<f64>,
    scratch_flip: Vec<f64>,
    /// Scratch for the DSE cross-term FTRAN `τ = B⁻¹ρ`.
    scratch_tau: Vec<f64>,
    /// Scratch for the BTRAN right-hand side of `recompute_reduced_costs`.
    scratch_y: Vec<f64>,
    /// Scratch for the FTRAN right-hand side of `recompute_xb`.
    scratch_bt: Vec<f64>,
    /// BFRT scratch owned between calls so `optimize` is allocation-free
    /// after warm-up: ratio-sorted entering candidates...
    scratch_cand: Vec<(f64, usize)>,
    /// ...and the columns bound-flipped in the current iteration.
    scratch_flips: Vec<usize>,
}

impl Simplex {
    /// Creates a dual-feasible initial state (all-slack basis, structural
    /// variables parked at cost-sign bounds). The basis kernel and its
    /// limits come from `options`. The standard form is cloned so this
    /// state can grow cut rows independently of the shared base.
    pub fn new(sf: &StandardForm, options: &SolverOptions) -> Self {
        let m = sf.m;
        let ncols = sf.n + sf.m;
        // Deterministic tiny cost perturbation: the min–max style models this
        // solver targets are massively dual degenerate, which stalls the
        // dual simplex for thousands of pivots per node. Perturbing each
        // structural cost by ~1e-9 removes the degenerate faces; the exact
        // bound is recovered by subtracting `bound_margin` (the maximum
        // objective shift the perturbation can cause over the box).
        let mut c_pert = sf.c.clone();
        let mut bound_margin = 0.0;
        let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
        for (j, c) in c_pert.iter_mut().enumerate().take(sf.n) {
            let range = sf.ub[j] - sf.lb[j];
            if range.is_finite() && range <= 1e6 {
                // xorshift64* keeps this reproducible without an RNG dep.
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let unit = ((state >> 11) as f64 / (1u64 << 53) as f64) + 0.5; // [0.5, 1.5)
                let delta = 1e-9 * unit;
                *c += delta;
                bound_margin += delta * range;
            }
        }
        let mut stat = vec![Stat::Lower; ncols];
        let mut d = vec![0.0; ncols];
        for j in 0..sf.n {
            d[j] = c_pert[j];
            stat[j] = if c_pert[j] >= 0.0 { Stat::Lower } else { Stat::Upper };
        }
        let mut basis = Vec::with_capacity(m);
        for r in 0..m {
            basis.push(sf.n + r);
            stat[sf.n + r] = Stat::Basic;
        }
        let kernel = Kernel::new(options.basis_kernel, m, options.eta_limit);
        let mut s = Simplex {
            lb: sf.lb.clone(),
            ub: sf.ub.clone(),
            sf: sf.clone(),
            basis,
            stat,
            kernel,
            xb: vec![0.0; m],
            d,
            m,
            ncols,
            pivots_since_refactor: 0,
            refactor_interval: options.refactor_interval.max(8),
            iteration_limit: options.simplex_iteration_limit,
            iterations: 0,
            deadline: None,
            cancel: options.cancel.clone(),
            observer: options.observer.clone(),
            simplex_seconds: 0.0,
            factor_seconds: 0.0,
            refactorizations: 0,
            c_pert,
            bound_margin,
            pricing: options.pricing,
            weights: vec![1.0; m],
            scratch_rho: vec![0.0; m],
            scratch_aq: vec![0.0; m],
            scratch_alpha: vec![0.0; ncols],
            scratch_work: vec![0.0; m],
            scratch_flip: vec![0.0; m],
            scratch_tau: vec![0.0; m],
            scratch_y: vec![0.0; m],
            scratch_bt: vec![0.0; m],
            scratch_cand: Vec::new(),
            scratch_flips: Vec::new(),
        };
        s.recompute_xb();
        s
    }

    #[inline]
    fn nonbasic_value(&self, j: usize) -> f64 {
        match self.stat[j] {
            Stat::Lower => self.lb[j],
            Stat::Upper => self.ub[j],
            Stat::Basic => unreachable!("basic variable has no bound value"),
        }
    }

    /// Internal (perturbed) cost of column `j`.
    #[inline]
    fn pcost(&self, j: usize) -> f64 {
        if j < self.sf.n {
            self.c_pert[j]
        } else {
            0.0
        }
    }

    /// The safe correction to subtract from [`Simplex::objective`] when
    /// using it as a lower bound for the *unperturbed* LP.
    pub fn bound_margin(&self) -> f64 {
        self.bound_margin
    }

    #[inline]
    fn is_fixed(&self, j: usize) -> bool {
        self.ub[j] - self.lb[j] <= ZTOL
    }

    /// Recomputes `xb = B⁻¹ (b − N x_N)` from scratch.
    fn recompute_xb(&mut self) {
        let sf = &self.sf;
        self.scratch_bt.copy_from_slice(&sf.b);
        for j in 0..self.ncols {
            if self.stat[j] != Stat::Basic {
                let v = self.nonbasic_value(j);
                if v != 0.0 {
                    sf.column(j).axpy(-v, &mut self.scratch_bt);
                }
            }
        }
        self.kernel.ftran(&mut self.scratch_bt, &mut self.scratch_work);
        self.xb.copy_from_slice(&self.scratch_bt);
    }

    /// Rebuilds the kernel's basis representation from scratch and
    /// recomputes reduced costs and basic values.
    ///
    /// # Errors
    ///
    /// Returns [`MilpError::SingularBasis`] if the basis cannot be factored;
    /// the caller may fall back to [`Simplex::reset_to_slack_basis`].
    fn refactorize(&mut self) -> Result<()> {
        let t0 = Instant::now();
        let r = self.kernel.refactorize(&self.sf, &self.basis);
        self.factor_seconds += t0.elapsed().as_secs_f64();
        r?;
        self.refactorizations += 1;
        let count = self.refactorizations;
        self.observer.emit(|| SolverEvent::Refactorized { count });
        self.pivots_since_refactor = 0;
        self.recompute_reduced_costs();
        self.recompute_xb();
        Ok(())
    }

    /// Recomputes `d = c − cᵦ B⁻¹ A` from scratch.
    fn recompute_reduced_costs(&mut self) {
        let sf = &self.sf;
        // y solves Bᵀ y = c_B.
        for r in 0..self.m {
            let j = self.basis[r];
            self.scratch_y[r] = if j < sf.n { self.c_pert[j] } else { 0.0 };
        }
        self.kernel.btran(&mut self.scratch_y, &mut self.scratch_work);
        for j in 0..self.ncols {
            if self.stat[j] == Stat::Basic {
                self.d[j] = 0.0;
            } else {
                self.d[j] = self.pcost(j) - sf.column(j).dot(&self.scratch_y);
            }
        }
    }

    /// Resets the pricing reference weights to the unit framework.
    fn reset_weights(&mut self) {
        self.weights.iter_mut().for_each(|w| *w = 1.0);
    }

    /// Captures the current basis and bound statuses for later
    /// [`Simplex::restore_snapshot`].
    pub fn snapshot(&self) -> BasisSnapshot {
        BasisSnapshot { basis: self.basis.clone(), stat: self.stat.clone() }
    }

    /// Installs a previously captured basis: copies the basic set and bound
    /// statuses, refactorizes through the kernel and recomputes reduced
    /// costs and basic values under the *current* bounds (apply bound edits
    /// before calling this). Pricing weights reset to the unit framework —
    /// the snapshot basis is near-optimal for the child node, so the exact
    /// reference is rebuilt within a handful of pivots.
    ///
    /// # Errors
    ///
    /// [`MilpError::SingularBasis`] when the snapshot basis cannot be
    /// factorized. The state is then *inconsistent* (basis arrays updated,
    /// kernel stale) and the caller must immediately
    /// [`Simplex::reset_to_slack_basis`].
    ///
    /// A snapshot captured *before* cut rows were appended (in-tree
    /// separation grows the LP monotonically) is padded: every missing
    /// trailing cut row keeps its own slack basic, giving the block
    /// lower-triangular basis `[[B_snap, 0], [C, I]]`, nonsingular whenever
    /// the snapshot basis is.
    pub fn restore_snapshot(&mut self, snap: &BasisSnapshot) -> Result<()> {
        let snap_m = snap.basis.len();
        let snap_cols = snap.stat.len();
        debug_assert!(snap_m <= self.m, "snapshot from a larger LP");
        debug_assert_eq!(snap_cols - snap_m, self.ncols - self.m, "structural count mismatch");
        self.basis[..snap_m].copy_from_slice(&snap.basis);
        self.stat[..snap_cols].copy_from_slice(&snap.stat);
        for r in snap_m..self.m {
            self.basis[r] = self.sf.n + r;
        }
        for j in snap_cols..self.ncols {
            self.stat[j] = Stat::Basic;
        }
        self.refactorize()?;
        self.make_dual_feasible();
        self.recompute_xb();
        self.reset_weights();
        Ok(())
    }

    /// Discards the basis entirely and restarts from the dual-feasible
    /// all-slack basis. Used as a last-resort numerical recovery.
    pub fn reset_to_slack_basis(&mut self) {
        let m = self.m;
        for j in 0..self.ncols {
            self.stat[j] = if j < self.sf.n {
                if self.c_pert[j] >= 0.0 {
                    Stat::Lower
                } else {
                    Stat::Upper
                }
            } else {
                Stat::Basic
            };
            self.d[j] = self.pcost(j);
        }
        for r in 0..m {
            self.basis[r] = self.sf.n + r;
        }
        self.kernel.reset_identity(m);
        self.pivots_since_refactor = 0;
        self.make_dual_feasible();
        self.recompute_xb();
        // Slack basis ⇒ B = I ⇒ every row norm is exactly 1.
        self.reset_weights();
    }

    /// Flips nonbasic variables whose reduced cost sign disagrees with their
    /// bound status. Keeps the state dual feasible after cost drift.
    fn make_dual_feasible(&mut self) {
        for j in 0..self.ncols {
            if self.stat[j] == Stat::Basic || self.is_fixed(j) {
                continue;
            }
            if self.stat[j] == Stat::Lower && self.d[j] < -DTOL {
                self.stat[j] = Stat::Upper;
            } else if self.stat[j] == Stat::Upper && self.d[j] > DTOL {
                self.stat[j] = Stat::Lower;
            }
        }
    }

    /// Tightens/relaxes the working bounds of column `j` **without**
    /// refreshing basic values; call [`Simplex::refresh`] after a batch of
    /// bound edits and before [`Simplex::optimize`]. Dual feasibility is
    /// preserved automatically.
    pub fn set_bounds(&mut self, j: usize, lb: f64, ub: f64) {
        self.lb[j] = lb;
        self.ub[j] = ub;
        if self.stat[j] != Stat::Basic {
            // Keep the nonbasic value inside the new interval and the bound
            // status consistent with the reduced-cost sign.
            if self.stat[j] == Stat::Lower && self.d[j] < -DTOL && !self.is_fixed(j) {
                self.stat[j] = Stat::Upper;
            } else if self.stat[j] == Stat::Upper && self.d[j] > DTOL && !self.is_fixed(j) {
                self.stat[j] = Stat::Lower;
            }
        }
    }

    /// Recomputes basic values after one or more [`Simplex::set_bounds`]
    /// edits.
    pub fn refresh(&mut self) {
        self.recompute_xb();
    }

    /// Current primal value of column `j`.
    #[allow(dead_code)] // diagnostic accessor, exercised in tests
    pub fn value(&self, j: usize) -> f64 {
        match self.stat[j] {
            Stat::Basic => {
                let r = self.basis.iter().position(|&b| b == j).expect("basic column in basis");
                self.xb[r]
            }
            _ => self.nonbasic_value(j),
        }
    }

    /// Extracts the full primal vector of length `n + m`.
    #[allow(dead_code)] // convenience wrapper over `values_into`, used in tests
    pub fn values(&self) -> Vec<f64> {
        let mut x = Vec::new();
        self.values_into(&mut x);
        x
    }

    /// Writes the full primal vector of length `n + m` into `out`,
    /// clearing and resizing it. Allocation-free once `out` has capacity.
    pub fn values_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.ncols, 0.0);
        for (j, xj) in out.iter_mut().enumerate() {
            if self.stat[j] != Stat::Basic {
                *xj = self.nonbasic_value(j);
            }
        }
        for (r, &j) in self.basis.iter().enumerate() {
            out[j] = self.xb[r];
        }
    }

    /// Internal (minimization) objective of the current point.
    pub fn objective(&self) -> f64 {
        let mut obj = 0.0;
        for j in 0..self.ncols {
            let x = if self.stat[j] == Stat::Basic { continue } else { self.nonbasic_value(j) };
            obj += self.sf.cost(j) * x;
        }
        for (r, &j) in self.basis.iter().enumerate() {
            obj += self.sf.cost(j) * self.xb[r];
        }
        obj
    }

    /// Runs the dual simplex to primal feasibility (= LP optimality, since
    /// dual feasibility is maintained throughout).
    ///
    /// # Errors
    ///
    /// * [`MilpError::IterationLimit`] if the per-LP pivot limit is hit.
    /// * [`MilpError::SingularBasis`] if refactorization fails repeatedly.
    /// * [`MilpError::Interrupted`] if the registered [`CancelToken`] fired.
    pub fn optimize(&mut self) -> Result<LpStatus> {
        let t0 = Instant::now();
        let factor_before = self.factor_seconds;
        let r = self.optimize_inner();
        // Attribute the loop's wall time minus any refactorizations it
        // triggered, so simplex and factorization buckets stay disjoint.
        let factor_delta = self.factor_seconds - factor_before;
        self.simplex_seconds += (t0.elapsed().as_secs_f64() - factor_delta).max(0.0);
        r
    }

    /// [`Simplex::optimize`] under a temporary per-call pivot cap, used by
    /// strong-branching probes: the configured `simplex_iteration_limit` is
    /// swapped for `cap` for this one call and restored on every exit path.
    /// At a cap-induced [`MilpError::IterationLimit`] the state is a
    /// dual-feasible iterate, so [`Simplex::objective`] still reads a valid
    /// dual bound for the probe LP (modulo [`Simplex::bound_margin`]).
    pub(crate) fn optimize_capped(&mut self, cap: usize) -> Result<LpStatus> {
        let saved = self.iteration_limit;
        self.iteration_limit = cap;
        let r = self.optimize();
        self.iteration_limit = saved;
        r
    }

    fn optimize_inner(&mut self) -> Result<LpStatus> {
        // Detach the BFRT scratch so the loop can sort and iterate it while
        // reading other fields of `self`; reattached on every exit path.
        let mut cand = std::mem::take(&mut self.scratch_cand);
        let mut flips = std::mem::take(&mut self.scratch_flips);
        let r = self.optimize_loop(&mut cand, &mut flips);
        self.scratch_cand = cand;
        self.scratch_flips = flips;
        r
    }

    fn optimize_loop(
        &mut self,
        cand: &mut Vec<(f64, usize)>,
        flips: &mut Vec<usize>,
    ) -> Result<LpStatus> {
        let mut degenerate_run: u32 = 0;
        let mut local_iters: usize = 0;
        // After this many pivots without finishing, switch to Bland's rule
        // permanently: slow but guaranteed to terminate.
        let stall_limit = (4 * self.m).max(2_000);
        loop {
            if local_iters >= self.iteration_limit {
                return Err(MilpError::IterationLimit { limit: self.iteration_limit });
            }
            if local_iters.is_multiple_of(128) {
                if self.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
                    return Err(MilpError::Interrupted);
                }
                if let Some(deadline) = self.deadline {
                    if Instant::now() >= deadline {
                        return Err(MilpError::IterationLimit { limit: local_iters });
                    }
                }
            }
            // --- Leaving variable: best pricing score among violated rows.
            // Dantzig scores by raw violation; steepest-edge/devex by
            // violation²/weight, the dual-step-length measure that actually
            // ranks progress per pivot (Forrest–Goldfarb). ---
            let dantzig = self.pricing == Pricing::Dantzig;
            let mut r_best = usize::MAX;
            let mut score_best = 0.0;
            let mut below = false;
            for r in 0..self.m {
                let j = self.basis[r];
                let x = self.xb[r];
                let tol_lo = PTOL * (1.0 + self.lb[j].abs());
                let tol_hi = PTOL * (1.0 + self.ub[j].abs());
                let (v, is_below) = if x < self.lb[j] - tol_lo {
                    (self.lb[j] - x, true)
                } else if x > self.ub[j] + tol_hi {
                    (x - self.ub[j], false)
                } else {
                    continue;
                };
                let score = if dantzig { v } else { v * v / self.weights[r].max(WEIGHT_FLOOR) };
                if score > score_best {
                    score_best = score;
                    r_best = r;
                    below = is_below;
                }
            }
            if r_best == usize::MAX {
                return Ok(LpStatus::Optimal);
            }
            let r = r_best;
            let p = self.basis[r];
            let sigma = if below { -1.0 } else { 1.0 };

            // --- rho = row r of B⁻¹; alpha~_j = σ · rho·A_j. ---
            self.kernel.unit_row(r, &mut self.scratch_rho, &mut self.scratch_work);
            // Scatter pricing: iterate the nonzeros of rho and push each
            // through its (sparse) constraint row, instead of dotting every
            // column against a dense rho.
            self.scratch_alpha.iter_mut().for_each(|v| *v = 0.0);
            for (i, &ri) in self.scratch_rho.iter().enumerate() {
                if ri == 0.0 {
                    continue;
                }
                let s = sigma * ri;
                for &(j, v) in self.sf.row(i) {
                    self.scratch_alpha[j] += s * v;
                }
                self.scratch_alpha[self.sf.n + i] += s;
            }
            let bland = degenerate_run > DEGEN_LIMIT || local_iters > stall_limit;
            let target = if below { self.lb[p] } else { self.ub[p] };
            let mut q = usize::MAX;
            let mut best_ratio = f64::INFINITY;
            flips.clear();
            if bland {
                // Bland mode: smallest index among minimal ratios, no
                // flipping — the configuration with the termination proof.
                for j in 0..self.ncols {
                    if self.stat[j] == Stat::Basic || self.is_fixed(j) {
                        continue;
                    }
                    let a = self.scratch_alpha[j];
                    let eligible = match self.stat[j] {
                        Stat::Lower => a > ZTOL,
                        Stat::Upper => a < -ZTOL,
                        Stat::Basic => false,
                    };
                    if !eligible {
                        continue;
                    }
                    let ratio = (self.d[j] / a).max(0.0);
                    if ratio < best_ratio - 1e-12 || (ratio < best_ratio + 1e-12 && j < q) {
                        best_ratio = ratio;
                        q = j;
                    }
                }
            } else {
                // Bound-flip ratio test (BFRT): walk the eligible columns
                // in dual-ratio order. A candidate whose entire range
                // cannot absorb the remaining violation of row r is
                // *flipped* to its opposite bound (no basis change, one
                // candidate's worth of violation retired); the first
                // candidate that can absorb the rest becomes the pivot.
                // The eventual θ-update with the pivot's ratio — which
                // dominates every flipped ratio — pushes each flipped
                // column's reduced cost across zero, exactly the sign its
                // new bound status requires, so dual feasibility survives.
                cand.clear();
                for j in 0..self.ncols {
                    if self.stat[j] == Stat::Basic || self.is_fixed(j) {
                        continue;
                    }
                    let a = self.scratch_alpha[j];
                    let eligible = match self.stat[j] {
                        Stat::Lower => a > ZTOL,
                        Stat::Upper => a < -ZTOL,
                        Stat::Basic => false,
                    };
                    if eligible {
                        cand.push(((self.d[j] / a).max(0.0), j));
                    }
                }
                // Ratio ascending; ties toward larger |pivot| for
                // stability, then smaller index for determinism.
                cand.sort_unstable_by(|&(ra, ja), &(rb, jb)| {
                    ra.partial_cmp(&rb)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| {
                            self.scratch_alpha[jb]
                                .abs()
                                .partial_cmp(&self.scratch_alpha[ja].abs())
                                .unwrap_or(std::cmp::Ordering::Equal)
                        })
                        .then_with(|| ja.cmp(&jb))
                });
                // Remaining violation of row r, positive in the σ frame
                // (each flip of candidate j retires |alpha_j|·range_j).
                let mut v = sigma * (self.xb[r] - target);
                for &(ratio, j) in cand.iter() {
                    let absorb = self.scratch_alpha[j].abs() * (self.ub[j] - self.lb[j]);
                    if v > absorb + PTOL {
                        flips.push(j);
                        v -= absorb;
                    } else {
                        q = j;
                        best_ratio = ratio;
                        break;
                    }
                }
            }
            if q == usize::MAX {
                // No pivot candidate (or, in BFRT, flipping every eligible
                // column still cannot repair row r): primal infeasible
                // under the current bounds. Nothing has been mutated.
                return Ok(LpStatus::Infeasible);
            }

            let m = self.m;
            // --- Apply the recorded flips: statuses, then one FTRAN of the
            // accumulated bound-shift to update the basic values. ---
            if !flips.is_empty() {
                self.scratch_flip.iter_mut().for_each(|x| *x = 0.0);
                for &j in flips.iter() {
                    let (delta, flipped) = match self.stat[j] {
                        Stat::Lower => (self.ub[j] - self.lb[j], Stat::Upper),
                        Stat::Upper => (self.lb[j] - self.ub[j], Stat::Lower),
                        Stat::Basic => unreachable!("flip candidates are nonbasic"),
                    };
                    self.stat[j] = flipped;
                    self.sf.column(j).axpy(delta, &mut self.scratch_flip);
                }
                self.kernel.ftran(&mut self.scratch_flip, &mut self.scratch_work);
                for i in 0..m {
                    self.xb[i] -= self.scratch_flip[i];
                }
            }

            // --- FTRAN: aq = B⁻¹ A_q. ---
            self.kernel.ftran_col(&self.sf, q, &mut self.scratch_aq, &mut self.scratch_work);
            let alpha_q_true = self.scratch_aq[r];
            if alpha_q_true.abs() < ZTOL {
                // The alpha row disagrees with the FTRAN column: numerical
                // drift. Refactorize and retry the whole iteration. (Any
                // flips just applied carry stale reduced-cost signs; the
                // `make_dual_feasible` pass below reconciles status with
                // the freshly recomputed reduced costs.)
                self.refactorize()?;
                self.make_dual_feasible();
                self.recompute_xb();
                local_iters += 1;
                continue;
            }

            // --- Pivot step length (post-flip, so |t| ≤ range of q). ---
            let t = (self.xb[r] - target) / alpha_q_true;
            let theta = best_ratio; // d_q / alpha~_q, ≥ 0.
            if theta <= 1e-12 && t.abs() <= 1e-12 {
                degenerate_run += 1;
            } else {
                degenerate_run = 0;
            }

            // Reduced costs: d_j ← d_j − θ·alpha~_j; d_p = −σθ; d_q = 0.
            // (Fixed columns keep consistent d for later bound relaxations
            // during branch backtracking; their alpha is already exact.)
            if theta != 0.0 {
                for j in 0..self.ncols {
                    if self.stat[j] != Stat::Basic {
                        self.d[j] -= theta * self.scratch_alpha[j];
                    }
                }
            }
            self.d[p] = -sigma * theta;
            self.d[q] = 0.0;

            // Basic values: x_B ← x_B − t·aq, entering takes row r.
            let x_q_new = self.nonbasic_value(q) + t;
            for i in 0..m {
                if i != r {
                    self.xb[i] -= t * self.scratch_aq[i];
                }
            }
            self.xb[r] = x_q_new;

            // Pricing weights for the next iteration, while the kernel
            // still represents the outgoing basis.
            self.update_weights(r, alpha_q_true);

            // Kernel update for the exchange at (r, q).
            let force_refactor = self.kernel.update(r, &self.scratch_aq);

            self.basis[r] = q;
            self.stat[q] = Stat::Basic;
            self.stat[p] = if below { Stat::Lower } else { Stat::Upper };

            self.iterations += 1;
            local_iters += 1;
            self.pivots_since_refactor += 1;
            if force_refactor || self.pivots_since_refactor >= self.refactor_interval {
                match self.refactorize() {
                    Ok(()) => {
                        self.make_dual_feasible();
                        self.recompute_xb();
                    }
                    Err(_) => {
                        self.reset_to_slack_basis();
                    }
                }
            }
        }
    }

    /// Updates the row pricing weights for the exchange at row `r` with
    /// pivot element `alpha_r`, using the FTRAN'd entering column in
    /// `scratch_aq` and (for DSE) the BTRAN row in `scratch_rho`. Must run
    /// *before* the kernel records the exchange: the DSE cross term needs
    /// `τ = B⁻¹ρ` in the outgoing basis.
    fn update_weights(&mut self, r: usize, alpha_r: f64) {
        let inv = 1.0 / alpha_r;
        match self.pricing {
            Pricing::Dantzig => {}
            Pricing::Devex => {
                // Approximate reference update (dual devex): weights only
                // ever grow toward the true row norms — no extra FTRAN, at
                // the cost of a periodic framework reset.
                let wr = self.weights[r].max(1.0);
                let mut wmax = 0.0_f64;
                for i in 0..self.m {
                    if i == r {
                        continue;
                    }
                    let kappa = self.scratch_aq[i] * inv;
                    if kappa != 0.0 {
                        let grow = kappa * kappa * wr;
                        if grow > self.weights[i] {
                            self.weights[i] = grow;
                        }
                    }
                    wmax = wmax.max(self.weights[i]);
                }
                self.weights[r] = (wr * inv * inv).max(1.0);
                if wmax.max(self.weights[r]) > DEVEX_RESET {
                    self.reset_weights();
                }
            }
            Pricing::SteepestEdge => {
                // Exact Forrest–Goldfarb. The leaving row's true squared
                // norm is recomputed from the BTRAN row already at hand
                // (self-correcting against drift); the cross term costs one
                // extra FTRAN per pivot.
                let wr = self.scratch_rho.iter().map(|&x| x * x).sum::<f64>().max(WEIGHT_FLOOR);
                self.scratch_tau.copy_from_slice(&self.scratch_rho);
                self.kernel.ftran(&mut self.scratch_tau, &mut self.scratch_work);
                for i in 0..self.m {
                    if i == r {
                        continue;
                    }
                    let kappa = self.scratch_aq[i] * inv;
                    if kappa != 0.0 {
                        let w = self.weights[i] - 2.0 * kappa * self.scratch_tau[i]
                            + kappa * kappa * wr;
                        self.weights[i] = w.max(WEIGHT_FLOOR);
                    }
                }
                self.weights[r] = (wr * inv * inv).max(WEIGHT_FLOOR);
            }
        }
    }

    /// The standard form this state currently solves (base rows plus any
    /// appended cut rows).
    #[inline]
    pub fn form(&self) -> &StandardForm {
        &self.sf
    }

    /// Current row count (grows as cut rows are appended).
    #[inline]
    pub fn nrows(&self) -> usize {
        self.m
    }

    /// Current column count `n + m`.
    #[inline]
    pub fn num_cols(&self) -> usize {
        self.ncols
    }

    /// The column basic in row `r`.
    #[inline]
    pub fn basis_col(&self, r: usize) -> usize {
        self.basis[r]
    }

    /// The value of the variable basic in row `r`.
    #[inline]
    pub fn basic_value(&self, r: usize) -> f64 {
        self.xb[r]
    }

    /// The bound status of column `j`.
    #[inline]
    pub fn col_stat(&self, j: usize) -> Stat {
        self.stat[j]
    }

    /// Extracts tableau row `r` — `α = eᵣᵀ B⁻¹ A` over all `n + m` columns —
    /// into `alpha` (cleared and resized). This is the Gomory read-off path:
    /// one BTRAN for `ρ = eᵣᵀB⁻¹`, then a scatter of ρ's nonzeros through
    /// the sparse rows, exactly like pricing does.
    pub fn tableau_row_into(&mut self, r: usize, alpha: &mut Vec<f64>) {
        alpha.clear();
        alpha.resize(self.ncols, 0.0);
        self.kernel.unit_row(r, &mut self.scratch_rho, &mut self.scratch_work);
        for (i, &ri) in self.scratch_rho.iter().enumerate() {
            if ri == 0.0 {
                continue;
            }
            for &(j, v) in self.sf.row(i) {
                alpha[j] += ri * v;
            }
            alpha[self.sf.n + i] += ri;
        }
    }

    /// Appends `cuts` as new rows of the live LP. Each cut's slack joins the
    /// basis (the extended basis `[[B, 0], [C, I]]` is nonsingular whenever
    /// the current one is), so the following [`Simplex::optimize`] call
    /// re-optimizes *warm* with the dual simplex instead of cold-starting —
    /// the classic cutting-plane recipe riding the PR 4 refactorize path.
    ///
    /// # Errors
    ///
    /// [`MilpError::SingularBasis`] when the extended basis cannot be
    /// refactorized (numerically, not structurally, singular). The caller
    /// should treat the state as unusable and rebuild.
    pub fn append_cut_rows(&mut self, cuts: &[crate::cuts::Cut]) -> Result<()> {
        if cuts.is_empty() {
            return Ok(());
        }
        let big = self.sf.big;
        for cut in cuts {
            let row = self.sf.m;
            let (sl, su) = match cut.sense {
                crate::cuts::CutSense::Le => (0.0, big),
                crate::cuts::CutSense::Ge => (-big, 0.0),
            };
            self.sf.add_cut_row(&cut.coeffs, cut.rhs, sl, su);
            // The new slack lands at column index `old ncols`; existing
            // column and row indices keep their meaning.
            self.lb.push(sl);
            self.ub.push(su);
            self.stat.push(Stat::Basic);
            self.basis.push(self.sf.n + row);
            self.d.push(0.0);
            self.xb.push(0.0);
            self.m += 1;
            self.ncols += 1;
        }
        self.weights.resize(self.m, 1.0);
        self.scratch_rho.resize(self.m, 0.0);
        self.scratch_aq.resize(self.m, 0.0);
        self.scratch_work.resize(self.m, 0.0);
        self.scratch_flip.resize(self.m, 0.0);
        self.scratch_tau.resize(self.m, 0.0);
        self.scratch_y.resize(self.m, 0.0);
        self.scratch_bt.resize(self.m, 0.0);
        self.scratch_alpha.resize(self.ncols, 0.0);
        self.refactorize()?;
        self.make_dual_feasible();
        self.recompute_xb();
        self.reset_weights();
        Ok(())
    }

    /// Maximum primal bound violation over basic variables (diagnostics).
    #[allow(dead_code)] // diagnostic accessor, exercised in tests
    pub fn primal_infeasibility(&self) -> f64 {
        let mut worst = 0.0_f64;
        for r in 0..self.m {
            let j = self.basis[r];
            let x = self.xb[r];
            worst = worst.max(self.lb[j] - x).max(x - self.ub[j]);
        }
        worst.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;
    use crate::{LinExpr, Objective};

    /// A small LP whose optimum moves several structurals into the basis.
    fn sf_fixture() -> StandardForm {
        let mut m = Model::new("snap");
        let xs: Vec<_> = (0..4).map(|i| m.continuous(format!("x{i}"), 0.0, 4.0).unwrap()).collect();
        m.add_ge("r0", LinExpr::term(xs[0], 1.0) + LinExpr::term(xs[1], 1.0), 3.0);
        m.add_ge("r1", LinExpr::term(xs[1], 2.0) + LinExpr::term(xs[2], 1.0), 4.0);
        m.add_le("r2", LinExpr::term(xs[0], 1.0) + LinExpr::term(xs[3], 2.0), 5.0);
        let mut obj = LinExpr::new();
        for (i, &x) in xs.iter().enumerate() {
            obj.add_term(x, 1.0 + i as f64);
        }
        m.set_objective(Objective::Minimize, obj);
        StandardForm::from_model(&m, &SolverOptions::default())
    }

    #[test]
    fn snapshot_restore_recovers_the_optimal_basis() {
        let sf = sf_fixture();
        let opts = SolverOptions::default();
        let mut s = Simplex::new(&sf, &opts);
        assert_eq!(s.optimize().unwrap(), LpStatus::Optimal);
        let obj = s.objective();
        let snap = s.snapshot();
        // Drift the basis away from the snapshot with a tighter bound.
        s.set_bounds(1, 2.0, 4.0);
        s.refresh();
        assert_eq!(s.optimize().unwrap(), LpStatus::Optimal);
        // Back to the original box, restore, and re-optimize: the restored
        // basis is already optimal, so no pivots are needed.
        s.set_bounds(1, 0.0, 4.0);
        let before = s.iterations;
        s.restore_snapshot(&snap).unwrap();
        assert_eq!(s.optimize().unwrap(), LpStatus::Optimal);
        assert_eq!(s.iterations, before, "restored optimal basis must re-optimize pivot-free");
        assert!((s.objective() - obj).abs() < 1e-9, "{} vs {obj}", s.objective());
    }

    #[test]
    fn corrupt_snapshot_restore_reports_singular_basis() {
        let sf = sf_fixture();
        let opts = SolverOptions::default();
        let mut s = Simplex::new(&sf, &opts);
        assert_eq!(s.optimize().unwrap(), LpStatus::Optimal);
        let obj = s.objective();
        let mut snap = s.snapshot();
        // Duplicate a basic column: the basis matrix is singular.
        snap.basis[1] = snap.basis[0];
        assert!(matches!(s.restore_snapshot(&snap), Err(MilpError::SingularBasis)));
        // The documented recovery: a slack reset returns a usable state
        // that still reaches the optimum.
        s.reset_to_slack_basis();
        assert_eq!(s.optimize().unwrap(), LpStatus::Optimal);
        assert!((s.objective() - obj).abs() < 1e-9);
    }

    #[test]
    fn dense_kernel_rejects_corrupt_snapshot_too() {
        let sf = sf_fixture();
        let opts = SolverOptions::default().basis_kernel(BasisKernel::Dense);
        let mut s = Simplex::new(&sf, &opts);
        assert_eq!(s.optimize().unwrap(), LpStatus::Optimal);
        let mut snap = s.snapshot();
        snap.basis[2] = snap.basis[0];
        assert!(matches!(s.restore_snapshot(&snap), Err(MilpError::SingularBasis)));
    }

    #[test]
    fn appended_cut_row_is_absorbed_warm_and_respected() {
        let sf = sf_fixture();
        for kernel in [BasisKernel::SparseLu, BasisKernel::Dense] {
            let opts = SolverOptions::default().basis_kernel(kernel);
            let mut s = Simplex::new(&sf, &opts);
            assert_eq!(s.optimize().unwrap(), LpStatus::Optimal);
            let obj0 = s.objective();
            // A valid-but-violated cut: x0 + x1 ≥ 3.5 (the r0 row demands
            // only 3.0, and the optimum sits on it).
            let cut = crate::cuts::Cut {
                coeffs: vec![(0, 1.0), (1, 1.0)],
                rhs: 3.5,
                sense: crate::cuts::CutSense::Ge,
                family: crate::cuts::CutFamily::Cover,
                validity: crate::cuts::CutValidity::Global,
            };
            s.append_cut_rows(std::slice::from_ref(&cut)).unwrap();
            assert_eq!(s.optimize().unwrap(), LpStatus::Optimal);
            let x = s.values();
            assert!(x[0] + x[1] >= 3.5 - 1e-6, "cut violated: {} + {}", x[0], x[1]);
            assert!(s.objective() >= obj0 - 1e-9, "cut must not improve the LP");
            // A pre-cut snapshot restores via monotone padding.
            let mut s2 = Simplex::new(&sf, &opts);
            assert_eq!(s2.optimize().unwrap(), LpStatus::Optimal);
            let old_snap = s2.snapshot();
            s2.append_cut_rows(std::slice::from_ref(&cut)).unwrap();
            assert_eq!(s2.optimize().unwrap(), LpStatus::Optimal);
            s2.restore_snapshot(&old_snap).unwrap();
            assert_eq!(s2.optimize().unwrap(), LpStatus::Optimal);
            let x2 = s2.values();
            assert!(x2[0] + x2[1] >= 3.5 - 1e-6, "padded restore kept the cut row");
        }
    }

    #[test]
    fn pricing_weights_stay_floored_and_reset_on_basis_replacement() {
        let sf = sf_fixture();
        for pricing in [Pricing::SteepestEdge, Pricing::Devex] {
            let opts = SolverOptions { pricing, ..SolverOptions::default() };
            let mut s = Simplex::new(&sf, &opts);
            assert_eq!(s.optimize().unwrap(), LpStatus::Optimal);
            assert!(s.iterations > 0, "fixture must pivot");
            for &w in &s.weights {
                assert!(w >= WEIGHT_FLOOR && w.is_finite(), "weight {w} out of range");
            }
            s.reset_to_slack_basis();
            assert!(s.weights.iter().all(|&w| w == 1.0), "reset must restore unit weights");
        }
    }
}
