//! Bounded-variable dual simplex with a dense basis inverse.
//!
//! The solver works exclusively with the *dual* simplex method:
//!
//! * The all-slack starting basis is made dual feasible by parking every
//!   structural variable at the bound matching its cost sign (possible
//!   because [`StandardForm`] clamps all bounds to finite values).
//! * Branch-and-bound only changes variable *bounds*, which never disturbs
//!   dual feasibility of the current basis, so every node after the root is
//!   warm-started from the parent's basis and usually re-optimizes in a
//!   handful of pivots.
//!
//! Anti-cycling: after a run of degenerate pivots the pricing switches to a
//! Bland-like smallest-index rule, which guarantees termination.

use crate::error::{MilpError, Result};
use crate::standard::StandardForm;
use std::time::Instant;

/// Primal feasibility tolerance (absolute, plus relative to bound size).
const PTOL: f64 = 1e-7;
/// Dual feasibility / reduced cost tolerance.
const DTOL: f64 = 1e-7;
/// Pivot element magnitude floor.
const ZTOL: f64 = 1e-9;
/// Degenerate pivots tolerated before switching to Bland's rule.
const DEGEN_LIMIT: u32 = 200;

/// Status of a single LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LpStatus {
    /// Primal and dual feasible: LP optimum reached.
    Optimal,
    /// Dual unbounded ⇒ primal infeasible under current bounds.
    Infeasible,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stat {
    Basic,
    Lower,
    Upper,
}

/// Re-optimizable bounded-variable dual simplex over a fixed constraint
/// matrix with mutable bounds.
#[derive(Debug, Clone)]
pub(crate) struct Simplex<'a> {
    sf: &'a StandardForm,
    /// Working bounds, mutated by branch and bound. Length `n + m`.
    pub lb: Vec<f64>,
    pub ub: Vec<f64>,
    basis: Vec<usize>,
    stat: Vec<Stat>,
    /// Dense row-major `m × m` basis inverse.
    binv: Vec<f64>,
    /// Values of basic variables by row.
    xb: Vec<f64>,
    /// Reduced costs for all columns (basic entries are ~0).
    d: Vec<f64>,
    m: usize,
    ncols: usize,
    pivots_since_refactor: usize,
    refactor_interval: usize,
    iteration_limit: usize,
    /// Total pivots performed over the lifetime of this state.
    pub iterations: u64,
    /// Wall-clock deadline checked periodically inside [`Simplex::optimize`].
    pub deadline: Option<Instant>,
    /// Perturbed structural costs used internally to break dual degeneracy
    /// (length `n`); slacks stay at zero cost.
    c_pert: Vec<f64>,
    /// Safe bound correction: `true_optimum ≥ objective() − bound_margin`.
    bound_margin: f64,
    /// Scratch buffers reused across pivots.
    scratch_rho: Vec<f64>,
    scratch_aq: Vec<f64>,
    scratch_alpha: Vec<f64>,
}

impl<'a> Simplex<'a> {
    /// Creates a dual-feasible initial state (all-slack basis, structural
    /// variables parked at cost-sign bounds).
    pub fn new(sf: &'a StandardForm, refactor_interval: usize, iteration_limit: usize) -> Self {
        let m = sf.m;
        let ncols = sf.n + sf.m;
        // Deterministic tiny cost perturbation: the min–max style models this
        // solver targets are massively dual degenerate, which stalls the
        // dual simplex for thousands of pivots per node. Perturbing each
        // structural cost by ~1e-9 removes the degenerate faces; the exact
        // bound is recovered by subtracting `bound_margin` (the maximum
        // objective shift the perturbation can cause over the box).
        let mut c_pert = sf.c.clone();
        let mut bound_margin = 0.0;
        let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
        for (j, c) in c_pert.iter_mut().enumerate().take(sf.n) {
            let range = sf.ub[j] - sf.lb[j];
            if range.is_finite() && range <= 1e6 {
                // xorshift64* keeps this reproducible without an RNG dep.
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let unit = ((state >> 11) as f64 / (1u64 << 53) as f64) + 0.5; // [0.5, 1.5)
                let delta = 1e-9 * unit;
                *c += delta;
                bound_margin += delta * range;
            }
        }
        let mut stat = vec![Stat::Lower; ncols];
        let mut d = vec![0.0; ncols];
        for j in 0..sf.n {
            d[j] = c_pert[j];
            stat[j] = if c_pert[j] >= 0.0 { Stat::Lower } else { Stat::Upper };
        }
        let mut basis = Vec::with_capacity(m);
        for r in 0..m {
            basis.push(sf.n + r);
            stat[sf.n + r] = Stat::Basic;
        }
        let mut binv = vec![0.0; m * m];
        for r in 0..m {
            binv[r * m + r] = 1.0;
        }
        let mut s = Simplex {
            lb: sf.lb.clone(),
            ub: sf.ub.clone(),
            sf,
            basis,
            stat,
            binv,
            xb: vec![0.0; m],
            d,
            m,
            ncols,
            pivots_since_refactor: 0,
            refactor_interval: refactor_interval.max(8),
            iteration_limit,
            iterations: 0,
            deadline: None,
            c_pert,
            bound_margin,
            scratch_rho: vec![0.0; m],
            scratch_aq: vec![0.0; m],
            scratch_alpha: vec![0.0; ncols],
        };
        s.recompute_xb();
        s
    }

    #[inline]
    fn nonbasic_value(&self, j: usize) -> f64 {
        match self.stat[j] {
            Stat::Lower => self.lb[j],
            Stat::Upper => self.ub[j],
            Stat::Basic => unreachable!("basic variable has no bound value"),
        }
    }

    /// Internal (perturbed) cost of column `j`.
    #[inline]
    fn pcost(&self, j: usize) -> f64 {
        if j < self.sf.n {
            self.c_pert[j]
        } else {
            0.0
        }
    }

    /// The safe correction to subtract from [`Simplex::objective`] when
    /// using it as a lower bound for the *unperturbed* LP.
    pub fn bound_margin(&self) -> f64 {
        self.bound_margin
    }

    #[inline]
    fn is_fixed(&self, j: usize) -> bool {
        self.ub[j] - self.lb[j] <= ZTOL
    }

    /// Recomputes `xb = B⁻¹ (b − N x_N)` from scratch.
    fn recompute_xb(&mut self) {
        let m = self.m;
        let mut bt = self.sf.b.clone();
        for j in 0..self.ncols {
            if self.stat[j] != Stat::Basic {
                let v = self.nonbasic_value(j);
                if v != 0.0 {
                    self.sf.column(j).axpy(-v, &mut bt);
                }
            }
        }
        for i in 0..m {
            let row = &self.binv[i * m..(i + 1) * m];
            self.xb[i] = row.iter().zip(&bt).map(|(a, b)| a * b).sum();
        }
    }

    /// Rebuilds `binv` by Gauss-Jordan inversion of the current basis matrix
    /// and recomputes reduced costs and basic values.
    ///
    /// # Errors
    ///
    /// Returns [`MilpError::SingularBasis`] if the basis cannot be inverted;
    /// the caller may fall back to [`Simplex::reset_to_slack_basis`].
    fn refactorize(&mut self) -> Result<()> {
        let m = self.m;
        // Build dense B column by column.
        let mut bmat = vec![0.0; m * m];
        for (r, &j) in self.basis.iter().enumerate() {
            match self.sf.column(j) {
                crate::standard::ColumnRef::Structural(nz) => {
                    for &(row, v) in nz {
                        bmat[row * m + r] = v;
                    }
                }
                crate::standard::ColumnRef::Slack(row) => bmat[row * m + r] = 1.0,
            }
        }
        // Gauss-Jordan with partial pivoting on the augmented [B | I].
        let mut inv = vec![0.0; m * m];
        for r in 0..m {
            inv[r * m + r] = 1.0;
        }
        for col in 0..m {
            let mut piv_row = col;
            let mut piv_val = bmat[col * m + col].abs();
            for r in (col + 1)..m {
                let v = bmat[r * m + col].abs();
                if v > piv_val {
                    piv_val = v;
                    piv_row = r;
                }
            }
            if piv_val < 1e-11 {
                return Err(MilpError::SingularBasis);
            }
            if piv_row != col {
                for k in 0..m {
                    bmat.swap(piv_row * m + k, col * m + k);
                    inv.swap(piv_row * m + k, col * m + k);
                }
            }
            let piv = bmat[col * m + col];
            let inv_piv = 1.0 / piv;
            for k in 0..m {
                bmat[col * m + k] *= inv_piv;
                inv[col * m + k] *= inv_piv;
            }
            for r in 0..m {
                if r != col {
                    let f = bmat[r * m + col];
                    if f != 0.0 {
                        for k in 0..m {
                            bmat[r * m + k] -= f * bmat[col * m + k];
                            inv[r * m + k] -= f * inv[col * m + k];
                        }
                    }
                }
            }
        }
        self.binv = inv;
        self.pivots_since_refactor = 0;
        self.recompute_reduced_costs();
        self.recompute_xb();
        Ok(())
    }

    /// Recomputes `d = c − cᵦ B⁻¹ A` from scratch.
    fn recompute_reduced_costs(&mut self) {
        let m = self.m;
        // y = cB' * binv  (row vector)
        let mut y = vec![0.0; m];
        for (r, &j) in self.basis.iter().enumerate() {
            let cj = self.pcost(j);
            if cj != 0.0 {
                for (yk, &b) in y.iter_mut().zip(&self.binv[r * m..(r + 1) * m]) {
                    *yk += cj * b;
                }
            }
        }
        for j in 0..self.ncols {
            if self.stat[j] == Stat::Basic {
                self.d[j] = 0.0;
            } else {
                self.d[j] = self.pcost(j) - self.sf.column(j).dot(&y);
            }
        }
    }

    /// Discards the basis entirely and restarts from the dual-feasible
    /// all-slack basis. Used as a last-resort numerical recovery.
    pub fn reset_to_slack_basis(&mut self) {
        let m = self.m;
        for j in 0..self.ncols {
            self.stat[j] = if j < self.sf.n {
                if self.c_pert[j] >= 0.0 {
                    Stat::Lower
                } else {
                    Stat::Upper
                }
            } else {
                Stat::Basic
            };
            self.d[j] = self.pcost(j);
        }
        for r in 0..m {
            self.basis[r] = self.sf.n + r;
        }
        self.binv.iter_mut().for_each(|v| *v = 0.0);
        for r in 0..m {
            self.binv[r * m + r] = 1.0;
        }
        self.pivots_since_refactor = 0;
        self.make_dual_feasible();
        self.recompute_xb();
    }

    /// Flips nonbasic variables whose reduced cost sign disagrees with their
    /// bound status. Keeps the state dual feasible after cost drift.
    fn make_dual_feasible(&mut self) {
        for j in 0..self.ncols {
            if self.stat[j] == Stat::Basic || self.is_fixed(j) {
                continue;
            }
            if self.stat[j] == Stat::Lower && self.d[j] < -DTOL {
                self.stat[j] = Stat::Upper;
            } else if self.stat[j] == Stat::Upper && self.d[j] > DTOL {
                self.stat[j] = Stat::Lower;
            }
        }
    }

    /// Tightens/relaxes the working bounds of column `j` **without**
    /// refreshing basic values; call [`Simplex::refresh`] after a batch of
    /// bound edits and before [`Simplex::optimize`]. Dual feasibility is
    /// preserved automatically.
    pub fn set_bounds(&mut self, j: usize, lb: f64, ub: f64) {
        self.lb[j] = lb;
        self.ub[j] = ub;
        if self.stat[j] != Stat::Basic {
            // Keep the nonbasic value inside the new interval and the bound
            // status consistent with the reduced-cost sign.
            if self.stat[j] == Stat::Lower && self.d[j] < -DTOL && !self.is_fixed(j) {
                self.stat[j] = Stat::Upper;
            } else if self.stat[j] == Stat::Upper && self.d[j] > DTOL && !self.is_fixed(j) {
                self.stat[j] = Stat::Lower;
            }
        }
    }

    /// Recomputes basic values after one or more [`Simplex::set_bounds`]
    /// edits.
    pub fn refresh(&mut self) {
        self.recompute_xb();
    }

    /// Current primal value of column `j`.
    #[allow(dead_code)] // diagnostic accessor, exercised in tests
    pub fn value(&self, j: usize) -> f64 {
        match self.stat[j] {
            Stat::Basic => {
                let r = self.basis.iter().position(|&b| b == j).expect("basic column in basis");
                self.xb[r]
            }
            _ => self.nonbasic_value(j),
        }
    }

    /// Extracts the full primal vector of length `n + m`.
    pub fn values(&self) -> Vec<f64> {
        let mut x = vec![0.0; self.ncols];
        for (j, xj) in x.iter_mut().enumerate() {
            if self.stat[j] != Stat::Basic {
                *xj = self.nonbasic_value(j);
            }
        }
        for (r, &j) in self.basis.iter().enumerate() {
            x[j] = self.xb[r];
        }
        x
    }

    /// Internal (minimization) objective of the current point.
    pub fn objective(&self) -> f64 {
        let mut obj = 0.0;
        for j in 0..self.ncols {
            let x = if self.stat[j] == Stat::Basic { continue } else { self.nonbasic_value(j) };
            obj += self.sf.cost(j) * x;
        }
        for (r, &j) in self.basis.iter().enumerate() {
            obj += self.sf.cost(j) * self.xb[r];
        }
        obj
    }

    /// Runs the dual simplex to primal feasibility (= LP optimality, since
    /// dual feasibility is maintained throughout).
    ///
    /// # Errors
    ///
    /// * [`MilpError::IterationLimit`] if the per-LP pivot limit is hit.
    /// * [`MilpError::SingularBasis`] if refactorization fails repeatedly.
    pub fn optimize(&mut self) -> Result<LpStatus> {
        let mut degenerate_run: u32 = 0;
        let mut local_iters: usize = 0;
        // After this many pivots without finishing, switch to Bland's rule
        // permanently: slow but guaranteed to terminate.
        let stall_limit = (4 * self.m).max(2_000);
        loop {
            if local_iters >= self.iteration_limit {
                return Err(MilpError::IterationLimit { limit: self.iteration_limit });
            }
            if local_iters.is_multiple_of(128) {
                if let Some(deadline) = self.deadline {
                    if Instant::now() >= deadline {
                        return Err(MilpError::IterationLimit { limit: local_iters });
                    }
                }
            }
            // --- Leaving variable: most violated basic value. ---
            let mut r_best = usize::MAX;
            let mut viol_best = 0.0;
            let mut below = false;
            for r in 0..self.m {
                let j = self.basis[r];
                let x = self.xb[r];
                let tol_lo = PTOL * (1.0 + self.lb[j].abs());
                let tol_hi = PTOL * (1.0 + self.ub[j].abs());
                if x < self.lb[j] - tol_lo {
                    let v = self.lb[j] - x;
                    if v > viol_best {
                        viol_best = v;
                        r_best = r;
                        below = true;
                    }
                } else if x > self.ub[j] + tol_hi {
                    let v = x - self.ub[j];
                    if v > viol_best {
                        viol_best = v;
                        r_best = r;
                        below = false;
                    }
                }
            }
            if r_best == usize::MAX {
                return Ok(LpStatus::Optimal);
            }
            let r = r_best;
            let p = self.basis[r];
            let sigma = if below { -1.0 } else { 1.0 };

            // --- rho = row r of B⁻¹; alpha~_j = σ · rho·A_j. ---
            self.scratch_rho.copy_from_slice(&self.binv[r * self.m..(r + 1) * self.m]);
            let bland = degenerate_run > DEGEN_LIMIT || local_iters > stall_limit;
            let mut q = usize::MAX;
            let mut best_ratio = f64::INFINITY;
            for j in 0..self.ncols {
                if self.stat[j] == Stat::Basic || self.is_fixed(j) {
                    self.scratch_alpha[j] = 0.0;
                    continue;
                }
                let a = sigma * self.sf.column(j).dot(&self.scratch_rho);
                self.scratch_alpha[j] = a;
                let eligible = match self.stat[j] {
                    Stat::Lower => a > ZTOL,
                    Stat::Upper => a < -ZTOL,
                    Stat::Basic => false,
                };
                if !eligible {
                    continue;
                }
                let ratio = (self.d[j] / a).max(0.0);
                let better = if bland {
                    // Smallest index among (near-)minimal ratios.
                    ratio < best_ratio - 1e-12 || (ratio < best_ratio + 1e-12 && j < q)
                } else {
                    // Min ratio; break ties toward larger |pivot| for
                    // numerical stability.
                    ratio < best_ratio - 1e-12
                        || (ratio < best_ratio + 1e-12
                            && (q == usize::MAX || a.abs() > self.scratch_alpha[q].abs()))
                };
                if better {
                    best_ratio = ratio;
                    q = j;
                }
            }
            if q == usize::MAX {
                return Ok(LpStatus::Infeasible);
            }

            // --- FTRAN: aq = B⁻¹ A_q. ---
            let m = self.m;
            self.scratch_aq.iter_mut().for_each(|v| *v = 0.0);
            match self.sf.column(q) {
                crate::standard::ColumnRef::Structural(nz) => {
                    for &(row, v) in nz {
                        for i in 0..m {
                            self.scratch_aq[i] += self.binv[i * m + row] * v;
                        }
                    }
                }
                crate::standard::ColumnRef::Slack(row) => {
                    for i in 0..m {
                        self.scratch_aq[i] = self.binv[i * m + row];
                    }
                }
            }
            let alpha_q_true = self.scratch_aq[r];
            if alpha_q_true.abs() < ZTOL {
                // The alpha row disagrees with the FTRAN column: numerical
                // drift. Refactorize and retry the whole iteration.
                self.refactorize()?;
                self.make_dual_feasible();
                self.recompute_xb();
                local_iters += 1;
                continue;
            }

            // --- Pivot. ---
            let target = if below { self.lb[p] } else { self.ub[p] };
            let t = (self.xb[r] - target) / alpha_q_true;
            let theta = best_ratio; // d_q / alpha~_q, ≥ 0.
            if theta <= 1e-12 && t.abs() <= 1e-12 {
                degenerate_run += 1;
            } else {
                degenerate_run = 0;
            }

            // Reduced costs: d_j ← d_j − θ·alpha~_j; d_p = −σθ; d_q = 0.
            if theta != 0.0 {
                for j in 0..self.ncols {
                    if self.stat[j] != Stat::Basic && !self.is_fixed(j) {
                        self.d[j] -= theta * self.scratch_alpha[j];
                    } else if self.is_fixed(j) && self.stat[j] != Stat::Basic {
                        // Fixed columns still need consistent d for later
                        // bound relaxations (branch backtracking).
                        let a = sigma * self.sf.column(j).dot(&self.scratch_rho);
                        self.d[j] -= theta * a;
                    }
                }
            }
            self.d[p] = -sigma * theta;
            self.d[q] = 0.0;

            // Basic values: x_B ← x_B − t·aq, entering takes row r.
            let x_q_new = self.nonbasic_value(q) + t;
            for i in 0..m {
                if i != r {
                    self.xb[i] -= t * self.scratch_aq[i];
                }
            }
            self.xb[r] = x_q_new;

            // Basis inverse pivot on (r, q).
            let inv_piv = 1.0 / alpha_q_true;
            for k in 0..m {
                self.binv[r * m + k] *= inv_piv;
            }
            for i in 0..m {
                if i != r {
                    let f = self.scratch_aq[i];
                    if f != 0.0 {
                        for k in 0..m {
                            self.binv[i * m + k] -= f * self.binv[r * m + k];
                        }
                    }
                }
            }

            self.basis[r] = q;
            self.stat[q] = Stat::Basic;
            self.stat[p] = if below { Stat::Lower } else { Stat::Upper };

            self.iterations += 1;
            local_iters += 1;
            self.pivots_since_refactor += 1;
            if self.pivots_since_refactor >= self.refactor_interval {
                match self.refactorize() {
                    Ok(()) => {
                        self.make_dual_feasible();
                        self.recompute_xb();
                    }
                    Err(_) => {
                        self.reset_to_slack_basis();
                    }
                }
            }
        }
    }

    /// Maximum primal bound violation over basic variables (diagnostics).
    #[allow(dead_code)] // diagnostic accessor, exercised in tests
    pub fn primal_infeasibility(&self) -> f64 {
        let mut worst = 0.0_f64;
        for r in 0..self.m {
            let j = self.basis[r];
            let x = self.xb[r];
            worst = worst.max(self.lb[j] - x).max(x - self.ub[j]);
        }
        worst.max(0.0)
    }
}
