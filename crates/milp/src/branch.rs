//! Branch and bound over the LP relaxation.
//!
//! Nodes are explored depth-first (default) or best-bound-first. Because the
//! dual simplex state stays dual-feasible under arbitrary bound changes, a
//! search thread shares a *single* simplex instance across its nodes:
//! entering a node applies its bound deltas and installs the basis snapshot
//! its parent captured when it branched ([`OpenNode::parent_basis`]), so
//! every node LP starts one bound change away from its parent's optimum —
//! on a depth-first dive the basis is already in place and the restore is
//! skipped. With [`SolverOptions::warm_start`] off, every node solves from
//! the all-slack basis (the cold-start ablation reference).
//!
//! With [`SolverOptions::threads`] ≥ 2 the open-node pool is shared by a
//! team of workers (see [`crate::parallel`]); each worker owns its own
//! simplex and pseudo-costs, while the incumbent and the pruning bound are
//! global. `threads = 1` runs the serial search in this module unchanged,
//! preserving its exact node order.

use crate::error::{MilpError, Result};
use crate::events::{SolverEvent, TerminationReason};
use crate::model::{Model, VarKind};
use crate::options::{BranchRule, NodeOrder, SolverOptions};
use crate::parallel;
use crate::presolve::{presolve, Presolved};
use crate::simplex::{BasisSnapshot, LpStatus, Simplex};
use crate::solution::{Solution, SolveStats, SolveStatus};
use crate::standard::StandardForm;
use std::sync::Arc;
use std::time::Instant;

/// Per-variable pseudo-cost statistics.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PseudoCost {
    down_sum: f64,
    down_n: u32,
    up_sum: f64,
    up_n: u32,
}

impl PseudoCost {
    fn down(&self, fallback: f64) -> f64 {
        if self.down_n == 0 {
            fallback
        } else {
            self.down_sum / self.down_n as f64
        }
    }
    fn up(&self, fallback: f64) -> f64 {
        if self.up_n == 0 {
            fallback
        } else {
            self.up_sum / self.up_n as f64
        }
    }
}

/// One open node in the search: the bound deltas that define it relative to
/// the root, plus its parent's LP bound.
#[derive(Debug, Clone)]
pub(crate) struct OpenNode {
    /// `(column, lb, ub)` deltas from the root relaxation.
    pub(crate) deltas: Vec<(usize, f64, f64)>,
    /// LP bound inherited from the parent (internal minimization scale).
    pub(crate) bound: f64,
    /// Branch bookkeeping for pseudo-costs: `(column, fractionality, up?)`.
    branched: Option<(usize, f64, bool)>,
    /// The parent's optimal basis, snapshot when it branched. Shared by
    /// `Arc` between both children (and across threads when the node is
    /// stolen). `None` for the root or when warm starts are disabled.
    pub(crate) parent_basis: Option<Arc<BasisSnapshot>>,
}

impl OpenNode {
    /// The root node: no deltas, unbounded parent bound.
    pub(crate) fn root() -> Self {
        OpenNode { deltas: vec![], bound: f64::NEG_INFINITY, branched: None, parent_basis: None }
    }
}

/// Where a search keeps its best integral point. The serial search holds it
/// directly; the parallel search guards it behind a lock shared by workers.
pub(crate) trait Incumbent {
    /// Objective (internal minimization scale) of the best point so far;
    /// `+inf` when none exists.
    fn best_obj(&self) -> f64;
    /// Installs `values` as the incumbent if `obj` still improves on the
    /// current best at acceptance time; returns whether it was accepted.
    fn offer(&mut self, values: &[f64], obj: f64) -> bool;
}

/// Whether the gap between `bound` and the incumbent `inc_obj` is closed
/// under `options`' gap tolerances.
pub(crate) fn gap_closed(options: &SolverOptions, inc_obj: f64, bound: f64) -> bool {
    if inc_obj.is_infinite() {
        return false;
    }
    bound >= inc_obj - options.absolute_gap
        || bound >= inc_obj - options.relative_gap * inc_obj.abs().max(1.0)
}

pub(crate) fn internal_objective(model: &Model, sf: &StandardForm, values: &[f64]) -> f64 {
    let user = model.objective().eval(values);
    let signed = user - sf.obj_offset;
    if sf.maximize {
        -signed
    } else {
        signed
    }
}

/// The per-thread half of the search: one simplex, one pseudo-cost table,
/// and the node-evaluation logic. Both the serial search and every parallel
/// worker drive one of these.
pub(crate) struct NodeWorker<'a> {
    pub(crate) model: &'a Model,
    pub(crate) sf: &'a StandardForm,
    pub(crate) lp: Simplex,
    pub(crate) options: &'a SolverOptions,
    pub(crate) int_cols: &'a [usize],
    pseudo: Vec<PseudoCost>,
    /// Nodes this worker evaluated.
    pub(crate) nodes: u64,
    pub(crate) start: Instant,
    /// Set when a node could not be solved (deadline or numerics); the
    /// search stops gracefully with whatever incumbent exists.
    pub(crate) hit_limit: bool,
    /// Set when the cancel token fired; reported as
    /// [`SolveStatus::Interrupted`].
    pub(crate) interrupted: bool,
    /// Open nodes this worker discarded against the incumbent bound.
    pub(crate) pruned: u64,
    /// Best (lowest, internal scale) bound over the *other* open nodes,
    /// maintained by the search loop so incumbent events can report the
    /// global gap instead of the node-local one. `INFINITY` when unknown;
    /// only ever loosens the reported gap, never the search itself.
    pub(crate) dual_bound: f64,
    /// The snapshot the worker's basis currently equals, if any: set when a
    /// node branches (its children carry this snapshot), cleared before any
    /// LP solve. Lets a depth-first dive skip the restore entirely.
    loaded: Option<Arc<BasisSnapshot>>,
    /// Node LPs that started from a parent basis (restored or inherited).
    pub(crate) warm_starts: u64,
    /// Node LPs that started from the slack basis (root, warm starts off,
    /// or a snapshot that failed to factorize).
    pub(crate) cold_starts: u64,
    /// Scratch for the node LP's full primal vector.
    xbuf: Vec<f64>,
    /// Scratch for the rounding heuristic's candidate point.
    round_buf: Vec<f64>,
    /// In-tree cover separation is armed for this worker (serial search
    /// with `SolverOptions::cut_node_interval > 0`); parallel workers keep
    /// it off because appended rows are worker-local.
    tree_cuts: bool,
    /// Pool for the worker's in-tree cuts (dedup/scoring only — in-tree
    /// cuts stay in this worker's LP for the rest of its search).
    tree_pool: crate::cuts::CutPool,
    /// Root box per structural column (cover separation needs the global
    /// bounds of non-binary terms).
    cut_bounds: Vec<(f64, f64)>,
    /// Binary columns under the root box (cover cut candidates).
    binary: Vec<bool>,
    /// In-tree candidate cuts generated by this worker.
    pub(crate) cuts_generated: u64,
    /// In-tree cuts appended to this worker's LP.
    pub(crate) cuts_applied: u64,
    /// Seconds this worker spent separating in-tree cuts.
    pub(crate) separation_seconds: f64,
    /// Node-level bound propagation is armed
    /// ([`SolverOptions::propagation`] with integer columns present).
    propagate_on: bool,
    /// Conflict no-good derivation is armed: worker-local rows allowed
    /// (serial search) with [`SolverOptions::conflict_cuts`] on.
    conflicts_on: bool,
    /// Structural integrality mask (length `model.num_vars()`).
    int_mask: Vec<bool>,
    /// Scratch structural lower bounds for the propagation pass.
    prop_lb: Vec<f64>,
    /// Scratch structural upper bounds for the propagation pass.
    prop_ub: Vec<f64>,
    /// Scratch reference point for conflict-cut pool scoring.
    conflict_ref: Vec<f64>,
    /// Pool for this worker's conflict no-goods (dedup/scoring; conflict
    /// rows stay in this worker's LP like in-tree covers).
    conflict_pool: crate::cuts::CutPool,
    /// Individual bounds tightened by node propagation.
    pub(crate) propagated_bounds: u64,
    /// Nodes fathomed by propagation without an LP solve.
    pub(crate) propagation_fathoms: u64,
    /// Seconds spent propagating node bounds.
    pub(crate) propagation_seconds: f64,
    /// Conflict no-goods derived from infeasible nodes.
    pub(crate) conflict_cuts_generated: u64,
    /// Conflict no-goods accepted by the pool and appended to the LP.
    pub(crate) conflict_cuts_applied: u64,
    /// Verified symmetry plan for node-level lex (orbital) propagation;
    /// armed by [`NodeWorker::arm_symmetry`] after construction. `None`
    /// when no symmetry was verified or orbital fixing is off.
    symmetry: Option<Arc<crate::symmetry::SymmetryPlan>>,
    /// Column fixings applied by lex propagation at this worker's nodes.
    pub(crate) orbital_fixings: u64,
    /// Strong-branching probe LPs this worker solved (reliability rule).
    pub(crate) strong_branch_probes: u64,
}

/// Outcome of a reliability strong-branching pass at one node.
enum ProbeResult {
    /// Pseudo-costs seeded (or nothing to probe); branch normally.
    Done,
    /// One probe direction proved infeasible: branch single-sided the other
    /// way (`up` is the direction of the surviving child).
    Forced { j: usize, v: f64, up: bool },
    /// Both probe directions proved infeasible: the node carries no integer
    /// point.
    Fathomed,
}

/// Ceiling on in-tree cuts one worker may append to its LP: every row is
/// priced on every later node of this worker, so unbounded growth would
/// trade node count for per-node cost.
const MAX_TREE_CUTS: usize = 200;

/// Ceiling on conflict no-goods one worker may append, for the same
/// pricing-cost reason as [`MAX_TREE_CUTS`].
const MAX_CONFLICT_CUTS: usize = 200;

/// Outcome of one in-tree separation round.
enum TreeCutResult {
    /// No violated cut survived the pool — continue with the current point.
    NoCuts,
    /// Cuts appended and the LP re-optimized to the new (tighter) bound;
    /// the caller's primal vector has been refreshed.
    Resolved(f64),
    /// The LP went infeasible over globally valid cuts: the node carries no
    /// integer point and fathoms.
    Fathomed,
    /// Deadline/cancel/numerics during the re-solve (limit semantics).
    Unsolved,
}

impl<'a> NodeWorker<'a> {
    pub(crate) fn new(
        model: &'a Model,
        sf: &'a StandardForm,
        options: &'a SolverOptions,
        int_cols: &'a [usize],
        root_bounds: &[(f64, f64)],
        start: Instant,
        allow_tree_cuts: bool,
    ) -> Self {
        let mut lp = Simplex::new(sf, options);
        if options.time_limit.is_finite() {
            lp.deadline = Some(start + std::time::Duration::from_secs_f64(options.time_limit));
        }
        // Apply the root's inward-rounded integer bounds (continuous columns
        // already match the standard form's bounds).
        for &j in int_cols {
            let (l, u) = root_bounds[j];
            lp.set_bounds(j, l, u);
        }
        lp.refresh();
        let tree_cuts = allow_tree_cuts
            && options.cuts
            && options.cover_cuts
            && options.cut_node_interval > 0
            && !int_cols.is_empty();
        let mut is_int = vec![false; model.num_vars()];
        for &j in int_cols {
            is_int[j] = true;
        }
        let propagate_on = options.propagation && !int_cols.is_empty();
        let conflicts_on = allow_tree_cuts && options.conflict_cuts && !int_cols.is_empty();
        let binary = if tree_cuts || conflicts_on {
            (0..model.num_vars()).map(|j| is_int[j] && root_bounds[j] == (0.0, 1.0)).collect()
        } else {
            Vec::new()
        };
        NodeWorker {
            model,
            sf,
            lp,
            options,
            int_cols,
            pseudo: vec![PseudoCost::default(); model.num_vars()],
            nodes: 0,
            start,
            hit_limit: false,
            interrupted: false,
            pruned: 0,
            dual_bound: f64::INFINITY,
            loaded: None,
            warm_starts: 0,
            cold_starts: 0,
            xbuf: Vec::new(),
            round_buf: Vec::new(),
            tree_cuts,
            tree_pool: crate::cuts::CutPool::new(),
            cut_bounds: if tree_cuts { root_bounds.to_vec() } else { Vec::new() },
            binary,
            cuts_generated: 0,
            cuts_applied: 0,
            separation_seconds: 0.0,
            propagate_on,
            conflicts_on,
            int_mask: is_int,
            prop_lb: Vec::new(),
            prop_ub: Vec::new(),
            conflict_ref: Vec::new(),
            conflict_pool: crate::cuts::CutPool::new(),
            propagated_bounds: 0,
            propagation_fathoms: 0,
            propagation_seconds: 0.0,
            conflict_cuts_generated: 0,
            conflict_cuts_applied: 0,
            symmetry: None,
            orbital_fixings: 0,
            strong_branch_probes: 0,
        }
    }

    /// Arms node-level lex (orbital) propagation with a verified symmetry
    /// plan. Kept out of `new` so the existing construction sites (tests,
    /// parallel workers) stay untouched when no symmetry is present.
    pub(crate) fn arm_symmetry(&mut self, plan: Arc<crate::symmetry::SymmetryPlan>) {
        self.symmetry = Some(plan);
    }

    pub(crate) fn time_up(&self) -> bool {
        self.options.time_limit.is_finite()
            && self.start.elapsed().as_secs_f64() > self.options.time_limit
    }

    /// Records a prune-by-bound of a node with inherited bound
    /// `bound_internal` and emits the matching event.
    pub(crate) fn note_pruned(&mut self, bound_internal: f64) {
        self.pruned += 1;
        let sf = self.sf;
        self.options
            .observer
            .emit(|| SolverEvent::NodePruned { bound: sf.user_objective(bound_internal) });
    }

    /// Emits the node-evaluation event: the root emits
    /// [`SolverEvent::RootRelaxation`], everything else
    /// [`SolverEvent::NodeExplored`].
    fn emit_node(&self, node: &OpenNode, bound_internal: f64, pivots: u64) {
        let sf = self.sf;
        let n = self.nodes;
        self.options.observer.emit(|| {
            let bound = sf.user_objective(bound_internal);
            if node.deltas.is_empty() {
                SolverEvent::RootRelaxation { bound }
            } else {
                SolverEvent::NodeExplored { node: n, bound, depth: node.deltas.len(), pivots }
            }
        });
    }

    /// Emits the incumbent-accepted event. The reported bound is the global
    /// dual bound: the current node's LP bound tightened by the best bound
    /// among the other open nodes ([`NodeWorker::dual_bound`]).
    fn emit_incumbent(&self, obj_internal: f64, bound_internal: f64) {
        let sf = self.sf;
        let bound_internal = bound_internal.min(self.dual_bound);
        self.options.observer.emit(|| SolverEvent::Incumbent {
            objective: sf.user_objective(obj_internal),
            bound: sf.user_objective(bound_internal),
            gap: (obj_internal - bound_internal).abs() / obj_internal.abs().max(1.0),
        });
    }

    /// Solves the LP at the current bound state with one numerical retry.
    /// `Ok(None)` means the node could not be solved (deadline, cancel or
    /// numerics); a cancel additionally sets [`NodeWorker::interrupted`].
    fn solve_node_lp(&mut self) -> Result<Option<LpStatus>> {
        match self.lp.optimize() {
            Ok(s) => Ok(Some(s)),
            Err(MilpError::Interrupted) => {
                self.interrupted = true;
                Ok(None)
            }
            Err(MilpError::IterationLimit { .. }) | Err(MilpError::SingularBasis) => {
                if self.time_up() {
                    return Ok(None);
                }
                self.lp.reset_to_slack_basis();
                match self.lp.optimize() {
                    Ok(s) => Ok(Some(s)),
                    Err(MilpError::Interrupted) => {
                        self.interrupted = true;
                        Ok(None)
                    }
                    Err(MilpError::IterationLimit { .. }) | Err(MilpError::SingularBasis) => {
                        Ok(None)
                    }
                    Err(e) => Err(e),
                }
            }
            Err(e) => Err(e),
        }
    }

    /// Most fractional / first / pseudo-cost selection among integer columns.
    fn pick_branch_var(&self, x: &[f64]) -> Option<(usize, f64)> {
        let tol = self.options.integrality_tol;
        // Respect priority classes: only consider the highest priority class
        // that contains a fractional variable (int_cols is priority-sorted).
        let mut best: Option<(usize, f64, f64)> = None; // (col, value, score)
        let mut active_priority: Option<i32> = None;
        for &j in self.int_cols {
            let v = x[j];
            let frac = (v - v.round()).abs();
            if frac <= tol {
                continue;
            }
            let prio = self.model.vars[j].branch_priority;
            match active_priority {
                None => active_priority = Some(prio),
                Some(p) if prio < p => break,
                _ => {}
            }
            match self.options.branch_rule {
                BranchRule::FirstFractional => return Some((j, v)),
                BranchRule::MostFractional => {
                    // `frac` is already the distance to the nearest integer
                    // (∈ (tol, 0.5]); larger means more fractional.
                    let score = frac;
                    if best.is_none_or(|(_, _, s)| score > s) {
                        best = Some((j, v, score));
                    }
                }
                BranchRule::PseudoCost | BranchRule::Reliability => {
                    // Reliability scores identically; its strong-branching
                    // probes (run before selection) have already seeded the
                    // pseudo-costs of unreliable columns.
                    let f = v - v.floor();
                    let pc = &self.pseudo[j];
                    let fallback = 1.0;
                    let score =
                        (pc.down(fallback) * f).max(1e-6) * (pc.up(fallback) * (1.0 - f)).max(1e-6);
                    if best.is_none_or(|(_, _, s)| score > s) {
                        best = Some((j, v, score));
                    }
                }
            }
        }
        best.map(|(j, v, _)| (j, v))
    }

    /// Tries rounding the LP point into an incumbent candidate; offers any
    /// feasible rounding to `incumbent` and returns the objective of an
    /// accepted offer.
    fn try_rounding(&mut self, x: &[f64], incumbent: &mut dyn Incumbent) -> Option<f64> {
        if !self.options.rounding_heuristic {
            return None;
        }
        let mut cand = std::mem::take(&mut self.round_buf);
        cand.clear();
        cand.extend_from_slice(x);
        for &j in self.int_cols {
            cand[j] = cand[j].round();
        }
        let tol = self.options.feasibility_tol.max(self.options.integrality_tol);
        let mut accepted = None;
        if self.model.is_feasible(&cand, tol * 10.0) {
            let obj = internal_objective(self.model, self.sf, &cand);
            if incumbent.offer(&cand, obj) {
                accepted = Some(obj);
            }
        }
        self.round_buf = cand;
        accepted
    }

    fn record_pseudocost(&mut self, node: &OpenNode, child_bound: f64) {
        if let Some((j, frac, up)) = node.branched {
            if node.bound.is_finite() && child_bound.is_finite() {
                let degradation = (child_bound - node.bound).max(0.0);
                let pc = &mut self.pseudo[j];
                if up {
                    let per_unit = degradation / (1.0 - frac).max(1e-6);
                    pc.up_sum += per_unit;
                    pc.up_n += 1;
                } else {
                    let per_unit = degradation / frac.max(1e-6);
                    pc.down_sum += per_unit;
                    pc.down_n += 1;
                }
            }
        }
    }

    /// Applies a node's deltas on top of the root bounds, then installs the
    /// node's starting basis (see [`OpenNode::parent_basis`]).
    pub(crate) fn enter_node(&mut self, node: &OpenNode, root_bounds: &[(f64, f64)]) {
        // Resetting exactly the integer columns touched by any delta path is
        // expensive to track; reset all integer columns to root, then apply.
        for &j in self.int_cols {
            let (l, u) = root_bounds[j];
            self.lp.set_bounds(j, l, u);
        }
        for &(j, l, u) in &node.deltas {
            self.lp.set_bounds(j, l, u);
        }
        // Basis selection comes *after* the bound edits so a restore
        // recomputes reduced costs and basic values against this node's box.
        // Every arm below leaves the basic values freshly computed.
        if !self.options.warm_start {
            // Ablation reference: every node LP solves from the slack basis.
            self.cold_starts += 1;
            self.lp.reset_to_slack_basis();
            return;
        }
        match &node.parent_basis {
            Some(snap) => {
                let inherited = self.loaded.as_ref().is_some_and(|l| Arc::ptr_eq(l, snap));
                if inherited {
                    // Depth-first dive: the worker's basis already *is* the
                    // parent's optimal basis — no refactorization needed,
                    // only a value refresh for the edited bounds.
                    self.warm_starts += 1;
                    self.lp.refresh();
                } else if self.lp.restore_snapshot(snap).is_ok() {
                    // Backtrack or steal: reinstall the parent basis.
                    self.warm_starts += 1;
                } else {
                    // The snapshot basis would not factorize under this
                    // kernel (numerics): fall back to a cold start.
                    self.cold_starts += 1;
                    self.lp.reset_to_slack_basis();
                }
            }
            None => {
                // The root node. A fresh simplex already sits on the slack
                // basis; the explicit reset also covers re-entry paths.
                self.cold_starts += 1;
                self.lp.reset_to_slack_basis();
            }
        }
    }

    /// Evaluates one node whose deltas are already applied. Returns the
    /// children to explore (empty when pruned/integral) and the node's LP
    /// bound. New integral points and rounding candidates are pushed into
    /// `incumbent`.
    pub(crate) fn eval_node(
        &mut self,
        node: &OpenNode,
        incumbent: &mut dyn Incumbent,
    ) -> Result<(Vec<OpenNode>, f64)> {
        self.nodes += 1;
        // The solve moves the basis away from whatever snapshot was loaded.
        self.loaded = None;
        if self.symmetry.is_some() && self.propagate_symmetry() {
            // Lex propagation refuted the node: every point of its box is
            // lex-dominated by a symmetric image, so the representative
            // optimum lives elsewhere. Same event/conflict shape as a
            // propagation fathom.
            self.emit_node(node, f64::INFINITY, 0);
            if self.conflicts_on {
                self.maybe_conflict_cut(node);
            }
            return Ok((vec![], f64::INFINITY));
        }
        if self.propagate_on && self.propagate_node() {
            // Propagation emptied the node box: fathom without an LP solve.
            // The node still emits its exploration event (bound +inf, zero
            // pivots) so node-counting observers see every evaluated node.
            self.emit_node(node, f64::INFINITY, 0);
            if self.conflicts_on {
                self.maybe_conflict_cut(node);
            }
            return Ok((vec![], f64::INFINITY));
        }
        let pivots_before = self.lp.iterations;
        let status = match self.solve_node_lp()? {
            Some(s) => s,
            None => {
                // Unsolved node: stop the search conservatively.
                self.hit_limit = true;
                return Ok((vec![], node.bound));
            }
        };
        let pivots = self.lp.iterations - pivots_before;
        if status == LpStatus::Infeasible {
            // An infeasible node's bound is +inf (internal scale); the event
            // reports the corresponding user-scale extreme.
            self.emit_node(node, f64::INFINITY, pivots);
            if self.conflicts_on {
                self.maybe_conflict_cut(node);
            }
            return Ok((vec![], f64::INFINITY));
        }
        // The LP point is optimal for the *perturbed* costs; subtracting the
        // margin gives a valid bound for the true costs. The node's own
        // bound (parent LP bound, or the carried dual bound at a resumed
        // root) is also valid for this subproblem, so keep the tighter of
        // the two — this is what lets a carried bound prune the whole tree
        // once the incumbent reaches the previous optimum.
        let mut bound = (self.lp.objective() - self.lp.bound_margin()).max(node.bound);
        self.emit_node(node, bound, pivots);
        self.record_pseudocost(node, bound);
        if gap_closed(self.options, incumbent.best_obj(), bound) {
            return Ok((vec![], bound));
        }
        let mut full = std::mem::take(&mut self.xbuf);
        self.lp.values_into(&mut full);
        if self.tree_cuts_due(node) {
            match self.separate_in_tree(&mut full)? {
                TreeCutResult::NoCuts => {}
                TreeCutResult::Resolved(b) => {
                    bound = b.max(bound);
                    if gap_closed(self.options, incumbent.best_obj(), bound) {
                        self.xbuf = full;
                        return Ok((vec![], bound));
                    }
                }
                TreeCutResult::Fathomed => {
                    self.xbuf = full;
                    return Ok((vec![], f64::INFINITY));
                }
                TreeCutResult::Unsolved => {
                    self.hit_limit = true;
                    self.xbuf = full;
                    return Ok((vec![], node.bound));
                }
            }
        }
        let result = self.branch_or_fathom(node, incumbent, &full, bound);
        self.xbuf = full;
        result
    }

    /// Activity-based bound propagation on the current node box (the bound
    /// state `enter_node` installed): returns `true` when the box is
    /// provably empty. Runs over the worker LP's *own* form so appended cut
    /// rows participate. Time lands in the disjoint propagation bucket.
    ///
    /// The fixpoint arithmetic tightens freely (deeper chains find more
    /// fathoms), but only tightenings that *fix* a column (`lb == ub`) are
    /// written into the live LP: a binary tightening is always a fixing, so
    /// 0/1 models keep the full effect, while partial interval shrinks on
    /// general-integer columns — which barely prune but perturb the LP
    /// optimum enough to reroute branching — stay out of the node. Applied
    /// fixings feed the branched children through `branch_or_fathom`'s
    /// bound reads.
    fn propagate_node(&mut self) -> bool {
        let t0 = Instant::now();
        let n = self.sf.n;
        let mut plb = std::mem::take(&mut self.prop_lb);
        let mut pub_ = std::mem::take(&mut self.prop_ub);
        plb.clear();
        plb.extend_from_slice(&self.lp.lb[..n]);
        pub_.clear();
        pub_.extend_from_slice(&self.lp.ub[..n]);
        let res = crate::propagate::propagate(
            self.lp.form(),
            &self.int_mask,
            &mut plb,
            &mut pub_,
            &self.lp.lb[n..],
            &self.lp.ub[n..],
            self.options.feasibility_tol,
            self.options.integrality_tol,
        );
        let mut fathomed = false;
        let mut count: u64 = 0;
        match res {
            crate::propagate::Propagation::Infeasible => {
                fathomed = true;
                self.propagation_fathoms += 1;
            }
            crate::propagate::Propagation::Tightened(_) => {
                let mut any = false;
                for j in 0..n {
                    if plb[j] == pub_[j] && (plb[j] != self.lp.lb[j] || pub_[j] != self.lp.ub[j]) {
                        if plb[j] > self.lp.lb[j] {
                            count += 1;
                        }
                        if pub_[j] < self.lp.ub[j] {
                            count += 1;
                        }
                        self.lp.set_bounds(j, plb[j], pub_[j]);
                        any = true;
                    }
                }
                self.propagated_bounds += count;
                if any {
                    self.lp.refresh();
                }
            }
            crate::propagate::Propagation::Unchanged => {}
        }
        self.prop_lb = plb;
        self.prop_ub = pub_;
        self.propagation_seconds += t0.elapsed().as_secs_f64();
        if fathomed || count > 0 {
            let node = self.nodes;
            let tightened = count.min(u32::MAX as u64) as u32;
            self.options.observer.emit(|| SolverEvent::NodePropagated {
                node,
                tightened,
                fathomed,
            });
        }
        fathomed
    }

    /// Lex (orbital) propagation on the current node box: under the
    /// "keep the lex-greatest point of every symmetry orbit" rule, a fixed
    /// prefix position forces fixings on its image columns, and a provably
    /// violated prefix means every point of the box is lex-dominated by a
    /// symmetric image — the surviving representative lives in another
    /// subtree, so the node fathoms. Returns `true` on fathom. Applied
    /// fixings land in the live LP exactly like propagation fixings and
    /// feed the branched children through `branch_or_fathom`'s bound reads.
    fn propagate_symmetry(&mut self) -> bool {
        let Some(plan) = self.symmetry.clone() else {
            return false;
        };
        let t0 = Instant::now();
        let n = self.sf.n;
        let mut plb = std::mem::take(&mut self.prop_lb);
        let mut pub_ = std::mem::take(&mut self.prop_ub);
        plb.clear();
        plb.extend_from_slice(&self.lp.lb[..n]);
        pub_.clear();
        pub_.extend_from_slice(&self.lp.ub[..n]);
        let mut fixed: Vec<(usize, f64)> = Vec::new();
        let ok = crate::symmetry::propagate_lex(&plan.pairs, &mut plb, &mut pub_, &mut fixed);
        if ok && !fixed.is_empty() {
            for &(j, v) in &fixed {
                self.lp.set_bounds(j, v, v);
            }
            self.orbital_fixings += fixed.len() as u64;
            self.lp.refresh();
        }
        self.prop_lb = plb;
        self.prop_ub = pub_;
        self.propagation_seconds += t0.elapsed().as_secs_f64();
        !ok
    }

    /// Derives a globally valid no-good cut from an infeasible node whose
    /// branching path consists entirely of binary fixings, and appends it
    /// to this worker's LP through the conflict pool. LP (or propagation)
    /// infeasibility under the fixings proves no integer point matches all
    /// of them while the remaining columns roam the root box, so
    /// `Σ_{fixed 0} x_j − Σ_{fixed 1} x_j ≥ 1 − #fixed-to-1` holds for
    /// every integer-feasible point of the model.
    fn maybe_conflict_cut(&mut self, node: &OpenNode) {
        if node.deltas.is_empty() || self.conflict_pool.installed() >= MAX_CONFLICT_CUTS {
            return;
        }
        // Fold the path into the final interval per column (later deltas
        // overwrite earlier ones, matching `enter_node`).
        let mut fix: Vec<(usize, f64, f64)> = Vec::new();
        for &(j, l, u) in &node.deltas {
            match fix.iter_mut().find(|&&mut (k, _, _)| k == j) {
                Some(e) => {
                    e.1 = l;
                    e.2 = u;
                }
                None => fix.push((j, l, u)),
            }
        }
        // The no-good argument needs every path column fixed to 0 or 1 under
        // the root box; a general-integer or interval delta disqualifies the
        // node (no cut — conservative).
        let mut ones = 0usize;
        for &(j, l, u) in &fix {
            if !self.binary[j] || l != u || (l != 0.0 && l != 1.0) {
                return;
            }
            if l == 1.0 {
                ones += 1;
            }
        }
        let mut coeffs: Vec<(usize, f64)> =
            fix.iter().map(|&(j, _, u)| (j, if u == 1.0 { -1.0 } else { 1.0 })).collect();
        coeffs.sort_unstable_by_key(|&(j, _)| j);
        let cut = crate::cuts::Cut {
            coeffs,
            rhs: 1.0 - ones as f64,
            sense: crate::cuts::CutSense::Ge,
            family: crate::cuts::CutFamily::Conflict,
            validity: crate::cuts::CutValidity::Global,
        };
        self.conflict_cuts_generated += 1;
        // Score the candidate at the refuted assignment itself, where its
        // violation is exactly 1.
        let mut x_ref = std::mem::take(&mut self.conflict_ref);
        x_ref.clear();
        x_ref.resize(self.model.num_vars(), 0.0);
        for &(j, _, u) in &fix {
            if u == 1.0 {
                x_ref[j] = 1.0;
            }
        }
        let chosen = self.conflict_pool.select(vec![cut], &x_ref);
        self.conflict_ref = x_ref;
        if chosen.is_empty() {
            return;
        }
        if self.lp.append_cut_rows(&chosen).is_err() {
            // The extended basis would not refactorize: fall back to the
            // slack basis over the grown form (always factorizable).
            self.lp.reset_to_slack_basis();
        }
        self.conflict_cuts_applied += chosen.len() as u64;
        let (depth, size) = (node.deltas.len(), fix.len());
        self.options.observer.emit(|| SolverEvent::ConflictCut { depth, size });
    }

    /// Whether this node is an in-tree separation point: the serial search
    /// separates cover cuts every [`SolverOptions::cut_node_interval`]
    /// depths (never at the root, whose cuts the root loop already owns).
    fn tree_cuts_due(&self, node: &OpenNode) -> bool {
        self.tree_cuts
            && !node.deltas.is_empty()
            && node.deltas.len().is_multiple_of(self.options.cut_node_interval)
            && self.tree_pool.installed() < MAX_TREE_CUTS
    }

    /// One round of in-tree cover separation at the node optimum held in
    /// `full`. Appended cuts are globally valid, so they stay in this
    /// worker's LP for the rest of its search; on `Resolved` the re-solved
    /// primal vector replaces `full`.
    fn separate_in_tree(&mut self, full: &mut Vec<f64>) -> Result<TreeCutResult> {
        let t0 = Instant::now();
        let x = &full[..self.model.num_vars()];
        let params = crate::cuts::cover::CoverParams { min_violation: 1e-4, big: self.sf.big };
        let mut cands = Vec::new();
        crate::cuts::cover::separate(
            self.model,
            &self.cut_bounds,
            &self.binary,
            x,
            &params,
            &mut cands,
        );
        self.cuts_generated += cands.len() as u64;
        let chosen = self.tree_pool.select(cands, x);
        self.separation_seconds += t0.elapsed().as_secs_f64();
        if chosen.is_empty() {
            return Ok(TreeCutResult::NoCuts);
        }
        if self.lp.append_cut_rows(&chosen).is_err() {
            // The extended basis would not refactorize: fall back to the
            // slack basis over the grown form (always factorizable).
            self.lp.reset_to_slack_basis();
        }
        self.cuts_applied += chosen.len() as u64;
        match self.solve_node_lp()? {
            None => Ok(TreeCutResult::Unsolved),
            Some(LpStatus::Infeasible) => Ok(TreeCutResult::Fathomed),
            Some(LpStatus::Optimal) => {
                self.lp.values_into(full);
                Ok(TreeCutResult::Resolved(self.lp.objective() - self.lp.bound_margin()))
            }
        }
    }

    /// Ceiling on columns probed by one reliability pass; the rest of the
    /// unreliable candidates wait for later nodes (or real branch
    /// observations) to seed their pseudo-costs.
    const MAX_PROBE_CANDIDATES: usize = 8;

    /// Reliability strong branching: for fractional columns of the active
    /// priority class whose pseudo-costs have fewer than
    /// [`SolverOptions::reliability_threshold`] observations on a side,
    /// solve both child LPs under a pivot budget
    /// ([`SolverOptions::strong_branch_pivot_limit`]), warm from this
    /// node's optimal basis, and seed the pseudo-costs with the observed
    /// degradations. A capped probe still yields a valid degradation
    /// estimate (any dual-feasible iterate bounds the child from below);
    /// a primal-infeasible probe is a rigorous proof the child is empty,
    /// which forces a single-sided branch (or fathoms the node when both
    /// sides are refuted).
    fn strong_branch_probe(&mut self, x: &[f64]) -> Result<ProbeResult> {
        let eta = self.options.reliability_threshold;
        let cap = self.options.strong_branch_pivot_limit;
        if eta == 0 || cap == 0 {
            return Ok(ProbeResult::Done);
        }
        let tol = self.options.integrality_tol;
        // Unreliable fractional candidates of the active (highest) priority
        // class, most fractional first, index tiebreak for determinism.
        let mut cands: Vec<(usize, f64)> = Vec::new();
        let mut active_priority: Option<i32> = None;
        for &j in self.int_cols {
            let v = x[j];
            if (v - v.round()).abs() <= tol {
                continue;
            }
            let prio = self.model.vars[j].branch_priority;
            match active_priority {
                None => active_priority = Some(prio),
                Some(p) if prio < p => break,
                _ => {}
            }
            if self.pseudo[j].down_n.min(self.pseudo[j].up_n) < eta {
                cands.push((j, v));
            }
        }
        if cands.is_empty() {
            return Ok(ProbeResult::Done);
        }
        cands.sort_by(|a, b| {
            let fa = (a.1 - a.1.round()).abs();
            let fb = (b.1 - b.1.round()).abs();
            fb.partial_cmp(&fa).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
        });
        cands.truncate(Self::MAX_PROBE_CANDIDATES);

        let node_obj = self.lp.objective();
        let snap = self.lp.snapshot();
        let mut outcome = ProbeResult::Done;
        let mut fatal: Option<MilpError> = None;
        'cands: for &(j, v) in &cands {
            let (lb, ub) = (self.lp.lb[j], self.lp.ub[j]);
            let (mut inf_down, mut inf_up) = (false, false);
            for up in [false, true] {
                if self.options.cancelled() {
                    self.interrupted = true;
                    break 'cands;
                }
                if self.time_up() {
                    break 'cands;
                }
                if up {
                    self.lp.set_bounds(j, v.ceil(), ub);
                } else {
                    self.lp.set_bounds(j, lb, v.floor());
                }
                self.lp.refresh();
                self.strong_branch_probes += 1;
                let res = self.lp.optimize_capped(cap);
                self.lp.set_bounds(j, lb, ub);
                match res {
                    Ok(LpStatus::Optimal) | Err(MilpError::IterationLimit { .. }) => {
                        // Optimal or capped (incl. deadline): the current
                        // objective only *under*states the degradation, the
                        // safe direction for a pseudo-cost seed.
                        let deg = (self.lp.objective() - node_obj).max(0.0);
                        let frac = v - v.floor();
                        let pc = &mut self.pseudo[j];
                        if up {
                            pc.up_sum += deg / (1.0 - frac).max(1e-6);
                            pc.up_n += 1;
                        } else {
                            pc.down_sum += deg / frac.max(1e-6);
                            pc.down_n += 1;
                        }
                    }
                    Ok(LpStatus::Infeasible) => {
                        // Primal infeasibility is cost-independent: rigorous.
                        if up {
                            inf_up = true;
                        } else {
                            inf_down = true;
                        }
                    }
                    Err(MilpError::Interrupted) => {
                        self.interrupted = true;
                        break 'cands;
                    }
                    Err(MilpError::SingularBasis) => {
                        // Numerics under the probe bound: abandon probing;
                        // the restore below recovers the node state.
                        break 'cands;
                    }
                    Err(e) => {
                        fatal = Some(e);
                        break 'cands;
                    }
                }
                // Re-seat the node basis so the next probe warm-starts from
                // the node optimum rather than the previous probe's basis.
                if self.lp.restore_snapshot(&snap).is_err() {
                    self.lp.reset_to_slack_basis();
                    break 'cands;
                }
            }
            if inf_down && inf_up {
                outcome = ProbeResult::Fathomed;
                break;
            }
            if inf_down {
                outcome = ProbeResult::Forced { j, v, up: true };
                break;
            }
            if inf_up {
                outcome = ProbeResult::Forced { j, v, up: false };
                break;
            }
        }
        // Node bounds were restored per probe; reinstall the node basis for
        // the branching snapshot (slack fallback keeps the LP usable).
        if self.lp.restore_snapshot(&snap).is_err() {
            self.lp.reset_to_slack_basis();
        }
        if let Some(e) = fatal {
            return Err(e);
        }
        Ok(outcome)
    }

    /// The post-solve half of [`NodeWorker::eval_node`]: accept an integral
    /// optimum, or pick a branching variable and build the children.
    fn branch_or_fathom(
        &mut self,
        node: &OpenNode,
        incumbent: &mut dyn Incumbent,
        full: &[f64],
        bound: f64,
    ) -> Result<(Vec<OpenNode>, f64)> {
        let x = &full[..self.model.num_vars()];
        if matches!(self.options.branch_rule, BranchRule::Reliability) {
            match self.strong_branch_probe(x)? {
                ProbeResult::Done => {}
                ProbeResult::Fathomed => {
                    // Both directions of some fractional column are primal
                    // infeasible: no integer point in this box.
                    if self.conflicts_on {
                        self.maybe_conflict_cut(node);
                    }
                    return Ok((vec![], f64::INFINITY));
                }
                ProbeResult::Forced { j, v, up } => {
                    // One direction refuted: branch single-sided the other
                    // way — same bookkeeping as a normal branch, one child.
                    let frac = v - v.floor();
                    let lb = self.lp.lb[j];
                    let ub = self.lp.ub[j];
                    let parent_basis = if self.options.warm_start {
                        let snap = Arc::new(self.lp.snapshot());
                        self.loaded = Some(Arc::clone(&snap));
                        Some(snap)
                    } else {
                        None
                    };
                    let delta = if up { (j, v.ceil(), ub) } else { (j, lb, v.floor()) };
                    let child = OpenNode {
                        deltas: push_delta(&node.deltas, delta),
                        bound,
                        branched: Some((j, frac, up)),
                        parent_basis,
                    };
                    return Ok((vec![child], bound));
                }
            }
        }
        match self.pick_branch_var(x) {
            None => {
                // Integral LP optimum: new incumbent.
                let obj = internal_objective(self.model, self.sf, x);
                if incumbent.offer(x, obj) {
                    self.emit_incumbent(obj, bound);
                }
                Ok((vec![], bound))
            }
            Some((j, v)) => {
                if let Some(obj) = self.try_rounding(x, incumbent) {
                    self.emit_incumbent(obj, bound);
                }
                if gap_closed(self.options, incumbent.best_obj(), bound) {
                    return Ok((vec![], bound));
                }
                let frac = v - v.floor();
                let lb = self.lp.lb[j];
                let ub = self.lp.ub[j];
                // Both children restart from this node's optimal basis:
                // snapshot it once, share it by `Arc`, and remember that the
                // worker's basis currently equals the snapshot so an
                // immediate dive skips the restore.
                let parent_basis = if self.options.warm_start {
                    let snap = Arc::new(self.lp.snapshot());
                    self.loaded = Some(Arc::clone(&snap));
                    Some(snap)
                } else {
                    None
                };
                let down = OpenNode {
                    deltas: push_delta(&node.deltas, (j, lb, v.floor())),
                    bound,
                    branched: Some((j, frac, false)),
                    parent_basis: parent_basis.clone(),
                };
                let up = OpenNode {
                    deltas: push_delta(&node.deltas, (j, v.ceil(), ub)),
                    bound,
                    branched: Some((j, frac, true)),
                    parent_basis,
                };
                // Explore the nearer child first under DFS.
                let children = if frac <= 0.5 { vec![down, up] } else { vec![up, down] };
                Ok((children, bound))
            }
        }
    }
}

/// Aggregated result of a search run, in internal (minimization) scale.
pub(crate) struct SearchOutcome {
    pub(crate) incumbent: Option<Vec<f64>>,
    pub(crate) incumbent_obj: f64,
    pub(crate) best_bound_internal: f64,
    pub(crate) nodes: u64,
    pub(crate) nodes_per_thread: Vec<u64>,
    pub(crate) simplex_iterations: u64,
    pub(crate) hit_limit: bool,
    /// The cancel token fired during the search.
    pub(crate) interrupted: bool,
    /// Open nodes discarded against the incumbent bound.
    pub(crate) pruned: u64,
    /// Incumbent improvements accepted during the search.
    pub(crate) incumbents: u64,
    /// Nodes obtained by work stealing (0 for serial runs).
    pub(crate) steals: u64,
    /// CPU-seconds inside the simplex loops, summed over workers.
    pub(crate) simplex_seconds: f64,
    /// CPU-seconds factorizing bases, summed over workers.
    pub(crate) factor_seconds: f64,
    /// Basis refactorizations, summed over workers.
    pub(crate) refactorizations: u64,
    /// Node LPs warm-started from a parent basis, summed over workers.
    pub(crate) warm_starts: u64,
    /// Node LPs started from the slack basis, summed over workers.
    pub(crate) cold_starts: u64,
    /// In-tree candidate cuts generated (0 for parallel runs).
    pub(crate) cuts_generated: u64,
    /// In-tree cuts appended to a worker LP (0 for parallel runs).
    pub(crate) cuts_applied: u64,
    /// Seconds separating in-tree cuts, summed over workers.
    pub(crate) separation_seconds: f64,
    /// Individual bounds tightened by node propagation, summed over workers.
    pub(crate) propagated_bounds: u64,
    /// Nodes fathomed by propagation without an LP solve.
    pub(crate) propagation_fathoms: u64,
    /// Seconds propagating node bounds, summed over workers.
    pub(crate) propagation_seconds: f64,
    /// Conflict no-goods derived (0 for parallel runs).
    pub(crate) conflict_cuts_generated: u64,
    /// Conflict no-goods appended to a worker LP (0 for parallel runs).
    pub(crate) conflict_cuts_applied: u64,
    /// Column fixings applied by lex (orbital) propagation, summed over
    /// workers.
    pub(crate) orbital_fixings: u64,
    /// Strong-branching probe LPs solved (reliability rule), summed over
    /// workers.
    pub(crate) strong_branch_probes: u64,
}

/// Carried solver state between the solves of a
/// [`ResolveSession`](crate::ResolveSession): the standard form the last
/// search ended on (base rows plus every cut row separated so far) and the
/// basis the serial worker held when it stopped. The session patches the
/// form in place after a model delta, remaps the basis for appended
/// columns, and hands both back to [`solve_session`] so the next search
/// re-enters warm.
pub(crate) struct ResumeState {
    /// The standard form to search over (already patched for any delta).
    pub(crate) sf: StandardForm,
    /// Root starting basis, remapped to `sf`'s dimensions. `None` after a
    /// parallel search (worker bases are private) — cuts still carry.
    pub(crate) basis: Option<BasisSnapshot>,
    /// Dual bound of the previous solve (internal minimization scale). A
    /// pure restriction only shrinks the feasible set, so the old bound
    /// stays a valid lower bound on the new optimum: the resumed search
    /// seeds its root node with it, and a re-solve whose incumbent still
    /// matches the old optimum closes the gap without exploring a single
    /// node. [`ResolveSession`](crate::ResolveSession) resets this to
    /// `NEG_INFINITY` whenever a delta adds a variable (a new column can
    /// improve the objective, invalidating the bound).
    pub(crate) bound: f64,
}

/// Entry point of the incremental re-solve engine
/// ([`ResolveSession`](crate::ResolveSession)): like [`solve`] but
/// *without presolve* — the carried solver state is indexed by the caller's
/// model columns, so the model must not be re-shaped under it — and with an
/// optional carried form + root basis to resume from. On return `capture`
/// holds the final form and basis for the next re-solve (basis only when
/// the search ran serial; a parallel search carries its cut rows cold).
pub(crate) fn solve_session(
    model: &Model,
    options: &SolverOptions,
    resume: Option<ResumeState>,
    capture: &mut Option<ResumeState>,
) -> Result<Solution> {
    let start = Instant::now();
    *capture = None;
    validate_nan(model)?;
    if model.num_vars() == 0 {
        return Ok(solve_constant(model, options, start));
    }
    let (sf, basis, carried_bound) = match resume {
        Some(r) => (r.sf, r.basis, Some(r.bound)),
        None => (StandardForm::from_model(model, options), None, None),
    };
    solve_on_form(model, options, sf, basis, carried_bound, Some(capture), start, 0.0)
}

/// Validates every expression of the model for NaN up front.
pub(crate) fn validate_nan(model: &Model) -> Result<()> {
    if model.objective().has_nan() {
        return Err(MilpError::NotANumber { context: "objective".into() });
    }
    for row in &model.rows {
        if row.expr.has_nan() || row.rhs.is_nan() {
            return Err(MilpError::NotANumber { context: format!("constraint `{}`", row.name) });
        }
    }
    Ok(())
}

/// Solves a model with no variables: feasible iff every row holds constant.
pub(crate) fn solve_constant(model: &Model, options: &SolverOptions, start: Instant) -> Solution {
    let feasible = model.rows.iter().all(|r| {
        let lhs = r.expr.constant();
        match r.sense {
            crate::ConstraintSense::Le => lhs <= r.rhs + options.feasibility_tol,
            crate::ConstraintSense::Ge => lhs >= r.rhs - options.feasibility_tol,
            crate::ConstraintSense::Eq => (lhs - r.rhs).abs() <= options.feasibility_tol,
        }
    });
    let obj = model.objective().constant();
    let status = if feasible { SolveStatus::Optimal } else { SolveStatus::Infeasible };
    let reason =
        if feasible { TerminationReason::GapClosed } else { TerminationReason::ProvenInfeasible };
    options.observer.emit(|| SolverEvent::Terminated { status, reason });
    let total = start.elapsed().as_secs_f64();
    Solution {
        status,
        values: vec![],
        objective: obj,
        best_bound: obj,
        nodes: 0,
        nodes_per_thread: vec![],
        simplex_iterations: 0,
        solve_seconds: total,
        stats: SolveStats { total_seconds: total, ..SolveStats::default() },
    }
}

/// Entry point used by [`Model::solve_with`].
pub(crate) fn solve(model: &Model, options: &SolverOptions) -> Result<Solution> {
    let start = Instant::now();
    validate_nan(model)?;

    if model.num_vars() == 0 {
        return Ok(solve_constant(model, options, start));
    }

    // Presolve, solve the reduced model, postsolve the incumbent.
    let mut presolve_seconds = 0.0;
    if options.presolve {
        let t_pre = Instant::now();
        let presolved = presolve(model, options.feasibility_tol)?;
        presolve_seconds = t_pre.elapsed().as_secs_f64();
        match presolved {
            Presolved::Infeasible => {
                options.observer.emit(|| SolverEvent::Presolve {
                    eliminated_vars: model.num_vars(),
                    eliminated_rows: model.num_constraints(),
                });
                options.observer.emit(|| SolverEvent::Terminated {
                    status: SolveStatus::Infeasible,
                    reason: TerminationReason::ProvenInfeasible,
                });
                let total = start.elapsed().as_secs_f64();
                return Ok(Solution {
                    status: SolveStatus::Infeasible,
                    values: vec![],
                    objective: f64::NAN,
                    best_bound: f64::NAN,
                    nodes: 0,
                    nodes_per_thread: vec![],
                    simplex_iterations: 0,
                    solve_seconds: total,
                    stats: SolveStats {
                        total_seconds: total,
                        presolve_seconds,
                        ..SolveStats::default()
                    },
                });
            }
            Presolved::Reduced(red) => {
                let eliminated_vars = red.eliminated_vars();
                let eliminated_rows =
                    model.num_constraints().saturating_sub(red.model.num_constraints());
                options
                    .observer
                    .emit(|| SolverEvent::Presolve { eliminated_vars, eliminated_rows });
                let shrunk = eliminated_vars > 0 || eliminated_rows > 0;
                if shrunk {
                    let red = Arc::new(red);
                    let mut inner = options.clone();
                    inner.presolve = false;
                    // Symmetry candidates are indexed by the caller's
                    // columns; presolve re-shapes the model, so they do not
                    // survive the reduction.
                    inner.symmetry_candidates = Arc::new(Vec::new());
                    // A feed publishes points in the caller's column space;
                    // route them through the same presolve mapping as warm
                    // starts so the reduced search can consume them.
                    if let Some(feed) = inner.incumbent_feed.take() {
                        let map_red = Arc::clone(&red);
                        let tol = options.integrality_tol.max(options.feasibility_tol);
                        inner.incumbent_feed = Some(
                            feed.mapped(Arc::new(move |p: &[f64]| map_red.presolve_point(p, tol))),
                        );
                    }
                    let mut reduced_model = red.model.clone();
                    if let Some(ws) = model.warm_start() {
                        if let Some(rws) = red.presolve_point(
                            ws,
                            options.integrality_tol.max(options.feasibility_tol),
                        ) {
                            let _ = reduced_model.set_warm_start(rws);
                        }
                    }
                    let sol = reduced_model.solve_with(&inner)?;
                    let values =
                        if sol.has_incumbent() { red.postsolve(sol.values()) } else { vec![] };
                    let total = start.elapsed().as_secs_f64();
                    let stats = SolveStats {
                        total_seconds: total,
                        presolve_seconds: sol.stats.presolve_seconds + presolve_seconds,
                        ..sol.stats
                    };
                    return Ok(Solution {
                        status: sol.status,
                        values,
                        objective: sol.objective,
                        best_bound: sol.best_bound,
                        nodes: sol.nodes,
                        nodes_per_thread: sol.nodes_per_thread.clone(),
                        simplex_iterations: sol.simplex_iterations,
                        solve_seconds: total,
                        stats,
                    });
                }
            }
        }
    }

    let sf = StandardForm::from_model(model, options);
    solve_on_form(model, options, sf, None, None, None, start, presolve_seconds)
}

/// The shared back half of [`solve`] and [`solve_session`]: root cuts,
/// heuristics and branch and bound over a prepared standard form. A
/// resumed session passes the carried `root_basis` (remapped to `sf`'s
/// columns) so the serial root node re-enters warm, and `capture` to
/// receive the final form + basis for the next re-solve.
#[allow(clippy::too_many_arguments)]
pub(crate) fn solve_on_form(
    model: &Model,
    options: &SolverOptions,
    mut sf: StandardForm,
    root_basis: Option<BasisSnapshot>,
    carried_bound: Option<f64>,
    capture: Option<&mut Option<ResumeState>>,
    start: Instant,
    presolve_seconds: f64,
) -> Result<Solution> {
    let resumed = carried_bound.is_some();
    // Integer columns ordered by branch priority (desc), then index.
    let mut int_cols: Vec<usize> =
        (0..model.num_vars()).filter(|&j| model.vars[j].kind != VarKind::Continuous).collect();
    int_cols.sort_by_key(|&j| (-model.vars[j].branch_priority, j));

    // Root bounds are the standard form's clamped bounds (what a fresh
    // simplex starts from), with integer bounds rounded inward.
    let mut root_bounds: Vec<(f64, f64)> =
        (0..model.num_vars()).map(|j| (sf.lb[j], sf.ub[j])).collect();
    for &j in &int_cols {
        let l = root_bounds[j].0.ceil();
        let u = root_bounds[j].1.floor();
        root_bounds[j] = (l, u);
        if l > u {
            options.observer.emit(|| SolverEvent::Terminated {
                status: SolveStatus::Infeasible,
                reason: TerminationReason::ProvenInfeasible,
            });
            let total = start.elapsed().as_secs_f64();
            return Ok(Solution {
                status: SolveStatus::Infeasible,
                values: vec![],
                objective: f64::NAN,
                best_bound: f64::NAN,
                nodes: 0,
                nodes_per_thread: vec![],
                simplex_iterations: 0,
                solve_seconds: total,
                stats: SolveStats {
                    total_seconds: total,
                    presolve_seconds,
                    ..SolveStats::default()
                },
            });
        }
    }

    // Root cutting planes: tighten the shared form before any worker is
    // built, so every search thread prices the surviving cuts. A resumed
    // search skips re-separation: the carried form already holds every cut
    // of the previous search (all still valid after a restriction), and a
    // fresh separation pass on top of them mostly perturbs the search
    // while growing every LP.
    let mut cut_stats = crate::cuts::RootCutStats::default();
    if options.cuts
        && !resumed
        && options.max_cut_rounds > 0
        && !int_cols.is_empty()
        && (options.gomory_cuts || options.cover_cuts)
    {
        cut_stats =
            crate::cuts::root_separation(model, &mut sf, options, &int_cols, &root_bounds, start);
    }

    // Verified symmetry: lex-leader rows into the shared form (every search
    // thread prices them) and a propagation plan armed on every worker.
    // Disabled whenever a resume capture is requested or the search resumes
    // from carried state — a session's carried form must stay
    // representative-free, because a later model delta can re-rank the
    // orbit representatives and turn the lex rows invalid.
    let mut symmetry_plan: Option<Arc<crate::symmetry::SymmetryPlan>> = None;
    let mut symmetry_orbits: u64 = 0;
    if (options.symmetry_breaking || options.orbital_fixing)
        && capture.is_none()
        && !resumed
        && !options.symmetry_candidates.is_empty()
        && !int_cols.is_empty()
    {
        if let Some(plan) =
            crate::symmetry::build_plan(model, &options.symmetry_candidates, &root_bounds)
        {
            let mut rows = 0usize;
            if options.symmetry_breaking {
                let big = sf.big;
                for cut in plan.lex_cuts() {
                    // Installed directly (not through the cut pool): lex rows
                    // are structural symmetry breakers, not violated cuts —
                    // the pool's violation filter would drop them all.
                    sf.add_cut_row(&cut.coeffs, cut.rhs, -big, 0.0);
                    rows += 1;
                }
            }
            symmetry_orbits = plan.orbits;
            let (generators, orbits) = (plan.generators, plan.orbits);
            options.observer.emit(|| SolverEvent::SymmetryDetected { generators, orbits, rows });
            if options.orbital_fixing {
                symmetry_plan = Some(Arc::new(plan));
            }
        }
    }
    let sf = sf;

    // Warm start from a user hint.
    let warm = model.warm_start().and_then(|ws| {
        if model.is_feasible(ws, options.integrality_tol.max(options.feasibility_tol)) {
            Some((ws.to_vec(), internal_objective(model, &sf, ws)))
        } else {
            None
        }
    });
    if let Some((_, obj)) = &warm {
        let objective = sf.user_objective(*obj);
        // No bound is proven before the root solves; the warm-start
        // incumbent is reported against an open (infinite) bound.
        let bound = if sf.maximize { f64::INFINITY } else { f64::NEG_INFINITY };
        options.observer.emit(|| SolverEvent::Incumbent { objective, bound, gap: f64::INFINITY });
    }

    // Root primal heuristics: dive the relaxation and search RINS/RENS
    // neighborhoods for a strong starting incumbent; improvements merge
    // into `warm` so both search modes prune from the first node.
    let mut heur = crate::heuristics::HeuristicOutcome::default();
    let warm = if options.heuristics && !int_cols.is_empty() && !options.cancelled() {
        crate::heuristics::run_root(
            model,
            &sf,
            options,
            &int_cols,
            &root_bounds,
            warm,
            start,
            &mut heur,
        )
    } else {
        warm
    };

    let threads = options.effective_threads();
    let outcome = if threads <= 1 {
        serial_search(
            model,
            &sf,
            options,
            &int_cols,
            &root_bounds,
            warm,
            start,
            root_basis.map(Arc::new),
            carried_bound.unwrap_or(f64::NEG_INFINITY),
            capture,
            symmetry_plan,
        )?
    } else {
        let out = parallel::search(
            model,
            &sf,
            options,
            &int_cols,
            &root_bounds,
            warm,
            start,
            threads,
            symmetry_plan,
        )?;
        // Parallel workers keep their bases and in-tree cuts private; the
        // session carries the shared root form (with its root cuts) cold.
        if let Some(cap) = capture {
            let bound = if out.hit_limit { out.best_bound_internal } else { out.incumbent_obj };
            *cap = Some(ResumeState { sf: sf.clone(), basis: None, bound });
        }
        out
    };

    let solve_seconds = start.elapsed().as_secs_f64();
    let status = match (&outcome.incumbent, outcome.hit_limit) {
        (Some(_), false) => SolveStatus::Optimal,
        (Some(_), true) => SolveStatus::Feasible,
        (None, false) => SolveStatus::Infeasible,
        (None, true) => SolveStatus::Unknown,
    };

    // Unbounded detection: an incumbent resting on a clamped infinite bound
    // with a nonzero objective coefficient signals a true ray.
    let mut status = status;
    if let Some(values) = &outcome.incumbent {
        let big = options.infinite_bound;
        for (j, &x) in values.iter().enumerate() {
            if sf.clamped[j] && sf.c[j] != 0.0 && x.abs() >= big * (1.0 - 1e-6) {
                status = SolveStatus::Unbounded;
            }
        }
    }
    // Cancellation overrides the limit statuses but never a completed proof
    // (optimality, infeasibility or unboundedness reached before the token
    // was noticed stands).
    if outcome.interrupted && matches!(status, SolveStatus::Feasible | SolveStatus::Unknown) {
        status = SolveStatus::Interrupted;
    }

    let (values, objective) = match &outcome.incumbent {
        Some(v) => (v.clone(), sf.user_objective(outcome.incumbent_obj)),
        None => (vec![], f64::NAN),
    };
    let best_bound = if outcome.best_bound_internal.is_finite() {
        sf.user_objective(outcome.best_bound_internal)
    } else if status == SolveStatus::Optimal {
        objective
    } else if sf.maximize {
        f64::INFINITY
    } else {
        f64::NEG_INFINITY
    };

    let reason = termination_reason(options, &outcome, status, start);
    options.observer.emit(|| SolverEvent::Terminated { status, reason });

    Ok(Solution {
        status,
        values,
        objective,
        best_bound,
        nodes: outcome.nodes,
        nodes_per_thread: outcome.nodes_per_thread.clone(),
        simplex_iterations: outcome.simplex_iterations + cut_stats.simplex_iterations,
        solve_seconds,
        stats: SolveStats {
            total_seconds: solve_seconds,
            presolve_seconds,
            simplex_seconds: outcome.simplex_seconds + cut_stats.simplex_seconds,
            factor_seconds: outcome.factor_seconds + cut_stats.factor_seconds,
            nodes: outcome.nodes,
            nodes_pruned: outcome.pruned,
            simplex_iterations: outcome.simplex_iterations + cut_stats.simplex_iterations,
            refactorizations: outcome.refactorizations + cut_stats.refactorizations,
            incumbents: outcome.incumbents + heur.accepted,
            steals: outcome.steals,
            warm_starts: outcome.warm_starts,
            cold_starts: outcome.cold_starts,
            cuts_generated: cut_stats.generated + outcome.cuts_generated,
            cuts_applied: cut_stats.applied + outcome.cuts_applied,
            cuts_aged_out: cut_stats.aged_out,
            separation_seconds: cut_stats.separation_seconds + outcome.separation_seconds,
            heuristic_seconds: heur.seconds,
            propagation_seconds: outcome.propagation_seconds,
            heuristic_incumbents: heur.accepted,
            propagated_bounds: outcome.propagated_bounds,
            propagation_fathoms: outcome.propagation_fathoms,
            conflict_cuts_generated: outcome.conflict_cuts_generated,
            conflict_cuts_applied: outcome.conflict_cuts_applied,
            symmetry_orbits,
            orbital_fixings: outcome.orbital_fixings,
            strong_branch_probes: outcome.strong_branch_probes,
        },
    })
}

/// Why the search stopped, derived from the outcome flags and the limits.
fn termination_reason(
    options: &SolverOptions,
    outcome: &SearchOutcome,
    status: SolveStatus,
    start: Instant,
) -> TerminationReason {
    if outcome.interrupted {
        return TerminationReason::Cancelled;
    }
    if !outcome.hit_limit {
        return match status {
            SolveStatus::Infeasible => TerminationReason::ProvenInfeasible,
            SolveStatus::Unbounded => TerminationReason::ProvenUnbounded,
            _ => TerminationReason::GapClosed,
        };
    }
    if node_limit_hit(options, outcome.nodes) {
        TerminationReason::NodeLimit
    } else if options.time_limit.is_finite() && start.elapsed().as_secs_f64() > options.time_limit {
        TerminationReason::TimeLimit
    } else {
        TerminationReason::Numerics
    }
}

/// The serial search (`threads = 1`): one [`NodeWorker`], one node stack or
/// heap, node order identical to the historical single-threaded solver.
#[allow(clippy::too_many_arguments)]
fn serial_search(
    model: &Model,
    sf: &StandardForm,
    options: &SolverOptions,
    int_cols: &[usize],
    root_bounds: &[(f64, f64)],
    warm: Option<(Vec<f64>, f64)>,
    start: Instant,
    root_basis: Option<Arc<BasisSnapshot>>,
    root_bound: f64,
    capture: Option<&mut Option<ResumeState>>,
    symmetry: Option<Arc<crate::symmetry::SymmetryPlan>>,
) -> Result<SearchOutcome> {
    let mut worker = NodeWorker::new(model, sf, options, int_cols, root_bounds, start, true);
    if let Some(plan) = symmetry {
        worker.arm_symmetry(plan);
    }
    let mut incumbent = LocalIncumbent::from_warm(warm);

    // A carried basis enters through the root node: `enter_node` restores
    // it like any parent basis and falls back cold if the factorization
    // fails, so a stale snapshot degrades gracefully. A carried dual bound
    // seeds the root, so a re-solve whose refreshed incumbent already
    // matches the previous optimum closes the gap on the first pop.
    let root = OpenNode { parent_basis: root_basis, bound: root_bound, ..OpenNode::root() };
    let best_bound_internal = match options.node_order {
        NodeOrder::DepthFirst => run_dfs(&mut worker, &mut incumbent, root_bounds, root)?,
        NodeOrder::BestBound => run_best_bound(&mut worker, &mut incumbent, root_bounds, root)?,
    };

    // Capture the worker's final form (base + root cuts + every in-tree
    // and conflict cut it appended; structural bounds untouched because
    // `set_bounds` edits only the working copies) and its last basis.
    if let Some(cap) = capture {
        let bound = if worker.hit_limit { best_bound_internal } else { incumbent.obj };
        *cap = Some(ResumeState {
            sf: worker.lp.form().clone(),
            basis: Some(worker.lp.snapshot()),
            bound,
        });
    }

    let nodes = worker.nodes;
    options.observer.emit(|| SolverEvent::ThreadStats { worker: 0, nodes, steals: 0 });
    Ok(SearchOutcome {
        incumbent: incumbent.values,
        incumbent_obj: incumbent.obj,
        best_bound_internal,
        nodes: worker.nodes,
        nodes_per_thread: vec![worker.nodes],
        simplex_iterations: worker.lp.iterations,
        hit_limit: worker.hit_limit,
        interrupted: worker.interrupted,
        pruned: worker.pruned,
        incumbents: incumbent.accepted,
        steals: 0,
        simplex_seconds: worker.lp.simplex_seconds,
        factor_seconds: worker.lp.factor_seconds,
        refactorizations: worker.lp.refactorizations,
        warm_starts: worker.warm_starts,
        cold_starts: worker.cold_starts,
        cuts_generated: worker.cuts_generated,
        cuts_applied: worker.cuts_applied,
        separation_seconds: worker.separation_seconds,
        propagated_bounds: worker.propagated_bounds,
        propagation_fathoms: worker.propagation_fathoms,
        propagation_seconds: worker.propagation_seconds,
        conflict_cuts_generated: worker.conflict_cuts_generated,
        conflict_cuts_applied: worker.conflict_cuts_applied,
        orbital_fixings: worker.orbital_fixings,
        strong_branch_probes: worker.strong_branch_probes,
    })
}

/// Plain owned incumbent for the serial search.
pub(crate) struct LocalIncumbent {
    pub(crate) values: Option<Vec<f64>>,
    pub(crate) obj: f64,
    /// Offers accepted (warm starts not counted).
    pub(crate) accepted: u64,
}

impl LocalIncumbent {
    pub(crate) fn from_warm(warm: Option<(Vec<f64>, f64)>) -> Self {
        match warm {
            Some((v, o)) => LocalIncumbent { values: Some(v), obj: o, accepted: 0 },
            None => LocalIncumbent { values: None, obj: f64::INFINITY, accepted: 0 },
        }
    }
}

impl Incumbent for LocalIncumbent {
    fn best_obj(&self) -> f64 {
        self.obj
    }
    fn offer(&mut self, values: &[f64], obj: f64) -> bool {
        if obj < self.obj {
            self.obj = obj;
            self.values = Some(values.to_vec());
            self.accepted += 1;
            true
        } else {
            false
        }
    }
}

fn node_limit_hit(options: &SolverOptions, nodes: u64) -> bool {
    options.node_limit != 0 && nodes >= options.node_limit as u64
}

/// Polls the registered [`IncumbentFeed`](crate::IncumbentFeed) (if any)
/// and offers a freshly published point to `incumbent`. Points are vetted
/// exactly like user warm starts — full-length, feasible at the solver's
/// tolerances — so a bad publication is dropped rather than corrupting the
/// search. Returns whether the incumbent improved. Shared by the serial
/// loops and every parallel worker (each keeps its own `cursor`).
pub(crate) fn poll_feed(
    worker: &NodeWorker<'_>,
    cursor: &mut u64,
    incumbent: &mut dyn Incumbent,
    bound_internal: f64,
) -> bool {
    let Some(feed) = &worker.options.incumbent_feed else {
        return false;
    };
    let Some(point) = feed.poll(cursor) else {
        return false;
    };
    let tol = worker.options.integrality_tol.max(worker.options.feasibility_tol);
    if point.len() != worker.model.num_vars() || !worker.model.is_feasible(&point, tol) {
        return false;
    }
    let obj = internal_objective(worker.model, worker.sf, &point);
    if incumbent.offer(&point, obj) {
        worker.emit_incumbent(obj, bound_internal);
        true
    } else {
        false
    }
}

fn run_dfs(
    worker: &mut NodeWorker<'_>,
    incumbent: &mut LocalIncumbent,
    root_bounds: &[(f64, f64)],
    root: OpenNode,
) -> Result<f64> {
    let options = worker.options;
    let mut stack = vec![root];
    let mut best_open_bound = f64::INFINITY;
    let mut feed_cursor = 0u64;
    while let Some(node) = stack.pop() {
        if options.cancelled() {
            worker.interrupted = true;
        }
        // Same cadence as the cancel check: a point published by a racing
        // portfolio arm lands before this node is bounded or evaluated.
        poll_feed(worker, &mut feed_cursor, incumbent, node.bound);
        if worker.interrupted || worker.time_up() || node_limit_hit(options, worker.nodes) {
            worker.hit_limit = true;
            best_open_bound = best_open_bound.min(node.bound);
            for n in &stack {
                best_open_bound = best_open_bound.min(n.bound);
            }
            break;
        }
        if gap_closed(options, incumbent.best_obj(), node.bound) {
            worker.note_pruned(node.bound);
            continue;
        }
        worker.enter_node(&node, root_bounds);
        worker.dual_bound = stack.iter().fold(f64::INFINITY, |m, n| m.min(n.bound));
        let (children, bound) = worker.eval_node(&node, incumbent)?;
        if worker.hit_limit {
            best_open_bound = best_open_bound.min(bound);
            for n in &stack {
                best_open_bound = best_open_bound.min(n.bound);
            }
            break;
        }
        // DFS: push far child first so the near child pops next.
        for c in children.into_iter().rev() {
            stack.push(c);
        }
    }
    if !worker.hit_limit {
        Ok(incumbent.obj)
    } else {
        Ok(best_open_bound.min(incumbent.obj))
    }
}

fn run_best_bound(
    worker: &mut NodeWorker<'_>,
    incumbent: &mut LocalIncumbent,
    root_bounds: &[(f64, f64)],
    root: OpenNode,
) -> Result<f64> {
    use std::collections::BinaryHeap;

    let options = worker.options;
    let mut heap = BinaryHeap::new();
    heap.push(HeapNode(root));
    let mut best_open_bound = f64::INFINITY;
    let mut feed_cursor = 0u64;
    while let Some(HeapNode(node)) = heap.pop() {
        if options.cancelled() {
            worker.interrupted = true;
        }
        poll_feed(worker, &mut feed_cursor, incumbent, node.bound);
        if worker.interrupted || worker.time_up() || node_limit_hit(options, worker.nodes) {
            worker.hit_limit = true;
            best_open_bound = node.bound;
            break;
        }
        if gap_closed(options, incumbent.best_obj(), node.bound) {
            worker.note_pruned(node.bound);
            continue;
        }
        worker.enter_node(&node, root_bounds);
        worker.dual_bound = heap.peek().map_or(f64::INFINITY, |h| h.0.bound);
        let (children, bound) = worker.eval_node(&node, incumbent)?;
        if worker.hit_limit {
            best_open_bound = bound;
            break;
        }
        for c in children {
            heap.push(HeapNode(c));
        }
    }
    if !worker.hit_limit {
        Ok(incumbent.obj)
    } else {
        Ok(best_open_bound.min(incumbent.obj))
    }
}

/// Min-bound-first ordering adaptor for [`std::collections::BinaryHeap`].
pub(crate) struct HeapNode(pub(crate) OpenNode);

impl PartialEq for HeapNode {
    fn eq(&self, other: &Self) -> bool {
        self.0.bound == other.0.bound
    }
}
impl Eq for HeapNode {}
impl PartialOrd for HeapNode {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapNode {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: invert to pop the smallest bound first.
        other.0.bound.partial_cmp(&self.0.bound).unwrap_or(std::cmp::Ordering::Equal)
    }
}

pub(crate) fn push_delta(
    base: &[(usize, f64, f64)],
    delta: (usize, f64, f64),
) -> Vec<(usize, f64, f64)> {
    let mut v = Vec::with_capacity(base.len() + 1);
    v.extend_from_slice(base);
    v.push(delta);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinExpr, Objective};

    /// A node whose parent snapshot will not factorize must fall back to a
    /// cold (slack-basis) start and still solve its LP correctly — the
    /// recovery path `enter_node` takes when `restore_snapshot` reports a
    /// singular basis.
    #[test]
    fn singular_parent_snapshot_falls_back_cold_and_solves() {
        let mut model = Model::new("fallback");
        let xs: Vec<_> =
            (0..3).map(|i| model.integer(format!("x{i}"), 0.0, 5.0).unwrap()).collect();
        let mut cover = LinExpr::new();
        let mut mix = LinExpr::new();
        let mut obj = LinExpr::new();
        for (i, &x) in xs.iter().enumerate() {
            cover.add_term(x, 1.0);
            mix.add_term(x, 1.0 + (i % 2) as f64);
            obj.add_term(x, 1.0 + i as f64 * 0.7);
        }
        model.add_ge("cover", cover, 7.0);
        model.add_le("mix", mix, 20.0);
        model.set_objective(Objective::Minimize, obj);

        let options = SolverOptions::default().threads(1);
        let sf = StandardForm::from_model(&model, &options);
        let int_cols: Vec<usize> = (0..model.num_vars()).collect();
        let root_bounds: Vec<(f64, f64)> =
            (0..model.num_vars()).map(|j| (sf.lb[j].ceil(), sf.ub[j].floor())).collect();
        let start = Instant::now();
        let mut worker =
            NodeWorker::new(&model, &sf, &options, &int_cols, &root_bounds, start, false);
        let mut inc = LocalIncumbent::from_warm(None);

        // Solve the root properly so the worker is mid-search state.
        let root = OpenNode::root();
        worker.enter_node(&root, &root_bounds);
        worker.eval_node(&root, &mut inc).unwrap();
        assert_eq!(worker.cold_starts, 1, "the root starts cold");

        // Hand the worker a node whose parent basis is corrupt: duplicating
        // a basic column makes the basis matrix singular for any kernel.
        let mut snap = worker.lp.snapshot();
        let last = snap.basis[snap.basis.len() - 1];
        snap.basis[0] = last;
        let node = OpenNode {
            deltas: vec![(0, 0.0, 2.0)],
            bound: f64::NEG_INFINITY,
            branched: None,
            parent_basis: Some(Arc::new(snap)),
        };
        worker.enter_node(&node, &root_bounds);
        assert_eq!(worker.warm_starts, 0, "singular snapshot must not count as warm");
        assert_eq!(worker.cold_starts, 2, "corrupt snapshot must fall back to a cold start");

        // The fallback leaves a fully usable state: the node LP solves and
        // produces a finite bound.
        let (_, bound) = worker.eval_node(&node, &mut inc).unwrap();
        assert!(bound.is_finite(), "node LP must still solve after the fallback");
        assert!(!worker.hit_limit, "the fallback must not be treated as a limit");
    }

    /// A healthy parent snapshot restores and counts as a warm start.
    #[test]
    fn healthy_parent_snapshot_counts_warm() {
        let mut model = Model::new("warm");
        let x = model.integer("x", 0.0, 9.0).unwrap();
        let y = model.integer("y", 0.0, 9.0).unwrap();
        model.add_ge("r", LinExpr::term(x, 2.0) + LinExpr::term(y, 3.0), 11.0);
        model.set_objective(Objective::Minimize, LinExpr::term(x, 1.0) + LinExpr::term(y, 1.3));

        let options = SolverOptions::default().threads(1);
        let sf = StandardForm::from_model(&model, &options);
        let int_cols: Vec<usize> = (0..model.num_vars()).collect();
        let root_bounds: Vec<(f64, f64)> =
            (0..model.num_vars()).map(|j| (sf.lb[j].ceil(), sf.ub[j].floor())).collect();
        let start = Instant::now();
        let mut worker =
            NodeWorker::new(&model, &sf, &options, &int_cols, &root_bounds, start, false);
        let mut inc = LocalIncumbent::from_warm(None);

        let root = OpenNode::root();
        worker.enter_node(&root, &root_bounds);
        worker.eval_node(&root, &mut inc).unwrap();

        let snap = Arc::new(worker.lp.snapshot());
        let node = OpenNode {
            deltas: vec![(0, 0.0, 3.0)],
            bound: f64::NEG_INFINITY,
            branched: None,
            parent_basis: Some(Arc::clone(&snap)),
        };
        worker.enter_node(&node, &root_bounds);
        assert_eq!(worker.warm_starts, 1, "healthy snapshot must restore warm");
        assert_eq!(worker.cold_starts, 1, "only the root started cold");
        let (_, bound) = worker.eval_node(&node, &mut inc).unwrap();
        assert!(bound.is_finite());
    }
}
