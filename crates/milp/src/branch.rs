//! Branch and bound over the LP relaxation.
//!
//! Nodes are explored depth-first (default) or best-bound-first. Because the
//! dual simplex state stays dual-feasible under arbitrary bound changes, the
//! tree shares a *single* simplex instance: entering a node applies its bound
//! deltas, leaving it restores them, and each re-optimization is warm-started
//! from wherever the basis happens to be.

use crate::error::{MilpError, Result};
use crate::model::{Model, VarKind};
use crate::presolve::{presolve, Presolved};
use crate::options::{BranchRule, NodeOrder, SolverOptions};
use crate::simplex::{LpStatus, Simplex};
use crate::solution::{Solution, SolveStatus};
use crate::standard::StandardForm;
use std::time::Instant;

/// Per-variable pseudo-cost statistics.
#[derive(Debug, Clone, Copy, Default)]
struct PseudoCost {
    down_sum: f64,
    down_n: u32,
    up_sum: f64,
    up_n: u32,
}

impl PseudoCost {
    fn down(&self, fallback: f64) -> f64 {
        if self.down_n == 0 {
            fallback
        } else {
            self.down_sum / self.down_n as f64
        }
    }
    fn up(&self, fallback: f64) -> f64 {
        if self.up_n == 0 {
            fallback
        } else {
            self.up_sum / self.up_n as f64
        }
    }
}

/// One open node in the search: the bound deltas that define it relative to
/// the root, plus its parent's LP bound.
#[derive(Debug, Clone)]
struct OpenNode {
    /// `(column, lb, ub)` deltas from the root relaxation.
    deltas: Vec<(usize, f64, f64)>,
    /// LP bound inherited from the parent (internal minimization scale).
    bound: f64,
    /// Branch bookkeeping for pseudo-costs: `(column, fractionality, up?)`.
    branched: Option<(usize, f64, bool)>,
}

struct Search<'a> {
    model: &'a Model,
    sf: &'a StandardForm,
    lp: Simplex<'a>,
    options: &'a SolverOptions,
    int_cols: Vec<usize>,
    pseudo: Vec<PseudoCost>,
    incumbent: Option<Vec<f64>>,
    /// Internal-scale objective of the incumbent.
    incumbent_obj: f64,
    nodes: u64,
    start: Instant,
    hit_limit: bool,
}

/// Entry point used by [`Model::solve_with`].
pub(crate) fn solve(model: &Model, options: &SolverOptions) -> Result<Solution> {
    let start = Instant::now();
    // Validate expressions for NaN up front.
    if model.objective().has_nan() {
        return Err(MilpError::NotANumber { context: "objective".into() });
    }
    for row in &model.rows {
        if row.expr.has_nan() || row.rhs.is_nan() {
            return Err(MilpError::NotANumber { context: format!("constraint `{}`", row.name) });
        }
    }

    if model.num_vars() == 0 {
        // Constant problem: feasible iff every row holds with no variables.
        let feasible = model.rows.iter().all(|r| {
            let lhs = r.expr.constant();
            match r.sense {
                crate::ConstraintSense::Le => lhs <= r.rhs + options.feasibility_tol,
                crate::ConstraintSense::Ge => lhs >= r.rhs - options.feasibility_tol,
                crate::ConstraintSense::Eq => (lhs - r.rhs).abs() <= options.feasibility_tol,
            }
        });
        let obj = model.objective().constant();
        return Ok(Solution {
            status: if feasible { SolveStatus::Optimal } else { SolveStatus::Infeasible },
            values: vec![],
            objective: obj,
            best_bound: obj,
            nodes: 0,
            simplex_iterations: 0,
            solve_seconds: start.elapsed().as_secs_f64(),
        });
    }

    // Presolve, solve the reduced model, postsolve the incumbent.
    if options.presolve {
        match presolve(model, options.feasibility_tol)? {
            Presolved::Infeasible => {
                return Ok(Solution {
                    status: SolveStatus::Infeasible,
                    values: vec![],
                    objective: f64::NAN,
                    best_bound: f64::NAN,
                    nodes: 0,
                    simplex_iterations: 0,
                    solve_seconds: start.elapsed().as_secs_f64(),
                });
            }
            Presolved::Reduced(red) => {
                let shrunk = red.eliminated_vars() > 0
                    || red.model.num_constraints() < model.num_constraints();
                if shrunk {
                    let mut inner = options.clone();
                    inner.presolve = false;
                    let mut reduced_model = red.model.clone();
                    if let Some(ws) = model.warm_start() {
                        if let Some(rws) =
                            red.presolve_point(ws, options.integrality_tol.max(options.feasibility_tol))
                        {
                            let _ = reduced_model.set_warm_start(rws);
                        }
                    }
                    let sol = reduced_model.solve_with(&inner)?;
                    let values = if sol.status().has_solution() {
                        red.postsolve(sol.values())
                    } else {
                        vec![]
                    };
                    return Ok(Solution {
                        status: sol.status,
                        values,
                        objective: sol.objective,
                        best_bound: sol.best_bound,
                        nodes: sol.nodes,
                        simplex_iterations: sol.simplex_iterations,
                        solve_seconds: start.elapsed().as_secs_f64(),
                    });
                }
            }
        }
    }

    let sf = StandardForm::from_model(model, options);
    let mut lp = Simplex::new(&sf, options.refactor_interval, options.simplex_iteration_limit);
    if options.time_limit.is_finite() {
        lp.deadline = Some(start + std::time::Duration::from_secs_f64(options.time_limit));
    }

    // Integer columns ordered by branch priority (desc), then index.
    let mut int_cols: Vec<usize> = (0..model.num_vars())
        .filter(|&j| model.vars[j].kind != VarKind::Continuous)
        .collect();
    int_cols.sort_by_key(|&j| (-model.vars[j].branch_priority, j));

    // Round integer bounds inward at the root.
    for &j in &int_cols {
        let l = lp.lb[j].ceil();
        let u = lp.ub[j].floor();
        lp.set_bounds(j, l, u);
        if l > u {
            return Ok(Solution {
                status: SolveStatus::Infeasible,
                values: vec![],
                objective: f64::NAN,
                best_bound: f64::NAN,
                nodes: 0,
                simplex_iterations: 0,
                solve_seconds: start.elapsed().as_secs_f64(),
            });
        }
    }
    lp.refresh();

    let mut search = Search {
        model,
        sf: &sf,
        lp,
        options,
        int_cols,
        pseudo: vec![PseudoCost::default(); model.num_vars()],
        incumbent: None,
        incumbent_obj: f64::INFINITY,
        nodes: 0,
        start,
        hit_limit: false,
    };

    // Warm start from a user hint.
    if let Some(ws) = model.warm_start() {
        if model.is_feasible(ws, options.integrality_tol.max(options.feasibility_tol)) {
            let internal = internal_objective(model, &sf, ws);
            search.incumbent = Some(ws.to_vec());
            search.incumbent_obj = internal;
        }
    }

    let best_bound_internal = search.run()?;

    let simplex_iterations = search.lp.iterations;
    let solve_seconds = start.elapsed().as_secs_f64();
    let status = match (&search.incumbent, search.hit_limit) {
        (Some(_), false) => SolveStatus::Optimal,
        (Some(_), true) => SolveStatus::Feasible,
        (None, false) => SolveStatus::Infeasible,
        (None, true) => SolveStatus::Unknown,
    };

    // Unbounded detection: an incumbent resting on a clamped infinite bound
    // with a nonzero objective coefficient signals a true ray.
    let mut status = status;
    if let Some(values) = &search.incumbent {
        let big = options.infinite_bound;
        for (j, &x) in values.iter().enumerate() {
            if sf.clamped[j] && sf.c[j] != 0.0 && x.abs() >= big * (1.0 - 1e-6) {
                status = SolveStatus::Unbounded;
            }
        }
    }

    let (values, objective) = match &search.incumbent {
        Some(v) => (v.clone(), sf.user_objective(search.incumbent_obj)),
        None => (vec![], f64::NAN),
    };
    let best_bound = if best_bound_internal.is_finite() {
        sf.user_objective(best_bound_internal)
    } else if status == SolveStatus::Optimal {
        objective
    } else if sf.maximize {
        f64::INFINITY
    } else {
        f64::NEG_INFINITY
    };

    Ok(Solution {
        status,
        values,
        objective,
        best_bound,
        nodes: search.nodes,
        simplex_iterations,
        solve_seconds,
    })
}

fn internal_objective(model: &Model, sf: &StandardForm, values: &[f64]) -> f64 {
    let user = model.objective().eval(values);
    let signed = user - sf.obj_offset;
    if sf.maximize {
        -signed
    } else {
        signed
    }
}

impl Search<'_> {
    /// Runs the search; returns the final global lower bound (internal
    /// scale).
    fn run(&mut self) -> Result<f64> {
        let root = OpenNode { deltas: vec![], bound: f64::NEG_INFINITY, branched: None };
        match self.options.node_order {
            NodeOrder::DepthFirst => self.run_dfs(root),
            NodeOrder::BestBound => self.run_best_bound(root),
        }
    }

    fn time_up(&self) -> bool {
        self.options.time_limit.is_finite()
            && self.start.elapsed().as_secs_f64() > self.options.time_limit
    }

    fn node_limit_hit(&self) -> bool {
        self.options.node_limit != 0 && self.nodes >= self.options.node_limit as u64
    }

    fn gap_closed(&self, bound: f64) -> bool {
        if self.incumbent.is_none() {
            return false;
        }
        let inc = self.incumbent_obj;
        bound >= inc - self.options.absolute_gap
            || bound >= inc - self.options.relative_gap * inc.abs().max(1.0)
    }

    /// Solves the LP at the current bound state with one numerical retry.
    /// `Ok(None)` means the node could not be solved (deadline or numerics);
    /// the search stops gracefully with whatever incumbent exists.
    fn solve_node_lp(&mut self) -> Result<Option<LpStatus>> {
        match self.lp.optimize() {
            Ok(s) => Ok(Some(s)),
            Err(MilpError::IterationLimit { .. }) | Err(MilpError::SingularBasis) => {
                if self.time_up() {
                    return Ok(None);
                }
                self.lp.reset_to_slack_basis();
                match self.lp.optimize() {
                    Ok(s) => Ok(Some(s)),
                    Err(MilpError::IterationLimit { .. }) | Err(MilpError::SingularBasis) => {
                        Ok(None)
                    }
                    Err(e) => Err(e),
                }
            }
            Err(e) => Err(e),
        }
    }

    /// Most fractional / first / pseudo-cost selection among integer columns.
    fn pick_branch_var(&self, x: &[f64]) -> Option<(usize, f64)> {
        let tol = self.options.integrality_tol;
        let mut best: Option<(usize, f64, f64)> = None; // (col, value, score)
        // Respect priority classes: only consider the highest priority class
        // that contains a fractional variable (int_cols is priority-sorted).
        let mut active_priority: Option<i32> = None;
        for &j in &self.int_cols {
            let v = x[j];
            let frac = (v - v.round()).abs();
            if frac <= tol {
                continue;
            }
            let prio = self.model.vars[j].branch_priority;
            match active_priority {
                None => active_priority = Some(prio),
                Some(p) if prio < p => break,
                _ => {}
            }
            match self.options.branch_rule {
                BranchRule::FirstFractional => return Some((j, v)),
                BranchRule::MostFractional => {
                    // `frac` is already the distance to the nearest integer
                    // (∈ (tol, 0.5]); larger means more fractional.
                    let score = frac;
                    if best.map_or(true, |(_, _, s)| score > s) {
                        best = Some((j, v, score));
                    }
                }
                BranchRule::PseudoCost => {
                    let f = v - v.floor();
                    let pc = &self.pseudo[j];
                    let fallback = 1.0;
                    let score =
                        (pc.down(fallback) * f).max(1e-6) * (pc.up(fallback) * (1.0 - f)).max(1e-6);
                    if best.map_or(true, |(_, _, s)| score > s) {
                        best = Some((j, v, score));
                    }
                }
            }
        }
        best.map(|(j, v, _)| (j, v))
    }

    /// Tries rounding the LP point into an incumbent.
    fn try_rounding(&mut self, x: &[f64], _bound: f64) {
        if !self.options.rounding_heuristic {
            return;
        }
        let mut cand = x.to_vec();
        for &j in &self.int_cols {
            cand[j] = cand[j].round();
        }
        let tol = self.options.feasibility_tol.max(self.options.integrality_tol);
        if self.model.is_feasible(&cand, tol * 10.0) {
            let obj = internal_objective(self.model, self.sf, &cand);
            if obj < self.incumbent_obj {
                self.incumbent_obj = obj;
                self.incumbent = Some(cand);
            }
        }
    }

    fn record_pseudocost(&mut self, node: &OpenNode, child_bound: f64) {
        if let Some((j, frac, up)) = node.branched {
            if node.bound.is_finite() && child_bound.is_finite() {
                let degradation = (child_bound - node.bound).max(0.0);
                let pc = &mut self.pseudo[j];
                if up {
                    let per_unit = degradation / (1.0 - frac).max(1e-6);
                    pc.up_sum += per_unit;
                    pc.up_n += 1;
                } else {
                    let per_unit = degradation / frac.max(1e-6);
                    pc.down_sum += per_unit;
                    pc.down_n += 1;
                }
            }
        }
    }

    /// Evaluates one node: applies deltas are already in place. Returns the
    /// children to explore (empty when pruned/integral) and the node's LP
    /// bound.
    fn eval_node(&mut self, node: &OpenNode) -> Result<(Vec<OpenNode>, f64)> {
        self.nodes += 1;
        let status = match self.solve_node_lp()? {
            Some(s) => s,
            None => {
                // Unsolved node: stop the search conservatively.
                self.hit_limit = true;
                return Ok((vec![], node.bound));
            }
        };
        if status == LpStatus::Infeasible {
            return Ok((vec![], f64::INFINITY));
        }
        // The LP point is optimal for the *perturbed* costs; subtracting the
        // margin gives a valid bound for the true costs.
        let bound = self.lp.objective() - self.lp.bound_margin();
        self.record_pseudocost(node, bound);
        if self.gap_closed(bound) {
            return Ok((vec![], bound));
        }
        let full = self.lp.values();
        let x = &full[..self.model.num_vars()];
        match self.pick_branch_var(x) {
            None => {
                // Integral LP optimum: new incumbent.
                let obj = internal_objective(self.model, self.sf, x);
                if obj < self.incumbent_obj {
                    self.incumbent_obj = obj;
                    self.incumbent = Some(x.to_vec());
                }
                Ok((vec![], bound))
            }
            Some((j, v)) => {
                self.try_rounding(x, bound);
                if self.gap_closed(bound) {
                    return Ok((vec![], bound));
                }
                let frac = v - v.floor();
                let lb = self.lp.lb[j];
                let ub = self.lp.ub[j];
                let down = OpenNode {
                    deltas: push_delta(&node.deltas, (j, lb, v.floor())),
                    bound,
                    branched: Some((j, frac, false)),
                };
                let up = OpenNode {
                    deltas: push_delta(&node.deltas, (j, v.ceil(), ub)),
                    bound,
                    branched: Some((j, frac, true)),
                };
                // Explore the nearer child first under DFS.
                let children = if frac <= 0.5 { vec![down, up] } else { vec![up, down] };
                Ok((children, bound))
            }
        }
    }

    /// Applies a node's deltas on top of the root bounds.
    fn enter_node(&mut self, node: &OpenNode, root_bounds: &[(f64, f64)]) {
        // Reset every integer column touched by any delta path is expensive
        // to track precisely; reset all integer columns to root, then apply.
        for &j in &self.int_cols {
            let (l, u) = root_bounds[j];
            self.lp.set_bounds(j, l, u);
        }
        for &(j, l, u) in &node.deltas {
            self.lp.set_bounds(j, l, u);
        }
        self.lp.refresh();
    }

    fn run_dfs(&mut self, root: OpenNode) -> Result<f64> {
        let root_bounds: Vec<(f64, f64)> =
            (0..self.model.num_vars()).map(|j| (self.lp.lb[j], self.lp.ub[j])).collect();
        let mut stack = vec![root];
        let mut best_open_bound = f64::INFINITY;
        while let Some(node) = stack.pop() {
            if self.time_up() || self.node_limit_hit() {
                self.hit_limit = true;
                best_open_bound = best_open_bound.min(node.bound);
                for n in &stack {
                    best_open_bound = best_open_bound.min(n.bound);
                }
                break;
            }
            if self.gap_closed(node.bound) {
                continue;
            }
            self.enter_node(&node, &root_bounds);
            let (children, bound) = self.eval_node(&node)?;
            if self.hit_limit {
                best_open_bound = best_open_bound.min(bound);
                for n in &stack {
                    best_open_bound = best_open_bound.min(n.bound);
                }
                break;
            }
            // DFS: push far child first so the near child pops next.
            for c in children.into_iter().rev() {
                stack.push(c);
            }
        }
        if !self.hit_limit {
            Ok(self.incumbent_obj)
        } else {
            Ok(best_open_bound.min(self.incumbent_obj))
        }
    }

    fn run_best_bound(&mut self, root: OpenNode) -> Result<f64> {
        use std::cmp::Ordering;
        use std::collections::BinaryHeap;

        struct HeapNode(OpenNode);
        impl PartialEq for HeapNode {
            fn eq(&self, other: &Self) -> bool {
                self.0.bound == other.0.bound
            }
        }
        impl Eq for HeapNode {}
        impl PartialOrd for HeapNode {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for HeapNode {
            fn cmp(&self, other: &Self) -> Ordering {
                // Max-heap: invert to pop the smallest bound first.
                other.0.bound.partial_cmp(&self.0.bound).unwrap_or(Ordering::Equal)
            }
        }

        let root_bounds: Vec<(f64, f64)> =
            (0..self.model.num_vars()).map(|j| (self.lp.lb[j], self.lp.ub[j])).collect();
        let mut heap = BinaryHeap::new();
        heap.push(HeapNode(root));
        let mut best_open_bound = f64::INFINITY;
        while let Some(HeapNode(node)) = heap.pop() {
            if self.time_up() || self.node_limit_hit() {
                self.hit_limit = true;
                best_open_bound = node.bound;
                break;
            }
            if self.gap_closed(node.bound) {
                continue;
            }
            self.enter_node(&node, &root_bounds);
            let (children, bound) = self.eval_node(&node)?;
            if self.hit_limit {
                best_open_bound = bound;
                break;
            }
            for c in children {
                heap.push(HeapNode(c));
            }
        }
        if !self.hit_limit {
            Ok(self.incumbent_obj)
        } else {
            Ok(best_open_bound.min(self.incumbent_obj))
        }
    }
}

fn push_delta(base: &[(usize, f64, f64)], delta: (usize, f64, f64)) -> Vec<(usize, f64, f64)> {
    let mut v = Vec::with_capacity(base.len() + 1);
    v.extend_from_slice(base);
    v.push(delta);
    v
}
