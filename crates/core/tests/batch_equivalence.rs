//! Batch ↔ serial equivalence on random instance families.
//!
//! The batch engine's contract (DESIGN.md §8.8): a `BatchSession` member
//! returns the same status and objective as a serial one-at-a-time
//! `DeploymentSession` solve of the same `(problem, config)` — bitwise
//! with racing off (it is the same pipeline, plus verbatim cache
//! replays), within 1e-5 under portfolio racing (seeds can only
//! accelerate the search, not move a proven answer), and undisturbed for
//! the surviving members when another member is revoked mid-batch.
//!
//! Case counts are small: every case runs real branch-and-bound solves.

use ndp_core::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// A chain-shaped instance small enough to prove within the budget.
fn chain_instance(m: usize, seed: u64) -> ProblemInstance {
    let mut cfg = GeneratorConfig::typical(m);
    cfg.shape = GraphShape::Chain;
    let g = generate(&cfg, seed).expect("valid generator config");
    ProblemInstance::from_original(
        &g,
        Platform::homogeneous(4).expect("platform"),
        WeightedNoc::new(Mesh2D::square(2).expect("side"), NocParams::typical(), seed)
            .expect("noc"),
        0.95,
        3.0,
    )
    .expect("problem")
}

fn config(minimize_total: bool) -> OptimalConfig {
    OptimalConfig {
        objective: if minimize_total {
            DeployObjective::MinimizeTotalEnergy
        } else {
            DeployObjective::BalanceEnergy
        },
        solver: SolverOptions::default().time_limit(20.0).threads(1),
        ..OptimalConfig::default()
    }
}

fn serial_solve(problem: &ProblemInstance, cfg: &OptimalConfig) -> OptimalOutcome {
    DeploymentSession::builder(problem.clone())
        .path_mode(cfg.path_mode)
        .objective(cfg.objective)
        .warm_start_with_heuristic(cfg.warm_start_with_heuristic)
        .warm_start_deployment(cfg.warm_start_deployment.clone())
        .solver(cfg.solver.clone())
        .build()
        .solve()
        .expect("serial solve")
}

/// `(task count, seed, minimize-total?)` per member; duplicates are
/// likely and deliberately so — they exercise the cache-replay path.
fn family() -> impl Strategy<Value = Vec<(usize, u64, bool)>> {
    proptest::collection::vec((2..=3usize, 0..8u64, any::<bool>()), 1..=3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Racing off: status and objective are bit-identical to serial.
    #[test]
    fn batch_members_match_serial_bitwise(members in family()) {
        let mut batch = BatchSession::new();
        let built: Vec<(Arc<ProblemInstance>, OptimalConfig)> = members
            .iter()
            .map(|&(m, seed, me)| (Arc::new(chain_instance(m, seed)), config(me)))
            .collect();
        for (p, cfg) in &built {
            batch.add(Arc::clone(p), cfg.clone());
        }
        let results = batch.solve_all();
        for ((p, cfg), r) in built.iter().zip(&results) {
            let got = r.as_ref().expect("batch member");
            let want = serial_solve(p, cfg);
            prop_assert_eq!(got.outcome.status, want.status);
            prop_assert_eq!(
                got.outcome.objective_mj.map(f64::to_bits),
                want.objective_mj.map(f64::to_bits),
                "objective must be bit-identical"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Portfolio racing: same status, objective within 1e-5.
    #[test]
    fn portfolio_racing_matches_serial(members in family()) {
        let mut batch = BatchSession::new();
        let built: Vec<(Arc<ProblemInstance>, OptimalConfig)> = members
            .iter()
            .map(|&(m, seed, me)| (Arc::new(chain_instance(m, seed)), config(me)))
            .collect();
        for (p, cfg) in &built {
            batch.add(Arc::clone(p), cfg.clone());
        }
        batch.set_portfolio(true);
        let results = batch.solve_all();
        for ((p, cfg), r) in built.iter().zip(&results) {
            let got = r.as_ref().expect("raced member");
            let want = serial_solve(p, cfg);
            prop_assert_eq!(got.outcome.status, want.status);
            match (got.outcome.objective_mj, want.objective_mj) {
                (Some(a), Some(b)) => prop_assert!(
                    (a - b).abs() <= 1e-5 * b.abs().max(1.0),
                    "raced {} vs serial {}", a, b
                ),
                (a, b) => prop_assert_eq!(a.is_some(), b.is_some()),
            }
        }
    }

    /// Mid-batch revocation: a member cancelled while the batch is in
    /// flight reports `Interrupted` (without poisoning the cache), and
    /// every surviving member still matches serial bitwise.
    #[test]
    fn cancelled_member_does_not_disturb_the_rest(
        members in family(),
        cancel_at in 0..3usize,
    ) {
        let cancel_at = cancel_at % members.len();
        let token = CancelToken::new();
        token.cancel();
        let mut batch = BatchSession::new();
        let built: Vec<(Arc<ProblemInstance>, OptimalConfig)> = members
            .iter()
            .enumerate()
            .map(|(i, &(m, seed, me))| {
                let mut cfg = config(me);
                if i == cancel_at {
                    cfg.solver.cancel = Some(token.clone());
                }
                (Arc::new(chain_instance(m, seed)), cfg)
            })
            .collect();
        for (p, cfg) in &built {
            batch.add(Arc::clone(p), cfg.clone());
        }
        let results = batch.solve_all();
        for (i, ((p, cfg), r)) in built.iter().zip(&results).enumerate() {
            let got = r.as_ref().expect("batch member");
            if i == cancel_at {
                prop_assert_eq!(got.outcome.status, SolveStatus::Interrupted);
                prop_assert!(!got.from_cache);
            } else {
                let want = serial_solve(p, cfg);
                prop_assert_eq!(got.outcome.status, want.status);
                prop_assert_eq!(
                    got.outcome.objective_mj.map(f64::to_bits),
                    want.objective_mj.map(f64::to_bits)
                );
            }
        }
    }
}
