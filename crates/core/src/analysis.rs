//! Metrics used by the paper's evaluation (Fig. 2(b)–(e)).

use crate::problem::ProblemInstance;
use crate::solution::Deployment;

/// The paper's `μ = e_k^comm / e_k^comp` index of Fig. 2(b):
/// maximum per-unit communication energy over the NoC divided by the
/// maximum per-task computation energy over all tasks and levels.
pub fn communication_computation_ratio(problem: &ProblemInstance) -> f64 {
    let e_comm = problem.comm.max_energy_any_mj();
    let mut e_comp = 0.0_f64;
    for i in problem.tasks.graph().task_ids() {
        for (l, _) in problem.platform.vf_table().iter() {
            e_comp = e_comp.max(problem.exec_energy_mj(i, l));
        }
    }
    if e_comp == 0.0 {
        return 0.0;
    }
    e_comm / e_comp
}

/// The paper's `ε = max_l(P_l/f_l) / min_l(P_l/f_l)` index of Fig. 2(c).
pub fn energy_gap_index(problem: &ProblemInstance) -> f64 {
    problem.platform.vf_table().energy_gap_index(problem.platform.power_model())
}

/// `M_max`: the maximum number of tasks on any single processor
/// (Fig. 2(b)).
pub fn max_tasks_per_processor(problem: &ProblemInstance, d: &Deployment) -> usize {
    d.tasks_per_processor(problem).into_iter().max().unwrap_or(0)
}

/// `M_d`: the number of duplicates that run (Fig. 2(c)).
pub fn duplicated_count(problem: &ProblemInstance, d: &Deployment) -> usize {
    d.duplicated_count(problem)
}

/// Feasibility ratio `δ = n_f / n_a` over a batch of outcomes (Fig. 2(h)).
pub fn feasibility_ratio(outcomes: &[bool]) -> f64 {
    if outcomes.is_empty() {
        return 0.0;
    }
    outcomes.iter().filter(|&&f| f).count() as f64 / outcomes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_noc::{Mesh2D, NocParams, WeightedNoc};
    use ndp_platform::Platform;
    use ndp_taskset::{generate, GeneratorConfig};

    fn problem(scale: f64) -> ProblemInstance {
        let g = generate(&GeneratorConfig::typical(8), 4).unwrap();
        ProblemInstance::from_original(
            &g,
            Platform::homogeneous(4).unwrap(),
            WeightedNoc::new(
                Mesh2D::square(2).unwrap(),
                NocParams::typical().scale_energy(scale),
                4,
            )
            .unwrap(),
            0.95,
            3.0,
        )
        .unwrap()
    }

    #[test]
    fn mu_scales_with_comm_energy() {
        let lo = communication_computation_ratio(&problem(1.0));
        let hi = communication_computation_ratio(&problem(10.0));
        assert!(hi > lo * 5.0, "mu must scale with the energy knob");
    }

    #[test]
    fn epsilon_above_one() {
        assert!(energy_gap_index(&problem(1.0)) > 1.0);
    }

    #[test]
    fn feasibility_ratio_basics() {
        assert_eq!(feasibility_ratio(&[]), 0.0);
        assert_eq!(feasibility_ratio(&[true, false, true, true]), 0.75);
    }
}

#[cfg(test)]
mod epsilon_crossover {
    use ndp_platform::{PowerModel, PowerParams, VfTable};

    /// The arithmetic behind the paper's Fig. 2(c) claim: executing one
    /// task at the fast level costs `ε ×` the per-cycle energy of the slow
    /// level, while executing two slow copies costs `2 ×`; so duplication
    /// becomes the cheaper way to reach the reliability target exactly when
    /// `ε > 2` (total-energy accounting).
    #[test]
    fn duplication_beats_fast_single_exactly_when_epsilon_exceeds_two() {
        // Low-leakage model so ε tracks the dynamic v² scaling cleanly.
        let mut params = PowerParams::bulk_70nm();
        params.lg = 1.0e3;
        let power = PowerModel::new(params);
        for span in [0.05_f64, 0.2, 0.4, 0.6, 0.9] {
            let table = VfTable::synthetic(4, (0.85, 0.85 + span), (300.0, 1000.0)).unwrap();
            let eps = table.energy_gap_index(&power);
            let cycles = 2.0e6;
            let slow = table.level(table.slowest());
            let fast = table.level(table.fastest());
            let one_fast = power.exec_energy_mj(cycles, fast);
            let two_slow = 2.0 * power.exec_energy_mj(cycles, slow);
            if eps > 2.05 {
                assert!(
                    two_slow < one_fast,
                    "span {span}: ε={eps:.2} > 2 but two-slow {two_slow} ≥ one-fast {one_fast}"
                );
            }
            if eps < 1.95 {
                assert!(
                    two_slow > one_fast,
                    "span {span}: ε={eps:.2} < 2 but two-slow {two_slow} ≤ one-fast {one_fast}"
                );
            }
        }
    }
}
