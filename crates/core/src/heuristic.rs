//! The decomposition heuristic (paper §III, Algorithms 1–3).
//!
//! The joint problem (10) is split into three sequential subproblems:
//!
//! 1. **P2 — frequency assignment & duplication** ([`phase1`], Algorithm 1):
//!    greedily assigns each task the V/F level that minimizes the running
//!    `max_i e_i^comp`, subject to the deadline (8); duplicates a task when
//!    its reliability misses `R_th` and picks the copy's level to restore
//!    constraint (5) with minimal energy increase.
//! 2. **P3 — allocation & scheduling** ([`phase2`], Algorithm 2): walks
//!    tasks layer by layer (WCEC-descending within a layer) and places each
//!    on the processor minimizing `max_k (E_k^comp + Ē_k^comm)` where
//!    `Ē_k^comm` is the paper's averaged communication estimate; start
//!    times come from list scheduling.
//! 3. **P4 — path selection** ([`phase3`], Algorithm 3): for every ordered
//!    processor pair picks the `ρ` (energy- vs time-oriented path) that
//!    minimizes the balanced energy while keeping every end time within the
//!    horizon (9).

use crate::error::{DeployError, Result};
use crate::problem::ProblemInstance;
use crate::schedule::{list_schedule, priority_order};
use crate::solution::{Deployment, PathChoice};
use ndp_milp::{ObserverHandle, SolverEvent};
use ndp_noc::PathKind;
use ndp_platform::{LevelId, ProcessorId, ReliabilityModel};
use ndp_taskset::TaskId;

/// Result of phase 1: activation and frequency decisions.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase1 {
    /// `h_i` for all `2M` tasks.
    pub active: Vec<bool>,
    /// `y_il` as a level per task (meaningful for active tasks; inactive
    /// duplicates keep the level that satisfied (5) hypothetically).
    pub frequency: Vec<LevelId>,
}

/// Result of phase 2: allocation on top of phase 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase2 {
    /// `x_ik` as a processor per task.
    pub processor: Vec<ProcessorId>,
    /// Start times computed with the paper's *averaged* receive-time
    /// estimates (Algorithm 2, line 18). Phase 3 replaces them with exact
    /// per-path times once `c_{βγρ}` is known.
    pub estimated: crate::schedule::Schedule,
}

/// Algorithm 1: frequency assignment and task duplication.
///
/// # Errors
///
/// [`DeployError::HeuristicInfeasible`] when a task has no level meeting its
/// deadline, or no duplicate level can restore the reliability threshold.
pub fn phase1(problem: &ProblemInstance) -> Result<Phase1> {
    let graph = problem.tasks.graph();
    let vf = problem.platform.vf_table();
    let n_tasks = graph.num_tasks();
    let mut active = vec![false; n_tasks];
    let mut frequency = vec![vf.fastest(); n_tasks];
    let mut assigned_energies: Vec<f64> = Vec::new();
    let infeasible = |reason: String| DeployError::HeuristicInfeasible { phase: 1, reason };

    for i in problem.tasks.originals() {
        active[i.index()] = true;
        let deadline = graph.task(i).deadline_ms;
        let current_max = assigned_energies.iter().cloned().fold(0.0, f64::max);
        let mut best: Option<(LevelId, f64)> = None;
        for (l, _) in vf.iter() {
            if problem.exec_time_ms(i, l) > deadline {
                continue;
            }
            let e = problem.exec_energy_mj(i, l);
            let e_max = current_max.max(e);
            if best.is_none_or(|(_, b)| e_max < b) {
                best = Some((l, e_max));
            }
        }
        let (l, _) = best.ok_or_else(|| {
            infeasible(format!("{i}: no V/F level meets the {deadline} ms deadline"))
        })?;
        frequency[i.index()] = l;
        assigned_energies.push(problem.exec_energy_mj(i, l));

        // Constraint (4): duplicate exactly when r_i < R_th.
        let r = problem.reliability(i, l);
        if r < problem.reliability_threshold {
            let copy = problem.tasks.copy_of(i);
            let deadline_c = graph.task(copy).deadline_ms;
            let current_max = assigned_energies.iter().cloned().fold(0.0, f64::max);
            let mut best: Option<(LevelId, f64)> = None;
            for (l2, _) in vf.iter() {
                if problem.exec_time_ms(copy, l2) > deadline_c {
                    continue;
                }
                let rc = problem.reliability(copy, l2);
                if ReliabilityModel::duplicated_reliability(r, rc) < problem.reliability_threshold {
                    continue; // constraint (5)
                }
                let e = problem.exec_energy_mj(copy, l2);
                let e_max = current_max.max(e);
                if best.is_none_or(|(_, b)| e_max < b) {
                    best = Some((l2, e_max));
                }
            }
            let (l2, _) = best.ok_or_else(|| {
                infeasible(format!(
                    "{i}: reliability {r:.6} below threshold and no duplicate level restores it"
                ))
            })?;
            active[copy.index()] = true;
            frequency[copy.index()] = l2;
            assigned_energies.push(problem.exec_energy_mj(copy, l2));
        }
    }
    Ok(Phase1 { active, frequency })
}

/// The paper's averaged receive-time estimate for task `i`:
/// `t̄_i^comm = M₁ · (max t_{βγρ} + min t_{βγρ}) / 2`.
fn estimated_comm_time(problem: &ProblemInstance, active: &[bool], i: TaskId) -> f64 {
    if problem.num_processors() <= 1 {
        return 0.0;
    }
    let graph = problem.tasks.graph();
    let m1 = graph.predecessors(i).filter(|(p, _)| active[p.index()]).count() as f64;
    let avg = (problem.comm.max_time_ms() + problem.comm.min_time_ms()) / 2.0;
    m1 * avg
}

/// The paper's averaged per-processor communication energy estimate:
/// `Ē_k^comm = M₂ · (max_{βγ} e_{βγk1} + min_{βγ} e_{βγk2}) / 2`.
fn estimated_comm_energy(problem: &ProblemInstance, active: &[bool], k: ProcessorId) -> f64 {
    if problem.num_processors() <= 1 {
        return 0.0;
    }
    let m2 = active.iter().filter(|&&a| a).count() as f64;
    let node = problem.node_of(k);
    let hi = problem.comm.max_energy_at_mj(node, PathKind::EnergyOriented);
    let lo = problem.comm.min_energy_at_mj(node, PathKind::TimeOriented);
    m2 * (hi + lo) / 2.0
}

/// Algorithm 2: task allocation (scheduling follows by list scheduling).
pub fn phase2(problem: &ProblemInstance, p1: &Phase1) -> Phase2 {
    let n = problem.num_processors();
    let n_tasks = problem.tasks.graph().num_tasks();
    let mut processor = vec![ProcessorId(0); n_tasks];
    let mut comp_energy = vec![0.0; n];
    let comm_estimates: Vec<f64> =
        (0..n).map(|k| estimated_comm_energy(problem, &p1.active, ProcessorId(k))).collect();
    for &i in &priority_order(problem, &p1.active) {
        let e_i = problem.exec_energy_mj(i, p1.frequency[i.index()]);
        let mut best: Option<(usize, f64)> = None;
        for k in 0..n {
            comp_energy[k] += e_i;
            let max_energy = (0..n).map(|q| comp_energy[q] + comm_estimates[q]).fold(0.0, f64::max);
            comp_energy[k] -= e_i;
            if best.is_none_or(|(_, b)| max_energy < b) {
                best = Some((k, max_energy));
            }
        }
        let (k, _) = best.expect("at least one processor");
        processor[i.index()] = ProcessorId(k);
        comp_energy[k] += e_i;
    }
    let estimated = list_schedule(problem, &p1.active, &p1.frequency, &processor, |t| {
        estimated_comm_time(problem, &p1.active, t)
    });
    Phase2 { processor, estimated }
}

/// Algorithm 3: multi-path selection. Returns the final path table.
pub fn phase3(problem: &ProblemInstance, p1: &Phase1, p2: &Phase2) -> PathChoice {
    let n = problem.num_processors();
    let mut paths = PathChoice::uniform(n, PathKind::EnergyOriented);
    let eval = |paths: &PathChoice| -> (f64, f64) {
        let d = assemble(problem, p1, p2, paths.clone());
        let report = d.energy_report(problem);
        let makespan =
            problem.tasks.graph().task_ids().map(|t| d.end_ms(problem, t)).fold(0.0, f64::max);
        (report.max_mj(), makespan)
    };
    for beta in 0..n {
        for gamma in 0..n {
            if beta == gamma {
                continue;
            }
            let (b, g) = (ProcessorId(beta), ProcessorId(gamma));
            let mut best: Option<(PathKind, f64, f64)> = None;
            for rho in PathKind::ALL {
                paths.set(b, g, rho);
                let (max_energy, makespan) = eval(&paths);
                let feasible = makespan <= problem.horizon_ms + 1e-9;
                let better = match best {
                    None => true,
                    Some((_, be, bm)) => {
                        let best_feasible = bm <= problem.horizon_ms + 1e-9;
                        match (feasible, best_feasible) {
                            (true, false) => true,
                            (false, true) => false,
                            (true, true) => max_energy < be,
                            (false, false) => makespan < bm,
                        }
                    }
                };
                if better {
                    best = Some((rho, max_energy, makespan));
                }
            }
            let (rho, _, _) = best.expect("two candidates evaluated");
            paths.set(b, g, rho);
        }
    }
    paths
}

/// Builds the full deployment for given phase results: start times come
/// from list scheduling with the *actual* per-path receive times.
fn assemble(problem: &ProblemInstance, p1: &Phase1, p2: &Phase2, paths: PathChoice) -> Deployment {
    let mut d = Deployment {
        active: p1.active.clone(),
        frequency: p1.frequency.clone(),
        processor: p2.processor.clone(),
        start_ms: vec![0.0; problem.tasks.graph().num_tasks()],
        paths,
    };
    let schedule = list_schedule(problem, &p1.active, &p1.frequency, &p2.processor, |t| {
        d.comm_time_ms(problem, t)
    });
    d.start_ms = schedule.start_ms;
    d
}

/// Runs all three phases and validates the horizon.
///
/// Deprecated spelling of
/// [`DeploymentSession::heuristic`](crate::DeploymentSession::heuristic).
///
/// # Errors
///
/// [`DeployError::HeuristicInfeasible`] when phase 1 cannot satisfy
/// deadline/reliability constraints, or the final schedule overruns `H`.
#[deprecated(since = "0.2.0", note = "use `DeploymentSession::heuristic`")]
pub fn solve_heuristic(problem: &ProblemInstance) -> Result<Deployment> {
    heuristic_deployment(problem, &ObserverHandle::none())
}

/// [`solve_heuristic`] with progress observation.
///
/// Deprecated: construct a
/// [`DeploymentSession`](crate::DeploymentSession) whose solver options
/// carry the observer and call
/// [`heuristic`](crate::DeploymentSession::heuristic) on it.
///
/// # Errors
///
/// Same as [`solve_heuristic`].
#[deprecated(since = "0.2.0", note = "use `DeploymentSession::heuristic`")]
pub fn solve_heuristic_observed(
    problem: &ProblemInstance,
    observer: &ObserverHandle,
) -> Result<Deployment> {
    heuristic_deployment(problem, observer)
}

/// The 3-phase heuristic: emits a [`SolverEvent::Phase`] marker (`"phase1"`
/// … `"phase3"`, `"assemble"`) into `observer` as each of the paper's
/// subproblems starts. The heuristic is deterministic, so the event
/// sequence is identical across runs.
///
/// # Errors
///
/// [`DeployError::HeuristicInfeasible`] when phase 1 cannot satisfy
/// deadline/reliability constraints, or the final schedule overruns `H`.
pub(crate) fn heuristic_deployment(
    problem: &ProblemInstance,
    observer: &ObserverHandle,
) -> Result<Deployment> {
    observer.emit(|| SolverEvent::Phase { name: "phase1" });
    let p1 = phase1(problem)?;
    observer.emit(|| SolverEvent::Phase { name: "phase2" });
    let p2 = phase2(problem, &p1);
    observer.emit(|| SolverEvent::Phase { name: "phase3" });
    let paths = phase3(problem, &p1, &p2);
    observer.emit(|| SolverEvent::Phase { name: "assemble" });
    let d = assemble(problem, &p1, &p2, paths);
    let makespan =
        problem.tasks.graph().task_ids().map(|t| d.end_ms(problem, t)).fold(0.0, f64::max);
    if makespan > problem.horizon_ms + 1e-9 {
        return Err(DeployError::HeuristicInfeasible {
            phase: 3,
            reason: format!(
                "makespan {makespan:.4} ms exceeds horizon {:.4} ms",
                problem.horizon_ms
            ),
        });
    }
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::{is_valid, validate};
    use ndp_noc::{Mesh2D, NocParams, WeightedNoc};
    use ndp_platform::Platform;
    use ndp_taskset::{generate, GeneratorConfig};

    fn instance(m: usize, side: usize, alpha: f64, seed: u64) -> ProblemInstance {
        let g = generate(&GeneratorConfig::typical(m), seed).unwrap();
        ProblemInstance::from_original(
            &g,
            Platform::homogeneous(side * side).unwrap(),
            WeightedNoc::new(Mesh2D::square(side).unwrap(), NocParams::typical(), seed).unwrap(),
            0.99,
            alpha,
        )
        .unwrap()
    }

    #[test]
    fn phase1_meets_deadlines_and_reliability() {
        let p = instance(12, 2, 2.0, 3);
        let p1 = phase1(&p).unwrap();
        for i in p.tasks.originals() {
            assert!(p1.active[i.index()]);
            let l = p1.frequency[i.index()];
            assert!(p.exec_time_ms(i, l) <= p.tasks.graph().task(i).deadline_ms + 1e-12);
            let r = p.reliability(i, l);
            let copy = p.tasks.copy_of(i);
            if r < p.reliability_threshold {
                assert!(p1.active[copy.index()], "{i} needs its copy");
                let rc = p.reliability(copy, p1.frequency[copy.index()]);
                assert!(ReliabilityModel::duplicated_reliability(r, rc) >= p.reliability_threshold);
            } else {
                assert!(!p1.active[copy.index()]);
            }
        }
    }

    #[test]
    fn phase2_assigns_every_active_task() {
        let p = instance(10, 2, 2.0, 5);
        let p1 = phase1(&p).unwrap();
        let p2 = phase2(&p, &p1);
        for t in p.tasks.graph().task_ids() {
            assert!(p2.processor[t.index()].index() < p.num_processors());
        }
    }

    #[test]
    fn full_heuristic_is_valid_under_generous_horizon() {
        for seed in 0..8 {
            let p = instance(10, 3, 4.0, seed);
            match heuristic_deployment(&p, &ObserverHandle::none()) {
                Ok(d) => {
                    let violations = validate(&p, &d);
                    assert!(violations.is_empty(), "seed {seed}: {violations:?}");
                }
                Err(DeployError::HeuristicInfeasible { .. }) => {
                    // Permitted: tight random instances can be infeasible.
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
    }

    #[test]
    fn tight_horizon_is_rejected_not_violated() {
        let p = instance(12, 2, 0.05, 7);
        match heuristic_deployment(&p, &ObserverHandle::none()) {
            Err(DeployError::HeuristicInfeasible { .. }) => {}
            Ok(d) => assert!(is_valid(&p, &d), "if it claims success it must be valid"),
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn duplication_count_grows_with_threshold() {
        let mk = |thr: f64| {
            let g = generate(&GeneratorConfig::typical(12), 11).unwrap();
            let p = ProblemInstance::from_original(
                &g,
                Platform::homogeneous(4).unwrap(),
                WeightedNoc::new(Mesh2D::square(2).unwrap(), NocParams::typical(), 11).unwrap(),
                thr,
                4.0,
            )
            .unwrap();
            let p1 = phase1(&p).unwrap();
            p.tasks.duplicates().filter(|d| p1.active[d.index()]).count()
        };
        assert!(mk(0.999999) >= mk(0.9));
    }

    #[test]
    fn single_processor_platform_works() {
        let g = generate(&GeneratorConfig::typical(5), 2).unwrap();
        let p = ProblemInstance::from_original(
            &g,
            Platform::homogeneous(1).unwrap(),
            WeightedNoc::new(Mesh2D::new(1, 1).unwrap(), NocParams::typical(), 2).unwrap(),
            0.95,
            8.0,
        )
        .unwrap();
        match heuristic_deployment(&p, &ObserverHandle::none()) {
            Ok(d) => {
                assert!(is_valid(&p, &d));
                let report = d.energy_report(&p);
                assert_eq!(report.comm_mj.iter().sum::<f64>(), 0.0);
            }
            Err(DeployError::HeuristicInfeasible { .. }) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
}

#[cfg(test)]
mod phase3_tests {
    use super::*;
    use crate::problem::ProblemInstance;
    use ndp_noc::{Mesh2D, NocParams, WeightedNoc};
    use ndp_platform::Platform;
    use ndp_taskset::{generate, GeneratorConfig};

    fn instance(seed: u64) -> ProblemInstance {
        let g = generate(&GeneratorConfig::typical(12), seed).unwrap();
        ProblemInstance::from_original(
            &g,
            Platform::homogeneous(9).unwrap(),
            WeightedNoc::new(Mesh2D::square(3).unwrap(), NocParams::typical(), seed).unwrap(),
            0.95,
            5.0,
        )
        .unwrap()
    }

    /// Phase 3's greedy per-pair refinement must never end up worse than
    /// either all-energy-paths or all-time-paths starting points (it starts
    /// from all-energy and only accepts improving feasible moves, so this
    /// checks the acceptance logic didn't regress).
    #[test]
    fn phase3_beats_uniform_choices() {
        let mut compared = 0;
        for seed in 0..6 {
            let p = instance(seed);
            let Ok(p1) = phase1(&p) else { continue };
            let p2 = phase2(&p, &p1);
            let tuned = phase3(&p, &p1, &p2);
            let energy_of =
                |paths: PathChoice| assemble(&p, &p1, &p2, paths).energy_report(&p).max_mj();
            let tuned_e = energy_of(tuned);
            let uniform_e =
                energy_of(PathChoice::uniform(p.num_processors(), PathKind::EnergyOriented));
            assert!(
                tuned_e <= uniform_e + 1e-9,
                "seed {seed}: tuned {tuned_e} vs uniform-energy {uniform_e}"
            );
            compared += 1;
        }
        assert!(compared > 0);
    }

    /// Phase 1 is deterministic and independent of the NoC (it only reasons
    /// about computation).
    #[test]
    fn phase1_independent_of_noc_seed() {
        let g = generate(&GeneratorConfig::typical(10), 3).unwrap();
        let build = |noc_seed| {
            ProblemInstance::from_original(
                &g,
                Platform::homogeneous(9).unwrap(),
                WeightedNoc::new(Mesh2D::square(3).unwrap(), NocParams::typical(), noc_seed)
                    .unwrap(),
                0.95,
                5.0,
            )
            .unwrap()
        };
        let a = phase1(&build(1)).unwrap();
        let b = phase1(&build(99)).unwrap();
        assert_eq!(a, b);
    }
}
