//! Error types for the deployment crate.

use std::fmt;

/// Errors raised while building or solving deployment problems.
#[derive(Debug, Clone, PartialEq)]
pub enum DeployError {
    /// The platform's processor count must equal the mesh node count.
    PlatformMeshMismatch {
        /// Processors in the platform.
        processors: usize,
        /// Nodes in the mesh.
        nodes: usize,
    },
    /// A scalar parameter was out of range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// The heuristic could not satisfy a constraint; carries the phase and a
    /// human-readable reason.
    HeuristicInfeasible {
        /// Phase 1, 2 or 3.
        phase: u8,
        /// What failed.
        reason: String,
    },
    /// The underlying MILP solver failed (numerics, limits).
    Solver(ndp_milp::MilpError),
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::PlatformMeshMismatch { processors, nodes } => {
                write!(f, "platform has {processors} processors but the mesh has {nodes} nodes")
            }
            DeployError::InvalidParameter { name, value } => {
                write!(f, "invalid parameter {name} = {value}")
            }
            DeployError::HeuristicInfeasible { phase, reason } => {
                write!(f, "heuristic phase {phase} infeasible: {reason}")
            }
            DeployError::Solver(e) => write!(f, "MILP solver error: {e}"),
        }
    }
}

impl std::error::Error for DeployError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeployError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ndp_milp::MilpError> for DeployError {
    fn from(e: ndp_milp::MilpError) -> Self {
        DeployError::Solver(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DeployError>;

/// The workspace-wide error type: every per-crate error converts into it
/// via `From`, so a caller driving the full pipeline (task-set generation →
/// platform → NoC → deployment → solve) can use a single `?` type.
///
/// ```
/// use ndp_core::prelude::*;
///
/// fn pipeline() -> Result<(), ndp_core::Error> {
///     let graph = generate(&GeneratorConfig::typical(4), 7)?; // TasksetError
///     let platform = Platform::homogeneous(4)?; // PlatformError
///     let noc = WeightedNoc::new(Mesh2D::square(2)?, NocParams::typical(), 7)?; // NocError
///     let problem = ProblemInstance::from_original(&graph, platform, noc, 0.95, 3.0)?;
///     let _ = DeploymentSession::new(problem).heuristic()?; // DeployError
///     Ok(())
/// }
/// pipeline().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Task-set generation failed ([`ndp_taskset::TasksetError`]).
    Taskset(ndp_taskset::TasksetError),
    /// Platform construction failed ([`ndp_platform::PlatformError`]).
    Platform(ndp_platform::PlatformError),
    /// NoC construction or routing failed ([`ndp_noc::NocError`]).
    Noc(ndp_noc::NocError),
    /// The MILP solver failed ([`ndp_milp::MilpError`]).
    Milp(ndp_milp::MilpError),
    /// Deployment-level failure (formulation, heuristic, infeasibility).
    Deploy(DeployError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Taskset(e) => write!(f, "task-set error: {e}"),
            Error::Platform(e) => write!(f, "platform error: {e}"),
            Error::Noc(e) => write!(f, "NoC error: {e}"),
            Error::Milp(e) => write!(f, "MILP error: {e}"),
            Error::Deploy(e) => write!(f, "deployment error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Taskset(e) => Some(e),
            Error::Platform(e) => Some(e),
            Error::Noc(e) => Some(e),
            Error::Milp(e) => Some(e),
            Error::Deploy(e) => Some(e),
        }
    }
}

impl From<ndp_taskset::TasksetError> for Error {
    fn from(e: ndp_taskset::TasksetError) -> Self {
        Error::Taskset(e)
    }
}

impl From<ndp_platform::PlatformError> for Error {
    fn from(e: ndp_platform::PlatformError) -> Self {
        Error::Platform(e)
    }
}

impl From<ndp_noc::NocError> for Error {
    fn from(e: ndp_noc::NocError) -> Self {
        Error::Noc(e)
    }
}

impl From<ndp_milp::MilpError> for Error {
    fn from(e: ndp_milp::MilpError) -> Self {
        Error::Milp(e)
    }
}

impl From<DeployError> for Error {
    fn from(e: DeployError) -> Self {
        Error::Deploy(e)
    }
}
