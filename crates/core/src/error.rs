//! Error types for the deployment crate.

use std::fmt;

/// Errors raised while building or solving deployment problems.
#[derive(Debug, Clone, PartialEq)]
pub enum DeployError {
    /// The platform's processor count must equal the mesh node count.
    PlatformMeshMismatch {
        /// Processors in the platform.
        processors: usize,
        /// Nodes in the mesh.
        nodes: usize,
    },
    /// A scalar parameter was out of range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// The heuristic could not satisfy a constraint; carries the phase and a
    /// human-readable reason.
    HeuristicInfeasible {
        /// Phase 1, 2 or 3.
        phase: u8,
        /// What failed.
        reason: String,
    },
    /// The underlying MILP solver failed (numerics, limits).
    Solver(ndp_milp::MilpError),
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::PlatformMeshMismatch { processors, nodes } => {
                write!(f, "platform has {processors} processors but the mesh has {nodes} nodes")
            }
            DeployError::InvalidParameter { name, value } => {
                write!(f, "invalid parameter {name} = {value}")
            }
            DeployError::HeuristicInfeasible { phase, reason } => {
                write!(f, "heuristic phase {phase} infeasible: {reason}")
            }
            DeployError::Solver(e) => write!(f, "MILP solver error: {e}"),
        }
    }
}

impl std::error::Error for DeployError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeployError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ndp_milp::MilpError> for DeployError {
    fn from(e: ndp_milp::MilpError) -> Self {
        DeployError::Solver(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DeployError>;
