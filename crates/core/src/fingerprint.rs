//! Canonical deployment-instance fingerprints for solution caching.
//!
//! A long-running solve service sees the same deployment request many
//! times (periodic re-deployments, retries, identical tenants). The
//! fingerprint maps a request — problem instance plus the
//! answer-relevant solve configuration — to a 64-bit key: equal keys mean
//! the same mathematical program solved to the same tolerances, so a
//! cached outcome can be replayed without re-running branch and bound.
//!
//! The hash goes through the *built MILP* ([`Model::fingerprint`]), not
//! the raw request: two requests that linearize to the identical program
//! (same task graph after duplication, same platform and NoC tensors,
//! same path mode and objective) share a key even if their surface specs
//! differ. Solver knobs that change only *how* the optimum is found
//! (threads, branching rule, pricing, warm starts, cut configuration,
//! time or node limits) are excluded; tolerances and gaps that change
//! *what* counts as an answer are included.

use crate::error::Result;
use crate::formulation::MilpEncoding;
use crate::optimal::OptimalConfig;
use crate::problem::ProblemInstance;
use ndp_milp::{Model, SolverOptions};

/// 64-bit FNV-1a over the canonical byte encoding of `v`.
fn fold(h: u64, v: u64) -> u64 {
    let mut h = h;
    for b in v.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn fold_f64(h: u64, v: f64) -> u64 {
    let v = if v == 0.0 { 0.0 } else { v };
    fold(h, v.to_bits())
}

/// Canonical cache key of one exact-solve request.
///
/// Builds the MILP for `problem` under `config` and combines the model's
/// canonical fingerprint with the answer-relevant solver tolerances
/// (integrality and feasibility tolerances, relative and absolute gaps,
/// and the working infinite bound, which participates in bound clamping).
///
/// # Errors
///
/// Propagates formulation failures from [`MilpEncoding::build`].
pub fn instance_fingerprint(problem: &ProblemInstance, config: &OptimalConfig) -> Result<u64> {
    let encoding = MilpEncoding::build(problem, config.path_mode, config.objective)?;
    Ok(model_fingerprint(&encoding.model, &config.solver))
}

/// Cache key of an already-built (possibly delta-mutated) model under
/// `solver`'s answer tolerances.
///
/// This is the primitive behind [`instance_fingerprint`]; online
/// re-deployment uses it directly so that a model mutated by scenario
/// events gets a key reflecting its *current* rows and bounds — hashing
/// the unmutated problem instance would replay stale cached outcomes.
pub fn model_fingerprint(model: &Model, solver: &SolverOptions) -> u64 {
    let mut h = fold(0xcbf2_9ce4_8422_2325, model.fingerprint());
    h = fold_f64(h, solver.integrality_tol);
    h = fold_f64(h, solver.feasibility_tol);
    h = fold_f64(h, solver.relative_gap);
    h = fold_f64(h, solver.absolute_gap);
    h = fold_f64(h, solver.infinite_bound);
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formulation::{DeployObjective, PathMode};
    use ndp_noc::{Mesh2D, NocParams, WeightedNoc};
    use ndp_platform::{Platform, PowerModel, PowerParams, ReliabilityParams, VfTable};
    use ndp_taskset::{generate, GeneratorConfig};

    fn problem(seed: u64) -> ProblemInstance {
        let graph = generate(&GeneratorConfig::typical(4), seed).unwrap();
        let vf = VfTable::synthetic(3, (0.85, 1.10), (300.0, 1000.0)).unwrap();
        let platform = Platform::new(
            4,
            vf,
            PowerModel::new(PowerParams::bulk_70nm()),
            ReliabilityParams::typical(),
        )
        .unwrap();
        let noc = WeightedNoc::new(Mesh2D::square(2).unwrap(), NocParams::typical(), seed).unwrap();
        ProblemInstance::from_original(&graph, platform, noc, 0.95, 1.4).unwrap()
    }

    #[test]
    fn identical_requests_share_a_fingerprint() {
        let config = OptimalConfig::default();
        let a = instance_fingerprint(&problem(7), &config).unwrap();
        let b = instance_fingerprint(&problem(7), &config).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_instances_or_objectives_get_different_fingerprints() {
        let config = OptimalConfig::default();
        let base = instance_fingerprint(&problem(7), &config).unwrap();
        let other_seed = instance_fingerprint(&problem(8), &config).unwrap();
        assert_ne!(base, other_seed);

        let me = OptimalConfig {
            objective: DeployObjective::MinimizeTotalEnergy,
            ..OptimalConfig::default()
        };
        let me_fp = instance_fingerprint(&problem(7), &me).unwrap();
        assert_ne!(base, me_fp);

        let single = OptimalConfig {
            path_mode: PathMode::SingleFixed(ndp_noc::PathKind::EnergyOriented),
            ..OptimalConfig::default()
        };
        let single_fp = instance_fingerprint(&problem(7), &single).unwrap();
        assert_ne!(base, single_fp);
    }

    #[test]
    fn search_strategy_knobs_do_not_split_the_cache() {
        let reference = instance_fingerprint(&problem(7), &OptimalConfig::default()).unwrap();
        let mut tweaked = OptimalConfig::default();
        tweaked.solver.threads = 4;
        tweaked.solver.time_limit = 1.5;
        tweaked.solver.node_limit = 10;
        tweaked.solver.cuts = false;
        tweaked.solver.heuristics = false;
        tweaked.warm_start_with_heuristic = false;
        let fp = instance_fingerprint(&problem(7), &tweaked).unwrap();
        assert_eq!(reference, fp, "how-to-search knobs must not change the key");

        let mut gap = OptimalConfig::default();
        gap.solver.relative_gap = 0.25;
        let gap_fp = instance_fingerprint(&problem(7), &gap).unwrap();
        assert_ne!(reference, gap_fp, "answer tolerances must change the key");
    }
}
