//! The deployment problem instance.
//!
//! Bundles everything problem (10) of the paper needs: the duplicated task
//! graph, the DVFS platform, the weighted NoC with its precomputed cost
//! matrices, the reliability threshold `R_th` and the scheduling horizon
//! `H = α·Σ_{i∈C}(t̄ᵢ^comp + t̄ᵢ^comm)` over the critical path `C`.

use crate::error::{DeployError, Result};
use ndp_noc::{CommMatrices, NodeId, WeightedNoc};
use ndp_platform::{LevelId, Platform, ProcessorId};
use ndp_taskset::{DuplicatedGraph, TaskGraph, TaskId};

/// How transfer *time* scales with payload size.
///
/// The paper's `t_i^comm` (§II-B.5) sums the per-unit latencies `t_{βγρ}`
/// without multiplying by `s_ij`, while communication *energy* does scale
/// with `s_ij`. [`CommTimeModel::PerUnit`] reproduces that exactly;
/// [`CommTimeModel::SizeScaled`] is the physically-motivated extension where
/// latency also scales with payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CommTimeModel {
    /// Paper-faithful: transfer time is the per-unit path latency.
    #[default]
    PerUnit,
    /// Extension: transfer time is `s_ij ×` per-unit path latency.
    SizeScaled,
}

/// A fully specified instance of the task deployment problem.
#[derive(Debug, Clone)]
pub struct ProblemInstance {
    /// Duplicated task graph (`2M` tasks).
    pub tasks: DuplicatedGraph,
    /// The DVFS multicore.
    pub platform: Platform,
    /// The weighted NoC.
    pub noc: WeightedNoc,
    /// Precomputed `t_{βγρ}` / `e_{βγkρ}` tensors.
    pub comm: CommMatrices,
    /// Reliability threshold `R_th`.
    pub reliability_threshold: f64,
    /// Scheduling horizon `H` in ms.
    pub horizon_ms: f64,
    /// Transfer-time scaling rule.
    pub comm_time_model: CommTimeModel,
}

impl ProblemInstance {
    /// Builds an instance from an original (non-duplicated) task graph,
    /// computing `H` from `alpha` via the paper's critical-path formula.
    ///
    /// # Errors
    ///
    /// * [`DeployError::PlatformMeshMismatch`] if the platform has a
    ///   different processor count than the mesh has nodes.
    /// * [`DeployError::InvalidParameter`] for a non-positive `alpha` or a
    ///   threshold outside `(0, 1)`.
    pub fn from_original(
        original: &TaskGraph,
        platform: Platform,
        noc: WeightedNoc,
        reliability_threshold: f64,
        alpha: f64,
    ) -> Result<Self> {
        if platform.num_processors() != noc.mesh().num_nodes() {
            return Err(DeployError::PlatformMeshMismatch {
                processors: platform.num_processors(),
                nodes: noc.mesh().num_nodes(),
            });
        }
        if !(alpha.is_finite() && alpha > 0.0) {
            return Err(DeployError::InvalidParameter { name: "alpha", value: alpha });
        }
        if !(reliability_threshold > 0.0 && reliability_threshold < 1.0) {
            return Err(DeployError::InvalidParameter {
                name: "reliability_threshold",
                value: reliability_threshold,
            });
        }
        let comm = CommMatrices::build(&noc);
        let horizon_ms = scheduling_horizon(original, &platform, &comm, alpha);
        Ok(ProblemInstance {
            tasks: DuplicatedGraph::expand(original),
            platform,
            noc,
            comm,
            reliability_threshold,
            horizon_ms,
            comm_time_model: CommTimeModel::default(),
        })
    }

    /// Overrides the transfer-time model, builder-style.
    pub fn with_comm_time_model(mut self, model: CommTimeModel) -> Self {
        self.comm_time_model = model;
        self
    }

    /// Overrides the horizon, builder-style (useful for sweeps that fix `H`
    /// independently of `α`).
    pub fn with_horizon(mut self, horizon_ms: f64) -> Self {
        self.horizon_ms = horizon_ms;
        self
    }

    /// Number of original tasks `M`.
    pub fn num_original(&self) -> usize {
        self.tasks.original_count()
    }

    /// Total task count `2M`.
    pub fn num_tasks(&self) -> usize {
        self.tasks.total_count()
    }

    /// Number of processors `N`.
    pub fn num_processors(&self) -> usize {
        self.platform.num_processors()
    }

    /// Number of V/F levels `L`.
    pub fn num_levels(&self) -> usize {
        self.platform.vf_table().len()
    }

    /// The NoC node of a processor (identity mapping: processor `k` sits at
    /// mesh node `k`).
    pub fn node_of(&self, k: ProcessorId) -> NodeId {
        NodeId(k.index())
    }

    /// Execution time `C_i / f_l` in ms.
    pub fn exec_time_ms(&self, i: TaskId, l: LevelId) -> f64 {
        self.platform.exec_time_ms(self.tasks.graph().task(i).wcec, l)
    }

    /// Computation energy `e_i^comp = P_l · C_i / f_l` in mJ.
    pub fn exec_energy_mj(&self, i: TaskId, l: LevelId) -> f64 {
        self.platform.exec_energy_mj(self.tasks.graph().task(i).wcec, l)
    }

    /// Task reliability `r_{il}`.
    pub fn reliability(&self, i: TaskId, l: LevelId) -> f64 {
        self.platform.task_reliability(self.tasks.graph().task(i).wcec, l)
    }

    /// The time weight applied to a transfer of `s` units (1 or `s`
    /// depending on [`CommTimeModel`]).
    pub fn time_weight(&self, data_size: f64) -> f64 {
        match self.comm_time_model {
            CommTimeModel::PerUnit => 1.0,
            CommTimeModel::SizeScaled => data_size,
        }
    }

    /// Lemma 2.1's `σ = min_{i,l} |r_{il} − R_th|`, floored away from zero.
    pub fn sigma(&self) -> f64 {
        let mut sigma = f64::MAX;
        for i in self.tasks.graph().task_ids() {
            for (l, _) in self.platform.vf_table().iter() {
                sigma = sigma.min((self.reliability(i, l) - self.reliability_threshold).abs());
            }
        }
        sigma.max(1e-9)
    }

    /// `max_{i,l} r_{il}` (denominator in Lemma 2.1's constraint (4)).
    pub fn max_reliability(&self) -> f64 {
        let mut rmax = 0.0_f64;
        for i in self.tasks.graph().task_ids() {
            for (l, _) in self.platform.vf_table().iter() {
                rmax = rmax.max(self.reliability(i, l));
            }
        }
        rmax
    }
}

/// The paper's horizon formula (§IV):
/// `H = α · Σ_{i∈C} (t̄ᵢ^comp + t̄ᵢ^comm)` where `C` is the critical path of
/// the original graph, `t̄ᵢ^comp = (C_i/f_min + C_i/f_max)/2` and
/// `t̄ᵢ^comm = M₁ · (max t_{βγρ} + min t_{βγρ})/2` with `M₁` the number of
/// predecessors of `τ_i`.
pub fn scheduling_horizon(
    original: &TaskGraph,
    platform: &Platform,
    comm: &CommMatrices,
    alpha: f64,
) -> f64 {
    if original.is_empty() {
        return 0.0;
    }
    let (tmin, tmax) =
        if comm.num_nodes() > 1 { (comm.min_time_ms(), comm.max_time_ms()) } else { (0.0, 0.0) };
    let avg_comm = (tmin + tmax) / 2.0;
    let weight = |t: TaskId| {
        let wcec = original.task(t).wcec;
        let slow = platform.exec_time_ms(wcec, platform.vf_table().slowest());
        let fast = platform.exec_time_ms(wcec, platform.vf_table().fastest());
        let comp = (slow + fast) / 2.0;
        let m1 = original.in_degree(t) as f64;
        comp + m1 * avg_comm
    };
    let path = original.critical_path(weight);
    alpha * path.into_iter().map(weight).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_noc::{Mesh2D, NocParams};
    use ndp_taskset::{generate, GeneratorConfig};

    fn instance(m: usize, n_side: usize, alpha: f64) -> ProblemInstance {
        let g = generate(&GeneratorConfig::typical(m), 1).unwrap();
        let platform = Platform::homogeneous(n_side * n_side).unwrap();
        let noc =
            WeightedNoc::new(Mesh2D::square(n_side).unwrap(), NocParams::typical(), 1).unwrap();
        ProblemInstance::from_original(&g, platform, noc, 0.95, alpha).unwrap()
    }

    #[test]
    fn horizon_scales_with_alpha() {
        let a = instance(10, 3, 1.0);
        let b = instance(10, 3, 2.0);
        assert!((b.horizon_ms - 2.0 * a.horizon_ms).abs() < 1e-9);
        assert!(a.horizon_ms > 0.0);
    }

    #[test]
    fn mismatched_platform_rejected() {
        let g = generate(&GeneratorConfig::typical(4), 0).unwrap();
        let platform = Platform::homogeneous(5).unwrap();
        let noc = WeightedNoc::new(Mesh2D::square(2).unwrap(), NocParams::typical(), 0).unwrap();
        assert!(matches!(
            ProblemInstance::from_original(&g, platform, noc, 0.9, 1.0),
            Err(DeployError::PlatformMeshMismatch { .. })
        ));
    }

    #[test]
    fn invalid_parameters_rejected() {
        let g = generate(&GeneratorConfig::typical(4), 0).unwrap();
        let mk = || {
            (
                Platform::homogeneous(4).unwrap(),
                WeightedNoc::new(Mesh2D::square(2).unwrap(), NocParams::typical(), 0).unwrap(),
            )
        };
        let (p, n) = mk();
        assert!(ProblemInstance::from_original(&g, p, n, 0.9, 0.0).is_err());
        let (p, n) = mk();
        assert!(ProblemInstance::from_original(&g, p, n, 1.5, 1.0).is_err());
    }

    #[test]
    fn sigma_positive_and_rmax_in_unit_interval() {
        let p = instance(6, 2, 1.0);
        assert!(p.sigma() > 0.0);
        let rmax = p.max_reliability();
        assert!(rmax > 0.0 && rmax <= 1.0);
    }

    #[test]
    fn duplicated_counts() {
        let p = instance(7, 2, 1.0);
        assert_eq!(p.num_original(), 7);
        assert_eq!(p.num_tasks(), 14);
        assert_eq!(p.num_processors(), 4);
    }
}
