//! Exact solution of the deployment MILP.
//!
//! This is the paper's "Optimal" arm: problem (10) linearized by
//! [`build_milp`](crate::formulation::build_milp) and handed to the
//! `ndp-milp` branch-and-bound (substituting for Gurobi; see DESIGN.md).
//! The 3-phase heuristic can seed the search as a MIP warm start, which is
//! the standard way to make exact solvers practical on these models.

use crate::error::Result;
use crate::formulation::{DeployObjective, MilpEncoding, PathMode};
use crate::heuristic::heuristic_deployment;
use crate::problem::ProblemInstance;
use crate::solution::Deployment;
use crate::validate::is_valid;
use ndp_milp::{BranchRule, ObserverHandle, SolveStats, SolveStatus, SolverOptions};

/// Configuration of an exact solve.
#[derive(Debug, Clone)]
pub struct OptimalConfig {
    /// Routing flexibility.
    pub path_mode: PathMode,
    /// BE or ME objective.
    pub objective: DeployObjective,
    /// Seed branch and bound with the heuristic solution when it is
    /// feasible (default: true).
    pub warm_start_with_heuristic: bool,
    /// An additional caller-provided warm start (e.g. the single-path
    /// optimum when solving the multi-path model). The better of this and
    /// the heuristic seed is used.
    pub warm_start_deployment: Option<Deployment>,
    /// Options forwarded to the MILP solver.
    pub solver: SolverOptions,
}

impl Default for OptimalConfig {
    fn default() -> Self {
        OptimalConfig {
            path_mode: PathMode::Multi,
            objective: DeployObjective::BalanceEnergy,
            warm_start_with_heuristic: true,
            warm_start_deployment: None,
            // The exact arm defaults to reliability branching: the
            // strong-branching lookahead pays for itself on deployment
            // MILPs, whose early duplication/allocation choices dominate
            // the tree shape.
            solver: SolverOptions::default().branch_rule(BranchRule::Reliability),
        }
    }
}

/// Outcome of an exact solve.
#[derive(Debug, Clone)]
pub struct OptimalOutcome {
    /// The extracted deployment, when one exists.
    pub deployment: Option<Deployment>,
    /// Raw solver status.
    pub status: SolveStatus,
    /// Objective value (mJ) when a deployment exists.
    pub objective_mj: Option<f64>,
    /// Proven bound on the optimum (mJ).
    pub best_bound_mj: f64,
    /// Branch-and-bound nodes processed.
    pub nodes: u64,
    /// Nodes processed by each solver worker thread (one entry under
    /// `threads = 1`, empty when presolve answers without a search).
    pub nodes_per_thread: Vec<u64>,
    /// Wall-clock seconds spent in the solver.
    pub solve_seconds: f64,
    /// Per-phase time attribution and work counters of the solve.
    pub stats: SolveStats,
}

impl OptimalOutcome {
    /// Whether a (not necessarily proven-optimal) deployment was found.
    pub fn is_feasible(&self) -> bool {
        self.deployment.is_some()
    }
}

/// Picks the best valid warm-start candidate under `objective` (shared by
/// the legacy one-shot path and [`DeploymentSession`](crate::DeploymentSession)).
pub(crate) fn best_warm_candidate(
    problem: &ProblemInstance,
    objective: DeployObjective,
    candidates: Vec<Deployment>,
) -> Option<Deployment> {
    let score = |d: &Deployment| match objective {
        DeployObjective::BalanceEnergy => d.energy_report(problem).max_mj(),
        DeployObjective::MinimizeTotalEnergy => d.energy_report(problem).total_mj(),
    };
    candidates
        .into_iter()
        .filter(|d| is_valid(problem, d))
        .min_by(|a, b| score(a).partial_cmp(&score(b)).expect("finite energies"))
}

/// Solves the deployment problem exactly.
///
/// Deprecated spelling of a one-shot
/// [`DeploymentSession::solve`](crate::DeploymentSession::solve). This shim
/// keeps the historical single-solve pipeline (including presolve);
/// sessions trade presolve for the ability to re-solve incrementally after
/// scenario events.
///
/// # Errors
///
/// Propagates [`DeployError::Solver`](crate::DeployError::Solver) on
/// numerical failure; infeasibility is reported through
/// [`OptimalOutcome::status`].
#[deprecated(since = "0.2.0", note = "use `DeploymentSession` (builder + solve/resolve)")]
pub fn solve_optimal(problem: &ProblemInstance, config: &OptimalConfig) -> Result<OptimalOutcome> {
    let mut encoding = MilpEncoding::build(problem, config.path_mode, config.objective)?;
    // Collect warm-start candidates and keep the best objective.
    let mut candidates: Vec<Deployment> = Vec::new();
    if config.warm_start_with_heuristic {
        if let Ok(h) = heuristic_deployment(problem, &ObserverHandle::none()) {
            candidates.push(h);
        }
    }
    if let Some(d) = &config.warm_start_deployment {
        candidates.push(d.clone());
    }
    if let Some(d) = best_warm_candidate(problem, config.objective, candidates) {
        let vals = encoding.warm_start_values(problem, &d);
        encoding.model.set_warm_start(vals)?;
    }
    // Offer the mesh automorphisms as symmetry candidates unless the caller
    // supplied their own; the solver verifies them against the coefficients.
    let mut solver = config.solver.clone();
    if solver.symmetry_candidates.is_empty() {
        solver = solver.symmetry_candidates(encoding.symmetry_candidates(problem));
    }
    let sol = encoding.model.solve_with(&solver)?;
    // `has_incumbent` (not `has_solution`) so a cancelled solve still hands
    // back the best deployment it found.
    let deployment = if sol.has_incumbent() { Some(encoding.extract(problem, &sol)) } else { None };
    let objective_mj = deployment.as_ref().map(|_| sol.objective_value());
    Ok(OptimalOutcome {
        deployment,
        status: sol.status(),
        objective_mj,
        best_bound_mj: sol.best_bound(),
        nodes: sol.node_count(),
        nodes_per_thread: sol.nodes_per_thread().to_vec(),
        solve_seconds: sol.solve_seconds(),
        stats: *sol.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::DeploymentSession;
    use crate::validate::validate;
    use ndp_milp::SolveStatus;
    use ndp_noc::{Mesh2D, NocParams, PathKind, WeightedNoc};
    use ndp_platform::Platform;
    use ndp_taskset::{generate, GeneratorConfig, GraphShape};

    fn small_instance(m: usize, seed: u64, alpha: f64) -> ProblemInstance {
        let mut cfg = GeneratorConfig::typical(m);
        cfg.shape = GraphShape::Chain;
        let g = generate(&cfg, seed).unwrap();
        ProblemInstance::from_original(
            &g,
            Platform::homogeneous(4).unwrap(),
            WeightedNoc::new(Mesh2D::square(2).unwrap(), NocParams::typical(), seed).unwrap(),
            0.95,
            alpha,
        )
        .unwrap()
    }

    fn quick_solver() -> SolverOptions {
        SolverOptions::default().time_limit(20.0)
    }

    #[test]
    fn optimal_solution_is_valid() {
        let p = small_instance(3, 1, 3.0);
        let mut s = DeploymentSession::builder(p.clone()).solver(quick_solver()).build();
        let out = s.solve().unwrap();
        assert!(out.is_feasible(), "status {:?}", out.status);
        let d = out.deployment.unwrap();
        let v = validate(&p, &d);
        assert!(v.is_empty(), "violations: {v:?}");
    }

    #[test]
    fn optimal_beats_or_matches_heuristic() {
        let p = small_instance(3, 2, 3.0);
        let mut s = DeploymentSession::builder(p.clone()).solver(quick_solver()).build();
        let h = s.heuristic().unwrap();
        let h_obj = h.energy_report(&p).max_mj();
        let out = s.solve().unwrap();
        if out.status == SolveStatus::Optimal {
            let o_obj = out.objective_mj.unwrap();
            assert!(o_obj <= h_obj + 1e-6, "optimal {o_obj} must not exceed heuristic {h_obj}");
        }
    }

    #[test]
    fn single_path_never_beats_multi_path() {
        let p = small_instance(3, 3, 3.0);
        let multi =
            DeploymentSession::builder(p.clone()).solver(quick_solver()).build().solve().unwrap();
        let single = DeploymentSession::builder(p)
            .path_mode(PathMode::SingleFixed(PathKind::EnergyOriented))
            .solver(quick_solver())
            .build()
            .solve()
            .unwrap();
        if multi.status == SolveStatus::Optimal && single.status == SolveStatus::Optimal {
            assert!(multi.objective_mj.unwrap() <= single.objective_mj.unwrap() + 1e-6);
        }
    }

    #[test]
    fn infeasible_under_impossible_horizon() {
        let p = small_instance(3, 4, 3.0).with_horizon(1e-4);
        let mut s = DeploymentSession::builder(p)
            .warm_start_with_heuristic(false)
            .solver(quick_solver())
            .build();
        let out = s.solve().unwrap();
        assert_eq!(out.status, SolveStatus::Infeasible);
        assert!(!out.is_feasible());
    }

    /// The deprecated one-shot shim must keep solving (with presolve) and
    /// agree with the session route on a solved-to-optimality instance.
    #[test]
    #[allow(deprecated)]
    fn deprecated_shim_agrees_with_session() {
        let p = small_instance(3, 5, 3.0);
        let cfg = OptimalConfig { solver: quick_solver(), ..OptimalConfig::default() };
        let legacy = solve_optimal(&p, &cfg).unwrap();
        let session = DeploymentSession::builder(p).solver(quick_solver()).build().solve().unwrap();
        if legacy.status == SolveStatus::Optimal && session.status == SolveStatus::Optimal {
            let (a, b) = (legacy.objective_mj.unwrap(), session.objective_mj.unwrap());
            assert!((a - b).abs() <= 1e-6 * a.abs().max(1.0), "legacy {a} vs session {b}");
        }
    }
}
