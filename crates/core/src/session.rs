//! Online re-deployment: a stateful [`DeploymentSession`] over a mutating
//! mission.
//!
//! The paper deploys once, offline. Real missions change while running: a
//! core faults, a deadline tightens mid-flight, an aperiodic task arrives.
//! Each of those is a small edit to the deployment MILP, not a new problem
//! — so the session keeps the solver state of the previous solve alive
//! (via [`ndp_milp::ResolveSession`]) and absorbs
//! [`ScenarioEvent`]s as incremental model deltas:
//!
//! * [`ScenarioEvent::CoreFault`] fixes the faulted processor's allocation
//!   column `x[·][k]` to 0 — a pure restriction, re-solved warm on the
//!   carried cuts and basis.
//! * [`ScenarioEvent::DeadlineChange`] rewrites the `deadline[i]` rows of
//!   the task and its duplicate in place. A tightening stays warm; a
//!   relaxation falls back to a cold rebuild (the previous deployment
//!   still seeds the search as an incumbent).
//! * [`ScenarioEvent::TaskArrival`] changes the duplication structure and
//!   every scheduling disjunction, so the model is rebuilt from the
//!   mutated problem; standing core faults are re-applied and the next
//!   solve warm-starts from the heuristic on the new problem.
//!
//! The session is also the unified front door for one-shot solving — it
//! subsumes the deprecated free functions `solve_heuristic`,
//! `solve_heuristic_observed`, `solve_optimal` and `build_milp`:
//!
//! ```
//! use ndp_core::prelude::*;
//! use ndp_taskset::Task;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = generate(&GeneratorConfig::typical(3), 7)?;
//! let problem = ProblemInstance::from_original(
//!     &graph,
//!     Platform::homogeneous(4)?,
//!     WeightedNoc::new(Mesh2D::square(2)?, NocParams::typical(), 7)?,
//!     0.95,
//!     3.0,
//! )?;
//! let mut session = DeploymentSession::builder(problem)
//!     .solver(SolverOptions::default().time_limit(20.0))
//!     .build();
//! let before = session.solve()?; // full solve, state captured
//!
//! // Core 2 faults: fix its column, re-solve warm within a 5 s budget.
//! session.apply(&ScenarioEvent::CoreFault { processor: ProcessorId(2) })?;
//! let after = session.resolve(5.0)?;
//! # let _ = (before, after);
//! # Ok(())
//! # }
//! ```

use crate::error::{DeployError, Result};
use crate::formulation::{DeployObjective, MilpEncoding, PathMode};
use crate::heuristic::heuristic_deployment;
use crate::optimal::{best_warm_candidate, OptimalConfig, OptimalOutcome};
use crate::problem::ProblemInstance;
use crate::schedule::list_schedule;
use crate::solution::Deployment;
use ndp_milp::{Model, ResolveSession, SolverOptions};
use ndp_platform::{LevelId, ProcessorId};
use ndp_taskset::{Task, TaskId};
use std::collections::BTreeSet;

/// A mid-mission change the session can absorb.
#[derive(Debug, Clone)]
pub enum ScenarioEvent {
    /// Processor `processor` has failed: no task (original or duplicate)
    /// may be allocated to it from now on.
    CoreFault {
        /// The failed processor.
        processor: ProcessorId,
    },
    /// The relative deadline of an original task changed (its duplicate
    /// inherits the new deadline).
    DeadlineChange {
        /// The original task whose deadline changed.
        task: TaskId,
        /// New relative deadline in milliseconds.
        deadline_ms: f64,
    },
    /// An aperiodic task arrives, depending on data from existing original
    /// tasks. The problem is re-expanded (the arrival gets a duplicate and
    /// full routing/scheduling structure like every other task).
    TaskArrival {
        /// The arriving task.
        task: Task,
        /// `(existing original task, data size)` edges into the arrival.
        predecessors: Vec<(TaskId, f64)>,
    },
}

/// How [`DeploymentSession::apply`] absorbed an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventDisposition {
    /// Patched into the carried solver state; the next solve re-enters
    /// warm on the previous cuts (and basis, when the search was serial).
    Incremental,
    /// Carried solver state was dropped (relaxation, or no state yet); the
    /// next solve rebuilds cold but still seeds from the last deployment.
    ColdRestart,
    /// The model was rebuilt from the mutated problem (task arrival).
    Rebuilt,
}

/// Consuming builder for a [`DeploymentSession`], mirroring the
/// [`SolverOptions`] builder style.
#[derive(Debug, Clone)]
pub struct DeploymentSessionBuilder {
    problem: ProblemInstance,
    path_mode: PathMode,
    objective: DeployObjective,
    warm_start_with_heuristic: bool,
    warm_start_deployment: Option<Deployment>,
    solver: SolverOptions,
    horizon_alpha: Option<f64>,
}

impl DeploymentSessionBuilder {
    /// Routing flexibility (default: [`PathMode::Multi`]).
    pub fn path_mode(mut self, mode: PathMode) -> Self {
        self.path_mode = mode;
        self
    }

    /// BE or ME objective (default: BE).
    pub fn objective(mut self, objective: DeployObjective) -> Self {
        self.objective = objective;
        self
    }

    /// Seed branch and bound with the 3-phase heuristic when it is
    /// feasible (default: true).
    pub fn warm_start_with_heuristic(mut self, yes: bool) -> Self {
        self.warm_start_with_heuristic = yes;
        self
    }

    /// An additional caller-provided warm start; the better of this and
    /// the heuristic seed is used.
    pub fn warm_start_deployment(mut self, d: Option<Deployment>) -> Self {
        self.warm_start_deployment = d;
        self
    }

    /// Options forwarded to the MILP solver. Presolve is forced off inside
    /// the session (carried solver state must stay aligned with the
    /// model's own columns).
    pub fn solver(mut self, solver: SolverOptions) -> Self {
        self.solver = solver;
        self
    }

    /// Recompute the horizon `H` with this `alpha` (the paper's
    /// critical-path formula) when a task arrival rebuilds the problem.
    /// Without it the current horizon is kept.
    pub fn horizon_alpha(mut self, alpha: f64) -> Self {
        self.horizon_alpha = Some(alpha);
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> DeploymentSession {
        DeploymentSession {
            problem: self.problem,
            path_mode: self.path_mode,
            objective: self.objective,
            warm_start_with_heuristic: self.warm_start_with_heuristic,
            pending_warm: self.warm_start_deployment,
            solver: self.solver,
            horizon_alpha: self.horizon_alpha,
            faulted: BTreeSet::new(),
            encoding: None,
            milp: None,
            last: None,
        }
    }
}

/// A stateful deployment session: the unified entry point for solving the
/// deployment problem and re-solving it after [`ScenarioEvent`]s.
///
/// See the [module docs](self) for the event semantics and an example.
pub struct DeploymentSession {
    problem: ProblemInstance,
    path_mode: PathMode,
    objective: DeployObjective,
    warm_start_with_heuristic: bool,
    /// Caller-provided warm start, consumed by the first model build.
    pending_warm: Option<Deployment>,
    solver: SolverOptions,
    horizon_alpha: Option<f64>,
    /// Processors fixed out by fault events; re-applied on every rebuild.
    faulted: BTreeSet<usize>,
    /// Variable/row registry of the current model (model detached into
    /// `milp`).
    encoding: Option<MilpEncoding>,
    /// The incremental MILP session owning the model and carried state.
    milp: Option<ResolveSession>,
    /// Deployment extracted from the most recent solve.
    last: Option<Deployment>,
}

impl DeploymentSession {
    /// Starts a builder with the defaults of [`OptimalConfig`].
    pub fn builder(problem: ProblemInstance) -> DeploymentSessionBuilder {
        let defaults = OptimalConfig::default();
        DeploymentSessionBuilder {
            problem,
            path_mode: defaults.path_mode,
            objective: defaults.objective,
            warm_start_with_heuristic: defaults.warm_start_with_heuristic,
            warm_start_deployment: None,
            solver: defaults.solver,
            horizon_alpha: None,
        }
    }

    /// A session with all defaults (multi-path, BE, heuristic seeding).
    pub fn new(problem: ProblemInstance) -> Self {
        Self::builder(problem).build()
    }

    /// The session's (possibly mutated) problem.
    pub fn problem(&self) -> &ProblemInstance {
        &self.problem
    }

    /// Processors removed by [`ScenarioEvent::CoreFault`] so far.
    pub fn faulted_processors(&self) -> impl Iterator<Item = ProcessorId> + '_ {
        self.faulted.iter().map(|&k| ProcessorId(k))
    }

    /// The deployment extracted from the most recent solve.
    pub fn last_deployment(&self) -> Option<&Deployment> {
        self.last.as_ref()
    }

    /// `true` when the next solve re-enters warm on carried solver state.
    pub fn is_warm(&self) -> bool {
        self.milp.as_ref().is_some_and(|m| m.is_warm())
    }

    /// The solver options used by the next solve.
    pub fn solver(&self) -> &SolverOptions {
        &self.solver
    }

    /// Mutable access to the solver options (e.g. to attach a per-solve
    /// cancel token or observer). The options are re-synced into the
    /// internal MILP session before every solve; presolve stays forced
    /// off. Changing an answer tolerance here changes
    /// [`fingerprint`](DeploymentSession::fingerprint) accordingly.
    pub fn solver_mut(&mut self) -> &mut SolverOptions {
        &mut self.solver
    }

    /// Runs the paper's 3-phase decomposition heuristic on the current
    /// problem (Algorithms 1–3), emitting phase markers into the solver
    /// options' observer. Replaces the deprecated `solve_heuristic` /
    /// `solve_heuristic_observed`.
    ///
    /// The heuristic is stateless and fault-oblivious: after a
    /// [`ScenarioEvent::CoreFault`] its deployment may use the faulted
    /// core, in which case the exact path simply rejects it as a seed.
    ///
    /// # Errors
    ///
    /// [`DeployError::HeuristicInfeasible`] when a phase cannot satisfy
    /// its constraints.
    pub fn heuristic(&self) -> Result<Deployment> {
        heuristic_deployment(&self.problem, &self.solver.observer)
    }

    /// The MILP encoding of the current problem (building it on first
    /// use). The encoding's `model` field is detached — the model lives in
    /// the internal [`ResolveSession`] — but every registry accessor
    /// ([`MilpEncoding::x_var`], [`MilpEncoding::deadline_row`],
    /// [`MilpEncoding::warm_start_values`], …) works. Replaces the
    /// deprecated `build_milp` for callers that need variable handles.
    ///
    /// # Errors
    ///
    /// Propagates model-construction failures.
    pub fn encoding(&mut self) -> Result<&MilpEncoding> {
        self.ensure_model()?;
        Ok(self.encoding.as_ref().expect("ensure_model built the encoding"))
    }

    /// The live MILP model of the current problem (building it on first
    /// use) — the model side of the registry returned by
    /// [`encoding`](DeploymentSession::encoding), e.g. for feasibility
    /// probes of [`MilpEncoding::warm_start_values`] points.
    ///
    /// # Errors
    ///
    /// Propagates model-construction failures.
    pub fn model(&mut self) -> Result<&ndp_milp::Model> {
        self.ensure_model()?;
        Ok(self.milp.as_ref().expect("ensure_model built the session").model())
    }

    /// Canonical cache key of the session's *current* model under the
    /// configured answer tolerances (building the model on first use).
    ///
    /// Unlike [`instance_fingerprint`](crate::instance_fingerprint), this
    /// hashes the live model — including every row, bound and rhs edited
    /// by scenario events — so a cache keyed on it can never replay a
    /// pre-event outcome.
    ///
    /// # Errors
    ///
    /// Propagates model-construction failures.
    pub fn fingerprint(&mut self) -> Result<u64> {
        self.ensure_model()?;
        let milp = self.milp.as_ref().expect("ensure_model built the session");
        Ok(crate::fingerprint::model_fingerprint(milp.model(), &self.solver))
    }

    /// Absorbs a scenario event, mutating the problem and (when possible)
    /// patching the carried solver state instead of discarding it.
    ///
    /// # Errors
    ///
    /// [`DeployError::InvalidParameter`] for out-of-range processors,
    /// tasks or non-positive deadlines; graph errors for a task arrival
    /// that references unknown predecessors. On error the carried solver
    /// state is dropped (never left half-patched).
    pub fn apply(&mut self, event: &ScenarioEvent) -> Result<EventDisposition> {
        match event {
            ScenarioEvent::CoreFault { processor } => self.apply_fault(*processor),
            ScenarioEvent::DeadlineChange { task, deadline_ms } => {
                self.apply_deadline(*task, *deadline_ms)
            }
            ScenarioEvent::TaskArrival { task, predecessors } => {
                self.apply_arrival(task.clone(), predecessors)
            }
        }
    }

    /// Solves the current model with the configured options, capturing
    /// solver state for the next re-solve. Replaces the deprecated
    /// `solve_optimal`.
    ///
    /// # Errors
    ///
    /// Propagates solver errors; infeasibility is reported through
    /// [`OptimalOutcome::status`].
    pub fn solve(&mut self) -> Result<OptimalOutcome> {
        self.solve_inner(None)
    }

    /// [`solve`](DeploymentSession::solve) under a wall-clock budget in
    /// seconds — the online re-deployment entry point: absorb an event
    /// with [`apply`](DeploymentSession::apply), then `resolve(budget)`
    /// before the mission deadline. The budget persists as the session's
    /// time limit until changed.
    ///
    /// # Errors
    ///
    /// Same as [`solve`](DeploymentSession::solve).
    pub fn resolve(&mut self, budget_seconds: f64) -> Result<OptimalOutcome> {
        self.solve_inner(Some(budget_seconds))
    }

    fn apply_fault(&mut self, processor: ProcessorId) -> Result<EventDisposition> {
        let k = processor.index();
        let n = self.problem.num_processors();
        if k >= n {
            return Err(DeployError::InvalidParameter { name: "processor", value: k as f64 });
        }
        if n - self.faulted.len() <= 1 && !self.faulted.contains(&k) {
            // Refuse to fault the last working core: the model would be
            // trivially infeasible and the mistake is usually an id typo.
            return Err(DeployError::InvalidParameter {
                name: "last_working_processor",
                value: k as f64,
            });
        }
        self.faulted.insert(k);
        let (Some(milp), Some(enc)) = (self.milp.as_mut(), self.encoding.as_ref()) else {
            return Ok(EventDisposition::ColdRestart);
        };
        let mut delta = milp.model().delta();
        for i in 0..enc.num_tasks() {
            delta.fix(enc.x_var(i, k), 0.0);
        }
        match milp.apply(&delta) {
            Ok(out) => {
                debug_assert!(out.restriction, "fixing binaries to 0 is a restriction");
                // The carried incumbent dies with the core when it used it;
                // a repaired copy (displaced tasks re-homed, schedule
                // rebuilt) is usually a much stronger seed than the
                // fault-oblivious heuristic. Validated before use.
                if self.pending_warm.is_none() {
                    self.pending_warm = match &self.last {
                        Some(d) => self.repair_after_fault(d),
                        None => None,
                    };
                }
                Ok(EventDisposition::Incremental)
            }
            Err(e) => Err(DeployError::Solver(e)),
        }
    }

    /// Re-homes every task the last deployment ran on a now-faulted core:
    /// greedily, task by task, onto the working core that keeps the
    /// objective smallest (energy does not depend on start times, so the
    /// score is exact), then rebuilds the whole schedule by list
    /// scheduling. Returns `None` when nothing was displaced (the carried
    /// deployment is still a seed candidate as-is) or no core works. The
    /// result is a warm-start *candidate* — callers must still validate it.
    fn repair_after_fault(&self, old: &Deployment) -> Option<Deployment> {
        let problem = &self.problem;
        if old.active.len() != problem.tasks.graph().num_tasks() {
            return None;
        }
        let displaced: Vec<usize> = (0..old.active.len())
            .filter(|&i| old.active[i] && self.faulted.contains(&old.processor[i].index()))
            .collect();
        if displaced.is_empty() {
            return None;
        }
        let working: Vec<ProcessorId> = (0..problem.num_processors())
            .map(ProcessorId)
            .filter(|p| !self.faulted.contains(&p.index()))
            .collect();
        if working.is_empty() {
            return None;
        }
        let score = |d: &Deployment| match self.objective {
            DeployObjective::BalanceEnergy => d.energy_report(problem).max_mj(),
            DeployObjective::MinimizeTotalEnergy => d.energy_report(problem).total_mj(),
        };
        let mut d = old.clone();
        for &i in &displaced {
            let mut best: Option<(f64, ProcessorId)> = None;
            for &k in &working {
                d.processor[i] = k;
                let s = score(&d);
                if best.is_none_or(|(b, _)| s < b) {
                    best = Some((s, k));
                }
            }
            d.processor[i] = best?.1;
        }
        let placed = d.clone();
        let schedule = list_schedule(problem, &d.active, &d.frequency, &d.processor, |t| {
            placed.comm_time_ms(problem, t)
        });
        d.start_ms = schedule.start_ms;
        Some(d)
    }

    fn apply_deadline(&mut self, task: TaskId, deadline_ms: f64) -> Result<EventDisposition> {
        let m = self.problem.num_original();
        if task.index() >= m {
            return Err(DeployError::InvalidParameter { name: "task", value: task.index() as f64 });
        }
        if !(deadline_ms.is_finite() && deadline_ms > 0.0) {
            return Err(DeployError::InvalidParameter { name: "deadline_ms", value: deadline_ms });
        }
        self.problem.tasks.set_deadline(task, deadline_ms);
        let (Some(milp), Some(enc)) = (self.milp.as_mut(), self.encoding.as_ref()) else {
            return Ok(EventDisposition::ColdRestart);
        };
        let mut delta = milp.model().delta();
        delta.set_rhs(enc.deadline_row(task.index()), deadline_ms);
        delta.set_rhs(enc.deadline_row(task.index() + m), deadline_ms);
        match milp.apply(&delta) {
            // A tightened deadline keeps the carry; a relaxed one dropped
            // it inside `apply` (previous cuts may cut off newly feasible
            // points).
            Ok(out) if out.restriction => Ok(EventDisposition::Incremental),
            Ok(_) => Ok(EventDisposition::ColdRestart),
            Err(e) => Err(DeployError::Solver(e)),
        }
    }

    fn apply_arrival(
        &mut self,
        task: Task,
        predecessors: &[(TaskId, f64)],
    ) -> Result<EventDisposition> {
        let m = self.problem.num_original();
        for &(p, _) in predecessors {
            if p.index() >= m {
                return Err(DeployError::InvalidParameter {
                    name: "predecessor",
                    value: p.index() as f64,
                });
            }
        }
        // Re-expand from the mutated original graph: the arrival gets a
        // duplicate and the full routing/scheduling structure.
        let mut original = self.problem.tasks.to_original();
        let new_id = original.add_task(task);
        for &(p, d) in predecessors {
            original
                .add_edge(p, new_id, d)
                .map_err(|_| DeployError::InvalidParameter { name: "edge", value: d })?;
        }
        let old_horizon = self.problem.horizon_ms;
        let rebuilt = ProblemInstance::from_original(
            &original,
            self.problem.platform.clone(),
            self.problem.noc.clone(),
            self.problem.reliability_threshold,
            self.horizon_alpha.unwrap_or(1.0),
        )?
        .with_comm_time_model(self.problem.comm_time_model);
        // Keep the configured horizon policy: recompute via alpha when one
        // was given (never shrinking below the standing horizon — tasks
        // already admitted must stay schedulable), else keep the old H.
        let horizon = if self.horizon_alpha.is_some() {
            rebuilt.horizon_ms.max(old_horizon)
        } else {
            old_horizon
        };
        let prev = self.last.take();
        self.problem = rebuilt.with_horizon(horizon);
        // A new task reshapes the whole model: drop encoding + solver
        // state. The previous deployment no longer matches the task count,
        // but lifted into the new index space (with the arrival appended
        // greedily) it is usually a strong warm start; `ensure_model`
        // validates it and simply drops it when the greedy placement
        // breaks a constraint.
        self.encoding = None;
        self.milp = None;
        if self.pending_warm.is_none() {
            self.pending_warm = prev.and_then(|d| self.lift_after_arrival(&d));
        }
        Ok(EventDisposition::Rebuilt)
    }

    /// Lifts a pre-arrival deployment (`m` originals) into the rebuilt
    /// `m + 1`-original index space: originals keep their indices, the old
    /// duplicate `m + i` moves to `m + 1 + i`, and the arrival (plus its
    /// duplicate when the reliability threshold demands one) is appended
    /// at the tail of its first predecessor's processor schedule. The
    /// result is a warm-start *candidate* — callers must still validate it.
    fn lift_after_arrival(&self, old: &Deployment) -> Option<Deployment> {
        let problem = &self.problem;
        let m_new = problem.num_original();
        let m_old = m_new.checked_sub(1)?;
        if old.active.len() != 2 * m_old {
            return None;
        }
        let total = 2 * m_new;
        let map = |i: usize| if i < m_old { i } else { i + 1 };
        let mut d = Deployment {
            active: vec![false; total],
            frequency: vec![LevelId(0); total],
            processor: vec![ProcessorId(0); total],
            start_ms: vec![0.0; total],
            paths: old.paths.clone(),
        };
        for i in 0..2 * m_old {
            let j = map(i);
            d.active[j] = old.active[i];
            d.frequency[j] = old.frequency[i];
            d.processor[j] = old.processor[i];
            d.start_ms[j] = old.start_ms[i];
        }
        let arrival = TaskId(m_old);
        let dup = problem.tasks.copy_of(arrival);
        // Existing tasks keep their (often proven-optimal) placement and
        // levels, so the seed quality hinges on where the arrival lands:
        // try every working processor × level (the duplicate — constraint
        // (4) is an iff — follows from the level's reliability, on the
        // same core), rebuild the schedule by list scheduling (energy does
        // not depend on start times), and let `best_warm_candidate`
        // validate and score the combinations.
        let mut cands = Vec::new();
        for k in (0..problem.num_processors()).map(ProcessorId) {
            if self.faulted.contains(&k.index()) {
                continue;
            }
            for l in (0..problem.num_levels()).map(LevelId) {
                let mut c = d.clone();
                c.active[arrival.index()] = true;
                c.processor[arrival.index()] = k;
                c.frequency[arrival.index()] = l;
                let dup_active = problem.reliability(arrival, l) < problem.reliability_threshold;
                c.active[dup.index()] = dup_active;
                c.processor[dup.index()] = k;
                c.frequency[dup.index()] = l;
                let placed = c.clone();
                let schedule = list_schedule(problem, &c.active, &c.frequency, &c.processor, |t| {
                    placed.comm_time_ms(problem, t)
                });
                c.start_ms = schedule.start_ms;
                cands.push(c);
            }
        }
        best_warm_candidate(problem, self.objective, cands)
    }

    /// Builds the encoding and the incremental MILP session on first use
    /// (or after a rebuild), seeding the warm start and re-applying
    /// standing core faults.
    fn ensure_model(&mut self) -> Result<()> {
        if self.milp.is_some() {
            return Ok(());
        }
        let mut enc = MilpEncoding::build(&self.problem, self.path_mode, self.objective)?;
        let mut candidates: Vec<Deployment> = Vec::new();
        if self.warm_start_with_heuristic {
            if let Ok(h) = self.heuristic() {
                candidates.push(h);
            }
        }
        if let Some(d) = self.pending_warm.take() {
            candidates.push(d);
        }
        if let Some(d) = &self.last {
            candidates.push(d.clone());
        }
        if let Some(d) = best_warm_candidate(&self.problem, self.objective, candidates) {
            let vals = enc.warm_start_values(&self.problem, &d);
            enc.model.set_warm_start(vals).map_err(DeployError::Solver)?;
        }
        let mut model = std::mem::replace(&mut enc.model, Model::new("detached"));
        for &k in &self.faulted {
            for i in 0..enc.num_tasks() {
                model.set_bounds(enc.x_var(i, k), 0.0, 0.0).map_err(DeployError::Solver)?;
            }
        }
        self.milp = Some(ResolveSession::new(model, self.solver.clone()));
        self.encoding = Some(enc);
        Ok(())
    }

    /// Re-seeds the model's warm start before a re-solve on an existing
    /// model. Scenario events can invalidate the carried incumbent (it
    /// used a now-faulted core, or misses a tightened deadline), and a
    /// fresh heuristic on the *mutated* problem is usually a strong
    /// feasible start — without this, the from-scratch rebuild would enter
    /// the search better seeded than the incremental re-solve. Candidates
    /// that land on a faulted processor or fail validation are filtered
    /// out; when none survive, the model's existing warm start is left in
    /// place (the solver revalidates it against the current bounds
    /// anyway).
    fn refresh_warm_start(&mut self) -> Result<()> {
        let mut candidates: Vec<Deployment> = Vec::new();
        if self.warm_start_with_heuristic {
            if let Ok(h) = self.heuristic() {
                candidates.push(h);
            }
        }
        if let Some(d) = self.pending_warm.take() {
            candidates.push(d);
        }
        if let Some(d) = &self.last {
            candidates.push(d.clone());
        }
        candidates.retain(|d| {
            !d.processor
                .iter()
                .enumerate()
                .any(|(i, p)| d.active[i] && self.faulted.contains(&p.index()))
        });
        if let Some(d) = best_warm_candidate(&self.problem, self.objective, candidates) {
            let enc = self.encoding.as_ref().expect("model built before refresh");
            let vals = enc.warm_start_values(&self.problem, &d);
            let milp = self.milp.as_mut().expect("model built before refresh");
            milp.set_warm_start(vals).map_err(DeployError::Solver)?;
        }
        Ok(())
    }

    fn solve_inner(&mut self, budget_seconds: Option<f64>) -> Result<OptimalOutcome> {
        let had_model = self.milp.is_some();
        self.ensure_model()?;
        if had_model {
            // A freshly built model was already seeded by `ensure_model`.
            self.refresh_warm_start()?;
        }
        if let Some(budget) = budget_seconds {
            self.solver.time_limit = budget;
        }
        let milp = self.milp.as_mut().expect("ensure_model built the session");
        // `self.solver` is the single source of truth: re-sync so edits via
        // `solver_mut` (and the `resolve` budget) reach the MILP session.
        *milp.options_mut() = self.solver.clone();
        let sol = milp.solve().map_err(DeployError::Solver)?;
        let enc = self.encoding.as_ref().expect("ensure_model built the encoding");
        let deployment =
            if sol.has_incumbent() { Some(enc.extract(&self.problem, &sol)) } else { None };
        if let Some(d) = &deployment {
            self.last = Some(d.clone());
        }
        let objective_mj = deployment.as_ref().map(|_| sol.objective_value());
        Ok(OptimalOutcome {
            deployment,
            status: sol.status(),
            objective_mj,
            best_bound_mj: sol.best_bound(),
            nodes: sol.node_count(),
            nodes_per_thread: sol.nodes_per_thread().to_vec(),
            solve_seconds: sol.solve_seconds(),
            stats: *sol.stats(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;
    use ndp_milp::SolveStatus;
    use ndp_noc::{Mesh2D, NocParams, WeightedNoc};
    use ndp_platform::Platform;
    use ndp_taskset::{generate, GeneratorConfig, GraphShape};

    fn small_instance(m: usize, seed: u64) -> ProblemInstance {
        let mut cfg = GeneratorConfig::typical(m);
        cfg.shape = GraphShape::Chain;
        let g = generate(&cfg, seed).unwrap();
        ProblemInstance::from_original(
            &g,
            Platform::homogeneous(4).unwrap(),
            WeightedNoc::new(Mesh2D::square(2).unwrap(), NocParams::typical(), seed).unwrap(),
            0.95,
            3.0,
        )
        .unwrap()
    }

    fn quick() -> SolverOptions {
        SolverOptions::default().time_limit(20.0).threads(1)
    }

    #[test]
    fn session_solve_matches_one_shot_config() {
        let p = small_instance(3, 1);
        let mut s = DeploymentSession::builder(p.clone()).solver(quick()).build();
        let out = s.solve().unwrap();
        assert!(out.is_feasible(), "status {:?}", out.status);
        let d = out.deployment.as_ref().unwrap();
        assert!(validate(&p, d).is_empty());
        assert!(s.is_warm(), "first solve must arm the carry");
    }

    #[test]
    fn core_fault_is_respected_after_warm_resolve() {
        let p = small_instance(3, 2);
        let mut s = DeploymentSession::builder(p).solver(quick()).build();
        let before = s.solve().unwrap();
        assert!(before.is_feasible());

        let disp = s.apply(&ScenarioEvent::CoreFault { processor: ProcessorId(0) }).unwrap();
        assert_eq!(disp, EventDisposition::Incremental);
        let after = s.resolve(20.0).unwrap();
        assert!(after.is_feasible(), "status {:?}", after.status);
        let d = after.deployment.unwrap();
        for (i, &proc) in d.processor.iter().enumerate() {
            if d.active[i] {
                assert_ne!(proc.index(), 0, "task {i} placed on the faulted core");
            }
        }
        assert!(validate(s.problem(), &d).is_empty());
    }

    #[test]
    fn deadline_tightening_is_incremental_and_respected() {
        let p = small_instance(3, 3);
        let mut s = DeploymentSession::builder(p).solver(quick()).build();
        let before = s.solve().unwrap();
        assert!(before.is_feasible());
        let d0 = before.deployment.unwrap();
        // Tighten task 0's deadline to just above its current execution
        // time; the event must stay incremental and the solution valid.
        let t0 = TaskId(0);
        let exec = d0.end_ms(s.problem(), t0) - d0.start_ms[0];
        let new_deadline = (exec * 1.05).max(1e-3);
        let disp = s.apply(&ScenarioEvent::DeadlineChange { task: t0, deadline_ms: new_deadline });
        let disp = disp.unwrap();
        assert_eq!(disp, EventDisposition::Incremental, "tightening keeps the carry");
        let after = s.resolve(20.0).unwrap();
        if let Some(d) = after.deployment {
            assert!(validate(s.problem(), &d).is_empty());
        }
        // Relaxing it back is a cold restart but must still solve.
        let disp = s.apply(&ScenarioEvent::DeadlineChange { task: t0, deadline_ms: 1e6 }).unwrap();
        assert_eq!(disp, EventDisposition::ColdRestart);
        let relaxed = s.resolve(20.0).unwrap();
        assert!(relaxed.is_feasible());
    }

    #[test]
    fn task_arrival_rebuilds_and_solves() {
        let p = small_instance(3, 4);
        let tasks_before = p.num_tasks();
        let mut s = DeploymentSession::builder(p).solver(quick()).build();
        s.solve().unwrap();
        let wcec = s.problem().tasks.graph().task(TaskId(0)).wcec;
        let disp = s
            .apply(&ScenarioEvent::TaskArrival {
                task: Task::new("arrival", wcec, 1e5),
                predecessors: vec![(TaskId(0), 1.0)],
            })
            .unwrap();
        assert_eq!(disp, EventDisposition::Rebuilt);
        assert_eq!(s.problem().num_tasks(), tasks_before + 2, "arrival plus its duplicate");
        let out = s.resolve(20.0).unwrap();
        assert!(out.is_feasible(), "status {:?}", out.status);
        let d = out.deployment.unwrap();
        assert!(validate(s.problem(), &d).is_empty());
    }

    #[test]
    fn faulting_every_core_is_rejected() {
        let p = small_instance(3, 5);
        let mut s = DeploymentSession::builder(p).solver(quick()).build();
        for k in 0..3 {
            s.apply(&ScenarioEvent::CoreFault { processor: ProcessorId(k) }).unwrap();
        }
        let err = s.apply(&ScenarioEvent::CoreFault { processor: ProcessorId(3) });
        assert!(matches!(err, Err(DeployError::InvalidParameter { .. })));
    }

    #[test]
    fn heuristic_matches_deprecated_entry_point() {
        let p = small_instance(4, 6);
        let s = DeploymentSession::new(p.clone());
        let via_session = s.heuristic().unwrap();
        #[allow(deprecated)]
        let via_free = crate::heuristic::solve_heuristic(&p).unwrap();
        assert_eq!(via_session.processor, via_free.processor);
        assert_eq!(via_session.frequency, via_free.frequency);
        assert_eq!(via_session.active, via_free.active);
    }

    #[test]
    fn infeasible_horizon_reports_infeasible() {
        let p = small_instance(3, 7).with_horizon(1e-4);
        let mut s =
            DeploymentSession::builder(p).warm_start_with_heuristic(false).solver(quick()).build();
        let out = s.solve().unwrap();
        assert_eq!(out.status, SolveStatus::Infeasible);
        assert!(!out.is_feasible());
    }
}
